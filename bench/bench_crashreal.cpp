// bench_crashreal: the cross-process crash soak (src/crashreal) as a bench.
//
// Default mode runs seeded kill/recover soaks for TxnLog (PosixDisk) and
// Mailboat (PosixFilesys) in both regimes and prints one row per
// (system, regime) cell; `--json <path>` UPSERTS the rows into the shared
// BENCH_refine.json document (rows whose slug starts with "crashreal-" are
// replaced, everything else is preserved verbatim).
//
// `--replay <trace>`: load a pcc-crashreal v1 artifact written when a soak
// diverged, re-run the seeded soak up to the diverging round, and report
// whether the divergence (and its classification) reproduces — exit 0 iff
// it does. Every crash-harness finding is a one-command repro, mirroring
// `bench_pct --replay`.
//
// `--mutate <name>` (repeatable) arms a seeded bug, e.g.:
//   bench_crashreal --system txnlog --regime powerfail --mutate no_write_barrier
//   bench_crashreal --system mailboat --regime powerfail --mutate no_dir_fsync
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/crashreal/runner.h"
#include "src/crashreal/trace.h"

namespace {

using namespace perennial;  // NOLINT
using benchjson::PorJsonRow;
using crashreal::CrashRealConfig;
using crashreal::SoakSummary;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string RenderRow(const PorJsonRow& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"system\": \"%s\", \"por\": %s, \"executions\": %llu, "
                "\"deduped\": %llu, \"pruned\": %llu, \"histories\": %llu, "
                "\"violations\": %llu, \"ms\": %.1f, \"peak_rss\": %llu, "
                "\"outcome\": \"%s\"}",
                r.system.c_str(), r.por ? "true" : "false",
                static_cast<unsigned long long>(r.executions),
                static_cast<unsigned long long>(r.deduped),
                static_cast<unsigned long long>(r.pruned),
                static_cast<unsigned long long>(r.histories),
                static_cast<unsigned long long>(r.violations), r.ms,
                static_cast<unsigned long long>(r.peak_rss), r.outcome.c_str());
  return buf;
}

// Upsert with the same field order / comma placement as bench_json.h, so
// bench_check's fixed-order scan keeps working on the merged document.
bool UpsertJson(const std::string& path, const std::vector<PorJsonRow>& rows) {
  std::string bench = "bench_crashreal";
  std::vector<std::string> kept;
  std::ifstream in(path);
  if (in) {
    std::string line;
    while (std::getline(in, line)) {
      size_t at = line.find("\"bench\": \"");
      if (at != std::string::npos) {
        at += std::strlen("\"bench\": \"");
        bench = line.substr(at, line.find('"', at) - at);
        continue;
      }
      if (line.find("{\"system\": \"") == std::string::npos) {
        continue;
      }
      if (line.find("{\"system\": \"crashreal-") != std::string::npos) {
        continue;  // replaced below
      }
      while (!line.empty() && (line.back() == ',' || line.back() == ' ')) {
        line.pop_back();
      }
      kept.push_back(line);
    }
  }
  for (const PorJsonRow& r : rows) {
    kept.push_back(RenderRow(r));
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "--json: cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", bench.c_str());
  for (size_t i = 0; i < kept.size(); ++i) {
    std::fprintf(f, "%s%s\n", kept[i].c_str(), i + 1 < kept.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

std::string DefaultWorkdir() {
  return "/tmp/pcc-crashreal-" + std::to_string(::getpid());
}

int Replay(const char* path, const char* workdir) {
  crashreal::CrashTrace trace;
  Status s = crashreal::LoadCrashTrace(path, &trace);
  if (!s.ok()) {
    std::fprintf(stderr, "bench_crashreal --replay: %s\n", s.ToString().c_str());
    return 2;
  }
  std::string wd = workdir != nullptr ? workdir : DefaultWorkdir();
  CrashRealConfig config = crashreal::ConfigFromTrace(trace, wd);
  bool reproduced = false;
  Result<SoakSummary> summary = crashreal::ReplayTrace(config, trace, &reproduced);
  if (!summary.ok()) {
    std::fprintf(stderr, "bench_crashreal --replay: %s\n", summary.status().ToString().c_str());
    return 2;
  }
  for (const crashreal::Divergence& d : summary.value().divergences) {
    std::printf("round %llu kill_at %llu [%s] %s\n", static_cast<unsigned long long>(d.round),
                static_cast<unsigned long long>(d.kill_at), d.classification.c_str(),
                d.detail.c_str());
  }
  std::printf("replay of %s-%s seed %llu round %llu: %s\n", trace.system.c_str(),
              trace.regime.c_str(), static_cast<unsigned long long>(trace.seed),
              static_cast<unsigned long long>(trace.round),
              reproduced ? "REPRODUCED" : "did NOT reproduce");
  return reproduced ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> rest;
  const char* replay_path = benchjson::ParseValueFlag(argc, argv, "--replay", &rest);
  int argc2 = static_cast<int>(rest.size());
  char** argv2 = rest.data();
  std::vector<char*> rest2;
  const char* workdir = benchjson::ParseValueFlag(argc2, argv2, "--workdir", &rest2);
  if (replay_path != nullptr) {
    return Replay(replay_path, workdir);
  }
  argc2 = static_cast<int>(rest2.size());
  argv2 = rest2.data();
  std::vector<char*> rest3;
  const char* json_path = benchjson::ParseJsonPath(argc2, argv2, &rest3);
  argc2 = static_cast<int>(rest3.size());
  argv2 = rest3.data();

  uint64_t rounds = 200;
  uint64_t seed = 1;
  uint64_t cross_check_every = 0;
  std::string system = "both";
  std::string regime = "both";
  std::string artifact_dir;
  std::vector<std::string> mutations;
  for (int i = 1; i < argc2; ++i) {
    std::string arg = argv2[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc2) {
        std::fprintf(stderr, "bench_crashreal: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv2[++i];
    };
    if (arg == "--rounds") {
      rounds = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--system") {
      system = next();
    } else if (arg == "--regime") {
      regime = next();
    } else if (arg == "--mutate") {
      mutations.emplace_back(next());
    } else if (arg == "--artifact-dir") {
      artifact_dir = next();
    } else if (arg == "--cross-check-every") {
      cross_check_every = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "bench_crashreal: unknown flag %s\n"
                   "usage: bench_crashreal [--rounds N] [--seed S] [--system txnlog|mailboat|both]"
                   " [--regime kill|powerfail|both] [--mutate NAME]... [--workdir DIR]"
                   " [--artifact-dir DIR] [--cross-check-every N] [--json PATH]"
                   " | --replay TRACE\n",
                   arg.c_str());
      return 2;
    }
  }

  std::string base_workdir = workdir != nullptr ? workdir : DefaultWorkdir();
  std::vector<std::string> systems =
      system == "both" ? std::vector<std::string>{"txnlog", "mailboat"}
                       : std::vector<std::string>{system};
  std::vector<std::string> regimes = regime == "both"
                                         ? std::vector<std::string>{"kill", "powerfail"}
                                         : std::vector<std::string>{regime};

  std::vector<PorJsonRow> rows;
  int exit_code = 0;
  std::printf("%-28s %8s %8s %8s %10s %10s\n", "cell", "rounds", "killed", "diverge", "crossings",
              "ms");
  for (const std::string& sys : systems) {
    for (const std::string& reg : regimes) {
      CrashRealConfig config;
      config.system = sys;
      config.regime = reg;
      config.seed = seed;
      config.rounds = rounds;
      config.workdir = base_workdir + "-" + sys + "-" + reg;
      config.artifact_dir = artifact_dir;
      config.cross_check_every = cross_check_every;
      bool bad_mutation = false;
      for (const std::string& m : mutations) {
        if (!crashreal::ApplyMutationName(m, &config)) {
          std::fprintf(stderr, "bench_crashreal: unknown mutation '%s'\n", m.c_str());
          bad_mutation = true;
        }
      }
      if (bad_mutation) {
        return 2;
      }
      auto start = std::chrono::steady_clock::now();
      Result<SoakSummary> r = crashreal::RunSoak(config);
      double ms = MsSince(start);
      if (!r.ok()) {
        std::fprintf(stderr, "bench_crashreal %s/%s: %s\n", sys.c_str(), reg.c_str(),
                     r.status().ToString().c_str());
        return 2;
      }
      const SoakSummary& s = r.value();
      std::string cell = "crashreal-" + sys + "-" + reg;
      std::printf("%-28s %8llu %8llu %8llu %10llu %10.1f\n", cell.c_str(),
                  static_cast<unsigned long long>(s.rounds),
                  static_cast<unsigned long long>(s.killed),
                  static_cast<unsigned long long>(s.divergences.size()),
                  static_cast<unsigned long long>(s.hook_crossings), ms);
      for (const crashreal::Divergence& d : s.divergences) {
        std::printf("  round %llu kill_at %llu [%s] %s\n    trace: %s\n",
                    static_cast<unsigned long long>(d.round),
                    static_cast<unsigned long long>(d.kill_at), d.classification.c_str(),
                    d.detail.c_str(), d.trace_path.c_str());
      }
      if (!s.ok()) {
        exit_code = 1;
      }
      PorJsonRow row;
      row.system = cell;
      row.por = false;
      row.executions = s.rounds;
      row.deduped = 0;
      row.pruned = 0;
      row.histories = s.killed;
      row.violations = s.divergences.size();
      row.ms = ms;
      row.peak_rss = benchjson::PeakRssBytes();
      row.outcome = s.ok() ? "complete" : "diverged";
      rows.push_back(std::move(row));
    }
  }
  if (json_path != nullptr && !UpsertJson(json_path, rows)) {
    return 2;
  }
  return exit_code;
}
