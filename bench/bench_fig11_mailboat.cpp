// Figure 11 reproduction: throughput of Mailboat vs GoMail vs CMAIL under
// the mixed SMTP/POP3 workload (§9.3), sweeping the number of worker
// threads with a fixed total request count.
//
// Setup substitutions (documented in DESIGN.md / EXPERIMENTS.md):
//  * The paper ran on a 2x6-core Xeon; we run on whatever this machine
//    offers, so absolute req/s and the scaling curve depend on available
//    cores (on a single-core container the curves stay flat).
//  * CMAIL itself is Coq-extracted Haskell; we model its overhead by
//    calibrating busy-work per request so that single-threaded GoMail is
//    ~34% faster than "CMAIL", the paper's measured ratio.
//  * The mail store lives on tmpfs (/dev/shm) exactly as in the paper.
// The preserved shape: Mailboat > GoMail > CMAIL at every thread count,
// with Mailboat's win coming from in-memory locks + cached directory fds.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/base/table.h"
#include "src/goose/world.h"
#include "src/goosefs/posix_fs.h"
#include "src/mailboat/gomail.h"
#include "src/mailboat/mailboat.h"
#include "src/mailboat/workload.h"

namespace {

using perennial::FixedDigits;
using perennial::TextTable;
using perennial::WithCommas;
namespace fs = std::filesystem;
using namespace perennial::mailboat;  // NOLINT
using perennial::goosefs::PosixFilesys;

constexpr uint64_t kUsers = 100;
constexpr uint64_t kMsgLen = 1024;
constexpr uint64_t kRequests = 6000;  // fixed total as threads vary (paper setup)

std::string PickRoot() {
  std::error_code ec;
  for (const char* candidate : {"/dev/shm", "/tmp"}) {
    fs::path root = fs::path(candidate) / "pcc_fig11";
    fs::remove_all(root, ec);
    if (fs::create_directories(root, ec)) {
      return root.string();
    }
  }
  std::fprintf(stderr, "no writable tmp directory\n");
  std::exit(1);
}

double RunMailboat(const std::string& root, int threads) {
  PosixFilesys posix(root, {.cache_dir_fds = true});
  PCC_ENSURE(posix.EnsureDirs(Mailboat::DirLayout(kUsers)).ok(), "setup failed");
  perennial::goose::World world;
  Mailboat mail(&world, &posix, Mailboat::Options{kUsers, 4096, 512, 42});
  WorkloadOptions warmup{kUsers, kRequests / 4, kMsgLen, 7};
  (void)RunMixedWorkload(&mail, threads, warmup);  // warm caches/allocator
  WorkloadOptions options{kUsers, kRequests, kMsgLen, 42};
  return RunMixedWorkload(&mail, threads, options).requests_per_sec();
}

double RunGoMail(const std::string& root, int threads, uint64_t overhead_ns) {
  PosixFilesys posix(root, {.cache_dir_fds = false});
  PCC_ENSURE(posix.EnsureDirs(GoMail::DirLayout(kUsers)).ok(), "setup failed");
  GoMail mail(&posix, GoMail::Options{kUsers, 4096, 512, 42, overhead_ns});
  WorkloadOptions warmup{kUsers, kRequests / 4, kMsgLen, 7};
  (void)RunMixedWorkload(&mail, threads, warmup);
  WorkloadOptions options{kUsers, kRequests, kMsgLen, 42};
  return RunMixedWorkload(&mail, threads, options).requests_per_sec();
}

// Calibrates the CMAIL overhead: measure single-threaded GoMail latency
// (with warmup, identical to the table runs), then add busy-work so that
// CMAIL's per-request cost is 1.34x GoMail's (§9.3: "GoMail is in turn 34%
// faster than CMAIL on a single core").
uint64_t CalibrateCmailOverhead(const std::string& root) {
  double gomail_rps = RunGoMail(root, 1, 0);
  double ns_per_request = 1e9 / gomail_rps;
  return static_cast<uint64_t>(0.34 * ns_per_request);
}

}  // namespace

int main() {
  std::string root = PickRoot();
  unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> thread_counts;
  for (int t = 1; t <= static_cast<int>(std::min(hw * 2, 12u)); t *= 2) {
    thread_counts.push_back(t);
  }

  std::printf("== Figure 11: mail-server throughput, mixed 50/50 workload ==\n");
  std::printf("machine: %u hardware thread(s); store: %s (tmpfs);\n", hw, root.c_str());
  std::printf("%llu total requests per cell, %llu users, %llu-byte messages\n\n",
              static_cast<unsigned long long>(kRequests),
              static_cast<unsigned long long>(kUsers),
              static_cast<unsigned long long>(kMsgLen));

  uint64_t cmail_overhead = CalibrateCmailOverhead(root);
  std::printf("calibrated CMAIL extraction-overhead model: %llu ns busy-work per request\n\n",
              static_cast<unsigned long long>(cmail_overhead));

  TextTable table({"threads", "Mailboat req/s", "GoMail req/s", "CMAIL req/s",
                   "Mailboat/GoMail", "GoMail/CMAIL"});
  for (int threads : thread_counts) {
    double mailboat = RunMailboat(root, threads);
    double gomail = RunGoMail(root, threads, 0);
    double cmail = RunGoMail(root, threads, cmail_overhead);
    table.AddRow({std::to_string(threads), WithCommas(static_cast<uint64_t>(mailboat)),
                  WithCommas(static_cast<uint64_t>(gomail)),
                  WithCommas(static_cast<uint64_t>(cmail)),
                  FixedDigits(gomail > 0 ? mailboat / gomail : 0, 2) + "x",
                  FixedDigits(cmail > 0 ? gomail / cmail : 0, 2) + "x"});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("paper (single core): Mailboat 1.81x GoMail; GoMail 1.34x CMAIL;\n");
  std::printf("all three servers scale with cores on multicore hardware (tmpfs parallelism).\n");

  std::error_code ec;
  fs::remove_all(root, ec);
  return 0;
}
