// Figure 11 reproduction: throughput of Mailboat vs GoMail vs CMAIL under
// the mixed SMTP/POP3 workload (§9.3), sweeping the number of worker
// threads with a fixed total request count.
//
// Setup substitutions (documented in DESIGN.md / EXPERIMENTS.md):
//  * The paper ran on a 2x6-core Xeon; we run on whatever this machine
//    offers, so absolute req/s and the scaling curve depend on available
//    cores (on a single-core container the curves stay flat).
//  * CMAIL itself is Coq-extracted Haskell; we model its overhead by
//    calibrating busy-work per request so that single-threaded GoMail is
//    ~34% faster than "CMAIL", the paper's measured ratio.
//  * The mail store lives on tmpfs (/dev/shm) exactly as in the paper.
// The preserved shape: Mailboat > GoMail > CMAIL at every thread count,
// with Mailboat's win coming from in-memory locks + cached directory fds.
//
// --at-scale switches to the Figure-11-at-scale harness: the REAL server
// (src/netserv: epoll loops + executors + group commit) on loopback TCP,
// driven by the concurrent-client load generator, store on ext4 (/tmp, not
// tmpfs — fsync must cost something or group commit has nothing to save).
// Sweeps client count x group-commit on/off plus an event-loop-thread
// sweep, reports p50/p99 latency and the saturation point, and with
// `--json <path>` upserts fig11s- rows into BENCH_refine.json.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "src/base/stage_timer.h"
#include "src/fault/syscall_fault.h"
#include "src/base/table.h"
#include "src/goose/world.h"
#include "src/goosefs/posix_fs.h"
#include "src/mailboat/gomail.h"
#include "src/mailboat/mailboat.h"
#include "src/mailboat/workload.h"
#include "src/netserv/harness.h"
#include "src/netserv/loadgen.h"
#include "src/netserv/trace_event.h"

namespace {

using perennial::FixedDigits;
using perennial::TextTable;
using perennial::WithCommas;
namespace fs = std::filesystem;
using namespace perennial::mailboat;  // NOLINT
using perennial::goosefs::PosixFilesys;

constexpr uint64_t kUsers = 100;
constexpr uint64_t kMsgLen = 1024;
constexpr uint64_t kRequests = 6000;  // fixed total as threads vary (paper setup)

std::string PickRoot() {
  std::error_code ec;
  for (const char* candidate : {"/dev/shm", "/tmp"}) {
    fs::path root = fs::path(candidate) / "pcc_fig11";
    fs::remove_all(root, ec);
    if (fs::create_directories(root, ec)) {
      return root.string();
    }
  }
  std::fprintf(stderr, "no writable tmp directory\n");
  std::exit(1);
}

double RunMailboat(const std::string& root, int threads) {
  PosixFilesys posix(root, {.cache_dir_fds = true});
  PCC_ENSURE(posix.EnsureDirs(Mailboat::DirLayout(kUsers)).ok(), "setup failed");
  perennial::goose::World world;
  Mailboat mail(&world, &posix, Mailboat::Options{kUsers, 4096, 512, 42});
  WorkloadOptions warmup{kUsers, kRequests / 4, kMsgLen, 7};
  (void)RunMixedWorkload(&mail, threads, warmup);  // warm caches/allocator
  WorkloadOptions options{kUsers, kRequests, kMsgLen, 42};
  return RunMixedWorkload(&mail, threads, options).requests_per_sec();
}

double RunGoMail(const std::string& root, int threads, uint64_t overhead_ns) {
  PosixFilesys posix(root, {.cache_dir_fds = false});
  PCC_ENSURE(posix.EnsureDirs(GoMail::DirLayout(kUsers)).ok(), "setup failed");
  GoMail mail(&posix, GoMail::Options{kUsers, 4096, 512, 42, overhead_ns});
  WorkloadOptions warmup{kUsers, kRequests / 4, kMsgLen, 7};
  (void)RunMixedWorkload(&mail, threads, warmup);
  WorkloadOptions options{kUsers, kRequests, kMsgLen, 42};
  return RunMixedWorkload(&mail, threads, options).requests_per_sec();
}

// Calibrates the CMAIL overhead: measure single-threaded GoMail latency
// (with warmup, identical to the table runs), then add busy-work so that
// CMAIL's per-request cost is 1.34x GoMail's (§9.3: "GoMail is in turn 34%
// faster than CMAIL on a single core").
uint64_t CalibrateCmailOverhead(const std::string& root) {
  double gomail_rps = RunGoMail(root, 1, 0);
  double ns_per_request = 1e9 / gomail_rps;
  return static_cast<uint64_t>(0.34 * ns_per_request);
}

// ---- Figure 11 at scale: the real server over TCP --------------------------

// Measures the store's current fsync latency (small append + fsync, median
// of 50). The host's virtualized disk drifts between cache-absorbed flushes
// (~100 us, which understates what a physical SSD charges per barrier and
// lets the kernel's own journal batching mask group commit) and real-media
// phases (several hundred us, comparable to commodity SSD fsync — the
// regime Figure 11 was measured in). Recording the probe alongside the rows
// documents which regime a baseline was captured under.
uint64_t ProbeFsyncUs(const std::string& root) {
  std::string path = root + "/.fsync_probe";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return 0;
  }
  int fd = ::fileno(f);
  std::vector<uint64_t> samples;
  char buf[256];
  std::memset(buf, 'x', sizeof(buf));
  for (int i = 0; i < 50; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    (void)!::write(fd, buf, sizeof(buf));
    (void)::fsync(fd);
    samples.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                              t0)
            .count()));
  }
  std::fclose(f);
  ::unlink(path.c_str());
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct ScaleResult {
  perennial::netserv::LoadgenResult load;
  uint64_t batches = 0;
  uint64_t fsyncs = 0;
  uint64_t deduped = 0;
  double rps = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  // Syscall faults the shim actually injected during the loadgen window
  // (0 on clean runs / when no plan is configured).
  uint64_t injected = 0;
  // Process CPU over the loadgen window (includes the in-process client
  // threads; consistent across before/after, which is the comparison).
  uint64_t utime_us = 0;
  uint64_t stime_us = 0;
  double cpu_us_per_request = 0;
  // Per-stage self-time snapshot (stage_timer.h), us per stage.
  uint64_t stage_us[perennial::stage::kNumStages] = {};
  uint64_t stage_calls[perennial::stage::kNumStages] = {};
};

struct ScaleConfig {
  std::string root;
  uint64_t clients = 64;
  uint64_t requests = 2000;
  bool group_commit = true;
  uint64_t loops = 2;
  // Fraction of clients doing POP3 pickups (the rest deliver). The
  // loadgen's fixed per-client quotas keep this mix identical across runs,
  // so gc and nogc cells do exactly the same work.
  double pickup_fraction = 0.25;
  perennial::netserv::TraceLog* trace = nullptr;
  // Seeded syscall fault plan for the cell's store (empty = clean disk).
  perennial::fault::SyscallFaultPlan fault_plan;
};

ScaleResult RunScaleCellOnce(const ScaleConfig& sc) {
  using namespace perennial::netserv;  // NOLINT
  InprocMailServer::Config config;
  config.root = sc.root;
  // One mailbox per client at the top of the sweep: with fewer users the
  // POP3 per-user pickup locks collide and executor convoys, not the
  // storage stack, set the measured ceiling.
  config.users = 64;
  config.group_commit = sc.group_commit;
  // Wide window, adaptive early close (GroupCommitter quiet_us): the
  // committer holds the batch only while requests keep arriving, so the
  // window is a cap on batch accumulation, not a per-barrier sleep.
  config.gc_window_us = 2000;
  config.gc_batch = 256;
  config.loops = sc.loops;
  // A POP3 session pins an executor while it holds its user lock, so the
  // pool must exceed the concurrent-session count (DESIGN.md §14).
  config.executors = sc.clients + 8;
  config.trace = sc.trace;
  config.fault_plan = sc.fault_plan;
  InprocMailServer server(config);
  PCC_ENSURE(server.Start(), "at-scale server failed to start");
  // Server start just cleared the previous cell's store — thousands of
  // unlinks whose dirty metadata would otherwise be flushed by the kernel
  // DURING the measurement. Drain it (and any backlog the previous cell
  // left) so every cell starts from the same clean-device state.
  ::sync();

  LoadgenOptions load;
  load.smtp_port = server.smtp_port();
  load.pop3_port = server.pop3_port();
  load.clients = sc.clients;
  load.requests = sc.requests;
  load.num_users = config.users;
  load.pickup_fraction = sc.pickup_fraction;
  load.body_bytes = 256;
  load.stall_timeout_ms = 60000;

  // Stage counters + CPU: measure only the loadgen window, so server
  // setup (EnsureDirs' fsync storm, store clearing) stays out of the
  // per-request numbers.
  static perennial::stage::StageTotals stage_totals;
  stage_totals.Reset();
  perennial::stage::Install(&stage_totals);
  perennial::benchjson::CpuUsage cpu0 = perennial::benchjson::ProcessCpuUsage();

  ScaleResult r;
  r.load = RunLoadgen(load);

  perennial::benchjson::CpuUsage cpu1 = perennial::benchjson::ProcessCpuUsage();
  perennial::stage::Install(nullptr);
  r.utime_us = cpu1.utime_us - cpu0.utime_us;
  r.stime_us = cpu1.stime_us - cpu0.stime_us;
  if (r.load.ok_requests > 0) {
    r.cpu_us_per_request =
        static_cast<double>(r.utime_us + r.stime_us) / static_cast<double>(r.load.ok_requests);
  }
  for (int i = 0; i < perennial::stage::kNumStages; ++i) {
    r.stage_us[i] = stage_totals.ns[i].load(std::memory_order_relaxed) / 1000;
    r.stage_calls[i] = stage_totals.calls[i].load(std::memory_order_relaxed);
  }
  const auto& stats = server.committer()->stats();
  r.batches = stats.batches.load();
  r.fsyncs = stats.fsyncs_issued.load();
  r.deduped = stats.deduped.load();
  if (server.faults() != nullptr) {
    r.injected = server.faults()->total_injected();
  }
  r.rps = r.load.wall_ms > 0 ? r.load.ok_requests / (r.load.wall_ms / 1000.0) : 0;
  r.p50_us = PercentileUs(r.load.latencies_us, 50);
  r.p99_us = PercentileUs(r.load.latencies_us, 99);
  server.Stop();
  return r;
}

// Best-of-N: the store sits on a shared virtualized disk whose fsync
// latency swings ~3x between runs (neighbor noise), so a single shot can
// misstate either configuration. The best trial is the least-perturbed
// measurement of the server's actual capacity.
ScaleResult RunScaleCell(const ScaleConfig& sc, int trials = 3) {
  ScaleResult best;
  for (int i = 0; i < trials; ++i) {
    ScaleResult r = RunScaleCellOnce(sc);
    if (i == 0 || (r.load.errors == 0 && r.rps > best.rps)) {
      best = r;
    }
  }
  return best;
}

// Interleaved A/B for the gc-vs-nogc comparison: the host drifts between
// fast and slow phases on a seconds timescale, so running all gc trials
// and then all nogc trials can land the two configurations in different
// phases and misstate their ratio. Each round runs gc then nogc
// back-to-back, and the ROUND with the best gc throughput is reported as
// a matched pair — picking per-config maxima across different rounds
// would let nogc borrow its number from a different host phase than gc,
// which is exactly the artifact the interleaving exists to remove.
std::pair<ScaleResult, ScaleResult> RunScalePair(ScaleConfig sc, int trials = 3) {
  ScaleResult best_gc;
  ScaleResult best_nogc;
  for (int i = 0; i < trials; ++i) {
    sc.group_commit = true;
    ScaleResult g = RunScaleCellOnce(sc);
    sc.group_commit = false;
    ScaleResult n = RunScaleCellOnce(sc);
    if (i == 0 || (g.load.errors == 0 && n.load.errors == 0 && g.rps > best_gc.rps)) {
      best_gc = g;
      best_nogc = n;
    }
  }
  return {best_gc, best_nogc};
}

// fig11s-/faultnet- row: executions=acked requests, deduped=fd-dedup count,
// pruned=barrier syscalls issued, histories=batches, violations=client
// errors; p50/p99 and the robustness counters (tempfails/retries/
// shed_connects/injected) appended as extra keys (bench_check's scan is
// key-based and tolerates them).
std::string RenderScaleRow(const std::string& slug, const ScaleResult& r) {
  char buf[768];
  std::snprintf(buf, sizeof(buf),
                "{\"system\": \"%s\", \"por\": false, \"executions\": %llu, "
                "\"deduped\": %llu, \"pruned\": %llu, \"histories\": %llu, "
                "\"violations\": %llu, \"ms\": %.1f, \"p50_us\": %llu, \"p99_us\": %llu, "
                "\"cpu_us_per_request\": %.1f, \"utime_us\": %llu, \"stime_us\": %llu, "
                "\"tempfails\": %llu, \"retries\": %llu, \"shed_connects\": %llu, "
                "\"injected\": %llu, \"peak_rss\": %llu, \"outcome\": \"%s\"}",
                slug.c_str(), static_cast<unsigned long long>(r.load.ok_requests),
                static_cast<unsigned long long>(r.deduped),
                static_cast<unsigned long long>(r.fsyncs),
                static_cast<unsigned long long>(r.batches),
                static_cast<unsigned long long>(r.load.errors), r.load.wall_ms,
                static_cast<unsigned long long>(r.p50_us),
                static_cast<unsigned long long>(r.p99_us), r.cpu_us_per_request,
                static_cast<unsigned long long>(r.utime_us),
                static_cast<unsigned long long>(r.stime_us),
                static_cast<unsigned long long>(r.load.tempfails),
                static_cast<unsigned long long>(r.load.retries),
                static_cast<unsigned long long>(r.load.shed_connects),
                static_cast<unsigned long long>(r.injected),
                static_cast<unsigned long long>(perennial::benchjson::PeakRssBytes()),
                r.load.aborted ? "aborted" : "complete");
  return buf;
}

const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return argv[i + 1];
    }
  }
  return nullptr;
}

int RunAtScale(int argc, char** argv) {
  const char* root_flag = FlagValue(argc, argv, "--root");
  const char* json_path = FlagValue(argc, argv, "--json");
  const char* trace_path = FlagValue(argc, argv, "--trace");
  const char* requests_flag = FlagValue(argc, argv, "--requests");
  const char* fault_flag = FlagValue(argc, argv, "--fault-plan");
  // ext4 by default: group commit is only measurable where fsync costs
  // something. (tmpfs fsync is ~free and flattens the gc/nogc delta.)
  std::string root = root_flag != nullptr ? root_flag : "/tmp/pcc_fig11_scale";
  uint64_t requests = requests_flag != nullptr ? std::strtoull(requests_flag, nullptr, 10) : 2000;

  // --fault-plan "no-space=0.01,seed=11": runs the whole sweep against a
  // hostile disk (same spec grammar as mail_serverd / the fault tests).
  // Exploration aid — faulted fig11s- rows are NOT commit-worthy baselines;
  // the committed degradation rows come from the faultnet- section below,
  // which always runs its own fixed plan.
  perennial::fault::SyscallFaultPlan sweep_plan;
  if (fault_flag != nullptr) {
    perennial::Result<perennial::fault::SyscallFaultPlan> parsed =
        perennial::fault::SyscallFaultPlan::Parse(fault_flag);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--fault-plan: %s\n", parsed.status().ToString().c_str());
      return 2;
    }
    sweep_plan = parsed.value();
    std::printf("sweep fault plan: %s\n", sweep_plan.ToString().c_str());
  }

  std::printf("== Figure 11 at scale: real server (epoll + executors) over loopback TCP ==\n");
  std::printf("store: %s; %llu requests per cell; mix: 75%% SMTP deliver / 25%% POP3 pickup\n",
              root.c_str(), static_cast<unsigned long long>(requests));

  std::error_code ec;
  fs::create_directories(root, ec);
  uint64_t fsync_us = ProbeFsyncUs(root);
  std::printf("store fsync latency: %llu us median (cache-absorbed <150 us masks the gc/nogc "
              "delta; real-media phases run several hundred us)\n\n",
              static_cast<unsigned long long>(fsync_us));

  std::vector<std::string> rows;

  // Prints the per-stage self-time table for a cell (stage_timer.h): where
  // each request's wall time went, with commit-wait (barrier blocking)
  // separated from the CPU-bound stages.
  auto print_stages = [](const char* label, const ScaleResult& r) {
    std::printf("stage self-time, %s (cpu %.1f us/req = utime %.1f + stime %.1f):\n", label,
                r.cpu_us_per_request,
                r.load.ok_requests ? static_cast<double>(r.utime_us) / r.load.ok_requests : 0,
                r.load.ok_requests ? static_cast<double>(r.stime_us) / r.load.ok_requests : 0);
    TextTable st({"stage", "total ms", "calls", "us/req"});
    for (int i = 0; i < perennial::stage::kNumStages; ++i) {
      st.AddRow({perennial::stage::StageName(i),
                 FixedDigits(static_cast<double>(r.stage_us[i]) / 1000.0, 1),
                 WithCommas(r.stage_calls[i]),
                 FixedDigits(r.load.ok_requests
                                 ? static_cast<double>(r.stage_us[i]) / r.load.ok_requests
                                 : 0,
                             1)});
    }
    std::printf("%s\n", st.Render().c_str());
  };

  // Client sweep, group commit on vs off (off = one fsync per durability
  // point, the classical configuration).
  TextTable table({"clients", "gc", "req/s", "p50 us", "p99 us", "batches", "fsyncs",
                   "deduped", "errors"});
  double best_rps = 0;
  uint64_t best_clients = 0;
  std::string speedups;
  for (uint64_t clients : {16, 64, 128, 256}) {
    ScaleConfig sc;
    sc.root = root;
    sc.clients = clients;
    sc.requests = requests;
    sc.fault_plan = sweep_plan;
    auto [gc_r, nogc_r] = RunScalePair(sc);
    for (bool gc : {true, false}) {
      const ScaleResult& r = gc ? gc_r : nogc_r;
      table.AddRow({std::to_string(clients), gc ? "on" : "off",
                    WithCommas(static_cast<uint64_t>(r.rps)), WithCommas(r.p50_us),
                    WithCommas(r.p99_us), WithCommas(r.batches), WithCommas(r.fsyncs),
                    WithCommas(r.deduped), std::to_string(r.load.errors)});
      std::string slug = "fig11s-c" + std::to_string(clients) + (gc ? "-gc" : "-nogc");
      rows.push_back(RenderScaleRow(slug, r));
      if (gc && r.rps > best_rps) {
        best_rps = r.rps;
        best_clients = clients;
      }
    }
    if (clients == 64) {
      print_stages("64 clients, gc on", gc_r);
    }
    if (nogc_r.rps > 0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s%llu clients %.2fx", speedups.empty() ? "" : ", ",
                    static_cast<unsigned long long>(clients), gc_r.rps / nogc_r.rps);
      speedups += buf;
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("group-commit speedup over per-op fsync: %s\n", speedups.c_str());
  std::printf("saturation: throughput peaks at ~%llu concurrent clients (%s req/s)\n\n",
              static_cast<unsigned long long>(best_clients),
              WithCommas(static_cast<uint64_t>(best_rps)).c_str());

  // Event-loop-thread sweep at 64 clients, gc on. On a single-core
  // container the curve is flat; on real hardware it shows where the
  // line-carving loops stop being the bottleneck.
  TextTable loops_table({"loops", "req/s", "p50 us", "p99 us"});
  for (uint64_t loops : {1, 2, 4}) {
    ScaleConfig sc;
    sc.root = root;
    sc.clients = 64;
    sc.requests = requests;
    sc.loops = loops;
    sc.fault_plan = sweep_plan;
    ScaleResult r = RunScaleCell(sc);
    loops_table.AddRow({std::to_string(loops), WithCommas(static_cast<uint64_t>(r.rps)),
                        WithCommas(r.p50_us), WithCommas(r.p99_us)});
    rows.push_back(RenderScaleRow("fig11s-l" + std::to_string(loops) + "-c64-gc", r));
  }
  std::printf("%s\n", loops_table.Render().c_str());

  // The cheap pinned cell bench_check re-runs as a regression gate.
  {
    ScaleConfig sc;
    sc.root = root;
    sc.clients = 8;
    sc.requests = 300;
    sc.fault_plan = sweep_plan;
    perennial::netserv::TraceLog trace;
    if (trace_path != nullptr) {
      sc.trace = &trace;
    }
    ScaleResult r = RunScaleCell(sc);
    rows.push_back(RenderScaleRow("fig11s-check-c8", r));
    std::printf("check cell (8 clients, 300 requests): %s req/s, p99 %s us, "
                "cpu %.1f us/req\n",
                WithCommas(static_cast<uint64_t>(r.rps)).c_str(),
                WithCommas(r.p99_us).c_str(), r.cpu_us_per_request);
    print_stages("check cell", r);
    if (trace_path != nullptr) {
      if (trace.WriteJson(trace_path)) {
        std::printf("trace: %zu events -> %s (chrome://tracing)\n", trace.size(), trace_path);
      }
    }
  }

  // ---- faultnet: hostile-disk degradation rows -----------------------------
  // How gracefully does the stack degrade when ~1% of data-path syscalls
  // fail with ENOSPC/EIO? Honest answer required: zero protocol errors,
  // every failure an RFC tempfail the loadgen retries, throughput within
  // the same order of magnitude as clean. Matched pairs (clean then faulted
  // back-to-back per round, best clean round reported) for the same
  // host-phase reasons as RunScalePair. The faultnet-check-c8 row is the
  // committed baseline bench_check re-runs as its robustness gate.
  std::vector<std::string> faultnet_rows;
  {
    // Keep this spec in sync with the faultnet-check cell in bench_check.cpp.
    perennial::Result<perennial::fault::SyscallFaultPlan> degrade =
        perennial::fault::SyscallFaultPlan::Parse(
            "no-space=0.01,transient-write=0.005,seed=11");
    PCC_ENSURE(degrade.ok(), "faultnet plan must parse");
    ScaleConfig clean_sc;
    clean_sc.root = root;
    clean_sc.clients = 32;
    clean_sc.requests = requests;
    clean_sc.pickup_fraction = 0.0;  // deliver-only: every request hits the disk
    ScaleConfig fault_sc = clean_sc;
    fault_sc.fault_plan = degrade.value();
    ScaleResult best_clean;
    ScaleResult best_fault;
    for (int i = 0; i < 3; ++i) {
      ScaleResult c = RunScaleCellOnce(clean_sc);
      ScaleResult f = RunScaleCellOnce(fault_sc);
      if (i == 0 || (c.load.errors == 0 && f.load.errors == 0 && c.rps > best_clean.rps)) {
        best_clean = c;
        best_fault = f;
      }
    }
    TextTable ft({"disk", "req/s", "ok", "tempfails", "retries", "injected", "errors"});
    for (bool faulted : {false, true}) {
      const ScaleResult& r = faulted ? best_fault : best_clean;
      ft.AddRow({faulted ? "1% enospc" : "clean", WithCommas(static_cast<uint64_t>(r.rps)),
                 WithCommas(r.load.ok_requests), WithCommas(r.load.tempfails),
                 WithCommas(r.load.retries), WithCommas(r.injected),
                 std::to_string(r.load.errors)});
    }
    std::printf("== faultnet: degradation under a hostile disk (deliver-only, 32 clients) ==\n");
    std::printf("%s\n", ft.Render().c_str());
    if (best_fault.rps > 0) {
      std::printf("degradation: faulted runs at %.0f%% of clean throughput\n\n",
                  100.0 * best_fault.rps / best_clean.rps);
    }
    faultnet_rows.push_back(RenderScaleRow("faultnet-clean-c32", best_clean));
    faultnet_rows.push_back(RenderScaleRow("faultnet-enospc-c32", best_fault));

    // The cheap pinned cell bench_check re-runs: 8 clients, 300 requests,
    // same 1% plan. Fault timing is scheduling-dependent, so the gate
    // checks invariants (errors==0, ok+tempfails==requests) rather than an
    // exact executions match.
    ScaleConfig check_sc = fault_sc;
    check_sc.clients = 8;
    check_sc.requests = 300;
    ScaleResult r = RunScaleCellOnce(check_sc);
    std::printf("faultnet check cell (8 clients, 300 requests, 1%% enospc): "
                "%llu ok + %llu tempfail, %llu injected, %llu errors\n\n",
                static_cast<unsigned long long>(r.load.ok_requests),
                static_cast<unsigned long long>(r.load.tempfails),
                static_cast<unsigned long long>(r.injected),
                static_cast<unsigned long long>(r.load.errors));
    faultnet_rows.push_back(RenderScaleRow("faultnet-check-c8", r));
  }

  // Re-probe after the sweep: the pair documents the disk regime the rows
  // were measured under (p50_us = before, p99_us = after, ms = mean).
  uint64_t fsync_us_after = ProbeFsyncUs(root);
  std::printf("store fsync latency after sweep: %llu us median\n",
              static_cast<unsigned long long>(fsync_us_after));
  {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"system\": \"fig11s-fsync-probe\", \"por\": false, \"executions\": 50, "
                  "\"deduped\": 0, \"pruned\": 0, \"histories\": 0, \"violations\": 0, "
                  "\"ms\": %.3f, \"p50_us\": %llu, \"p99_us\": %llu, \"peak_rss\": 0, "
                  "\"outcome\": \"complete\"}",
                  static_cast<double>(fsync_us + fsync_us_after) / 2000.0,
                  static_cast<unsigned long long>(fsync_us),
                  static_cast<unsigned long long>(fsync_us_after));
    rows.push_back(buf);
  }

  if (json_path != nullptr) {
    if (!perennial::benchjson::UpsertJsonRows(json_path, "fig11s-", rows, "bench_fig11")) {
      return 1;
    }
    if (!perennial::benchjson::UpsertJsonRows(json_path, "faultnet-", faultnet_rows,
                                              "bench_fig11")) {
      return 1;
    }
    std::printf("updated %s (%zu fig11s- rows, %zu faultnet- rows)\n", json_path, rows.size(),
                faultnet_rows.size());
  }

  fs::remove_all(root, ec);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--at-scale") == 0) {
      return RunAtScale(argc, argv);
    }
  }
  std::string root = PickRoot();
  unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> thread_counts;
  for (int t = 1; t <= static_cast<int>(std::min(hw * 2, 12u)); t *= 2) {
    thread_counts.push_back(t);
  }

  std::printf("== Figure 11: mail-server throughput, mixed 50/50 workload ==\n");
  std::printf("machine: %u hardware thread(s); store: %s (tmpfs);\n", hw, root.c_str());
  std::printf("%llu total requests per cell, %llu users, %llu-byte messages\n\n",
              static_cast<unsigned long long>(kRequests),
              static_cast<unsigned long long>(kUsers),
              static_cast<unsigned long long>(kMsgLen));

  uint64_t cmail_overhead = CalibrateCmailOverhead(root);
  std::printf("calibrated CMAIL extraction-overhead model: %llu ns busy-work per request\n\n",
              static_cast<unsigned long long>(cmail_overhead));

  TextTable table({"threads", "Mailboat req/s", "GoMail req/s", "CMAIL req/s",
                   "Mailboat/GoMail", "GoMail/CMAIL"});
  for (int threads : thread_counts) {
    double mailboat = RunMailboat(root, threads);
    double gomail = RunGoMail(root, threads, 0);
    double cmail = RunGoMail(root, threads, cmail_overhead);
    table.AddRow({std::to_string(threads), WithCommas(static_cast<uint64_t>(mailboat)),
                  WithCommas(static_cast<uint64_t>(gomail)),
                  WithCommas(static_cast<uint64_t>(cmail)),
                  FixedDigits(gomail > 0 ? mailboat / gomail : 0, 2) + "x",
                  FixedDigits(cmail > 0 ? gomail / cmail : 0, 2) + "x"});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("paper (single core): Mailboat 1.81x GoMail; GoMail 1.34x CMAIL;\n");
  std::printf("all three servers scale with cores on multicore hardware (tmpfs parallelism).\n");

  std::error_code ec;
  fs::remove_all(root, ec);
  return 0;
}
