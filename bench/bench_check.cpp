// Wall-time regression gate (ctest label tier2-bench): re-runs the two
// smallest §9.1 bench rows — repl-2writers and wal-recovery-crash — under
// the same option sets bench_sec91_patterns uses for its POR sweep, and
// compares against the COMMITTED BENCH_refine.json (path = argv[1]).
//
// Failure conditions:
//  * a cell's execution count differs from the committed row (the state
//    space changed but the baseline was not regenerated), or
//  * a cell's wall time exceeds 3x the committed ms (plus a small absolute
//    floor so sub-millisecond rows do not trip on scheduler noise).
//
// The rows are chosen smallest-first so the gate stays cheap enough to run
// in every tier2 sweep; the full table is regenerated manually with
// `bench_sec91_patterns --json BENCH_refine.json`.
//
// A third cell re-runs the cheapest PCT deep-bug row (pct-kv-deadlock-deep
// at a quarter budget, seed 1). PCT runs are seed-deterministic, so any
// change to the draw order — priority assignment, change-point placement,
// crash/env draws — shows up as an executions mismatch against the
// committed row; the pct rows are regenerated with
// `bench_pct --json BENCH_refine.json`.
//
// A fourth cell (fig11s-check-c8) boots the real netserv server on /tmp
// and pushes 300 requests through 8 loopback clients: exact request count,
// zero client-visible errors, a generous wall bound, and — when the
// committed row carries a cpu_us_per_request baseline — a process-CPU
// ceiling per request. The CPU gate is the hot-path regression tripwire:
// wall time on a shared disk is noisy, but CPU per request is stable, so a
// parsing or syscall regression shows up here even when the wall bound
// absorbs it. The fig11s- rows are regenerated with
// `bench_fig11_mailboat --at-scale --json ...`.
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/pct_suite.h"
#include "src/fault/syscall_fault.h"
#include "src/netserv/harness.h"
#include "src/netserv/loadgen.h"
#include "src/refine/explorer.h"
#include "src/systems/pattern_harness.h"
#include "src/systems/repl/repl_harness.h"

namespace {

using namespace perennial;           // NOLINT
using namespace perennial::systems;  // NOLINT
using refine::ExplorerOptions;
using refine::Report;

struct BaselineCell {
  bool found = false;
  uint64_t executions = 0;
  double ms = 0;
  double cpu_us_per_request = 0;  // 0 = row has no CPU baseline
};

// Minimal scan of the bench_json.h output format: one row object per line,
// fields in a fixed order. Robust to whitespace but not to reordering —
// which is fine, the writer in this repo is the only producer.
BaselineCell FindCell(const std::string& json, const std::string& slug, bool por) {
  BaselineCell cell;
  std::string needle = "\"system\": \"" + slug + "\", \"por\": " + (por ? "true" : "false");
  size_t at = json.find(needle);
  if (at == std::string::npos) {
    return cell;
  }
  auto field = [&](const char* name) -> double {
    std::string key = std::string("\"") + name + "\": ";
    size_t k = json.find(key, at);
    if (k == std::string::npos) {
      return -1;
    }
    return std::strtod(json.c_str() + k + key.size(), nullptr);
  };
  cell.found = true;
  cell.executions = static_cast<uint64_t>(field("executions"));
  cell.ms = field("ms");
  // Only perf rows carry the key; the unbounded find would otherwise read
  // it off a later row, so stop the scan at this row's closing brace.
  size_t row_end = json.find('}', at);
  size_t cpu_at = json.find("\"cpu_us_per_request\": ", at);
  if (cpu_at != std::string::npos && (row_end == std::string::npos || cpu_at < row_end)) {
    cell.cpu_us_per_request =
        std::strtod(json.c_str() + cpu_at + std::strlen("\"cpu_us_per_request\": "), nullptr);
  }
  return cell;
}

struct Measured {
  uint64_t executions = 0;
  double ms = 0;
};

template <typename Spec, typename Factory>
Measured RunCell(Spec spec, Factory factory, int max_crashes, bool por) {
  ExplorerOptions opts;
  opts.max_crashes = max_crashes;
  opts.use_por = por;
  opts.memoize_spec_prefixes = por;  // the sweep's "after" = full engine
  auto start = std::chrono::steady_clock::now();
  refine::Explorer<Spec> ex(std::move(spec), factory, opts);
  Report report = ex.Run();
  Measured m;
  m.executions = report.executions;
  m.ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
             .count();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bench_check <path/to/BENCH_refine.json>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "bench_check: cannot read %s\n", argv[1]);
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();

  // Sub-millisecond baselines would make a 3x bound trip on scheduler
  // noise; the floor keeps the gate meaningful only for real regressions.
  constexpr double kFloorMs = 25.0;
  int failures = 0;

  auto check = [&](const std::string& slug, bool por, const Measured& m) {
    BaselineCell base = FindCell(json, slug, por);
    if (!base.found) {
      std::fprintf(stderr, "FAIL %s por=%d: no committed baseline row\n", slug.c_str(), por);
      ++failures;
      return;
    }
    if (m.executions != base.executions) {
      std::fprintf(stderr,
                   "FAIL %s por=%d: executions %llu != committed %llu "
                   "(state space changed; regenerate BENCH_refine.json)\n",
                   slug.c_str(), por, static_cast<unsigned long long>(m.executions),
                   static_cast<unsigned long long>(base.executions));
      ++failures;
      return;
    }
    double allowed = 3.0 * base.ms;
    if (allowed < kFloorMs) {
      allowed = kFloorMs;
    }
    if (m.ms > allowed) {
      std::fprintf(stderr, "FAIL %s por=%d: %.1f ms > allowed %.1f ms (baseline %.1f ms)\n",
                   slug.c_str(), por, m.ms, allowed, base.ms);
      ++failures;
      return;
    }
    std::printf("ok   %s por=%d: %llu execs, %.1f ms (baseline %.1f ms, allowed %.1f ms)\n",
                slug.c_str(), por, static_cast<unsigned long long>(m.executions), m.ms, base.ms,
                allowed);
  };

  {
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
    for (bool por : {false, true}) {
      check("repl-2writers", por,
            RunCell(ReplSpec{1}, [&] { return MakeReplInstance(options); }, 1, por));
    }
  }
  {
    WalHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2)}};
    for (bool por : {false, true}) {
      check("wal-recovery-crash", por,
            RunCell(PairSpec{}, [&] { return MakeWalInstance(options); }, 2, por));
    }
  }
  ForEachDeepBug([&](const DeepBugInfo& info, auto spec, auto factory) {
    if (std::string(info.slug) != "pct-kv-deadlock-deep") {
      return;
    }
    using Spec = decltype(spec);
    ExplorerOptions opts = PctSuiteOptions(info, /*seed=*/1);
    opts.random_runs = info.budget / 4;
    auto start = std::chrono::steady_clock::now();
    refine::Explorer<Spec> ex(spec, factory, opts);
    Report report = ex.Run();
    Measured m;
    m.executions = report.executions;
    m.ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
               .count();
    // The committed row was produced by a run that found the bug; a PCT
    // draw-order change that loses it would still match on executions if
    // every slice ran to its run budget, so pin the find as well.
    if (report.violations.empty()) {
      std::fprintf(stderr, "FAIL pct-kv-deadlock-deep-b%llu: quarter-budget PCT lost the bug\n",
                   static_cast<unsigned long long>(info.budget / 4));
      ++failures;
    }
    check("pct-kv-deadlock-deep-b" + std::to_string(info.budget / 4), false, m);
  });
  {
    // Real-server smoke cell: request count is deterministic (shared budget,
    // drained exactly), so executions must match; wall gets its own generous
    // floor because the cell pays ~100us per ext4 barrier even when healthy.
    namespace ns = perennial::netserv;
    ns::InprocMailServer::Config config;
    config.root = "/tmp/pcc_bench_check_fig11s-" + std::to_string(::getpid());
    // Mirror the fig11s-check-c8 cell in bench_fig11_mailboat --at-scale.
    config.users = 64;
    config.gc_window_us = 2000;
    config.gc_batch = 256;
    config.loops = 2;
    config.executors = 16;
    ns::InprocMailServer server(config);
    if (!server.Start()) {
      std::fprintf(stderr, "FAIL fig11s-check-c8: server failed to start\n");
      ++failures;
    } else {
      ns::LoadgenOptions load;
      load.smtp_port = server.smtp_port();
      load.pop3_port = server.pop3_port();
      load.clients = 8;
      load.requests = 300;
      load.num_users = config.users;
      load.pickup_fraction = 0.25;
      load.body_bytes = 256;
      benchjson::CpuUsage cpu0 = benchjson::ProcessCpuUsage();
      ns::LoadgenResult result = ns::RunLoadgen(load);
      benchjson::CpuUsage cpu1 = benchjson::ProcessCpuUsage();
      server.Stop();
      double cpu_us_per_request =
          result.ok_requests > 0
              ? static_cast<double>((cpu1.utime_us - cpu0.utime_us) +
                                    (cpu1.stime_us - cpu0.stime_us)) /
                    static_cast<double>(result.ok_requests)
              : 0;
      if (result.aborted || result.errors != 0) {
        std::fprintf(stderr, "FAIL fig11s-check-c8: errors=%llu aborted=%d\n",
                     static_cast<unsigned long long>(result.errors), result.aborted);
        ++failures;
      } else {
        BaselineCell base = FindCell(json, "fig11s-check-c8", false);
        if (!base.found) {
          std::fprintf(stderr, "FAIL fig11s-check-c8: no committed baseline row\n");
          ++failures;
        } else if (result.ok_requests != base.executions) {
          std::fprintf(stderr,
                       "FAIL fig11s-check-c8: requests %llu != committed %llu "
                       "(regenerate with bench_fig11_mailboat --at-scale --json)\n",
                       static_cast<unsigned long long>(result.ok_requests),
                       static_cast<unsigned long long>(base.executions));
          ++failures;
        } else {
          double allowed = 3.0 * base.ms;
          if (allowed < 2000.0) {
            allowed = 2000.0;  // absorbs ctest -j co-scheduling on 1 CPU
          }
          // CPU ceiling: 4x the committed per-request CPU, floored to
          // absorb ctest -j co-scheduling jitter on a single-CPU host.
          // The host's virtualized-disk phases swing measured CPU ~3x for
          // the same binary (see EXPERIMENTS.md), so a tighter multiplier
          // flakes; a real hot-path regression scales both phases and
          // still trips this.
          double cpu_allowed = 4.0 * base.cpu_us_per_request;
          if (cpu_allowed < 150.0) {
            cpu_allowed = 150.0;
          }
          if (result.wall_ms > allowed) {
            std::fprintf(stderr, "FAIL fig11s-check-c8: %.1f ms > allowed %.1f ms\n",
                         result.wall_ms, allowed);
            ++failures;
          } else if (base.cpu_us_per_request > 0 && cpu_us_per_request > cpu_allowed) {
            std::fprintf(stderr,
                         "FAIL fig11s-check-c8: %.1f cpu us/req > allowed %.1f "
                         "(baseline %.1f; hot-path CPU regression)\n",
                         cpu_us_per_request, cpu_allowed, base.cpu_us_per_request);
            ++failures;
          } else {
            std::printf("ok   fig11s-check-c8: %llu reqs, %.1f ms, %.1f cpu us/req "
                        "(baseline %.1f ms / %.1f us, allowed %.1f ms / %.1f us)\n",
                        static_cast<unsigned long long>(result.ok_requests), result.wall_ms,
                        cpu_us_per_request, base.ms, base.cpu_us_per_request, allowed,
                        cpu_allowed);
          }
        }
      }
    }
    std::string cleanup = "rm -rf " + config.root;
    [[maybe_unused]] int rc = std::system(cleanup.c_str());
  }
  {
    // Robustness gate (faultnet-check-c8): the same cell under a ~1% ENOSPC
    // fault plan. Fault timing depends on thread scheduling, so the gate
    // pins invariants, not exact counts: zero protocol errors (faults must
    // surface as RFC tempfails, never broken responses), every request
    // accounted for as ok or tempfail, forward progress despite the storm,
    // and a generous wall bound against the committed row.
    namespace ns = perennial::netserv;
    ns::InprocMailServer::Config config;
    config.root = "/tmp/pcc_bench_check_faultnet-" + std::to_string(::getpid());
    config.users = 64;
    config.gc_window_us = 2000;
    config.gc_batch = 256;
    config.loops = 2;
    config.executors = 16;
    // Keep this spec in sync with the faultnet- section in
    // bench_fig11_mailboat --at-scale.
    Result<fault::SyscallFaultPlan> plan =
        fault::SyscallFaultPlan::Parse("no-space=0.01,transient-write=0.005,seed=11");
    if (!plan.ok()) {
      std::fprintf(stderr, "FAIL faultnet-check-c8: plan parse: %s\n",
                   plan.status().ToString().c_str());
      ++failures;
    } else {
      config.fault_plan = plan.value();
      ns::InprocMailServer server(config);
      if (!server.Start()) {
        std::fprintf(stderr, "FAIL faultnet-check-c8: server failed to start\n");
        ++failures;
      } else {
        ns::LoadgenOptions load;
        load.smtp_port = server.smtp_port();
        load.pop3_port = server.pop3_port();
        load.clients = 8;
        load.requests = 300;
        load.num_users = config.users;
        load.pickup_fraction = 0.0;  // deliver-only, mirrors the committed cell
        load.body_bytes = 256;
        load.stall_timeout_ms = 60000;
        ns::LoadgenResult result = ns::RunLoadgen(load);
        uint64_t injected =
            server.faults() != nullptr ? server.faults()->total_injected() : 0;
        server.Stop();
        BaselineCell base = FindCell(json, "faultnet-check-c8", false);
        if (!base.found) {
          std::fprintf(stderr, "FAIL faultnet-check-c8: no committed baseline row "
                               "(regenerate with bench_fig11_mailboat --at-scale --json)\n");
          ++failures;
        } else if (result.aborted || result.errors != 0) {
          std::fprintf(stderr,
                       "FAIL faultnet-check-c8: errors=%llu aborted=%d "
                       "(faults must degrade to tempfails, not protocol errors)\n",
                       static_cast<unsigned long long>(result.errors), result.aborted);
          ++failures;
        } else if (result.ok_requests + result.tempfails != 300) {
          std::fprintf(stderr,
                       "FAIL faultnet-check-c8: ok %llu + tempfail %llu != 300 "
                       "(requests unaccounted for)\n",
                       static_cast<unsigned long long>(result.ok_requests),
                       static_cast<unsigned long long>(result.tempfails));
          ++failures;
        } else if (result.ok_requests == 0) {
          std::fprintf(stderr,
                       "FAIL faultnet-check-c8: a 1%% storm starved the server completely\n");
          ++failures;
        } else {
          double allowed = 3.0 * base.ms;
          if (allowed < 3000.0) {
            allowed = 3000.0;  // retries + backoff ride on a noisy shared disk
          }
          if (result.wall_ms > allowed) {
            std::fprintf(stderr, "FAIL faultnet-check-c8: %.1f ms > allowed %.1f ms\n",
                         result.wall_ms, allowed);
            ++failures;
          } else {
            std::printf("ok   faultnet-check-c8: %llu ok + %llu tempfail, %llu retries, "
                        "%llu injected, %.1f ms (allowed %.1f ms)\n",
                        static_cast<unsigned long long>(result.ok_requests),
                        static_cast<unsigned long long>(result.tempfails),
                        static_cast<unsigned long long>(result.retries),
                        static_cast<unsigned long long>(injected), result.wall_ms, allowed);
          }
        }
      }
    }
    std::string cleanup = "rm -rf " + config.root;
    [[maybe_unused]] int rc = std::system(cleanup.c_str());
  }
  return failures == 0 ? 0 : 1;
}
