// Microbenchmarks (google-benchmark): the cost of the framework's moving
// parts — scheduler steps, modeled heap and file-system operations, the
// linearization search, whole explorer runs, and native Mailboat
// operations on tmpfs. These quantify the overhead budget behind the
// checker-throughput numbers in bench_sec91_patterns.
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <vector>

#include "bench/bench_json.h"

#include "src/disk/disk.h"
#include "src/goose/heap.h"
#include "src/goose/channel.h"
#include "src/goose/mutex.h"
#include "src/goose/sync_extra.h"
#include "src/goose/world.h"
#include "src/goosefs/goosefs.h"
#include "src/goosefs/posix_fs.h"
#include "src/mailboat/mailboat.h"
#include "src/refine/explorer.h"
#include "src/refine/linearize.h"
#include "src/refine/parallel_explorer.h"
#include "src/systems/repl/repl_harness.h"
#include "src/systems/txnlog/txn_log.h"
#include "tests/sim_util.h"

namespace {

using namespace perennial;  // NOLINT

void BM_SchedulerSpawnStep(benchmark::State& state) {
  for (auto _ : state) {
    proc::Scheduler sched;
    proc::SchedulerScope scope(&sched);
    auto body = []() -> proc::Task<void> {
      for (int i = 0; i < 16; ++i) {
        co_await proc::Yield();
      }
    };
    sched.Spawn(body());
    while (!sched.AllDone()) {
      sched.Step(0);
    }
  }
  state.SetItemsProcessed(state.iterations() * 17);
}
BENCHMARK(BM_SchedulerSpawnStep);

void BM_HeapLoadStoreSim(benchmark::State& state) {
  goose::World world;
  goose::Heap heap(&world);
  goose::Ptr<uint64_t> p = heap.New<uint64_t>(0);
  for (auto _ : state) {
    proc::Scheduler sched;
    proc::SchedulerScope scope(&sched);
    auto body = [&]() -> proc::Task<void> {
      co_await heap.Store<uint64_t>(p, 1);
      benchmark::DoNotOptimize(co_await heap.Load(p));
    };
    sched.Spawn(body());
    while (!sched.AllDone()) {
      sched.Step(0);
    }
  }
}
BENCHMARK(BM_HeapLoadStoreSim);

void BM_HeapLoadStoreNative(benchmark::State& state) {
  goose::World world;
  goose::Heap heap(&world);
  goose::Ptr<uint64_t> p = heap.New<uint64_t>(0);
  for (auto _ : state) {
    auto body = [&]() -> proc::Task<void> {
      co_await heap.Store<uint64_t>(p, 1);
      benchmark::DoNotOptimize(co_await heap.Load(p));
    };
    proc::RunSyncVoid(body());
  }
}
BENCHMARK(BM_HeapLoadStoreNative);

void BM_MutexLockUnlockNative(benchmark::State& state) {
  goose::World world;
  goose::Mutex mu(&world);
  for (auto _ : state) {
    auto body = [&]() -> proc::Task<void> {
      co_await mu.Lock();
      co_await mu.Unlock();
    };
    proc::RunSyncVoid(body());
  }
}
BENCHMARK(BM_MutexLockUnlockNative);

void BM_GooseFsCreateAppendDelete(benchmark::State& state) {
  goose::World world;
  goosefs::GooseFs fs(&world, {"dir"});
  goosefs::Bytes data(128, 'x');
  for (auto _ : state) {
    auto body = [&]() -> proc::Task<void> {
      goosefs::Fd fd = (co_await fs.Create("dir", "f")).value();
      (void)co_await fs.Append(fd, data);
      (void)co_await fs.Close(fd);
      (void)co_await fs.Delete("dir", "f");
    };
    proc::RunSyncVoid(body());
  }
}
BENCHMARK(BM_GooseFsCreateAppendDelete);

void BM_PosixFsCreateAppendDelete(benchmark::State& state) {
  std::string root = "/dev/shm/pcc_micro";
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  if (!std::filesystem::create_directories(root, ec)) {
    root = std::filesystem::temp_directory_path().string() + "/pcc_micro";
    std::filesystem::remove_all(root, ec);
    std::filesystem::create_directories(root, ec);
  }
  goosefs::PosixFilesys fs(root, {.cache_dir_fds = true});
  (void)fs.EnsureDirs({"dir"});
  goosefs::Bytes data(128, 'x');
  for (auto _ : state) {
    auto body = [&]() -> proc::Task<void> {
      goosefs::Fd fd = (co_await fs.Create("dir", "f")).value();
      (void)co_await fs.Append(fd, data);
      (void)co_await fs.Close(fd);
      (void)co_await fs.Delete("dir", "f");
    };
    proc::RunSyncVoid(body());
  }
  std::filesystem::remove_all(root, ec);
}
BENCHMARK(BM_PosixFsCreateAppendDelete);

void BM_DiskWriteSim(benchmark::State& state) {
  goose::World world;
  disk::Disk d(&world, 8, disk::BlockOfU64(0));
  disk::Block b = disk::BlockOfU64(42);
  for (auto _ : state) {
    proc::Scheduler sched;
    proc::SchedulerScope scope(&sched);
    auto body = [&]() -> proc::Task<void> { (void)co_await d.Write(0, b); };
    sched.Spawn(body());
    while (!sched.AllDone()) {
      sched.Step(0);
    }
  }
}
BENCHMARK(BM_DiskWriteSim);

void BM_LinearizeConcurrentHistory(benchmark::State& state) {
  // A history with `n` overlapping register writes + one read: the search
  // must consider many linearization orders.
  using Spec = systems::ReplSpec;
  Spec spec{1};
  refine::History<Spec> history;
  int n = static_cast<int>(state.range(0));
  std::vector<uint64_t> ids;
  for (int i = 0; i < n; ++i) {
    ids.push_back(history.Invoke(i, Spec::MakeWrite(0, static_cast<uint64_t>(i + 1))));
  }
  uint64_t read_id = history.Invoke(n, Spec::MakeRead(0));
  history.Return(read_id, static_cast<uint64_t>(n));
  for (uint64_t id : ids) {
    history.Return(id, 0);
  }
  for (auto _ : state) {
    refine::LinearizabilityChecker<Spec> checker(&spec);
    auto result = checker.Check(history);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LinearizeConcurrentHistory)->Arg(2)->Arg(4)->Arg(6);

void BM_ExplorerReplExhaustive(benchmark::State& state) {
  using namespace perennial::systems;  // NOLINT
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
  for (auto _ : state) {
    refine::ExplorerOptions opts;
    opts.max_crashes = static_cast<int>(state.range(0));
    refine::Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
    refine::Report report = ex.Run();
    benchmark::DoNotOptimize(report);
    state.counters["executions"] = static_cast<double>(report.executions);
  }
}
BENCHMARK(BM_ExplorerReplExhaustive)->Arg(0)->Arg(1);

// The exhaustive-DFS workload used to measure parallel speedup: heavy
// enough (tens of thousands of executions) that worker fan-out dominates
// coordination overhead. Arg 0 = the serial reference Explorer; Arg N>0 =
// ParallelExplorer with N workers. Compare the wall-clock times across
// args for the speedup (the executions counter must not vary with N).
void BM_ExplorerExhaustiveWorkers(benchmark::State& state) {
  using namespace perennial::systems;  // NOLINT
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5), ReplSpec::MakeRead(0)},
                        {ReplSpec::MakeWrite(0, 7)}};
  const int workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    refine::ExplorerOptions opts;
    opts.max_crashes = 1;
    refine::Report report;
    if (workers == 0) {
      refine::Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
      report = ex.Run();
    } else {
      opts.num_workers = workers;
      refine::ParallelExplorer<ReplSpec> ex(ReplSpec{1},
                                            [&] { return MakeReplInstance(options); }, opts);
      report = ex.Run();
    }
    benchmark::DoNotOptimize(report);
    state.counters["executions"] = static_cast<double>(report.executions);
  }
}
BENCHMARK(BM_ExplorerExhaustiveWorkers)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// Sleep-set POR on the same workload: fewer executions (see the counter)
// at identical verdicts. Arg 0 = POR off (unreduced baseline), Arg 1 = on.
void BM_ExplorerPartialOrderReduction(benchmark::State& state) {
  using namespace perennial::systems;  // NOLINT
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5), ReplSpec::MakeRead(0)},
                        {ReplSpec::MakeWrite(0, 7)}};
  for (auto _ : state) {
    refine::ExplorerOptions opts;
    opts.max_crashes = 1;
    opts.use_por = state.range(0) != 0;
    refine::Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
    refine::Report report = ex.Run();
    benchmark::DoNotOptimize(report);
    state.counters["executions"] = static_cast<double>(report.executions);
  }
}
BENCHMARK(BM_ExplorerPartialOrderReduction)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Fingerprint pruning on the same workload: identical executions, far
// fewer linearizability searches (see the deduped counter).
void BM_ExplorerFingerprintDedup(benchmark::State& state) {
  using namespace perennial::systems;  // NOLINT
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5), ReplSpec::MakeRead(0)},
                        {ReplSpec::MakeWrite(0, 7)}};
  for (auto _ : state) {
    refine::ExplorerOptions opts;
    opts.max_crashes = 1;
    opts.dedup_histories = state.range(0) != 0;
    refine::Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
    refine::Report report = ex.Run();
    benchmark::DoNotOptimize(report);
    state.counters["deduped"] = static_cast<double>(report.histories_deduped);
  }
}
BENCHMARK(BM_ExplorerFingerprintDedup)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_RWMutexReadSideNative(benchmark::State& state) {
  goose::World world;
  goose::RWMutex mu(&world);
  for (auto _ : state) {
    auto body = [&]() -> proc::Task<void> {
      co_await mu.RLock();
      co_await mu.RUnlock();
    };
    proc::RunSyncVoid(body());
  }
}
BENCHMARK(BM_RWMutexReadSideNative);

void BM_ChannelSendRecvNative(benchmark::State& state) {
  goose::World world;
  goose::Chan<int> ch(&world, 16);
  for (auto _ : state) {
    auto body = [&]() -> proc::Task<void> {
      co_await ch.Send(1);
      benchmark::DoNotOptimize(co_await ch.Recv());
    };
    proc::RunSyncVoid(body());
  }
}
BENCHMARK(BM_ChannelSendRecvNative);

void BM_TxnLogCommitSim(benchmark::State& state) {
  goose::World world;
  systems::TxnLog log(&world, 4, 64);
  std::vector<std::pair<uint64_t, uint64_t>> batch{{0, 7}, {1, 9}};
  for (auto _ : state) {
    proc::Scheduler sched;
    proc::SchedulerScope scope(&sched);
    auto body = [&]() -> proc::Task<void> { co_await log.CommitBatch(batch, 1); };
    sched.Spawn(body());
    while (!sched.AllDone()) {
      sched.Step(0);
    }
  }
}
BENCHMARK(BM_TxnLogCommitSim);

void BM_MailboatDeliverGooseFs(benchmark::State& state) {
  goose::World world;
  goosefs::GooseFs fs(&world, mailboat::Mailboat::DirLayout(1));
  mailboat::Mailboat mail(&world, &fs, mailboat::Mailboat::Options{1, 4096, 512, 1});
  goosefs::Bytes body(1024, 'm');
  for (auto _ : state) {
    auto run = [&]() -> proc::Task<void> {
      std::string id = (co_await mail.Deliver(0, body)).value();
      // Bench-level cleanup via the fs (Mailboat's Delete requires the
      // pickup lease; this measures delivery cost only).
      (void)co_await fs.Delete("user0", id);
    };
    proc::RunSyncVoid(run());
  }
}
BENCHMARK(BM_MailboatDeliverGooseFs);

// The --json sweep: the two explorer workloads above, each run once with
// POR off and once with POR on (fingerprint dedup enabled so the deduped
// column is populated), timed directly rather than through the
// google-benchmark loop so each cell is a single comparable run.
std::vector<perennial::benchjson::PorJsonRow> RunPorJsonSweep(const char* filter) {
  using namespace perennial::systems;  // NOLINT
  std::vector<perennial::benchjson::PorJsonRow> rows;
  struct Workload {
    std::string slug;
    ReplHarnessOptions options;
  };
  std::vector<Workload> workloads;
  {
    Workload w;
    w.slug = "micro-repl-2writers";
    w.options.num_blocks = 1;
    w.options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
    workloads.push_back(std::move(w));
  }
  {
    Workload w;
    w.slug = "micro-repl-writer-reader";
    w.options.num_blocks = 1;
    w.options.client_ops = {{ReplSpec::MakeWrite(0, 5), ReplSpec::MakeRead(0)},
                            {ReplSpec::MakeWrite(0, 7)}};
    workloads.push_back(std::move(w));
  }
  for (const Workload& w : workloads) {
    if (!perennial::benchjson::FilterMatches(filter, w.slug, w.slug)) {
      continue;
    }
    for (bool por : {false, true}) {
      refine::ExplorerOptions opts;
      opts.max_crashes = 1;
      opts.dedup_histories = true;
      opts.use_por = por;
      opts.memoize_spec_prefixes = por;  // "after" = the full pruning engine
      auto start = std::chrono::steady_clock::now();
      refine::Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeReplInstance(w.options); },
                                    opts);
      refine::Report report = ex.Run();
      double ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                            start)
                      .count();
      rows.push_back({w.slug, por, report.executions, report.histories_deduped,
                      report.por_pruned, report.histories_checked,
                      static_cast<uint64_t>(report.violations.size()), ms});
    }
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  // Both flags strip themselves from argv (the remainder is handed to
  // google-benchmark, which rejects flags it does not know).
  std::vector<char*> after_filter;
  const char* filter = perennial::benchjson::ParseFilter(argc, argv, &after_filter);
  std::vector<char*> passthrough;
  const char* json_path = perennial::benchjson::ParseJsonPath(
      static_cast<int>(after_filter.size()), after_filter.data(), &passthrough);
  if (json_path != nullptr) {
    auto rows = RunPorJsonSweep(filter);
    if (!perennial::benchjson::WritePorJson(json_path, "bench_micro", rows)) {
      return 1;
    }
    std::printf("wrote %zu before/after rows to %s\n", rows.size(), json_path);
  }
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
