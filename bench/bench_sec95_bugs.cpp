// §9.5 reproduction: the bug suite.
//
// The paper discusses bugs encountered while developing Mailboat (an
// infinite pickup loop for messages over 512 bytes; the requirement that
// callers not mutate the message slice during delivery) plus the broken
// recovery designs §1 uses to motivate the techniques (zeroing recovery).
// This bench re-introduces each bug as a mutation and measures how the
// checker detects it: the violation class, how many executions it takes,
// and wall-clock time to first detection.
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

#include "src/base/table.h"
#include "src/mailboat/mail_harness.h"
#include "src/refine/explorer.h"
#include "src/systems/pattern_harness.h"
#include "src/systems/ftl/ftl_harness.h"
#include "src/systems/repl/repl_harness.h"

namespace {

using namespace perennial;           // NOLINT
using namespace perennial::systems;  // NOLINT
using refine::Explorer;
using refine::ExplorerOptions;
using refine::Report;

void Detect(TextTable& table, const std::string& bug,
            const std::function<Report()>& run) {
  auto start = std::chrono::steady_clock::now();
  Report report = run();
  double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start).count();
  std::string kind = report.violations.empty() ? "NOT DETECTED" : report.violations[0].kind;
  table.AddRow({bug, kind, WithCommas(report.executions), FixedDigits(ms, 1) + " ms"});
}

template <typename Spec, typename Factory>
std::function<Report()> Checker(Spec spec, Factory factory, int max_crashes,
                                uint64_t max_steps = 5000) {
  return [spec, factory, max_crashes, max_steps] {
    ExplorerOptions opts;
    opts.max_crashes = max_crashes;
    opts.max_violations = 1;  // stop at first detection
    opts.max_steps_per_run = max_steps;
    Explorer<Spec> ex(spec, factory, opts);
    return ex.Run();
  };
}

}  // namespace

int main() {
  std::printf("== Section 9.5: bug suite — every defect must be detected ==\n\n");

  TextTable table({"Bug", "detected as", "executions", "time to detect"});

  {  // §9.5 bug 1: the 512-byte pickup loop.
    mailboat::MailHarnessOptions options;
    options.num_users = 1;
    options.read_size = 2;
    options.client_scripts = {{{mailboat::MailAction::Kind::kDeliver, 0, "xy"},
                               {mailboat::MailAction::Kind::kPickupUnlock, 0, ""}}};
    options.mutations.pickup_512_loop = true;
    options.observe_mailboxes = false;
    Detect(table, "Mailboat: pickup loops on >=512B message",
           Checker(mailboat::MailSpec{1},
                   [options] { return mailboat::MakeMailInstance(options); }, 0, 300));
  }
  {  // §8.3: partial message visible without the spool+link discipline.
    mailboat::MailHarnessOptions options;
    options.num_users = 1;
    options.chunk_size = 1;
    options.client_scripts = {{{mailboat::MailAction::Kind::kDeliver, 0, "abc"}},
                              {{mailboat::MailAction::Kind::kPickupUnlock, 0, ""}}};
    options.mutations.deliver_in_place = true;
    Detect(table, "Mailboat: deliver skips spool (partial msg visible)",
           Checker(mailboat::MailSpec{1},
                   [options] { return mailboat::MakeMailInstance(options); }, 0));
  }
  {  // Recovery that destroys mail.
    mailboat::MailHarnessOptions options;
    options.num_users = 1;
    options.client_scripts = {{{mailboat::MailAction::Kind::kDeliver, 0, "precious"}}};
    options.mutations.recovery_deletes_mail = true;
    Detect(table, "Mailboat: recovery deletes delivered mail",
           Checker(mailboat::MailSpec{1},
                   [options] { return mailboat::MakeMailInstance(options); }, 1));
  }
  {  // §1: recovery zeroes both disks.
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
    options.mutations.recovery_zeroes = true;
    Detect(table, "Replicated disk: recovery zeroes both disks",
           Checker(ReplSpec{1}, [options] { return MakeReplInstance(options); }, 1));
  }
  {  // §3.1: no recovery at all, inconsistency exposed by failover.
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
    options.mutations.skip_recovery = true;
    options.with_disk1_failure_event = true;
    options.observe_repeats = 2;
    Detect(table, "Replicated disk: recovery skipped (failover exposes)",
           Checker(ReplSpec{1}, [options] { return MakeReplInstance(options); }, 1));
  }
  {  // Write to only one disk.
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
    options.mutations.skip_second_write = true;
    options.with_disk1_failure_event = true;
    Detect(table, "Replicated disk: write skips disk 2",
           Checker(ReplSpec{1}, [options] { return MakeReplInstance(options); }, 0));
  }
  {  // Unlocked writes.
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
    options.mutations.skip_locking = true;
    Detect(table, "Replicated disk: writes without per-address lock",
           Checker(ReplSpec{1}, [options] { return MakeReplInstance(options); }, 0));
  }
  {  // Shadow copy updated in place.
    ShadowHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)}};
    options.mutations.in_place_update = true;
    Detect(table, "Shadow copy: in-place update (torn pair)",
           Checker(PairSpec{}, [options] { return MakeShadowInstance(options); }, 1));
  }
  {  // WAL applies before committing.
    WalHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)}};
    options.mutations.apply_before_commit = true;
    Detect(table, "WAL: data applied before commit record",
           Checker(PairSpec{}, [options] { return MakeWalInstance(options); }, 1));
  }
  {  // WAL recovery discards the committed transaction but claims help.
    WalHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2)}};
    options.mutations.recovery_discards_log = true;
    Detect(table, "WAL: recovery claims help, applies nothing",
           Checker(PairSpec{}, [options] { return MakeWalInstance(options); }, 1));
  }
  {  // FTL: constant sequence numbers resurrect stale data after a crash.
    FtlHarnessOptions options;
    options.num_lbas = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 1), ReplSpec::MakeWrite(0, 2)}};
    options.mutations.reuse_sequence_numbers = true;
    Detect(table, "FTL: sequence numbers never increment",
           Checker(ReplSpec{1}, [options] { return MakeFtlInstance(options); }, 1));
  }
  {  // FTL: mapping-only writes lose acknowledged data.
    FtlHarnessOptions options;
    options.num_lbas = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
    options.mutations.volatile_write = true;
    Detect(table, "FTL: write skips the page program",
           Checker(ReplSpec{1}, [options] { return MakeFtlInstance(options); }, 1));
  }
  {  // Group commit advances the count before the data.
    GcHarnessOptions options;
    options.client_ops = {
        {GcSpec::MakeWrite(7), GcSpec::MakeFlush(), GcSpec::MakeWrite(9), GcSpec::MakeFlush()}};
    options.mutations.commit_count_first = true;
    Detect(table, "Group commit: count committed before values",
           Checker(GcSpec{}, [options] { return MakeGcInstance(options); }, 1));
  }

  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "paper: the 512-byte loop surfaced during the proof; the slice-mutation\n"
      "requirement was discovered because the model is low-level (§9.5). All\n"
      "rows above must read a violation class, never NOT DETECTED.\n");
  return 0;
}
