// bench_pct: bugs-found-vs-budget for the PCT deep-bug suite, and the
// one-command reproducer for minimized trace files.
//
// Default mode sweeps every pct_suite.h entry and prints one row per
// (strategy, budget) cell:
//   * dfs     — bounded exhaustive DFS at the calibrated budget (misses);
//   * pct@B/4, pct@B/2, pct@B — PCT d=3, seed 1, growing run budgets;
//   * swarm   — 4 seed batches splitting the full budget.
// With `--json <path>` the rows are UPSERTED into the shared
// BENCH_refine.json document: existing rows whose system slug starts with
// "pct-" are replaced, all other benches' rows are preserved verbatim.
// `bench_check` re-runs the cheapest PCT cell against the committed row.
//
// `--replay <trace>`: load a pcc-trace v1 file (written by the minimizer),
// rebuild the suite harness named by its run_id, replay the schedule, and
// report the violation — every minimized bug report is reproducible with
//   bench_pct --replay <file>.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/pct_suite.h"
#include "src/refine/explorer.h"
#include "src/refine/minimize.h"
#include "src/refine/parallel_explorer.h"

namespace {

using namespace perennial;           // NOLINT
using namespace perennial::systems;  // NOLINT
using benchjson::PorJsonRow;
using refine::ExplorerOptions;
using refine::Report;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

PorJsonRow MakeRow(const std::string& system, const Report& r, double ms) {
  PorJsonRow row;
  row.system = system;
  row.por = false;
  row.executions = r.executions;
  row.deduped = r.histories_deduped;
  row.pruned = r.por_pruned;
  row.histories = r.histories_checked;
  row.violations = r.violations.size();
  row.ms = ms;
  row.peak_rss = benchjson::PeakRssBytes();
  row.outcome = refine::OutcomeName(r.outcome);
  if (r.truncated && r.outcome == refine::RunOutcome::kComplete) {
    row.outcome = "truncated";  // budget exhausted before the bug: the DFS miss rows
  }
  return row;
}

// Renders rows with the exact field order bench_json.h writes, so upserted
// documents stay parseable by bench_check's fixed-order scan.
std::string RenderRow(const PorJsonRow& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"system\": \"%s\", \"por\": %s, \"executions\": %llu, "
                "\"deduped\": %llu, \"pruned\": %llu, \"histories\": %llu, "
                "\"violations\": %llu, \"ms\": %.1f, \"peak_rss\": %llu, "
                "\"outcome\": \"%s\"}",
                r.system.c_str(), r.por ? "true" : "false",
                static_cast<unsigned long long>(r.executions),
                static_cast<unsigned long long>(r.deduped),
                static_cast<unsigned long long>(r.pruned),
                static_cast<unsigned long long>(r.histories),
                static_cast<unsigned long long>(r.violations), r.ms,
                static_cast<unsigned long long>(r.peak_rss), r.outcome.c_str());
  return buf;
}

// Upsert: preserve every committed row whose system does not start with
// "pct-", drop the old pct- rows, append the fresh ones, and rewrite the
// document with the comma placement bench_json.h uses.
bool UpsertJson(const std::string& path, const std::vector<PorJsonRow>& rows) {
  std::string bench = "bench_pct";
  std::vector<std::string> kept;
  std::ifstream in(path);
  if (in) {
    std::string line;
    while (std::getline(in, line)) {
      size_t at = line.find("\"bench\": \"");
      if (at != std::string::npos) {
        at += std::strlen("\"bench\": \"");
        bench = line.substr(at, line.find('"', at) - at);
        continue;
      }
      if (line.find("{\"system\": \"") == std::string::npos) {
        continue;  // structural line
      }
      if (line.find("{\"system\": \"pct-") != std::string::npos) {
        continue;  // replaced below
      }
      while (!line.empty() && (line.back() == ',' || line.back() == ' ')) {
        line.pop_back();
      }
      kept.push_back(line);
    }
  }
  for (const PorJsonRow& r : rows) {
    kept.push_back(RenderRow(r));
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "--json: cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", bench.c_str());
  for (size_t i = 0; i < kept.size(); ++i) {
    std::fprintf(f, "%s%s\n", kept[i].c_str(), i + 1 < kept.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

int Replay(const char* path) {
  refine::TraceFile trace;
  Status s = refine::LoadTrace(path, &trace);
  if (!s.ok()) {
    std::fprintf(stderr, "bench_pct --replay: %s\n", s.ToString().c_str());
    return 2;
  }
  int result = -1;
  ForEachDeepBug([&](const DeepBugInfo& info, auto spec, auto factory) {
    if (trace.run_id != info.slug || result != -1) {
      return;
    }
    using Spec = decltype(spec);
    ExplorerOptions opts;
    opts.max_crashes = info.max_crashes;
    opts.max_violations = 1;
    refine::Explorer<Spec> engine(spec, factory, opts);
    Report r = engine.ReplaySchedule(trace.schedule);
    if (r.violations.empty()) {
      std::printf("replay of %s: NO violation (expected %s)\n", info.slug, trace.kind.c_str());
      result = 1;
      return;
    }
    std::printf("replay of %s: %s\n  schedule: %s\n", info.slug,
                r.violations[0].kind.c_str(), r.violations[0].trace.c_str());
    result = r.violations[0].kind == trace.kind ? 0 : 1;
  });
  if (result == -1) {
    std::fprintf(stderr, "bench_pct --replay: unknown run_id '%s' (not a pct_suite slug)\n",
                 trace.run_id.c_str());
    return 2;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> rest;
  const char* replay_path = benchjson::ParseValueFlag(argc, argv, "--replay", &rest);
  if (replay_path != nullptr) {
    return Replay(replay_path);
  }
  const char* json_path = benchjson::ParseJsonPath(static_cast<int>(rest.size()), rest.data(),
                                                   nullptr);
  const char* filter = benchjson::ParseFilter(static_cast<int>(rest.size()), rest.data(), nullptr);

  std::vector<PorJsonRow> rows;
  std::printf("%-34s %10s %12s %6s %10s\n", "cell", "budget", "executions", "found", "ms");
  ForEachDeepBug([&](const DeepBugInfo& info, auto spec, auto factory) {
    if (!benchjson::FilterMatches(filter, info.slug, info.slug)) {
      return;
    }
    using Spec = decltype(spec);
    auto emit = [&](const std::string& cell, uint64_t budget, const Report& r, double ms) {
      std::printf("%-34s %10llu %12llu %6llu %10.1f\n", cell.c_str(),
                  static_cast<unsigned long long>(budget),
                  static_cast<unsigned long long>(r.executions),
                  static_cast<unsigned long long>(r.violations.size()), ms);
      rows.push_back(MakeRow(cell, r, ms));
    };
    {
      auto start = std::chrono::steady_clock::now();
      Report dfs = refine::Explorer<Spec>(spec, factory, DfsSuiteOptions(info)).Run();
      emit(std::string(info.slug) + "-dfs", info.budget, dfs, MsSince(start));
    }
    for (uint64_t denom : {4, 2, 1}) {
      ExplorerOptions opts = PctSuiteOptions(info, /*seed=*/1);
      opts.random_runs = info.budget / denom;
      auto start = std::chrono::steady_clock::now();
      Report pct = refine::Explorer<Spec>(spec, factory, opts).Run();
      emit(std::string(info.slug) + "-b" + std::to_string(info.budget / denom),
           info.budget / denom, pct, MsSince(start));
    }
    {
      ExplorerOptions opts = PctSuiteOptions(info, /*seed=*/1);
      opts.swarm_seeds = 4;
      opts.random_runs = info.budget / 4;
      auto start = std::chrono::steady_clock::now();
      Report swarm = refine::ParallelExplorer<Spec>(spec, factory, opts).Run();
      emit(std::string(info.slug) + "-swarm", info.budget, swarm, MsSince(start));
    }
  });
  if (json_path != nullptr && !UpsertJson(json_path, rows)) {
    return 1;
  }
  return 0;
}
