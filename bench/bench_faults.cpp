// Fault-injection sweep: how the explored state space and checking cost
// grow as environment-fault budgets are added to the decision tree.
//
// Each armable fault is one more alternative at every decision point, so
// the DFS tree widens combinatorially — the same growth crash points cause,
// compounded. This bench quantifies that: for the replicated disk and the
// transaction log it sweeps each fault class at budgets 0/1/2 (plus a
// mixed plan) and emits one JSON row per configuration with executions,
// steps, env placements, violations, and wall-clock time. Buggy-variant
// rows (missing retry, missing barrier) demonstrate detection cost.
//
// Output: JSON lines on stdout (one object per row), suitable for jq or a
// plotting script; a human-readable summary line count at the end on
// stderr.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "bench/bench_json.h"
#include "src/fault/fault.h"
#include "src/refine/explorer.h"
#include "src/systems/repl/repl_harness.h"
#include "src/systems/txnlog/txn_harness.h"

namespace {

using namespace perennial;           // NOLINT
using namespace perennial::systems;  // NOLINT
using refine::Explorer;
using refine::ExplorerOptions;
using refine::Report;

int g_rows = 0;

// Durable-run support: Ctrl-C drains the row in flight (its checkpoint is
// flushed when --checkpoint is set) and later rows cancel immediately,
// each emitting an outcome="canceled" row.
refine::CancelToken g_sigint_cancel;

void OnSigint(int) { g_sigint_cancel.RequestCancel(); }

uint64_t g_deadline_ms = 0;                   // per row
const char* g_checkpoint_base = nullptr;      // <base>.<cell>.ckpt per row
const char* g_resume_base = nullptr;

// One checkpoint file per row, keyed (and fingerprint-guarded) by the
// row's cell name.
ExplorerOptions ApplyDurable(ExplorerOptions opts, const std::string& cell) {
  opts.wall_deadline_ms = g_deadline_ms;
  opts.cancel_token = &g_sigint_cancel;
  opts.run_id = cell;
  if (g_checkpoint_base != nullptr) {
    opts.checkpoint_path = std::string(g_checkpoint_base) + "." + cell + ".ckpt";
  }
  if (g_resume_base != nullptr) {
    opts.resume_path = std::string(g_resume_base) + "." + cell + ".ckpt";
  }
  return opts;
}

void EmitRow(const std::string& system, const std::string& fault, int budget,
             const std::string& variant,
             const std::function<Report(const std::string&)>& run) {
  const std::string cell = system + "-" + fault + "-" + std::to_string(budget) +
                           (variant == "fixed" ? "" : "-" + variant);
  auto start = std::chrono::steady_clock::now();
  Report report = run(cell);
  double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start).count();
  std::printf(
      "{\"system\":\"%s\",\"fault\":\"%s\",\"budget\":%d,\"variant\":\"%s\","
      "\"executions\":%llu,\"steps\":%llu,\"crashes\":%llu,\"env_fired\":%llu,"
      "\"histories\":%llu,\"violations\":%zu,\"first_violation\":\"%s\",\"ms\":%.1f,"
      "\"peak_rss\":%llu,\"outcome\":\"%s\"}\n",
      system.c_str(), fault.c_str(), budget, variant.c_str(),
      static_cast<unsigned long long>(report.executions),
      static_cast<unsigned long long>(report.total_steps),
      static_cast<unsigned long long>(report.crashes_injected),
      static_cast<unsigned long long>(report.env_events_fired),
      static_cast<unsigned long long>(report.histories_checked), report.violations.size(),
      report.violations.empty() ? "" : report.violations[0].kind.c_str(), ms,
      static_cast<unsigned long long>(benchjson::PeakRssBytes()),
      refine::OutcomeName(report.outcome));
  ++g_rows;
}

template <typename Spec, typename Factory>
std::function<Report(const std::string&)> Sweep(Spec spec, Factory factory,
                                                int max_violations = 1 << 20) {
  return [spec, factory, max_violations](const std::string& cell) {
    ExplorerOptions opts;
    opts.max_crashes = 1;
    opts.max_violations = max_violations;
    opts.dedup_histories = true;
    Explorer<Spec> ex(spec, factory, ApplyDurable(opts, cell));
    return ex.Run();
  };
}

fault::FaultPlan PlanFor(const std::string& fault, int budget) {
  fault::FaultPlan plan;
  if (fault == "transient-read") plan.transient_reads = budget;
  if (fault == "transient-write") plan.transient_writes = budget;
  if (fault == "torn-write") plan.torn_writes = budget;
  if (fault == "fail-slow") plan.fail_slow = budget;
  if (fault == "mixed") {
    plan.transient_reads = budget;
    plan.transient_writes = budget;
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const char* deadline = benchjson::ParseValueFlag(argc, argv, "--deadline-ms", nullptr);
  if (deadline != nullptr) {
    g_deadline_ms = std::strtoull(deadline, nullptr, 10);
  }
  g_checkpoint_base = benchjson::ParseValueFlag(argc, argv, "--checkpoint", nullptr);
  g_resume_base = benchjson::ParseValueFlag(argc, argv, "--resume", nullptr);
  std::signal(SIGINT, OnSigint);

  // Replicated disk: one write, faults on the mirror path.
  for (const std::string& fault :
       {std::string("transient-read"), std::string("transient-write"), std::string("fail-slow"),
        std::string("mixed")}) {
    for (int budget : {0, 1, 2}) {
      if (budget == 0 && fault != "transient-read") {
        continue;  // the no-fault baseline is the same row for every class
      }
      ReplHarnessOptions options;
      options.num_blocks = 1;
      options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
      options.fault_plan = PlanFor(fault, budget);
      EmitRow("repl", fault, budget, "fixed",
              Sweep(ReplSpec{1}, [options] { return MakeReplInstance(options); }));
    }
  }
  // Transaction log: one committed batch, faults on the log device.
  for (const std::string& fault :
       {std::string("transient-write"), std::string("torn-write"), std::string("fail-slow")}) {
    for (int budget : {0, 1}) {
      if (budget == 0 && fault != "transient-write") {
        continue;
      }
      TxnHarnessOptions options;
      options.num_addrs = 2;
      options.log_capacity = 2;
      options.client_ops = {{TxnSpec::MakeBatch({{0, 1}})}};
      options.fault_plan = PlanFor(fault, budget);
      EmitRow("txnlog", fault, budget, "fixed",
              Sweep(TxnSpec{2}, [options] { return MakeTxnInstance(options); }));
    }
  }
  // Seeded-bug detection rows: stop at the first violation (the detection
  // cost is the interesting number, not the full sweep).
  {
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
    options.mutations.no_retry = true;
    options.fault_plan.transient_writes = 1;
    options.fault_plan.target = ReplicatedDisk::kDisk1;
    EmitRow("repl", "transient-write", 1, "bug:no-retry",
            Sweep(ReplSpec{1}, [options] { return MakeReplInstance(options); }, 1));
  }
  {
    TxnHarnessOptions options;
    options.num_addrs = 2;
    options.log_capacity = 2;
    options.client_ops = {{TxnSpec::MakeBatch({{0, 1}})}};
    options.mutations.no_write_barrier = true;
    options.fault_plan.torn_writes = 1;
    EmitRow("txnlog", "torn-write", 1, "bug:no-write-barrier",
            Sweep(TxnSpec{2}, [options] { return MakeTxnInstance(options); }, 1));
  }
  std::fprintf(stderr, "bench_faults: %d rows\n", g_rows);
  return 0;
}
