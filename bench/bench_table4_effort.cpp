// Table 4 reproduction: effort for Mailboat vs CMAIL.
//
// Paper: Mailboat = 159 lines of Go implementation + 3,360 lines of proof
// on an 8,900-line framework; CMAIL = 215 lines (Coq) + 4,050 proof on a
// 9,600-line framework. Here "implementation" is the Mailboat library,
// "correctness artifacts" are its spec + checker harness + test suite, and
// "framework" is the reusable checker machinery.
#include <cstdio>

#include "bench/loc_common.h"
#include "src/base/table.h"

int main() {
  using perennial::TextTable;
  using perennial::WithCommas;
  using perennial::bench::CodeLines;
  using perennial::bench::RepoRoot;

  std::string root = RepoRoot();

  uint64_t impl = CodeLines(root, {"src/mailboat/mailboat.h", "src/mailboat/mailboat.cc",
                                   "src/mailboat/mail_api.h"});
  uint64_t correctness = CodeLines(root, {"src/mailboat/mail_spec.h", "src/mailboat/mail_harness.h",
                                          "tests/mailboat_test.cpp"});
  uint64_t framework =
      CodeLines(root, {"src/base", "src/proc", "src/cap", "src/refine", "src/tsys"});

  std::printf("== Table 4: lines of code for Mailboat vs CMAIL ==\n\n");
  TextTable table({"Component", "Mailboat (paper)", "CMAIL (paper)", "This repo"});
  table.AddRow({"Implementation", "159 (Go)", "215 (Coq)", WithCommas(impl) + " (C++)"});
  table.AddRow({"Proof / correctness artifacts", "3,360", "4,050", WithCommas(correctness)});
  table.AddRow({"Framework", "8,900", "9,600", WithCommas(framework)});
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "shape check (paper §9.4): the verified artifact is small relative to its\n"
      "correctness artifacts, which are in turn small relative to the reusable\n"
      "framework — the same 1 : ~20 : ~55 ordering the paper reports.\n");
  return 0;
}
