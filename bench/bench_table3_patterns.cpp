// Table 3 reproduction: effort per verified crash-safety pattern.
//
// The paper reports lines of Coq proof per example; the analogous effort
// here is lines of C++ (implementation + spec + harness), shown next to
// the paper's numbers. The semantics rows (two-disk / single-disk) map to
// the shared block-device model.
#include <cstdio>

#include "bench/loc_common.h"
#include "src/base/table.h"

int main() {
  using perennial::TextTable;
  using perennial::WithCommas;
  using perennial::bench::CodeLines;
  using perennial::bench::RepoRoot;

  std::string root = RepoRoot();

  uint64_t disks = CodeLines(root, {"src/disk"});
  uint64_t repl = CodeLines(root, {"src/systems/repl"});
  uint64_t shadow = CodeLines(root, {"src/systems/shadow", "src/systems/pair_spec.h"});
  uint64_t wal = CodeLines(root, {"src/systems/wal"});
  uint64_t gc = CodeLines(root, {"src/systems/gc"});
  uint64_t pattern_harness = CodeLines(root, {"src/systems/pattern_harness.h"});
  uint64_t kvs = CodeLines(root, {"src/systems/kvs"});
  uint64_t txnlog = CodeLines(root, {"src/systems/txnlog"});
  uint64_t ftl = CodeLines(root, {"src/systems/ftl"});

  std::printf("== Table 3: lines of code per crash-safety pattern ==\n\n");
  TextTable table({"Example", "Paper (Coq)", "This repo (C++)"});
  table.AddRow({"Two-disk semantics", "1,350", WithCommas(disks) + " (shared disk model)"});
  table.AddRow({"Replicated disk", "1,180", WithCommas(repl)});
  table.AddRule();
  table.AddRow({"Single-disk semantics", "1,310", "(same shared disk model)"});
  table.AddRow({"Shadow copy", "390", WithCommas(shadow)});
  table.AddRow({"Write-ahead logging", "930", WithCommas(wal)});
  table.AddRow({"Group commit", "1,410", WithCommas(gc)});
  table.AddRow({"Shared checker harness", "-", WithCommas(pattern_harness)});
  table.AddRule();
  table.AddRow({"Durable KV (extension)", "-", WithCommas(kvs)});
  table.AddRow({"Txn log engine (extension)", "-", WithCommas(txnlog)});
  table.AddRow({"Mini-FTL (extension)", "-", WithCommas(ftl)});
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "notes:\n"
      " * Paper numbers are proof script sizes; ours are executable\n"
      "   implementation + spec + capability discipline. The *ordering* of\n"
      "   effort (replication and group commit heaviest, shadow copy\n"
      "   lightest) is the comparison that carries over.\n"
      " * The verification work itself is mechanical here: see\n"
      "   bench_sec91_patterns for the checker runs on each pattern.\n");
  return 0;
}
