// The PCT deep-bug suite: seeded bugs that bounded DFS provably misses at a
// fixed execution budget while PCT (d=3) finds them within the same budget
// for every seed in kPctSuiteSeeds. Shared by tests/pct_refine_test.cpp
// (the bug-finding regression) and bench/bench_pct.cpp (the bugs-found-vs-
// budget table and `--replay <trace>`).
//
// Why these workloads: the exhaustive DFS enumerates suffix-first (the
// odometer advances the deepest decision before any earlier one), so a bug
// whose trigger is an EARLY deviation — an early preemption or an early
// crash — sits behind the entire benign suffix subtree. Each suite entry
// plants the trigger window near the front of the schedule and pads the
// tail with benign concurrent work (extra puts, a reader client), which
// multiplies DFS's walk-back cost combinatorially but leaves PCT's per-run
// hit probability (>= 1/(n * k^(d-1))) essentially unchanged.
//
// The budgets are calibrated with deliberate slack on both sides: DFS at
// `budget` executions truncates with zero violations (measured need: 6768 /
// 15511 / 3948 executions), while PCT finds each bug within `budget` runs
// for every suite seed. Both sides are deterministic, so the regression
// test pins them exactly.
#ifndef PERENNIAL_BENCH_PCT_SUITE_H_
#define PERENNIAL_BENCH_PCT_SUITE_H_

#include <cstdint>

#include "src/refine/explorer.h"
#include "src/systems/kvs/kv_harness.h"
#include "src/systems/pattern_harness.h"
#include "src/systems/txnlog/txn_harness.h"

namespace perennial::systems {

struct DeepBugInfo {
  const char* slug;     // stable row / trace run_id, "pct-" prefixed
  const char* kind;     // expected violation kind
  uint64_t budget;      // executions: DFS misses here, PCT finds here
  double crash_probability;  // PCT crash draw for this workload
  int max_crashes;
};

inline constexpr uint64_t kPctSuiteSeeds[] = {1, 2, 3, 4};
inline constexpr int kPctSuiteDepth = 3;
inline constexpr uint64_t kPctSuiteChangeBudget = 64;

// PCT options for one suite entry. The swarm variants in the test/bench
// split the same budget across swarm_seeds batches, so total executions
// stay comparable.
inline refine::ExplorerOptions PctSuiteOptions(const DeepBugInfo& info, uint64_t seed) {
  refine::ExplorerOptions opts;
  opts.mode = refine::ExplorerOptions::Mode::kPct;
  opts.max_crashes = info.max_crashes;
  opts.max_violations = 1;
  opts.random_runs = info.budget;
  opts.seed = seed;
  opts.pct_depth = kPctSuiteDepth;
  opts.pct_change_budget = kPctSuiteChangeBudget;
  opts.crash_probability = info.crash_probability;
  opts.env_probability = 0.05;
  return opts;
}

// Bounded-DFS options at the same execution budget.
inline refine::ExplorerOptions DfsSuiteOptions(const DeepBugInfo& info) {
  refine::ExplorerOptions opts;
  opts.max_crashes = info.max_crashes;
  opts.max_violations = 1;
  opts.max_executions = info.budget;
  return opts;
}

// Visits every suite entry as visit(info, spec, factory). The factory
// captures its harness options by value, so the lambda outlives this call.
template <typename Visitor>
void ForEachDeepBug(Visitor&& visit) {
  {
    // Lock-order deadlock whose window is the two clients' FIRST lock
    // acquisitions; the trailing single-key puts are pure suffix padding.
    // Measured: DFS needs 6768 executions, PCT finds in <= 1000 runs.
    KvHarnessOptions options;
    options.num_keys = 2;
    options.client_ops = {
        {KvSpec::MakePutPair(0, 1, 1, 2), KvSpec::MakePut(0, 5), KvSpec::MakePut(1, 6)},
        {KvSpec::MakePutPair(1, 3, 0, 4), KvSpec::MakePut(1, 7), KvSpec::MakePut(0, 8)}};
    options.mutations.unordered_locks = true;
    visit(DeepBugInfo{"pct-kv-deadlock-deep", "deadlock", 1000, 0.0, 0}, KvSpec{2},
          [options] { return MakeKvInstance(options); });
  }
  {
    // Crash inside the early checkpoint's truncate-before-apply window;
    // the post-checkpoint writes and the reader client are benign suffix.
    // Measured: DFS needs 15511 executions, PCT finds in <= 2000 runs.
    TxnHarnessOptions options;
    options.num_addrs = 2;
    options.client_ops = {
        {TxnSpec::MakeWrite(0, 5), TxnSpec::MakeCheckpoint(), TxnSpec::MakeWrite(1, 9),
         TxnSpec::MakeWrite(0, 3)},
        {TxnSpec::MakeRead(1), TxnSpec::MakeRead(0), TxnSpec::MakeRead(1), TxnSpec::MakeRead(0)}};
    options.mutations.truncate_before_apply = true;
    visit(DeepBugInfo{"pct-txn-truncate-deep", "non-linearizable", 2000, 0.15, 1}, TxnSpec{2},
          [options] { return MakeTxnInstance(options); });
  }
  {
    // Crash in the first op's apply-before-commit window; the client's
    // trailing single-key puts and the reader client are benign suffix.
    // Measured: DFS needs 3948 executions, PCT finds in <= 2000 runs.
    KvHarnessOptions options;
    options.num_keys = 2;
    options.client_ops = {
        {KvSpec::MakePutPair(0, 1, 1, 2), KvSpec::MakePut(0, 5), KvSpec::MakePut(1, 6)},
        {KvSpec::MakeGet(0), KvSpec::MakeGet(1), KvSpec::MakeGet(0), KvSpec::MakeGet(1)}};
    options.mutations.apply_before_commit = true;
    visit(DeepBugInfo{"pct-kv-apply-commit-deep", "non-linearizable", 2000, 0.15, 1}, KvSpec{2},
          [options] { return MakeKvInstance(options); });
  }
}

}  // namespace perennial::systems

#endif  // PERENNIAL_BENCH_PCT_SUITE_H_
