// Load generator CLI for the production mail server.
//
// Default mode starts an in-process server (group commit on) and drives it;
// pass --smtp-port/--pop3-port to aim at an external mail_serverd instead.
//
//   bench_loadgen --clients=64 --requests=2000 --root=/tmp/pcc-loadgen
//   bench_loadgen --smtp-port=2525 --pop3-port=1110 --clients=256
//
// Prints one summary line: requests, errors, wall, req/s, p50/p99 latency,
// and (in-proc only) the group-commit batch/dedup counters.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_json.h"
#include "src/fault/syscall_fault.h"
#include "src/netserv/harness.h"
#include "src/netserv/loadgen.h"

namespace {

uint64_t FlagU64(int argc, char** argv, const char* name, uint64_t def) {
  std::string want = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.compare(0, want.size(), want) == 0) {
      return std::strtoull(arg.c_str() + want.size(), nullptr, 10);
    }
  }
  return def;
}

double FlagDouble(int argc, char** argv, const char* name, double def) {
  std::string want = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.compare(0, want.size(), want) == 0) {
      return std::strtod(arg.c_str() + want.size(), nullptr);
    }
  }
  return def;
}

std::string FlagStr(int argc, char** argv, const char* name, const std::string& def) {
  std::string want = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.compare(0, want.size(), want) == 0) {
      return arg.substr(want.size());
    }
  }
  return def;
}

bool FlagSet(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == name) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace perennial::netserv;

  if (FlagSet(argc, argv, "--help")) {
    std::printf(
        "usage: bench_loadgen [--clients=N] [--requests=N] [--users=N]\n"
        "                     [--pickup-fraction=F] [--body-bytes=N] [--rcpts=N] [--threads=N]\n"
        "                     [--root=DIR] [--loops=N] [--executors=N]\n"
        "                     [--no-group-commit] [--gc-window-us=N] [--gc-batch=N]\n"
        "                     [--fault-plan=key=rate,...]  (hostile disk, in-proc only)\n"
        "                     [--smtp-port=N --pop3-port=N]  (drive external server)\n");
    return 0;
  }

  LoadgenOptions load;
  load.clients = FlagU64(argc, argv, "--clients", 64);
  load.requests = FlagU64(argc, argv, "--requests", 2000);
  load.num_users = FlagU64(argc, argv, "--users", 8);
  load.pickup_fraction = FlagDouble(argc, argv, "--pickup-fraction", 0.25);
  load.body_bytes = FlagU64(argc, argv, "--body-bytes", 256);
  load.rcpts_per_msg = FlagU64(argc, argv, "--rcpts", 1);
  load.threads = FlagU64(argc, argv, "--threads", 1);
  load.rng_seed = FlagU64(argc, argv, "--seed", 1);

  uint16_t ext_smtp = static_cast<uint16_t>(FlagU64(argc, argv, "--smtp-port", 0));
  uint16_t ext_pop3 = static_cast<uint16_t>(FlagU64(argc, argv, "--pop3-port", 0));
  bool inproc = ext_smtp == 0 || ext_pop3 == 0;

  std::unique_ptr<InprocMailServer> server;
  if (inproc) {
    InprocMailServer::Config config;
    config.root = FlagStr(argc, argv, "--root", "/tmp/pcc-loadgen");
    config.users = load.num_users;
    config.group_commit = !FlagSet(argc, argv, "--no-group-commit");
    config.gc_window_us = FlagU64(argc, argv, "--gc-window-us", 500);
    config.gc_batch = FlagU64(argc, argv, "--gc-batch", 64);
    config.loops = FlagU64(argc, argv, "--loops", 2);
    config.executors = FlagU64(argc, argv, "--executors", load.clients + 8);
    std::string fault_spec = FlagStr(argc, argv, "--fault-plan", "");
    if (!fault_spec.empty()) {
      perennial::Result<perennial::fault::SyscallFaultPlan> plan =
          perennial::fault::SyscallFaultPlan::Parse(fault_spec);
      if (!plan.ok()) {
        std::fprintf(stderr, "bench_loadgen: --fault-plan: %s\n",
                     plan.status().ToString().c_str());
        return 1;
      }
      config.fault_plan = plan.value();
    }
    server = std::make_unique<InprocMailServer>(std::move(config));
    if (!server->Start()) {
      std::fprintf(stderr, "bench_loadgen: in-proc server failed to start\n");
      return 1;
    }
    load.smtp_port = server->smtp_port();
    load.pop3_port = server->pop3_port();
  } else {
    load.smtp_port = ext_smtp;
    load.pop3_port = ext_pop3;
  }

  perennial::benchjson::CpuUsage cpu0 = perennial::benchjson::ProcessCpuUsage();
  LoadgenResult result = RunLoadgen(load);
  perennial::benchjson::CpuUsage cpu1 = perennial::benchjson::ProcessCpuUsage();

  double reqs_per_s = result.wall_ms > 0 ? result.ok_requests / (result.wall_ms / 1000.0) : 0;
  std::printf(
      "loadgen: ok=%llu errors=%llu tempfails=%llu retries=%llu shed=%llu "
      "delivers=%llu pickups=%llu wall_ms=%.1f req/s=%.0f "
      "p50_us=%llu p99_us=%llu%s\n",
      static_cast<unsigned long long>(result.ok_requests),
      static_cast<unsigned long long>(result.errors),
      static_cast<unsigned long long>(result.tempfails),
      static_cast<unsigned long long>(result.retries),
      static_cast<unsigned long long>(result.shed_connects),
      static_cast<unsigned long long>(result.delivers),
      static_cast<unsigned long long>(result.pickups), result.wall_ms, reqs_per_s,
      static_cast<unsigned long long>(PercentileUs(result.latencies_us, 50)),
      static_cast<unsigned long long>(PercentileUs(result.latencies_us, 99)),
      result.aborted ? " ABORTED" : "");
  if (result.ok_requests > 0) {
    // Process CPU (loadgen clients included for the in-proc server): the
    // stable per-request cost on a host whose wall clock is disk-noisy.
    uint64_t du = cpu1.utime_us - cpu0.utime_us;
    uint64_t ds = cpu1.stime_us - cpu0.stime_us;
    std::printf("cpu: %.1f us/req (utime %.1f + stime %.1f)\n",
                static_cast<double>(du + ds) / static_cast<double>(result.ok_requests),
                static_cast<double>(du) / static_cast<double>(result.ok_requests),
                static_cast<double>(ds) / static_cast<double>(result.ok_requests));
  }
  if (server != nullptr) {
    const auto& stats = server->committer()->stats();
    std::printf("group_commit: requests=%llu batches=%llu fsyncs=%llu deduped=%llu\n",
                static_cast<unsigned long long>(stats.requests.load()),
                static_cast<unsigned long long>(stats.batches.load()),
                static_cast<unsigned long long>(stats.fsyncs_issued.load()),
                static_cast<unsigned long long>(stats.deduped.load()));
    server->Stop();
  }
  return result.aborted ? 1 : 0;
}
