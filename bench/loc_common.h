// Shared helpers for the lines-of-code effort tables (Tables 2-4).
#ifndef PERENNIAL_BENCH_LOC_COMMON_H_
#define PERENNIAL_BENCH_LOC_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/base/loc.h"

namespace perennial::bench {

inline const std::vector<std::string>& CppSuffixes() {
  static const std::vector<std::string> suffixes{".h", ".cc", ".cpp"};
  return suffixes;
}

// Repo root, located from the current working directory (the harness runs
// benches from the build tree, which lives under the repo).
inline std::string RepoRoot() {
  std::string root = FindRepoRoot("");
  if (root.empty()) {
    std::fprintf(stderr, "cannot locate repository root (DESIGN.md not found)\n");
    std::exit(1);
  }
  return root;
}

// Code lines across several repo-relative directories/files.
inline uint64_t CodeLines(const std::string& root, const std::vector<std::string>& paths) {
  LocCount total;
  for (const std::string& path : paths) {
    std::string full = root + "/" + path;
    LocCount c = CountTree(full, CppSuffixes());
    if (c.total() == 0) {
      c = CountFile(full);  // a single file, not a directory
    }
    total += c;
  }
  return total.code;
}

}  // namespace perennial::bench

#endif  // PERENNIAL_BENCH_LOC_COMMON_H_
