// Table 2 reproduction: lines of code for the Perennial and Goose
// components, regenerated from this repository's sources and printed next
// to the paper's reported numbers.
//
// Component mapping (see DESIGN.md §1): the paper's Coq framework maps to
// the C++ checker framework; the Goose translator has no counterpart
// because systems here are written directly against the executable C++
// semantics (no Go-to-model translation step exists to count).
#include <cstdio>

#include "bench/loc_common.h"
#include "src/base/table.h"

int main() {
  using perennial::TextTable;
  using perennial::WithCommas;
  using perennial::bench::CodeLines;
  using perennial::bench::RepoRoot;

  std::string root = RepoRoot();

  uint64_t tsys = CodeLines(root, {"src/tsys"});
  uint64_t core = CodeLines(root, {"src/base", "src/proc", "src/cap", "src/refine"});
  uint64_t goose = CodeLines(root, {"src/goose"});
  uint64_t goosefs = CodeLines(root, {"src/goosefs"});

  std::printf("== Table 2: lines of code for Perennial and Goose ==\n\n");
  TextTable table({"Component", "Paper (Coq/Go)", "This repo (C++)"});
  table.AddRow({"Transition system language", "1,710", WithCommas(tsys)});
  table.AddRow({"Core framework", "7,220", WithCommas(core)});
  table.AddRule();
  table.AddRow({"Perennial total", "8,930", WithCommas(tsys + core)});
  table.AddRow({"Goose translator (Go)", "1,790", "n/a (no translator needed)"});
  table.AddRow({"Goose library (Go)", "220", "n/a"});
  table.AddRow({"Go semantics", "2,020", WithCommas(goose + goosefs)});
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "notes:\n"
      " * 'Core framework' here = base utilities + coroutine runtime + capability\n"
      "   layer + refinement checker: the machinery playing the role of Perennial's\n"
      "   program logic and refinement theorem.\n"
      " * Goose needs no translator in C++: the modeled programs are written\n"
      "   directly against the executable semantics (src/goose, src/goosefs).\n");
  return 0;
}
