// §9.1 reproduction: "Can Perennial be used to verify a variety of
// crash-safety patterns in concurrent systems?"
//
// The paper answers by exhibiting machine-checked proofs; the executable
// analogue is an exhaustive checker run per pattern — every interleaving
// of the configured workload, every crash point (including crashes during
// recovery), checked for concurrent recovery refinement, with the crash
// invariant evaluated at every step. A row with 0 violations is this
// repository's version of "the pattern verifies".
//
// Two ablations quantify the design choices DESIGN.md calls out:
//  * crash-point enumeration off (max_crashes = 0): how much of the state
//    space the crash dimension adds;
//  * recovery helping off (the WAL mutant whose recovery discards the
//    committed transaction while still claiming help): shows the helping
//    obligation is what rejects bogus recoveries.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_json.h"
#include "src/base/table.h"
#include "src/mailboat/mail_harness.h"
#include "src/refine/explorer.h"
#include "src/refine/parallel_explorer.h"
#include "src/systems/pattern_harness.h"
#include "src/systems/ftl/ftl_harness.h"
#include "src/systems/kvs/kv_harness.h"
#include "src/systems/txnlog/txn_harness.h"
#include "src/systems/repl/repl_harness.h"

namespace {

using namespace perennial;           // NOLINT
using namespace perennial::systems;  // NOLINT
using refine::Explorer;
using refine::ExplorerOptions;
using refine::Report;

struct RowResult {
  Report report;
  double ms = 0;
};

// Durable-run support (--deadline-ms / --checkpoint / --resume / Ctrl-C):
// every row polls this token, so one SIGINT drains the row in flight,
// flushes its checkpoint (when --checkpoint is set), and lets the bench
// finish writing whatever JSON it has. RequestCancel is a relaxed atomic
// store — async-signal-safe.
refine::CancelToken g_sigint_cancel;

void OnSigint(int) { g_sigint_cancel.RequestCancel(); }

// Per-row durability knobs. Checkpoints are per CELL (one file per table
// row), named <base>.<cell>.ckpt, with run_id = cell so a resume against
// the wrong cell's file is rejected by the config fingerprint. A completed
// cell's checkpoint replays instantly on resume, so re-running the whole
// bench with --resume regenerates the full JSON while only paying for the
// cells the interrupted run never finished.
struct DurableCfg {
  uint64_t deadline_ms = 0;  // per row, not per sweep
  const char* checkpoint_base = nullptr;
  const char* resume_base = nullptr;

  ExplorerOptions Apply(ExplorerOptions opts, const std::string& cell) const {
    opts.wall_deadline_ms = deadline_ms;
    opts.run_id = cell;
    if (checkpoint_base != nullptr) {
      opts.checkpoint_path = std::string(checkpoint_base) + "." + cell + ".ckpt";
    }
    if (resume_base != nullptr) {
      opts.resume_path = std::string(resume_base) + "." + cell + ".ckpt";
    }
    return opts;
  }
};

DurableCfg g_durable;

template <typename Spec, typename Factory>
RowResult RunCheckerOpts(Spec spec, Factory factory, ExplorerOptions opts) {
  if (opts.cancel_token == nullptr) {
    opts.cancel_token = &g_sigint_cancel;
  }
  auto start = std::chrono::steady_clock::now();
  Explorer<Spec> ex(std::move(spec), factory, opts);
  RowResult row;
  row.report = ex.Run();
  row.ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
               .count();
  return row;
}

template <typename Spec, typename Factory>
RowResult RunChecker(Spec spec, Factory factory, int max_crashes) {
  ExplorerOptions opts;
  opts.max_crashes = max_crashes;
  return RunCheckerOpts(std::move(spec), std::move(factory), opts);
}

// One §9.1 pattern, registered once and run under several option sets (the
// headline table, then the POR before/after sweep). `run` must be a pure
// function of the options: the harness options are captured by value.
struct Sec91System {
  std::string name;  // table label
  std::string slug;  // stable JSON identifier
  int max_crashes = 1;
  std::function<RowResult(ExplorerOptions)> run;
};

std::vector<Sec91System> BuildSystems() {
  std::vector<Sec91System> systems;
  {
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
    systems.push_back({"Replicated disk (2 writers)", "repl-2writers", 1,
                       [options](ExplorerOptions opts) {
                         return RunCheckerOpts(
                             ReplSpec{1}, [options] { return MakeReplInstance(options); }, opts);
                       }});
  }
  {
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 9)}, {ReplSpec::MakeRead(0)}};
    options.with_disk1_failure_event = true;
    systems.push_back({"Replicated disk (failover)", "repl-failover", 1,
                       [options](ExplorerOptions opts) {
                         return RunCheckerOpts(
                             ReplSpec{1}, [options] { return MakeReplInstance(options); }, opts);
                       }});
  }
  {
    ShadowHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeWrite(3, 4)}};
    systems.push_back({"Shadow copy (2 writers)", "shadow-2writers", 1,
                       [options](ExplorerOptions opts) {
                         return RunCheckerOpts(
                             PairSpec{}, [options] { return MakeShadowInstance(options); }, opts);
                       }});
  }
  {
    WalHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeWrite(3, 4)}};
    systems.push_back({"Write-ahead log (2 writers)", "wal-2writers", 1,
                       [options](ExplorerOptions opts) {
                         return RunCheckerOpts(
                             PairSpec{}, [options] { return MakeWalInstance(options); }, opts);
                       }});
  }
  {
    WalHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2)}};
    systems.push_back({"Write-ahead log (recovery crash)", "wal-recovery-crash", 2,
                       [options](ExplorerOptions opts) {
                         return RunCheckerOpts(
                             PairSpec{}, [options] { return MakeWalInstance(options); }, opts);
                       }});
  }
  {
    // Two writers racing the double-crash window: unlike the single-client
    // control row above, this workload has thread alternatives to commute,
    // so POR gets traction on the crash-during-recovery state space too.
    WalHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeWrite(3, 4)}};
    systems.push_back({"Write-ahead log (recovery crash, 2 writers)", "wal-recovery-crash-2c", 2,
                       [options](ExplorerOptions opts) {
                         return RunCheckerOpts(
                             PairSpec{}, [options] { return MakeWalInstance(options); }, opts);
                       }});
  }
  {
    GcHarnessOptions options;
    options.client_ops = {{GcSpec::MakeWrite(1)}, {GcSpec::MakeWrite(2)}, {GcSpec::MakeFlush()}};
    systems.push_back({"Group commit (2 writers + flush)", "group-commit", 1,
                       [options](ExplorerOptions opts) {
                         return RunCheckerOpts(
                             GcSpec{}, [options] { return MakeGcInstance(options); }, opts);
                       }});
  }
  {
    mailboat::MailHarnessOptions options;
    options.num_users = 1;
    options.client_scripts = {
        {{mailboat::MailAction::Kind::kDeliver, 0, "a"}},
        {{mailboat::MailAction::Kind::kPickupDeleteAllUnlock, 0, ""}},
    };
    systems.push_back({"Mailboat (deliver vs pickup+delete)", "mailboat", 1,
                       [options](ExplorerOptions opts) {
                         return RunCheckerOpts(
                             mailboat::MailSpec{1},
                             [options] { return mailboat::MakeMailInstance(options); }, opts);
                       }});
  }
  {
    // Extension: the mini flash translation layer (§1's "lower-level
    // storage systems like ... flash translation layers").
    FtlHarnessOptions options;
    options.num_lbas = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
    systems.push_back({"Mini-FTL (2 writers; extension)", "ftl-2writers", 1,
                       [options](ExplorerOptions opts) {
                         return RunCheckerOpts(
                             ReplSpec{1}, [options] { return MakeFtlInstance(options); }, opts);
                       }});
  }
  {
    // Extension beyond the paper: the general transaction-log engine.
    TxnHarnessOptions options;
    options.num_addrs = 2;
    options.client_ops = {{TxnSpec::MakeBatch({{0, 1}, {1, 2}})}, {TxnSpec::MakeRead(0)}};
    systems.push_back({"Txn log (batch vs reader; extension)", "txnlog", 1,
                       [options](ExplorerOptions opts) {
                         return RunCheckerOpts(
                             TxnSpec{2}, [options] { return MakeTxnInstance(options); }, opts);
                       }});
  }
  {
    // Extension beyond the paper: the layered KV store (DESIGN.md §4).
    KvHarnessOptions options;
    options.num_keys = 2;
    options.client_ops = {{KvSpec::MakePutPair(0, 1, 1, 2)}, {KvSpec::MakeGet(0)}};
    systems.push_back({"Durable KV (txn vs reader; extension)", "durable-kv", 1,
                       [options](ExplorerOptions opts) {
                         return RunCheckerOpts(
                             KvSpec{2}, [options] { return MakeKvInstance(options); }, opts);
                       }});
  }
  return systems;
}

void AddRow(TextTable& table, const std::string& name, const RowResult& row) {
  std::string time = FixedDigits(row.ms, 0) + " ms";
  if (row.report.outcome != refine::RunOutcome::kComplete) {
    time += std::string(" (") + refine::OutcomeName(row.report.outcome) + ")";
  }
  table.AddRow({name, WithCommas(row.report.executions), WithCommas(row.report.total_steps),
                WithCommas(row.report.crashes_injected),
                WithCommas(row.report.spec_states_explored),
                std::to_string(row.report.violations.size()), time});
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = perennial::benchjson::ParseJsonPath(argc, argv, nullptr);
  const char* filter = perennial::benchjson::ParseFilter(argc, argv, nullptr);
  const char* deadline = perennial::benchjson::ParseValueFlag(argc, argv, "--deadline-ms", nullptr);
  if (deadline != nullptr) {
    g_durable.deadline_ms = std::strtoull(deadline, nullptr, 10);
  }
  g_durable.checkpoint_base = perennial::benchjson::ParseValueFlag(argc, argv, "--checkpoint", nullptr);
  g_durable.resume_base = perennial::benchjson::ParseValueFlag(argc, argv, "--resume", nullptr);
  std::signal(SIGINT, OnSigint);

  std::printf("== Section 9.1: checker verification of every crash-safety pattern ==\n");
  std::printf("(exhaustive over the configured workloads; crashes may also hit recovery)\n\n");

  std::vector<Sec91System> systems = BuildSystems();
  if (filter != nullptr) {
    std::erase_if(systems, [&](const Sec91System& sys) {
      return !perennial::benchjson::FilterMatches(filter, sys.name, sys.slug);
    });
    std::printf("--filter '%s': %zu of 11 systems selected\n\n", filter, systems.size());
  }

  TextTable table({"Pattern", "executions", "steps", "crashes", "spec states", "violations",
                   "time"});
  for (const Sec91System& sys : systems) {
    ExplorerOptions opts;
    opts.max_crashes = sys.max_crashes;
    AddRow(table, sys.name, sys.run(g_durable.Apply(opts, sys.slug + ".head")));
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("== State-space pruning: before/after per pattern ==\n");
  std::printf("(before = sleep-set POR and spec-prefix memoization both off; after = both\n");
  std::printf(" on; workloads identical to the headline table. Verdicts must not change —\n");
  std::printf(" the tier2-por equivalence suite enforces that.)\n\n");
  std::vector<perennial::benchjson::PorJsonRow> json_rows;
  {
    TextTable por({"Pattern", "execs off", "execs on", "reduction", "spec states on",
                   "time off", "time on", "speedup"});
    double total_off_ms = 0;
    double total_on_ms = 0;
    uint64_t total_off_execs = 0;
    uint64_t total_on_execs = 0;
    for (const Sec91System& sys : systems) {
      ExplorerOptions opts;
      opts.max_crashes = sys.max_crashes;
      opts.use_por = false;
      opts.memoize_spec_prefixes = false;
      RowResult off = sys.run(g_durable.Apply(opts, sys.slug + ".off"));
      opts.use_por = true;
      opts.memoize_spec_prefixes = true;
      RowResult on = sys.run(g_durable.Apply(opts, sys.slug + ".on"));
      total_off_ms += off.ms;
      total_on_ms += on.ms;
      total_off_execs += off.report.executions;
      total_on_execs += on.report.executions;
      for (const RowResult* r : {&off, &on}) {
        json_rows.push_back({sys.slug, r == &on, r->report.executions,
                             r->report.histories_deduped, r->report.por_pruned,
                             r->report.histories_checked,
                             static_cast<uint64_t>(r->report.violations.size()), r->ms,
                             perennial::benchjson::PeakRssBytes(),
                             refine::OutcomeName(r->report.outcome)});
      }
      por.AddRow({sys.name, WithCommas(off.report.executions),
                  WithCommas(on.report.executions),
                  FixedDigits(static_cast<double>(off.report.executions) /
                                  static_cast<double>(on.report.executions ? on.report.executions
                                                                           : 1),
                              1) + "x",
                  WithCommas(on.report.spec_states_explored), FixedDigits(off.ms, 0) + " ms",
                  FixedDigits(on.ms, 0) + " ms",
                  FixedDigits(off.ms / (on.ms > 0 ? on.ms : 1), 1) + "x"});
    }
    por.AddRow({"TOTAL", WithCommas(total_off_execs), WithCommas(total_on_execs),
                FixedDigits(static_cast<double>(total_off_execs) /
                                static_cast<double>(total_on_execs ? total_on_execs : 1),
                            1) + "x",
                "", FixedDigits(total_off_ms, 0) + " ms", FixedDigits(total_on_ms, 0) + " ms",
                FixedDigits(total_off_ms / (total_on_ms > 0 ? total_on_ms : 1), 1) + "x"});
    std::printf("%s\n", por.Render().c_str());
  }

  // The ablation and parallel sections run fixed workloads, not the
  // per-system sweep, so a --filter run skips them.
  if (filter == nullptr) {
  std::printf("== Ablations ==\n\n");
  TextTable ablation({"Configuration", "executions", "crashes", "violations", "time"});
  {
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
    RowResult with_crashes = RunChecker(ReplSpec{1}, [&] { return MakeReplInstance(options); }, 1);
    RowResult without = RunChecker(ReplSpec{1}, [&] { return MakeReplInstance(options); }, 0);
    ablation.AddRow({"repl: crash points ON", WithCommas(with_crashes.report.executions),
                     WithCommas(with_crashes.report.crashes_injected),
                     std::to_string(with_crashes.report.violations.size()),
                     FixedDigits(with_crashes.ms, 0) + " ms"});
    ablation.AddRow({"repl: crash points OFF", WithCommas(without.report.executions),
                     WithCommas(without.report.crashes_injected),
                     std::to_string(without.report.violations.size()),
                     FixedDigits(without.ms, 0) + " ms"});
  }
  {
    // CHESS-style preemption bounding: schedule-space reduction vs coverage.
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
    for (int bound : {0, 1, 2}) {
      ExplorerOptions opts;
      opts.max_crashes = 1;
      opts.max_preemptions = bound;
      auto start = std::chrono::steady_clock::now();
      Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
      Report report = ex.Run();
      double ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                            start)
                      .count();
      ablation.AddRow({"repl: preemption bound = " + std::to_string(bound),
                       WithCommas(report.executions), WithCommas(report.crashes_injected),
                       std::to_string(report.violations.size()), FixedDigits(ms, 0) + " ms"});
    }
  }
  {
    WalHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2)}};
    options.mutations.recovery_discards_log = true;
    RowResult bogus = RunChecker(PairSpec{}, [&] { return MakeWalInstance(options); }, 1);
    ablation.AddRow({"wal: recovery claims help, applies nothing",
                     WithCommas(bogus.report.executions),
                     WithCommas(bogus.report.crashes_injected),
                     std::to_string(bogus.report.violations.size()) + " (expected >0)",
                     FixedDigits(bogus.ms, 0) + " ms"});
  }
  std::printf("%s\n", ablation.Render().c_str());

  std::printf("== Parallel refinement checking ==\n");
  std::printf("(prefix-partitioned DFS across a worker pool; aggregates are deterministic,\n");
  std::printf(" so executions/violations must match the serial row exactly)\n\n");
  {
    TextTable par({"Configuration", "executions", "deduped", "violations", "time", "speedup"});
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5), ReplSpec::MakeRead(0)},
                          {ReplSpec::MakeWrite(0, 7)}};
    ExplorerOptions opts;
    opts.max_crashes = 1;
    opts.cancel_token = &g_sigint_cancel;
    auto time_run = [&](auto&& run) {
      auto start = std::chrono::steady_clock::now();
      Report report = run();
      double ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
              .count();
      return std::make_pair(report, ms);
    };
    auto [serial, serial_ms] = time_run([&] {
      refine::Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
      return ex.Run();
    });
    par.AddRow({"repl writer+reader vs writer: serial", WithCommas(serial.executions),
                WithCommas(serial.histories_deduped), std::to_string(serial.violations.size()),
                FixedDigits(serial_ms, 0) + " ms", "1.0x"});
    for (int workers : {1, 2, 4}) {
      for (bool dedup : {false, true}) {
        ExplorerOptions popts = opts;
        popts.num_workers = workers;
        popts.dedup_histories = dedup;
        auto [report, ms] = time_run([&] {
          refine::ParallelExplorer<ReplSpec> ex(ReplSpec{1},
                                                [&] { return MakeReplInstance(options); }, popts);
          return ex.Run();
        });
        par.AddRow({"parallel: " + std::to_string(workers) + " worker(s)" +
                        (dedup ? " + fingerprint dedup" : ""),
                    WithCommas(report.executions), WithCommas(report.histories_deduped),
                    std::to_string(report.violations.size()), FixedDigits(ms, 0) + " ms",
                    FixedDigits(serial_ms / (ms > 0 ? ms : 1), 1) + "x"});
      }
    }
    std::printf("%s\n", par.Render().c_str());
  }
  }

  std::printf(
      "paper result: all patterns verified (proofs machine-checked). Here: every\n"
      "pattern row must show 0 violations; the ablation row must show >0 —\n"
      "the helping obligation is what rejects a recovery that lies about\n"
      "completing a committed transaction.\n");

  if (json_path != nullptr) {
    if (perennial::benchjson::WritePorJson(json_path, "bench_sec91_patterns", json_rows)) {
      std::printf("\nwrote %zu before/after rows to %s\n", json_rows.size(), json_path);
    } else {
      return 1;
    }
  }
  return 0;
}
