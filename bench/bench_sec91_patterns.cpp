// §9.1 reproduction: "Can Perennial be used to verify a variety of
// crash-safety patterns in concurrent systems?"
//
// The paper answers by exhibiting machine-checked proofs; the executable
// analogue is an exhaustive checker run per pattern — every interleaving
// of the configured workload, every crash point (including crashes during
// recovery), checked for concurrent recovery refinement, with the crash
// invariant evaluated at every step. A row with 0 violations is this
// repository's version of "the pattern verifies".
//
// Two ablations quantify the design choices DESIGN.md calls out:
//  * crash-point enumeration off (max_crashes = 0): how much of the state
//    space the crash dimension adds;
//  * recovery helping off (the WAL mutant whose recovery discards the
//    committed transaction while still claiming help): shows the helping
//    obligation is what rejects bogus recoveries.
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>

#include "src/base/table.h"
#include "src/mailboat/mail_harness.h"
#include "src/refine/explorer.h"
#include "src/refine/parallel_explorer.h"
#include "src/systems/pattern_harness.h"
#include "src/systems/ftl/ftl_harness.h"
#include "src/systems/kvs/kv_harness.h"
#include "src/systems/txnlog/txn_harness.h"
#include "src/systems/repl/repl_harness.h"

namespace {

using namespace perennial;           // NOLINT
using namespace perennial::systems;  // NOLINT
using refine::Explorer;
using refine::ExplorerOptions;
using refine::Report;

struct RowResult {
  Report report;
  double ms = 0;
};

template <typename Spec, typename Factory>
RowResult RunChecker(Spec spec, Factory factory, int max_crashes) {
  ExplorerOptions opts;
  opts.max_crashes = max_crashes;
  auto start = std::chrono::steady_clock::now();
  Explorer<Spec> ex(std::move(spec), factory, opts);
  RowResult row;
  row.report = ex.Run();
  row.ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
               .count();
  return row;
}

void AddRow(TextTable& table, const std::string& name, const RowResult& row) {
  table.AddRow({name, WithCommas(row.report.executions), WithCommas(row.report.total_steps),
                WithCommas(row.report.crashes_injected),
                WithCommas(row.report.spec_states_explored),
                std::to_string(row.report.violations.size()), FixedDigits(row.ms, 0) + " ms"});
}

}  // namespace

int main() {
  std::printf("== Section 9.1: checker verification of every crash-safety pattern ==\n");
  std::printf("(exhaustive over the configured workloads; crashes may also hit recovery)\n\n");

  TextTable table({"Pattern", "executions", "steps", "crashes", "spec states", "violations",
                   "time"});

  {
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
    AddRow(table, "Replicated disk (2 writers)",
           RunChecker(ReplSpec{1}, [&] { return MakeReplInstance(options); }, 1));
  }
  {
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 9)}, {ReplSpec::MakeRead(0)}};
    options.with_disk1_failure_event = true;
    AddRow(table, "Replicated disk (failover)",
           RunChecker(ReplSpec{1}, [&] { return MakeReplInstance(options); }, 1));
  }
  {
    ShadowHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeWrite(3, 4)}};
    AddRow(table, "Shadow copy (2 writers)",
           RunChecker(PairSpec{}, [&] { return MakeShadowInstance(options); }, 1));
  }
  {
    WalHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeWrite(3, 4)}};
    AddRow(table, "Write-ahead log (2 writers)",
           RunChecker(PairSpec{}, [&] { return MakeWalInstance(options); }, 1));
  }
  {
    WalHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2)}};
    AddRow(table, "Write-ahead log (recovery crash)",
           RunChecker(PairSpec{}, [&] { return MakeWalInstance(options); }, 2));
  }
  {
    GcHarnessOptions options;
    options.client_ops = {{GcSpec::MakeWrite(1)}, {GcSpec::MakeWrite(2)}, {GcSpec::MakeFlush()}};
    AddRow(table, "Group commit (2 writers + flush)",
           RunChecker(GcSpec{}, [&] { return MakeGcInstance(options); }, 1));
  }
  {
    mailboat::MailHarnessOptions options;
    options.num_users = 1;
    options.client_scripts = {
        {{mailboat::MailAction::Kind::kDeliver, 0, "a"}},
        {{mailboat::MailAction::Kind::kPickupDeleteAllUnlock, 0, ""}},
    };
    AddRow(table, "Mailboat (deliver vs pickup+delete)",
           RunChecker(mailboat::MailSpec{1}, [&] { return mailboat::MakeMailInstance(options); },
                      1));
  }
  {
    // Extension: the mini flash translation layer (§1's "lower-level
    // storage systems like ... flash translation layers").
    FtlHarnessOptions options;
    options.num_lbas = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
    AddRow(table, "Mini-FTL (2 writers; extension)",
           RunChecker(ReplSpec{1}, [&] { return MakeFtlInstance(options); }, 1));
  }
  {
    // Extension beyond the paper: the general transaction-log engine.
    TxnHarnessOptions options;
    options.num_addrs = 2;
    options.client_ops = {{TxnSpec::MakeBatch({{0, 1}, {1, 2}})}, {TxnSpec::MakeRead(0)}};
    AddRow(table, "Txn log (batch vs reader; extension)",
           RunChecker(TxnSpec{2}, [&] { return MakeTxnInstance(options); }, 1));
  }
  {
    // Extension beyond the paper: the layered KV store (DESIGN.md §4).
    KvHarnessOptions options;
    options.num_keys = 2;
    options.client_ops = {{KvSpec::MakePutPair(0, 1, 1, 2)}, {KvSpec::MakeGet(0)}};
    AddRow(table, "Durable KV (txn vs reader; extension)",
           RunChecker(KvSpec{2}, [&] { return MakeKvInstance(options); }, 1));
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("== Ablations ==\n\n");
  TextTable ablation({"Configuration", "executions", "crashes", "violations", "time"});
  {
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
    RowResult with_crashes = RunChecker(ReplSpec{1}, [&] { return MakeReplInstance(options); }, 1);
    RowResult without = RunChecker(ReplSpec{1}, [&] { return MakeReplInstance(options); }, 0);
    ablation.AddRow({"repl: crash points ON", WithCommas(with_crashes.report.executions),
                     WithCommas(with_crashes.report.crashes_injected),
                     std::to_string(with_crashes.report.violations.size()),
                     FixedDigits(with_crashes.ms, 0) + " ms"});
    ablation.AddRow({"repl: crash points OFF", WithCommas(without.report.executions),
                     WithCommas(without.report.crashes_injected),
                     std::to_string(without.report.violations.size()),
                     FixedDigits(without.ms, 0) + " ms"});
  }
  {
    // CHESS-style preemption bounding: schedule-space reduction vs coverage.
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
    for (int bound : {0, 1, 2}) {
      ExplorerOptions opts;
      opts.max_crashes = 1;
      opts.max_preemptions = bound;
      auto start = std::chrono::steady_clock::now();
      Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
      Report report = ex.Run();
      double ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                            start)
                      .count();
      ablation.AddRow({"repl: preemption bound = " + std::to_string(bound),
                       WithCommas(report.executions), WithCommas(report.crashes_injected),
                       std::to_string(report.violations.size()), FixedDigits(ms, 0) + " ms"});
    }
  }
  {
    WalHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2)}};
    options.mutations.recovery_discards_log = true;
    RowResult bogus = RunChecker(PairSpec{}, [&] { return MakeWalInstance(options); }, 1);
    ablation.AddRow({"wal: recovery claims help, applies nothing",
                     WithCommas(bogus.report.executions),
                     WithCommas(bogus.report.crashes_injected),
                     std::to_string(bogus.report.violations.size()) + " (expected >0)",
                     FixedDigits(bogus.ms, 0) + " ms"});
  }
  std::printf("%s\n", ablation.Render().c_str());

  std::printf("== Parallel refinement checking ==\n");
  std::printf("(prefix-partitioned DFS across a worker pool; aggregates are deterministic,\n");
  std::printf(" so executions/violations must match the serial row exactly)\n\n");
  {
    TextTable par({"Configuration", "executions", "deduped", "violations", "time", "speedup"});
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5), ReplSpec::MakeRead(0)},
                          {ReplSpec::MakeWrite(0, 7)}};
    ExplorerOptions opts;
    opts.max_crashes = 1;
    auto time_run = [&](auto&& run) {
      auto start = std::chrono::steady_clock::now();
      Report report = run();
      double ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
              .count();
      return std::make_pair(report, ms);
    };
    auto [serial, serial_ms] = time_run([&] {
      refine::Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
      return ex.Run();
    });
    par.AddRow({"repl writer+reader vs writer: serial", WithCommas(serial.executions),
                WithCommas(serial.histories_deduped), std::to_string(serial.violations.size()),
                FixedDigits(serial_ms, 0) + " ms", "1.0x"});
    for (int workers : {1, 2, 4}) {
      for (bool dedup : {false, true}) {
        ExplorerOptions popts = opts;
        popts.num_workers = workers;
        popts.dedup_histories = dedup;
        auto [report, ms] = time_run([&] {
          refine::ParallelExplorer<ReplSpec> ex(ReplSpec{1},
                                                [&] { return MakeReplInstance(options); }, popts);
          return ex.Run();
        });
        par.AddRow({"parallel: " + std::to_string(workers) + " worker(s)" +
                        (dedup ? " + fingerprint dedup" : ""),
                    WithCommas(report.executions), WithCommas(report.histories_deduped),
                    std::to_string(report.violations.size()), FixedDigits(ms, 0) + " ms",
                    FixedDigits(serial_ms / (ms > 0 ? ms : 1), 1) + "x"});
      }
    }
    std::printf("%s\n", par.Render().c_str());
  }

  std::printf(
      "paper result: all patterns verified (proofs machine-checked). Here: every\n"
      "pattern row must show 0 violations; the ablation row must show >0 —\n"
      "the helping obligation is what rejects a recovery that lies about\n"
      "completing a committed transaction.\n");
  return 0;
}
