// Machine-readable benchmark output: the `--json <path>` flag shared by
// bench_sec91_patterns and bench_micro. Each bench collects one PorJsonRow
// per (system, POR on/off) cell and writes them as a single JSON document
// (conventionally BENCH_refine.json), so EXPERIMENTS.md tables and CI
// regression checks can consume checker-reduction numbers without scraping
// the human-oriented text tables.
#ifndef PERENNIAL_BENCH_BENCH_JSON_H_
#define PERENNIAL_BENCH_BENCH_JSON_H_

#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace perennial::benchjson {

struct PorJsonRow {
  std::string system;   // stable slug, e.g. "repl-2writers"
  bool por = false;     // was sleep-set POR enabled for this run?
  uint64_t executions = 0;
  uint64_t deduped = 0;  // histories skipped by fingerprint dedup
  uint64_t pruned = 0;   // runs aborted by an empty sleep-filtered frontier
  uint64_t histories = 0;
  uint64_t violations = 0;
  double ms = 0;
  // Appended after ms so bench_check's fixed-order scan stays valid.
  uint64_t peak_rss = 0;          // process peak RSS after the run (bytes)
  std::string outcome = "complete";  // RunOutcome name; "deadline"/"canceled"/"oom" = partial row
  // Per-request CPU cost (perf rows only; 0 when not measured). The split
  // into user/system time is the profiling headline: the netserv hot path
  // is syscall-dominated, so stime regressions are the ones to watch.
  double cpu_us_per_request = 0;
  uint64_t utime_us = 0;  // process user CPU over the measured window
  uint64_t stime_us = 0;  // process system CPU over the measured window
};

// Process user+system CPU so far, in microseconds. Benches diff two
// readings around a measured window to fill the cpu_us_per_request /
// utime_us / stime_us row fields (in-process harnesses include the load
// generator's threads — fine for before/after comparisons, which is the
// only use).
struct CpuUsage {
  uint64_t utime_us = 0;
  uint64_t stime_us = 0;
};

inline CpuUsage ProcessCpuUsage() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) {
    return {};
  }
  auto tv_us = [](const struct timeval& tv) {
    return static_cast<uint64_t>(tv.tv_sec) * 1000000 + static_cast<uint64_t>(tv.tv_usec);
  };
  return CpuUsage{tv_us(ru.ru_utime), tv_us(ru.ru_stime)};
}

// Process-wide peak resident set size in bytes (Linux reports KiB). Peak,
// not current: a row's value includes every earlier row, which is fine for
// the question the field answers ("did this sweep fit the budget?").
inline uint64_t PeakRssBytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) {
    return 0;
  }
  return static_cast<uint64_t>(ru.ru_maxrss) * 1024;
}

// Returns the value following `flag` in argv, or nullptr. When `strip` is
// non-null, every argv entry except the consumed pair is appended to it
// (for benches that forward remaining args to another parser).
inline const char* ParseValueFlag(int argc, char** argv, std::string_view flag,
                                  std::vector<char*>* strip) {
  const char* value = nullptr;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == flag && i + 1 < argc) {
      value = argv[i + 1];
      ++i;
      continue;
    }
    if (strip != nullptr) {
      strip->push_back(argv[i]);
    }
  }
  return value;
}

// Returns the value following "--json" in argv, or nullptr.
inline const char* ParseJsonPath(int argc, char** argv, std::vector<char*>* strip) {
  return ParseValueFlag(argc, argv, "--json", strip);
}

// Returns the value following "--filter" in argv, or nullptr. Benches treat
// the value as a case-sensitive substring of a row's name or slug and skip
// everything else (handy for iterating on one system without paying for the
// sweep).
inline const char* ParseFilter(int argc, char** argv, std::vector<char*>* strip) {
  return ParseValueFlag(argc, argv, "--filter", strip);
}

// Substring match used by --filter: nullptr/empty matches everything.
inline bool FilterMatches(const char* filter, std::string_view name, std::string_view slug) {
  if (filter == nullptr || *filter == '\0') {
    return true;
  }
  return name.find(filter) != std::string_view::npos ||
         slug.find(filter) != std::string_view::npos;
}

// Writes `rows` as {"bench": ..., "rows": [...]}; returns false (with a
// message on stderr) if the file cannot be opened.
inline bool WritePorJson(const std::string& path, const std::string& bench,
                         const std::vector<PorJsonRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "--json: cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", bench.c_str());
  for (size_t i = 0; i < rows.size(); ++i) {
    const PorJsonRow& r = rows[i];
    std::fprintf(f,
                 "    {\"system\": \"%s\", \"por\": %s, \"executions\": %llu, "
                 "\"deduped\": %llu, \"pruned\": %llu, \"histories\": %llu, "
                 "\"violations\": %llu, \"ms\": %.1f, \"peak_rss\": %llu, "
                 "\"outcome\": \"%s\"}%s\n",
                 r.system.c_str(), r.por ? "true" : "false",
                 static_cast<unsigned long long>(r.executions),
                 static_cast<unsigned long long>(r.deduped),
                 static_cast<unsigned long long>(r.pruned),
                 static_cast<unsigned long long>(r.histories),
                 static_cast<unsigned long long>(r.violations), r.ms,
                 static_cast<unsigned long long>(r.peak_rss), r.outcome.c_str(),
                 i + 1 < rows.size() ? "," : "");
    // The CPU fields are perf-row-only; WritePorJson serves the checker
    // sweeps, whose rows leave them unset, so nothing extra is emitted
    // here (bench_check's key-based scan tolerates absent keys).
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

// Upsert pre-rendered row lines into an existing BENCH json document:
// every committed row whose system slug does NOT start with `drop_prefix`
// is preserved verbatim, the old `drop_prefix` rows are dropped, and
// `rendered_rows` (single-line `{"system": ...}` objects, no trailing
// comma) are appended. Keeps the comma placement WritePorJson uses so
// repeated upserts from different benches compose.
inline bool UpsertJsonRows(const std::string& path, const std::string& drop_prefix,
                           const std::vector<std::string>& rendered_rows,
                           const std::string& default_bench) {
  std::string bench = default_bench;
  std::vector<std::string> kept;
  std::ifstream in(path);
  if (in) {
    std::string line;
    while (std::getline(in, line)) {
      size_t at = line.find("\"bench\": \"");
      if (at != std::string::npos) {
        at += std::strlen("\"bench\": \"");
        bench = line.substr(at, line.find('"', at) - at);
        continue;
      }
      if (line.find("{\"system\": \"") == std::string::npos) {
        continue;  // structural line
      }
      if (line.find("{\"system\": \"" + drop_prefix) != std::string::npos) {
        continue;  // replaced below
      }
      while (!line.empty() && (line.back() == ',' || line.back() == ' ')) {
        line.pop_back();
      }
      kept.push_back(line);
    }
  }
  for (const std::string& r : rendered_rows) {
    kept.push_back("    " + r);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "--json: cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", bench.c_str());
  for (size_t i = 0; i < kept.size(); ++i) {
    std::fprintf(f, "%s%s\n", kept[i].c_str(), i + 1 < kept.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace perennial::benchjson

#endif  // PERENNIAL_BENCH_BENCH_JSON_H_
