// Machine-readable benchmark output: the `--json <path>` flag shared by
// bench_sec91_patterns and bench_micro. Each bench collects one PorJsonRow
// per (system, POR on/off) cell and writes them as a single JSON document
// (conventionally BENCH_refine.json), so EXPERIMENTS.md tables and CI
// regression checks can consume checker-reduction numbers without scraping
// the human-oriented text tables.
#ifndef PERENNIAL_BENCH_BENCH_JSON_H_
#define PERENNIAL_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace perennial::benchjson {

struct PorJsonRow {
  std::string system;   // stable slug, e.g. "repl-2writers"
  bool por = false;     // was sleep-set POR enabled for this run?
  uint64_t executions = 0;
  uint64_t deduped = 0;  // histories skipped by fingerprint dedup
  uint64_t pruned = 0;   // runs aborted by an empty sleep-filtered frontier
  uint64_t histories = 0;
  uint64_t violations = 0;
  double ms = 0;
};

// Returns the value following "--json" in argv, or nullptr. When `strip`
// is non-null, every argv entry except the consumed pair is appended to it
// (for benches that forward remaining args to another parser).
inline const char* ParseJsonPath(int argc, char** argv, std::vector<char*>* strip) {
  const char* path = nullptr;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json" && i + 1 < argc) {
      path = argv[i + 1];
      ++i;
      continue;
    }
    if (strip != nullptr) {
      strip->push_back(argv[i]);
    }
  }
  return path;
}

// Returns the value following "--filter" in argv, or nullptr. Same
// consume-and-strip contract as ParseJsonPath; benches treat the value as a
// case-sensitive substring of a row's name or slug and skip everything
// else (handy for iterating on one system without paying for the sweep).
inline const char* ParseFilter(int argc, char** argv, std::vector<char*>* strip) {
  const char* filter = nullptr;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--filter" && i + 1 < argc) {
      filter = argv[i + 1];
      ++i;
      continue;
    }
    if (strip != nullptr) {
      strip->push_back(argv[i]);
    }
  }
  return filter;
}

// Substring match used by --filter: nullptr/empty matches everything.
inline bool FilterMatches(const char* filter, std::string_view name, std::string_view slug) {
  if (filter == nullptr || *filter == '\0') {
    return true;
  }
  return name.find(filter) != std::string_view::npos ||
         slug.find(filter) != std::string_view::npos;
}

// Writes `rows` as {"bench": ..., "rows": [...]}; returns false (with a
// message on stderr) if the file cannot be opened.
inline bool WritePorJson(const std::string& path, const std::string& bench,
                         const std::vector<PorJsonRow>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "--json: cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", bench.c_str());
  for (size_t i = 0; i < rows.size(); ++i) {
    const PorJsonRow& r = rows[i];
    std::fprintf(f,
                 "    {\"system\": \"%s\", \"por\": %s, \"executions\": %llu, "
                 "\"deduped\": %llu, \"pruned\": %llu, \"histories\": %llu, "
                 "\"violations\": %llu, \"ms\": %.1f}%s\n",
                 r.system.c_str(), r.por ? "true" : "false",
                 static_cast<unsigned long long>(r.executions),
                 static_cast<unsigned long long>(r.deduped),
                 static_cast<unsigned long long>(r.pruned),
                 static_cast<unsigned long long>(r.histories),
                 static_cast<unsigned long long>(r.violations), r.ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace perennial::benchjson

#endif  // PERENNIAL_BENCH_BENCH_JSON_H_
