// Direct unit tests for the specification transition systems: Step
// semantics, undefined-behavior boundaries, crash transitions, and the
// canonical key functions the memoizing checker depends on.
#include <gtest/gtest.h>

#include "src/mailboat/mail_spec.h"
#include "src/systems/gc/gc_spec.h"
#include "src/systems/kvs/kv_spec.h"
#include "src/systems/pair_spec.h"
#include "src/systems/txnlog/txn_spec.h"

namespace perennial {
namespace {

using mailboat::MailSpec;
using systems::GcSpec;
using systems::KvSpec;
using systems::PairSpec;
using systems::TxnSpec;

// ---------- PairSpec ----------

TEST(PairSpecTest, WriteThenReadRoundTrips) {
  PairSpec spec;
  auto w = spec.Step(spec.Initial(), PairSpec::MakeWrite(3, 4));
  ASSERT_EQ(w.branches.size(), 1u);
  auto r = spec.Step(w.branches[0].first, PairSpec::MakeRead());
  EXPECT_EQ(r.branches[0].second, std::make_pair(uint64_t{3}, uint64_t{4}));
}

TEST(PairSpecTest, CrashIsIdentity) {
  PairSpec spec;
  PairSpec::State s{9, 8};
  auto crashed = spec.CrashSteps(s);
  ASSERT_EQ(crashed.size(), 1u);
  EXPECT_EQ(crashed[0], s);
}

TEST(PairSpecTest, StateKeyIsInjectiveOnComponents) {
  EXPECT_NE(PairSpec::StateKey({12, 3}), PairSpec::StateKey({1, 23}));
}

// ---------- GcSpec ----------

TEST(GcSpecTest, ReadPrefersBufferedTail) {
  GcSpec spec;
  GcSpec::State s;
  s.durable = 1;
  s.buffer = {2, 3};
  EXPECT_EQ(spec.Step(s, GcSpec::MakeRead()).branches[0].second, 3u);
}

TEST(GcSpecTest, ReadFallsBackToDurable) {
  GcSpec spec;
  GcSpec::State s;
  s.durable = 7;
  EXPECT_EQ(spec.Step(s, GcSpec::MakeRead()).branches[0].second, 7u);
}

TEST(GcSpecTest, FlushCommitsLastAndClears) {
  GcSpec spec;
  GcSpec::State s;
  s.buffer = {4, 5};
  auto out = spec.Step(s, GcSpec::MakeFlush());
  EXPECT_EQ(out.branches[0].first.durable, 5u);
  EXPECT_TRUE(out.branches[0].first.buffer.empty());
}

TEST(GcSpecTest, CrashEnumeratesPrefixes) {
  GcSpec spec;
  GcSpec::State s;
  s.durable = 1;
  s.buffer = {2, 3};
  auto crashed = spec.CrashSteps(s);
  // durable ∈ {1, 2, 3}, buffer always empty.
  ASSERT_EQ(crashed.size(), 3u);
  for (const auto& c : crashed) {
    EXPECT_TRUE(c.buffer.empty());
  }
  EXPECT_EQ(crashed[0].durable, 1u);
  EXPECT_EQ(crashed[1].durable, 2u);
  EXPECT_EQ(crashed[2].durable, 3u);
}

TEST(GcSpecTest, CrashDeduplicatesEqualPrefixStates) {
  GcSpec spec;
  GcSpec::State s;
  s.durable = 2;
  s.buffer = {2};  // committing the buffered 2 leaves the same durable value
  EXPECT_EQ(spec.CrashSteps(s).size(), 1u);
}

// ---------- KvSpec ----------

TEST(KvSpecTest, PutPairIsAtomicInTheSpec) {
  KvSpec spec{3};
  auto out = spec.Step(spec.Initial(), KvSpec::MakePutPair(0, 5, 2, 6));
  ASSERT_EQ(out.branches.size(), 1u);
  EXPECT_EQ(out.branches[0].first.values, (std::vector<uint64_t>{5, 0, 6}));
}

TEST(KvSpecTest, EqualKeysInPutPairAreUndefined) {
  KvSpec spec{3};
  EXPECT_TRUE(spec.Step(spec.Initial(), KvSpec::MakePutPair(1, 5, 1, 6)).undefined);
}

TEST(KvSpecTest, OutOfRangeIsUndefined) {
  KvSpec spec{2};
  EXPECT_TRUE(spec.Step(spec.Initial(), KvSpec::MakeGet(2)).undefined);
  EXPECT_TRUE(spec.Step(spec.Initial(), KvSpec::MakePut(9, 1)).undefined);
}

TEST(KvSpecTest, CrashKeepsEverything) {
  KvSpec spec{2};
  KvSpec::State s{{4, 5}};
  EXPECT_EQ(spec.CrashSteps(s), std::vector<KvSpec::State>{s});
}

// ---------- TxnSpec ----------

TEST(TxnSpecTest, BatchAppliesInOrder) {
  TxnSpec spec{2};
  auto out = spec.Step(spec.Initial(), TxnSpec::MakeBatch({{0, 1}, {0, 2}, {1, 3}}));
  EXPECT_EQ(out.branches[0].first.values, (std::vector<uint64_t>{2, 3}));
}

TEST(TxnSpecTest, CheckpointIsObservablyANoOp) {
  TxnSpec spec{1};
  TxnSpec::State s{{8}};
  auto out = spec.Step(s, TxnSpec::MakeCheckpoint());
  EXPECT_EQ(out.branches[0].first, s);
}

TEST(TxnSpecTest, OutOfRangeRecordIsUndefined) {
  TxnSpec spec{1};
  EXPECT_TRUE(spec.Step(spec.Initial(), TxnSpec::MakeWrite(1, 5)).undefined);
}

// ---------- MailSpec ----------

TEST(MailSpecTest, PickupTakesTheLockAndListsMail) {
  MailSpec spec{1};
  MailSpec::State s = spec.Initial();
  s.boxes[0]["m1"] = "hello";
  auto out = spec.Step(s, MailSpec::MakePickup(0));
  ASSERT_EQ(out.branches.size(), 1u);
  EXPECT_EQ(out.branches[0].second.msgs.size(), 1u);
  EXPECT_EQ(out.branches[0].second.msgs[0].second, "hello");
  EXPECT_TRUE(out.branches[0].first.locked.count(0) > 0);
}

TEST(MailSpecTest, PickupBlocksWhileLocked) {
  MailSpec spec{1};
  MailSpec::State s = spec.Initial();
  s.locked.insert(0);
  auto out = spec.Step(s, MailSpec::MakePickup(0));
  EXPECT_FALSE(out.undefined);
  EXPECT_TRUE(out.branches.empty());  // blocked, not undefined
}

TEST(MailSpecTest, DeliverBranchesOverTheIdPool) {
  MailSpec spec{1};
  spec.id_pool = {"a", "b", "c"};
  MailSpec::State s = spec.Initial();
  s.boxes[0]["b"] = "taken";
  auto out = spec.Step(s, MailSpec::MakeDeliver(0, "x"));
  ASSERT_EQ(out.branches.size(), 2u);  // "b" is occupied
  EXPECT_EQ(out.branches[0].second.id, "a");
  EXPECT_EQ(out.branches[1].second.id, "c");
}

TEST(MailSpecTest, DeleteRequiresLockAndListedId) {
  MailSpec spec{1};
  MailSpec::State s = spec.Initial();
  s.boxes[0]["m"] = "x";
  EXPECT_TRUE(spec.Step(s, MailSpec::MakeDelete(0, "m")).undefined);  // no lock
  s.locked.insert(0);
  EXPECT_TRUE(spec.Step(s, MailSpec::MakeDelete(0, "zz")).undefined);  // unlisted id
  auto ok = spec.Step(s, MailSpec::MakeDelete(0, "m"));
  ASSERT_EQ(ok.branches.size(), 1u);
  EXPECT_TRUE(ok.branches[0].first.boxes.at(0).empty());
}

TEST(MailSpecTest, UnlockWithoutLockIsUndefined) {
  MailSpec spec{1};
  EXPECT_TRUE(spec.Step(spec.Initial(), MailSpec::MakeUnlock(0)).undefined);
}

TEST(MailSpecTest, CrashReleasesLocksKeepsMail) {
  MailSpec spec{1};
  MailSpec::State s = spec.Initial();
  s.boxes[0]["m"] = "x";
  s.locked.insert(0);
  auto crashed = spec.CrashSteps(s);
  ASSERT_EQ(crashed.size(), 1u);
  EXPECT_TRUE(crashed[0].locked.empty());
  EXPECT_EQ(crashed[0].boxes.at(0).at("m"), "x");
}

TEST(MailSpecTest, PrepareCollectsObservedAndSyntheticIds) {
  MailSpec spec{1};
  refine::History<MailSpec> h;
  uint64_t d1 = h.Invoke(0, MailSpec::MakeDeliver(0, "a"));
  MailSpec::Ret ret;
  ret.id = "msg-123";
  h.Return(d1, ret);
  h.Invoke(1, MailSpec::MakeDeliver(0, "b"));  // pending: no observed id
  spec.Prepare(h.events);
  // The observed id plus one synthetic per deliver (two delivers).
  EXPECT_EQ(spec.id_pool.size(), 3u);
  EXPECT_NE(std::find(spec.id_pool.begin(), spec.id_pool.end(), "msg-123"), spec.id_pool.end());
}

TEST(MailSpecTest, UnknownUserIsUndefined) {
  MailSpec spec{1};
  EXPECT_TRUE(spec.Step(spec.Initial(), MailSpec::MakePickup(5)).undefined);
}

}  // namespace
}  // namespace perennial
