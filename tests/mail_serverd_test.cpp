// Integration tests for the mail daemon: concurrent SMTP/POP3 sessions as
// goroutines over channel connections, all under the simulated scheduler.
#include <gtest/gtest.h>

#include "src/goose/world.h"
#include "src/goosefs/goosefs.h"
#include "src/mailboat/mailboat.h"
#include "src/smtp/mail_serverd.h"
#include "src/smtp/pop3.h"
#include "src/smtp/smtp.h"
#include "tests/sim_util.h"

namespace perennial::smtp {
namespace {

using mailboat::Mailboat;
using perennial::testing::DrainRoundRobin;
using proc::Scheduler;
using proc::SchedulerScope;
using proc::Task;

class MailServerdTest : public ::testing::Test {
 protected:
  MailServerdTest()
      : fs_(&world_, Mailboat::DirLayout(2)),
        mail_(&world_, &fs_, Mailboat::Options{2, 4096, 512, 7}),
        daemon_(&world_, &mail_) {}

  goose::World world_;
  goosefs::GooseFs fs_;
  Mailboat mail_;
  MailServerd daemon_;
};

Task<void> Capture(Task<std::vector<std::string>> inner, std::vector<std::string>* out) {
  *out = co_await std::move(inner);
}

TEST_F(MailServerdTest, SingleSmtpSessionDelivers) {
  Scheduler sched;
  SchedulerScope scope(&sched);
  LineConn conn = MakeConn(&world_);
  sched.Spawn(daemon_.ServeConn(Protocol::kSmtp, conn), "server");
  std::vector<std::string> responses;
  sched.Spawn(Capture(RunClientScript(conn, {"HELO c", "MAIL FROM:<a@b>",
                                             "RCPT TO:<user0@x>", "DATA", "hi", ".", "QUIT"}),
                      &responses),
              "client");
  DrainRoundRobin(sched);
  ASSERT_GE(responses.size(), 2u);
  EXPECT_EQ(responses.front(), SmtpSession::Greeting());
  EXPECT_EQ(responses.back(), "221 Bye");
  EXPECT_EQ(fs_.PeekNames("user0").size(), 1u);
}

TEST_F(MailServerdTest, AcceptLoopServesConcurrentSessions) {
  Scheduler sched;
  SchedulerScope scope(&sched);
  goose::Chan<Accepted> listener(&world_, 4);
  sched.Spawn(daemon_.AcceptLoop(&listener), "acceptor");

  LineConn smtp_conn = MakeConn(&world_);
  LineConn smtp_conn2 = MakeConn(&world_);
  std::vector<std::string> r1;
  std::vector<std::string> r2;

  auto feeder = [&]() -> Task<void> {
    // Named locals, not braced temporaries: GCC 12 double-destroys
    // aggregate temporaries in awaited coroutine calls (see
    // docs/gcc12_coroutine_notes.md).
    Accepted first{Protocol::kSmtp, smtp_conn};
    Accepted second{Protocol::kSmtp, smtp_conn2};
    co_await listener.Send(first);
    co_await listener.Send(second);
    co_await listener.Close();
  };
  sched.Spawn(feeder(), "feeder");
  sched.Spawn(Capture(RunClientScript(smtp_conn, {"HELO a", "MAIL FROM:<x@y>",
                                                  "RCPT TO:<user0@x>", "DATA", "one", ".",
                                                  "QUIT"}),
                      &r1),
              "client1");
  sched.Spawn(Capture(RunClientScript(smtp_conn2, {"HELO b", "MAIL FROM:<x@y>",
                                                   "RCPT TO:<user1@x>", "DATA", "two", ".",
                                                   "QUIT"}),
                      &r2),
              "client2");
  DrainRoundRobin(sched);
  EXPECT_EQ(r1.back(), "221 Bye");
  EXPECT_EQ(r2.back(), "221 Bye");
  EXPECT_EQ(fs_.PeekNames("user0").size(), 1u);
  EXPECT_EQ(fs_.PeekNames("user1").size(), 1u);
}

TEST_F(MailServerdTest, SmtpThenPop3EndToEnd) {
  Scheduler sched;
  SchedulerScope scope(&sched);
  {
    LineConn conn = MakeConn(&world_);
    sched.Spawn(daemon_.ServeConn(Protocol::kSmtp, conn), "smtp");
    std::vector<std::string> responses;
    sched.Spawn(Capture(RunClientScript(conn, {"HELO c", "MAIL FROM:<a@b>",
                                               "RCPT TO:<user1@x>", "DATA", "subject",
                                               ".", "QUIT"}),
                        &responses),
                "smtp-client");
    DrainRoundRobin(sched);
  }
  Scheduler sched2;
  SchedulerScope scope2(&sched2);
  LineConn conn = MakeConn(&world_);
  sched2.Spawn(daemon_.ServeConn(Protocol::kPop3, conn), "pop3");
  std::vector<std::string> responses;
  sched2.Spawn(Capture(RunClientScript(conn, {"USER user1", "PASS x", "STAT", "RETR 1",
                                              "DELE 1", "QUIT"}),
                       &responses),
               "pop3-client");
  DrainRoundRobin(sched2);
  ASSERT_GE(responses.size(), 5u);
  EXPECT_EQ(responses[0], Pop3Session::Greeting());
  EXPECT_EQ(responses[2], "+OK 1 messages");
  EXPECT_NE(responses[4].find("subject"), std::string::npos);
  EXPECT_TRUE(fs_.PeekNames("user1").empty());  // deleted at QUIT
}

TEST_F(MailServerdTest, DroppedPop3ConnectionReleasesTheLock) {
  Scheduler sched;
  SchedulerScope scope(&sched);
  LineConn conn = MakeConn(&world_);
  sched.Spawn(daemon_.ServeConn(Protocol::kPop3, conn), "pop3");
  // The client logs in (taking the mailbox lock) and then vanishes
  // without QUIT.
  auto rude_client = [&]() -> Task<void> {
    (void)co_await conn.to_client->Recv();  // greeting
    co_await conn.to_server->Send("USER user0");
    (void)co_await conn.to_client->Recv();
    co_await conn.to_server->Send("PASS x");
    (void)co_await conn.to_client->Recv();
    co_await conn.to_server->Close();  // hang up
  };
  sched.Spawn(rude_client(), "client");
  DrainRoundRobin(sched);
  // The lock must have been released: a fresh pickup succeeds (it would
  // deadlock otherwise).
  Scheduler sched2;
  SchedulerScope scope2(&sched2);
  bool picked_up = false;
  auto check = [&]() -> Task<void> {
    (void)co_await mail_.Pickup(0);
    co_await mail_.Unlock(0);
    picked_up = true;
  };
  sched2.Spawn(check());
  perennial::testing::DrainLowestFirst(sched2);
  EXPECT_TRUE(picked_up);
}

TEST_F(MailServerdTest, ConcurrentSmtpAndPop3OnSameUser) {
  // Delivery races a pickup session on the same mailbox — the library's
  // locking keeps both sessions coherent.
  Scheduler sched;
  SchedulerScope scope(&sched);
  goose::Chan<Accepted> listener(&world_, 4);
  sched.Spawn(daemon_.AcceptLoop(&listener), "acceptor");
  LineConn smtp_conn = MakeConn(&world_);
  LineConn pop_conn = MakeConn(&world_);
  std::vector<std::string> smtp_resp;
  std::vector<std::string> pop_resp;
  auto feeder = [&]() -> Task<void> {
    Accepted first{Protocol::kSmtp, smtp_conn};
    Accepted second{Protocol::kPop3, pop_conn};
    co_await listener.Send(first);
    co_await listener.Send(second);
    co_await listener.Close();
  };
  sched.Spawn(feeder(), "feeder");
  sched.Spawn(Capture(RunClientScript(smtp_conn, {"HELO c", "MAIL FROM:<a@b>",
                                                  "RCPT TO:<user0@x>", "DATA", "m", ".",
                                                  "QUIT"}),
                      &smtp_resp),
              "smtp-client");
  sched.Spawn(Capture(RunClientScript(pop_conn, {"USER user0", "PASS x", "STAT", "QUIT"}),
                      &pop_resp),
              "pop3-client");
  DrainRoundRobin(sched);
  EXPECT_EQ(smtp_resp.back(), "221 Bye");
  EXPECT_EQ(pop_resp.back(), "+OK Bye");
  // The pickup saw 0 or 1 messages depending on the interleaving; either
  // way the message is durably in the mailbox afterwards (the POP3 session
  // deleted nothing).
  EXPECT_EQ(fs_.PeekNames("user0").size(), 1u);
}

}  // namespace
}  // namespace perennial::smtp
