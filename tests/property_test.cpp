// Property-based tests (parameterized sweeps): random operation sequences
// checked against reference models, crash/recovery idempotence, and
// randomized exploration across seeds.
#include <map>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rand.h"
#include "src/goose/heap.h"
#include "src/goose/world.h"
#include "src/goosefs/goosefs.h"
#include "src/refine/explorer.h"
#include "src/systems/gc/gc_spec.h"
#include "src/systems/gc/group_commit.h"
#include "src/systems/kvs/kv_harness.h"
#include "src/systems/repl/repl_harness.h"
#include "src/goose/channel.h"
#include "src/systems/txnlog/txn_harness.h"
#include "src/systems/wal/wal_pair.h"
#include "tests/sim_util.h"

namespace perennial {
namespace {

using perennial::testing::DrainLowestFirst;
using proc::Task;

// ---------- GooseFs vs a reference model ----------

// Reference: dir -> name -> contents, with link sharing ignored (the model
// copies contents on link, which is observationally equivalent here since
// linked files are never appended to afterwards in this workload).
class FsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FsPropertyTest, RandomOpsMatchReferenceModel) {
  Rng rng(GetParam());
  goose::World world;
  goosefs::GooseFs fs(&world, {"d0", "d1"});
  std::map<std::string, std::map<std::string, std::string>> model{{"d0", {}}, {"d1", {}}};

  auto dir_of = [&](uint64_t i) { return i % 2 == 0 ? std::string("d0") : std::string("d1"); };

  proc::Scheduler sched;
  proc::SchedulerScope scope(&sched);
  for (int step = 0; step < 120; ++step) {
    uint64_t action = rng.Below(5);
    std::string dir = dir_of(rng.Next());
    std::string name = "f" + std::to_string(rng.Below(4));
    auto run = [&](auto&& task) {
      sched.Spawn(std::forward<decltype(task)>(task));
      DrainLowestFirst(sched);
    };
    switch (action) {
      case 0: {  // create + write + close
        std::string contents = "c" + std::to_string(rng.Below(100));
        bool expect_ok = model[dir].count(name) == 0;
        bool got_ok = false;
        run([&]() -> Task<void> {
          Result<goosefs::Fd> fd = co_await fs.Create(dir, name);
          got_ok = fd.ok();
          if (fd.ok()) {
            (void)co_await fs.Append(fd.value(), goosefs::BytesOfString(contents));
            (void)co_await fs.Close(fd.value());
          }
        }());
        ASSERT_EQ(got_ok, expect_ok) << "create " << dir << "/" << name;
        if (expect_ok) {
          model[dir][name] = contents;
        }
        break;
      }
      case 1: {  // read
        std::optional<std::string> got;
        run([&]() -> Task<void> {
          Result<goosefs::Fd> fd = co_await fs.Open(dir, name);
          if (fd.ok()) {
            Result<goosefs::Bytes> data = co_await fs.ReadAt(fd.value(), 0, 1000);
            got = goosefs::StringOfBytes(data.value());
            (void)co_await fs.Close(fd.value());
          }
        }());
        auto it = model[dir].find(name);
        if (it == model[dir].end()) {
          ASSERT_EQ(got, std::nullopt);
        } else {
          ASSERT_EQ(got, it->second);
        }
        break;
      }
      case 2: {  // delete
        bool expect_ok = model[dir].count(name) > 0;
        bool got_ok = false;
        run([&]() -> Task<void> {
          got_ok = (co_await fs.Delete(dir, name)).ok();
        }());
        ASSERT_EQ(got_ok, expect_ok);
        model[dir].erase(name);
        break;
      }
      case 3: {  // link to the other directory
        std::string dst_dir = dir == "d0" ? "d1" : "d0";
        std::string dst_name = "f" + std::to_string(rng.Below(4));
        bool expect_ok = model[dir].count(name) > 0 && model[dst_dir].count(dst_name) == 0;
        bool got_ok = false;
        run([&]() -> Task<void> {
          Result<bool> linked = co_await fs.Link(dir, name, dst_dir, dst_name);
          got_ok = linked.ok() && linked.value();
        }());
        ASSERT_EQ(got_ok, expect_ok);
        if (expect_ok) {
          model[dst_dir][dst_name] = model[dir][name];
        }
        break;
      }
      case 4: {  // list
        std::vector<std::string> got;
        run([&]() -> Task<void> {
          got = (co_await fs.List(dir)).value();
        }());
        std::vector<std::string> expect;
        for (const auto& [n, c] : model[dir]) {
          expect.push_back(n);
        }
        ASSERT_EQ(got, expect);
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsPropertyTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------- Heap slices vs std::vector ----------

class SlicePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlicePropertyTest, RandomSliceOpsMatchVector) {
  Rng rng(GetParam() * 77 + 5);
  goose::World world;
  goose::Heap heap(&world);
  std::vector<int> model{1, 2, 3, 4, 5};
  goose::Slice<int> slice = heap.SliceFromVector(model);

  proc::Scheduler sched;
  proc::SchedulerScope scope(&sched);
  for (int step = 0; step < 80; ++step) {
    uint64_t action = rng.Below(4);
    auto run = [&](auto&& task) {
      sched.Spawn(std::forward<decltype(task)>(task));
      DrainLowestFirst(sched);
    };
    switch (action) {
      case 0: {  // set
        uint64_t i = rng.Below(model.size());
        int v = static_cast<int>(rng.Below(1000));
        run([&]() -> Task<void> { co_await heap.SliceSet(slice, i, v); }());
        model[i] = v;
        break;
      }
      case 1: {  // get
        uint64_t i = rng.Below(model.size());
        int got = 0;
        run([&]() -> Task<void> { got = co_await heap.SliceGet(slice, i); }());
        ASSERT_EQ(got, model[i]);
        break;
      }
      case 2: {  // append (replaces handle)
        int v = static_cast<int>(rng.Below(1000));
        run([&]() -> Task<void> { slice = co_await heap.SliceAppend(slice, v); }());
        model.push_back(v);
        break;
      }
      case 3: {  // ranged copy
        uint64_t lo = rng.Below(model.size());
        uint64_t hi = lo + rng.Below(model.size() - lo + 1);
        std::vector<int> got;
        run([&]() -> Task<void> { got = co_await heap.SliceCopyOut(slice, lo, hi); }());
        std::vector<int> expect(model.begin() + static_cast<long>(lo),
                                model.begin() + static_cast<long>(hi));
        ASSERT_EQ(got, expect);
        break;
      }
    }
    ASSERT_EQ(heap.PeekSlice(slice), model);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlicePropertyTest, ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------- Group commit: sequential random workloads agree with the spec ----------

class GcPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GcPropertyTest, SequentialOpsMatchSpecSemantics) {
  Rng rng(GetParam() * 131 + 1);
  goose::World world;
  systems::GroupCommit gc(&world, 64);
  systems::GcSpec spec;
  systems::GcSpec::State spec_state = spec.Initial();

  proc::Scheduler sched;
  proc::SchedulerScope scope(&sched);
  for (int step = 0; step < 60; ++step) {
    uint64_t action = rng.Below(3);
    auto run = [&](auto&& task) {
      sched.Spawn(std::forward<decltype(task)>(task));
      DrainLowestFirst(sched);
    };
    systems::GcSpec::Op op;
    uint64_t impl_ret = 0;
    switch (action) {
      case 0: {
        uint64_t v = rng.Below(50) + 1;
        op = systems::GcSpec::MakeWrite(v);
        run([&]() -> Task<void> { co_await gc.Write(v); }());
        break;
      }
      case 1: {
        op = systems::GcSpec::MakeRead();
        run([&]() -> Task<void> { impl_ret = co_await gc.Read(); }());
        break;
      }
      case 2: {
        op = systems::GcSpec::MakeFlush();
        run([&]() -> Task<void> { co_await gc.Flush(); }());
        break;
      }
    }
    auto out = spec.Step(spec_state, op);
    ASSERT_EQ(out.branches.size(), 1u);
    ASSERT_EQ(impl_ret, out.branches[0].second);
    spec_state = out.branches[0].first;
    ASSERT_TRUE(gc.crash_invariants().AllHold());
  }
  // The durable value agrees with the spec after a final flush.
  {
    sched.Spawn([](systems::GroupCommit* g) -> Task<void> { co_await g->Flush(); }(&gc));
    DrainLowestFirst(sched);
    auto out = spec.Step(spec_state, systems::GcSpec::MakeFlush());
    spec_state = out.branches[0].first;
    ASSERT_EQ(gc.PeekDurable(), spec_state.durable);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcPropertyTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------- DurableKv: sequential random workloads agree with the spec ----------

class KvPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KvPropertyTest, SequentialOpsMatchSpecSemantics) {
  constexpr uint64_t kKeys = 4;
  Rng rng(GetParam() * 997 + 3);
  goose::World world;
  systems::DurableKv kv(&world, kKeys);
  systems::KvSpec spec{kKeys};
  systems::KvSpec::State spec_state = spec.Initial();

  proc::Scheduler sched;
  proc::SchedulerScope scope(&sched);
  uint64_t op_id = 1;
  for (int step = 0; step < 50; ++step) {
    uint64_t action = rng.Below(3);
    auto run = [&](auto&& task) {
      sched.Spawn(std::forward<decltype(task)>(task));
      DrainLowestFirst(sched);
    };
    systems::KvSpec::Op op;
    uint64_t impl_ret = 0;
    switch (action) {
      case 0: {
        op = systems::KvSpec::MakeGet(rng.Below(kKeys));
        run([&]() -> Task<void> { impl_ret = co_await kv.Get(op.k1); }());
        break;
      }
      case 1: {
        op = systems::KvSpec::MakePut(rng.Below(kKeys), rng.Below(100));
        run([&]() -> Task<void> { co_await kv.Put(op.k1, op.v1, op_id++); }());
        break;
      }
      case 2: {
        uint64_t k1 = rng.Below(kKeys);
        uint64_t k2 = (k1 + 1 + rng.Below(kKeys - 1)) % kKeys;
        op = systems::KvSpec::MakePutPair(k1, rng.Below(100), k2, rng.Below(100));
        run([&]() -> Task<void> {
          co_await kv.PutPair(op.k1, op.v1, op.k2, op.v2, op_id++);
        }());
        break;
      }
    }
    auto out = spec.Step(spec_state, op);
    ASSERT_EQ(out.branches.size(), 1u);
    ASSERT_EQ(impl_ret, out.branches[0].second);
    spec_state = out.branches[0].first;
    ASSERT_TRUE(kv.crash_invariants().AllHold());
  }
  for (uint64_t k = 0; k < kKeys; ++k) {
    ASSERT_EQ(kv.PeekValue(k), spec_state.values[k]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvPropertyTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------- Recovery idempotence: crash anywhere, recover repeatedly ----------

class RecoveryIdempotenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecoveryIdempotenceTest, WalRecoveryIsIdempotentUnderRepeatedCrashes) {
  Rng rng(GetParam() * 31 + 11);
  goose::World world;
  systems::WalPair wal(&world);
  // Run a write for a random number of steps, crash, then run recovery to
  // a random depth, crash again, and finally recover fully — the data must
  // end up in a consistent (un-torn) state and invariants must hold.
  {
    proc::Scheduler sched;
    proc::SchedulerScope scope(&sched);
    auto write = [&]() -> Task<void> { co_await wal.WritePair(11, 22, 1); };
    sched.Spawn(write());
    uint64_t steps = rng.Below(12);
    for (uint64_t i = 0; i < steps && !sched.AllDone(); ++i) {
      sched.Step(0);
    }
    sched.KillAllThreads();
  }
  world.Crash();
  ASSERT_TRUE(wal.crash_invariants().AllHold());
  for (int round = 0; round < 2; ++round) {
    proc::Scheduler sched;
    proc::SchedulerScope scope(&sched);
    auto recover = [&]() -> Task<void> { co_await wal.Recover([](uint64_t) {}); };
    sched.Spawn(recover());
    uint64_t steps = rng.Below(8);
    bool done = false;
    for (uint64_t i = 0; i < steps && !sched.AllDone(); ++i) {
      done = sched.Step(0);
    }
    if (done || sched.AllDone()) {
      break;
    }
    sched.KillAllThreads();
    world.Crash();
    ASSERT_TRUE(wal.crash_invariants().AllHold());
  }
  // Final full recovery.
  {
    proc::Scheduler sched;
    proc::SchedulerScope scope(&sched);
    // The partial recovery above may have consumed the helping token; a
    // fresh recovery must still terminate and restore consistency.
    world.Crash();
    auto recover = [&]() -> Task<void> { co_await wal.Recover([](uint64_t) {}); };
    sched.Spawn(recover());
    DrainLowestFirst(sched);
  }
  ASSERT_TRUE(wal.crash_invariants().AllHold());
  auto pair = wal.PeekData();
  // Un-torn: either the old pair or the new one.
  bool old_state = pair.first == 0 && pair.second == 0;
  bool new_state = pair.first == 11 && pair.second == 22;
  ASSERT_TRUE(old_state || new_state) << pair.first << "," << pair.second;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryIdempotenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

// ---------- TxnLog: sequential random workloads agree with the spec ----------

class TxnPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TxnPropertyTest, SequentialOpsMatchSpecSemantics) {
  constexpr uint64_t kAddrs = 3;
  Rng rng(GetParam() * 271 + 9);
  goose::World world;
  systems::TxnLog log(&world, kAddrs, 16);
  systems::TxnSpec spec{kAddrs};
  systems::TxnSpec::State spec_state = spec.Initial();

  proc::Scheduler sched;
  proc::SchedulerScope scope(&sched);
  uint64_t op_id = 1;
  for (int step = 0; step < 60; ++step) {
    uint64_t action = rng.Below(4);
    auto run = [&](auto&& task) {
      sched.Spawn(std::forward<decltype(task)>(task));
      DrainLowestFirst(sched);
    };
    systems::TxnSpec::Op op;
    uint64_t impl_ret = 0;
    switch (action) {
      case 0:
      case 1: {  // single or double-record batch
        std::vector<std::pair<uint64_t, uint64_t>> records;
        records.emplace_back(rng.Below(kAddrs), rng.Below(50));
        if (action == 1) {
          records.emplace_back(rng.Below(kAddrs), rng.Below(50));
        }
        op = systems::TxnSpec::MakeBatch(records);
        run([&]() -> Task<void> { co_await log.CommitBatch(records, op_id++); }());
        break;
      }
      case 2: {
        op = systems::TxnSpec::MakeRead(rng.Below(kAddrs));
        run([&]() -> Task<void> { impl_ret = co_await log.Read(op.addr); }());
        break;
      }
      case 3: {
        op = systems::TxnSpec::MakeCheckpoint();
        run([&]() -> Task<void> { co_await log.Checkpoint(); }());
        break;
      }
    }
    auto out = spec.Step(spec_state, op);
    ASSERT_EQ(out.branches.size(), 1u);
    ASSERT_EQ(impl_ret, out.branches[0].second);
    spec_state = out.branches[0].first;
    ASSERT_TRUE(log.crash_invariants().AllHold());
  }
  for (uint64_t a = 0; a < kAddrs; ++a) {
    ASSERT_EQ(log.PeekCommitted(a), spec_state.values[a]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnPropertyTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------- Deferred durability: crash keeps exactly the synced prefix ----------

class DeferredDurabilityPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeferredDurabilityPropertyTest, CrashPreservesTheSyncedPrefix) {
  Rng rng(GetParam() * 41 + 17);
  goose::World world;
  goosefs::GooseFs fs(&world, {"d"}, {.deferred_durability = true});
  proc::Scheduler sched;
  proc::SchedulerScope scope(&sched);

  std::string full;
  std::string synced;
  goosefs::Fd fd = 0;
  auto run = [&](auto&& task) {
    sched.Spawn(std::forward<decltype(task)>(task));
    DrainLowestFirst(sched);
  };
  run([&]() -> Task<void> { fd = (co_await fs.Create("d", "f")).value(); }());
  for (int step = 0; step < 30; ++step) {
    if (rng.Chance(0.7)) {
      std::string chunk(rng.Below(4) + 1, static_cast<char>('a' + rng.Below(26)));
      run([&]() -> Task<void> {
        (void)co_await fs.Append(fd, goosefs::BytesOfString(chunk));
      }());
      full += chunk;
    } else {
      run([&]() -> Task<void> { (void)co_await fs.Sync(fd); }());
      synced = full;
    }
  }
  ASSERT_EQ(goosefs::StringOfBytes(*fs.PeekFile("d", "f")), full);
  world.Crash();
  ASSERT_EQ(goosefs::StringOfBytes(*fs.PeekFile("d", "f")), synced);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeferredDurabilityPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---------- Channels: FIFO integrity under random producer/consumer ----------

class ChannelPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChannelPropertyTest, EverySentValueArrivesInOrder) {
  Rng rng(GetParam() * 61 + 23);
  goose::World world;
  goose::Chan<int> ch(&world, rng.Below(3) + 1);
  proc::Scheduler sched;
  proc::SchedulerScope scope(&sched);
  const int kCount = 25;
  std::vector<int> received;
  auto producer = [&]() -> Task<void> {
    for (int i = 0; i < kCount; ++i) {
      co_await ch.Send(i);
    }
    co_await ch.Close();
  };
  auto consumer = [&]() -> Task<void> {
    while (true) {
      std::optional<int> v = co_await ch.Recv();
      if (!v.has_value()) {
        co_return;
      }
      received.push_back(*v);
    }
  };
  sched.Spawn(producer());
  sched.Spawn(consumer());
  // Random schedule each seed.
  Rng sched_rng(GetParam());
  while (!sched.AllDone()) {
    auto runnable = sched.RunnableThreads();
    ASSERT_FALSE(runnable.empty());
    sched.Step(runnable[sched_rng.Below(runnable.size())]);
  }
  ASSERT_EQ(received.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    ASSERT_EQ(received[static_cast<size_t>(i)], i);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelPropertyTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------- Randomized exploration across seeds ----------

class RandomExploreTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomExploreTest, ReplicatedDiskHoldsUnderRandomSchedules) {
  systems::ReplHarnessOptions options;
  options.num_blocks = 2;
  options.client_ops = {{systems::ReplSpec::MakeWrite(0, 1), systems::ReplSpec::MakeWrite(1, 2)},
                        {systems::ReplSpec::MakeWrite(0, 3), systems::ReplSpec::MakeRead(1)}};
  refine::ExplorerOptions opts;
  opts.mode = refine::ExplorerOptions::Mode::kRandom;
  opts.random_runs = 120;
  opts.seed = GetParam();
  opts.max_crashes = 2;
  refine::Explorer<systems::ReplSpec> ex(systems::ReplSpec{2},
                                         [&] { return MakeReplInstance(options); }, opts);
  refine::Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExploreTest, ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace perennial
