// Unit tests for the environment fault-injection subsystem (src/fault):
// FaultSchedule arm/consume, FaultyDisk transient/torn/fail-slow semantics,
// retry-with-backoff, the FaultPlan -> EnvEvent bridge, and GooseFs
// unsynced-tail loss.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/disk/disk.h"
#include "src/fault/fault.h"
#include "src/fault/fault_events.h"
#include "src/fault/faulty_disk.h"
#include "src/fault/retry.h"
#include "src/goosefs/goosefs.h"
#include "src/refine/explorer.h"
#include "tests/sim_util.h"

namespace perennial::fault {
namespace {

using disk::Block;
using disk::BlockOfU64;
using disk::U64OfBlock;
using perennial::testing::SimRun;
using proc::Task;

// ---------- FaultSchedule ----------

TEST(FaultSchedule, ConsumeOnlyFiresWhenArmed) {
  FaultSchedule s{FaultPlan{}};
  EXPECT_FALSE(s.Consume(FaultKind::kTransientRead, 0));
  s.Arm(FaultKind::kTransientRead, FaultPlan::kAnyDisk);
  EXPECT_EQ(s.armed(FaultKind::kTransientRead), 1u);
  EXPECT_TRUE(s.Consume(FaultKind::kTransientRead, 0));
  EXPECT_FALSE(s.Consume(FaultKind::kTransientRead, 0));  // consumed
  EXPECT_EQ(s.injected(FaultKind::kTransientRead), 1u);
  EXPECT_EQ(s.total_injected(), 1u);
}

TEST(FaultSchedule, KindsDoNotCrossConsume) {
  FaultSchedule s{FaultPlan{}};
  s.Arm(FaultKind::kTransientWrite, FaultPlan::kAnyDisk);
  EXPECT_FALSE(s.Consume(FaultKind::kTransientRead, 0));
  EXPECT_FALSE(s.Consume(FaultKind::kTornWrite, 0));
  EXPECT_TRUE(s.Consume(FaultKind::kTransientWrite, 0));
}

TEST(FaultSchedule, TargetedFaultOnlyHitsThatDisk) {
  FaultSchedule s{FaultPlan{}};
  s.Arm(FaultKind::kTransientWrite, 2);
  EXPECT_FALSE(s.Consume(FaultKind::kTransientWrite, 1));  // wrong disk
  EXPECT_TRUE(s.Consume(FaultKind::kTransientWrite, 2));
}

TEST(FaultSchedule, ArmedFaultsStack) {
  FaultSchedule s{FaultPlan{}};
  s.Arm(FaultKind::kTransientRead, FaultPlan::kAnyDisk);
  s.Arm(FaultKind::kTransientRead, FaultPlan::kAnyDisk);
  EXPECT_EQ(s.armed(FaultKind::kTransientRead), 2u);
  EXPECT_TRUE(s.Consume(FaultKind::kTransientRead, 0));
  EXPECT_TRUE(s.Consume(FaultKind::kTransientRead, 0));
  EXPECT_FALSE(s.Consume(FaultKind::kTransientRead, 0));
}

TEST(FaultSchedule, TornPrefixDefaultsToHalfTheBlock) {
  FaultSchedule s{FaultPlan{}};
  EXPECT_EQ(s.TornPrefixBytes(16), 8u);
  FaultPlan plan;
  plan.torn_prefix_bytes = 3;
  FaultSchedule s2{plan};
  EXPECT_EQ(s2.TornPrefixBytes(16), 3u);
}

TEST(FaultSchedule, TornMinBlockShieldsMetadata) {
  FaultPlan plan;
  plan.torn_min_block = 1;
  FaultSchedule s{plan};
  EXPECT_FALSE(s.TornApplies(0));
  EXPECT_TRUE(s.TornApplies(1));
}

// ---------- FaultyDisk ----------

TEST(FaultyDisk, NullScheduleBehavesLikePlainDisk) {
  goose::World world;
  FaultyDisk d(&world, 4, BlockOfU64(0));
  auto body = [&]() -> Task<uint64_t> {
    EXPECT_TRUE((co_await d.Write(1, BlockOfU64(7))).ok());
    co_return U64OfBlock((co_await d.Read(1)).value());
  };
  EXPECT_EQ(SimRun(body()), 7u);
  EXPECT_FALSE(d.HasTornPending());
}

TEST(FaultyDisk, TransientReadFailsOnceThenSucceeds) {
  goose::World world;
  FaultSchedule faults{FaultPlan{}};
  FaultyDisk d(&world, 4, BlockOfU64(9), &faults);
  faults.Arm(FaultKind::kTransientRead, FaultPlan::kAnyDisk);
  auto body = [&]() -> Task<uint64_t> {
    Result<Block> first = co_await d.Read(0);
    EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);
    Result<Block> second = co_await d.Read(0);
    co_return U64OfBlock(second.value());
  };
  EXPECT_EQ(SimRun(body()), 9u);
  EXPECT_EQ(faults.injected(FaultKind::kTransientRead), 1u);
}

TEST(FaultyDisk, TransientWriteHasNoEffect) {
  goose::World world;
  FaultSchedule faults{FaultPlan{}};
  FaultyDisk d(&world, 4, BlockOfU64(5), &faults);
  faults.Arm(FaultKind::kTransientWrite, FaultPlan::kAnyDisk);
  auto body = [&]() -> Task<Status> { co_return co_await d.Write(0, BlockOfU64(6)); };
  EXPECT_EQ(SimRun(body()).code(), StatusCode::kUnavailable);
  EXPECT_EQ(U64OfBlock(d.PeekBlock(0)), 5u);  // nothing landed
}

TEST(FaultyDisk, FailStopOutranksArmedFaults) {
  // A dead disk reports kFailed even with transient faults armed: fail-stop
  // is not retryable and must not be masked as kUnavailable.
  goose::World world;
  FaultSchedule faults{FaultPlan{}};
  FaultyDisk d(&world, 4, BlockOfU64(0), &faults);
  faults.Arm(FaultKind::kTransientRead, FaultPlan::kAnyDisk);
  d.Fail();
  auto body = [&]() -> Task<StatusCode> {
    co_return (co_await d.Read(0)).status().code();
  };
  EXPECT_EQ(SimRun(body()), StatusCode::kFailed);
  EXPECT_EQ(faults.injected(FaultKind::kTransientRead), 0u);  // not consumed
}

TEST(FaultyDisk, TornWriteReadsNewValueButCrashPersistsPrefix) {
  goose::World world;
  FaultSchedule faults{FaultPlan{}};
  FaultyDisk d(&world, 2, BlockOfU64(0), &faults);
  faults.Arm(FaultKind::kTornWrite, FaultPlan::kAnyDisk);
  // 16-byte block, two logical "sectors" of 8 bytes each.
  auto write_body = [&]() -> Task<Status> {
    Block b(16, 0xFF);
    co_return co_await d.Write(0, b);
  };
  EXPECT_TRUE(SimRun(write_body()).ok());
  EXPECT_TRUE(d.HasTornPending());
  // Memory (page cache) sees the whole write...
  EXPECT_EQ(d.PeekBlock(0), Block(16, 0xFF));
  // ...but the durable image is only the first half.
  Block torn = d.PeekDurable(0);
  ASSERT_EQ(torn.size(), 16u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(torn[i], 0xFF) << "byte " << i;
  }
  for (size_t i = 8; i < 16; ++i) {
    EXPECT_EQ(torn[i], 0x00) << "byte " << i;
  }
  world.Crash();
  EXPECT_EQ(d.PeekBlock(0), torn);
  EXPECT_FALSE(d.HasTornPending());
}

TEST(FaultyDisk, BarrierMakesTornWriteDurable) {
  goose::World world;
  FaultSchedule faults{FaultPlan{}};
  FaultyDisk d(&world, 2, BlockOfU64(0), &faults);
  faults.Arm(FaultKind::kTornWrite, FaultPlan::kAnyDisk);
  auto body = [&]() -> Task<Status> {
    Status s = co_await d.Write(0, Block(16, 0xAB));
    Status bs = co_await d.Barrier();
    EXPECT_TRUE(bs.ok());
    co_return s;
  };
  EXPECT_TRUE(SimRun(body()).ok());
  EXPECT_FALSE(d.HasTornPending());
  world.Crash();
  EXPECT_EQ(d.PeekBlock(0), Block(16, 0xAB));  // barrier made it whole
}

TEST(FaultyDisk, FreshOverwriteSupersedesPendingTear) {
  goose::World world;
  FaultSchedule faults{FaultPlan{}};
  FaultyDisk d(&world, 2, BlockOfU64(0), &faults);
  faults.Arm(FaultKind::kTornWrite, FaultPlan::kAnyDisk);
  auto body = [&]() -> Task<Status> {
    (void)co_await d.Write(0, Block(16, 0xAB));  // torn
    co_return co_await d.Write(0, Block(16, 0xCD));  // clean full overwrite
  };
  EXPECT_TRUE(SimRun(body()).ok());
  EXPECT_FALSE(d.HasTornPending());
  world.Crash();
  EXPECT_EQ(d.PeekBlock(0), Block(16, 0xCD));
}

TEST(FaultyDisk, TornMinBlockProtectsHeaderAndStaysArmed) {
  FaultPlan plan;
  plan.torn_min_block = 1;
  goose::World world;
  FaultSchedule faults{plan};
  FaultyDisk d(&world, 2, BlockOfU64(0), &faults);
  faults.Arm(FaultKind::kTornWrite, FaultPlan::kAnyDisk);
  auto body = [&]() -> Task<Status> {
    (void)co_await d.Write(0, Block(16, 0x11));  // header: cannot tear
    co_return co_await d.Write(1, Block(16, 0x22));  // record block: tears
  };
  EXPECT_TRUE(SimRun(body()).ok());
  world.Crash();
  EXPECT_EQ(d.PeekBlock(0), Block(16, 0x11));  // atomic despite armed fault
  Block b1 = d.PeekBlock(1);
  EXPECT_EQ(b1[0], 0x22);
  EXPECT_EQ(b1[15], 0x00);  // suffix reverted: the tear landed on block 1
}

TEST(FaultyDisk, FailSlowCompletesCorrectly) {
  goose::World world;
  FaultSchedule faults{FaultPlan{}};
  FaultyDisk d(&world, 2, BlockOfU64(0), &faults);
  faults.Arm(FaultKind::kFailSlow, FaultPlan::kAnyDisk);
  auto body = [&]() -> Task<uint64_t> {
    (void)co_await d.Write(0, BlockOfU64(3));
    co_return U64OfBlock((co_await d.Read(0)).value());
  };
  EXPECT_EQ(SimRun(body()), 3u);
  EXPECT_EQ(faults.injected(FaultKind::kFailSlow), 1u);
}

// ---------- RetryWithBackoff ----------

TEST(Retry, RetriesTransientUntilSuccess) {
  goose::World world;
  FaultSchedule faults{FaultPlan{}};
  FaultyDisk d(&world, 2, BlockOfU64(0), &faults);
  faults.Arm(FaultKind::kTransientWrite, FaultPlan::kAnyDisk);
  faults.Arm(FaultKind::kTransientWrite, FaultPlan::kAnyDisk);
  auto body = [&]() -> Task<Status> {
    co_return co_await RetryWithBackoff(RetryPolicy{},
                                        [&] { return d.Write(0, BlockOfU64(4)); });
  };
  EXPECT_TRUE(SimRun(body()).ok());
  EXPECT_EQ(U64OfBlock(d.PeekBlock(0)), 4u);
  EXPECT_EQ(faults.injected(FaultKind::kTransientWrite), 2u);  // both retried through
}

TEST(Retry, DoesNotRetryFailStop) {
  goose::World world;
  FaultyDisk d(&world, 2, BlockOfU64(0));
  d.Fail();
  auto body = [&]() -> Task<StatusCode> {
    Result<Block> r =
        co_await RetryWithBackoff(RetryPolicy{}, [&] { return d.Read(0); });
    co_return r.status().code();
  };
  // Unbounded policy, yet it returns immediately: kFailed is not retryable.
  EXPECT_EQ(SimRun(body()), StatusCode::kFailed);
}

TEST(Retry, BoundedAttemptsGiveUp) {
  goose::World world;
  FaultSchedule faults{FaultPlan{}};
  FaultyDisk d(&world, 2, BlockOfU64(0), &faults);
  for (int i = 0; i < 5; ++i) {
    faults.Arm(FaultKind::kTransientRead, FaultPlan::kAnyDisk);
  }
  RetryPolicy bounded;
  bounded.max_attempts = 3;
  auto body = [&]() -> Task<StatusCode> {
    Result<Block> r = co_await RetryWithBackoff(bounded, [&] { return d.Read(0); });
    co_return r.status().code();
  };
  EXPECT_EQ(SimRun(body()), StatusCode::kUnavailable);
  EXPECT_EQ(faults.injected(FaultKind::kTransientRead), 3u);  // one per attempt
}

// ---------- FaultPlan -> EnvEvent bridge ----------

TEST(FaultEvents, OneEventPerNonZeroBudgetWithStableNames) {
  FaultPlan plan;
  plan.transient_reads = 2;
  plan.torn_writes = 1;
  FaultSchedule schedule{plan};
  std::vector<refine::EnvEvent> events = MakeFaultEvents(plan, &schedule);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "fault:transient-read");
  EXPECT_EQ(events[0].budget, 2);
  EXPECT_EQ(events[1].name, "fault:torn-write");
  EXPECT_EQ(events[1].budget, 1);
  events[1].fire();
  EXPECT_EQ(schedule.armed(FaultKind::kTornWrite), 1u);
}

TEST(FaultEvents, TargetedPlanEncodesDiskInName) {
  FaultPlan plan;
  plan.transient_writes = 1;
  plan.target = 2;
  FaultSchedule schedule{plan};
  std::vector<refine::EnvEvent> events = MakeFaultEvents(plan, &schedule);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "fault:transient-write@d2");
  events[0].fire();
  EXPECT_FALSE(schedule.Consume(FaultKind::kTransientWrite, 1));
  EXPECT_TRUE(schedule.Consume(FaultKind::kTransientWrite, 2));
}

TEST(FaultEvents, EmptyPlanYieldsNoEvents) {
  FaultPlan plan;
  FaultSchedule schedule{plan};
  EXPECT_TRUE(MakeFaultEvents(plan, &schedule).empty());
  EXPECT_FALSE(plan.AnyBudget());
}

// ---------- GooseFs unsynced-tail loss ----------

TEST(GooseFsFaults, CrashKeepsHalfTheUnsyncedTailWhenArmed) {
  goose::World world;
  FaultPlan plan;
  plan.unsynced_tail = 1;
  FaultSchedule faults{plan};
  goosefs::GooseFs::Options options;
  options.deferred_durability = true;
  options.faults = &faults;
  goosefs::GooseFs fs(&world, {"spool"}, options);
  auto body = [&]() -> Task<Status> {
    goosefs::Fd fd = (co_await fs.Create("spool", "msg")).value();
    (void)co_await fs.Append(fd, goosefs::BytesOfString("abcdef"));
    (void)co_await fs.Sync(fd);
    (void)co_await fs.Append(fd, goosefs::BytesOfString("ghij"));
    co_return co_await fs.Close(fd);
  };
  EXPECT_TRUE(SimRun(body()).ok());
  faults.Arm(FaultKind::kUnsyncedTail, FaultPlan::kAnyDisk);
  world.Crash();
  // Synced prefix "abcdef" survives; the fault leaves (4+1)/2 = 2 extra
  // bytes of the unsynced tail behind.
  auto data = fs.PeekFile("spool", "msg");
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(goosefs::StringOfBytes(*data), "abcdefgh");
  EXPECT_EQ(faults.injected(FaultKind::kUnsyncedTail), 1u);
}

TEST(GooseFsFaults, UnarmedCrashTruncatesToSyncedPrefix) {
  goose::World world;
  FaultPlan plan;
  plan.unsynced_tail = 1;  // budget exists but nothing armed
  FaultSchedule faults{plan};
  goosefs::GooseFs::Options options;
  options.deferred_durability = true;
  options.faults = &faults;
  goosefs::GooseFs fs(&world, {"spool"}, options);
  auto body = [&]() -> Task<Status> {
    goosefs::Fd fd = (co_await fs.Create("spool", "msg")).value();
    (void)co_await fs.Append(fd, goosefs::BytesOfString("abcdef"));
    (void)co_await fs.Sync(fd);
    (void)co_await fs.Append(fd, goosefs::BytesOfString("ghij"));
    co_return co_await fs.Close(fd);
  };
  EXPECT_TRUE(SimRun(body()).ok());
  world.Crash();
  auto data = fs.PeekFile("spool", "msg");
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(goosefs::StringOfBytes(*data), "abcdef");
}

}  // namespace
}  // namespace perennial::fault
