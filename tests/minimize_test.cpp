// Counterexample minimization (tier-1): every violation the explorer
// reports must shrink to a 1-minimal, replayable witness. For ~20 seeded
// mutations across the §9.1 systems (crash bugs, a deadlock, fault-
// injection bugs whose schedules carry env decisions), the suite finds a
// violation, minimizes its recorded schedule, and asserts:
//   * the minimized schedule still provokes a violation of the same kind;
//   * the minimized execution replays BIT-IDENTICALLY after a trace-file
//     round trip (FormatTrace/ParseTrace and SaveTrace/LoadTrace);
//   * the result is 1-minimal: deleting any single retained decision makes
//     the violation disappear under replay;
//   * minimization never grows the schedule, and the termination measure
//     bounds the replay count well under the budget.
// Plus direct coverage of the trace parser's error paths.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/mailboat/mail_harness.h"
#include "src/refine/explorer.h"
#include "src/refine/minimize.h"
#include "src/systems/ftl/ftl_harness.h"
#include "src/systems/kvs/kv_harness.h"
#include "src/systems/pattern_harness.h"
#include "src/systems/repl/repl_harness.h"
#include "src/systems/txnlog/txn_harness.h"

namespace perennial::systems {
namespace {

using refine::Explorer;
using refine::ExplorerOptions;
using refine::MinimizeResult;
using refine::MinimizeSchedule;
using refine::Report;
using refine::ScheduleDecision;
using refine::TraceFile;
using refine::Violation;

// Finds the first violation by exhaustive DFS, minimizes it, and checks the
// full contract: still-violating, trace-file round trip, bit-identical
// replay, 1-minimality.
template <typename Spec, typename Factory>
void CheckMinimize(const std::string& run_id, Spec spec, Factory factory,
                   ExplorerOptions opts) {
  opts.max_violations = 1;
  Report found = Explorer<Spec>(spec, factory, opts).Run();
  ASSERT_FALSE(found.ok()) << run_id << ": seeded bug not found\n" << found.Summary();
  const Violation& seed = found.violations[0];
  ASSERT_FALSE(seed.schedule.empty()) << run_id << ": violation carries no schedule";

  MinimizeResult m = MinimizeSchedule(spec, factory, opts, seed);
  ASSERT_TRUE(m.reproduced) << run_id << ": seed witness did not reproduce under replay";
  EXPECT_EQ(m.violation.kind, seed.kind) << run_id;
  EXPECT_LE(m.schedule.size(), seed.schedule.size()) << run_id;
  EXPECT_GT(m.stats.replays, 0u) << run_id;
  EXPECT_LT(m.stats.replays, refine::MinimizeOptions{}.max_replays)
      << run_id << ": replay budget exhausted — result may not be 1-minimal";

  // The minimized schedule still violates, with the same kind.
  Explorer<Spec> engine(spec, factory, opts);
  Report direct = engine.ReplaySchedule(m.schedule);
  ASSERT_FALSE(direct.ok()) << run_id << ": minimized schedule no longer violates";
  EXPECT_EQ(direct.violations[0].kind, seed.kind) << run_id;
  EXPECT_EQ(direct.violations[0].trace, m.violation.trace)
      << run_id << ": replay of the minimized schedule diverged";

  // Trace-file round trip: text and file forms both reproduce the schedule
  // exactly, and the replay of the loaded schedule is bit-identical.
  TraceFile trace;
  trace.run_id = run_id;
  trace.kind = seed.kind;
  trace.seed = opts.seed;
  trace.schedule = m.schedule;
  TraceFile reparsed;
  ASSERT_TRUE(refine::ParseTrace(refine::FormatTrace(trace), &reparsed).ok()) << run_id;
  EXPECT_EQ(reparsed.run_id, trace.run_id);
  EXPECT_EQ(reparsed.kind, trace.kind);
  EXPECT_EQ(reparsed.seed, trace.seed);
  ASSERT_EQ(reparsed.schedule, trace.schedule) << run_id << ": text round trip changed decisions";

  const std::string path = ::testing::TempDir() + "pcc_trace_" + run_id + ".txt";
  ASSERT_TRUE(refine::SaveTrace(path, trace).ok()) << run_id;
  TraceFile loaded;
  ASSERT_TRUE(refine::LoadTrace(path, &loaded).ok()) << run_id;
  std::remove(path.c_str());
  ASSERT_EQ(loaded.schedule, trace.schedule) << run_id << ": file round trip changed decisions";
  Report from_file = engine.ReplaySchedule(loaded.schedule);
  ASSERT_FALSE(from_file.ok()) << run_id;
  EXPECT_EQ(from_file.violations[0].trace, m.violation.trace)
      << run_id << ": trace-file replay is not bit-identical";

  // 1-minimality: dropping any single decision loses the violation.
  for (size_t i = 0; i < m.schedule.size(); ++i) {
    std::vector<ScheduleDecision> cand = m.schedule;
    cand.erase(cand.begin() + i);
    Report r = engine.ReplaySchedule(cand);
    const bool still = !r.violations.empty() && r.violations[0].kind == seed.kind;
    EXPECT_FALSE(still) << run_id << ": not 1-minimal — decision " << i << " ("
                        << refine::ScheduleDecisionLabel(m.schedule[i]) << ") is deletable";
  }
}

// ---------- Replicated disk ----------

TEST(Minimize, ReplSkipLocking) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
  options.mutations.skip_locking = true;
  ExplorerOptions opts;
  opts.max_crashes = 0;
  CheckMinimize("repl-skip-locking", ReplSpec{1}, [&] { return MakeReplInstance(options); },
                opts);
}

TEST(Minimize, ReplSkipSecondWrite) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.mutations.skip_second_write = true;
  options.with_disk1_failure_event = true;
  options.observe_repeats = 2;
  ExplorerOptions opts;
  opts.max_crashes = 0;
  CheckMinimize("repl-skip-second-write", ReplSpec{1}, [&] { return MakeReplInstance(options); },
                opts);
}

TEST(Minimize, ReplRecoveryZeroes) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.mutations.recovery_zeroes = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  CheckMinimize("repl-recovery-zeroes", ReplSpec{1}, [&] { return MakeReplInstance(options); },
                opts);
}

TEST(Minimize, ReplSkipRecovery) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.mutations.skip_recovery = true;
  options.with_disk1_failure_event = true;
  options.observe_repeats = 2;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  CheckMinimize("repl-skip-recovery", ReplSpec{1}, [&] { return MakeReplInstance(options); },
                opts);
}

TEST(Minimize, ReplMissingRetryUnderTransientFault) {
  // The minimized schedule must retain the env (fault) decision: the bug
  // needs the transient write fault to fire.
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.mutations.no_retry = true;
  options.fault_plan.transient_writes = 1;
  options.fault_plan.target = ReplicatedDisk::kDisk1;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  CheckMinimize("repl-no-retry-transient", ReplSpec{1}, [&] { return MakeReplInstance(options); },
                opts);
}

// ---------- Shadow copy / WAL / group commit ----------

TEST(Minimize, ShadowInPlaceUpdate) {
  ShadowHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)}};
  options.mutations.in_place_update = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  CheckMinimize("shadow-in-place", PairSpec{}, [&] { return MakeShadowInstance(options); }, opts);
}

TEST(Minimize, ShadowFlipBeforeData) {
  ShadowHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)}};
  options.mutations.flip_before_data = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  CheckMinimize("shadow-flip-before-data", PairSpec{},
                [&] { return MakeShadowInstance(options); }, opts);
}

TEST(Minimize, WalApplyBeforeCommit) {
  WalHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)}};
  options.mutations.apply_before_commit = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  CheckMinimize("wal-apply-before-commit", PairSpec{}, [&] { return MakeWalInstance(options); },
                opts);
}

TEST(Minimize, WalSkipRecovery) {
  WalHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2)}};
  options.mutations.skip_recovery = true;
  options.observer_ops = {PairSpec::MakeWrite(5, 6), PairSpec::MakeRead()};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  CheckMinimize("wal-skip-recovery", PairSpec{}, [&] { return MakeWalInstance(options); }, opts);
}

TEST(Minimize, WalRecoveryDiscardsLog) {
  WalHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2)}};
  options.mutations.recovery_discards_log = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  CheckMinimize("wal-discards-log", PairSpec{}, [&] { return MakeWalInstance(options); }, opts);
}

TEST(Minimize, GroupCommitCountFirst) {
  GcHarnessOptions options;
  options.client_ops = {
      {GcSpec::MakeWrite(7), GcSpec::MakeFlush(), GcSpec::MakeWrite(9), GcSpec::MakeFlush()}};
  options.mutations.commit_count_first = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  CheckMinimize("gc-count-first", GcSpec{}, [&] { return MakeGcInstance(options); }, opts);
}

// ---------- FTL / transaction log ----------

TEST(Minimize, FtlReuseSequenceNumbers) {
  FtlHarnessOptions options;
  options.num_lbas = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 1), ReplSpec::MakeWrite(0, 2)}};
  options.mutations.reuse_sequence_numbers = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  CheckMinimize("ftl-reuse-seqnums", ReplSpec{1}, [&] { return MakeFtlInstance(options); }, opts);
}

TEST(Minimize, FtlVolatileWrite) {
  FtlHarnessOptions options;
  options.num_lbas = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.mutations.volatile_write = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  CheckMinimize("ftl-volatile-write", ReplSpec{1}, [&] { return MakeFtlInstance(options); }, opts);
}

TEST(Minimize, TxnHeaderBeforeRecords) {
  TxnHarnessOptions options;
  options.num_addrs = 1;
  options.client_ops = {{TxnSpec::MakeWrite(0, 5), TxnSpec::MakeWrite(0, 7)}};
  options.mutations.header_before_records = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  CheckMinimize("txn-header-first", TxnSpec{1}, [&] { return MakeTxnInstance(options); }, opts);
}

TEST(Minimize, TxnTruncateBeforeApply) {
  TxnHarnessOptions options;
  options.num_addrs = 1;
  options.client_ops = {{TxnSpec::MakeWrite(0, 5), TxnSpec::MakeCheckpoint()}};
  options.mutations.truncate_before_apply = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  CheckMinimize("txn-truncate-first", TxnSpec{1}, [&] { return MakeTxnInstance(options); }, opts);
}

TEST(Minimize, TxnMissingBarrierUnderTornWrite) {
  TxnHarnessOptions options;
  options.num_addrs = 2;
  options.log_capacity = 2;
  options.client_ops = {{TxnSpec::MakeBatch({{0, 1}})}};
  options.mutations.no_write_barrier = true;
  options.fault_plan.torn_writes = 1;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  CheckMinimize("txn-no-barrier-torn", TxnSpec{2}, [&] { return MakeTxnInstance(options); },
                opts);
}

// ---------- KV store (including the deadlock witness) ----------

TEST(Minimize, KvUnorderedLocks) {
  KvHarnessOptions options;
  options.num_keys = 2;
  options.client_ops = {{KvSpec::MakePutPair(0, 1, 1, 2)}, {KvSpec::MakePutPair(1, 3, 0, 4)}};
  options.mutations.unordered_locks = true;
  ExplorerOptions opts;
  opts.max_crashes = 0;
  CheckMinimize("kv-unordered-locks", KvSpec{2}, [&] { return MakeKvInstance(options); }, opts);
}

TEST(Minimize, KvApplyBeforeCommit) {
  KvHarnessOptions options;
  options.num_keys = 2;
  options.client_ops = {{KvSpec::MakePutPair(0, 1, 1, 2)}};
  options.mutations.apply_before_commit = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  CheckMinimize("kv-apply-before-commit", KvSpec{2}, [&] { return MakeKvInstance(options); },
                opts);
}

TEST(Minimize, KvSkipRecovery) {
  KvHarnessOptions options;
  options.num_keys = 2;
  options.client_ops = {{KvSpec::MakePut(0, 5)}};
  options.mutations.skip_recovery = true;
  // Skipped recovery leaves the stale commit record and helping token in
  // place; a post-recovery transaction trips over them (same setup as
  // kvs_test's SkippedRecoveryCaughtByNextTransaction).
  options.observe_all = true;
  auto factory = [&] {
    refine::Instance<KvSpec> inst = MakeKvInstance(options);
    inst.observer_ops.insert(inst.observer_ops.begin(), KvSpec::MakePut(1, 9));
    return inst;
  };
  ExplorerOptions opts;
  opts.max_crashes = 1;
  CheckMinimize("kv-skip-recovery", KvSpec{2}, factory, opts);
}

// ---------- Mailboat ----------

TEST(Minimize, MailDeliverInPlace) {
  mailboat::MailHarnessOptions options;
  options.num_users = 1;
  options.chunk_size = 1;
  options.client_scripts = {
      {{mailboat::MailAction::Kind::kDeliver, 0, "abc"}},
      {{mailboat::MailAction::Kind::kPickupUnlock, 0, ""}},
  };
  options.mutations.deliver_in_place = true;
  ExplorerOptions opts;
  opts.max_crashes = 0;
  CheckMinimize("mail-deliver-in-place", mailboat::MailSpec{1},
                [&] { return mailboat::MakeMailInstance(options); }, opts);
}

TEST(Minimize, MailRecoveryDeletesMail) {
  mailboat::MailHarnessOptions options;
  options.num_users = 1;
  options.client_scripts = {{{mailboat::MailAction::Kind::kDeliver, 0, "precious"}}};
  options.mutations.recovery_deletes_mail = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  CheckMinimize("mail-recovery-deletes", mailboat::MailSpec{1},
                [&] { return mailboat::MakeMailInstance(options); }, opts);
}

// ---------- Trace parser error paths ----------

TEST(TraceFormat, RejectsMalformedInput) {
  TraceFile out;
  EXPECT_FALSE(refine::ParseTrace("", &out).ok());
  EXPECT_FALSE(refine::ParseTrace("pcc-trace v2\n", &out).ok());
  EXPECT_FALSE(refine::ParseTrace("pcc-trace v1\nrun_id x\n", &out).ok())
      << "missing decisions count must be rejected";
  EXPECT_FALSE(refine::ParseTrace("pcc-trace v1\nbogus x\ndecisions 0\n", &out).ok());
  EXPECT_FALSE(refine::ParseTrace("pcc-trace v1\ndecisions 2\nt 0\n", &out).ok())
      << "truncated decision list must be rejected";
  EXPECT_FALSE(refine::ParseTrace("pcc-trace v1\ndecisions 1\nq 3\n", &out).ok())
      << "unknown decision tag must be rejected";
  EXPECT_TRUE(refine::ParseTrace("pcc-trace v1\ndecisions 1\ncrash\n", &out).ok());
  ASSERT_EQ(out.schedule.size(), 1u);
  EXPECT_EQ(out.schedule[0].kind, refine::detail::AltKind::kCrash);
}

TEST(TraceFormat, LoadMissingFileIsNotFound) {
  TraceFile out;
  Status s = refine::LoadTrace(::testing::TempDir() + "pcc_no_such_trace.txt", &out);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace perennial::systems
