// Tests for the capability layer: leases, crash invariants, helping tokens.
#include <gtest/gtest.h>

#include "src/base/panic.h"
#include "src/cap/bounded_lease.h"
#include "src/cap/crash_invariant.h"
#include "src/cap/helping.h"
#include "src/cap/lease.h"
#include "src/goose/world.h"

namespace perennial::cap {
namespace {

TEST(Lease, IssueAndVerify) {
  goose::World world;
  LeaseRegistry reg(&world);
  Lease lease = reg.Issue("d1[0]");
  EXPECT_NO_THROW(reg.Verify(lease, "write"));
  EXPECT_TRUE(reg.IsLeased("d1[0]"));
}

TEST(Lease, DoubleIssueInSameGenerationIsUb) {
  goose::World world;
  LeaseRegistry reg(&world);
  (void)reg.Issue("d1[0]");
  EXPECT_THROW(reg.Issue("d1[0]"), UbViolation);
}

TEST(Lease, DistinctResourcesAreIndependent) {
  goose::World world;
  LeaseRegistry reg(&world);
  Lease a = reg.Issue("d1[0]");
  Lease b = reg.Issue("d1[1]");
  EXPECT_NO_THROW(reg.Verify(a, "w"));
  EXPECT_NO_THROW(reg.Verify(b, "w"));
}

TEST(Lease, CrashInvalidatesLease) {
  goose::World world;
  LeaseRegistry reg(&world);
  Lease lease = reg.Issue("d1[0]");
  world.Crash();
  EXPECT_THROW(reg.Verify(lease, "write"), UbViolation);
}

TEST(Lease, RecoveryCanReissueAfterCrash) {
  goose::World world;
  LeaseRegistry reg(&world);
  (void)reg.Issue("d1[0]");
  world.Crash();
  Lease fresh = reg.Issue("d1[0]");  // rule 3: synthesize from master copy
  EXPECT_NO_THROW(reg.Verify(fresh, "write"));
}

TEST(Lease, ReleaseAllowsReissue) {
  goose::World world;
  LeaseRegistry reg(&world);
  Lease lease = reg.Issue("x");
  reg.Release(lease);
  EXPECT_FALSE(reg.IsLeased("x"));
  EXPECT_NO_THROW(reg.Issue("x"));
}

TEST(Lease, OldSerialIsStaleAfterReissue) {
  goose::World world;
  LeaseRegistry reg(&world);
  Lease old = reg.Issue("x");
  reg.Release(old);
  (void)reg.Issue("x");
  EXPECT_THROW(reg.Verify(old, "write"), UbViolation);
}

TEST(CrashInvariantsTest, AllHoldWhenEmpty) {
  CrashInvariants inv;
  EXPECT_TRUE(inv.AllHold());
  EXPECT_EQ(inv.FirstViolation(), std::nullopt);
}

TEST(CrashInvariantsTest, ReportsFirstViolationByName) {
  CrashInvariants inv;
  bool ok_a = true;
  bool ok_b = true;
  inv.Register("a", [&] { return ok_a; });
  inv.Register("b", [&] { return ok_b; });
  EXPECT_TRUE(inv.AllHold());
  ok_b = false;
  EXPECT_EQ(inv.FirstViolation(), "b");
  ok_a = false;
  EXPECT_EQ(inv.FirstViolation(), "a");
}

TEST(Helping, DepositTakeRoundTrips) {
  HelpRegistry help;
  help.Deposit("addr:3", PendingOp{1, 42});
  ASSERT_TRUE(help.Has("addr:3"));
  auto op = help.Take("addr:3");
  ASSERT_TRUE(op.has_value());
  EXPECT_EQ(op->j, 1);
  EXPECT_EQ(op->op_id, 42u);
  EXPECT_FALSE(help.Has("addr:3"));
}

TEST(Helping, TakeOfAbsentKeyIsNullopt) {
  HelpRegistry help;
  EXPECT_EQ(help.Take("nothing"), std::nullopt);
}

TEST(Helping, DoubleDepositIsUb) {
  HelpRegistry help;
  help.Deposit("k", PendingOp{0, 1});
  EXPECT_THROW(help.Deposit("k", PendingOp{1, 2}), UbViolation);
}

TEST(Helping, WithdrawRemovesToken) {
  HelpRegistry help;
  help.Deposit("k", PendingOp{0, 1});
  help.Withdraw("k");
  EXPECT_FALSE(help.Has("k"));
}

TEST(Helping, WithdrawOfAbsentIsUb) {
  HelpRegistry help;
  EXPECT_THROW(help.Withdraw("k"), UbViolation);
}

TEST(Helping, SurvivesCrashByDesign) {
  // The registry models state stored in the crash invariant: nothing here
  // resets on crash; recovery consumes tokens explicitly.
  goose::World world;
  HelpRegistry help;
  help.Deposit("k", PendingOp{2, 7});
  world.Crash();
  EXPECT_TRUE(help.Has("k"));
}

TEST(BoundedLeaseTest, AcquireCheckDeleteRelease) {
  goose::World world;
  BoundedLeaseRegistry reg(&world);
  BoundedLease lease = reg.Acquire("user0", {"a", "b"});
  EXPECT_TRUE(reg.IsHeld("user0"));
  EXPECT_NO_THROW(reg.CheckDelete(lease, "a"));
  EXPECT_NO_THROW(reg.CheckDelete(lease, "b"));
  reg.Release(lease);
  EXPECT_FALSE(reg.IsHeld("user0"));
}

TEST(BoundedLeaseTest, DeletingUnlistedNameIsUb) {
  goose::World world;
  BoundedLeaseRegistry reg(&world);
  BoundedLease lease = reg.Acquire("user0", {"a"});
  EXPECT_THROW(reg.CheckDelete(lease, "zz"), UbViolation);
}

TEST(BoundedLeaseTest, DoubleDeleteOfSameNameIsUb) {
  goose::World world;
  BoundedLeaseRegistry reg(&world);
  BoundedLease lease = reg.Acquire("user0", {"a"});
  reg.CheckDelete(lease, "a");
  EXPECT_THROW(reg.CheckDelete(lease, "a"), UbViolation);
}

TEST(BoundedLeaseTest, SecondAcquireWhileHeldIsUb) {
  goose::World world;
  BoundedLeaseRegistry reg(&world);
  (void)reg.Acquire("user0", {});
  EXPECT_THROW(reg.Acquire("user0", {}), UbViolation);
}

TEST(BoundedLeaseTest, ExtendBoundAllowsNewlyLearnedName) {
  goose::World world;
  BoundedLeaseRegistry reg(&world);
  BoundedLease lease = reg.Acquire("user0", {"a"});
  reg.ExtendBound(lease, "fresh");
  EXPECT_NO_THROW(reg.CheckDelete(lease, "fresh"));
}

TEST(BoundedLeaseTest, CrashInvalidatesBoundedLease) {
  goose::World world;
  BoundedLeaseRegistry reg(&world);
  BoundedLease lease = reg.Acquire("user0", {"a"});
  world.Crash();
  EXPECT_FALSE(reg.IsHeld("user0"));
  EXPECT_THROW(reg.CheckDelete(lease, "a"), UbViolation);
  // Recovery can re-acquire in the new generation.
  EXPECT_NO_THROW(reg.Acquire("user0", {"a"}));
}

TEST(BoundedLeaseTest, DistinctResourcesIndependent) {
  goose::World world;
  BoundedLeaseRegistry reg(&world);
  BoundedLease a = reg.Acquire("user0", {"x"});
  BoundedLease b = reg.Acquire("user1", {"y"});
  EXPECT_NO_THROW(reg.CheckDelete(a, "x"));
  EXPECT_NO_THROW(reg.CheckDelete(b, "y"));
}

}  // namespace
}  // namespace perennial::cap
