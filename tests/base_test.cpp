// Tests for src/base: status, rand, strutil, loc, table.
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/hash.h"
#include "src/base/loc.h"
#include "src/base/rand.h"
#include "src/base/status.h"
#include "src/base/strutil.h"
#include "src/base/table.h"

namespace perennial {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such file");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "not-found: no such file");
}

TEST(Result, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
}

TEST(Result, HoldsError) {
  Result<int> r = Status::Failed("disk dead");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailed);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(Rand, DeterministicFromSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rand, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rand, BelowStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rand, BelowCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.Below(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rand, RangeInclusive) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    uint64_t v = rng.Range(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(Rand, ChanceExtremes) {
  Rng rng(3);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(Rand, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(Rand, ShufflePermutes) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

class RandSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandSweep, BelowIsRoughlyUniform) {
  uint64_t bound = GetParam();
  Rng rng(bound * 31 + 7);
  std::vector<int> counts(bound, 0);
  const int kSamples = 2000 * static_cast<int>(bound);
  for (int i = 0; i < kSamples; ++i) {
    counts[rng.Below(bound)]++;
  }
  for (uint64_t i = 0; i < bound; ++i) {
    // Each bucket within 25% of the expected mean — loose but catches bias.
    EXPECT_GT(counts[i], 1500) << "bucket " << i;
    EXPECT_LT(counts[i], 2500) << "bucket " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RandSweep, ::testing::Values(2, 3, 5, 10));

TEST(StrUtil, SplitBasic) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StrUtil, SplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit(",a,", ','), (std::vector<std::string>{"", "a", ""}));
}

TEST(StrUtil, SplitNoSeparator) {
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StrUtil, JoinBasic) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StrUtil, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \r\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(StrUtil, AsciiUpper) { EXPECT_EQ(AsciiUpper("Data"), "DATA"); }

TEST(StrUtil, ParseUint64Valid) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
}

TEST(StrUtil, ParseUint64Invalid) {
  uint64_t v = 0;
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
}

TEST(StrUtil, HexIdIsFixedWidth) {
  EXPECT_EQ(HexId(0), "0000000000000000");
  EXPECT_EQ(HexId(0xabc), "0000000000000abc");
  EXPECT_EQ(HexId(UINT64_MAX), "ffffffffffffffff");
}

TEST(Loc, CountsCodeCommentsBlanks) {
  const char* src =
      "int x = 1;\n"
      "// a comment\n"
      "\n"
      "/* block\n"
      "   comment */\n"
      "int y = 2;  // trailing\n";
  LocCount c = CountSource(src);
  EXPECT_EQ(c.code, 2u);
  EXPECT_EQ(c.comment, 3u);
  EXPECT_EQ(c.blank, 1u);
}

TEST(Loc, EmptySource) {
  LocCount c = CountSource("");
  EXPECT_EQ(c.total(), 1u);  // one blank line
}

TEST(Loc, CodeAfterBlockCommentOnSameLineCounts) {
  LocCount c = CountSource("/* c */ int x;\n");
  EXPECT_EQ(c.code, 1u);
}

TEST(Hash, DeterministicAndOrderSensitive) {
  Fnv128 a;
  a.MixU64(1);
  a.MixU64(2);
  Fnv128 b;
  b.MixU64(1);
  b.MixU64(2);
  EXPECT_EQ(a.digest(), b.digest());

  Fnv128 swapped;
  swapped.MixU64(2);
  swapped.MixU64(1);
  EXPECT_NE(a.digest(), swapped.digest());
  EXPECT_NE(a.digest(), Hash128{});  // non-trivial state
}

TEST(Hash, LengthPrefixPreventsStringAliasing) {
  Fnv128 a;
  a.MixString("ab");
  a.MixString("c");
  Fnv128 b;
  b.MixString("a");
  b.MixString("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Hash, Hash128Ordering) {
  Hash128 small{1, 5};
  Hash128 large{2, 0};
  EXPECT_LT(small, large);
  EXPECT_LT((Hash128{1, 4}), small);  // lo breaks hi ties
  EXPECT_FALSE(small < small);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"Component", "Lines of code"});
  t.AddRow({"Core framework", "7,220"});
  t.AddRule();
  t.AddRow({"Total", "8,930"});
  std::string out = t.Render();
  EXPECT_NE(out.find("Component"), std::string::npos);
  EXPECT_NE(out.find("7,220"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, WithCommas) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(8930), "8,930");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
}

TEST(Table, FixedDigits) {
  EXPECT_EQ(FixedDigits(3.14159, 2), "3.14");
  EXPECT_EQ(FixedDigits(2.0, 0), "2");
}

}  // namespace
}  // namespace perennial
