// Fault placements under the refinement checker (the tier2-faults suite):
//   * serial DFS and ParallelExplorer agree execution-for-execution when the
//     decision tree contains AltKind::kEnv fault alternatives;
//   * systems written with retry + write barriers pass with crashes AND
//     injected faults; the seeded-bug variants (missing retry in the
//     replicated disk, missing barrier in the txn log) are caught;
//   * retry/backoff is deterministic under the DFS scheduler;
//   * RandomDriver's env single-candidate guard keeps seed streams stable.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rand.h"
#include "src/refine/explorer.h"
#include "src/refine/parallel_explorer.h"
#include "src/systems/repl/repl_harness.h"
#include "src/systems/txnlog/txn_harness.h"

namespace perennial::systems {
namespace {

using refine::Explorer;
using refine::ExplorerOptions;
using refine::ParallelExplorer;
using refine::Report;

// Mirrors parallel_refine_test's equivalence helper, additionally pinning
// env_events_fired: fault placements are decisions, so the parallel
// partition must fire exactly the serial set of them.
template <typename Spec, typename Factory>
void ExpectFaultEquivalence(Spec spec, Factory factory, ExplorerOptions opts) {
  opts.max_violations = 1 << 20;
  Explorer<Spec> serial(spec, factory, opts);
  Report s = serial.Run();
  ASSERT_FALSE(s.truncated) << "workload too large for equivalence testing: " << s.Summary();
  for (int workers : {1, 2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExplorerOptions popts = opts;
    popts.num_workers = workers;
    ParallelExplorer<Spec> parallel(spec, factory, popts);
    Report p = parallel.Run();
    EXPECT_EQ(p.executions, s.executions);
    EXPECT_EQ(p.total_steps, s.total_steps);
    EXPECT_EQ(p.crashes_injected, s.crashes_injected);
    EXPECT_EQ(p.env_events_fired, s.env_events_fired);
    EXPECT_EQ(p.histories_checked, s.histories_checked);
    ASSERT_EQ(p.violations.size(), s.violations.size()) << p.Summary() << "\nvs\n" << s.Summary();
    for (size_t i = 0; i < s.violations.size(); ++i) {
      EXPECT_EQ(p.violations[i].kind, s.violations[i].kind) << "violation " << i;
      EXPECT_EQ(p.violations[i].detail, s.violations[i].detail) << "violation " << i;
      EXPECT_EQ(p.violations[i].trace, s.violations[i].trace) << "violation " << i;
    }
  }
}

// ---------- Fixed systems survive crashes + injected faults ----------

TEST(FaultRefine, ReplWithRetrySurvivesTransientWriteAndCrash) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.fault_plan.transient_writes = 1;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.max_violations = 1 << 20;
  Explorer<ReplSpec> explorer(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
  Report report = explorer.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.env_events_fired, 0u);  // the fault was actually placed
  EXPECT_GT(report.crashes_injected, 0u);
}

TEST(FaultRefine, ReplWithRetrySurvivesTransientReadDuringFailover) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeRead(0)}};
  options.fault_plan.transient_reads = 1;
  options.fault_plan.target = ReplicatedDisk::kDisk1;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.max_violations = 1 << 20;
  Explorer<ReplSpec> explorer(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
  Report report = explorer.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(FaultRefine, TxnLogWithBarrierSurvivesTornRecordAndCrash) {
  TxnHarnessOptions options;
  options.num_addrs = 2;
  options.log_capacity = 2;
  options.client_ops = {{TxnSpec::MakeBatch({{0, 1}})}};
  options.fault_plan.torn_writes = 1;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.max_violations = 1 << 20;
  Explorer<TxnSpec> explorer(TxnSpec{2}, [&] { return MakeTxnInstance(options); }, opts);
  Report report = explorer.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.env_events_fired, 0u);
  EXPECT_GT(report.crashes_injected, 0u);
}

TEST(FaultRefine, TxnLogSurvivesFailSlowDevice) {
  TxnHarnessOptions options;
  options.num_addrs = 2;
  options.log_capacity = 2;
  options.client_ops = {{TxnSpec::MakeBatch({{0, 1}})}, {TxnSpec::MakeRead(0)}};
  options.fault_plan.fail_slow = 1;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.max_violations = 1 << 20;
  Explorer<TxnSpec> explorer(TxnSpec{2}, [&] { return MakeTxnInstance(options); }, opts);
  Report report = explorer.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// ---------- Seeded bugs are caught ----------

TEST(FaultRefine, MissingRetryBreaksReplCrashInvariant) {
  // Without retry, a transient write to disk 1 is silently dropped: the
  // disks diverge with no helping token deposited, so the §5.4 crash
  // invariant fails the moment the fault fires.
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.mutations.no_retry = true;
  options.fault_plan.transient_writes = 1;
  options.fault_plan.target = ReplicatedDisk::kDisk1;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<ReplSpec> explorer(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
  Report report = explorer.Run();
  ASSERT_FALSE(report.ok()) << report.Summary();
  EXPECT_EQ(report.violations[0].kind, "crash-invariant");
}

TEST(FaultRefine, MissingRetryIsNonLinearizableWithoutTheInvariant) {
  // Same bug, invariant checking off: the spec-level symptom. The dropped
  // d1 write makes a crash-recovery (which copies d1 over d2) resurrect the
  // old value after the write already returned — no spec interleaving
  // explains the observer's read.
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.mutations.no_retry = true;
  options.fault_plan.transient_writes = 1;
  options.fault_plan.target = ReplicatedDisk::kDisk1;
  options.check_crash_invariants = false;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<ReplSpec> explorer(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
  Report report = explorer.Run();
  ASSERT_FALSE(report.ok()) << report.Summary();
  EXPECT_EQ(report.violations[0].kind, "non-linearizable");
}

TEST(FaultRefine, MissingBarrierCommitsTornRecordInTxnLog) {
  // no_write_barrier skips the flush between record writes and the commit
  // header. A torn record write + crash then leaves a committed record
  // whose value half never persisted: recovery applies (addr, 0) and the
  // observer reads 0 where the spec requires 1 (or no commit at all).
  TxnHarnessOptions options;
  options.num_addrs = 2;
  options.log_capacity = 2;
  options.client_ops = {{TxnSpec::MakeBatch({{0, 1}})}};
  options.mutations.no_write_barrier = true;
  options.fault_plan.torn_writes = 1;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<TxnSpec> explorer(TxnSpec{2}, [&] { return MakeTxnInstance(options); }, opts);
  Report report = explorer.Run();
  ASSERT_FALSE(report.ok()) << report.Summary();
  EXPECT_EQ(report.violations[0].kind, "non-linearizable");
}

TEST(FaultRefine, BarrierlessTxnLogPassesWithoutTornFaults) {
  // Control: the barrier only matters under torn writes. On an atomic disk
  // the mutation is harmless — it must NOT be reported. This pins down that
  // the violation above comes from the modeled fault, not from the
  // mutation's reordering alone.
  TxnHarnessOptions options;
  options.num_addrs = 2;
  options.log_capacity = 2;
  options.client_ops = {{TxnSpec::MakeBatch({{0, 1}})}};
  options.mutations.no_write_barrier = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.max_violations = 1 << 20;
  Explorer<TxnSpec> explorer(TxnSpec{2}, [&] { return MakeTxnInstance(options); }, opts);
  Report report = explorer.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// ---------- Serial vs parallel with env alternatives ----------

TEST(FaultParallelEquivalence, ReplCorrectWithTransientFault) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.fault_plan.transient_writes = 1;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectFaultEquivalence(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
}

TEST(FaultParallelEquivalence, ReplSeededBugNoRetry) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.mutations.no_retry = true;
  options.fault_plan.transient_writes = 1;
  options.fault_plan.target = ReplicatedDisk::kDisk1;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectFaultEquivalence(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
}

TEST(FaultParallelEquivalence, TxnLogSeededBugNoBarrier) {
  TxnHarnessOptions options;
  options.num_addrs = 2;
  options.log_capacity = 2;
  options.client_ops = {{TxnSpec::MakeBatch({{0, 1}})}};
  options.mutations.no_write_barrier = true;
  options.fault_plan.torn_writes = 1;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectFaultEquivalence(TxnSpec{2}, [&] { return MakeTxnInstance(options); }, opts);
}

// ---------- Retry/backoff determinism ----------

TEST(FaultRefine, DfsRunsAreReproducibleWithRetries) {
  // Two independent DFS sweeps over a workload whose executions contain
  // retry loops (transient faults armed and consumed) must agree exactly:
  // backoff is scheduler yields, never wall-clock, so the decision tree is
  // identical run to run.
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.fault_plan.transient_writes = 1;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.max_violations = 1 << 20;
  auto run = [&] {
    Explorer<ReplSpec> explorer(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
    return explorer.Run();
  };
  Report a = run();
  Report b = run();
  EXPECT_EQ(a.Summary(), b.Summary());
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.env_events_fired, b.env_events_fired);
}

// ---------- RandomDriver: env sampling ----------

TEST(FaultRandom, SameSeedSameReportWithFaults) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
  options.fault_plan.transient_writes = 1;
  ExplorerOptions opts;
  opts.mode = ExplorerOptions::Mode::kRandom;
  opts.random_runs = 300;
  opts.seed = 42;
  opts.env_probability = 0.3;
  opts.max_violations = 1 << 20;
  auto run = [&] {
    Explorer<ReplSpec> explorer(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
    return explorer.Run();
  };
  Report a = run();
  Report b = run();
  EXPECT_TRUE(a.ok()) << a.Summary();
  EXPECT_EQ(a.Summary(), b.Summary());
  EXPECT_GT(a.env_events_fired, 0u);  // p=0.3 over 300 runs: faults sampled
}

TEST(FaultRandom, SingleCandidateEnvDrawKeepsStreamComparable) {
  // Regression for the single-candidate uniform-draw guard: with exactly
  // one env alternative on offer, RandomDriver must consume ONE Bernoulli
  // draw and ZERO Below() draws at each decision point. We mirror the
  // driver's consumption against a reference Rng: after any prefix of
  // decisions with a lone env candidate, both streams are at the same
  // state, so the chosen thread sequence matches a hand-rolled replay.
  ExplorerOptions opts;
  const double env_p = 0.75;
  refine::detail::RandomDriver driver(9, /*crash_p=*/0.0, env_p);
  Rng mirror(9);
  std::vector<refine::detail::Alt> alts;
  alts.push_back({refine::detail::AltKind::kThread, 0, 0, "t0"});
  alts.push_back({refine::detail::AltKind::kThread, 1, 0, "t1"});
  alts.push_back({refine::detail::AltKind::kEnv, -1, 0, "fault:transient-write"});
  for (int i = 0; i < 200; ++i) {
    size_t pick = driver.Choose(alts);
    if (mirror.Chance(env_p)) {
      // Lone env candidate: no Below() draw may be consumed.
      EXPECT_EQ(pick, 2u) << "decision " << i;
    } else {
      EXPECT_EQ(pick, mirror.Below(2)) << "decision " << i;
    }
  }
  (void)opts;
}

}  // namespace
}  // namespace perennial::systems
