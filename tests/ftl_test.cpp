// Tests for the mini flash translation layer: unit behavior, recovery by
// scan, exhaustive refinement with crashes, and the two mutations.
#include <gtest/gtest.h>

#include "src/refine/explorer.h"
#include "src/systems/ftl/ftl_harness.h"
#include "tests/sim_util.h"

namespace perennial::systems {
namespace {

using perennial::testing::DrainLowestFirst;
using perennial::testing::SimRun;
using perennial::testing::SimRunVoid;
using proc::Task;
using refine::Explorer;
using refine::ExplorerOptions;
using refine::Report;

TEST(FtlPageCodec, RoundTrips) {
  uint64_t lba = 0;
  uint64_t seq = 0;
  uint64_t value = 0;
  DecodeFtlPage(EncodeFtlPage(3, 17, 0xABCDu), &lba, &seq, &value);
  EXPECT_EQ(lba, 3u);
  EXPECT_EQ(seq, 17u);
  EXPECT_EQ(value, 0xABCDu);
}

TEST(FtlUnit, WriteThenRead) {
  goose::World world;
  Ftl ftl(&world, 2, 8);
  auto body = [&]() -> Task<uint64_t> {
    co_await ftl.Write(1, 42);
    co_return co_await ftl.Read(1);
  };
  EXPECT_EQ(SimRun(body()), 42u);
  EXPECT_EQ(ftl.PagesUsedForTesting(), 1u);
}

TEST(FtlUnit, UnwrittenLbaReadsZero) {
  goose::World world;
  Ftl ftl(&world, 2, 8);
  auto body = [&]() -> Task<uint64_t> { co_return co_await ftl.Read(0); };
  EXPECT_EQ(SimRun(body()), 0u);
}

TEST(FtlUnit, OverwriteConsumesANewPage) {
  goose::World world;
  Ftl ftl(&world, 1, 8);
  auto body = [&]() -> Task<uint64_t> {
    co_await ftl.Write(0, 1);
    co_await ftl.Write(0, 2);
    co_return co_await ftl.Read(0);
  };
  EXPECT_EQ(SimRun(body()), 2u);
  EXPECT_EQ(ftl.PagesUsedForTesting(), 2u);  // log-structured: no overwrite
  EXPECT_EQ(ftl.PeekCommitted(0), 2u);
}

TEST(FtlUnit, RecoveryRebuildsTheMappingByScan) {
  goose::World world;
  Ftl ftl(&world, 2, 8);
  auto writes = [&]() -> Task<void> {
    co_await ftl.Write(0, 5);
    co_await ftl.Write(1, 6);
    co_await ftl.Write(0, 7);  // newer record for lba 0
  };
  SimRunVoid(writes());
  world.Crash();
  auto recover = [&]() -> Task<void> { co_await ftl.Recover(); };
  SimRunVoid(recover());
  auto reads = [&]() -> Task<uint64_t> {
    co_return co_await ftl.Read(0) * 10 + co_await ftl.Read(1);
  };
  EXPECT_EQ(SimRun(reads()), 76u);
  // The write log continues after the scan (no page reuse).
  auto more = [&]() -> Task<uint64_t> {
    co_await ftl.Write(1, 9);
    co_return co_await ftl.Read(1);
  };
  EXPECT_EQ(SimRun(more()), 9u);
  EXPECT_EQ(ftl.PagesUsedForTesting(), 4u);
}

TEST(FtlUnit, CrashInvariantHolds) {
  goose::World world;
  Ftl ftl(&world, 2, 4);
  EXPECT_TRUE(ftl.crash_invariants().AllHold());
  auto body = [&]() -> Task<void> { co_await ftl.Write(0, 1); };
  SimRunVoid(body());
  EXPECT_TRUE(ftl.crash_invariants().AllHold());
}

TEST(FtlCheck, ConcurrentWritersWithCrashesRefine) {
  FtlHarnessOptions options;
  options.num_lbas = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeFtlInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_FALSE(report.truncated);
}

TEST(FtlCheck, WriterReaderWithCrashDuringRecovery) {
  FtlHarnessOptions options;
  options.num_lbas = 2;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5), ReplSpec::MakeWrite(1, 6)},
                        {ReplSpec::MakeRead(0)}};
  ExplorerOptions opts;
  opts.max_crashes = 2;
  Explorer<ReplSpec> ex(ReplSpec{2}, [&] { return MakeFtlInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(FtlMutation, ConstantSequenceNumbersResurrectStaleData) {
  FtlHarnessOptions options;
  options.num_lbas = 1;
  // Two sequential writes to the same lba; after a crash the tie in
  // sequence numbers makes the scan keep the OLD record.
  options.client_ops = {{ReplSpec::MakeWrite(0, 1), ReplSpec::MakeWrite(0, 2)}};
  options.mutations.reuse_sequence_numbers = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeFtlInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "non-linearizable");
}

TEST(FtlMutation, VolatileWritesLoseAcknowledgedData) {
  FtlHarnessOptions options;
  options.num_lbas = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.mutations.volatile_write = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeFtlInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "non-linearizable");
}

}  // namespace
}  // namespace perennial::systems
