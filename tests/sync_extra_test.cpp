// Tests for the extra Goose sync primitives: RWMutex, WaitGroup, Cond.
#include <gtest/gtest.h>

#include "src/base/panic.h"
#include "src/goose/sync_extra.h"
#include "src/goose/world.h"
#include "tests/sim_util.h"

namespace perennial::goose {
namespace {

using perennial::testing::DrainLowestFirst;
using perennial::testing::DrainRoundRobin;
using perennial::testing::SimRunVoid;
using proc::Scheduler;
using proc::SchedulerScope;
using proc::Task;

TEST(RWMutexTest, ReadersShareTheLock) {
  World world;
  RWMutex mu(&world);
  Scheduler sched;
  SchedulerScope scope(&sched);
  int concurrent_readers = 0;
  int max_concurrent = 0;
  auto reader = [&]() -> Task<void> {
    co_await mu.RLock();
    ++concurrent_readers;
    max_concurrent = std::max(max_concurrent, concurrent_readers);
    co_await proc::Yield();
    --concurrent_readers;
    co_await mu.RUnlock();
  };
  sched.Spawn(reader());
  sched.Spawn(reader());
  DrainRoundRobin(sched);
  EXPECT_EQ(max_concurrent, 2);  // both readers inside at once
}

TEST(RWMutexTest, WriterExcludesReaders) {
  World world;
  RWMutex mu(&world);
  Scheduler sched;
  SchedulerScope scope(&sched);
  std::vector<int> log;
  auto writer = [&]() -> Task<void> {
    co_await mu.Lock();
    log.push_back(1);
    co_await proc::Yield();
    log.push_back(1);
    co_await mu.Unlock();
  };
  auto reader = [&]() -> Task<void> {
    co_await mu.RLock();
    log.push_back(2);
    co_await mu.RUnlock();
  };
  sched.Spawn(writer());
  sched.Spawn(reader());
  DrainRoundRobin(sched);
  ASSERT_EQ(log.size(), 3u);
  // The writer's two entries are adjacent: the reader never interleaved.
  if (log[0] == 1) {
    EXPECT_EQ(log[1], 1);
  } else {
    EXPECT_EQ(log[1], 1);
    EXPECT_EQ(log[2], 1);
  }
}

TEST(RWMutexTest, WriterWaitsForReaders) {
  World world;
  RWMutex mu(&world);
  Scheduler sched;
  SchedulerScope scope(&sched);
  bool writer_entered = false;
  auto reader = [&]() -> Task<void> {
    co_await mu.RLock();
    co_await proc::Yield();
    EXPECT_FALSE(writer_entered);  // writer cannot slip in while we read
    co_await mu.RUnlock();
  };
  auto writer = [&]() -> Task<void> {
    co_await mu.Lock();
    writer_entered = true;
    co_await mu.Unlock();
  };
  sched.Spawn(reader());
  sched.Spawn(writer());
  DrainRoundRobin(sched);
  EXPECT_TRUE(writer_entered);
}

TEST(RWMutexTest, MisuseIsUb) {
  World world;
  RWMutex mu(&world);
  auto bad_runlock = [&]() -> Task<void> { co_await mu.RUnlock(); };
  EXPECT_THROW(SimRunVoid(bad_runlock()), UbViolation);
  auto bad_unlock = [&]() -> Task<void> { co_await mu.Unlock(); };
  EXPECT_THROW(SimRunVoid(bad_unlock()), UbViolation);
}

TEST(RWMutexTest, StaleAfterCrashIsUb) {
  World world;
  RWMutex mu(&world);
  world.Crash();
  auto body = [&]() -> Task<void> { co_await mu.RLock(); };
  EXPECT_THROW(SimRunVoid(body()), UbViolation);
}

TEST(RWMutexTest, NativeModeWorks) {
  World world;
  RWMutex mu(&world);
  auto body = [&]() -> Task<void> {
    co_await mu.RLock();
    co_await mu.RUnlock();
    co_await mu.Lock();
    co_await mu.Unlock();
  };
  proc::RunSyncVoid(body());
}

TEST(WaitGroupTest, WaitBlocksUntilAllDone) {
  World world;
  WaitGroup wg(&world);
  Scheduler sched;
  SchedulerScope scope(&sched);
  wg.Add(2);
  bool waiter_done = false;
  auto worker = [&]() -> Task<void> {
    co_await proc::Yield();
    co_await wg.Done();
  };
  auto waiter = [&]() -> Task<void> {
    co_await wg.Wait();
    waiter_done = true;
  };
  Scheduler::Tid waiter_tid = sched.Spawn(waiter());
  sched.Spawn(worker());
  sched.Spawn(worker());
  // Run the waiter first: it must block.
  sched.Step(waiter_tid);
  EXPECT_FALSE(waiter_done);
  DrainLowestFirst(sched);
  EXPECT_TRUE(waiter_done);
  EXPECT_EQ(wg.CountForTesting(), 0);
}

TEST(WaitGroupTest, WaitWithZeroCountReturnsImmediately) {
  World world;
  WaitGroup wg(&world);
  auto body = [&]() -> Task<void> { co_await wg.Wait(); };
  SimRunVoid(body());
}

TEST(WaitGroupTest, DoneWithoutAddIsUb) {
  World world;
  WaitGroup wg(&world);
  auto body = [&]() -> Task<void> { co_await wg.Done(); };
  EXPECT_THROW(SimRunVoid(body()), UbViolation);
}

TEST(WaitGroupTest, NativeModeWorks) {
  World world;
  WaitGroup wg(&world);
  wg.Add(1);
  auto body = [&]() -> Task<void> {
    co_await wg.Done();
    co_await wg.Wait();
  };
  proc::RunSyncVoid(body());
}

TEST(CondTest, WaitWakesOnBroadcast) {
  World world;
  Mutex mu(&world);
  Cond cond(&world, &mu);
  Scheduler sched;
  SchedulerScope scope(&sched);
  bool ready = false;
  bool consumed = false;
  auto consumer = [&]() -> Task<void> {
    co_await mu.Lock();
    while (!ready) {
      co_await cond.Wait();
    }
    consumed = true;
    co_await mu.Unlock();
  };
  auto producer = [&]() -> Task<void> {
    co_await mu.Lock();
    ready = true;
    co_await mu.Unlock();
    co_await cond.Broadcast();
  };
  Scheduler::Tid consumer_tid = sched.Spawn(consumer());
  sched.Spawn(producer());
  // Let the consumer reach the wait first.
  while (!sched.IsDone(consumer_tid) && !sched.RunnableThreads().empty() &&
         sched.RunnableThreads()[0] == consumer_tid) {
    sched.Step(consumer_tid);
  }
  DrainLowestFirst(sched);
  EXPECT_TRUE(consumed);
}

TEST(CondTest, PredicateGuardedWaitNeverLosesTheWakeup) {
  // The canonical Go pattern: the predicate is set under the mutex, so no
  // interleaving can lose the wakeup (a bare signal-before-wait is a no-op
  // for condition variables, in Go and here alike).
  World world;
  Mutex mu(&world);
  Cond cond(&world, &mu);
  Scheduler sched;
  SchedulerScope scope(&sched);
  bool flag = false;
  bool done = false;
  auto waiter = [&]() -> Task<void> {
    co_await mu.Lock();
    while (!flag) {
      co_await cond.Wait();
    }
    done = true;
    co_await mu.Unlock();
  };
  auto signaler = [&]() -> Task<void> {
    co_await mu.Lock();
    flag = true;
    co_await mu.Unlock();
    co_await cond.Broadcast();
  };
  sched.Spawn(waiter());
  sched.Spawn(signaler());
  DrainRoundRobin(sched);
  EXPECT_TRUE(done);
}

TEST(CondTest, BroadcastWakesAllWaiters) {
  World world;
  Mutex mu(&world);
  Cond cond(&world, &mu);
  Scheduler sched;
  SchedulerScope scope(&sched);
  bool flag = false;
  int woken = 0;
  auto waiter = [&]() -> Task<void> {
    co_await mu.Lock();
    while (!flag) {
      co_await cond.Wait();
    }
    ++woken;
    co_await mu.Unlock();
  };
  auto signaler = [&]() -> Task<void> {
    co_await mu.Lock();
    flag = true;
    co_await mu.Unlock();
    co_await cond.Broadcast();
  };
  sched.Spawn(waiter());
  sched.Spawn(waiter());
  sched.Spawn(signaler());
  DrainLowestFirst(sched);
  EXPECT_EQ(woken, 2);
}

}  // namespace
}  // namespace perennial::goose
