// Tests for the Goose semantics: heap, slices, maps, mutex, race/UB rules,
// and crash generation discipline.
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/panic.h"
#include "src/goose/heap.h"
#include "src/goose/mutex.h"
#include "src/goose/world.h"
#include "tests/sim_util.h"

namespace perennial::goose {
namespace {

using perennial::testing::DrainLowestFirst;
using perennial::testing::DrainRoundRobin;
using perennial::testing::SimRun;
using perennial::testing::SimRunVoid;
using proc::Scheduler;
using proc::SchedulerScope;
using proc::Task;

TEST(Heap, LoadReturnsStoredValue) {
  World world;
  Heap heap(&world);
  Ptr<int> p = heap.New(41);
  auto body = [&]() -> Task<int> {
    co_await heap.Store(p, 42);
    co_return co_await heap.Load(p);
  };
  EXPECT_EQ(SimRun(body()), 42);
}

TEST(Heap, LoadWorksInNativeMode) {
  World world;
  Heap heap(&world);
  Ptr<std::string> p = heap.New(std::string("hello"));
  auto body = [&]() -> Task<std::string> { co_return co_await heap.Load(p); };
  EXPECT_EQ(proc::RunSync(body()), "hello");
}

TEST(Heap, NilPointerLoadIsUb) {
  World world;
  Heap heap(&world);
  Ptr<int> nil;
  auto body = [&]() -> Task<int> { co_return co_await heap.Load(nil); };
  EXPECT_THROW(SimRun(body()), UbViolation);
}

TEST(Heap, StalePointerAfterCrashIsUb) {
  World world;
  Heap heap(&world);
  Ptr<int> p = heap.New(7);
  world.Crash();
  auto body = [&]() -> Task<int> { co_return co_await heap.Load(p); };
  EXPECT_THROW(SimRun(body()), UbViolation);
}

TEST(Heap, CrashClearsAllCells) {
  World world;
  Heap heap(&world);
  heap.New(1);
  heap.New(2);
  EXPECT_EQ(heap.cell_count(), 2u);
  world.Crash();
  EXPECT_EQ(heap.cell_count(), 0u);
  EXPECT_EQ(world.generation(), 1u);
}

// Two concurrent stores to the same pointer must be detectable as a race
// under some schedule: store is two atomic steps.
TEST(Heap, OverlappingStoresAreARace) {
  World world;
  Heap heap(&world);
  Ptr<int> p = heap.New(0);
  Scheduler sched;
  SchedulerScope scope(&sched);
  auto writer = [&]() -> Task<void> { co_await heap.Store(p, 1); };
  sched.Spawn(writer());
  sched.Spawn(writer());
  // Schedule: t0 write-start, t1 write-start -> race detected on t1.
  sched.Step(0);  // t0 reaches first yield inside Store
  sched.Step(0);  // t0 marks write-active, suspends at second yield
  sched.Step(1);  // t1 reaches first yield
  EXPECT_THROW(sched.Step(1), UbViolation);  // t1 sees in-flight write
}

TEST(Heap, SequentialStoresDoNotRace) {
  World world;
  Heap heap(&world);
  Ptr<int> p = heap.New(0);
  auto body = [&]() -> Task<int> {
    co_await heap.Store(p, 1);
    co_await heap.Store(p, 2);
    co_return co_await heap.Load(p);
  };
  EXPECT_EQ(SimRun(body()), 2);
}

TEST(Heap, LoadDuringStoreIsARace) {
  World world;
  Heap heap(&world);
  Ptr<int> p = heap.New(0);
  Scheduler sched;
  SchedulerScope scope(&sched);
  auto writer = [&]() -> Task<void> { co_await heap.Store(p, 1); };
  auto reader = [&]() -> Task<void> { (void)co_await heap.Load(p); };
  sched.Spawn(writer());
  sched.Spawn(reader());
  sched.Step(0);  // writer at first yield
  sched.Step(0);  // writer marks write-active
  sched.Step(1);  // reader at yield
  EXPECT_THROW(sched.Step(1), UbViolation);
}

TEST(Heap, ConcurrentLoadsAreFine) {
  World world;
  Heap heap(&world);
  Ptr<int> p = heap.New(9);
  Scheduler sched;
  SchedulerScope scope(&sched);
  int sum = 0;
  auto reader = [&]() -> Task<void> { sum += co_await heap.Load(p); };
  sched.Spawn(reader());
  sched.Spawn(reader());
  DrainRoundRobin(sched);
  EXPECT_EQ(sum, 18);
}

TEST(Slice, NewSliceGetSet) {
  World world;
  Heap heap(&world);
  Slice<int> s = heap.NewSlice<int>(3, 0);
  auto body = [&]() -> Task<int> {
    co_await heap.SliceSet(s, 1, 5);
    co_return co_await heap.SliceGet(s, 1);
  };
  EXPECT_EQ(SimRun(body()), 5);
  EXPECT_EQ(s.size(), 3u);
}

TEST(Slice, OutOfRangeIndexIsUb) {
  World world;
  Heap heap(&world);
  Slice<int> s = heap.NewSlice<int>(2, 0);
  auto body = [&]() -> Task<int> { co_return co_await heap.SliceGet(s, 2); };
  EXPECT_THROW(SimRun(body()), UbViolation);
}

TEST(Slice, AppendProducesLongerSlice) {
  World world;
  Heap heap(&world);
  Slice<int> s = heap.SliceFromVector<int>({1, 2});
  auto body = [&]() -> Task<Slice<int>> { co_return co_await heap.SliceAppend(s, 3); };
  Slice<int> s2 = SimRun(body());
  EXPECT_EQ(s2.size(), 3u);
  EXPECT_EQ(heap.PeekSlice(s2), (std::vector<int>{1, 2, 3}));
  // Original slice is unchanged (copy-on-append model).
  EXPECT_EQ(heap.PeekSlice(s), (std::vector<int>{1, 2}));
}

TEST(Slice, SubSliceViewsSameArray) {
  World world;
  Heap heap(&world);
  Slice<int> s = heap.SliceFromVector<int>({1, 2, 3, 4});
  Slice<int> mid = heap.SubSlice(s, 1, 3);
  EXPECT_EQ(mid.size(), 2u);
  auto body = [&]() -> Task<void> { co_await heap.SliceSet(mid, 0, 99); };
  SimRunVoid(body());
  EXPECT_EQ(heap.PeekSlice(s), (std::vector<int>{1, 99, 3, 4}));
}

TEST(Slice, WriteDuringReadOfSameArrayIsARace) {
  World world;
  Heap heap(&world);
  Slice<int> s = heap.NewSlice<int>(4, 0);
  Scheduler sched;
  SchedulerScope scope(&sched);
  auto writer = [&]() -> Task<void> { co_await heap.SliceSet(s, 0, 1); };
  auto reader = [&]() -> Task<void> { (void)co_await heap.SliceGet(s, 3); };
  sched.Spawn(writer());
  sched.Spawn(reader());
  sched.Step(0);
  sched.Step(0);  // writer holds write_active on the array
  sched.Step(1);
  EXPECT_THROW(sched.Step(1), UbViolation);  // even though indexes differ: same object
}

TEST(Slice, StaleSliceAfterCrashIsUb) {
  World world;
  Heap heap(&world);
  Slice<int> s = heap.NewSlice<int>(2, 0);
  world.Crash();
  auto body = [&]() -> Task<int> { co_return co_await heap.SliceGet(s, 0); };
  EXPECT_THROW(SimRun(body()), UbViolation);
}

TEST(GoMapTest, InsertLookupDelete) {
  World world;
  Heap heap(&world);
  GoMap<uint64_t, std::string> m = heap.NewMap<uint64_t, std::string>();
  auto body = [&]() -> Task<std::optional<std::string>> {
    co_await heap.MapInsert(m, uint64_t{1}, std::string("one"));
    co_await heap.MapInsert(m, uint64_t{2}, std::string("two"));
    co_await heap.MapDelete(m, uint64_t{1});
    co_return co_await heap.MapLookup(m, uint64_t{1});
  };
  EXPECT_EQ(SimRun(body()), std::nullopt);
  auto body2 = [&]() -> Task<std::optional<std::string>> {
    co_return co_await heap.MapLookup(m, uint64_t{2});
  };
  EXPECT_EQ(SimRun(body2()), "two");
}

TEST(GoMapTest, LenCounts) {
  World world;
  Heap heap(&world);
  GoMap<int, int> m = heap.NewMap<int, int>();
  auto body = [&]() -> Task<uint64_t> {
    co_await heap.MapInsert(m, 1, 10);
    co_await heap.MapInsert(m, 2, 20);
    co_await heap.MapInsert(m, 1, 11);  // overwrite
    co_return co_await heap.MapLen(m);
  };
  EXPECT_EQ(SimRun(body()), 2u);
}

TEST(GoMapTest, ForEachVisitsAllEntries) {
  World world;
  Heap heap(&world);
  GoMap<int, int> m = heap.NewMap<int, int>();
  auto body = [&]() -> Task<int> {
    co_await heap.MapInsert(m, 1, 10);
    co_await heap.MapInsert(m, 2, 20);
    int sum = 0;
    co_await heap.MapForEach<int, int>(m, [&](const int& k, const int& v) -> Task<void> {
      sum += k + v;
      co_return;
    });
    co_return sum;
  };
  EXPECT_EQ(SimRun(body()), 33);
}

TEST(GoMapTest, MutationDuringIterationIsUb) {
  World world;
  Heap heap(&world);
  GoMap<int, int> m = heap.NewMap<int, int>();
  Scheduler sched;
  SchedulerScope scope(&sched);
  auto setup = [&]() -> Task<void> {
    co_await heap.MapInsert(m, 1, 10);
    co_await heap.MapInsert(m, 2, 20);
  };
  {
    SchedulerScope inner_unused(nullptr);  // run setup natively for brevity
    proc::RunSyncVoid(setup());
  }
  auto iterator = [&]() -> Task<void> {
    co_await heap.MapForEach<int, int>(m, [&](const int&, const int&) -> Task<void> {
      co_await proc::Yield();  // give the mutator a window
    });
  };
  auto mutator = [&]() -> Task<void> { co_await heap.MapInsert(m, 3, 30); };
  sched.Spawn(iterator());
  sched.Spawn(mutator());
  // Step iterator into the iteration (marks active), then run the mutator.
  sched.Step(0);
  sched.Step(0);
  bool threw = false;
  try {
    DrainRoundRobin(sched);
  } catch (const UbViolation&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST(MutexTest, LockUnlockSequential) {
  World world;
  Mutex mu(&world);
  auto body = [&]() -> Task<int> {
    co_await mu.Lock();
    co_await mu.Unlock();
    co_return 1;
  };
  EXPECT_EQ(SimRun(body()), 1);
}

TEST(MutexTest, ProvidesMutualExclusion) {
  World world;
  Mutex mu(&world);
  Scheduler sched;
  SchedulerScope scope(&sched);
  std::vector<int> log;
  auto critical = [&](int id) -> Task<void> {
    co_await mu.Lock();
    log.push_back(id);  // enter
    co_await proc::Yield();
    co_await proc::Yield();
    log.push_back(id);  // exit
    co_await mu.Unlock();
  };
  sched.Spawn(critical(1));
  sched.Spawn(critical(2));
  DrainRoundRobin(sched);
  ASSERT_EQ(log.size(), 4u);
  // Critical sections never interleave: entries come in adjacent pairs.
  EXPECT_EQ(log[0], log[1]);
  EXPECT_EQ(log[2], log[3]);
  EXPECT_NE(log[0], log[2]);
}

TEST(MutexTest, BlockedWaiterWakesOnUnlock) {
  World world;
  Mutex mu(&world);
  Scheduler sched;
  SchedulerScope scope(&sched);
  bool second_ran = false;
  auto holder = [&]() -> Task<void> {
    co_await mu.Lock();
    co_await proc::Yield();
    co_await mu.Unlock();
  };
  auto waiter = [&]() -> Task<void> {
    co_await mu.Lock();
    second_ran = true;
    co_await mu.Unlock();
  };
  sched.Spawn(holder());
  sched.Spawn(waiter());
  DrainLowestFirst(sched);
  EXPECT_TRUE(second_ran);
}

TEST(MutexTest, UnlockOfUnlockedIsUb) {
  World world;
  Mutex mu(&world);
  auto body = [&]() -> Task<void> { co_await mu.Unlock(); };
  EXPECT_THROW(SimRunVoid(body()), UbViolation);
}

TEST(MutexTest, StaleMutexAfterCrashIsUb) {
  World world;
  Mutex mu(&world);
  world.Crash();
  auto body = [&]() -> Task<void> { co_await mu.Lock(); };
  EXPECT_THROW(SimRunVoid(body()), UbViolation);
}

TEST(MutexTest, NativeModeLocks) {
  World world;
  Mutex mu(&world);
  auto body = [&]() -> Task<int> {
    co_await mu.Lock();
    co_await mu.Unlock();
    co_return 3;
  };
  EXPECT_EQ(proc::RunSync(body()), 3);
}

TEST(WorldTest, CrashNotifiesAllComponents) {
  World world;
  struct Probe : CrashAware {
    int crashes = 0;
    void OnCrash() override { ++crashes; }
  };
  Probe a;
  Probe b;
  world.Register(&a);
  world.Register(&b);
  world.Crash();
  world.Crash();
  EXPECT_EQ(a.crashes, 2);
  EXPECT_EQ(b.crashes, 2);
  EXPECT_EQ(world.generation(), 2u);
}

}  // namespace
}  // namespace perennial::goose
