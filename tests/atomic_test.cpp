// Tests for the sync/atomic extension: atomic ops, lock-free algorithms
// under the checker (CAS counters are linearizable; naive read-modify-write
// is not).
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "src/goose/atomic.h"
#include "src/goose/world.h"
#include "src/refine/explorer.h"
#include "src/tsys/transition.h"
#include "tests/sim_util.h"

namespace perennial::goose {
namespace {

using perennial::testing::DrainRoundRobin;
using perennial::testing::SimRun;
using proc::Task;

TEST(AtomicTest, LoadStoreRoundTrips) {
  World world;
  AtomicU64 a(&world, 5);
  auto body = [&]() -> Task<uint64_t> {
    co_await a.Store(9);
    co_return co_await a.Load();
  };
  EXPECT_EQ(SimRun(body()), 9u);
}

TEST(AtomicTest, AddReturnsNewValue) {
  World world;
  AtomicU64 a(&world, 10);
  auto body = [&]() -> Task<uint64_t> { co_return co_await a.Add(5); };
  EXPECT_EQ(SimRun(body()), 15u);
}

TEST(AtomicTest, CompareAndSwapSemantics) {
  World world;
  AtomicU64 a(&world, 1);
  auto body = [&]() -> Task<int> {
    bool first = co_await a.CompareAndSwap(1, 2);   // succeeds
    bool second = co_await a.CompareAndSwap(1, 3);  // fails (value is 2)
    co_return (first ? 1 : 0) + (second ? 10 : 0);
  };
  EXPECT_EQ(SimRun(body()), 1);
  EXPECT_EQ(a.PeekForTesting(), 2u);
}

TEST(AtomicTest, ConcurrentAddsAreNotARace) {
  World world;
  AtomicU64 a(&world, 0);
  proc::Scheduler sched;
  proc::SchedulerScope scope(&sched);
  auto inc = [&]() -> Task<void> {
    for (int i = 0; i < 5; ++i) {
      (void)co_await a.Add(1);
    }
  };
  sched.Spawn(inc());
  sched.Spawn(inc());
  DrainRoundRobin(sched);  // no UbViolation, unlike racing heap stores
  EXPECT_EQ(a.PeekForTesting(), 10u);
}

TEST(AtomicTest, StaleAfterCrashIsUb) {
  World world;
  AtomicU64 a(&world, 0);
  world.Crash();
  auto body = [&]() -> Task<uint64_t> { co_return co_await a.Load(); };
  EXPECT_THROW(SimRun(body()), UbViolation);
}

TEST(AtomicTest, NativeModeCrossThread) {
  World world;
  AtomicU64 a(&world, 0);
  auto worker = [&] {
    auto body = [&]() -> Task<void> {
      for (int i = 0; i < 1000; ++i) {
        (void)co_await a.Add(1);
      }
    };
    proc::RunSyncVoid(body());
  };
  std::thread t1(worker);
  std::thread t2(worker);
  t1.join();
  t2.join();
  EXPECT_EQ(a.PeekForTesting(), 2000u);
}

// ---------- Lock-free counter, checked for linearizability ----------

struct CounterSpec {
  struct State {
    uint64_t v = 0;
    friend bool operator==(const State&, const State&) = default;
  };
  struct Op {
    bool is_inc = false;
  };
  using Ret = uint64_t;  // inc: the new value; read: the current value

  State Initial() const { return {}; }
  tsys::Outcome<State, Ret> Step(const State& s, const Op& op) const {
    if (op.is_inc) {
      return tsys::Outcome<State, Ret>::One(State{s.v + 1}, s.v + 1);
    }
    return tsys::Outcome<State, Ret>::One(s, s.v);
  }
  std::vector<State> CrashSteps(const State& s) const { return {s}; }
  static std::string StateKey(const State& s) { return std::to_string(s.v); }
  static std::string RetKey(const Ret& r) { return std::to_string(r); }
  static std::string OpName(const Op& op) { return op.is_inc ? "inc()" : "read()"; }
};

// Correct lock-free increment: CAS retry loop.
struct CasCounter {
  World world;
  AtomicU64 cell{&world, 0};

  Task<uint64_t> Run(CounterSpec::Op op) {
    if (!op.is_inc) {
      co_return co_await cell.Load();
    }
    while (true) {
      uint64_t current = co_await cell.Load();
      if (co_await cell.CompareAndSwap(current, current + 1)) {
        co_return current + 1;
      }
    }
  }
};

// Broken "lock-free" increment: load, then store — lost updates.
struct RmwCounter : CasCounter {
  Task<uint64_t> Run(CounterSpec::Op op) {
    if (!op.is_inc) {
      co_return co_await cell.Load();
    }
    uint64_t current = co_await cell.Load();
    co_await cell.Store(current + 1);
    co_return current + 1;
  }
};

template <typename Sys>
refine::Instance<CounterSpec> MakeCounterInstance() {
  auto sys = std::make_shared<Sys>();
  refine::Instance<CounterSpec> inst;
  inst.keep_alive = sys;
  inst.world = &sys->world;
  inst.client_ops = {{CounterSpec::Op{true}}, {CounterSpec::Op{true}}};
  inst.run_op = [sys](int, uint64_t, CounterSpec::Op op) { return sys->Run(op); };
  inst.observer_ops = {CounterSpec::Op{false}};
  return inst;
}

TEST(LockFree, CasCounterIsLinearizable) {
  refine::ExplorerOptions opts;
  opts.max_crashes = 0;
  refine::Explorer<CounterSpec> ex(CounterSpec{}, MakeCounterInstance<CasCounter>, opts);
  refine::Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_FALSE(report.truncated);
}

TEST(LockFree, NaiveReadModifyWriteLosesUpdates) {
  refine::ExplorerOptions opts;
  opts.max_crashes = 0;
  refine::Explorer<CounterSpec> ex(CounterSpec{}, MakeCounterInstance<RmwCounter>, opts);
  refine::Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "non-linearizable");
}

}  // namespace
}  // namespace perennial::goose
