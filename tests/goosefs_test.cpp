// Tests for the modeled Goose file system (§6.2) and the POSIX backend.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/panic.h"
#include "src/goose/world.h"
#include "src/goosefs/goosefs.h"
#include "src/goosefs/posix_fs.h"
#include "tests/sim_util.h"

namespace perennial::goosefs {
namespace {

using perennial::testing::SimRun;
using proc::Task;

TEST(BytesCodec, RoundTrips) {
  EXPECT_EQ(StringOfBytes(BytesOfString("hello")), "hello");
  EXPECT_TRUE(BytesOfString("").empty());
}

class GooseFsTest : public ::testing::Test {
 protected:
  GooseFsTest() : fs_(&world_, {"spool", "user0", "user1"}) {}

  goose::World world_;
  GooseFs fs_;
};

TEST_F(GooseFsTest, CreateAppendReadRoundTrips) {
  auto body = [&]() -> Task<std::string> {
    Fd wfd = (co_await fs_.Create("user0", "msg1")).value();
    (void)co_await fs_.Append(wfd, BytesOfString("hello "));
    (void)co_await fs_.Append(wfd, BytesOfString("world"));
    (void)co_await fs_.Close(wfd);
    Fd rfd = (co_await fs_.Open("user0", "msg1")).value();
    Bytes data = (co_await fs_.ReadAt(rfd, 0, 100)).value();
    (void)co_await fs_.Close(rfd);
    co_return StringOfBytes(data);
  };
  EXPECT_EQ(SimRun(body()), "hello world");
}

TEST_F(GooseFsTest, CreateExclusiveFailsOnExisting) {
  auto body = [&]() -> Task<StatusCode> {
    Fd fd = (co_await fs_.Create("user0", "x")).value();
    (void)co_await fs_.Close(fd);
    Result<Fd> second = co_await fs_.Create("user0", "x");
    co_return second.status().code();
  };
  EXPECT_EQ(SimRun(body()), StatusCode::kAlreadyExists);
}

TEST_F(GooseFsTest, OpenMissingIsNotFound) {
  auto body = [&]() -> Task<StatusCode> {
    Result<Fd> r = co_await fs_.Open("user0", "nope");
    co_return r.status().code();
  };
  EXPECT_EQ(SimRun(body()), StatusCode::kNotFound);
}

TEST_F(GooseFsTest, UnknownDirectoryIsNotFound) {
  auto body = [&]() -> Task<StatusCode> {
    Result<Fd> r = co_await fs_.Create("nodir", "x");
    co_return r.status().code();
  };
  EXPECT_EQ(SimRun(body()), StatusCode::kNotFound);
}

TEST_F(GooseFsTest, ListReturnsSortedNames) {
  auto body = [&]() -> Task<std::vector<std::string>> {
    (void)co_await fs_.Create("user0", "b");
    (void)co_await fs_.Create("user0", "a");
    (void)co_await fs_.Create("user0", "c");
    co_return (co_await fs_.List("user0")).value();
  };
  EXPECT_EQ(SimRun(body()), (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(GooseFsTest, ReadAtHonorsOffsetAndShortReads) {
  auto body = [&]() -> Task<std::string> {
    Fd wfd = (co_await fs_.Create("user0", "f")).value();
    (void)co_await fs_.Append(wfd, BytesOfString("abcdefgh"));
    (void)co_await fs_.Close(wfd);
    Fd rfd = (co_await fs_.Open("user0", "f")).value();
    Bytes mid = (co_await fs_.ReadAt(rfd, 2, 3)).value();
    Bytes tail = (co_await fs_.ReadAt(rfd, 6, 100)).value();
    Bytes past = (co_await fs_.ReadAt(rfd, 100, 10)).value();
    (void)co_await fs_.Close(rfd);
    co_return StringOfBytes(mid) + "|" + StringOfBytes(tail) + "|" + StringOfBytes(past);
  };
  EXPECT_EQ(SimRun(body()), "cde|gh|");
}

TEST_F(GooseFsTest, LinkMakesNameVisibleAtomically) {
  auto body = [&]() -> Task<bool> {
    Fd fd = (co_await fs_.Create("spool", "tmp1")).value();
    (void)co_await fs_.Append(fd, BytesOfString("mail"));
    (void)co_await fs_.Close(fd);
    Result<bool> linked = co_await fs_.Link("spool", "tmp1", "user1", "msg1");
    co_return linked.ok() && linked.value();
  };
  EXPECT_TRUE(SimRun(body()));
  EXPECT_EQ(StringOfBytes(*fs_.PeekFile("user1", "msg1")), "mail");
  // The spool name still exists too (hard link).
  EXPECT_EQ(StringOfBytes(*fs_.PeekFile("spool", "tmp1")), "mail");
}

TEST_F(GooseFsTest, LinkFailsIfDestinationExists) {
  auto body = [&]() -> Task<bool> {
    Fd a = (co_await fs_.Create("spool", "t")).value();
    (void)co_await fs_.Close(a);
    Fd b = (co_await fs_.Create("user1", "m")).value();
    (void)co_await fs_.Close(b);
    Result<bool> linked = co_await fs_.Link("spool", "t", "user1", "m");
    co_return linked.ok() && linked.value();
  };
  EXPECT_FALSE(SimRun(body()));
}

TEST_F(GooseFsTest, LinkFromMissingSourceFails) {
  auto body = [&]() -> Task<bool> {
    Result<bool> linked = co_await fs_.Link("spool", "zz", "user1", "m");
    co_return linked.ok() && linked.value();
  };
  EXPECT_FALSE(SimRun(body()));
}

TEST_F(GooseFsTest, DeleteRemovesName) {
  auto body = [&]() -> Task<Status> {
    Fd fd = (co_await fs_.Create("user0", "m")).value();
    (void)co_await fs_.Close(fd);
    co_return co_await fs_.Delete("user0", "m");
  };
  EXPECT_TRUE(SimRun(body()).ok());
  EXPECT_TRUE(fs_.PeekNames("user0").empty());
  EXPECT_EQ(fs_.InodeCountForTesting(), 0u);  // inode reclaimed
}

TEST_F(GooseFsTest, DeleteKeepsInodeWhileLinked) {
  auto body = [&]() -> Task<Status> {
    Fd fd = (co_await fs_.Create("spool", "t")).value();
    (void)co_await fs_.Append(fd, BytesOfString("data"));
    (void)co_await fs_.Close(fd);
    (void)co_await fs_.Link("spool", "t", "user0", "m");
    co_return co_await fs_.Delete("spool", "t");  // Mailboat's deliver sequence
  };
  EXPECT_TRUE(SimRun(body()).ok());
  EXPECT_EQ(StringOfBytes(*fs_.PeekFile("user0", "m")), "data");
  EXPECT_EQ(fs_.PeekFile("spool", "t"), std::nullopt);
}

TEST_F(GooseFsTest, OpenFdKeepsUnlinkedInodeReadable) {
  auto body = [&]() -> Task<std::string> {
    Fd wfd = (co_await fs_.Create("user0", "m")).value();
    (void)co_await fs_.Append(wfd, BytesOfString("keep"));
    (void)co_await fs_.Close(wfd);
    Fd rfd = (co_await fs_.Open("user0", "m")).value();
    (void)co_await fs_.Delete("user0", "m");
    Bytes data = (co_await fs_.ReadAt(rfd, 0, 10)).value();
    (void)co_await fs_.Close(rfd);
    co_return StringOfBytes(data);
  };
  EXPECT_EQ(SimRun(body()), "keep");
  EXPECT_EQ(fs_.InodeCountForTesting(), 0u);  // reclaimed after last close
}

TEST_F(GooseFsTest, AppendOnReadFdIsUb) {
  auto body = [&]() -> Task<void> {
    Fd wfd = (co_await fs_.Create("user0", "m")).value();
    (void)co_await fs_.Close(wfd);
    Fd rfd = (co_await fs_.Open("user0", "m")).value();
    (void)co_await fs_.Append(rfd, BytesOfString("x"));
  };
  EXPECT_THROW(perennial::testing::SimRunVoid(body()), UbViolation);
}

TEST_F(GooseFsTest, DoubleCloseIsUb) {
  auto body = [&]() -> Task<void> {
    Fd fd = (co_await fs_.Create("user0", "m")).value();
    (void)co_await fs_.Close(fd);
    (void)co_await fs_.Close(fd);
  };
  EXPECT_THROW(perennial::testing::SimRunVoid(body()), UbViolation);
}

TEST_F(GooseFsTest, CrashDropsFdsKeepsData) {
  auto body = [&]() -> Task<Fd> {
    Fd fd = (co_await fs_.Create("user0", "m")).value();
    (void)co_await fs_.Append(fd, BytesOfString("durable"));
    co_return fd;
  };
  Fd fd = SimRun(body());
  EXPECT_EQ(fs_.OpenFdCountForTesting(), 1u);
  world_.Crash();
  EXPECT_EQ(fs_.OpenFdCountForTesting(), 0u);
  EXPECT_EQ(StringOfBytes(*fs_.PeekFile("user0", "m")), "durable");
  // Using the stale fd after the crash is UB.
  auto after = [&]() -> Task<void> { (void)co_await fs_.Append(fd, BytesOfString("x")); };
  EXPECT_THROW(perennial::testing::SimRunVoid(after()), UbViolation);
}

TEST_F(GooseFsTest, CrashReclaimsOrphanedSpoolInode) {
  // A deliver that crashed between Create and Link: the name exists in
  // spool, so data survives; but if the file was created and the name then
  // deleted while an fd was open, crash reclaims the inode.
  auto body = [&]() -> Task<void> {
    Fd fd = (co_await fs_.Create("spool", "t")).value();
    (void)co_await fs_.Append(fd, BytesOfString("junk"));
    (void)co_await fs_.Delete("spool", "t");
    // fd still open; inode alive only through the fd.
  };
  perennial::testing::SimRunVoid(body());
  EXPECT_EQ(fs_.InodeCountForTesting(), 1u);
  world_.Crash();
  EXPECT_EQ(fs_.InodeCountForTesting(), 0u);
}

TEST_F(GooseFsTest, DurableFingerprintDistinguishesStates) {
  std::string before = fs_.DurableFingerprint();
  auto body = [&]() -> Task<void> {
    Fd fd = (co_await fs_.Create("user0", "m")).value();
    (void)co_await fs_.Append(fd, BytesOfString("x"));
    (void)co_await fs_.Close(fd);
  };
  perennial::testing::SimRunVoid(body());
  EXPECT_NE(fs_.DurableFingerprint(), before);
}

// --- Deferred durability (the paper's named future-work extension) ---

class DeferredFsTest : public ::testing::Test {
 protected:
  DeferredFsTest() : fs_(&world_, {"d"}, {.deferred_durability = true}) {}

  goose::World world_;
  GooseFs fs_;
};

TEST_F(DeferredFsTest, ReadsSeeBufferedData) {
  auto body = [&]() -> Task<std::string> {
    Fd wfd = (co_await fs_.Create("d", "f")).value();
    (void)co_await fs_.Append(wfd, BytesOfString("buffered"));
    Fd rfd = (co_await fs_.Open("d", "f")).value();
    Bytes data = (co_await fs_.ReadAt(rfd, 0, 100)).value();
    (void)co_await fs_.Close(rfd);
    (void)co_await fs_.Close(wfd);
    co_return StringOfBytes(data);
  };
  // The page-cache view is coherent even before any Sync.
  EXPECT_EQ(SimRun(body()), "buffered");
}

TEST_F(DeferredFsTest, CrashDropsUnsyncedData) {
  auto body = [&]() -> Task<void> {
    Fd fd = (co_await fs_.Create("d", "f")).value();
    (void)co_await fs_.Append(fd, BytesOfString("gone"));
    (void)co_await fs_.Close(fd);
  };
  perennial::testing::SimRunVoid(body());
  EXPECT_EQ(StringOfBytes(*fs_.PeekFile("d", "f")), "gone");
  world_.Crash();
  // The name survives (metadata is synchronous) but the data does not.
  EXPECT_EQ(StringOfBytes(*fs_.PeekFile("d", "f")), "");
}

TEST_F(DeferredFsTest, SyncMakesDataDurable) {
  auto body = [&]() -> Task<void> {
    Fd fd = (co_await fs_.Create("d", "f")).value();
    (void)co_await fs_.Append(fd, BytesOfString("kept"));
    (void)co_await fs_.Sync(fd);
    (void)co_await fs_.Append(fd, BytesOfString("+lost"));
    (void)co_await fs_.Close(fd);
  };
  perennial::testing::SimRunVoid(body());
  world_.Crash();
  EXPECT_EQ(StringOfBytes(*fs_.PeekFile("d", "f")), "kept");
}

TEST_F(DeferredFsTest, PeekDurableShowsSyncedPrefixOnly) {
  auto body = [&]() -> Task<void> {
    Fd fd = (co_await fs_.Create("d", "f")).value();
    (void)co_await fs_.Append(fd, BytesOfString("ab"));
    (void)co_await fs_.Sync(fd);
    (void)co_await fs_.Append(fd, BytesOfString("cd"));
    (void)co_await fs_.Close(fd);
  };
  perennial::testing::SimRunVoid(body());
  EXPECT_EQ(StringOfBytes(*fs_.PeekFile("d", "f")), "abcd");
  EXPECT_EQ(StringOfBytes(*fs_.PeekDurableFile("d", "f")), "ab");
}

TEST_F(GooseFsTest, SynchronousModelSyncIsANoOpButLegal) {
  auto body = [&]() -> Task<Status> {
    Fd fd = (co_await fs_.Create("user0", "f")).value();
    (void)co_await fs_.Append(fd, BytesOfString("x"));
    Status s = co_await fs_.Sync(fd);
    (void)co_await fs_.Close(fd);
    co_return s;
  };
  EXPECT_TRUE(SimRun(body()).ok());
}

// --- POSIX backend (native mode, real directory) ---

class PosixFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/pcc_posix_fs_test";
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
};

TEST_F(PosixFsTest, CreateAppendReadRoundTrips) {
  PosixFilesys fs(root_, {.cache_dir_fds = true});
  ASSERT_TRUE(fs.EnsureDirs({"spool", "user0"}).ok());
  auto body = [&]() -> Task<std::string> {
    Fd wfd = (co_await fs.Create("user0", "m")).value();
    (void)co_await fs.Append(wfd, BytesOfString("posix data"));
    (void)co_await fs.Close(wfd);
    Fd rfd = (co_await fs.Open("user0", "m")).value();
    Bytes data = (co_await fs.ReadAt(rfd, 0, 100)).value();
    (void)co_await fs.Close(rfd);
    co_return StringOfBytes(data);
  };
  EXPECT_EQ(proc::RunSync(body()), "posix data");
}

TEST_F(PosixFsTest, UncachedModeWorksToo) {
  PosixFilesys fs(root_, {.cache_dir_fds = false});
  ASSERT_TRUE(fs.EnsureDirs({"user0"}).ok());
  auto body = [&]() -> Task<std::string> {
    Fd wfd = (co_await fs.Create("user0", "m")).value();
    (void)co_await fs.Append(wfd, BytesOfString("slow path"));
    (void)co_await fs.Close(wfd);
    Fd rfd = (co_await fs.Open("user0", "m")).value();
    Bytes data = (co_await fs.ReadAt(rfd, 0, 100)).value();
    (void)co_await fs.Close(rfd);
    co_return StringOfBytes(data);
  };
  EXPECT_EQ(proc::RunSync(body()), "slow path");
}

TEST_F(PosixFsTest, ExclusiveCreateAndLinkSemanticsMatchModel) {
  PosixFilesys fs(root_, {.cache_dir_fds = true});
  ASSERT_TRUE(fs.EnsureDirs({"spool", "user0"}).ok());
  auto body = [&]() -> Task<int> {
    Fd fd = (co_await fs.Create("spool", "t")).value();
    (void)co_await fs.Append(fd, BytesOfString("m"));
    (void)co_await fs.Close(fd);
    int score = 0;
    Result<Fd> dup = co_await fs.Create("spool", "t");
    if (dup.status().code() == StatusCode::kAlreadyExists) {
      score += 1;
    }
    Result<bool> first = co_await fs.Link("spool", "t", "user0", "m");
    if (first.ok() && first.value()) {
      score += 2;
    }
    Result<bool> second = co_await fs.Link("spool", "t", "user0", "m");
    if (second.ok() && !second.value()) {
      score += 4;  // second link fails: destination exists
    }
    if ((co_await fs.Delete("spool", "t")).ok()) {
      score += 8;
    }
    co_return score;
  };
  EXPECT_EQ(proc::RunSync(body()), 15);
}

TEST_F(PosixFsTest, ListsSorted) {
  PosixFilesys fs(root_, {.cache_dir_fds = true});
  ASSERT_TRUE(fs.EnsureDirs({"user0"}).ok());
  auto body = [&]() -> Task<std::vector<std::string>> {
    for (const char* name : {"c", "a", "b"}) {
      Fd fd = (co_await fs.Create("user0", name)).value();
      (void)co_await fs.Close(fd);
    }
    co_return (co_await fs.List("user0")).value();
  };
  EXPECT_EQ(proc::RunSync(body()), (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(PosixFsTest, EnsureDirsIdempotentAcrossRecoveredRuns) {
  // A recovered run re-creates the layout with clear_contents=false: the
  // directories already exist and the surviving files must be kept for
  // recovery to inspect, not wiped.
  PosixFilesys fs(root_, {.cache_dir_fds = true});
  ASSERT_TRUE(fs.EnsureDirs({"spool", "user0"}, /*clear_contents=*/false).ok());
  auto create = [&]() -> Task<void> {
    Fd fd = (co_await fs.Create("user0", "survivor")).value();
    (void)co_await fs.Close(fd);
  };
  proc::RunSyncVoid(create());
  PosixFilesys fs2(root_, {.cache_dir_fds = true});
  ASSERT_TRUE(fs2.EnsureDirs({"spool", "user0"}, /*clear_contents=*/false).ok());
  auto list = [&]() -> Task<std::vector<std::string>> {
    co_return (co_await fs2.List("user0")).value();
  };
  EXPECT_EQ(proc::RunSync(list()), (std::vector<std::string>{"survivor"}));
}

TEST_F(PosixFsTest, EnsureDirsPropagatesClearError) {
  // A regular file squatting on a directory name makes ClearDir fail
  // (opendir ENOTDIR); EnsureDirs must surface that instead of papering
  // over it and letting the caller run on a broken layout.
  std::ofstream(root_ + "/user0") << "not a directory";
  PosixFilesys fs(root_, {.cache_dir_fds = false});
  EXPECT_FALSE(fs.EnsureDirs({"user0"}, /*clear_contents=*/true).ok());
}

TEST_F(PosixFsTest, ClearDirFailsOnMissingDir) {
  PosixFilesys fs(root_, {.cache_dir_fds = false});
  EXPECT_FALSE(fs.ClearDir("nope").ok());
}

TEST_F(PosixFsTest, DirsyncHookFiresOnlyWhenFsyncDirsIsOn) {
  // The *.dirsync hook points mean "a directory fsync has landed"; the
  // crash harness's durability journal trusts the crossing itself, so it
  // must not fire when fsync_dirs is disabled (the seeded metadata-
  // durability mutation would otherwise be invisible).
  for (bool fsync_dirs : {true, false}) {
    std::vector<std::string> points;
    PosixFilesys::Options opts;
    opts.cache_dir_fds = false;
    opts.fsync_dirs = fsync_dirs;
    opts.hook = [&points](const char* point, const std::string&) {
      points.emplace_back(point);
    };
    PosixFilesys fs(root_ + "/h" + (fsync_dirs ? "1" : "0"), std::move(opts));
    std::filesystem::create_directories(root_ + "/h" + (fsync_dirs ? "1" : "0"));
    ASSERT_TRUE(fs.EnsureDirs({"spool", "user0"}, /*clear_contents=*/false).ok());
    auto body = [&]() -> Task<void> {
      Fd fd = (co_await fs.Create("spool", "msg")).value();
      (void)co_await fs.Append(fd, BytesOfString("x"));
      (void)co_await fs.Sync(fd);
      (void)co_await fs.Close(fd);
      (void)co_await fs.Link("spool", "msg", "user0", "msg");
      (void)co_await fs.Delete("spool", "msg");
    };
    proc::RunSyncVoid(body());
    auto count = [&](const std::string& p) {
      return std::count(points.begin(), points.end(), p);
    };
    if (fsync_dirs) {
      EXPECT_EQ(count("create.dirsync"), 1) << "fsync_dirs on";
      EXPECT_EQ(count("link.dirsync"), 1) << "fsync_dirs on";
      EXPECT_EQ(count("delete.dirsync"), 1) << "fsync_dirs on";
    } else {
      EXPECT_EQ(count("create.dirsync"), 0) << "fsync_dirs off";
      EXPECT_EQ(count("link.dirsync"), 0) << "fsync_dirs off";
      EXPECT_EQ(count("delete.dirsync"), 0) << "fsync_dirs off";
    }
    EXPECT_EQ(count("create.entry"), 1);
    EXPECT_EQ(count("delete.entry"), 1);
  }
}

TEST_F(PosixFsTest, EnsureDirsClearsLeftovers) {
  PosixFilesys fs(root_, {.cache_dir_fds = true});
  ASSERT_TRUE(fs.EnsureDirs({"user0"}).ok());
  auto create = [&]() -> Task<void> {
    Fd fd = (co_await fs.Create("user0", "old")).value();
    (void)co_await fs.Close(fd);
  };
  proc::RunSyncVoid(create());
  PosixFilesys fs2(root_, {.cache_dir_fds = true});
  ASSERT_TRUE(fs2.EnsureDirs({"user0"}).ok());
  auto list = [&]() -> Task<std::vector<std::string>> {
    co_return (co_await fs2.List("user0")).value();
  };
  EXPECT_TRUE(proc::RunSync(list()).empty());
}

}  // namespace
}  // namespace perennial::goosefs
