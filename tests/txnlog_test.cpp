// Tests for the generalized transaction log: unit behavior, log-structured
// reads, checkpointing, auto-checkpoint on a full log, exhaustive
// refinement with crashes, and the broken-ordering mutations.
#include <gtest/gtest.h>

#include "src/refine/explorer.h"
#include "src/systems/txnlog/txn_harness.h"
#include "tests/sim_util.h"

namespace perennial::systems {
namespace {

using perennial::testing::DrainLowestFirst;
using perennial::testing::SimRun;
using perennial::testing::SimRunVoid;
using proc::Task;
using refine::Explorer;
using refine::ExplorerOptions;
using refine::Report;

TEST(TxnHeaderCodec, RoundTrips) {
  uint64_t committed = 0;
  uint64_t applied = 0;
  DecodeTxnHeader(EncodeTxnHeader(7, 3), &committed, &applied);
  EXPECT_EQ(committed, 7u);
  EXPECT_EQ(applied, 3u);
}

TEST(TxnUnit, CommitThenReadFromLog) {
  goose::World world;
  TxnLog log(&world, 4, 8);
  auto body = [&]() -> Task<uint64_t> {
    std::vector<std::pair<uint64_t, uint64_t>> batch1{{2, 42}};
    co_await log.CommitBatch(batch1, 1);
    co_return co_await log.Read(2);
  };
  EXPECT_EQ(SimRun(body()), 42u);
  // The value is only in the log, not yet in the data region.
  EXPECT_EQ(log.PeekHeaderForTesting().first, 1u);
}

TEST(TxnUnit, NewestRecordWins) {
  goose::World world;
  TxnLog log(&world, 2, 8);
  auto body = [&]() -> Task<uint64_t> {
    std::vector<std::pair<uint64_t, uint64_t>> batch2{{0, 1}};
    co_await log.CommitBatch(batch2, 1);
    std::vector<std::pair<uint64_t, uint64_t>> batch3{{0, 2}};
    co_await log.CommitBatch(batch3, 2);
    std::vector<std::pair<uint64_t, uint64_t>> batch4{{0, 3}};
    co_await log.CommitBatch(batch4, 3);
    co_return co_await log.Read(0);
  };
  EXPECT_EQ(SimRun(body()), 3u);
}

TEST(TxnUnit, CheckpointAppliesAndTruncates) {
  goose::World world;
  TxnLog log(&world, 2, 8);
  auto body = [&]() -> Task<uint64_t> {
    std::vector<std::pair<uint64_t, uint64_t>> batch5{{0, 5}, {1, 6}};
    co_await log.CommitBatch(batch5, 1);
    co_await log.Checkpoint();
    co_return co_await log.Read(0) * 10 + co_await log.Read(1);
  };
  EXPECT_EQ(SimRun(body()), 56u);
  EXPECT_EQ(log.PeekHeaderForTesting(), std::make_pair(uint64_t{0}, uint64_t{0}));
}

TEST(TxnUnit, FullLogAutoCheckpoints) {
  goose::World world;
  TxnLog log(&world, 2, 3);
  auto body = [&]() -> Task<uint64_t> {
    std::vector<std::pair<uint64_t, uint64_t>> batch6{{0, 1}};
    co_await log.CommitBatch(batch6, 1);
    std::vector<std::pair<uint64_t, uint64_t>> batch7{{0, 2}};
    co_await log.CommitBatch(batch7, 2);
    std::vector<std::pair<uint64_t, uint64_t>> batch8{{1, 3}};
    co_await log.CommitBatch(batch8, 3);
    // Log full (capacity 3): this commit forces an apply+truncate first.
    std::vector<std::pair<uint64_t, uint64_t>> batch9{{0, 4}};
    co_await log.CommitBatch(batch9, 4);
    co_return co_await log.Read(0) * 10 + co_await log.Read(1);
  };
  EXPECT_EQ(SimRun(body()), 43u);
  EXPECT_EQ(log.PeekHeaderForTesting().first, 1u);  // only the last batch remains
}

TEST(TxnUnit, RecoveryReplaysCommittedLog) {
  goose::World world;
  TxnLog log(&world, 2, 4);
  auto commit = [&]() -> Task<void> { std::vector<std::pair<uint64_t, uint64_t>> batch10{{0, 9}, {1, 8}};
    co_await log.CommitBatch(batch10, 1); };
  SimRunVoid(commit());
  world.Crash();
  auto recover = [&]() -> Task<void> { co_await log.Recover([](uint64_t) {}); };
  SimRunVoid(recover());
  EXPECT_EQ(log.PeekHeaderForTesting(), std::make_pair(uint64_t{0}, uint64_t{0}));
  EXPECT_EQ(log.PeekCommitted(0), 9u);
  EXPECT_EQ(log.PeekCommitted(1), 8u);
}

TEST(TxnUnit, UncommittedRecordsIgnoredAfterCrash) {
  goose::World world;
  TxnLog log(&world, 2, 4);
  proc::Scheduler sched;
  {
    proc::SchedulerScope scope(&sched);
    auto commit = [&]() -> Task<void> { std::vector<std::pair<uint64_t, uint64_t>> batch11{{0, 9}};
    co_await log.CommitBatch(batch11, 1); };
    sched.Spawn(commit());
    // Steps: enter+lock-yield, acquire+header-read-yield, header read +
    // record-write-yield, record written + header-write-yield — stop
    // before the commit header lands.
    for (int i = 0; i < 4; ++i) {
      sched.Step(0);
    }
    sched.KillAllThreads();
  }
  world.Crash();
  {
    proc::Scheduler sched2;
    proc::SchedulerScope scope(&sched2);
    auto recover = [&]() -> Task<void> { co_await log.Recover([](uint64_t) {}); };
    sched2.Spawn(recover());
    DrainLowestFirst(sched2);
  }
  EXPECT_EQ(log.PeekCommitted(0), 0u);  // the record never committed
}

TEST(TxnCheck, ConcurrentBatchesAndReadsRefine) {
  TxnHarnessOptions options;
  options.num_addrs = 2;
  options.client_ops = {{TxnSpec::MakeBatch({{0, 1}, {1, 2}})}, {TxnSpec::MakeRead(0)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<TxnSpec> ex(TxnSpec{2}, [&] { return MakeTxnInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_FALSE(report.truncated);
}

TEST(TxnCheck, CheckpointRacesWritersAndCrashes) {
  TxnHarnessOptions options;
  options.num_addrs = 2;
  options.log_capacity = 4;
  options.client_ops = {{TxnSpec::MakeWrite(0, 5)}, {TxnSpec::MakeCheckpoint()}};
  ExplorerOptions opts;
  opts.max_crashes = 2;
  Explorer<TxnSpec> ex(TxnSpec{2}, [&] { return MakeTxnInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(TxnCheck, AutoCheckpointPathIsCrashSafe) {
  TxnHarnessOptions options;
  options.num_addrs = 1;
  options.log_capacity = 1;  // every second commit forces apply+truncate
  options.client_ops = {{TxnSpec::MakeWrite(0, 1), TxnSpec::MakeWrite(0, 2)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<TxnSpec> ex(TxnSpec{1}, [&] { return MakeTxnInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(TxnMutation, HeaderBeforeRecordsIsCaught) {
  TxnHarnessOptions options;
  options.num_addrs = 1;
  options.client_ops = {{TxnSpec::MakeWrite(0, 5), TxnSpec::MakeWrite(0, 7)}};
  options.mutations.header_before_records = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<TxnSpec> ex(TxnSpec{1}, [&] { return MakeTxnInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "non-linearizable");
}

TEST(TxnMutation, TruncateBeforeApplyIsCaught) {
  TxnHarnessOptions options;
  options.num_addrs = 1;
  options.client_ops = {{TxnSpec::MakeWrite(0, 5), TxnSpec::MakeCheckpoint()}};
  options.mutations.truncate_before_apply = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<TxnSpec> ex(TxnSpec{1}, [&] { return MakeTxnInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "non-linearizable");
}

}  // namespace
}  // namespace perennial::systems
