// Tests for the transition-system DSL (§3.1).
#include <gtest/gtest.h>

#include "src/tsys/transition.h"

namespace perennial::tsys {
namespace {

using IntT = Transition<int, int>;

TEST(Tsys, RetLeavesStateAndReturns) {
  auto t = Ret<int, int>(5);
  Outcome<int, int> out = t.Step(10);
  ASSERT_EQ(out.branches.size(), 1u);
  EXPECT_EQ(out.branches[0].first, 10);
  EXPECT_EQ(out.branches[0].second, 5);
  EXPECT_FALSE(out.undefined);
}

TEST(Tsys, UndefinedIsUndefinedEverywhere) {
  auto t = Undefined<int, int>();
  EXPECT_TRUE(t.Step(0).undefined);
  EXPECT_TRUE(t.Step(42).undefined);
}

TEST(Tsys, GetsReadsState) {
  auto t = Gets<int, int>([](const int& s) { return s * 2; });
  Outcome<int, int> out = t.Step(21);
  ASSERT_EQ(out.branches.size(), 1u);
  EXPECT_EQ(out.branches[0].first, 21);  // unchanged
  EXPECT_EQ(out.branches[0].second, 42);
}

TEST(Tsys, ModifyTransformsState) {
  auto t = Modify<int>([](const int& s) { return s + 1; });
  Outcome<int, Unit> out = t.Step(7);
  ASSERT_EQ(out.branches.size(), 1u);
  EXPECT_EQ(out.branches[0].first, 8);
}

TEST(Tsys, ThenSequencesStateChanges) {
  auto inc = Modify<int>([](const int& s) { return s + 1; });
  Transition<int, int> t = inc.Then<int>(
      [](const Unit&) { return Gets<int, int>([](const int& s) { return s; }); });
  Outcome<int, int> out = t.Step(1);
  ASSERT_EQ(out.branches.size(), 1u);
  EXPECT_EQ(out.branches[0].first, 2);
  EXPECT_EQ(out.branches[0].second, 2);  // gets sees the modified state
}

TEST(Tsys, ThenPropagatesUndefined) {
  auto t = Undefined<int, Unit>().Then<int>([](const Unit&) { return Ret<int, int>(0); });
  EXPECT_TRUE(t.Step(0).undefined);
  auto t2 = Modify<int>([](const int& s) { return s; }).Then<int>([](const Unit&) {
    return Undefined<int, int>();
  });
  EXPECT_TRUE(t2.Step(0).undefined);
}

TEST(Tsys, ChoiceUnionsBranches) {
  auto t = Choice<int, int>({Ret<int, int>(1), Ret<int, int>(2)});
  Outcome<int, int> out = t.Step(0);
  ASSERT_EQ(out.branches.size(), 2u);
  EXPECT_EQ(out.branches[0].second, 1);
  EXPECT_EQ(out.branches[1].second, 2);
}

TEST(Tsys, ChoiceWithUndefinedAlternativeIsUndefined) {
  auto t = Choice<int, int>({Ret<int, int>(1), Undefined<int, int>()});
  EXPECT_TRUE(t.Step(0).undefined);
}

TEST(Tsys, PickEnumeratesValues) {
  auto t = Pick<int, int>([](const int& s) { return std::vector<int>{s, s + 1, s + 2}; });
  Outcome<int, int> out = t.Step(10);
  ASSERT_EQ(out.branches.size(), 3u);
  EXPECT_EQ(out.branches[2].second, 12);
}

TEST(Tsys, RequireBlocksWhenFalse) {
  auto t = Require<int>([](const int& s) { return s > 0; });
  EXPECT_TRUE(t.Step(0).branches.empty());
  EXPECT_FALSE(t.Step(0).undefined);
  EXPECT_EQ(t.Step(1).branches.size(), 1u);
}

TEST(Tsys, ThenMultipliesBranches) {
  auto t = Pick<int, int>([](const int&) { return std::vector<int>{1, 2}; });
  Transition<int, int> seq = t.Then<int>([](const int& v) {
    return Pick<int, int>([v](const int&) { return std::vector<int>{v * 10, v * 10 + 1}; });
  });
  Outcome<int, int> out = seq.Step(0);
  ASSERT_EQ(out.branches.size(), 4u);  // 2 x 2
}

TEST(Tsys, Figure3ReadSpecViaDsl) {
  // The paper's rd_read spec: look up the address; undefined out of bounds.
  using State = std::vector<uint64_t>;
  auto rd_read = [](uint64_t a) {
    return Transition<State, uint64_t>([a](const State& s) {
      if (a >= s.size()) {
        return Outcome<State, uint64_t>::Undef();
      }
      return Outcome<State, uint64_t>::One(s, s[a]);
    });
  };
  State disk{7, 8};
  EXPECT_EQ(rd_read(1).Step(disk).branches[0].second, 8u);
  EXPECT_TRUE(rd_read(2).Step(disk).undefined);
}

}  // namespace
}  // namespace perennial::tsys
