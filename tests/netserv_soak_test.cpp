// tier2-net soak: many concurrent loadgen clients against the in-process
// server, intended to run under TSan. Beyond "no data races", it checks an
// end-to-end consistency invariant: with zero client-visible errors, the
// number of messages left on the server equals acked delivers minus
// committed deletes — nothing lost, nothing duplicated, under real
// socket-level concurrency and group commit.
#include <unistd.h>

#include <cstdlib>
#include <string>

#include "gtest/gtest.h"
#include "src/netserv/harness.h"
#include "src/netserv/loadgen.h"
#include "src/netserv/net.h"

namespace perennial::netserv {
namespace {

std::string SoakRoot(const char* name) {
  std::string root = "/tmp/pcc-netserv-soak-" + std::string(name) + "-" +
                     std::to_string(::getpid());
  std::string cmd = "rm -rf " + root;
  [[maybe_unused]] int rc = std::system(cmd.c_str());
  return root;
}

// Counts messages in userN's mailbox over a real POP3 session.
uint64_t CountMessages(uint16_t pop3_port, uint64_t user) {
  BlockingLineConn conn(ConnectTcp(pop3_port));
  EXPECT_GE(conn.fd(), 0);
  std::string line;
  EXPECT_TRUE(conn.ReadLine(&line));  // greeting
  EXPECT_TRUE(conn.WriteLine("USER user" + std::to_string(user)));
  EXPECT_TRUE(conn.ReadLine(&line));
  EXPECT_TRUE(conn.WriteLine("PASS x"));
  EXPECT_TRUE(conn.ReadLine(&line));
  EXPECT_TRUE(conn.WriteLine("LIST"));
  EXPECT_TRUE(conn.ReadLine(&line));
  EXPECT_EQ(line.substr(0, 3), "+OK");
  uint64_t count = 0;
  for (;;) {
    EXPECT_TRUE(conn.ReadLine(&line));
    if (line == ".") {
      break;
    }
    ++count;
  }
  EXPECT_TRUE(conn.WriteLine("QUIT"));
  EXPECT_TRUE(conn.ReadLine(&line));
  return count;
}

void RunSoak(bool group_commit, uint64_t clients, uint64_t requests) {
  InprocMailServer::Config config;
  config.root = SoakRoot(group_commit ? "gc" : "nogc");
  config.users = 8;
  config.group_commit = group_commit;
  config.gc_window_us = 500;
  config.loops = 2;
  // POP3 sessions hold their user lock PASS -> QUIT and a blocked Lock()
  // pins an executor, so executors must exceed concurrent sessions.
  config.executors = clients + 8;
  InprocMailServer server(config);
  ASSERT_TRUE(server.Start());

  LoadgenOptions load;
  load.smtp_port = server.smtp_port();
  load.pop3_port = server.pop3_port();
  load.clients = clients;
  load.requests = requests;
  load.num_users = config.users;
  load.pickup_fraction = 0.3;
  load.body_bytes = 128;
  load.stall_timeout_ms = 60000;
  LoadgenResult result = RunLoadgen(load);

  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.ok_requests, requests);
  EXPECT_EQ(result.acked_bodies.size(), result.delivers);

  if (result.errors == 0) {
    uint64_t remaining = 0;
    for (uint64_t user = 0; user < config.users; ++user) {
      remaining += CountMessages(server.pop3_port(), user);
    }
    EXPECT_EQ(remaining, result.delivers - result.deletes)
        << "delivers=" << result.delivers << " deletes=" << result.deletes;
  }
  if (group_commit) {
    const auto& stats = server.committer()->stats();
    EXPECT_GT(stats.batches.load(), 0u);
    // Batching must actually coalesce: fewer barriers than requests.
    EXPECT_LT(stats.fsyncs_issued.load(), stats.requests.load());
  }
  server.Stop();
}

TEST(NetservSoakTest, ManyClientsMixedGroupCommit) {
  RunSoak(/*group_commit=*/true, /*clients=*/64, /*requests=*/800);
}

TEST(NetservSoakTest, PerOpFsyncSmallerSoak) {
  RunSoak(/*group_commit=*/false, /*clients=*/16, /*requests=*/200);
}

}  // namespace
}  // namespace perennial::netserv
