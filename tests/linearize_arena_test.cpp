// Arena regression tests for the linearizability checker (PR 4's
// allocation-lean hot path): a single LinearizabilityChecker instance is
// fed many histories and must (a) give exactly the verdict a fresh checker
// gives — the arena reset leaks no state between searches — and (b) stop
// growing: retained capacity (spine slots, config storage, dedup buckets)
// plateaus once the checker has seen the largest history shape. Running
// this binary under ASan (-DPCC_SANITIZE=address) additionally checks that
// spine reuse never touches freed or stale frontier storage.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/refine/history.h"
#include "src/refine/linearize.h"
#include "src/tsys/transition.h"

namespace perennial::refine {
namespace {

// The register spec from refine_test.cpp: write(v) / read() -> v, durable
// across crashes.
struct RegSpec {
  struct State {
    uint64_t v = 0;
    friend bool operator==(const State&, const State&) = default;
  };
  struct Op {
    bool is_write = false;
    uint64_t arg = 0;
  };
  using Ret = uint64_t;

  State Initial() const { return {}; }

  tsys::Outcome<State, Ret> Step(const State& s, const Op& op) const {
    if (op.is_write) {
      return tsys::Outcome<State, Ret>::One(State{op.arg}, 0);
    }
    return tsys::Outcome<State, Ret>::One(s, s.v);
  }

  std::vector<State> CrashSteps(const State& s) const { return {s}; }

  static std::string StateKey(const State& s) { return std::to_string(s.v); }
  static std::string RetKey(const Ret& r) { return std::to_string(r); }
  static std::string OpName(const Op& op) {
    return op.is_write ? "write(" + std::to_string(op.arg) + ")" : "read()";
  }
};

RegSpec::Op Write(uint64_t v) { return RegSpec::Op{true, v}; }
RegSpec::Op Read() { return RegSpec::Op{false, 0}; }

using Hist = History<RegSpec>;

// Deterministic history generator: the SHAPE (event structure, hence
// frontier sizes) cycles with period 8 so every retained capacity is
// reached within the first few iterations; the VALUES vary freely — they
// change fingerprints but not allocation footprints.
Hist MakeHistory(uint64_t i) {
  uint64_t v1 = 1 + (i * 2654435761u) % 97;
  uint64_t v2 = 1 + (i * 40503u) % 89;
  Hist h;
  switch (i % 8) {
    case 0: {  // sequential write/read
      uint64_t w = h.Invoke(0, Write(v1));
      h.Return(w, 0);
      uint64_t r = h.Invoke(0, Read());
      h.Return(r, v1);
      break;
    }
    case 1: {  // two overlapping writers + racing reader
      uint64_t w1 = h.Invoke(0, Write(v1));
      uint64_t w2 = h.Invoke(1, Write(v2));
      uint64_t r = h.Invoke(2, Read());
      h.Return(w1, 0);
      h.Return(w2, 0);
      h.Return(r, v1);  // reader may see the first writer
      break;
    }
    case 2: {  // crash with a pending write that never happened
      uint64_t w = h.Invoke(0, Write(v1));
      (void)w;
      h.Crash();
      uint64_t r = h.Invoke(0, Read());
      h.Return(r, 0);  // the pending write may be discarded
      break;
    }
    case 3: {  // helped op: write linearized before the crash
      uint64_t w = h.Invoke(0, Write(v1));
      h.Crash();
      h.Helped(w);
      uint64_t r = h.Invoke(0, Read());
      h.Return(r, v1);
      break;
    }
    case 4: {  // NON-linearizable: read sees a value nobody wrote
      uint64_t w = h.Invoke(0, Write(v1));
      h.Return(w, 0);
      uint64_t r = h.Invoke(0, Read());
      h.Return(r, v1 + 100);
      break;
    }
    case 5: {  // three concurrent writers, reader pinned to the last
      uint64_t w1 = h.Invoke(0, Write(v1));
      uint64_t w2 = h.Invoke(1, Write(v2));
      uint64_t w3 = h.Invoke(2, Write(v1 + v2));
      h.Return(w1, 0);
      h.Return(w2, 0);
      h.Return(w3, 0);
      uint64_t r = h.Invoke(0, Read());
      h.Return(r, v1 + v2);  // some order ends with w3
      break;
    }
    case 6: {  // two crashes, durable register
      uint64_t w = h.Invoke(0, Write(v1));
      h.Return(w, 0);
      h.Crash();
      h.Crash();
      uint64_t r = h.Invoke(0, Read());
      h.Return(r, v1);
      break;
    }
    default: {  // NON-linearizable: helped op that was still pending
      uint64_t w = h.Invoke(0, Write(v1));
      (void)w;
      h.Crash();
      uint64_t r = h.Invoke(0, Read());
      h.Return(r, 0);
      h.Helped(w);  // but the read-0 already forced "never happened"
      break;
    }
  }
  return h;
}

TEST(LinearizeArena, VerdictsMatchFreshCheckerAcross1kHistories) {
  RegSpec spec;
  LinearizabilityChecker<RegSpec> reused(&spec);
  for (uint64_t i = 0; i < 1000; ++i) {
    Hist h = MakeHistory(i);
    LinearizabilityChecker<RegSpec> fresh(&spec);
    auto expect = fresh.Check(h);
    auto got = reused.Check(h);
    ASSERT_EQ(got.has_value(), expect.has_value()) << "history " << i;
    // The per-history search work must also be independent of arena reuse:
    // states_explored feeds bit-identical explorer reports.
    ASSERT_EQ(reused.states_explored(), fresh.states_explored()) << "history " << i;
  }
}

TEST(LinearizeArena, RetainedCapacityPlateaus) {
  RegSpec spec;
  LinearizabilityChecker<RegSpec> checker(&spec);
  for (uint64_t i = 0; i < 100; ++i) {
    (void)checker.Check(MakeHistory(i));
  }
  const auto warm = checker.arena_stats();
  EXPECT_GT(warm.spine_slots, 0u);
  for (uint64_t i = 100; i < 1000; ++i) {
    (void)checker.Check(MakeHistory(i));
  }
  const auto cold = checker.arena_stats();
  EXPECT_EQ(cold.spine_slots, warm.spine_slots);
  EXPECT_EQ(cold.config_capacity, warm.config_capacity);
  EXPECT_EQ(cold.seen_buckets, warm.seen_buckets);
}

TEST(LinearizeArena, SpineResumeMatchesFreshChecker) {
  // Check(history, reuse_events): resuming from a retained spine prefix
  // must change neither the verdict nor the reported search-state count.
  RegSpec spec;
  LinearizabilityChecker<RegSpec> reused(&spec);

  Hist base;
  uint64_t w1 = base.Invoke(0, Write(3));
  uint64_t w2 = base.Invoke(1, Write(7));
  base.Return(w1, 0);
  base.Return(w2, 0);
  uint64_t r = base.Invoke(0, Read());
  base.Return(r, 7);
  ASSERT_EQ(reused.Check(base), std::nullopt);

  // Variants diverging after each shared prefix length, including verdict
  // flips (the resumed suffix must still reject).
  for (size_t k = 0; k <= base.events.size(); ++k) {
    for (uint64_t tail : {uint64_t{3}, uint64_t{7}, uint64_t{99}}) {
      Hist variant;
      variant.events.assign(base.events.begin(), base.events.begin() + k);
      variant.next_op_id = base.next_op_id;
      uint64_t rv = variant.Invoke(2, Read());
      variant.Return(rv, tail);
      LinearizabilityChecker<RegSpec> fresh(&spec);
      auto expect = fresh.Check(variant);
      auto got = reused.Check(variant, /*reuse_events=*/k);
      ASSERT_EQ(got.has_value(), expect.has_value()) << "k=" << k << " tail=" << tail;
      ASSERT_EQ(reused.states_explored(), fresh.states_explored())
          << "k=" << k << " tail=" << tail;
      // Re-establish the contract for the next loop iteration: the next
      // variant shares only the base prefix with THIS one.
      ASSERT_EQ(reused.Check(base).has_value(), false);
    }
  }
}

}  // namespace
}  // namespace perennial::refine
