// Tests for DurableKv: unit behavior, exhaustive refinement with crashes,
// multi-key transaction atomicity, and the deadlock/tearing mutations.
#include <gtest/gtest.h>

#include "src/refine/explorer.h"
#include "src/systems/kvs/kv_harness.h"
#include "tests/sim_util.h"

namespace perennial::systems {
namespace {

using perennial::testing::SimRun;
using perennial::testing::SimRunVoid;
using proc::Task;
using refine::Explorer;
using refine::ExplorerOptions;
using refine::Report;

TEST(KvEntryCodec, RoundTrips) {
  uint64_t key = 0;
  uint64_t value = 0;
  DecodeKvEntry(EncodeKvEntry(3, 0xDEADBEEF12345678ULL), &key, &value);
  EXPECT_EQ(key, 3u);
  EXPECT_EQ(value, 0xDEADBEEF12345678ULL);
}

TEST(KvUnit, PutGetRoundTrips) {
  goose::World world;
  DurableKv kv(&world, 4);
  auto body = [&]() -> Task<uint64_t> {
    co_await kv.Put(2, 99, 1);
    co_return co_await kv.Get(2);
  };
  EXPECT_EQ(SimRun(body()), 99u);
}

TEST(KvUnit, UnwrittenKeysReadZero) {
  goose::World world;
  DurableKv kv(&world, 4);
  auto body = [&]() -> Task<uint64_t> { co_return co_await kv.Get(3); };
  EXPECT_EQ(SimRun(body()), 0u);
}

TEST(KvUnit, PutPairSetsBothKeys) {
  goose::World world;
  DurableKv kv(&world, 4);
  auto body = [&]() -> Task<uint64_t> {
    co_await kv.PutPair(3, 30, 1, 10, 1);  // note: descending key order
    co_return co_await kv.Get(3) * 100 + co_await kv.Get(1);
  };
  EXPECT_EQ(SimRun(body()), 3010u);
  EXPECT_EQ(kv.PeekValue(3), 30u);
  EXPECT_EQ(kv.PeekValue(1), 10u);
}

TEST(KvUnit, RecoveryReplaysCommittedPair) {
  goose::World world;
  DurableKv kv(&world, 4);
  proc::Scheduler sched;
  {
    proc::SchedulerScope scope(&sched);
    auto write = [&]() -> Task<void> { co_await kv.PutPair(0, 7, 1, 8, 42); };
    sched.Spawn(write());
    // Steps to the commit point: enter+lock-k0, acquire-k0, acquire-k1,
    // acquire-log, log e1, log e2, commit count — then the machine dies.
    for (int i = 0; i < 7; ++i) {
      sched.Step(0);
    }
    EXPECT_EQ(kv.PeekValue(0), 0u);  // not yet applied
    sched.KillAllThreads();
  }
  world.Crash();
  uint64_t helped_id = 0;
  {
    proc::Scheduler sched2;
    proc::SchedulerScope scope(&sched2);
    auto recover = [&]() -> Task<void> {
      co_await kv.Recover([&](uint64_t id) { helped_id = id; });
    };
    sched2.Spawn(recover());
    perennial::testing::DrainLowestFirst(sched2);
  }
  EXPECT_EQ(kv.PeekValue(0), 7u);
  EXPECT_EQ(kv.PeekValue(1), 8u);
  EXPECT_EQ(helped_id, 42u);
}

TEST(KvUnit, CrashInvariantHolds) {
  goose::World world;
  DurableKv kv(&world, 2);
  EXPECT_TRUE(kv.crash_invariants().AllHold());
}

TEST(KvCheck, ConcurrentPutsWithCrashesRefine) {
  KvHarnessOptions options;
  options.num_keys = 2;
  options.client_ops = {{KvSpec::MakePut(0, 1)}, {KvSpec::MakePut(0, 2)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<KvSpec> ex(KvSpec{2}, [&] { return MakeKvInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_FALSE(report.truncated);
}

TEST(KvCheck, PutPairIsAtomicUnderCrashes) {
  KvHarnessOptions options;
  options.num_keys = 2;
  options.client_ops = {{KvSpec::MakePutPair(0, 1, 1, 2)}};
  ExplorerOptions opts;
  opts.max_crashes = 2;  // including during recovery
  Explorer<KvSpec> ex(KvSpec{2}, [&] { return MakeKvInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(KvCheck, OpposedPutPairsDoNotDeadlock) {
  // Two transactions locking {0,1} in opposite caller orders: the
  // ascending-order discipline makes this safe; exhaustively checked.
  KvHarnessOptions options;
  options.num_keys = 2;
  options.client_ops = {{KvSpec::MakePutPair(0, 1, 1, 2)}, {KvSpec::MakePutPair(1, 3, 0, 4)}};
  ExplorerOptions opts;
  opts.max_crashes = 0;
  Explorer<KvSpec> ex(KvSpec{2}, [&] { return MakeKvInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(KvCheck, ReaderSeesAtomicPairUpdates) {
  KvHarnessOptions options;
  options.num_keys = 2;
  options.client_ops = {{KvSpec::MakePutPair(0, 5, 1, 5)},
                        {KvSpec::MakeGet(0), KvSpec::MakeGet(1)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<KvSpec> ex(KvSpec{2}, [&] { return MakeKvInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(KvMutation, UnorderedLocksDeadlock) {
  KvHarnessOptions options;
  options.num_keys = 2;
  options.client_ops = {{KvSpec::MakePutPair(0, 1, 1, 2)}, {KvSpec::MakePutPair(1, 3, 0, 4)}};
  options.mutations.unordered_locks = true;
  ExplorerOptions opts;
  opts.max_crashes = 0;
  Explorer<KvSpec> ex(KvSpec{2}, [&] { return MakeKvInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "deadlock");
}

TEST(KvMutation, ApplyBeforeCommitTearsPairs) {
  KvHarnessOptions options;
  options.num_keys = 2;
  options.client_ops = {{KvSpec::MakePutPair(0, 1, 1, 2)}};
  options.mutations.apply_before_commit = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<KvSpec> ex(KvSpec{2}, [&] { return MakeKvInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "non-linearizable");
}

TEST(KvMutation, SkippedRecoveryCaughtByNextTransaction) {
  KvHarnessOptions options;
  options.num_keys = 2;
  options.client_ops = {{KvSpec::MakePut(0, 5)}};
  options.mutations.skip_recovery = true;
  // A post-recovery put must collide with the stale commit record (the
  // helping token is still deposited) or replay stale state.
  options.observe_all = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<KvSpec> ex(KvSpec{2}, [&] { return MakeKvInstance(options); }, opts);
  Report report = ex.Run();
  // Observers alone can't always distinguish; drive one more transaction.
  if (report.ok()) {
    KvHarnessOptions options2 = options;
    options2.client_ops = {{KvSpec::MakePut(0, 5)}};
    // After recovery the observer performs a Put as well.
    ExplorerOptions opts2;
    opts2.max_crashes = 1;
    auto factory = [&] {
      refine::Instance<KvSpec> inst = MakeKvInstance(options2);
      inst.observer_ops.insert(inst.observer_ops.begin(), KvSpec::MakePut(1, 9));
      return inst;
    };
    Explorer<KvSpec> ex2(KvSpec{2}, factory, opts2);
    report = ex2.Run();
  }
  ASSERT_FALSE(report.ok());
}

}  // namespace
}  // namespace perennial::systems
