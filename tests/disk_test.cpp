// Tests for the block-device models and the PosixDisk real-storage backend.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "src/base/rand.h"
#include "src/disk/disk.h"
#include "src/disk/posix_disk.h"
#include "tests/sim_util.h"

namespace perennial::disk {
namespace {

using perennial::testing::SimRun;
using perennial::testing::SimRunVoid;
using proc::Task;

TEST(BlockCodec, U64RoundTrips) {
  EXPECT_EQ(U64OfBlock(BlockOfU64(0)), 0u);
  EXPECT_EQ(U64OfBlock(BlockOfU64(1)), 1u);
  EXPECT_EQ(U64OfBlock(BlockOfU64(0xDEADBEEFCAFEF00DULL)), 0xDEADBEEFCAFEF00DULL);
}

TEST(BlockCodec, ShortBlockDecodesLowBytes) {
  Block b{0x01, 0x02};
  EXPECT_EQ(U64OfBlock(b), 0x0201u);
}

TEST(DiskTest, ReadReturnsInitialValue) {
  goose::World world;
  Disk d(&world, 4, BlockOfU64(0));
  auto body = [&]() -> Task<uint64_t> {
    Result<Block> r = co_await d.Read(2);
    co_return U64OfBlock(r.value());
  };
  EXPECT_EQ(SimRun(body()), 0u);
}

TEST(DiskTest, WriteThenReadRoundTrips) {
  goose::World world;
  Disk d(&world, 4, BlockOfU64(0));
  auto body = [&]() -> Task<uint64_t> {
    (void)co_await d.Write(1, BlockOfU64(77));
    Result<Block> r = co_await d.Read(1);
    co_return U64OfBlock(r.value());
  };
  EXPECT_EQ(SimRun(body()), 77u);
}

TEST(DiskTest, OutOfRangeReadIsInvalid) {
  goose::World world;
  Disk d(&world, 4, BlockOfU64(0));
  auto body = [&]() -> Task<StatusCode> {
    Result<Block> r = co_await d.Read(4);
    co_return r.status().code();
  };
  EXPECT_EQ(SimRun(body()), StatusCode::kInvalid);
}

TEST(DiskTest, FailedDiskReadsFail) {
  goose::World world;
  Disk d(&world, 4, BlockOfU64(0));
  d.Fail();
  auto body = [&]() -> Task<StatusCode> {
    Result<Block> r = co_await d.Read(0);
    co_return r.status().code();
  };
  EXPECT_EQ(SimRun(body()), StatusCode::kFailed);
}

TEST(DiskTest, FailedDiskAbsorbsWritesAndReportsFailure) {
  goose::World world;
  Disk d(&world, 4, BlockOfU64(5));
  d.Fail();
  auto body = [&]() -> Task<Status> { co_return co_await d.Write(0, BlockOfU64(9)); };
  EXPECT_EQ(SimRun(body()).code(), StatusCode::kFailed);  // caller is told
  EXPECT_EQ(U64OfBlock(d.PeekBlock(0)), 5u);              // unchanged
}

TEST(DiskTest, ContentsSurviveCrash) {
  goose::World world;
  Disk d(&world, 2, BlockOfU64(0));
  auto body = [&]() -> Task<Status> { co_return co_await d.Write(0, BlockOfU64(123)); };
  (void)SimRun(body());
  world.Crash();
  EXPECT_EQ(U64OfBlock(d.PeekBlock(0)), 123u);
}

TEST(DiskTest, FailureSurvivesCrash) {
  goose::World world;
  Disk d(&world, 2, BlockOfU64(0));
  d.Fail();
  world.Crash();
  EXPECT_TRUE(d.failed());
}

TEST(TwoDisksTest, IndependentContents) {
  goose::World world;
  TwoDisks disks(&world, 3, BlockOfU64(0));
  auto body = [&]() -> Task<Status> { co_return co_await disks.d1.Write(0, BlockOfU64(1)); };
  (void)SimRun(body());
  EXPECT_EQ(U64OfBlock(disks.d1.PeekBlock(0)), 1u);
  EXPECT_EQ(U64OfBlock(disks.d2.PeekBlock(0)), 0u);
}

TEST(TwoDisksTest, OneDiskCanFailIndependently) {
  goose::World world;
  TwoDisks disks(&world, 3, BlockOfU64(0));
  disks.d1.Fail();
  EXPECT_TRUE(disks.d1.failed());
  EXPECT_FALSE(disks.d2.failed());
}

// --- PosixDisk (native mode, real backing file) ---

class PosixDiskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/pcc_posix_disk_test.img";
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

uint64_t NativeReadU64(PosixDisk* d, uint64_t a) {
  auto body = [&]() -> Task<uint64_t> {
    Result<Block> r = co_await d->Read(a);
    co_return U64OfBlock(r.value());
  };
  return proc::RunSync(body());
}

Status NativeWrite(PosixDisk* d, uint64_t a, Block value) {
  auto body = [&, v = std::move(value)]() mutable -> Task<Status> {
    co_return co_await d->Write(a, std::move(v));
  };
  return proc::RunSync(body());
}

Status NativeBarrier(PosixDisk* d) {
  auto body = [&]() -> Task<Status> { co_return co_await d->Barrier(); };
  return proc::RunSync(body());
}

// Sector read-back parity: the same seeded write sequence applied to the
// modeled Disk and to PosixDisk must read back byte-identical on every
// block — including mixed 8-byte data blocks and 16-byte header blocks.
TEST_F(PosixDiskTest, ReadBackParityWithModeledDisk) {
  constexpr uint64_t kBlocks = 8;
  auto pd = PosixDisk::Open(path_, kBlocks, BlockOfU64(0), {}, /*format=*/true);
  ASSERT_TRUE(pd.ok()) << pd.status().ToString();
  goose::World world;
  Disk model(&world, kBlocks, BlockOfU64(0));

  Rng rng(20260808);
  std::vector<std::pair<uint64_t, Block>> writes;
  for (int i = 0; i < 64; ++i) {
    uint64_t a = rng.Below(kBlocks);
    Block value = BlockOfU64(rng.Next());
    if (rng.Below(2) == 0) {
      value.resize(16, static_cast<uint8_t>(rng.Next() & 0xFF));  // header-sized
    }
    writes.emplace_back(a, value);
    ASSERT_TRUE(NativeWrite(pd.value().get(), a, value).ok());
  }
  auto apply_model = [&]() -> Task<void> {
    for (auto& [a, value] : writes) {
      (void)co_await model.Write(a, value);
    }
  };
  SimRunVoid(apply_model());

  for (uint64_t a = 0; a < kBlocks; ++a) {
    auto read_posix = [&]() -> Task<Block> {
      co_return (co_await pd.value()->Read(a)).value();
    };
    auto read_model = [&]() -> Task<Block> { co_return (co_await model.Read(a)).value(); };
    EXPECT_EQ(proc::RunSync(read_posix()), SimRun(read_model())) << "block " << a;
    EXPECT_EQ(pd.value()->PeekBlock(a), model.PeekBlock(a)) << "block " << a;
  }
}

TEST_F(PosixDiskTest, ContentsSurviveReopen) {
  {
    auto pd = PosixDisk::Open(path_, 4, BlockOfU64(0), {}, /*format=*/true);
    ASSERT_TRUE(pd.ok());
    ASSERT_TRUE(NativeWrite(pd.value().get(), 2, BlockOfU64(99)).ok());
    ASSERT_TRUE(NativeBarrier(pd.value().get()).ok());
  }
  auto pd = PosixDisk::Open(path_, 4, BlockOfU64(0), {}, /*format=*/false);
  ASSERT_TRUE(pd.ok()) << pd.status().ToString();
  EXPECT_EQ(NativeReadU64(pd.value().get(), 2), 99u);
  EXPECT_EQ(NativeReadU64(pd.value().get(), 1), 0u);
}

TEST_F(PosixDiskTest, OpenRejectsWrongSizeImage) {
  {
    auto pd = PosixDisk::Open(path_, 4, BlockOfU64(0), {}, /*format=*/true);
    ASSERT_TRUE(pd.ok());
  }
  auto pd = PosixDisk::Open(path_, 5, BlockOfU64(0), {}, /*format=*/false);
  EXPECT_EQ(pd.status().code(), StatusCode::kInvalid);
}

TEST_F(PosixDiskTest, WritebackBuffersUntilBarrier) {
  PosixDisk::Options opts;
  opts.writeback = true;
  auto pd = PosixDisk::Open(path_, 4, BlockOfU64(7), opts, /*format=*/true);
  ASSERT_TRUE(pd.ok());
  PosixDisk* d = pd.value().get();
  ASSERT_TRUE(NativeWrite(d, 1, BlockOfU64(42)).ok());
  // Read-your-writes through the buffer; the durable image is unchanged.
  EXPECT_EQ(NativeReadU64(d, 1), 42u);
  EXPECT_EQ(U64OfBlock(d->PeekDurable(1)), 7u);
  EXPECT_TRUE(d->HasPending());
  ASSERT_TRUE(NativeBarrier(d).ok());
  EXPECT_EQ(U64OfBlock(d->PeekDurable(1)), 42u);
  EXPECT_FALSE(d->HasPending());
}

TEST_F(PosixDiskTest, FailedFsyncSurfacesStatusAndKeepsPending) {
  PosixDisk::Options opts;
  opts.writeback = true;
  auto pd = PosixDisk::Open(path_, 4, BlockOfU64(0), opts, /*format=*/true);
  ASSERT_TRUE(pd.ok());
  PosixDisk* d = pd.value().get();
  ASSERT_TRUE(NativeWrite(d, 0, BlockOfU64(5)).ok());
  d->CloseFdForTesting();
  Status s = NativeBarrier(d);
  EXPECT_FALSE(s.ok());
  // A failed barrier must not pretend the writes are durable.
  EXPECT_TRUE(d->HasPending());
}

TEST_F(PosixDiskTest, FailedPwriteSurfacesStatus) {
  auto pd = PosixDisk::Open(path_, 4, BlockOfU64(0), {}, /*format=*/true);
  ASSERT_TRUE(pd.ok());
  pd.value()->CloseFdForTesting();
  EXPECT_FALSE(NativeWrite(pd.value().get(), 0, BlockOfU64(5)).ok());
}

TEST_F(PosixDiskTest, OutOfRangeAndOversizeAreInvalid) {
  auto pd = PosixDisk::Open(path_, 4, BlockOfU64(0), {}, /*format=*/true);
  ASSERT_TRUE(pd.ok());
  auto read_oob = [&]() -> Task<StatusCode> {
    co_return (co_await pd.value()->Read(4)).status().code();
  };
  EXPECT_EQ(proc::RunSync(read_oob()), StatusCode::kInvalid);
  EXPECT_EQ(NativeWrite(pd.value().get(), 4, BlockOfU64(1)).code(), StatusCode::kInvalid);
  EXPECT_EQ(NativeWrite(pd.value().get(), 0, Block(600, 0)).code(), StatusCode::kInvalid);
}

// --- PwriteAll / PreadAll: EINTR and short-transfer handling ---

TEST(PosixDiskIo, PwriteAllRetriesEintrAndShortWrites) {
  uint8_t file[64] = {0};
  int calls = 0;
  auto pw = [&](int, const void* buf, uint64_t n, int64_t off) -> int64_t {
    ++calls;
    if (calls % 2 == 1) {
      errno = EINTR;
      return -1;  // every other call is interrupted before any progress
    }
    (void)n;  // write exactly one byte per successful call
    file[off] = *static_cast<const uint8_t*>(buf);
    return 1;
  };
  const uint8_t data[] = {10, 20, 30, 40, 50};
  Status s = PosixDisk::PwriteAll(-1, data, sizeof(data), 8, pw);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(std::memcmp(file + 8, data, sizeof(data)), 0);
  EXPECT_EQ(calls, 10);  // 5 EINTRs interleaved with 5 one-byte writes
}

TEST(PosixDiskIo, PwriteAllFailsOnZeroProgressAndHardError) {
  auto zero = [](int, const void*, uint64_t, int64_t) -> int64_t { return 0; };
  uint8_t b = 0;
  EXPECT_FALSE(PosixDisk::PwriteAll(-1, &b, 1, 0, zero).ok());
  auto eio = [](int, const void*, uint64_t, int64_t) -> int64_t {
    errno = EIO;
    return -1;
  };
  EXPECT_FALSE(PosixDisk::PwriteAll(-1, &b, 1, 0, eio).ok());
}

TEST(PosixDiskIo, PreadAllRetriesEintrAndShortReads) {
  const uint8_t file[] = {0, 0, 0, 11, 22, 33, 44};
  int calls = 0;
  auto pr = [&](int, void* buf, uint64_t, int64_t off) -> int64_t {
    ++calls;
    if (calls == 1) {
      errno = EINTR;
      return -1;
    }
    *static_cast<uint8_t*>(buf) = file[off];
    return 1;
  };
  uint8_t out[4] = {0};
  Status s = PosixDisk::PreadAll(-1, out, sizeof(out), 3, pr);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(std::memcmp(out, file + 3, sizeof(out)), 0);
}

TEST(PosixDiskIo, PreadAllFailsOnEof) {
  auto eof = [](int, void*, uint64_t, int64_t) -> int64_t { return 0; };
  uint8_t b = 0;
  EXPECT_FALSE(PosixDisk::PreadAll(-1, &b, 1, 0, eof).ok());
}

}  // namespace
}  // namespace perennial::disk
