// Tests for the block-device models.
#include <gtest/gtest.h>

#include "src/disk/disk.h"
#include "tests/sim_util.h"

namespace perennial::disk {
namespace {

using perennial::testing::SimRun;
using proc::Task;

TEST(BlockCodec, U64RoundTrips) {
  EXPECT_EQ(U64OfBlock(BlockOfU64(0)), 0u);
  EXPECT_EQ(U64OfBlock(BlockOfU64(1)), 1u);
  EXPECT_EQ(U64OfBlock(BlockOfU64(0xDEADBEEFCAFEF00DULL)), 0xDEADBEEFCAFEF00DULL);
}

TEST(BlockCodec, ShortBlockDecodesLowBytes) {
  Block b{0x01, 0x02};
  EXPECT_EQ(U64OfBlock(b), 0x0201u);
}

TEST(DiskTest, ReadReturnsInitialValue) {
  goose::World world;
  Disk d(&world, 4, BlockOfU64(0));
  auto body = [&]() -> Task<uint64_t> {
    Result<Block> r = co_await d.Read(2);
    co_return U64OfBlock(r.value());
  };
  EXPECT_EQ(SimRun(body()), 0u);
}

TEST(DiskTest, WriteThenReadRoundTrips) {
  goose::World world;
  Disk d(&world, 4, BlockOfU64(0));
  auto body = [&]() -> Task<uint64_t> {
    (void)co_await d.Write(1, BlockOfU64(77));
    Result<Block> r = co_await d.Read(1);
    co_return U64OfBlock(r.value());
  };
  EXPECT_EQ(SimRun(body()), 77u);
}

TEST(DiskTest, OutOfRangeReadIsInvalid) {
  goose::World world;
  Disk d(&world, 4, BlockOfU64(0));
  auto body = [&]() -> Task<StatusCode> {
    Result<Block> r = co_await d.Read(4);
    co_return r.status().code();
  };
  EXPECT_EQ(SimRun(body()), StatusCode::kInvalid);
}

TEST(DiskTest, FailedDiskReadsFail) {
  goose::World world;
  Disk d(&world, 4, BlockOfU64(0));
  d.Fail();
  auto body = [&]() -> Task<StatusCode> {
    Result<Block> r = co_await d.Read(0);
    co_return r.status().code();
  };
  EXPECT_EQ(SimRun(body()), StatusCode::kFailed);
}

TEST(DiskTest, FailedDiskAbsorbsWritesAndReportsFailure) {
  goose::World world;
  Disk d(&world, 4, BlockOfU64(5));
  d.Fail();
  auto body = [&]() -> Task<Status> { co_return co_await d.Write(0, BlockOfU64(9)); };
  EXPECT_EQ(SimRun(body()).code(), StatusCode::kFailed);  // caller is told
  EXPECT_EQ(U64OfBlock(d.PeekBlock(0)), 5u);              // unchanged
}

TEST(DiskTest, ContentsSurviveCrash) {
  goose::World world;
  Disk d(&world, 2, BlockOfU64(0));
  auto body = [&]() -> Task<Status> { co_return co_await d.Write(0, BlockOfU64(123)); };
  (void)SimRun(body());
  world.Crash();
  EXPECT_EQ(U64OfBlock(d.PeekBlock(0)), 123u);
}

TEST(DiskTest, FailureSurvivesCrash) {
  goose::World world;
  Disk d(&world, 2, BlockOfU64(0));
  d.Fail();
  world.Crash();
  EXPECT_TRUE(d.failed());
}

TEST(TwoDisksTest, IndependentContents) {
  goose::World world;
  TwoDisks disks(&world, 3, BlockOfU64(0));
  auto body = [&]() -> Task<Status> { co_return co_await disks.d1.Write(0, BlockOfU64(1)); };
  (void)SimRun(body());
  EXPECT_EQ(U64OfBlock(disks.d1.PeekBlock(0)), 1u);
  EXPECT_EQ(U64OfBlock(disks.d2.PeekBlock(0)), 0u);
}

TEST(TwoDisksTest, OneDiskCanFailIndependently) {
  goose::World world;
  TwoDisks disks(&world, 3, BlockOfU64(0));
  disks.d1.Fail();
  EXPECT_TRUE(disks.d1.failed());
  EXPECT_FALSE(disks.d2.failed());
}

}  // namespace
}  // namespace perennial::disk
