// Sleep-set POR equivalence (the tier2-por suite): partial-order reduction
// is an OPTIMIZATION, so its observable output must be bit-identical to the
// unreduced checker. Pruning may only shrink the execution count — never
// the set of distinct histories, any verdict, or the first violation found.
//
// The suite asserts, across every §9.1 system and every seeded-bug
// mutation (fault-injection variants included):
//   * correct systems: 0 violations with POR on and off, the identical
//     number of DISTINCT histories (measured as histories_checked -
//     histories_deduped under fingerprint dedup), and executions_por <=
//     executions_nopor;
//   * buggy systems (max_violations = 1): the first violation is
//     bit-identical — kind, detail, and schedule trace — because sleep
//     sets never prune the DFS-leftmost member of a commutation class;
//   * POR composes with the other knobs: the preemption-bound x dedup x
//     POR matrix is verdict-invariant (POR self-disables under bounding),
//     serial and ParallelExplorer agree field-for-field with POR on, and
//     spec-prefix memoization changes no verdict;
//   * the progress callback observes post-dedup counts monotonically.
//
// Like tier2-parallel/tier2-faults, this suite is also meant to run under
// -DPCC_SANITIZE=thread: the shared verdict/frontier caches are the new
// cross-worker state.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/mailboat/mail_harness.h"
#include "src/refine/explorer.h"
#include "src/refine/parallel_explorer.h"
#include "src/systems/ftl/ftl_harness.h"
#include "src/systems/kvs/kv_harness.h"
#include "src/systems/pattern_harness.h"
#include "src/systems/repl/repl_harness.h"
#include "src/systems/txnlog/txn_harness.h"

namespace perennial::systems {
namespace {

using refine::Explorer;
using refine::ExplorerOptions;
using refine::ExplorerProgress;
using refine::ParallelExplorer;
using refine::Report;

void ExpectSameViolations(const Report& por, const Report& nopor) {
  ASSERT_EQ(por.violations.size(), nopor.violations.size())
      << "POR:\n" << por.Summary() << "\nunreduced:\n" << nopor.Summary();
  for (size_t i = 0; i < nopor.violations.size(); ++i) {
    EXPECT_EQ(por.violations[i].kind, nopor.violations[i].kind) << "violation " << i;
    EXPECT_EQ(por.violations[i].detail, nopor.violations[i].detail) << "violation " << i;
    EXPECT_EQ(por.violations[i].trace, nopor.violations[i].trace) << "violation " << i;
  }
}

// Correct-system equivalence: full enumeration with and without POR must
// agree on the verdict AND on the set of distinct histories — the checker's
// entire input. Distinctness is observed through fingerprint dedup:
// histories_checked - histories_deduped counts first-time fingerprints.
// `expect_reduction` additionally pins that POR actually pruned something
// (left false for workloads whose steps all conflict, e.g. goosefs-backed
// systems where file-system steps are footprint-opaque).
template <typename Spec, typename Factory>
void ExpectPorEquivalence(Spec spec, Factory factory, ExplorerOptions opts,
                          bool expect_reduction = true) {
  opts.max_violations = 1 << 20;
  opts.dedup_histories = true;
  ExplorerOptions unreduced = opts;
  unreduced.use_por = false;
  ExplorerOptions reduced = opts;
  reduced.use_por = true;
  Report nopor = Explorer<Spec>(spec, factory, unreduced).Run();
  Report por = Explorer<Spec>(spec, factory, reduced).Run();
  ASSERT_FALSE(nopor.truncated) << "workload too large for equivalence: " << nopor.Summary();
  ASSERT_FALSE(por.truncated) << por.Summary();
  EXPECT_LE(por.executions, nopor.executions);
  if (expect_reduction) {
    EXPECT_LT(por.executions, nopor.executions)
        << "POR pruned nothing on a workload with independent steps";
  }
  EXPECT_EQ(por.histories_checked - por.histories_deduped,
            nopor.histories_checked - nopor.histories_deduped)
      << "POR changed the set of distinct histories\nPOR:\n"
      << por.Summary() << "\nunreduced:\n" << nopor.Summary();
  ExpectSameViolations(por, nopor);
}

// Buggy-system equivalence: stop at the first violation (the configuration
// real bug hunts use) and require it to be bit-identical. Violation
// MULTIPLICITY under full enumeration is not POR-invariant — equivalent
// schedules each re-manifest the same bug — but the first one found is:
// sleep sets never prune the DFS-leftmost execution of a commutation
// class, and the pruned DFS order is a subsequence of the unpruned order.
template <typename Spec, typename Factory>
void ExpectPorFirstViolation(Spec spec, Factory factory, ExplorerOptions opts) {
  opts.max_violations = 1;
  ExplorerOptions unreduced = opts;
  unreduced.use_por = false;
  ExplorerOptions reduced = opts;
  reduced.use_por = true;
  Report nopor = Explorer<Spec>(spec, factory, unreduced).Run();
  Report por = Explorer<Spec>(spec, factory, reduced).Run();
  EXPECT_LE(por.executions, nopor.executions);
  EXPECT_EQ(por.ok(), nopor.ok()) << "POR:\n" << por.Summary() << "\nunreduced:\n"
                                  << nopor.Summary();
  ExpectSameViolations(por, nopor);
}

// ---------- All ten §9.1 systems, POR on == POR off ----------

TEST(PorEquivalence, ReplTwoWriters) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectPorEquivalence(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
}

TEST(PorEquivalence, ReplFailover) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 9)}, {ReplSpec::MakeRead(0)}};
  options.with_disk1_failure_event = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectPorEquivalence(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
}

TEST(PorEquivalence, ShadowTwoWriters) {
  ShadowHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeWrite(3, 4)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectPorEquivalence(PairSpec{}, [&] { return MakeShadowInstance(options); }, opts);
}

TEST(PorEquivalence, WalTwoWriters) {
  WalHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeWrite(3, 4)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectPorEquivalence(PairSpec{}, [&] { return MakeWalInstance(options); }, opts);
}

TEST(PorEquivalence, WalRecoveryCrash) {
  WalHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2)}};
  ExplorerOptions opts;
  opts.max_crashes = 2;  // the second crash can land inside recovery
  // One client thread: no sibling thread alternatives exist to commute, so
  // the schedule space is all crash placement — which POR never prunes.
  ExpectPorEquivalence(PairSpec{}, [&] { return MakeWalInstance(options); }, opts,
                       /*expect_reduction=*/false);
}

TEST(PorEquivalence, GroupCommitWritersAndFlush) {
  GcHarnessOptions options;
  options.client_ops = {{GcSpec::MakeWrite(1)}, {GcSpec::MakeWrite(2)}, {GcSpec::MakeFlush()}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectPorEquivalence(GcSpec{}, [&] { return MakeGcInstance(options); }, opts);
}

TEST(PorEquivalence, MailboatDeliverVsPickup) {
  mailboat::MailHarnessOptions options;
  options.num_users = 1;
  options.client_scripts = {
      {{mailboat::MailAction::Kind::kDeliver, 0, "a"}},
      {{mailboat::MailAction::Kind::kPickupDeleteAllUnlock, 0, ""}},
  };
  ExplorerOptions opts;
  opts.max_crashes = 1;
  // GooseFs ops carry per-inode/per-entry footprints, so the deliver and
  // pickup threads commute whenever they touch disjoint fs state — POR must
  // both prune AND preserve the full set of distinct histories.
  ExpectPorEquivalence(mailboat::MailSpec{1}, [&] { return mailboat::MakeMailInstance(options); },
                       opts, /*expect_reduction=*/true);
}

TEST(PorEquivalence, MailboatOpaqueFootprintsStillEquivalent) {
  // Soundness control: the same workload with blanket-opaque fs footprints.
  // Opaque steps conflict with everything, so this checks the fallback path
  // (no fs pruning) still agrees with full enumeration.
  mailboat::MailHarnessOptions options;
  options.num_users = 1;
  options.opaque_fs_footprints = true;
  options.client_scripts = {
      {{mailboat::MailAction::Kind::kDeliver, 0, "a"}},
      {{mailboat::MailAction::Kind::kPickupDeleteAllUnlock, 0, ""}},
  };
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectPorEquivalence(mailboat::MailSpec{1}, [&] { return mailboat::MakeMailInstance(options); },
                       opts, /*expect_reduction=*/false);
}

TEST(PorEquivalence, FtlTwoWriters) {
  FtlHarnessOptions options;
  options.num_lbas = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectPorEquivalence(ReplSpec{1}, [&] { return MakeFtlInstance(options); }, opts);
}

TEST(PorEquivalence, TxnLogBatchVsReader) {
  TxnHarnessOptions options;
  options.num_addrs = 2;
  options.client_ops = {{TxnSpec::MakeBatch({{0, 1}, {1, 2}})}, {TxnSpec::MakeRead(0)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectPorEquivalence(TxnSpec{2}, [&] { return MakeTxnInstance(options); }, opts);
}

TEST(PorEquivalence, DurableKvTxnVsReader) {
  KvHarnessOptions options;
  options.num_keys = 2;
  options.client_ops = {{KvSpec::MakePutPair(0, 1, 1, 2)}, {KvSpec::MakeGet(0)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectPorEquivalence(KvSpec{2}, [&] { return MakeKvInstance(options); }, opts);
}

// ---------- Every seeded-bug mutation: identical first violation ----------

TEST(PorFirstViolation, ReplMutations) {
  struct Case {
    const char* name;
    ReplicatedDisk::Mutations mutations;
    int max_crashes;
  };
  for (const Case& c : std::vector<Case>{
           {"skip_locking", {.skip_locking = true}, 0},
           {"skip_second_write", {.skip_second_write = true}, 0},
           {"recovery_zeroes", {.recovery_zeroes = true}, 1},
           {"skip_recovery", {.skip_recovery = true}, 1},
       }) {
    SCOPED_TRACE(c.name);
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = c.mutations.skip_locking
                             ? std::vector<std::vector<ReplSpec::Op>>{{ReplSpec::MakeWrite(0, 5)},
                                                                      {ReplSpec::MakeWrite(0, 7)}}
                             : std::vector<std::vector<ReplSpec::Op>>{{ReplSpec::MakeWrite(0, 5)}};
    options.mutations = c.mutations;
    if (c.mutations.skip_second_write || c.mutations.skip_recovery) {
      options.with_disk1_failure_event = true;  // expose the stale disk 2
      options.observe_repeats = 2;
    }
    ExplorerOptions opts;
    opts.max_crashes = c.max_crashes;
    ExpectPorFirstViolation(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
  }
}

TEST(PorFirstViolation, ShadowMutations) {
  for (bool flip_before_data : {false, true}) {
    SCOPED_TRACE(flip_before_data ? "flip_before_data" : "in_place_update");
    ShadowHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)}};
    options.mutations.in_place_update = !flip_before_data;
    options.mutations.flip_before_data = flip_before_data;
    ExplorerOptions opts;
    opts.max_crashes = 1;
    ExpectPorFirstViolation(PairSpec{}, [&] { return MakeShadowInstance(options); }, opts);
  }
}

TEST(PorFirstViolation, WalMutations) {
  {
    SCOPED_TRACE("apply_before_commit");
    WalHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)}};
    options.mutations.apply_before_commit = true;
    ExplorerOptions opts;
    opts.max_crashes = 1;
    ExpectPorFirstViolation(PairSpec{}, [&] { return MakeWalInstance(options); }, opts);
  }
  {
    SCOPED_TRACE("skip_recovery");
    WalHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2)}};
    options.mutations.skip_recovery = true;
    options.observer_ops = {PairSpec::MakeWrite(5, 6), PairSpec::MakeRead()};
    ExplorerOptions opts;
    opts.max_crashes = 1;
    ExpectPorFirstViolation(PairSpec{}, [&] { return MakeWalInstance(options); }, opts);
  }
  {
    SCOPED_TRACE("recovery_discards_log");
    WalHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2)}};
    options.mutations.recovery_discards_log = true;
    ExplorerOptions opts;
    opts.max_crashes = 1;
    ExpectPorFirstViolation(PairSpec{}, [&] { return MakeWalInstance(options); }, opts);
  }
}

TEST(PorFirstViolation, GroupCommitMutation) {
  GcHarnessOptions options;
  options.client_ops = {
      {GcSpec::MakeWrite(7), GcSpec::MakeFlush(), GcSpec::MakeWrite(9), GcSpec::MakeFlush()}};
  options.mutations.commit_count_first = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectPorFirstViolation(GcSpec{}, [&] { return MakeGcInstance(options); }, opts);
}

TEST(PorFirstViolation, FtlMutations) {
  {
    SCOPED_TRACE("reuse_sequence_numbers");
    FtlHarnessOptions options;
    options.num_lbas = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 1), ReplSpec::MakeWrite(0, 2)}};
    options.mutations.reuse_sequence_numbers = true;
    ExplorerOptions opts;
    opts.max_crashes = 1;
    ExpectPorFirstViolation(ReplSpec{1}, [&] { return MakeFtlInstance(options); }, opts);
  }
  {
    SCOPED_TRACE("volatile_write");
    FtlHarnessOptions options;
    options.num_lbas = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
    options.mutations.volatile_write = true;
    ExplorerOptions opts;
    opts.max_crashes = 1;
    ExpectPorFirstViolation(ReplSpec{1}, [&] { return MakeFtlInstance(options); }, opts);
  }
}

TEST(PorFirstViolation, TxnLogMutations) {
  {
    SCOPED_TRACE("header_before_records");
    TxnHarnessOptions options;
    options.num_addrs = 1;
    options.client_ops = {{TxnSpec::MakeWrite(0, 5), TxnSpec::MakeWrite(0, 7)}};
    options.mutations.header_before_records = true;
    ExplorerOptions opts;
    opts.max_crashes = 1;
    ExpectPorFirstViolation(TxnSpec{1}, [&] { return MakeTxnInstance(options); }, opts);
  }
  {
    SCOPED_TRACE("truncate_before_apply");
    TxnHarnessOptions options;
    options.num_addrs = 1;
    options.client_ops = {{TxnSpec::MakeWrite(0, 5), TxnSpec::MakeCheckpoint()}};
    options.mutations.truncate_before_apply = true;
    ExplorerOptions opts;
    opts.max_crashes = 1;
    ExpectPorFirstViolation(TxnSpec{1}, [&] { return MakeTxnInstance(options); }, opts);
  }
}

TEST(PorFirstViolation, KvMutations) {
  {
    SCOPED_TRACE("unordered_locks");
    KvHarnessOptions options;
    options.num_keys = 2;
    options.client_ops = {{KvSpec::MakePutPair(0, 1, 1, 2)}, {KvSpec::MakePutPair(1, 3, 0, 4)}};
    options.mutations.unordered_locks = true;
    ExplorerOptions opts;
    opts.max_crashes = 0;
    ExpectPorFirstViolation(KvSpec{2}, [&] { return MakeKvInstance(options); }, opts);
  }
  {
    SCOPED_TRACE("apply_before_commit");
    KvHarnessOptions options;
    options.num_keys = 2;
    options.client_ops = {{KvSpec::MakePutPair(0, 1, 1, 2)}};
    options.mutations.apply_before_commit = true;
    ExplorerOptions opts;
    opts.max_crashes = 1;
    ExpectPorFirstViolation(KvSpec{2}, [&] { return MakeKvInstance(options); }, opts);
  }
  {
    SCOPED_TRACE("skip_recovery");
    KvHarnessOptions options;
    options.num_keys = 2;
    options.client_ops = {{KvSpec::MakePut(0, 5)}};
    options.mutations.skip_recovery = true;
    ExplorerOptions opts;
    opts.max_crashes = 1;
    ExpectPorFirstViolation(KvSpec{2}, [&] { return MakeKvInstance(options); }, opts);
  }
}

// GooseFs footprint soundness: precise per-inode/per-entry footprints must
// be a conservative superset of each op's real accesses. If they were not,
// sleep sets could prune the schedule that manifests a bug. Each seeded
// Mailboat mutation is explored twice under POR — precise footprints vs
// blanket-opaque ones — and the first counterexample must be bit-identical
// (both orders are subsequences of the same unpruned DFS order, and sleep
// sets never prune the leftmost execution of a commutation class).
TEST(PorFootprintSoundness, MailboatMutationsPreciseVsOpaque) {
  auto run_both = [](mailboat::MailHarnessOptions options, ExplorerOptions opts) {
    opts.use_por = true;
    opts.max_violations = 1;
    options.opaque_fs_footprints = true;
    Report opaque =
        Explorer<mailboat::MailSpec>(mailboat::MailSpec{1},
                                     [&] { return mailboat::MakeMailInstance(options); }, opts)
            .Run();
    options.opaque_fs_footprints = false;
    Report precise =
        Explorer<mailboat::MailSpec>(mailboat::MailSpec{1},
                                     [&] { return mailboat::MakeMailInstance(options); }, opts)
            .Run();
    EXPECT_LE(precise.executions, opaque.executions);
    EXPECT_EQ(precise.ok(), opaque.ok())
        << "precise:\n" << precise.Summary() << "\nopaque:\n" << opaque.Summary();
    ExpectSameViolations(precise, opaque);
    return precise;
  };
  {
    SCOPED_TRACE("pickup_512_loop");
    mailboat::MailHarnessOptions options;
    options.num_users = 1;
    options.read_size = 2;
    options.client_scripts = {{{mailboat::MailAction::Kind::kDeliver, 0, "xy"},
                               {mailboat::MailAction::Kind::kPickupUnlock, 0, ""}}};
    options.mutations.pickup_512_loop = true;
    options.observe_mailboxes = false;
    ExplorerOptions opts;
    opts.max_crashes = 0;
    opts.max_steps_per_run = 300;
    Report r = run_both(options, opts);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.violations[0].kind, "step-bound");
  }
  {
    SCOPED_TRACE("deliver_in_place");
    mailboat::MailHarnessOptions options;
    options.num_users = 1;
    options.chunk_size = 1;  // several appends per message
    options.client_scripts = {
        {{mailboat::MailAction::Kind::kDeliver, 0, "abc"}},
        {{mailboat::MailAction::Kind::kPickupUnlock, 0, ""}},
    };
    options.mutations.deliver_in_place = true;
    ExplorerOptions opts;
    opts.max_crashes = 0;
    Report r = run_both(options, opts);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.violations[0].kind, "non-linearizable");
  }
  {
    SCOPED_TRACE("recovery_deletes_mail");
    mailboat::MailHarnessOptions options;
    options.num_users = 1;
    options.client_scripts = {{{mailboat::MailAction::Kind::kDeliver, 0, "precious"}}};
    options.mutations.recovery_deletes_mail = true;
    ExplorerOptions opts;
    opts.max_crashes = 1;
    Report r = run_both(options, opts);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.violations[0].kind, "non-linearizable");
  }
}

// Fault-injection variants: POR must not interfere with env (fault)
// alternatives — they are never slept, and fault slot mutations conflict
// with every consumer via the kResFaultSlot resource.

TEST(PorFirstViolation, ReplMissingRetryUnderTransientFault) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.mutations.no_retry = true;
  options.fault_plan.transient_writes = 1;
  options.fault_plan.target = ReplicatedDisk::kDisk1;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectPorFirstViolation(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
}

TEST(PorFirstViolation, TxnLogMissingBarrierUnderTornWrite) {
  TxnHarnessOptions options;
  options.num_addrs = 2;
  options.log_capacity = 2;
  options.client_ops = {{TxnSpec::MakeBatch({{0, 1}})}};
  options.mutations.no_write_barrier = true;
  options.fault_plan.torn_writes = 1;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectPorFirstViolation(TxnSpec{2}, [&] { return MakeTxnInstance(options); }, opts);
}

TEST(PorEquivalence, ReplWithRetrySurvivesFaultSweep) {
  // The fixed system under the same transient-write fault: both runs must
  // agree on "0 violations", and POR must still cut the execution count.
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.fault_plan.transient_writes = 1;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectPorEquivalence(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
}

// ---------- Composition with the other exploration knobs ----------

TEST(PorMatrix, BoundsDedupPorVerdictInvariance) {
  // preemption bound {0,1,2,unbounded} x dedup {off,on} x POR {off,on}:
  // within each (bound, dedup) cell, flipping POR may not change the
  // verdict. Bounded cells are exactly equal (POR self-disables: bounding
  // is itself an unsound reduction and the two do not compose soundly);
  // the unbounded cells assert first-violation equality.
  auto run_matrix = [](auto spec, auto factory, bool expect_bug) {
    for (int bound : {0, 1, 2, -1}) {
      for (bool dedup : {false, true}) {
        SCOPED_TRACE("bound=" + std::to_string(bound) + " dedup=" + std::to_string(dedup));
        ExplorerOptions opts;
        opts.max_crashes = 1;
        opts.max_preemptions = bound;
        opts.dedup_histories = dedup;
        opts.max_violations = 1;
        ExplorerOptions unreduced = opts;
        unreduced.use_por = false;
        ExplorerOptions reduced = opts;
        reduced.use_por = true;
        using Spec = decltype(spec);
        Report nopor = Explorer<Spec>(spec, factory, unreduced).Run();
        Report por = Explorer<Spec>(spec, factory, reduced).Run();
        EXPECT_EQ(por.ok(), nopor.ok());
        ExpectSameViolations(por, nopor);
        if (bound >= 0) {
          // POR inactive: the entire report must be identical.
          EXPECT_EQ(por.Summary(), nopor.Summary());
          EXPECT_EQ(por.por_pruned, 0u);
        }
        if (bound < 0 && !expect_bug) {
          EXPECT_TRUE(por.ok()) << por.Summary();
        }
      }
    }
  };
  {
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
    run_matrix(ReplSpec{1}, [&] { return MakeReplInstance(options); }, /*expect_bug=*/false);
  }
  {
    WalHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)}};
    options.mutations.apply_before_commit = true;
    run_matrix(PairSpec{}, [&] { return MakeWalInstance(options); }, /*expect_bug=*/true);
  }
}

TEST(PorParallel, SerialAndParallelAgreeWithPorOn) {
  // ParallelExplorer workers rebuild the serial sleep sets from the POR
  // baggage shipped in their work items; every aggregate field — including
  // por_pruned — must match the serial run bit-for-bit.
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5), ReplSpec::MakeRead(0)},
                        {ReplSpec::MakeWrite(0, 7)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.use_por = true;
  opts.max_violations = 1 << 20;
  Explorer<ReplSpec> serial(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
  Report s = serial.Run();
  ASSERT_FALSE(s.truncated);
  for (int workers : {1, 2, 4}) {
    for (int split_depth : {2, 4, 6}) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " split_depth=" + std::to_string(split_depth));
      ExplorerOptions popts = opts;
      popts.num_workers = workers;
      popts.split_depth = split_depth;
      ParallelExplorer<ReplSpec> parallel(ReplSpec{1}, [&] { return MakeReplInstance(options); },
                                          popts);
      Report p = parallel.Run();
      EXPECT_EQ(p.executions, s.executions);
      EXPECT_EQ(p.total_steps, s.total_steps);
      EXPECT_EQ(p.crashes_injected, s.crashes_injected);
      EXPECT_EQ(p.histories_checked, s.histories_checked);
      EXPECT_EQ(p.por_pruned, s.por_pruned);
      ExpectSameViolations(p, s);
    }
  }
}

TEST(PorMemo, SpecPrefixMemoizationChangesNoVerdict) {
  auto check = [](auto spec, auto factory, bool expect_bug) {
    ExplorerOptions opts;
    opts.max_crashes = 1;
    opts.max_violations = 1;
    ExplorerOptions plain = opts;
    plain.memoize_spec_prefixes = false;
    ExplorerOptions memo = opts;
    memo.memoize_spec_prefixes = true;
    using Spec = decltype(spec);
    Report p = Explorer<Spec>(spec, factory, plain).Run();
    Report m = Explorer<Spec>(spec, factory, memo).Run();
    // Memoization only short-circuits the spec search: the exploration
    // itself is untouched, so executions match exactly; resumed searches
    // skip already-counted states, so the memoized count never exceeds.
    EXPECT_EQ(m.executions, p.executions);
    EXPECT_LE(m.spec_states_explored, p.spec_states_explored);
    EXPECT_EQ(m.ok(), p.ok());
    EXPECT_EQ(m.ok(), !expect_bug);
    ExpectSameViolations(m, p);
  };
  {
    ReplHarnessOptions options;
    options.num_blocks = 1;
    options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
    check(ReplSpec{1}, [&] { return MakeReplInstance(options); }, /*expect_bug=*/false);
  }
  {
    WalHarnessOptions options;
    options.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)}};
    options.mutations.apply_before_commit = true;
    check(PairSpec{}, [&] { return MakeWalInstance(options); }, /*expect_bug=*/true);
  }
  {
    // Group commit: deep histories whose shared prefixes interleave memo
    // cache hits with spine resume. Regression for a stale-spine bug: a
    // cache hit deeper than the resume point used to leave a hole of
    // previous-history frontiers that a later resume could land in.
    GcHarnessOptions options;
    options.client_ops = {{GcSpec::MakeWrite(1)}, {GcSpec::MakeWrite(2)}, {GcSpec::MakeFlush()}};
    check(GcSpec{}, [&] { return MakeGcInstance(options); }, /*expect_bug=*/false);
  }
}

TEST(PorMemo, ByteCappedCachesChangeNoVerdict) {
  // Whole-shard eviction under a byte cap may only convert cache hits into
  // misses: executions, histories checked, and every verdict are unchanged;
  // only the dedup/memo hit rates may drop. The accounted total must never
  // exceed the cap (Insert drops the entry rather than overshooting), which
  // is what keeps checkpoint restore eviction-free and deterministic.
  GcHarnessOptions options;
  options.client_ops = {{GcSpec::MakeWrite(1)}, {GcSpec::MakeWrite(2)}, {GcSpec::MakeFlush()}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.max_violations = 1 << 20;
  opts.dedup_histories = true;
  opts.memoize_spec_prefixes = true;
  Report baseline = Explorer<GcSpec>(GcSpec{}, [&] { return MakeGcInstance(options); }, opts).Run();
  ASSERT_GT(baseline.histories_deduped, 0u);

  constexpr size_t kCap = 2048;
  refine::VerdictCache verdicts;
  Explorer<GcSpec>::FrontierCache frontiers;
  verdicts.set_max_bytes(kCap);
  frontiers.set_max_bytes(kCap);
  Explorer<GcSpec> capped(GcSpec{}, [&] { return MakeGcInstance(options); }, opts);
  capped.set_verdict_cache(&verdicts);
  capped.set_frontier_cache(&frontiers);
  Report r = capped.Run();

  EXPECT_GT(verdicts.evictions(), 0u);
  EXPECT_LE(verdicts.bytes(), kCap);
  EXPECT_LE(frontiers.bytes(), kCap);
  EXPECT_EQ(r.executions, baseline.executions);
  EXPECT_EQ(r.total_steps, baseline.total_steps);
  EXPECT_EQ(r.crashes_injected, baseline.crashes_injected);
  EXPECT_EQ(r.histories_checked, baseline.histories_checked);
  EXPECT_LE(r.histories_deduped, baseline.histories_deduped);
  EXPECT_EQ(r.ok(), baseline.ok());
  ExpectSameViolations(r, baseline);
}

// ---------- Progress callback: post-dedup counts, monotone ----------

TEST(PorProgress, CallbackObservesPostDedupCountsMonotonically) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.dedup_histories = true;
  opts.use_por = true;
  opts.max_violations = 1 << 20;
  opts.progress_interval = 1;  // observe after every execution
  std::vector<ExplorerProgress> samples;
  opts.progress_callback = [&](const ExplorerProgress& p) { samples.push_back(p); };
  Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(samples.empty());
  for (size_t i = 0; i < samples.size(); ++i) {
    const ExplorerProgress& p = samples[i];
    // The callback fires after the execution's dedup decision, so the
    // counts are internally consistent at every observation point.
    EXPECT_LE(p.histories_deduped, p.histories_checked) << "sample " << i;
    EXPECT_LE(p.histories_checked, p.executions) << "sample " << i;
    if (i > 0) {
      const ExplorerProgress& q = samples[i - 1];
      EXPECT_LT(q.executions, p.executions) << "sample " << i;
      EXPECT_LE(q.total_steps, p.total_steps) << "sample " << i;
      EXPECT_LE(q.histories_checked, p.histories_checked) << "sample " << i;
      EXPECT_LE(q.histories_deduped, p.histories_deduped) << "sample " << i;
      EXPECT_LE(q.por_pruned, p.por_pruned) << "sample " << i;
      EXPECT_LE(q.violations, p.violations) << "sample " << i;
    }
  }
  // With interval 1 the final sample is the finished run.
  const ExplorerProgress& last = samples.back();
  EXPECT_EQ(last.executions, report.executions);
  EXPECT_EQ(last.histories_checked, report.histories_checked);
  EXPECT_EQ(last.histories_deduped, report.histories_deduped);
  EXPECT_EQ(last.por_pruned, report.por_pruned);
  EXPECT_GT(report.histories_deduped, 0u) << "workload produced no duplicate histories";
}

}  // namespace
}  // namespace perennial::systems
