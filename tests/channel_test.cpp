// Tests for Go channels in the Goose layer.
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "src/base/panic.h"
#include "src/goose/channel.h"
#include "src/goose/world.h"
#include "tests/sim_util.h"

namespace perennial::goose {
namespace {

using perennial::testing::DrainLowestFirst;
using perennial::testing::DrainRoundRobin;
using perennial::testing::SimRun;
using perennial::testing::SimRunVoid;
using proc::Scheduler;
using proc::SchedulerScope;
using proc::Task;

TEST(ChanTest, SendThenRecvSequential) {
  World world;
  Chan<int> ch(&world, 4);
  auto body = [&]() -> Task<int> {
    co_await ch.Send(5);
    co_await ch.Send(6);
    std::optional<int> a = co_await ch.Recv();
    std::optional<int> b = co_await ch.Recv();
    co_return *a * 10 + *b;
  };
  EXPECT_EQ(SimRun(body()), 56);  // FIFO order
}

TEST(ChanTest, RecvBlocksUntilSend) {
  World world;
  Chan<int> ch(&world, 1);
  Scheduler sched;
  SchedulerScope scope(&sched);
  int got = 0;
  auto receiver = [&]() -> Task<void> { got = *(co_await ch.Recv()); };
  auto sender = [&]() -> Task<void> { co_await ch.Send(9); };
  Scheduler::Tid rx = sched.Spawn(receiver());
  sched.Spawn(sender());
  sched.Step(rx);
  sched.Step(rx);  // receiver blocks (empty channel)
  EXPECT_FALSE(sched.IsDone(rx));
  DrainLowestFirst(sched);
  EXPECT_EQ(got, 9);
}

TEST(ChanTest, SendBlocksWhenFull) {
  World world;
  Chan<int> ch(&world, 1);
  Scheduler sched;
  SchedulerScope scope(&sched);
  std::vector<int> got;
  auto sender = [&]() -> Task<void> {
    co_await ch.Send(1);
    co_await ch.Send(2);  // blocks: capacity 1
  };
  auto receiver = [&]() -> Task<void> {
    got.push_back(*(co_await ch.Recv()));
    got.push_back(*(co_await ch.Recv()));
  };
  sched.Spawn(sender());
  sched.Spawn(receiver());
  DrainRoundRobin(sched);
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(ChanTest, CloseDrainsThenSignalsEnd) {
  World world;
  Chan<std::string> ch(&world, 4);
  auto body = [&]() -> Task<int> {
    co_await ch.Send(std::string("a"));
    co_await ch.Close();
    std::optional<std::string> first = co_await ch.Recv();
    std::optional<std::string> second = co_await ch.Recv();
    co_return (first.has_value() ? 1 : 0) + (second.has_value() ? 10 : 0);
  };
  EXPECT_EQ(SimRun(body()), 1);  // one value, then closed
}

TEST(ChanTest, RecvOnClosedEmptyWakesBlockedReceiver) {
  World world;
  Chan<int> ch(&world, 1);
  Scheduler sched;
  SchedulerScope scope(&sched);
  bool got_end = false;
  auto receiver = [&]() -> Task<void> { got_end = !(co_await ch.Recv()).has_value(); };
  auto closer = [&]() -> Task<void> { co_await ch.Close(); };
  Scheduler::Tid rx = sched.Spawn(receiver());
  sched.Spawn(closer());
  sched.Step(rx);
  sched.Step(rx);  // blocks
  DrainLowestFirst(sched);
  EXPECT_TRUE(got_end);
}

TEST(ChanTest, SendOnClosedIsUb) {
  World world;
  Chan<int> ch(&world, 1);
  auto body = [&]() -> Task<void> {
    co_await ch.Close();
    co_await ch.Send(1);
  };
  EXPECT_THROW(SimRunVoid(body()), UbViolation);
}

TEST(ChanTest, DoubleCloseIsUb) {
  World world;
  Chan<int> ch(&world, 1);
  auto body = [&]() -> Task<void> {
    co_await ch.Close();
    co_await ch.Close();
  };
  EXPECT_THROW(SimRunVoid(body()), UbViolation);
}

TEST(ChanTest, TryRecvNeverBlocks) {
  World world;
  Chan<int> ch(&world, 2);
  auto body = [&]() -> Task<int> {
    std::optional<int> empty = co_await ch.TryRecv();
    co_await ch.Send(3);
    std::optional<int> full = co_await ch.TryRecv();
    co_return (empty.has_value() ? 100 : 0) + *full;
  };
  EXPECT_EQ(SimRun(body()), 3);
}

TEST(ChanTest, StaleAfterCrashIsUb) {
  World world;
  Chan<int> ch(&world, 1);
  world.Crash();
  auto body = [&]() -> Task<void> { co_await ch.Send(1); };
  EXPECT_THROW(SimRunVoid(body()), UbViolation);
}

TEST(ChanTest, NativeModeCrossThread) {
  World world;
  Chan<int> ch(&world, 2);
  int sum = 0;
  std::thread producer([&] {
    auto body = [&]() -> Task<void> {
      for (int i = 1; i <= 50; ++i) {
        co_await ch.Send(i);
      }
      co_await ch.Close();
    };
    proc::RunSyncVoid(body());
  });
  std::thread consumer([&] {
    auto body = [&]() -> Task<void> {
      while (true) {
        std::optional<int> v = co_await ch.Recv();
        if (!v.has_value()) {
          co_return;
        }
        sum += *v;
      }
    };
    proc::RunSyncVoid(body());
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(sum, 50 * 51 / 2);
}

TEST(ChanTest, PipelineOfGoroutines) {
  // A three-stage pipeline over two channels, all in simulation.
  World world;
  Chan<int> stage1(&world, 2);
  Chan<int> stage2(&world, 2);
  Scheduler sched;
  SchedulerScope scope(&sched);
  std::vector<int> out;
  auto source = [&]() -> Task<void> {
    for (int i = 1; i <= 4; ++i) {
      co_await stage1.Send(i);
    }
    co_await stage1.Close();
  };
  auto doubler = [&]() -> Task<void> {
    while (true) {
      std::optional<int> v = co_await stage1.Recv();
      if (!v.has_value()) {
        co_await stage2.Close();
        co_return;
      }
      co_await stage2.Send(*v * 2);
    }
  };
  auto sink = [&]() -> Task<void> {
    while (true) {
      std::optional<int> v = co_await stage2.Recv();
      if (!v.has_value()) {
        co_return;
      }
      out.push_back(*v);
    }
  };
  sched.Spawn(source());
  sched.Spawn(doubler());
  sched.Spawn(sink());
  DrainRoundRobin(sched);
  EXPECT_EQ(out, (std::vector<int>{2, 4, 6, 8}));
}

}  // namespace
}  // namespace perennial::goose
