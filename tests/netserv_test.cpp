// Tier-1 loopback tests for the production mail server (src/netserv):
// real sockets against MailNetServer, the GroupCommitter batching/dedup
// contract, EINTR injection through the socket syscall seam, and the
// loadgen driving a small in-process run.
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/netserv/group_commit.h"
#include "src/netserv/harness.h"
#include "src/netserv/loadgen.h"
#include "src/netserv/net.h"
#include "src/netserv/trace_event.h"

namespace perennial::netserv {
namespace {

std::string TestRoot(const char* name) {
  std::string root = "/tmp/pcc-netserv-test-" + std::string(name) + "-" +
                     std::to_string(::getpid());
  std::string cmd = "rm -rf " + root;
  [[maybe_unused]] int rc = std::system(cmd.c_str());
  return root;
}

InprocMailServer::Config SmallConfig(const std::string& root) {
  InprocMailServer::Config config;
  config.root = root;
  config.users = 4;
  config.loops = 2;
  config.executors = 8;
  config.gc_window_us = 300;
  return config;
}

// Reads lines until one arrives; fails the test on EOF.
std::string MustReadLine(BlockingLineConn& conn) {
  std::string line;
  EXPECT_TRUE(conn.ReadLine(&line)) << "connection closed unexpectedly";
  return line;
}

void ExpectPrefix(BlockingLineConn& conn, const std::string& prefix) {
  std::string line = MustReadLine(conn);
  EXPECT_EQ(line.substr(0, prefix.size()), prefix) << "full line: " << line;
}

// Runs a full SMTP delivery of `body_lines` to userN.
void SmtpDeliver(uint16_t port, uint64_t user, const std::vector<std::string>& body_lines) {
  BlockingLineConn conn(ConnectTcp(port));
  ASSERT_GE(conn.fd(), 0);
  ExpectPrefix(conn, "220");
  ASSERT_TRUE(conn.WriteLine("HELO test"));
  ExpectPrefix(conn, "250");
  ASSERT_TRUE(conn.WriteLine("MAIL FROM:<user0@test>"));
  ExpectPrefix(conn, "250");
  ASSERT_TRUE(conn.WriteLine("RCPT TO:<user" + std::to_string(user) + "@test>"));
  ExpectPrefix(conn, "250");
  ASSERT_TRUE(conn.WriteLine("DATA"));
  ExpectPrefix(conn, "354");
  for (const auto& line : body_lines) {
    ASSERT_TRUE(conn.WriteLine(line));
  }
  ASSERT_TRUE(conn.WriteLine("."));
  ExpectPrefix(conn, "250");
  ASSERT_TRUE(conn.WriteLine("QUIT"));
  ExpectPrefix(conn, "221");
}

// Picks up userN's mail: returns the RETR'd contents of each message
// (messages are RETR'd but not deleted unless `delete_all`).
std::vector<std::string> Pop3Fetch(uint16_t port, uint64_t user, bool delete_all) {
  BlockingLineConn conn(ConnectTcp(port));
  EXPECT_GE(conn.fd(), 0);
  ExpectPrefix(conn, "+OK");
  EXPECT_TRUE(conn.WriteLine("USER user" + std::to_string(user)));
  ExpectPrefix(conn, "+OK");
  EXPECT_TRUE(conn.WriteLine("PASS x"));
  ExpectPrefix(conn, "+OK");
  EXPECT_TRUE(conn.WriteLine("LIST"));
  ExpectPrefix(conn, "+OK");
  int count = 0;
  for (;;) {
    std::string line = MustReadLine(conn);
    if (line == ".") {
      break;
    }
    ++count;
  }
  std::vector<std::string> contents;
  for (int i = 1; i <= count; ++i) {
    EXPECT_TRUE(conn.WriteLine("RETR " + std::to_string(i)));
    ExpectPrefix(conn, "+OK");
    std::string body;
    for (;;) {
      std::string line = MustReadLine(conn);
      if (line == ".") {
        break;
      }
      body += line + "\r\n";
    }
    // The response is "+OK\r\n" + contents + "\r\n." and SMTP-delivered
    // contents end in CRLF, so the wire carries one trailing empty line;
    // strip it to recover the stored contents exactly.
    if (body.size() >= 2 && body.compare(body.size() - 2, 2, "\r\n") == 0) {
      body.resize(body.size() - 2);
    }
    contents.push_back(body);
    if (delete_all) {
      EXPECT_TRUE(conn.WriteLine("DELE " + std::to_string(i)));
      ExpectPrefix(conn, "+OK");
    }
  }
  EXPECT_TRUE(conn.WriteLine("QUIT"));
  ExpectPrefix(conn, "+OK");
  return contents;
}

TEST(NetservTest, SmtpDeliverPop3PickupRoundTrip) {
  InprocMailServer server(SmallConfig(TestRoot("roundtrip")));
  ASSERT_TRUE(server.Start());

  SmtpDeliver(server.smtp_port(), 1, {"hello over tcp"});
  std::vector<std::string> got = Pop3Fetch(server.pop3_port(), 1, /*delete_all=*/true);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "hello over tcp\r\n");

  // The DELE committed at QUIT: the mailbox is empty now.
  EXPECT_TRUE(Pop3Fetch(server.pop3_port(), 1, false).empty());
  server.Stop();
}

TEST(NetservTest, SmtpDotStuffingPreserved) {
  InprocMailServer server(SmallConfig(TestRoot("dotstuff")));
  ASSERT_TRUE(server.Start());

  // "..x" on the wire decodes to a stored ".x" line.
  SmtpDeliver(server.smtp_port(), 2, {"..leading dot", "plain"});
  std::vector<std::string> got = Pop3Fetch(server.pop3_port(), 2, true);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], ".leading dot\r\nplain\r\n");
  server.Stop();
}

TEST(NetservTest, MalformedCommandsGetErrorsNotDisconnects) {
  InprocMailServer server(SmallConfig(TestRoot("malformed")));
  ASSERT_TRUE(server.Start());

  BlockingLineConn smtp(ConnectTcp(server.smtp_port()));
  ASSERT_GE(smtp.fd(), 0);
  ExpectPrefix(smtp, "220");
  ASSERT_TRUE(smtp.WriteLine("BOGUS command"));
  ExpectPrefix(smtp, "503");  // no HELO yet
  ASSERT_TRUE(smtp.WriteLine("HELO test"));
  ExpectPrefix(smtp, "250");
  ASSERT_TRUE(smtp.WriteLine("BOGUS command"));
  ExpectPrefix(smtp, "500");
  ASSERT_TRUE(smtp.WriteLine("RCPT TO:<user1@x>"));
  ExpectPrefix(smtp, "503");  // no MAIL FROM yet
  ASSERT_TRUE(smtp.WriteLine("QUIT"));
  ExpectPrefix(smtp, "221");

  BlockingLineConn pop3(ConnectTcp(server.pop3_port()));
  ASSERT_GE(pop3.fd(), 0);
  ExpectPrefix(pop3, "+OK");
  ASSERT_TRUE(pop3.WriteLine("GARBAGE"));
  ExpectPrefix(pop3, "-ERR");
  ASSERT_TRUE(pop3.WriteLine("USER nobody"));
  ExpectPrefix(pop3, "-ERR");
  ASSERT_TRUE(pop3.WriteLine("QUIT"));
  ExpectPrefix(pop3, "+OK");
  server.Stop();
}

TEST(NetservTest, OversizedLineIsRejectedAndConnectionClosed) {
  InprocMailServer::Config config = SmallConfig(TestRoot("oversized"));
  InprocMailServer server(config);
  ASSERT_TRUE(server.Start());

  BlockingLineConn conn(ConnectTcp(server.smtp_port()));
  ASSERT_GE(conn.fd(), 0);
  ExpectPrefix(conn, "220");
  // Default cap is 64 KiB; a single unterminated 80 KiB blob trips it.
  std::string huge(80 * 1024, 'a');
  ASSERT_TRUE(conn.WriteLine(huge));
  ExpectPrefix(conn, "500 line too long");
  std::string line;
  EXPECT_FALSE(conn.ReadLine(&line));  // server hung up
  server.Stop();
}

// The CRLF terminator (and command bytes generally) can split anywhere
// across TCP reads; the carve must reassemble them without duplicating or
// losing lines.
TEST(NetservTest, CommandSplitAcrossReads) {
  InprocMailServer server(SmallConfig(TestRoot("split")));
  ASSERT_TRUE(server.Start());

  BlockingLineConn conn(ConnectTcp(server.smtp_port()));
  ASSERT_GE(conn.fd(), 0);
  ExpectPrefix(conn, "220");
  auto raw = [&](const std::string& bytes) {
    ASSERT_EQ(::send(conn.fd(), bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
    // Give the loop a chance to consume this fragment as its own read.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };
  raw("HELO te");
  raw("st\r");     // '\r' in one read...
  raw("\nNOOP");   // ...'\n' in the next, prefixed to the next command
  raw("\r\n");
  ExpectPrefix(conn, "250");  // HELO
  ExpectPrefix(conn, "250");  // NOOP
  // Byte-at-a-time.
  for (char c : std::string("NOOP\r\n")) {
    raw(std::string(1, c));
  }
  ExpectPrefix(conn, "250");
  ASSERT_TRUE(conn.WriteLine("QUIT"));
  ExpectPrefix(conn, "221");
  server.Stop();
}

// The DATA terminator ("\r\n.\r\n") straddling reads must still end the
// body exactly, with dot-stuffed content preserved.
TEST(NetservTest, DataTerminatorStraddlesReads) {
  InprocMailServer server(SmallConfig(TestRoot("data-straddle")));
  ASSERT_TRUE(server.Start());

  BlockingLineConn conn(ConnectTcp(server.smtp_port()));
  ASSERT_GE(conn.fd(), 0);
  ExpectPrefix(conn, "220");
  ASSERT_TRUE(conn.WriteLine("HELO t"));
  ExpectPrefix(conn, "250");
  ASSERT_TRUE(conn.WriteLine("MAIL FROM:<user0@test>"));
  ExpectPrefix(conn, "250");
  ASSERT_TRUE(conn.WriteLine("RCPT TO:<user2@test>"));
  ExpectPrefix(conn, "250");
  ASSERT_TRUE(conn.WriteLine("DATA"));
  ExpectPrefix(conn, "354");
  auto raw = [&](const std::string& bytes) {
    ASSERT_EQ(::send(conn.fd(), bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };
  raw("body line one\r\n..stuffed\r");  // dot-stuffed line, split at '\r'
  raw("\n.");                            // terminator dot alone in a read
  raw("\r");
  raw("\n");
  ExpectPrefix(conn, "250");
  ASSERT_TRUE(conn.WriteLine("QUIT"));
  ExpectPrefix(conn, "221");

  std::vector<std::string> got = Pop3Fetch(server.pop3_port(), 2, true);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "body line one\r\n.stuffed\r\n");
  server.Stop();
}

// A pipelined batch larger than the initial receive allocation (4 KiB) and
// the full buffer cap: the buffer grows, then flow-controls (pause/resume)
// without dropping, reordering, or duplicating commands.
TEST(NetservTest, PipelinedBatchSpansBufferGrowthAndBackpressure) {
  InprocMailServer server(SmallConfig(TestRoot("pipelined")));
  ASSERT_TRUE(server.Start());

  BlockingLineConn conn(ConnectTcp(server.smtp_port()));
  ASSERT_GE(conn.fd(), 0);
  ExpectPrefix(conn, "220");
  ASSERT_TRUE(conn.WriteLine("HELO t"));
  ExpectPrefix(conn, "250");

  // ~88 KiB of pipelined NOOPs in one burst: past the 4 KiB initial
  // buffer AND past the 72 KiB cap, so reads pause mid-batch and resume
  // once executors drain.
  constexpr int kCmds = 4000;
  std::string batch;
  for (int i = 0; i < kCmds; ++i) {
    batch += "NOOP padding padding\r\n";
  }
  size_t off = 0;
  while (off < batch.size()) {
    ssize_t n = ::send(conn.fd(), batch.data() + off, batch.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
    off += static_cast<size_t>(n);
  }
  for (int i = 0; i < kCmds; ++i) {
    ExpectPrefix(conn, "250");
  }
  ASSERT_TRUE(conn.WriteLine("QUIT"));
  ExpectPrefix(conn, "221");
  server.Stop();
}

// Empty commands (bare CRLF) are answered with a protocol error, not a
// hangup or a crash, on both protocols.
TEST(NetservTest, EmptyCommandGetsErrorNotDisconnect) {
  InprocMailServer server(SmallConfig(TestRoot("empty-cmd")));
  ASSERT_TRUE(server.Start());

  BlockingLineConn smtp(ConnectTcp(server.smtp_port()));
  ASSERT_GE(smtp.fd(), 0);
  ExpectPrefix(smtp, "220");
  ASSERT_TRUE(smtp.WriteLine("HELO t"));
  ExpectPrefix(smtp, "250");
  ASSERT_TRUE(smtp.WriteLine(""));
  ExpectPrefix(smtp, "500");
  ASSERT_TRUE(smtp.WriteLine("NOOP"));
  ExpectPrefix(smtp, "250");  // session still alive
  ASSERT_TRUE(smtp.WriteLine("QUIT"));
  ExpectPrefix(smtp, "221");

  BlockingLineConn pop3(ConnectTcp(server.pop3_port()));
  ASSERT_GE(pop3.fd(), 0);
  ExpectPrefix(pop3, "+OK");
  ASSERT_TRUE(pop3.WriteLine(""));
  ExpectPrefix(pop3, "-ERR");
  ASSERT_TRUE(pop3.WriteLine("QUIT"));
  ExpectPrefix(pop3, "+OK");
  server.Stop();
}

// A multi-megabyte unterminated line must be rejected with a bounded
// buffer (the receive buffer is capped; the old code realloc'd without
// limit), and the server must stay healthy for other connections.
TEST(NetservTest, MultiMegabyteLineIsRejectedWithBoundedBuffer) {
  InprocMailServer server(SmallConfig(TestRoot("huge-line")));
  ASSERT_TRUE(server.Start());

  BlockingLineConn conn(ConnectTcp(server.smtp_port()));
  ASSERT_GE(conn.fd(), 0);
  ExpectPrefix(conn, "220");
  // 3 MiB, no terminator, sent in chunks. The server stops reading at its
  // buffer cap, answers 500, and closes — so the tail of the send may die
  // with EPIPE/ECONNRESET, which is the expected outcome, not a failure.
  std::string chunk(64 * 1024, 'a');
  bool send_failed = false;
  for (int i = 0; i < 48 && !send_failed; ++i) {
    size_t off = 0;
    while (off < chunk.size()) {
      ssize_t n = ::send(conn.fd(), chunk.data() + off, chunk.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        send_failed = true;
        break;
      }
      off += static_cast<size_t>(n);
    }
  }
  // Either we read the rejection before the close, or the RST beat it.
  std::string line;
  if (conn.ReadLine(&line)) {
    EXPECT_EQ(line.substr(0, 3), "500") << "full line: " << line;
    EXPECT_FALSE(conn.ReadLine(&line));  // then the server hung up
  }

  // The abuse must not have wedged the server.
  SmtpDeliver(server.smtp_port(), 1, {"post-abuse delivery"});
  std::vector<std::string> got = Pop3Fetch(server.pop3_port(), 1, true);
  ASSERT_EQ(got.size(), 1u);
  server.Stop();
}

TEST(NetservTest, MidSessionDisconnectReleasesPop3Lock) {
  InprocMailServer server(SmallConfig(TestRoot("disconnect")));
  ASSERT_TRUE(server.Start());

  // Session A takes user3's pickup lock at PASS, then vanishes without QUIT.
  {
    BlockingLineConn a(ConnectTcp(server.pop3_port()));
    ASSERT_GE(a.fd(), 0);
    ExpectPrefix(a, "+OK");
    ASSERT_TRUE(a.WriteLine("USER user3"));
    ExpectPrefix(a, "+OK");
    ASSERT_TRUE(a.WriteLine("PASS x"));
    ExpectPrefix(a, "+OK");
    // destructor closes the socket mid-session
  }

  // Session B must be able to take the lock: the server's Abort path ran.
  // (If the lock leaked, PASS would block forever and the test would hang
  // on its gtest timeout.)
  std::vector<std::string> got = Pop3Fetch(server.pop3_port(), 3, false);
  EXPECT_TRUE(got.empty());
  server.Stop();
}

TEST(NetservTest, ConcurrentSessionsInterleave) {
  InprocMailServer::Config config = SmallConfig(TestRoot("concurrent"));
  config.executors = 16;
  InprocMailServer server(config);
  ASSERT_TRUE(server.Start());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 5;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SmtpDeliver(server.smtp_port(), static_cast<uint64_t>(t) % 4,
                    {"msg t" + std::to_string(t) + " i" + std::to_string(i)});
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  uint64_t total = 0;
  for (uint64_t user = 0; user < 4; ++user) {
    total += Pop3Fetch(server.pop3_port(), user, true).size();
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads * kPerThread));
  server.Stop();
}

TEST(NetservTest, GroupCommitterBatchesAndDedupes) {
  std::string root = TestRoot("gc-dedup");
  ::mkdir(root.c_str(), 0755);
  std::string path = root + "/f";
  int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
  ASSERT_GE(fd, 0);
  int fd2 = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd2, 0);

  GroupCommitter committer(GroupCommitter::Options{
      .max_wait_us = 200 * 1000,  // wide window: all threads join one batch
      .quiet_us = 200 * 1000,     // disable adaptive early close for determinism
      .max_batch = 64,
      .barrier = GroupCommitter::Barrier::kFsyncPerFd,
  });
  committer.Start();

  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      // Two distinct fds across the herd; everything else is duplicate.
      Status s = committer.Fsync(t == 0 ? fd2 : fd);
      EXPECT_TRUE(s.ok()) << s.ToString();
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  committer.Stop();

  const auto& stats = committer.stats();
  EXPECT_EQ(stats.requests.load(), static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.batches.load(), 1u);
  EXPECT_EQ(stats.fsyncs_issued.load(), 2u);  // one per unique fd
  EXPECT_EQ(stats.deduped.load(), static_cast<uint64_t>(kThreads - 2));
  ::close(fd);
  ::close(fd2);
}

TEST(NetservTest, GroupCommitterFallsBackAfterStop) {
  std::string root = TestRoot("gc-stopped");
  ::mkdir(root.c_str(), 0755);
  int fd = ::open((root + "/f").c_str(), O_CREAT | O_RDWR, 0644);
  ASSERT_GE(fd, 0);
  GroupCommitter committer(
      GroupCommitter::Options{.barrier = GroupCommitter::Barrier::kFsyncPerFd});
  committer.Start();
  committer.Stop();
  // Post-stop callers still get real durability, just unbatched.
  EXPECT_TRUE(committer.Fsync(fd).ok());
  EXPECT_EQ(committer.stats().batches.load(), 0u);
  ::close(fd);
}

TEST(NetservTest, GroupCommitterSyncfsBarrier) {
  std::string root = TestRoot("gc-syncfs");
  ::mkdir(root.c_str(), 0755);
  int root_fd = ::open(root.c_str(), O_DIRECTORY | O_RDONLY);
  ASSERT_GE(root_fd, 0);
  int fd = ::open((root + "/f").c_str(), O_CREAT | O_RDWR, 0644);
  ASSERT_GE(fd, 0);
  GroupCommitter committer(GroupCommitter::Options{
      .max_wait_us = 100,
      .barrier = GroupCommitter::Barrier::kSyncfs,
      .syncfs_fd = root_fd,
  });
  committer.Start();
  EXPECT_TRUE(committer.Fsync(fd).ok());
  committer.Stop();
  EXPECT_EQ(committer.stats().batches.load(), 1u);
  EXPECT_EQ(committer.stats().fsyncs_issued.load(), 1u);
  ::close(fd);
  ::close(root_fd);
}

// EINTR fault injection: every socket syscall fails with EINTR on first
// attempt; sessions must complete as if nothing happened.
struct EintrInjector {
  static std::atomic<uint64_t> hits;
  static RawSys saved;

  static ssize_t Recv(int fd, void* buf, size_t n, int flags) {
    if (hits.fetch_add(1) % 2 == 0) {
      errno = EINTR;
      return -1;
    }
    return ::recv(fd, buf, n, flags);
  }
  static ssize_t Send(int fd, const void* buf, size_t n, int flags) {
    if (hits.fetch_add(1) % 2 == 0) {
      errno = EINTR;
      return -1;
    }
    return ::send(fd, buf, n, flags);
  }
  static int Accept4(int fd, struct sockaddr* addr, socklen_t* len, int flags) {
    if (hits.fetch_add(1) % 2 == 0) {
      errno = EINTR;
      return -1;
    }
    return ::accept4(fd, addr, len, flags);
  }

  static void Install() {
    saved = Sys();
    hits.store(0);
    Sys() = RawSys{Recv, Send, Accept4};
  }
  static void Restore() { Sys() = saved; }
};
std::atomic<uint64_t> EintrInjector::hits{0};
RawSys EintrInjector::saved;

TEST(NetservTest, SessionsSurviveEintrStorms) {
  EintrInjector::Install();
  {
    InprocMailServer server(SmallConfig(TestRoot("eintr")));
    ASSERT_TRUE(server.Start());
    SmtpDeliver(server.smtp_port(), 0, {"eintr survivor"});
    std::vector<std::string> got = Pop3Fetch(server.pop3_port(), 0, true);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], "eintr survivor\r\n");
    server.Stop();
  }
  EintrInjector::Restore();
  EXPECT_GT(EintrInjector::hits.load(), 0u);
}

TEST(NetservTest, LoadgenSmallMixedRun) {
  std::string root = TestRoot("loadgen");
  InprocMailServer::Config config = SmallConfig(root);
  config.executors = 24;
  config.trace = nullptr;
  InprocMailServer server(config);
  ASSERT_TRUE(server.Start());

  LoadgenOptions load;
  load.smtp_port = server.smtp_port();
  load.pop3_port = server.pop3_port();
  load.clients = 8;
  load.requests = 120;
  load.num_users = 4;
  load.pickup_fraction = 0.25;
  load.body_bytes = 64;
  LoadgenResult result = RunLoadgen(load);

  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.ok_requests, 120u);
  EXPECT_EQ(result.delivers + result.pickups, result.ok_requests);
  EXPECT_EQ(result.latencies_us.size(), result.ok_requests);
  EXPECT_EQ(result.acked_bodies.size(), result.delivers);
  EXPECT_GT(server.committer()->stats().batches.load(), 0u);
  server.Stop();
}

TEST(NetservTest, TraceLogWritesChromeJson) {
  TraceLog log;
  {
    TraceScope scope(&log, "unit", "test", 7);
  }
  log.Complete("manual", "test", 1, 10, 5);
  ASSERT_EQ(log.size(), 2u);
  std::string path = TestRoot("trace") + ".json";
  ASSERT_TRUE(log.WriteJson(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  std::string json(buf);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"manual\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
}

// The headline honest-error case: with the disk refusing every write, an
// SMTP delivery must be answered with a 4xx tempfail — never a false 250 —
// and the mailbox must not contain a phantom message. The read path is
// unaffected, so the server stays healthy throughout.
TEST(NetservTest, FailingDiskTempfailsDeliveryInsteadOfFalseAck) {
  InprocMailServer::Config config = SmallConfig(TestRoot("hostile-disk"));
  Result<fault::SyscallFaultPlan> plan = fault::SyscallFaultPlan::Parse("no-space=1.0,seed=3");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  config.fault_plan = plan.value();
  InprocMailServer server(config);
  ASSERT_TRUE(server.Start());

  BlockingLineConn conn(ConnectTcp(server.smtp_port()));
  ASSERT_GE(conn.fd(), 0);
  ExpectPrefix(conn, "220");
  ASSERT_TRUE(conn.WriteLine("HELO t"));
  ExpectPrefix(conn, "250");
  ASSERT_TRUE(conn.WriteLine("MAIL FROM:<user0@test>"));
  ExpectPrefix(conn, "250");
  ASSERT_TRUE(conn.WriteLine("RCPT TO:<user1@test>"));
  ExpectPrefix(conn, "250");
  ASSERT_TRUE(conn.WriteLine("DATA"));
  ExpectPrefix(conn, "354");
  ASSERT_TRUE(conn.WriteLine("doomed message"));
  ASSERT_TRUE(conn.WriteLine("."));
  std::string verdict = MustReadLine(conn);
  EXPECT_EQ(verdict.substr(0, 3), "452") << "full line: " << verdict;
  // The session survives the tempfail and the transaction was reset.
  ASSERT_TRUE(conn.WriteLine("NOOP"));
  ExpectPrefix(conn, "250");
  ASSERT_TRUE(conn.WriteLine("QUIT"));
  ExpectPrefix(conn, "221");

  ASSERT_NE(server.faults(), nullptr);
  EXPECT_GT(server.faults()->total_injected(), 0u);
  // No phantom: the mailbox the 452'd message targeted is empty.
  EXPECT_TRUE(Pop3Fetch(server.pop3_port(), 1, false).empty());
  server.Stop();
}

// Deterministic FsSyscalls that fails the next N barrier syscalls with EIO.
struct FlakySyncSys : fault::FsSyscalls {
  std::atomic<int> fail_next{0};
  int Fsync(int fd) override {
    if (fail_next.fetch_sub(1) > 0) {
      errno = EIO;
      return -1;
    }
    return fault::FsSyscalls::Fsync(fd);
  }
  int Syncfs(int fd) override {
    if (fail_next.fetch_sub(1) > 0) {
      errno = EIO;
      return -1;
    }
    return fault::FsSyscalls::Syncfs(fd);
  }
};

// Linux drops dirty pages when fsync fails, so a later fsync of the same fd
// can "succeed" over already-lost data. The committer must therefore treat
// a failed barrier as sticky: every fd dirty at failure time keeps failing
// until it is closed and the data rewritten through a fresh descriptor.
TEST(NetservTest, FailedBarrierStickilyPoisonsDirtyFds) {
  std::string root = TestRoot("gc-poison");
  ::mkdir(root.c_str(), 0755);
  int fd = ::open((root + "/f").c_str(), O_CREAT | O_RDWR, 0644);
  ASSERT_GE(fd, 0);
  FlakySyncSys flaky;
  GroupCommitter committer(GroupCommitter::Options{
      .max_wait_us = 100,
      .barrier = GroupCommitter::Barrier::kFsyncPerFd,
      .sys = &flaky,
  });
  committer.Start();

  committer.OnDirty(fd);
  flaky.fail_next.store(1);
  Status first = committer.Fsync(fd);
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(committer.stats().failed_batches.load(), 1u);

  // The syscalls work again, but the fd is poisoned: no false success.
  Status second = committer.Fsync(fd);
  EXPECT_FALSE(second.ok());
  EXPECT_GE(committer.stats().poisoned_fails.load(), 1u);

  // Close-and-rewrite clears the poison; a fresh barrier succeeds.
  committer.OnClose(fd);
  committer.OnDirty(fd);
  EXPECT_TRUE(committer.Fsync(fd).ok());
  committer.Stop();
  ::close(fd);
}

// Idle connections are reaped at the deadline with a protocol farewell, and
// a reaped POP3 session releases its user's pickup lock (the reap goes
// through the executor Abort path, not a bare close).
TEST(NetservTest, IdleConnectionsReapedAndLocksReleased) {
  InprocMailServer::Config config = SmallConfig(TestRoot("idle-reap"));
  config.idle_timeout_ms = 150;
  InprocMailServer server(config);
  ASSERT_TRUE(server.Start());

  // An SMTP conn that goes quiet after the greeting.
  BlockingLineConn smtp(ConnectTcp(server.smtp_port()));
  ASSERT_GE(smtp.fd(), 0);
  ExpectPrefix(smtp, "220");
  // A POP3 conn that takes user2's pickup lock, then goes quiet.
  BlockingLineConn pop3(ConnectTcp(server.pop3_port()));
  ASSERT_GE(pop3.fd(), 0);
  ExpectPrefix(pop3, "+OK");
  ASSERT_TRUE(pop3.WriteLine("USER user2"));
  ExpectPrefix(pop3, "+OK");
  ASSERT_TRUE(pop3.WriteLine("PASS x"));
  ExpectPrefix(pop3, "+OK");

  ExpectPrefix(smtp, "421");  // "421 idle timeout", then close
  std::string line;
  EXPECT_FALSE(smtp.ReadLine(&line));
  ExpectPrefix(pop3, "-ERR");  // "-ERR idle timeout"
  EXPECT_FALSE(pop3.ReadLine(&line));
  EXPECT_GE(server.server()->idle_reaped(), 2u);

  // The reaped session released the lock: a fresh pickup of user2 works
  // (a leaked lock would block PASS until the gtest timeout).
  EXPECT_TRUE(Pop3Fetch(server.pop3_port(), 2, false).empty());
  server.Stop();
}

// Beyond max_conns the acceptor sheds with an honest 421 and the server
// stays fully healthy for the connections it admitted.
TEST(NetservTest, MaxConnsShedsBeyond421) {
  InprocMailServer::Config config = SmallConfig(TestRoot("shed"));
  config.max_conns = 1;
  InprocMailServer server(config);
  ASSERT_TRUE(server.Start());

  BlockingLineConn keeper(ConnectTcp(server.smtp_port()));
  ASSERT_GE(keeper.fd(), 0);
  ExpectPrefix(keeper, "220");

  // Over the cap: farewell + close, counted as shed.
  BlockingLineConn extra(ConnectTcp(server.smtp_port()));
  ASSERT_GE(extra.fd(), 0);
  ExpectPrefix(extra, "421");
  std::string line;
  EXPECT_FALSE(extra.ReadLine(&line));
  EXPECT_GE(server.server()->shed_connects(), 1u);

  // The admitted connection still gets full service.
  ASSERT_TRUE(keeper.WriteLine("HELO t"));
  ExpectPrefix(keeper, "250");
  ASSERT_TRUE(keeper.WriteLine("QUIT"));
  ExpectPrefix(keeper, "221");

  // Once the keeper retires, a new connection is admitted again.
  bool admitted = false;
  for (int i = 0; i < 100 && !admitted; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    BlockingLineConn retry(ConnectTcp(server.smtp_port()));
    if (retry.fd() < 0) {
      continue;
    }
    std::string greet;
    if (retry.ReadLine(&greet) && greet.substr(0, 3) == "220") {
      admitted = true;
    }
  }
  EXPECT_TRUE(admitted);
  server.Stop();
}

// SIGTERM semantics: Drain() lets an in-flight DATA finish and flushes its
// 250 ack to the wire before the connection is closed, and new connections
// are shed while draining.
TEST(NetservTest, DrainFlushesInflightAckBeforeClosing) {
  InprocMailServer server(SmallConfig(TestRoot("drain")));
  ASSERT_TRUE(server.Start());

  BlockingLineConn conn(ConnectTcp(server.smtp_port()));
  ASSERT_GE(conn.fd(), 0);
  ExpectPrefix(conn, "220");
  ASSERT_TRUE(conn.WriteLine("HELO t"));
  ExpectPrefix(conn, "250");
  ASSERT_TRUE(conn.WriteLine("MAIL FROM:<user0@test>"));
  ExpectPrefix(conn, "250");
  ASSERT_TRUE(conn.WriteLine("RCPT TO:<user3@test>"));
  ExpectPrefix(conn, "250");
  ASSERT_TRUE(conn.WriteLine("DATA"));
  ExpectPrefix(conn, "354");
  // Put the whole body + terminator on the wire, then drain concurrently:
  // the delivery is in flight when the drain starts.
  ASSERT_TRUE(conn.WriteLine("must be acked before shutdown"));
  ASSERT_TRUE(conn.WriteLine("."));
  std::thread drainer([&] { EXPECT_TRUE(server.server()->Drain(5000)); });

  // The ack must arrive (possibly followed by the shutdown farewell).
  bool saw_ack = false;
  std::string got;
  while (conn.ReadLine(&got)) {
    if (got.substr(0, 3) == "250") {
      saw_ack = true;
    }
  }
  EXPECT_TRUE(saw_ack);
  drainer.join();
  EXPECT_EQ(server.server()->live_conns(), 0u);

  // While stopped-for-drain, the acked message is in the store.
  Result<std::vector<mailboat::Message>> picked = proc::RunSync(server.mail()->Pickup(3));
  ASSERT_TRUE(picked.ok());
  ASSERT_EQ(picked.value().size(), 1u);
  EXPECT_EQ(picked.value()[0].contents, "must be acked before shutdown\r\n");
  proc::RunSyncVoid(server.mail()->Unlock(3));
  server.Stop();
}

TEST(NetservTest, ServerStartStopIsClean) {
  for (int i = 0; i < 3; ++i) {
    InprocMailServer server(SmallConfig(TestRoot("startstop")));
    ASSERT_TRUE(server.Start());
    // one quick session to prove liveness
    BlockingLineConn conn(ConnectTcp(server.smtp_port()));
    ASSERT_GE(conn.fd(), 0);
    ExpectPrefix(conn, "220");
    ASSERT_TRUE(conn.WriteLine("QUIT"));
    ExpectPrefix(conn, "221");
    server.Stop();
  }
}

}  // namespace
}  // namespace perennial::netserv
