// Durable-exploration suite (tier2-ckpt): crash-safe checkpoint/resume for
// the refinement checker itself.
//
// The load-bearing invariant: a run interrupted at ANY point — mid-
// execution included — and resumed from its checkpoint must produce a
// Report bit-identical to an uninterrupted run (executions, steps, crash
// and env counts, histories checked/deduped, POR prunes, spec states, and
// the exact violation sequence). The interruption points are driven by the
// deterministic cancel_after_decisions hook (serial) and a CancelToken
// fired from the progress callback (parallel); both land inside executions,
// so the rollback + exact-path-resume machinery is what is under test.
//
// The checkpoint FILE format is tested separately: torn, truncated,
// bit-flipped, version-bumped, trailing-garbage, and config-mismatched
// files must all be rejected cleanly, and an engine pointed at a rejected
// file must start from scratch and still match the baseline.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/mailboat/mail_harness.h"
#include "src/refine/checkpoint.h"
#include "src/refine/explorer.h"
#include "src/refine/parallel_explorer.h"
#include "src/systems/ftl/ftl_harness.h"
#include "src/systems/kvs/kv_harness.h"
#include "src/systems/pattern_harness.h"
#include "src/systems/repl/repl_harness.h"
#include "src/systems/txnlog/txn_harness.h"

namespace perennial::systems {
namespace {

using refine::CancelToken;
using refine::CheckpointData;
using refine::CheckpointSubtree;
using refine::Explorer;
using refine::ExplorerOptions;
using refine::ExplorerProgress;
using refine::LoadCheckpoint;
using refine::ParallelExplorer;
using refine::Report;
using refine::RunOutcome;
using refine::SaveCheckpoint;

// ---------------------------------------------------------------------------
// System catalog: the ten §9.1 patterns, type-erased to (options -> Report)
// runners so one resume harness covers them all.

struct System {
  std::string name;
  int max_crashes = 1;
  std::function<Report(ExplorerOptions)> serial;
  std::function<Report(ExplorerOptions)> parallel;
};

template <typename Spec, typename Factory>
System MakeSystem(std::string name, int max_crashes, Spec spec, Factory factory) {
  System sys;
  sys.name = std::move(name);
  sys.max_crashes = max_crashes;
  sys.serial = [spec, factory](ExplorerOptions opts) {
    Explorer<Spec> ex(spec, factory, opts);
    return ex.Run();
  };
  sys.parallel = [spec, factory](ExplorerOptions opts) {
    ParallelExplorer<Spec> ex(spec, factory, opts);
    return ex.Run();
  };
  return sys;
}

std::vector<System> TenSystems() {
  std::vector<System> systems;
  {
    ReplHarnessOptions o;
    o.num_blocks = 1;
    o.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
    systems.push_back(
        MakeSystem("repl-2writers", 1, ReplSpec{1}, [o] { return MakeReplInstance(o); }));
  }
  {
    ReplHarnessOptions o;
    o.num_blocks = 1;
    o.client_ops = {{ReplSpec::MakeWrite(0, 9)}, {ReplSpec::MakeRead(0)}};
    o.with_disk1_failure_event = true;
    systems.push_back(
        MakeSystem("repl-failover", 1, ReplSpec{1}, [o] { return MakeReplInstance(o); }));
  }
  {
    ShadowHarnessOptions o;
    o.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeWrite(3, 4)}};
    systems.push_back(
        MakeSystem("shadow-2writers", 1, PairSpec{}, [o] { return MakeShadowInstance(o); }));
  }
  {
    WalHarnessOptions o;
    o.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeWrite(3, 4)}};
    systems.push_back(
        MakeSystem("wal-2writers", 1, PairSpec{}, [o] { return MakeWalInstance(o); }));
  }
  {
    WalHarnessOptions o;
    o.client_ops = {{PairSpec::MakeWrite(1, 2)}};
    systems.push_back(
        MakeSystem("wal-recovery-crash", 2, PairSpec{}, [o] { return MakeWalInstance(o); }));
  }
  {
    GcHarnessOptions o;
    o.client_ops = {{GcSpec::MakeWrite(1)}, {GcSpec::MakeWrite(2)}, {GcSpec::MakeFlush()}};
    systems.push_back(
        MakeSystem("group-commit", 1, GcSpec{}, [o] { return MakeGcInstance(o); }));
  }
  {
    mailboat::MailHarnessOptions o;
    o.num_users = 1;
    o.client_scripts = {
        {{mailboat::MailAction::Kind::kDeliver, 0, "a"}},
        {{mailboat::MailAction::Kind::kPickupDeleteAllUnlock, 0, ""}},
    };
    mailboat::MailSpec spec;
    spec.num_users = 1;
    systems.push_back(
        MakeSystem("mailboat", 1, spec, [o] { return mailboat::MakeMailInstance(o); }));
  }
  {
    FtlHarnessOptions o;
    o.num_lbas = 1;
    o.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
    systems.push_back(
        MakeSystem("ftl-2writers", 1, ReplSpec{1}, [o] { return MakeFtlInstance(o); }));
  }
  {
    TxnHarnessOptions o;
    o.num_addrs = 2;
    o.client_ops = {{TxnSpec::MakeBatch({{0, 1}, {1, 2}})}, {TxnSpec::MakeRead(0)}};
    systems.push_back(MakeSystem("txnlog", 1, TxnSpec{2}, [o] { return MakeTxnInstance(o); }));
  }
  {
    KvHarnessOptions o;
    o.num_keys = 2;
    o.client_ops = {{KvSpec::MakePutPair(0, 1, 1, 2)}, {KvSpec::MakeGet(0)}};
    systems.push_back(MakeSystem("durable-kv", 1, KvSpec{2}, [o] { return MakeKvInstance(o); }));
  }
  return systems;
}

// A workload big enough (seconds, not milliseconds) that a 1 ms wall
// deadline reliably lands mid-run: two writers racing the crash-during-
// recovery window.
System Wal2cSystem() {
  WalHarnessOptions o;
  o.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeWrite(3, 4)}};
  return MakeSystem("wal-recovery-crash-2c", 2, PairSpec{}, [o] { return MakeWalInstance(o); });
}

// The seeded-bug system used for violation-sequence identity (the catalog
// systems are all correct, so their violation lists are trivially equal).
System ShadowBugSystem() {
  ShadowHarnessOptions o;
  o.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)}, {PairSpec::MakeWrite(5, 6)}};
  o.mutations.in_place_update = true;
  return MakeSystem("shadow-bug", 1, PairSpec{}, [o] { return MakeShadowInstance(o); });
}

// ---------------------------------------------------------------------------
// Harness helpers.

// ctest runs in the build tree, so bare filenames stay inside it.
std::string CkptPath(const std::string& tag) { return "ckpt_" + tag + ".bin"; }

void ExpectReportsEqual(const Report& got, const Report& want, bool compare_dedup = true) {
  EXPECT_EQ(got.executions, want.executions);
  EXPECT_EQ(got.total_steps, want.total_steps);
  EXPECT_EQ(got.crashes_injected, want.crashes_injected);
  EXPECT_EQ(got.env_events_fired, want.env_events_fired);
  EXPECT_EQ(got.histories_checked, want.histories_checked);
  if (compare_dedup) {
    EXPECT_EQ(got.histories_deduped, want.histories_deduped);
  }
  EXPECT_EQ(got.por_pruned, want.por_pruned);
  EXPECT_EQ(got.spec_states_explored, want.spec_states_explored);
  ASSERT_EQ(got.violations.size(), want.violations.size())
      << got.Summary() << "\nvs\n" << want.Summary();
  for (size_t i = 0; i < want.violations.size(); ++i) {
    EXPECT_EQ(got.violations[i].kind, want.violations[i].kind) << "violation " << i;
    EXPECT_EQ(got.violations[i].detail, want.violations[i].detail) << "violation " << i;
    EXPECT_EQ(got.violations[i].trace, want.violations[i].trace) << "violation " << i;
  }
}

// Runs `sys` serially with a deterministic cancel every `k` decisions,
// checkpointing on every stop and resuming until the run completes. Fills
// *legs with the number of runs it took (>= 2 means the interruption
// actually happened).
Report RunSerialInterruptedChain(const System& sys, ExplorerOptions base, uint64_t k,
                                 const std::string& path, int* legs) {
  std::remove(path.c_str());
  ExplorerOptions opts = base;
  opts.run_id = sys.name;
  opts.checkpoint_path = path;
  opts.cancel_after_decisions = k;
  Report r = sys.serial(opts);
  int n = 1;
  opts.resume_path = path;
  // When k is smaller than one execution's decision count, the progress
  // gate guarantees exactly one execution per leg, so the chain can need up
  // to baseline-executions legs before it converges.
  while (r.outcome != RunOutcome::kComplete && n < 5000) {
    EXPECT_EQ(r.outcome, RunOutcome::kCanceled);
    EXPECT_TRUE(r.truncated);
    r = sys.serial(opts);
    ++n;
  }
  EXPECT_EQ(r.outcome, RunOutcome::kComplete) << "chain did not converge: " << r.Summary();
  if (legs != nullptr) {
    *legs = n;
  }
  std::remove(path.c_str());
  return r;
}

// ---------------------------------------------------------------------------
// Checkpoint file format.

CheckpointData SampleData() {
  CheckpointData data;
  data.config_fp = 0x1234567890abcdefULL;
  data.parallel = true;
  data.outcome = RunOutcome::kDeadline;
  CheckpointSubtree done;
  done.state = CheckpointSubtree::State::kDone;
  done.prefix = {0, 2};
  done.floor = 2;
  done.partial.executions = 17;
  done.partial.total_steps = 412;
  done.partial.violations.push_back({"refinement", "write lost", "t0 t1 crash"});
  data.subtrees.push_back(done);
  CheckpointSubtree in_progress;
  in_progress.state = CheckpointSubtree::State::kInProgress;
  in_progress.prefix = {1};
  in_progress.floor = 1;
  in_progress.next_path = {1, 3, 0, 2};
  in_progress.por_levels.resize(2);
  refine::detail::TriedAlt alt;
  alt.kind = refine::detail::AltKind::kThread;
  alt.thread = 1;
  alt.footprint.recorded = true;
  alt.footprint.accesses.push_back({42, true});
  in_progress.por_levels[1].tried.push_back(alt);
  in_progress.partial.executions = 3;
  data.subtrees.push_back(in_progress);
  data.verdicts.emplace_back(Hash128{1, 2}, std::nullopt);
  data.verdicts.emplace_back(Hash128{3, 4}, std::optional<std::string>("bad history"));
  return data;
}

TEST(CheckpointFile, SaveLoadRoundTrip) {
  const std::string path = CkptPath("roundtrip");
  CheckpointData data = SampleData();
  ASSERT_TRUE(SaveCheckpoint(path, data).ok());
  CheckpointData loaded;
  ASSERT_TRUE(LoadCheckpoint(path, data.config_fp, &loaded).ok());
  EXPECT_EQ(loaded.config_fp, data.config_fp);
  EXPECT_EQ(loaded.parallel, data.parallel);
  EXPECT_EQ(loaded.outcome, data.outcome);
  ASSERT_EQ(loaded.subtrees.size(), 2u);
  EXPECT_EQ(loaded.subtrees[0].state, CheckpointSubtree::State::kDone);
  EXPECT_EQ(loaded.subtrees[0].prefix, data.subtrees[0].prefix);
  EXPECT_EQ(loaded.subtrees[0].partial.executions, 17u);
  ASSERT_EQ(loaded.subtrees[0].partial.violations.size(), 1u);
  EXPECT_EQ(loaded.subtrees[0].partial.violations[0].detail, "write lost");
  EXPECT_EQ(loaded.subtrees[1].next_path, data.subtrees[1].next_path);
  ASSERT_EQ(loaded.subtrees[1].por_levels.size(), 2u);
  ASSERT_EQ(loaded.subtrees[1].por_levels[1].tried.size(), 1u);
  EXPECT_EQ(loaded.subtrees[1].por_levels[1].tried[0].thread, 1);
  ASSERT_EQ(loaded.subtrees[1].por_levels[1].tried[0].footprint.accesses.size(), 1u);
  EXPECT_EQ(loaded.subtrees[1].por_levels[1].tried[0].footprint.accesses[0].resource, 42u);
  ASSERT_EQ(loaded.verdicts.size(), 2u);
  EXPECT_FALSE(loaded.verdicts[0].second.has_value());
  EXPECT_EQ(loaded.verdicts[1].second.value(), "bad history");
  EXPECT_FALSE(loaded.AllDone());
  std::remove(path.c_str());
}

TEST(CheckpointFile, MissingFileIsNotFound) {
  CheckpointData out;
  Status st = LoadCheckpoint(CkptPath("nonexistent"), 0, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

std::string ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string bytes;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  std::fclose(f);
  return bytes;
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST(CheckpointFile, TornAndTamperedFilesRejected) {
  const std::string path = CkptPath("tamper");
  CheckpointData data = SampleData();
  ASSERT_TRUE(SaveCheckpoint(path, data).ok());
  const std::string good = ReadAll(path);
  ASSERT_GT(good.size(), 40u);

  // Truncations at several depths: inside the header, at the payload
  // boundary, and one byte short of complete.
  for (size_t keep : {size_t{3}, size_t{17}, size_t{31}, good.size() - 1}) {
    SCOPED_TRACE("truncate to " + std::to_string(keep));
    WriteAll(path, good.substr(0, keep));
    CheckpointData out;
    EXPECT_FALSE(LoadCheckpoint(path, data.config_fp, &out).ok());
  }
  // A flipped payload byte must fail the checksum.
  {
    std::string bad = good;
    bad[bad.size() / 2] ^= 0x40;
    WriteAll(path, bad);
    CheckpointData out;
    EXPECT_FALSE(LoadCheckpoint(path, data.config_fp, &out).ok());
  }
  // Bad magic.
  {
    std::string bad = good;
    bad[0] = 'X';
    WriteAll(path, bad);
    CheckpointData out;
    EXPECT_FALSE(LoadCheckpoint(path, data.config_fp, &out).ok());
  }
  // A version bump (bytes 4..8 little-endian) must be rejected even though
  // the payload is intact.
  {
    std::string bad = good;
    bad[4] = static_cast<char>(refine::kCheckpointVersion + 1);
    WriteAll(path, bad);
    CheckpointData out;
    EXPECT_FALSE(LoadCheckpoint(path, data.config_fp, &out).ok());
  }
  // Trailing garbage after a valid payload.
  {
    WriteAll(path, good + "garbage");
    CheckpointData out;
    EXPECT_FALSE(LoadCheckpoint(path, data.config_fp, &out).ok());
  }
  // Config-fingerprint mismatch: the file is valid but belongs to another
  // exploration configuration.
  {
    WriteAll(path, good);
    CheckpointData out;
    Status st = LoadCheckpoint(path, data.config_fp + 1, &out);
    EXPECT_FALSE(st.ok());
    // And the same file loads fine when the caller skips the check.
    EXPECT_TRUE(LoadCheckpoint(path, 0, &out).ok());
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Serial interrupt/resume bit-identity.

TEST(SerialResume, BitIdenticalAcrossAllTenSystems) {
  for (const System& sys : TenSystems()) {
    SCOPED_TRACE(sys.name);
    ExplorerOptions opts;
    opts.max_crashes = sys.max_crashes;
    Report baseline = sys.serial(opts);
    ASSERT_FALSE(baseline.truncated) << baseline.Summary();
    // Aim for a handful of legs regardless of workload size: decisions track
    // steps closely, so a quarter of the baseline's steps interrupts every
    // system at least once without needing hundreds of resumes.
    const uint64_t k = std::max<uint64_t>(120, baseline.total_steps / 4);
    int legs = 0;
    Report resumed = RunSerialInterruptedChain(sys, opts, k, CkptPath(sys.name), &legs);
    EXPECT_GE(legs, 2) << "cancel_after_decisions never fired; workload too small?";
    EXPECT_TRUE(resumed.resumed);
    ExpectReportsEqual(resumed, baseline);
  }
}

TEST(SerialResume, SeveralSplitPointsOnWal) {
  System sys = TenSystems()[3];  // wal-2writers
  ASSERT_EQ(sys.name, "wal-2writers");
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Report baseline = sys.serial(opts);
  for (uint64_t k : {37u, 230u, 1001u, 5000u}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    int legs = 0;
    Report resumed = RunSerialInterruptedChain(sys, opts, k, CkptPath("wal-split"), &legs);
    ExpectReportsEqual(resumed, baseline);
  }
}

TEST(SerialResume, ViolationSequencePreserved) {
  System sys = ShadowBugSystem();
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.max_violations = 1 << 20;
  Report baseline = sys.serial(opts);
  ASSERT_GT(baseline.violations.size(), 0u);
  int legs = 0;
  Report resumed = RunSerialInterruptedChain(sys, opts, /*k=*/200, CkptPath("shadow-bug"), &legs);
  EXPECT_GE(legs, 2);
  ExpectReportsEqual(resumed, baseline);
}

TEST(SerialResume, DedupCountersSurviveResume) {
  // The verdict cache is persisted in the checkpoint, so even
  // histories_deduped — a function of which fingerprints were already seen —
  // is bit-identical across the interruption.
  System sys = TenSystems()[3];  // wal-2writers
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.dedup_histories = true;
  Report baseline = sys.serial(opts);
  ASSERT_GT(baseline.histories_deduped, 0u);
  int legs = 0;
  Report resumed = RunSerialInterruptedChain(sys, opts, /*k=*/200, CkptPath("wal-dedup"), &legs);
  EXPECT_GE(legs, 2);
  ExpectReportsEqual(resumed, baseline, /*compare_dedup=*/true);
}

TEST(SerialResume, CompletedCheckpointResumesToSameReport) {
  System sys = TenSystems()[0];  // repl-2writers
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.run_id = sys.name;
  const std::string path = CkptPath("completed");
  std::remove(path.c_str());
  ExplorerOptions first = opts;
  first.checkpoint_path = path;
  // Exercise the periodic cadence too: the final file is the completion
  // snapshot, but every 5 executions a mid-run one was written over it.
  first.checkpoint_every_execs = 5;
  Report done = sys.serial(first);
  EXPECT_EQ(done.outcome, RunOutcome::kComplete);
  CheckpointData data;
  ASSERT_TRUE(LoadCheckpoint(path, 0, &data).ok());
  EXPECT_TRUE(data.AllDone());
  ExplorerOptions again = opts;
  again.resume_path = path;
  Report replayed = sys.serial(again);
  EXPECT_TRUE(replayed.resumed);
  ExpectReportsEqual(replayed, done);
  std::remove(path.c_str());
}

TEST(SerialResume, RejectedResumeFileFallsBackToScratch) {
  System sys = TenSystems()[0];  // repl-2writers
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Report baseline = sys.serial(opts);
  const std::string path = CkptPath("corrupt-resume");
  for (const std::string& bytes : {std::string("not a checkpoint"), std::string("PCCK\x07")}) {
    WriteAll(path, bytes);
    ExplorerOptions with_resume = opts;
    with_resume.resume_path = path;
    Report fresh = sys.serial(with_resume);
    EXPECT_FALSE(fresh.resumed);
    ExpectReportsEqual(fresh, baseline);
  }
  // Missing file: same fallback.
  std::remove(path.c_str());
  ExplorerOptions with_resume = opts;
  with_resume.resume_path = path;
  Report fresh = sys.serial(with_resume);
  EXPECT_FALSE(fresh.resumed);
  ExpectReportsEqual(fresh, baseline);
}

// ---------------------------------------------------------------------------
// Deadline and memory-budget outcomes: the run returns (never aborts), tags
// the cause, flushes a resumable checkpoint.

TEST(DurableStops, DeadlineReturnsPartialAndResumes) {
  System sys = Wal2cSystem();
  ExplorerOptions opts;
  opts.max_crashes = sys.max_crashes;
  opts.run_id = sys.name;
  Report baseline = sys.serial(opts);
  const std::string path = CkptPath("deadline");
  std::remove(path.c_str());
  ExplorerOptions limited = opts;
  limited.wall_deadline_ms = 1;
  limited.checkpoint_path = path;
  Report partial = sys.serial(limited);
  ASSERT_EQ(partial.outcome, RunOutcome::kDeadline) << partial.Summary();
  EXPECT_TRUE(partial.truncated);
  EXPECT_LT(partial.executions, baseline.executions);
  EXPECT_NE(partial.Summary().find("outcome=deadline"), std::string::npos);
  CheckpointData data;
  ASSERT_TRUE(LoadCheckpoint(path, 0, &data).ok());
  EXPECT_EQ(data.outcome, RunOutcome::kDeadline);
  EXPECT_FALSE(data.AllDone());
  // Resume with the deadline lifted: completes and matches the baseline.
  ExplorerOptions resume = opts;
  resume.resume_path = path;
  resume.checkpoint_path = path;
  Report resumed = sys.serial(resume);
  EXPECT_EQ(resumed.outcome, RunOutcome::kComplete);
  EXPECT_TRUE(resumed.resumed);
  ExpectReportsEqual(resumed, baseline);
  std::remove(path.c_str());
}

TEST(DurableStops, MemoryBudgetReturnsOomAndResumes) {
  System sys = TenSystems()[3];  // wal-2writers
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.run_id = sys.name;
  Report baseline = sys.serial(opts);
  const std::string path = CkptPath("oom");
  std::remove(path.c_str());
  ExplorerOptions limited = opts;
  limited.max_memory_bytes = 4096;  // well under the linearizer arena's working set
  limited.checkpoint_path = path;
  Report partial = sys.serial(limited);
  ASSERT_EQ(partial.outcome, RunOutcome::kOom) << partial.Summary();
  EXPECT_TRUE(partial.truncated);
  EXPECT_LT(partial.executions, baseline.executions);
  CheckpointData data;
  ASSERT_TRUE(LoadCheckpoint(path, 0, &data).ok());
  EXPECT_EQ(data.outcome, RunOutcome::kOom);
  ExplorerOptions resume = opts;
  resume.resume_path = path;
  Report resumed = sys.serial(resume);
  EXPECT_EQ(resumed.outcome, RunOutcome::kComplete);
  ExpectReportsEqual(resumed, baseline);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Parallel interrupt/resume.

// Cancels a parallel run once `cancel_at` executions completed (via the
// progress callback, which fires on worker threads), then resumes until
// complete. The resume may use a different worker count than the
// interrupted run — items come from the checkpoint file.
Report RunParallelInterruptedChain(const System& sys, ExplorerOptions base, uint64_t cancel_at,
                                   int resume_workers, const std::string& path,
                                   bool* interrupted) {
  std::remove(path.c_str());
  CancelToken token;
  ExplorerOptions first = base;
  first.run_id = sys.name;
  first.checkpoint_path = path;
  first.cancel_token = &token;
  first.progress_interval = 1;
  first.progress_callback = [&token, cancel_at](const ExplorerProgress& p) {
    if (p.executions >= cancel_at) {
      token.RequestCancel();
    }
  };
  Report r = sys.parallel(first);
  *interrupted = r.outcome != RunOutcome::kComplete;
  ExplorerOptions resume = base;
  resume.run_id = sys.name;
  resume.checkpoint_path = path;
  resume.resume_path = path;
  resume.num_workers = resume_workers;
  int guard = 0;
  while (r.outcome != RunOutcome::kComplete && ++guard < 50) {
    r = sys.parallel(resume);
  }
  EXPECT_EQ(r.outcome, RunOutcome::kComplete) << r.Summary();
  std::remove(path.c_str());
  return r;
}

TEST(ParallelResume, CancelThenResumeMatchesBaseline) {
  System sys = TenSystems()[3];  // wal-2writers
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.num_workers = 4;
  Report baseline = sys.parallel(opts);
  ASSERT_FALSE(baseline.truncated);
  for (int resume_workers : {1, 2, 4}) {
    SCOPED_TRACE("resume_workers=" + std::to_string(resume_workers));
    bool interrupted = false;
    Report resumed = RunParallelInterruptedChain(sys, opts, /*cancel_at=*/40, resume_workers,
                                                 CkptPath("par-wal"), &interrupted);
    EXPECT_TRUE(interrupted) << "token cancel landed after completion; lower cancel_at";
    EXPECT_TRUE(resumed.resumed);
    ExpectReportsEqual(resumed, baseline);
  }
}

TEST(ParallelResume, CrossEngineCheckpointsInterconvert) {
  System sys = TenSystems()[0];  // repl-2writers
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Report baseline = sys.serial(opts);
  const std::string path = CkptPath("cross");
  // Serial interrupt -> parallel resume.
  {
    std::remove(path.c_str());
    ExplorerOptions first = opts;
    first.run_id = sys.name;
    first.checkpoint_path = path;
    first.cancel_after_decisions = 200;
    Report interrupted = sys.serial(first);
    ASSERT_EQ(interrupted.outcome, RunOutcome::kCanceled);
    ExplorerOptions resume = opts;
    resume.run_id = sys.name;
    resume.resume_path = path;
    resume.num_workers = 4;
    Report resumed = sys.parallel(resume);
    EXPECT_EQ(resumed.outcome, RunOutcome::kComplete);
    EXPECT_TRUE(resumed.resumed);
    ExpectReportsEqual(resumed, baseline);
  }
  // Parallel interrupt -> serial resume.
  {
    std::remove(path.c_str());
    CancelToken token;
    ExplorerOptions first = opts;
    first.run_id = sys.name;
    first.checkpoint_path = path;
    first.num_workers = 2;
    first.cancel_token = &token;
    first.progress_interval = 1;
    first.progress_callback = [&token](const ExplorerProgress& p) {
      if (p.executions >= 30) {
        token.RequestCancel();
      }
    };
    Report interrupted = sys.parallel(first);
    ASSERT_NE(interrupted.outcome, RunOutcome::kComplete);
    ExplorerOptions resume = opts;
    resume.run_id = sys.name;
    resume.resume_path = path;
    Report resumed = sys.serial(resume);
    EXPECT_EQ(resumed.outcome, RunOutcome::kComplete);
    EXPECT_TRUE(resumed.resumed);
    ExpectReportsEqual(resumed, baseline);
  }
  std::remove(path.c_str());
}

TEST(ParallelResume, ViolationSequencePreserved) {
  System sys = ShadowBugSystem();
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.max_violations = 1 << 20;
  opts.num_workers = 4;
  Report baseline = sys.parallel(opts);
  ASSERT_GT(baseline.violations.size(), 0u);
  bool interrupted = false;
  Report resumed = RunParallelInterruptedChain(sys, opts, /*cancel_at=*/60, /*resume_workers=*/2,
                                               CkptPath("par-bug"), &interrupted);
  EXPECT_TRUE(interrupted);
  ExpectReportsEqual(resumed, baseline);
}

TEST(ParallelDurable, DeadlineTagsOutcomeAndResumes) {
  System sys = Wal2cSystem();
  ExplorerOptions opts;
  opts.max_crashes = sys.max_crashes;
  opts.num_workers = 2;
  Report baseline = sys.parallel(opts);
  const std::string path = CkptPath("par-deadline");
  std::remove(path.c_str());
  ExplorerOptions limited = opts;
  limited.run_id = sys.name;
  limited.wall_deadline_ms = 1;
  limited.checkpoint_path = path;
  Report partial = sys.parallel(limited);
  ASSERT_EQ(partial.outcome, RunOutcome::kDeadline) << partial.Summary();
  EXPECT_TRUE(partial.truncated);
  ExplorerOptions resume = opts;
  resume.run_id = sys.name;
  resume.resume_path = path;
  Report resumed = sys.parallel(resume);
  EXPECT_EQ(resumed.outcome, RunOutcome::kComplete);
  ExpectReportsEqual(resumed, baseline);
  std::remove(path.c_str());
}

TEST(ParallelDurable, WatchdogFlagsStuckWorkerAndRunRecovers) {
  // A factory that stalls one execution long enough to trip the watchdog:
  // the coordinator must flush a recovery checkpoint, cancel the run, and
  // the resume must still converge to the baseline.
  WalHarnessOptions o;
  o.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeWrite(3, 4)}};
  std::atomic<int> builds{0};
  auto stalling_factory = [o, &builds] {
    if (builds.fetch_add(1) + 1 == 40) {
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
    return MakeWalInstance(o);
  };
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<PairSpec> serial_baseline(PairSpec{}, [o] { return MakeWalInstance(o); }, opts);
  Report baseline = serial_baseline.Run();

  const std::string path = CkptPath("watchdog");
  std::remove(path.c_str());
  ExplorerOptions limited = opts;
  limited.num_workers = 1;
  limited.checkpoint_path = path;
  limited.stuck_worker_timeout_ms = 60;
  ParallelExplorer<PairSpec> stalled(PairSpec{}, stalling_factory, limited);
  Report partial = stalled.Run();
  ASSERT_EQ(partial.outcome, RunOutcome::kCanceled) << partial.Summary();
  CheckpointData data;
  ASSERT_TRUE(LoadCheckpoint(path, 0, &data).ok());
  ExplorerOptions resume = opts;
  resume.resume_path = path;
  resume.num_workers = 2;
  ParallelExplorer<PairSpec> recovered(PairSpec{}, [o] { return MakeWalInstance(o); }, resume);
  Report resumed = recovered.Run();
  EXPECT_EQ(resumed.outcome, RunOutcome::kComplete);
  ExpectReportsEqual(resumed, baseline);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace perennial::systems
