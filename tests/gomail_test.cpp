// Tests for the GoMail baseline and the Figure 11 workload driver.
#include <filesystem>

#include <gtest/gtest.h>

#include "src/goose/world.h"
#include "src/goosefs/goosefs.h"
#include "src/goosefs/posix_fs.h"
#include "src/mailboat/gomail.h"
#include "src/mailboat/mailboat.h"
#include "src/mailboat/workload.h"
#include "tests/sim_util.h"

namespace perennial::mailboat {
namespace {

using perennial::testing::SimRun;
using perennial::testing::SimRunVoid;
using proc::Task;

TEST(GoMailLayout, IncludesLocksDir) {
  std::vector<std::string> dirs = GoMail::DirLayout(2);
  EXPECT_NE(std::find(dirs.begin(), dirs.end(), "locks"), dirs.end());
  EXPECT_NE(std::find(dirs.begin(), dirs.end(), "spool"), dirs.end());
  EXPECT_NE(std::find(dirs.begin(), dirs.end(), "user1"), dirs.end());
}

class GoMailTest : public ::testing::Test {
 protected:
  GoMailTest()
      : fs_(&world_, GoMail::DirLayout(2)), mail_(&fs_, GoMail::Options{2, 16, 16, 3, 0}) {}

  goose::World world_;
  goosefs::GooseFs fs_;
  GoMail mail_;
};

TEST_F(GoMailTest, DeliverPickupDeleteCycle) {
  auto body = [&]() -> Task<uint64_t> {
    (void)co_await mail_.Deliver(0, goosefs::BytesOfString("via gomail"));
    std::vector<Message> messages = (co_await mail_.Pickup(0)).value();
    EXPECT_EQ(messages.at(0).contents, "via gomail");
    (void)co_await mail_.Delete(0, messages.at(0).id);
    co_await mail_.Unlock(0);
    std::vector<Message> after = (co_await mail_.Pickup(0)).value();
    co_await mail_.Unlock(0);
    co_return after.size();
  };
  EXPECT_EQ(SimRun(body()), 0u);
}

TEST_F(GoMailTest, PickupHoldsAFileLock) {
  auto body = [&]() -> Task<uint64_t> {
    (void)co_await mail_.Pickup(1);
    co_return 0;
  };
  (void)SimRun(body());
  // The lock is a real file in locks/.
  EXPECT_EQ(fs_.PeekNames("locks"), std::vector<std::string>{"user1.lock"});
  auto unlock = [&]() -> Task<uint64_t> {
    co_await mail_.Unlock(1);
    co_return 0;
  };
  (void)SimRun(unlock());
  EXPECT_TRUE(fs_.PeekNames("locks").empty());
}

TEST_F(GoMailTest, DeliverTakesAndReleasesTheFileLock) {
  // The conservative baseline design: delivery holds the mailbox file lock
  // (it lacks Mailboat's verified atomic-link argument). Afterwards the
  // lock file is gone.
  auto body = [&]() -> Task<uint64_t> {
    (void)co_await mail_.Deliver(0, goosefs::BytesOfString("x"));
    co_return 0;
  };
  (void)SimRun(body());
  EXPECT_TRUE(fs_.PeekNames("locks").empty());
  EXPECT_EQ(fs_.PeekNames("user0").size(), 1u);
}

TEST_F(GoMailTest, DeliverWaitsForAHeldFileLock) {
  // With the lock file pre-created (a pickup in progress), delivery spins
  // until it is released — run both as threads and check both finish.
  proc::Scheduler sched;
  proc::SchedulerScope scope(&sched);
  bool delivered = false;
  auto locker = [&]() -> Task<void> {
    (void)co_await mail_.Pickup(0);  // takes locks/user0.lock
    for (int i = 0; i < 3; ++i) {
      co_await proc::Yield();
    }
    co_await mail_.Unlock(0);
  };
  auto deliverer = [&]() -> Task<void> {
    (void)co_await mail_.Deliver(0, goosefs::BytesOfString("y"));
    delivered = true;
  };
  sched.Spawn(locker());
  sched.Spawn(deliverer());
  // Round-robin: the deliverer's create-excl spin must not starve forever.
  size_t turn = 0;
  int guard = 0;
  while (!sched.AllDone() && guard++ < 2000) {
    auto runnable = sched.RunnableThreads();
    ASSERT_FALSE(runnable.empty());
    sched.Step(runnable[turn++ % runnable.size()]);
  }
  EXPECT_TRUE(sched.AllDone());
  EXPECT_TRUE(delivered);
}

TEST_F(GoMailTest, RecoverClearsSpoolAndStaleLocks) {
  auto body = [&]() -> Task<uint64_t> {
    (void)co_await mail_.Pickup(0);  // lock file exists
    goosefs::Fd fd = (co_await fs_.Create("spool", "tmp-stale")).value();
    (void)co_await fs_.Close(fd);
    co_return 0;
  };
  (void)SimRun(body());
  world_.Crash();
  auto recover = [&]() -> Task<uint64_t> {
    co_await mail_.Recover();
    co_return 0;
  };
  (void)SimRun(recover());
  EXPECT_TRUE(fs_.PeekNames("spool").empty());
  EXPECT_TRUE(fs_.PeekNames("locks").empty());
}

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/pcc_workload_test";
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string root_;
};

TEST_F(WorkloadTest, MailboatCompletesAllRequests) {
  goosefs::PosixFilesys fs(root_, {.cache_dir_fds = true});
  ASSERT_TRUE(fs.EnsureDirs(Mailboat::DirLayout(4)).ok());
  goose::World world;
  Mailboat mail(&world, &fs, Mailboat::Options{4, 4096, 512, 7});
  WorkloadOptions options;
  options.num_users = 4;
  options.total_requests = 200;
  options.msg_len = 256;
  WorkloadResult result = RunMixedWorkload(&mail, 2, options);
  EXPECT_EQ(result.requests, 200u);
  EXPECT_EQ(result.delivers + result.pickups, 200u);
  EXPECT_GT(result.delivers, 0u);
  EXPECT_GT(result.pickups, 0u);
  EXPECT_GT(result.requests_per_sec(), 0.0);
}

TEST_F(WorkloadTest, GoMailCompletesAllRequests) {
  goosefs::PosixFilesys fs(root_, {.cache_dir_fds = false});
  ASSERT_TRUE(fs.EnsureDirs(GoMail::DirLayout(4)).ok());
  GoMail mail(&fs, GoMail::Options{4, 4096, 512, 9, 0});
  WorkloadOptions options;
  options.num_users = 4;
  options.total_requests = 120;
  options.msg_len = 128;
  WorkloadResult result = RunMixedWorkload(&mail, 2, options);
  EXPECT_EQ(result.delivers + result.pickups, 120u);
}

TEST_F(WorkloadTest, SingleThreadDeterministicCounts) {
  goosefs::PosixFilesys fs(root_, {.cache_dir_fds = true});
  ASSERT_TRUE(fs.EnsureDirs(Mailboat::DirLayout(2)).ok());
  goose::World world;
  Mailboat mail(&world, &fs, Mailboat::Options{2, 4096, 512, 7});
  WorkloadOptions options;
  options.num_users = 2;
  options.total_requests = 50;
  options.msg_len = 64;
  options.seed = 11;
  WorkloadResult result = RunMixedWorkload(&mail, 1, options);
  EXPECT_EQ(result.requests, 50u);
  EXPECT_EQ(result.delivers + result.pickups, 50u);
}

}  // namespace
}  // namespace perennial::mailboat
