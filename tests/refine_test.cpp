// Tests for src/refine: the linearizability checker (with crash transitions
// and helping) and the schedule/crash-point explorer, using a small
// register specification.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/cap/crash_invariant.h"
#include "src/disk/disk.h"
#include "src/goose/heap.h"
#include "src/goose/mutex.h"
#include "src/goose/world.h"
#include "src/refine/explorer.h"
#include "src/refine/history.h"
#include "src/refine/linearize.h"
#include "src/tsys/transition.h"

namespace perennial::refine {
namespace {

// ----- A register specification: write(v) / read() -> v, durable across
// crashes (crash transition is the identity). -----
struct RegSpec {
  struct State {
    uint64_t v = 0;
    friend bool operator==(const State&, const State&) = default;
  };
  struct Op {
    bool is_write = false;
    uint64_t arg = 0;
  };
  using Ret = uint64_t;  // reads return the value; writes return 0

  State Initial() const { return {}; }

  tsys::Outcome<State, Ret> Step(const State& s, const Op& op) const {
    if (op.is_write) {
      return tsys::Outcome<State, Ret>::One(State{op.arg}, 0);
    }
    return tsys::Outcome<State, Ret>::One(s, s.v);
  }

  std::vector<State> CrashSteps(const State& s) const { return {s}; }

  static std::string StateKey(const State& s) { return std::to_string(s.v); }
  static std::string RetKey(const Ret& r) { return std::to_string(r); }
  static std::string OpName(const Op& op) {
    return op.is_write ? "write(" + std::to_string(op.arg) + ")" : "read()";
  }
};

RegSpec::Op Write(uint64_t v) { return RegSpec::Op{true, v}; }
RegSpec::Op Read() { return RegSpec::Op{false, 0}; }

using Hist = History<RegSpec>;

TEST(Linearize, EmptyHistoryIsLinearizable) {
  RegSpec spec;
  LinearizabilityChecker<RegSpec> checker(&spec);
  Hist h;
  EXPECT_EQ(checker.Check(h), std::nullopt);
}

TEST(Linearize, SequentialWriteReadOk) {
  RegSpec spec;
  LinearizabilityChecker<RegSpec> checker(&spec);
  Hist h;
  uint64_t w = h.Invoke(0, Write(5));
  h.Return(w, 0);
  uint64_t r = h.Invoke(0, Read());
  h.Return(r, 5);
  EXPECT_EQ(checker.Check(h), std::nullopt);
}

TEST(Linearize, ReadOfNeverWrittenValueFails) {
  RegSpec spec;
  LinearizabilityChecker<RegSpec> checker(&spec);
  Hist h;
  uint64_t r = h.Invoke(0, Read());
  h.Return(r, 5);
  EXPECT_NE(checker.Check(h), std::nullopt);
}

TEST(Linearize, ConcurrentWriteCanLinearizeBeforeOverlappingRead) {
  RegSpec spec;
  LinearizabilityChecker<RegSpec> checker(&spec);
  Hist h;
  uint64_t w = h.Invoke(0, Write(1));
  uint64_t r = h.Invoke(1, Read());
  h.Return(r, 1);  // read observed the concurrent write
  h.Return(w, 0);
  EXPECT_EQ(checker.Check(h), std::nullopt);
}

TEST(Linearize, ConcurrentReadMayAlsoMissTheWrite) {
  RegSpec spec;
  LinearizabilityChecker<RegSpec> checker(&spec);
  Hist h;
  uint64_t w = h.Invoke(0, Write(1));
  uint64_t r = h.Invoke(1, Read());
  h.Return(r, 0);  // read linearized before the write
  h.Return(w, 0);
  EXPECT_EQ(checker.Check(h), std::nullopt);
}

TEST(Linearize, ReadCannotSeeAFutureWrite) {
  RegSpec spec;
  LinearizabilityChecker<RegSpec> checker(&spec);
  Hist h;
  uint64_t r = h.Invoke(1, Read());
  h.Return(r, 1);  // returned before write(1) was even invoked
  uint64_t w = h.Invoke(0, Write(1));
  h.Return(w, 0);
  EXPECT_NE(checker.Check(h), std::nullopt);
}

TEST(Linearize, CompletedWriteMustSurviveCrash) {
  RegSpec spec;
  LinearizabilityChecker<RegSpec> checker(&spec);
  Hist h;
  uint64_t w = h.Invoke(0, Write(7));
  h.Return(w, 0);
  h.Crash();
  uint64_t r = h.Invoke(1, Read());
  h.Return(r, 0);  // durable write lost: must be rejected
  EXPECT_NE(checker.Check(h), std::nullopt);
}

TEST(Linearize, PendingWriteMayCommitAtCrash) {
  RegSpec spec;
  LinearizabilityChecker<RegSpec> checker(&spec);
  Hist h;
  h.Invoke(0, Write(7));  // never returns
  h.Crash();
  uint64_t r = h.Invoke(1, Read());
  h.Return(r, 7);
  EXPECT_EQ(checker.Check(h), std::nullopt);
}

TEST(Linearize, PendingWriteMayAlsoVanishAtCrash) {
  RegSpec spec;
  LinearizabilityChecker<RegSpec> checker(&spec);
  Hist h;
  h.Invoke(0, Write(7));
  h.Crash();
  uint64_t r = h.Invoke(1, Read());
  h.Return(r, 0);
  EXPECT_EQ(checker.Check(h), std::nullopt);
}

TEST(Linearize, PendingWriteCannotHalfCommit) {
  RegSpec spec;
  LinearizabilityChecker<RegSpec> checker(&spec);
  Hist h;
  h.Invoke(0, Write(7));
  h.Crash();
  uint64_t r = h.Invoke(1, Read());
  h.Return(r, 3);  // neither 0 nor 7: corruption
  EXPECT_NE(checker.Check(h), std::nullopt);
}

TEST(Linearize, HelpedOpMustBeVisibleAfterCrash) {
  RegSpec spec;
  LinearizabilityChecker<RegSpec> checker(&spec);
  Hist h;
  uint64_t w = h.Invoke(0, Write(7));
  h.Crash();
  h.Helped(w);  // recovery claims it committed the write
  uint64_t r = h.Invoke(1, Read());
  h.Return(r, 0);  // ...but the effect is missing
  EXPECT_NE(checker.Check(h), std::nullopt);
}

TEST(Linearize, HelpedOpVisibleIsAccepted) {
  RegSpec spec;
  LinearizabilityChecker<RegSpec> checker(&spec);
  Hist h;
  uint64_t w = h.Invoke(0, Write(7));
  h.Crash();
  h.Helped(w);
  uint64_t r = h.Invoke(1, Read());
  h.Return(r, 7);
  EXPECT_EQ(checker.Check(h), std::nullopt);
}

TEST(Linearize, TwoPendingWritesEitherOrderAtCrash) {
  RegSpec spec;
  LinearizabilityChecker<RegSpec> checker(&spec);
  Hist h;
  h.Invoke(0, Write(1));
  h.Invoke(1, Write(2));
  h.Crash();
  uint64_t r = h.Invoke(2, Read());
  h.Return(r, 1);  // write(2) then write(1), or write(2) dropped
  EXPECT_EQ(checker.Check(h), std::nullopt);
  Hist h2;
  h2.Invoke(0, Write(1));
  h2.Invoke(1, Write(2));
  h2.Crash();
  uint64_t r2 = h2.Invoke(2, Read());
  h2.Return(r2, 2);
  EXPECT_EQ(checker.Check(h2), std::nullopt);
}

// A lossy-register spec: the crash transition may reset the value to 0
// (modeling group-commit-style allowed loss).
struct LossyRegSpec : RegSpec {
  std::vector<State> CrashSteps(const State& s) const { return {s, State{0}}; }
};

TEST(Linearize, LossyCrashAllowsReset) {
  LossyRegSpec spec;
  LinearizabilityChecker<LossyRegSpec> checker(&spec);
  History<LossyRegSpec> h;
  uint64_t w = h.Invoke(0, Write(9));
  h.Return(w, 0);
  h.Crash();
  uint64_t r = h.Invoke(1, Read());
  h.Return(r, 0);  // allowed: crash step may lose the value
  EXPECT_EQ(checker.Check(h), std::nullopt);
}

// A spec whose read is undefined when the register holds 13: histories
// reaching it are accepted wholesale.
struct UbRegSpec : RegSpec {
  tsys::Outcome<State, Ret> Step(const State& s, const Op& op) const {
    if (!op.is_write && s.v == 13) {
      return tsys::Outcome<State, Ret>::Undef();
    }
    return RegSpec::Step(s, op);
  }
};

TEST(Linearize, UndefinedSpecBehaviorAcceptsAnything) {
  UbRegSpec spec;
  LinearizabilityChecker<UbRegSpec> checker(&spec);
  History<UbRegSpec> h;
  uint64_t w = h.Invoke(0, Write(13));
  h.Return(w, 0);
  uint64_t r = h.Invoke(0, Read());
  h.Return(r, 999);  // nonsense, but reachable only via UB
  EXPECT_EQ(checker.Check(h), std::nullopt);
}

// ----- Explorer end-to-end with small register implementations -----

// A correct volatile register: a heap cell protected by a mutex.
struct LockedRegister {
  goose::World world;
  goose::Heap heap{&world};
  goose::Mutex mu{&world};
  goose::Ptr<uint64_t> cell;

  LockedRegister() { cell = heap.New<uint64_t>(0); }

  proc::Task<uint64_t> Run(RegSpec::Op op) {
    co_await mu.Lock();
    uint64_t result = 0;
    if (op.is_write) {
      co_await heap.Store(cell, op.arg);
    } else {
      result = co_await heap.Load(cell);
    }
    co_await mu.Unlock();
    co_return result;
  }
};

Instance<RegSpec> MakeLockedRegisterInstance() {
  auto sys = std::make_shared<LockedRegister>();
  Instance<RegSpec> inst;
  inst.keep_alive = sys;
  inst.world = &sys->world;
  inst.client_ops = {{Write(1)}, {Read()}, {Write(2)}};
  inst.run_op = [sys](int, uint64_t, RegSpec::Op op) { return sys->Run(op); };
  inst.recover = nullptr;  // volatile system: no crash exploration
  return inst;
}

TEST(Explorer, ExhaustiveLockedRegisterIsLinearizable) {
  ExplorerOptions opts;
  opts.max_crashes = 0;
  Explorer<RegSpec> ex(RegSpec{}, MakeLockedRegisterInstance, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.executions, 10u);  // plural schedules actually explored
  EXPECT_FALSE(report.truncated);
}

// A racy register (no lock): the explorer must find the Goose race UB.
struct RacyRegister {
  goose::World world;
  goose::Heap heap{&world};
  goose::Ptr<uint64_t> cell;

  RacyRegister() { cell = heap.New<uint64_t>(0); }

  proc::Task<uint64_t> Run(RegSpec::Op op) {
    if (op.is_write) {
      co_await heap.Store(cell, op.arg);
      co_return 0;
    }
    co_return co_await heap.Load(cell);
  }
};

TEST(Explorer, FindsRaceInUnlockedRegister) {
  auto factory = [] {
    auto sys = std::make_shared<RacyRegister>();
    Instance<RegSpec> inst;
    inst.keep_alive = sys;
    inst.world = &sys->world;
    inst.client_ops = {{Write(1)}, {Write(2)}};
    inst.run_op = [sys](int, uint64_t, RegSpec::Op op) { return sys->Run(op); };
    return inst;
  };
  ExplorerOptions opts;
  opts.max_crashes = 0;
  Explorer<RegSpec> ex(RegSpec{}, factory, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "undefined-behavior");
}

// A register that writes the wrong value: must show up as non-linearizable.
struct OffByOneRegister : LockedRegister {
  proc::Task<uint64_t> Run(RegSpec::Op op) {
    if (op.is_write) {
      op.arg += 1;  // bug
    }
    co_return co_await LockedRegister::Run(op);
  }
};

TEST(Explorer, FindsWrongValueAsNonLinearizable) {
  auto factory = [] {
    auto sys = std::make_shared<OffByOneRegister>();
    Instance<RegSpec> inst;
    inst.keep_alive = sys;
    inst.world = &sys->world;
    inst.client_ops = {{Write(1)}};
    inst.run_op = [sys](int, uint64_t, RegSpec::Op op) { return sys->Run(op); };
    inst.observer_ops = {Read()};
    return inst;
  };
  ExplorerOptions opts;
  opts.max_crashes = 0;
  Explorer<RegSpec> ex(RegSpec{}, factory, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "non-linearizable");
}

// A durable register on a disk block, with a no-op recovery: exhaustive
// crash exploration should pass (the disk write is atomic).
struct DiskRegister {
  goose::World world;
  disk::Disk d{&world, 1, disk::BlockOfU64(0)};
  bool zero_on_recovery = false;  // mutation: a recovery that wipes data

  proc::Task<uint64_t> Run(RegSpec::Op op) {
    if (op.is_write) {
      (void)co_await d.Write(0, disk::BlockOfU64(op.arg));
      co_return 0;
    }
    Result<disk::Block> r = co_await d.Read(0);
    co_return disk::U64OfBlock(r.value());
  }

  proc::Task<void> Recover() {
    if (zero_on_recovery) {
      (void)co_await d.Write(0, disk::BlockOfU64(0));
    }
    co_return;
  }
};

Instance<RegSpec> MakeDiskRegisterInstance(bool zero_on_recovery) {
  auto sys = std::make_shared<DiskRegister>();
  sys->zero_on_recovery = zero_on_recovery;
  Instance<RegSpec> inst;
  inst.keep_alive = sys;
  inst.world = &sys->world;
  inst.client_ops = {{Write(5)}};
  inst.run_op = [sys](int, uint64_t, RegSpec::Op op) { return sys->Run(op); };
  inst.recover = [sys](History<RegSpec>*) { return sys->Recover(); };
  inst.observer_ops = {Read()};
  return inst;
}

TEST(Explorer, DiskRegisterSurvivesCrashesEverywhere) {
  ExplorerOptions opts;
  opts.max_crashes = 2;  // including a crash during recovery
  Explorer<RegSpec> ex(
      RegSpec{}, [] { return MakeDiskRegisterInstance(false); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.crashes_injected, 0u);
}

TEST(Explorer, FindsRecoveryThatWipesDurableData) {
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<RegSpec> ex(
      RegSpec{}, [] { return MakeDiskRegisterInstance(true); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  // The write returns, then a crash + wiping recovery loses it.
  EXPECT_EQ(report.violations[0].kind, "non-linearizable");
}

TEST(Explorer, CrashInvariantViolationIsReported) {
  auto factory = [] {
    auto sys = std::make_shared<DiskRegister>();
    auto invariants = std::make_shared<cap::CrashInvariants>();
    invariants->Register("value-is-even", [sys] {
      return disk::U64OfBlock(sys->d.PeekBlock(0)) % 2 == 0;
    });
    struct Bundle {
      std::shared_ptr<DiskRegister> sys;
      std::shared_ptr<cap::CrashInvariants> inv;
    };
    auto bundle = std::make_shared<Bundle>(Bundle{sys, invariants});
    Instance<RegSpec> inst;
    inst.keep_alive = bundle;
    inst.world = &sys->world;
    inst.crash_invariants = invariants.get();
    inst.client_ops = {{Write(5)}};  // writes an odd value: invariant breaks
    inst.run_op = [sys](int, uint64_t, RegSpec::Op op) { return sys->Run(op); };
    inst.recover = [sys](History<RegSpec>*) { return sys->Recover(); };
    return inst;
  };
  ExplorerOptions opts;
  Explorer<RegSpec> ex(RegSpec{}, factory, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "crash-invariant");
}

TEST(Explorer, StepBoundCatchesInfiniteLoop) {
  struct Spinner {
    goose::World world;
    proc::Task<uint64_t> Run() {
      while (true) {
        co_await proc::Yield();
      }
    }
  };
  auto factory = [] {
    auto sys = std::make_shared<Spinner>();
    Instance<RegSpec> inst;
    inst.keep_alive = sys;
    inst.world = &sys->world;
    inst.client_ops = {{Read()}};
    inst.run_op = [sys](int, uint64_t, RegSpec::Op) { return sys->Run(); };
    return inst;
  };
  ExplorerOptions opts;
  opts.max_crashes = 0;
  opts.max_steps_per_run = 200;
  Explorer<RegSpec> ex(RegSpec{}, factory, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "step-bound");
}

TEST(Explorer, DeadlockIsReported) {
  struct Stuck {
    goose::World world;
    goose::Mutex mu{&world};
    proc::Task<uint64_t> Run() {
      co_await mu.Lock();
      co_await mu.Lock();  // self-deadlock
      co_return 0;
    }
  };
  auto factory = [] {
    auto sys = std::make_shared<Stuck>();
    Instance<RegSpec> inst;
    inst.keep_alive = sys;
    inst.world = &sys->world;
    inst.client_ops = {{Read()}};
    inst.run_op = [sys](int, uint64_t, RegSpec::Op) { return sys->Run(); };
    return inst;
  };
  ExplorerOptions opts;
  opts.max_crashes = 0;
  Explorer<RegSpec> ex(RegSpec{}, factory, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "deadlock");
}

TEST(Explorer, PreemptionBoundShrinksTheSpace) {
  ExplorerOptions unbounded;
  unbounded.max_crashes = 0;
  Explorer<RegSpec> full(RegSpec{}, MakeLockedRegisterInstance, unbounded);
  Report full_report = full.Run();
  ASSERT_TRUE(full_report.ok());

  ExplorerOptions bounded = unbounded;
  bounded.max_preemptions = 1;
  Explorer<RegSpec> small(RegSpec{}, MakeLockedRegisterInstance, bounded);
  Report small_report = small.Run();
  EXPECT_TRUE(small_report.ok()) << small_report.Summary();
  EXPECT_LT(small_report.executions, full_report.executions);
  EXPECT_GT(small_report.executions, 1u);  // still explores some interleavings
}

TEST(Explorer, PreemptionBoundStillFindsRaces) {
  // The unlocked-register race needs only one preemption (inside a store).
  auto factory = [] {
    auto sys = std::make_shared<RacyRegister>();
    Instance<RegSpec> inst;
    inst.keep_alive = sys;
    inst.world = &sys->world;
    inst.client_ops = {{Write(1)}, {Write(2)}};
    inst.run_op = [sys](int, uint64_t, RegSpec::Op op) { return sys->Run(op); };
    return inst;
  };
  ExplorerOptions opts;
  opts.max_crashes = 0;
  opts.max_preemptions = 1;
  Explorer<RegSpec> ex(RegSpec{}, factory, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "undefined-behavior");
}

TEST(Explorer, ZeroPreemptionsStillRunsAllThreadsToCompletion) {
  ExplorerOptions opts;
  opts.max_crashes = 0;
  opts.max_preemptions = 0;  // non-preemptive schedules only
  Explorer<RegSpec> ex(RegSpec{}, MakeLockedRegisterInstance, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.executions, 1u);
}

TEST(Explorer, MaxExecutionsTruncatesDfs) {
  ExplorerOptions opts;
  opts.max_crashes = 0;
  opts.max_executions = 5;  // far below the full space
  Explorer<RegSpec> ex(RegSpec{}, MakeLockedRegisterInstance, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.truncated);
  EXPECT_EQ(report.executions, 5u);
}

TEST(Explorer, ReportSummaryMentionsViolations) {
  auto factory = [] {
    auto sys = std::make_shared<OffByOneRegister>();
    Instance<RegSpec> inst;
    inst.keep_alive = sys;
    inst.world = &sys->world;
    inst.client_ops = {{Write(1)}};
    inst.run_op = [sys](int, uint64_t, RegSpec::Op op) { return sys->Run(op); };
    inst.observer_ops = {Read()};
    return inst;
  };
  ExplorerOptions opts;
  opts.max_crashes = 0;
  opts.max_violations = 1;
  Explorer<RegSpec> ex(RegSpec{}, factory, opts);
  Report report = ex.Run();
  std::string summary = report.Summary();
  EXPECT_NE(summary.find("violations=1"), std::string::npos);
  EXPECT_NE(summary.find("non-linearizable"), std::string::npos);
}

TEST(Explorer, ViolationCarriesTheSchedule) {
  auto factory = [] {
    auto sys = std::make_shared<OffByOneRegister>();
    Instance<RegSpec> inst;
    inst.keep_alive = sys;
    inst.world = &sys->world;
    inst.client_ops = {{Write(1)}};
    inst.run_op = [sys](int, uint64_t, RegSpec::Op op) { return sys->Run(op); };
    inst.observer_ops = {Read()};
    return inst;
  };
  ExplorerOptions opts;
  opts.max_crashes = 0;
  opts.max_violations = 1;
  Explorer<RegSpec> ex(RegSpec{}, factory, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  // The trace replays as a space-separated list of thread/crash labels.
  EXPECT_NE(report.violations[0].trace.find("t0"), std::string::npos);
}

TEST(History, ToStringRendersAllEventKinds) {
  Hist h;
  uint64_t w = h.Invoke(0, Write(5));
  h.Return(w, 0);
  h.Crash();
  h.Helped(w);
  std::string out = h.ToString();
  EXPECT_NE(out.find("invoke #1"), std::string::npos);
  EXPECT_NE(out.find("write(5)"), std::string::npos);
  EXPECT_NE(out.find("CRASH"), std::string::npos);
  EXPECT_NE(out.find("helped #1"), std::string::npos);
}

TEST(Linearize, BlockedOperationsDelayUntilEnabled) {
  // A spec op that is blocked (no branches) until the state allows it:
  // linearization must order it after the enabling write.
  struct GateSpec : RegSpec {
    tsys::Outcome<State, Ret> Step(const State& s, const Op& op) const {
      if (!op.is_write && s.v == 0) {
        return tsys::Outcome<State, Ret>::None();  // reads blocked at 0
      }
      return RegSpec::Step(s, op);
    }
  };
  GateSpec spec;
  LinearizabilityChecker<GateSpec> checker(&spec);
  History<GateSpec> h;
  uint64_t r = h.Invoke(0, Read());
  uint64_t w = h.Invoke(1, Write(3));
  h.Return(w, 0);
  h.Return(r, 3);  // the read could only linearize after the write
  EXPECT_EQ(checker.Check(h), std::nullopt);

  History<GateSpec> h2;
  uint64_t r2 = h2.Invoke(0, Read());
  h2.Return(r2, 0);  // impossible: reads are blocked while v == 0
  uint64_t w2 = h2.Invoke(1, Write(3));
  h2.Return(w2, 0);
  EXPECT_NE(checker.Check(h2), std::nullopt);
}

TEST(Explorer, RandomModeAlsoWorks) {
  ExplorerOptions opts;
  opts.mode = ExplorerOptions::Mode::kRandom;
  opts.random_runs = 200;
  opts.seed = 42;
  opts.max_crashes = 1;
  Explorer<RegSpec> ex(
      RegSpec{}, [] { return MakeDiskRegisterInstance(false); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.executions, 200u);
}

TEST(Explorer, OdometerSurvivesEarlyAbortedRuns) {
  // Regression guard for the DFS odometer's trim path: a run that aborts
  // early (here: deadlock) consumes fewer decisions than the stale path
  // recorded by the previous, longer run, so Run() must first trim the
  // path to the replayed decision count (`path.resize(counts.size())`)
  // before advancing — and still enumerate the full remaining space.
  struct TwoLocks {
    goose::World world;
    goose::Mutex a{&world};
    goose::Mutex b{&world};
    proc::Task<void> LockBoth(goose::Mutex* first, goose::Mutex* second) {
      co_await first->Lock();
      co_await second->Lock();
      co_await second->Unlock();
      co_await first->Unlock();
    }
  };
  auto factory = [] {
    auto sys = std::make_shared<TwoLocks>();
    Instance<RegSpec> inst;
    inst.keep_alive = sys;
    inst.world = &sys->world;
    // Opposite acquisition orders: some interleavings deadlock, others
    // complete — the DFS sequence mixes early-aborted and full-length runs.
    inst.client_programs = {
        [sys](OpRunner<RegSpec>*) { return sys->LockBoth(&sys->a, &sys->b); },
        [sys](OpRunner<RegSpec>*) { return sys->LockBoth(&sys->b, &sys->a); },
    };
    return inst;
  };
  ExplorerOptions opts;
  opts.max_crashes = 0;
  opts.max_violations = 1 << 20;  // never stop early: enumerate everything
  // POR off: the arithmetic below accounts every execution to either a
  // checked history or a deadlock; sleep-set pruning adds a third outcome.
  opts.use_por = false;
  Explorer<RegSpec> ex(RegSpec{}, factory, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.truncated);
  size_t deadlocks = 0;
  for (const Violation& v : report.violations) {
    EXPECT_EQ(v.kind, "deadlock");
    ++deadlocks;
  }
  // Both behaviors must be present, and together they must account for
  // every enumerated execution: aborted runs may not swallow the rest of
  // the space, completing runs may not be revisited.
  EXPECT_GT(deadlocks, 0u);
  EXPECT_GT(report.histories_checked, 0u);
  EXPECT_EQ(report.executions, report.histories_checked + deadlocks);
  // The enumeration is deterministic: a second full run sees the identical
  // space (including the same violation traces, via Summary()).
  Explorer<RegSpec> again(RegSpec{}, factory, opts);
  EXPECT_EQ(again.Run().Summary(), report.Summary());
}

TEST(Explorer, RandomModeSameSeedSameTrace) {
  // Seed determinism of the random driver (and its uniform crash
  // sampling): identical options must replay the identical run sequence,
  // violation for violation, trace for trace.
  auto factory = [] { return MakeDiskRegisterInstance(true); };  // buggy: wipes on recovery
  ExplorerOptions opts;
  opts.mode = ExplorerOptions::Mode::kRandom;
  opts.random_runs = 300;
  opts.seed = 123;
  opts.max_crashes = 1;
  opts.max_violations = 1 << 20;
  Explorer<RegSpec> first(RegSpec{}, factory, opts);
  Report a = first.Run();
  Explorer<RegSpec> second(RegSpec{}, factory, opts);
  Report b = second.Run();
  ASSERT_FALSE(a.ok());  // the wiping recovery is reachable by random crashes
  ASSERT_EQ(a.violations.size(), b.violations.size());
  for (size_t i = 0; i < a.violations.size(); ++i) {
    EXPECT_EQ(a.violations[i].trace, b.violations[i].trace);
  }
  EXPECT_EQ(a.Summary(), b.Summary());
}

TEST(Explorer, ProgressCallbackFiresEveryInterval) {
  std::vector<ExplorerProgress> seen;
  ExplorerOptions opts;
  opts.max_crashes = 0;
  opts.progress_interval = 8;
  opts.progress_callback = [&](const ExplorerProgress& p) { seen.push_back(p); };
  Explorer<RegSpec> ex(RegSpec{}, MakeLockedRegisterInstance, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  ASSERT_EQ(seen.size(), report.executions / 8);
  ASSERT_FALSE(seen.empty());
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].executions, 8 * (i + 1));
    EXPECT_EQ(seen[i].violations, 0u);
  }
  EXPECT_LE(seen.back().total_steps, report.total_steps);
}

TEST(Explorer, DedupHistoriesKeepsVerdictAndCountsChecks) {
  // Dedup must not change the verdict, only skip redundant spec searches.
  ExplorerOptions opts;
  opts.max_crashes = 0;
  opts.dedup_histories = true;
  Explorer<RegSpec> ex(RegSpec{}, MakeLockedRegisterInstance, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  // Three fixed ops produce few distinct histories over many schedules.
  EXPECT_GT(report.histories_deduped, 0u);
  EXPECT_LE(report.histories_deduped, report.histories_checked);

  ExplorerOptions off = opts;
  off.dedup_histories = false;
  Explorer<RegSpec> baseline(RegSpec{}, MakeLockedRegisterInstance, off);
  Report base = baseline.Run();
  EXPECT_EQ(report.executions, base.executions);
  EXPECT_EQ(report.histories_checked, base.histories_checked);
  EXPECT_LT(report.spec_states_explored, base.spec_states_explored);
}

TEST(Explorer, EnvEventFiresWithinBudget) {
  auto factory = [] {
    auto sys = std::make_shared<DiskRegister>();
    Instance<RegSpec> inst;
    inst.keep_alive = sys;
    inst.world = &sys->world;
    inst.client_ops = {{Write(4)}};
    inst.run_op = [sys](int, uint64_t, RegSpec::Op op) { return sys->Run(op); };
    inst.recover = [sys](History<RegSpec>*) { return sys->Recover(); };
    // Poking the same value is spec-invisible; the event must not break
    // refinement, and budget limits it to one firing.
    inst.env_events.push_back(
        EnvEvent{"poke-noop", 1, [sys] { sys->d.PokeBlock(0, sys->d.PeekBlock(0)); }});
    inst.observer_ops = {Read()};
    return inst;
  };
  ExplorerOptions opts;
  opts.max_crashes = 0;
  Explorer<RegSpec> ex(RegSpec{}, factory, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace perennial::refine
