// Tests for the shadow-copy, WAL, and group-commit patterns: unit behavior,
// exhaustive refinement with crash points, and rejection of buggy variants.
#include <gtest/gtest.h>

#include "src/refine/explorer.h"
#include "src/systems/pattern_harness.h"
#include "tests/sim_util.h"

namespace perennial::systems {
namespace {

using perennial::testing::SimRun;
using perennial::testing::SimRunVoid;
using proc::Task;
using refine::Explorer;
using refine::ExplorerOptions;
using refine::Report;

// ---------- Shadow copy ----------

TEST(ShadowUnit, WriteThenReadSequential) {
  goose::World world;
  ShadowPair sys(&world);
  auto body = [&]() -> Task<std::pair<uint64_t, uint64_t>> {
    co_await sys.WritePair(3, 4);
    co_return co_await sys.ReadPair();
  };
  EXPECT_EQ(SimRun(body()), std::make_pair(uint64_t{3}, uint64_t{4}));
}

TEST(ShadowUnit, SecondWriteAlternatesCopies) {
  goose::World world;
  ShadowPair sys(&world);
  auto body = [&]() -> Task<std::pair<uint64_t, uint64_t>> {
    co_await sys.WritePair(1, 2);
    co_await sys.WritePair(5, 6);
    co_return co_await sys.ReadPair();
  };
  EXPECT_EQ(SimRun(body()), std::make_pair(uint64_t{5}, uint64_t{6}));
  EXPECT_EQ(sys.PeekPair(), std::make_pair(uint64_t{5}, uint64_t{6}));
}

TEST(ShadowUnit, RecoverRestoresService) {
  goose::World world;
  ShadowPair sys(&world);
  auto write = [&]() -> Task<void> { co_await sys.WritePair(7, 8); };
  SimRunVoid(write());
  world.Crash();
  auto recover = [&]() -> Task<void> { co_await sys.Recover(); };
  SimRunVoid(recover());
  auto read = [&]() -> Task<std::pair<uint64_t, uint64_t>> { co_return co_await sys.ReadPair(); };
  EXPECT_EQ(SimRun(read()), std::make_pair(uint64_t{7}, uint64_t{8}));
}

TEST(ShadowCheck, ConcurrentWritersWithCrashesRefine) {
  ShadowHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeWrite(3, 4)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<PairSpec> ex(PairSpec{}, [&] { return MakeShadowInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_FALSE(report.truncated);
}

TEST(ShadowCheck, WriterReaderWithCrashDuringRecovery) {
  ShadowHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeRead()}};
  ExplorerOptions opts;
  opts.max_crashes = 2;
  Explorer<PairSpec> ex(PairSpec{}, [&] { return MakeShadowInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(ShadowMutation, InPlaceUpdateTearsOnCrash) {
  ShadowHarnessOptions options;
  // Two sequential writes so the crash can tear distinct old/new values.
  options.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)}};
  options.mutations.in_place_update = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<PairSpec> ex(PairSpec{}, [&] { return MakeShadowInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "non-linearizable");
}

TEST(ShadowMutation, FlipBeforeDataExposesGarbage) {
  ShadowHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)}};
  options.mutations.flip_before_data = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<PairSpec> ex(PairSpec{}, [&] { return MakeShadowInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
}

// ---------- Write-ahead log ----------

TEST(WalUnit, WriteThenReadSequential) {
  goose::World world;
  WalPair sys(&world);
  auto body = [&]() -> Task<std::pair<uint64_t, uint64_t>> {
    co_await sys.WritePair(9, 10, 1);
    co_return co_await sys.ReadPair();
  };
  EXPECT_EQ(SimRun(body()), std::make_pair(uint64_t{9}, uint64_t{10}));
}

TEST(WalUnit, RecoveryReplaysCommittedTxn) {
  goose::World world;
  WalPair sys(&world);
  // Drive WritePair only up to the commit point, then crash: run the write
  // on a controlled scheduler and stop after the commit-flag step.
  proc::Scheduler sched;
  {
    proc::SchedulerScope scope(&sched);
    auto write = [&]() -> Task<void> { co_await sys.WritePair(5, 6, 77); };
    sched.Spawn(write());
    // Steps: enter+lock-yield, acquire, log lo, log hi, commit flag
    // (+deposit) — the fifth step lands the commit record, then stop.
    for (int i = 0; i < 5; ++i) {
      sched.Step(0);
    }
    EXPECT_EQ(sys.PeekData(), std::make_pair(uint64_t{0}, uint64_t{0}));  // not yet applied
    sched.KillAllThreads();
  }
  world.Crash();
  uint64_t helped_id = 0;
  {
    proc::Scheduler sched2;
    proc::SchedulerScope scope(&sched2);
    auto recover = [&]() -> Task<void> {
      co_await sys.Recover([&](uint64_t id) { helped_id = id; });
    };
    sched2.Spawn(recover());
    perennial::testing::DrainLowestFirst(sched2);
  }
  EXPECT_EQ(sys.PeekData(), std::make_pair(uint64_t{5}, uint64_t{6}));
  EXPECT_EQ(helped_id, 77u);  // recovery helped the crashed write
}

TEST(WalUnit, RecoveryIgnoresUncommittedLog) {
  goose::World world;
  WalPair sys(&world);
  proc::Scheduler sched;
  {
    proc::SchedulerScope scope(&sched);
    auto write = [&]() -> Task<void> { co_await sys.WritePair(5, 6, 1); };
    sched.Spawn(write());
    for (int i = 0; i < 3; ++i) {  // lock, log lo, log hi — no commit
      sched.Step(0);
    }
    sched.KillAllThreads();
  }
  world.Crash();
  bool helped = false;
  {
    proc::Scheduler sched2;
    proc::SchedulerScope scope(&sched2);
    auto recover = [&]() -> Task<void> {
      co_await sys.Recover([&](uint64_t) { helped = true; });
    };
    sched2.Spawn(recover());
    perennial::testing::DrainLowestFirst(sched2);
  }
  EXPECT_EQ(sys.PeekData(), std::make_pair(uint64_t{0}, uint64_t{0}));
  EXPECT_FALSE(helped);
}

TEST(WalCheck, ConcurrentWritersWithCrashesRefine) {
  WalHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeWrite(3, 4)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<PairSpec> ex(PairSpec{}, [&] { return MakeWalInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_FALSE(report.truncated);
}

TEST(WalCheck, CrashDuringRecoveryIsIdempotent) {
  WalHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2)}};
  ExplorerOptions opts;
  opts.max_crashes = 2;
  Explorer<PairSpec> ex(PairSpec{}, [&] { return MakeWalInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.crashes_injected, 0u);
}

TEST(WalMutation, ApplyBeforeCommitTears) {
  WalHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)}};
  options.mutations.apply_before_commit = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<PairSpec> ex(PairSpec{}, [&] { return MakeWalInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "non-linearizable");
}

TEST(WalMutation, SkippedRecoveryIsCaught) {
  WalHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2)}};
  options.mutations.skip_recovery = true;
  // A post-recovery write forces interaction with the stale commit flag.
  options.observer_ops = {PairSpec::MakeWrite(5, 6), PairSpec::MakeRead()};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<PairSpec> ex(PairSpec{}, [&] { return MakeWalInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
}

TEST(WalMutation, RecoveryDiscardingCommittedTxnIsCaughtByHelping) {
  WalHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2)}};
  options.mutations.recovery_discards_log = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<PairSpec> ex(PairSpec{}, [&] { return MakeWalInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  // Recovery claimed "helped" but the effect is missing: the helping rule
  // in the linearization search must reject the history.
  EXPECT_EQ(report.violations[0].kind, "non-linearizable");
}

// ---------- Group commit ----------

TEST(GcUnit, BufferedWriteVisibleToRead) {
  goose::World world;
  GroupCommit sys(&world, 8);
  auto body = [&]() -> Task<uint64_t> {
    co_await sys.Write(42);
    co_return co_await sys.Read();
  };
  EXPECT_EQ(SimRun(body()), 42u);
  EXPECT_EQ(sys.PeekDurable(), 0u);  // not yet flushed
}

TEST(GcUnit, FlushMakesDurable) {
  goose::World world;
  GroupCommit sys(&world, 8);
  auto body = [&]() -> Task<void> {
    co_await sys.Write(1);
    co_await sys.Write(2);
    co_await sys.Flush();
  };
  SimRunVoid(body());
  EXPECT_EQ(sys.PeekDurable(), 2u);
  EXPECT_EQ(sys.BufferedForTesting(), 0u);
}

TEST(GcUnit, CrashLosesBufferKeepsDurable) {
  goose::World world;
  GroupCommit sys(&world, 8);
  auto body = [&]() -> Task<void> {
    co_await sys.Write(1);
    co_await sys.Flush();
    co_await sys.Write(9);  // buffered only
  };
  SimRunVoid(body());
  world.Crash();
  EXPECT_EQ(sys.BufferedForTesting(), 0u);
  EXPECT_EQ(sys.PeekDurable(), 1u);
  auto recover = [&]() -> Task<void> { co_await sys.Recover(); };
  SimRunVoid(recover());
  auto read = [&]() -> Task<uint64_t> { co_return co_await sys.Read(); };
  EXPECT_EQ(SimRun(read()), 1u);
}

TEST(GcCheck, WritersAndFlusherWithCrashesRefine) {
  GcHarnessOptions options;
  options.client_ops = {{GcSpec::MakeWrite(1)},
                        {GcSpec::MakeWrite(2)},
                        {GcSpec::MakeFlush()}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<GcSpec> ex(GcSpec{}, [&] { return MakeGcInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_FALSE(report.truncated);
}

TEST(GcCheck, ReadsInterleaveWithBufferedWrites) {
  GcHarnessOptions options;
  options.client_ops = {{GcSpec::MakeWrite(1), GcSpec::MakeFlush(), GcSpec::MakeWrite(2)},
                        {GcSpec::MakeRead(), GcSpec::MakeRead()}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<GcSpec> ex(GcSpec{}, [&] { return MakeGcInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(GcMutation, CommittingCountBeforeValuesIsCaught) {
  GcHarnessOptions options;
  // A first committed value (7) makes the torn state distinguishable: a
  // crash between the second flush's count write and its value write
  // exposes a zero block where only 7 or 9 are legal.
  options.client_ops = {
      {GcSpec::MakeWrite(7), GcSpec::MakeFlush(), GcSpec::MakeWrite(9), GcSpec::MakeFlush()}};
  options.mutations.commit_count_first = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<GcSpec> ex(GcSpec{}, [&] { return MakeGcInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "non-linearizable");
}

}  // namespace
}  // namespace perennial::systems
