// Tests for the replicated disk: unit behavior, exhaustive refinement
// checking (concurrency × crash points × disk failures), and rejection of
// the paper's buggy variants.
#include <gtest/gtest.h>

#include "src/refine/explorer.h"
#include "src/systems/repl/repl_harness.h"
#include "src/systems/repl/repl_spec.h"
#include "src/systems/repl/replicated_disk.h"
#include "tests/sim_util.h"

namespace perennial::systems {
namespace {

using perennial::testing::SimRun;
using perennial::testing::SimRunVoid;
using proc::Task;
using refine::Explorer;
using refine::ExplorerOptions;
using refine::Report;

TEST(ReplSpecTest, ReadReturnsState) {
  ReplSpec spec{2};
  ReplSpec::State s = spec.Initial();
  s.blocks[1] = 9;
  auto out = spec.Step(s, ReplSpec::MakeRead(1));
  ASSERT_EQ(out.branches.size(), 1u);
  EXPECT_EQ(out.branches[0].second, 9u);
}

TEST(ReplSpecTest, WriteUpdatesState) {
  ReplSpec spec{2};
  auto out = spec.Step(spec.Initial(), ReplSpec::MakeWrite(0, 4));
  ASSERT_EQ(out.branches.size(), 1u);
  EXPECT_EQ(out.branches[0].first.blocks[0], 4u);
}

TEST(ReplSpecTest, OutOfBoundsIsUndefined) {
  ReplSpec spec{2};
  EXPECT_TRUE(spec.Step(spec.Initial(), ReplSpec::MakeRead(2)).undefined);
  EXPECT_TRUE(spec.Step(spec.Initial(), ReplSpec::MakeWrite(5, 0)).undefined);
}

TEST(ReplSpecTest, CrashLosesNothing) {
  ReplSpec spec{1};
  ReplSpec::State s = spec.Initial();
  s.blocks[0] = 3;
  auto crashed = spec.CrashSteps(s);
  ASSERT_EQ(crashed.size(), 1u);
  EXPECT_EQ(crashed[0], s);
}

TEST(ReplicatedDiskTest, WriteThenReadSequential) {
  goose::World world;
  ReplicatedDisk rd(&world, 2);
  auto body = [&]() -> Task<uint64_t> {
    co_await rd.Write(0, 11, 1);
    co_await rd.Write(1, 22, 2);
    co_return co_await rd.Read(0) * 100 + co_await rd.Read(1);
  };
  EXPECT_EQ(SimRun(body()), 1122u);
}

TEST(ReplicatedDiskTest, ReadFailsOverToDisk2) {
  goose::World world;
  ReplicatedDisk rd(&world, 1);
  auto write = [&]() -> Task<void> { co_await rd.Write(0, 5, 1); };
  SimRunVoid(write());
  rd.FailDisk1();
  auto read = [&]() -> Task<uint64_t> { co_return co_await rd.Read(0); };
  EXPECT_EQ(SimRun(read()), 5u);
}

TEST(ReplicatedDiskTest, RecoverRepairsDivergence) {
  goose::World world;
  ReplicatedDisk rd(&world, 1);
  auto write = [&]() -> Task<void> { co_await rd.Write(0, 5, 1); };
  SimRunVoid(write());
  world.Crash();
  auto recover = [&]() -> Task<void> { co_await rd.Recover([](uint64_t) {}); };
  SimRunVoid(recover());
  auto read = [&]() -> Task<uint64_t> { co_return co_await rd.Read(0); };
  EXPECT_EQ(SimRun(read()), 5u);
}

TEST(ReplicatedDiskTest, CrashInvariantHoldsInitially) {
  goose::World world;
  ReplicatedDisk rd(&world, 2);
  EXPECT_TRUE(rd.crash_invariants().AllHold());
}

// --- Exhaustive refinement checks (the §9.1 replicated-disk result) ---

TEST(ReplCheck, TwoConcurrentWritersWithCrashesRefineTheSpec) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GT(report.crashes_injected, 0u);
  EXPECT_FALSE(report.truncated);
}

TEST(ReplCheck, WriterAndReaderWithCrashDuringRecovery) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 9)}, {ReplSpec::MakeRead(0)}};
  ExplorerOptions opts;
  opts.max_crashes = 2;  // the second crash can land inside recovery
  Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_FALSE(report.truncated);
}

TEST(ReplCheck, Disk1FailureAnywhereStillRefines) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeRead(0)}};
  options.with_disk1_failure_event = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(ReplCheck, Disk2FailureAnywhereStillRefines) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeRead(0)}};
  options.with_disk2_failure_event = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(ReplCheck, TwoAddressesTwoWritersNoCrashExhaustive) {
  ReplHarnessOptions options;
  options.num_blocks = 2;
  options.client_ops = {{ReplSpec::MakeWrite(0, 1), ReplSpec::MakeRead(1)},
                        {ReplSpec::MakeWrite(1, 2), ReplSpec::MakeRead(0)}};
  ExplorerOptions opts;
  opts.max_crashes = 0;
  Explorer<ReplSpec> ex(ReplSpec{2}, [&] { return MakeReplInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_FALSE(report.truncated);
}

TEST(ReplCheck, RandomisedLargerConfigRefines) {
  ReplHarnessOptions options;
  options.num_blocks = 3;
  options.client_ops = {{ReplSpec::MakeWrite(0, 1), ReplSpec::MakeWrite(1, 2)},
                        {ReplSpec::MakeWrite(1, 3), ReplSpec::MakeRead(0)},
                        {ReplSpec::MakeRead(2), ReplSpec::MakeWrite(2, 4)}};
  ExplorerOptions opts;
  opts.mode = ExplorerOptions::Mode::kRandom;
  opts.random_runs = 400;
  opts.seed = 7;
  opts.max_crashes = 2;
  Explorer<ReplSpec> ex(ReplSpec{3}, [&] { return MakeReplInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// --- The buggy variants must be rejected (§1's zeroing recovery, etc.) ---

TEST(ReplMutation, ZeroingRecoveryIsCaught) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.mutations.recovery_zeroes = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  // Caught either as the crash invariant breaking mid-zeroing (the disks
  // disagree with no pending write) or as a lost completed write.
  EXPECT_TRUE(report.violations[0].kind == "non-linearizable" ||
              report.violations[0].kind == "crash-invariant")
      << report.Summary();
}

TEST(ReplMutation, SkippedRecoveryIsCaught) {
  // Without recovery, a crash between the two writes leaves the disks out
  // of sync; a later disk-1 failure exposes the stale value on disk 2.
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.mutations.skip_recovery = true;
  options.with_disk1_failure_event = true;
  options.observe_repeats = 2;  // read 5 from disk 1, fail it, read 0 from disk 2
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
}

TEST(ReplMutation, MissingSecondWriteIsCaught) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.mutations.skip_second_write = true;
  options.with_disk1_failure_event = true;
  ExplorerOptions opts;
  opts.max_crashes = 0;
  Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
}

TEST(ReplMutation, UnlockedWritesAreCaught) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
  options.mutations.skip_locking = true;
  ExplorerOptions opts;
  opts.max_crashes = 0;
  Explorer<ReplSpec> ex(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
  Report report = ex.Run();
  // Caught as a capability violation (double helping deposit / torn
  // interleaving) or as a broken crash invariant / non-linearizable
  // history, depending on the first schedule that exposes it.
  ASSERT_FALSE(report.ok());
}

}  // namespace
}  // namespace perennial::systems
