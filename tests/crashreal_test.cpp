// tier2-crashreal: the cross-process crash harness against real storage.
//
// These tests fork SIGKILL-ed children and run hundreds of kill/recover
// rounds per cell, so they carry the tier-2 label and a generous timeout.
// They are meant to run WITHOUT TSan (see .claude/skills/verify/SKILL.md):
// the TSan runtime does not survive fork+SIGKILL children and would report
// on the harness, not the code under test.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "src/crashreal/runner.h"
#include "src/crashreal/trace.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PCC_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define PCC_TSAN 1
#endif

namespace perennial::crashreal {
namespace {

class CrashRealTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef PCC_TSAN
    GTEST_SKIP() << "crash harness forks SIGKILL-ed children; run without TSan";
#endif
    root_ = ::testing::TempDir() + "/pcc_crashreal_test";
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  CrashRealConfig Config(const std::string& system, const std::string& regime,
                         uint64_t rounds) {
    CrashRealConfig config;
    config.system = system;
    config.regime = regime;
    config.rounds = rounds;
    config.workdir = root_ + "/" + system + "-" + regime;
    config.artifact_dir = root_ + "/artifacts";
    return config;
  }

  std::string root_;
};

// The acceptance soak: >= 200 seeded kill/recover rounds per system per
// regime with zero divergences (and in particular zero unclassified ones).
TEST_F(CrashRealTest, Soak200RoundsPerCellIsClean) {
  for (const std::string& system : {"txnlog", "mailboat"}) {
    for (const std::string& regime : {"kill", "powerfail"}) {
      Result<SoakSummary> r = RunSoak(Config(system, regime, 200));
      ASSERT_TRUE(r.ok()) << system << "/" << regime << ": " << r.status().ToString();
      const SoakSummary& s = r.value();
      EXPECT_EQ(s.rounds, 200u) << system << "/" << regime;
      // Round 0 profiles (no kill); nearly every later round must actually
      // die at its kill point or the soak is not exercising crashes.
      EXPECT_GE(s.killed, 150u) << system << "/" << regime;
      for (const Divergence& d : s.divergences) {
        ADD_FAILURE() << system << "/" << regime << " round " << d.round << " ["
                      << d.classification << "] " << d.detail;
      }
    }
  }
}

// Replays the trace a diverging soak saved and expects the same divergence
// (round + classification) again; `expect_class` additionally pins the
// classification the first divergence must carry.
void ExpectCaughtAndReplayable(const CrashRealConfig& config, const std::string& expect_class,
                               const std::string& replay_workdir) {
  Result<SoakSummary> r = RunSoak(config);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r.value().divergences.empty()) << "seeded bug was not caught";
  const Divergence& first = r.value().divergences.front();
  EXPECT_EQ(first.classification, expect_class) << first.detail;
  for (const Divergence& d : r.value().divergences) {
    EXPECT_NE(d.classification, "unclassified") << d.detail;
    EXPECT_FALSE(d.trace_path.empty());
  }

  // One-command repro: the persisted artifact alone rebuilds the config
  // (mutations included) and reproduces the divergence.
  CrashTrace trace;
  ASSERT_TRUE(LoadCrashTrace(first.trace_path, &trace).ok()) << first.trace_path;
  CrashRealConfig replay_config = ConfigFromTrace(trace, replay_workdir);
  replay_config.artifact_dir = config.artifact_dir;
  bool reproduced = false;
  Result<SoakSummary> replay = ReplayTrace(replay_config, trace, &reproduced);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(reproduced) << "trace " << first.trace_path << " did not reproduce";
}

// Deleting TxnLog's write barriers makes commit headers race their records
// out of the volatile cache; the power-fail regime must catch it, and the
// model with the same mutation also violates => implementation-bug.
TEST_F(CrashRealTest, WriteBarrierDeletionIsCaught) {
  CrashRealConfig config = Config("txnlog", "powerfail", 100);
  ASSERT_TRUE(ApplyMutationName("no_write_barrier", &config));
  ExpectCaughtAndReplayable(config, "implementation-bug", root_ + "/replay-barrier");
}

// Reverting the dir-fsync fix (satellite of this harness's PR) leaves new
// directory entries volatile; the projection prunes them and the surviving
// mailbox misses delivered mail. The modeled GooseFs keeps metadata
// durable even with deferred data durability, so the model stays clean =>
// model-too-weak is the expected classification.
TEST_F(CrashRealTest, DirFsyncRegressionIsCaught) {
  CrashRealConfig config = Config("mailboat", "powerfail", 100);
  ASSERT_TRUE(ApplyMutationName("no_dir_fsync", &config));
  ExpectCaughtAndReplayable(config, "model-too-weak", root_ + "/replay-dirsync");
}

// A recovery that deletes user mail is visible even in the plain kill
// regime — no power-loss semantics needed.
TEST_F(CrashRealTest, RecoveryDeletingMailIsCaught) {
  CrashRealConfig config = Config("mailboat", "kill", 100);
  ASSERT_TRUE(ApplyMutationName("recovery_deletes_mail", &config));
  Result<SoakSummary> r = RunSoak(config);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().divergences.empty()) << "seeded bug was not caught";
  for (const Divergence& d : r.value().divergences) {
    EXPECT_NE(d.classification, "unclassified") << d.detail;
  }
}

TEST_F(CrashRealTest, TraceArtifactRoundTrips) {
  CrashTrace trace;
  trace.system = "mailboat";
  trace.regime = "powerfail";
  trace.seed = 42;
  trace.round = 17;
  trace.kill_at = 9;
  trace.ops_per_round = 6;
  trace.num_addrs = 6;
  trace.log_capacity = 4;
  trace.num_users = 3;
  trace.sync_on_deliver = true;
  trace.fsync_dirs = false;
  trace.mutations = {"no_dir_fsync"};
  trace.classification = "model-too-weak";
  trace.detail = "post-recovery mailbox mismatch: example";
  CrashTrace parsed;
  ASSERT_TRUE(ParseCrashTrace(FormatCrashTrace(trace), &parsed).ok());
  EXPECT_EQ(parsed.system, trace.system);
  EXPECT_EQ(parsed.regime, trace.regime);
  EXPECT_EQ(parsed.seed, trace.seed);
  EXPECT_EQ(parsed.round, trace.round);
  EXPECT_EQ(parsed.kill_at, trace.kill_at);
  EXPECT_EQ(parsed.fsync_dirs, trace.fsync_dirs);
  EXPECT_EQ(parsed.mutations, trace.mutations);
  EXPECT_EQ(parsed.classification, trace.classification);
  EXPECT_EQ(parsed.detail, trace.detail);

  CrashRealConfig config = ConfigFromTrace(parsed, "/tmp/unused");
  EXPECT_EQ(config.system, "mailboat");
  EXPECT_FALSE(config.fsync_dirs);
  EXPECT_EQ(config.mutation_names, trace.mutations);
}

}  // namespace
}  // namespace perennial::crashreal
