// PCT randomized exploration and swarm mode (the tier2-pct suite):
// priority-based random testing is a REPRODUCIBLE mode, so everything it
// reports must be a pure function of (seed, config) — never of worker
// count, chunk boundaries, or interruption points.
//
// The suite asserts:
//   * bit-identical reports: the same seed+config produces field-for-field
//     identical Reports from the serial engine and ParallelExplorer at
//     1/2/4 workers, for plain PCT and for swarm mode (many seed batches),
//     including run counts that do not align with the work-item chunk size;
//   * checkpoint/resume: a swarm interrupted every k decisions and resumed
//     from its checkpoint file converges to the uninterrupted report;
//   * bug-finding power: for every pct_suite.h deep bug, bounded DFS at
//     the calibrated budget truncates with ZERO violations while PCT d=3
//     finds the bug within the same budget for every suite seed, and a
//     4-way swarm splitting that budget finds it too;
//   * RandomDriver draw paths (regression for the quiescent-point crash
//     bias): crash_probability=0 injects no crashes, env_probability=0
//     fires no env events, and the positive-probability variants do;
//   * a PCT-found violation minimizes to a 1-minimal replayable witness
//     (the end-to-end find -> shrink -> replay pipeline).
//
// Like the other tier2 suites this one is also meant to run under
// -DPCC_SANITIZE=thread: swarm work distribution and the shared memo
// caches are the cross-worker state PCT mode adds.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/pct_suite.h"
#include "src/refine/explorer.h"
#include "src/refine/minimize.h"
#include "src/refine/parallel_explorer.h"
#include "src/systems/repl/repl_harness.h"

namespace perennial::systems {
namespace {

using refine::Explorer;
using refine::ExplorerOptions;
using refine::ParallelExplorer;
using refine::Report;
using refine::RunOutcome;

void ExpectReportsEqual(const Report& got, const Report& want) {
  EXPECT_EQ(got.executions, want.executions);
  EXPECT_EQ(got.total_steps, want.total_steps);
  EXPECT_EQ(got.crashes_injected, want.crashes_injected);
  EXPECT_EQ(got.env_events_fired, want.env_events_fired);
  EXPECT_EQ(got.histories_checked, want.histories_checked);
  EXPECT_EQ(got.spec_states_explored, want.spec_states_explored);
  ASSERT_EQ(got.violations.size(), want.violations.size())
      << got.Summary() << "\nvs\n" << want.Summary();
  for (size_t i = 0; i < want.violations.size(); ++i) {
    EXPECT_EQ(got.violations[i].kind, want.violations[i].kind) << "violation " << i;
    EXPECT_EQ(got.violations[i].detail, want.violations[i].detail) << "violation " << i;
    EXPECT_EQ(got.violations[i].trace, want.violations[i].trace) << "violation " << i;
    EXPECT_EQ(got.violations[i].schedule == want.violations[i].schedule, true)
        << "violation " << i << ": recorded schedules differ";
  }
}

// The workload all determinism tests share: the deadlock suite entry with
// the violation cap lifted and dedup off, so every counter is comparable.
// random_runs deliberately not a multiple of the 64-run chunk, so the last
// work item is short.
ExplorerOptions DeterminismOptions(uint64_t seed, uint64_t runs, uint64_t swarm) {
  ExplorerOptions opts;
  opts.mode = ExplorerOptions::Mode::kPct;
  opts.max_crashes = 0;
  opts.max_violations = 1 << 20;
  opts.dedup_histories = false;
  opts.random_runs = runs;
  opts.seed = seed;
  opts.pct_depth = kPctSuiteDepth;
  opts.pct_change_budget = kPctSuiteChangeBudget;
  opts.swarm_seeds = swarm;
  opts.env_probability = 0.05;
  return opts;
}

template <typename Visit>
void WithDeadlockEntry(Visit&& visit) {
  bool seen = false;
  ForEachDeepBug([&](const DeepBugInfo& info, auto spec, auto factory) {
    if (std::string(info.slug) == "pct-kv-deadlock-deep") {
      seen = true;
      visit(info, spec, factory);
    }
  });
  ASSERT_TRUE(seen);
}

// ---------- Bit-identical reports: serial vs parallel, PCT and swarm ----------

TEST(PctDeterminism, SerialParallelBitIdentical) {
  WithDeadlockEntry([](const DeepBugInfo&, auto spec, auto factory) {
    ExplorerOptions opts = DeterminismOptions(/*seed=*/7, /*runs=*/300, /*swarm=*/0);
    using Spec = decltype(spec);
    Report serial = Explorer<Spec>(spec, factory, opts).Run();
    EXPECT_GT(serial.violations.size(), 0u) << serial.Summary();
    for (int workers : {1, 2, 4}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      ExplorerOptions popts = opts;
      popts.num_workers = workers;
      Report parallel = ParallelExplorer<Spec>(spec, factory, popts).Run();
      ExpectReportsEqual(parallel, serial);
    }
  });
}

TEST(PctDeterminism, SwarmSerialParallelBitIdentical) {
  WithDeadlockEntry([](const DeepBugInfo&, auto spec, auto factory) {
    ExplorerOptions opts = DeterminismOptions(/*seed=*/3, /*runs=*/100, /*swarm=*/4);
    opts.swarm_vary_depth = true;  // batches cycle pct_depth too
    using Spec = decltype(spec);
    Report serial = Explorer<Spec>(spec, factory, opts).Run();
    EXPECT_GT(serial.executions, 0u);
    for (int workers : {2, 4}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      ExplorerOptions popts = opts;
      popts.num_workers = workers;
      Report parallel = ParallelExplorer<Spec>(spec, factory, popts).Run();
      ExpectReportsEqual(parallel, serial);
    }
  });
}

TEST(PctDeterminism, SeedIsLoadBearing) {
  // Different seeds must actually change the sampled schedules; equal
  // reports would mean the per-run seed derivation ignores options_.seed.
  WithDeadlockEntry([](const DeepBugInfo&, auto spec, auto factory) {
    using Spec = decltype(spec);
    Report a = Explorer<Spec>(spec, factory, DeterminismOptions(1, 300, 0)).Run();
    Report b = Explorer<Spec>(spec, factory, DeterminismOptions(2, 300, 0)).Run();
    EXPECT_EQ(a.executions, b.executions);
    EXPECT_NE(a.total_steps, b.total_steps)
        << "seed 1 and seed 2 sampled identical schedules";
  });
}

// ---------- Checkpoint/resume mid-swarm ----------

TEST(PctCheckpoint, InterruptedSwarmConvergesToUninterrupted) {
  WithDeadlockEntry([](const DeepBugInfo&, auto spec, auto factory) {
    using Spec = decltype(spec);
    ExplorerOptions base = DeterminismOptions(/*seed=*/5, /*runs=*/80, /*swarm=*/4);
    Report want = Explorer<Spec>(spec, factory, base).Run();
    ASSERT_EQ(want.outcome, RunOutcome::kComplete);

    const std::string path = ::testing::TempDir() + "pct_swarm_resume.ckpt";
    std::remove(path.c_str());
    ExplorerOptions opts = base;
    opts.checkpoint_path = path;
    opts.cancel_after_decisions = 400;
    Report r = Explorer<Spec>(spec, factory, opts).Run();
    int legs = 1;
    opts.resume_path = path;
    while (r.outcome != RunOutcome::kComplete && legs < 2000) {
      ASSERT_EQ(r.outcome, RunOutcome::kCanceled) << r.Summary();
      EXPECT_TRUE(r.truncated);
      r = Explorer<Spec>(spec, factory, opts).Run();
      ++legs;
    }
    ASSERT_EQ(r.outcome, RunOutcome::kComplete) << "chain did not converge: " << r.Summary();
    EXPECT_GE(legs, 2) << "cancel_after_decisions never fired; workload too small?";
    ExpectReportsEqual(r, want);
    std::remove(path.c_str());
  });
}

TEST(PctCheckpoint, SerialInterruptParallelResume) {
  // Work items are engine-agnostic: a swarm interrupted under the serial
  // engine finishes under ParallelExplorer with the identical report.
  WithDeadlockEntry([](const DeepBugInfo&, auto spec, auto factory) {
    using Spec = decltype(spec);
    ExplorerOptions base = DeterminismOptions(/*seed=*/9, /*runs=*/80, /*swarm=*/2);
    Report want = Explorer<Spec>(spec, factory, base).Run();

    const std::string path = ::testing::TempDir() + "pct_cross_resume.ckpt";
    std::remove(path.c_str());
    ExplorerOptions first = base;
    first.checkpoint_path = path;
    first.cancel_after_decisions = 600;
    Report partial = Explorer<Spec>(spec, factory, first).Run();
    ASSERT_EQ(partial.outcome, RunOutcome::kCanceled) << partial.Summary();

    ExplorerOptions rest = base;
    rest.resume_path = path;
    rest.checkpoint_path = path;
    rest.num_workers = 4;
    Report resumed = ParallelExplorer<Spec>(spec, factory, rest).Run();
    int legs = 2;
    while (resumed.outcome != RunOutcome::kComplete && legs < 2000) {
      resumed = ParallelExplorer<Spec>(spec, factory, rest).Run();
      ++legs;
    }
    ASSERT_EQ(resumed.outcome, RunOutcome::kComplete) << resumed.Summary();
    ExpectReportsEqual(resumed, want);
    std::remove(path.c_str());
  });
}

// ---------- RandomDriver draw-path regressions ----------

// The repl recovery_zeroes bug needs a crash to manifest; with the crash
// probability pinned to zero the random walk must never inject one. This is
// the regression for the quiescent-point bias, where the observe-vs-crash
// fallback used to flip a fair coin regardless of crash_probability.
TEST(RandomDriverRegression, ZeroCrashProbabilityInjectsNoCrashes) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.mutations.recovery_zeroes = true;
  auto factory = [&] { return MakeReplInstance(options); };
  ExplorerOptions opts;
  opts.mode = ExplorerOptions::Mode::kRandom;
  opts.max_crashes = 1;
  opts.max_violations = 1 << 20;
  opts.random_runs = 200;
  opts.seed = 11;
  opts.crash_probability = 0.0;
  Report none = Explorer<ReplSpec>(ReplSpec{1}, factory, opts).Run();
  EXPECT_EQ(none.crashes_injected, 0u) << none.Summary();
  EXPECT_TRUE(none.ok()) << "violation without a crash in a crash-only bug:\n" << none.Summary();

  opts.crash_probability = 0.5;
  Report some = Explorer<ReplSpec>(ReplSpec{1}, factory, opts).Run();
  EXPECT_GT(some.crashes_injected, 0u);
  EXPECT_FALSE(some.ok()) << "crashing walk missed the recovery_zeroes bug";
}

TEST(RandomDriverRegression, ZeroEnvProbabilityFiresNoEvents) {
  // Single-candidate env draws: exactly one env alternative (the disk-1
  // failure event) is on offer, so any bias in the declined-draw fallback
  // would fire it spuriously.
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeRead(0)}};
  options.with_disk1_failure_event = true;
  auto factory = [&] { return MakeReplInstance(options); };
  ExplorerOptions opts;
  opts.mode = ExplorerOptions::Mode::kRandom;
  opts.max_crashes = 0;
  opts.max_violations = 1 << 20;
  opts.random_runs = 100;
  opts.seed = 11;
  opts.env_probability = 0.0;
  Report none = Explorer<ReplSpec>(ReplSpec{1}, factory, opts).Run();
  EXPECT_EQ(none.env_events_fired, 0u) << none.Summary();

  opts.env_probability = 1.0;
  Report all = Explorer<ReplSpec>(ReplSpec{1}, factory, opts).Run();
  EXPECT_GT(all.env_events_fired, 0u);
}

// PCT shares the crash/env draw code paths with RandomDriver; pin the same
// contract there.
TEST(RandomDriverRegression, PctRespectsZeroProbabilities) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}};
  options.mutations.recovery_zeroes = true;
  auto factory = [&] { return MakeReplInstance(options); };
  ExplorerOptions opts;
  opts.mode = ExplorerOptions::Mode::kPct;
  opts.max_crashes = 1;
  opts.max_violations = 1 << 20;
  opts.random_runs = 200;
  opts.seed = 11;
  opts.crash_probability = 0.0;
  opts.env_probability = 0.0;
  Report r = Explorer<ReplSpec>(ReplSpec{1}, factory, opts).Run();
  EXPECT_EQ(r.crashes_injected, 0u) << r.Summary();
  EXPECT_EQ(r.env_events_fired, 0u) << r.Summary();
}

// ---------- Bug-finding power: DFS misses, PCT and swarm find ----------

TEST(PctFindsDeepBugs, DfsMissesAtEqualBudget) {
  ForEachDeepBug([](const DeepBugInfo& info, auto spec, auto factory) {
    SCOPED_TRACE(info.slug);
    using Spec = decltype(spec);
    Report dfs = Explorer<Spec>(spec, factory, DfsSuiteOptions(info)).Run();
    EXPECT_TRUE(dfs.truncated) << info.slug << ": DFS budget not exhausted — recalibrate\n"
                               << dfs.Summary();
    EXPECT_EQ(dfs.violations.size(), 0u)
        << info.slug << ": bounded DFS found the bug; it is not deep enough\n" << dfs.Summary();
    EXPECT_EQ(dfs.executions, info.budget);
  });
}

TEST(PctFindsDeepBugs, PctFindsWithinBudgetForEverySeed) {
  ForEachDeepBug([](const DeepBugInfo& info, auto spec, auto factory) {
    using Spec = decltype(spec);
    for (uint64_t seed : kPctSuiteSeeds) {
      SCOPED_TRACE(std::string(info.slug) + " seed=" + std::to_string(seed));
      Report pct = Explorer<Spec>(spec, factory, PctSuiteOptions(info, seed)).Run();
      ASSERT_GE(pct.violations.size(), 1u)
          << info.slug << ": PCT missed the bug at its calibrated budget\n" << pct.Summary();
      EXPECT_EQ(pct.violations[0].kind, info.kind);
      EXPECT_FALSE(pct.violations[0].schedule.empty());
    }
  });
}

TEST(PctFindsDeepBugs, SwarmSplitsBudgetAndStillFinds) {
  ForEachDeepBug([](const DeepBugInfo& info, auto spec, auto factory) {
    SCOPED_TRACE(info.slug);
    using Spec = decltype(spec);
    ExplorerOptions opts = PctSuiteOptions(info, /*seed=*/1);
    opts.swarm_seeds = 4;
    opts.random_runs = info.budget / 4;  // same total executions as plain PCT
    Report swarm = ParallelExplorer<Spec>(spec, factory, opts).Run();
    ASSERT_GE(swarm.violations.size(), 1u)
        << info.slug << ": 4-way swarm missed the bug at the shared budget\n" << swarm.Summary();
    EXPECT_EQ(swarm.violations[0].kind, info.kind);
  });
}

// ---------- End-to-end: PCT finds, minimizer shrinks, replay confirms ----------

TEST(PctMinimizePipeline, DeadlockWitnessShrinksToMinimalCore) {
  WithDeadlockEntry([](const DeepBugInfo& info, auto spec, auto factory) {
    using Spec = decltype(spec);
    ExplorerOptions opts = PctSuiteOptions(info, /*seed=*/1);
    Report pct = Explorer<Spec>(spec, factory, opts).Run();
    ASSERT_GE(pct.violations.size(), 1u);
    const refine::Violation& seed = pct.violations[0];

    refine::MinimizeResult m = MinimizeSchedule(spec, factory, opts, seed);
    ASSERT_TRUE(m.reproduced);
    EXPECT_EQ(m.violation.kind, seed.kind);
    EXPECT_LE(m.schedule.size(), seed.schedule.size());

    Explorer<Spec> engine(spec, factory, opts);
    Report replay = engine.ReplaySchedule(m.schedule);
    ASSERT_FALSE(replay.ok());
    EXPECT_EQ(replay.violations[0].kind, seed.kind);
    for (size_t i = 0; i < m.schedule.size(); ++i) {
      std::vector<refine::ScheduleDecision> cand = m.schedule;
      cand.erase(cand.begin() + i);
      Report r = engine.ReplaySchedule(cand);
      const bool still = !r.violations.empty() && r.violations[0].kind == seed.kind;
      EXPECT_FALSE(still) << "not 1-minimal at decision " << i;
    }
  });
}

}  // namespace
}  // namespace perennial::systems
