// Serial-vs-parallel refinement-checking equivalence: for every system
// under src/systems/ (kvs, repl, shadow, wal, gc, txnlog) — correct and
// seeded-bug variants alike — the ParallelExplorer must produce the same
// execution counts and the same violation sequence as the serial Explorer
// at identical bounds, across 1/2/4 workers and several split depths.
// Thread-timing independence of the merge is the point: these tests also
// run under TSan via the tier2-parallel CTest label.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/refine/explorer.h"
#include "src/refine/parallel_explorer.h"
#include "src/systems/kvs/kv_harness.h"
#include "src/systems/pattern_harness.h"
#include "src/systems/repl/repl_harness.h"
#include "src/systems/txnlog/txn_harness.h"

namespace perennial::systems {
namespace {

using refine::Explorer;
using refine::ExplorerOptions;
using refine::ExplorerProgress;
using refine::ParallelExplorer;
using refine::Report;

// Runs the serial reference explorer and the parallel explorer at 1/2/4
// workers on the same (spec, factory, bounds); asserts the parallel
// aggregates are bit-identical. max_violations is lifted so neither side
// stops early (with early stopping, execution counts legitimately diverge —
// see parallel_explorer.h).
template <typename Spec, typename Factory>
void ExpectSerialParallelEquivalence(Spec spec, Factory factory, ExplorerOptions opts,
                                     int split_depth = 4) {
  opts.max_violations = 1 << 20;
  opts.split_depth = split_depth;
  Explorer<Spec> serial(spec, factory, opts);
  Report s = serial.Run();
  ASSERT_FALSE(s.truncated) << "workload too large for equivalence testing: " << s.Summary();
  for (int workers : {1, 2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers) +
                 " split_depth=" + std::to_string(split_depth));
    ExplorerOptions popts = opts;
    popts.num_workers = workers;
    ParallelExplorer<Spec> parallel(spec, factory, popts);
    Report p = parallel.Run();
    EXPECT_EQ(p.executions, s.executions);
    EXPECT_EQ(p.total_steps, s.total_steps);
    EXPECT_EQ(p.crashes_injected, s.crashes_injected);
    EXPECT_EQ(p.histories_checked, s.histories_checked);
    EXPECT_FALSE(p.truncated);
    if (!opts.dedup_histories) {
      // Without dedup every completed history is checked on both sides, so
      // even the spec-state totals agree.
      EXPECT_EQ(p.spec_states_explored, s.spec_states_explored);
    }
    ASSERT_EQ(p.violations.size(), s.violations.size()) << p.Summary() << "\nvs\n" << s.Summary();
    for (size_t i = 0; i < s.violations.size(); ++i) {
      EXPECT_EQ(p.violations[i].kind, s.violations[i].kind) << "violation " << i;
      EXPECT_EQ(p.violations[i].detail, s.violations[i].detail) << "violation " << i;
      EXPECT_EQ(p.violations[i].trace, s.violations[i].trace) << "violation " << i;
    }
  }
}

// ---------- Replicated disk ----------

TEST(ParallelEquivalence, ReplCorrect) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectSerialParallelEquivalence(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
}

TEST(ParallelEquivalence, ReplSeededBugSkipSecondWrite) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeRead(0)}};
  options.mutations.skip_second_write = true;
  options.with_disk1_failure_event = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectSerialParallelEquivalence(ReplSpec{1}, [&] { return MakeReplInstance(options); }, opts);
}

// ---------- Shadow copy ----------

TEST(ParallelEquivalence, ShadowCorrect) {
  ShadowHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeWrite(3, 4)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectSerialParallelEquivalence(PairSpec{}, [&] { return MakeShadowInstance(options); }, opts);
}

TEST(ParallelEquivalence, ShadowSeededBugInPlaceUpdate) {
  ShadowHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)}};
  options.mutations.in_place_update = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectSerialParallelEquivalence(PairSpec{}, [&] { return MakeShadowInstance(options); }, opts);
}

// ---------- Write-ahead log ----------

TEST(ParallelEquivalence, WalCorrectIncludingRecoveryCrash) {
  WalHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeWrite(3, 4)}};
  ExplorerOptions opts;
  opts.max_crashes = 2;  // crashes during recovery too
  ExpectSerialParallelEquivalence(PairSpec{}, [&] { return MakeWalInstance(options); }, opts);
}

TEST(ParallelEquivalence, WalSeededBugApplyBeforeCommit) {
  WalHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)}};
  options.mutations.apply_before_commit = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectSerialParallelEquivalence(PairSpec{}, [&] { return MakeWalInstance(options); }, opts);
}

TEST(ParallelEquivalence, WalSeededBugRecoveryDiscardsLog) {
  WalHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2)}};
  options.mutations.recovery_discards_log = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectSerialParallelEquivalence(PairSpec{}, [&] { return MakeWalInstance(options); }, opts);
}

// ---------- Group commit ----------

TEST(ParallelEquivalence, GcCorrect) {
  GcHarnessOptions options;
  options.client_ops = {{GcSpec::MakeWrite(1)}, {GcSpec::MakeWrite(2)}, {GcSpec::MakeFlush()}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectSerialParallelEquivalence(GcSpec{}, [&] { return MakeGcInstance(options); }, opts);
}

TEST(ParallelEquivalence, GcSeededBugCommitCountFirst) {
  GcHarnessOptions options;
  options.client_ops = {
      {GcSpec::MakeWrite(7), GcSpec::MakeFlush(), GcSpec::MakeWrite(9), GcSpec::MakeFlush()}};
  options.mutations.commit_count_first = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectSerialParallelEquivalence(GcSpec{}, [&] { return MakeGcInstance(options); }, opts);
}

// ---------- Transaction log ----------

TEST(ParallelEquivalence, TxnLogCorrect) {
  TxnHarnessOptions options;
  options.num_addrs = 2;
  options.client_ops = {{TxnSpec::MakeBatch({{0, 1}, {1, 2}})}, {TxnSpec::MakeRead(0)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectSerialParallelEquivalence(TxnSpec{2}, [&] { return MakeTxnInstance(options); }, opts);
}

TEST(ParallelEquivalence, TxnLogSeededBugHeaderBeforeRecords) {
  TxnHarnessOptions options;
  options.num_addrs = 2;
  options.client_ops = {{TxnSpec::MakeBatch({{0, 1}, {1, 2}})}};
  options.mutations.header_before_records = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectSerialParallelEquivalence(TxnSpec{2}, [&] { return MakeTxnInstance(options); }, opts);
}

// ---------- Durable KV ----------

TEST(ParallelEquivalence, KvCorrect) {
  KvHarnessOptions options;
  options.num_keys = 2;
  options.client_ops = {{KvSpec::MakePutPair(0, 1, 1, 2)}, {KvSpec::MakeGet(0)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectSerialParallelEquivalence(KvSpec{2}, [&] { return MakeKvInstance(options); }, opts);
}

TEST(ParallelEquivalence, KvSeededBugApplyBeforeCommit) {
  KvHarnessOptions options;
  options.num_keys = 2;
  options.client_ops = {{KvSpec::MakePutPair(0, 1, 1, 2)}};
  options.mutations.apply_before_commit = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  ExpectSerialParallelEquivalence(KvSpec{2}, [&] { return MakeKvInstance(options); }, opts);
}

TEST(ParallelEquivalence, KvSeededBugUnorderedLocksDeadlocks) {
  // Opposite lock orders deadlock under some interleavings: exercises
  // early-aborting executions (deadlock) inside worker subtrees.
  KvHarnessOptions options;
  options.num_keys = 2;
  options.client_ops = {{KvSpec::MakePutPair(0, 1, 1, 2)}, {KvSpec::MakePutPair(1, 9, 0, 8)}};
  options.mutations.unordered_locks = true;
  ExplorerOptions opts;
  opts.max_crashes = 0;
  ExpectSerialParallelEquivalence(KvSpec{2}, [&] { return MakeKvInstance(options); }, opts);
}

// ---------- Split-depth and dedup sweeps ----------

TEST(ParallelEquivalence, SplitDepthSweep) {
  // Partitioning must be exact at any split depth: 0 (single work item),
  // shallow, and deeper than any decision path (every item is one run).
  WalHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeWrite(3, 4)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  for (int depth : {0, 1, 2, 6, 64}) {
    SCOPED_TRACE("depth=" + std::to_string(depth));
    ExpectSerialParallelEquivalence(PairSpec{}, [&] { return MakeWalInstance(options); }, opts,
                                    depth);
  }
}

TEST(ParallelEquivalence, FingerprintDedupPreservesViolations) {
  // With dedup on, duplicate histories skip the spec search but replay the
  // cached verdict: violation sequences stay identical on both sides.
  ShadowHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)}};
  options.mutations.in_place_update = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.dedup_histories = true;
  ExpectSerialParallelEquivalence(PairSpec{}, [&] { return MakeShadowInstance(options); }, opts);
}

TEST(ParallelEquivalence, DedupActuallyPrunes) {
  WalHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2)}, {PairSpec::MakeWrite(3, 4)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.max_violations = 1 << 20;
  opts.dedup_histories = true;
  Explorer<PairSpec> serial(PairSpec{}, [&] { return MakeWalInstance(options); }, opts);
  Report with_dedup = serial.Run();
  EXPECT_TRUE(with_dedup.ok()) << with_dedup.Summary();
  // Many schedules of the same two writes collapse to few distinct
  // histories: most checks must be pruned.
  EXPECT_GT(with_dedup.histories_deduped, with_dedup.histories_checked / 2);

  opts.dedup_histories = false;
  Explorer<PairSpec> baseline(PairSpec{}, [&] { return MakeWalInstance(options); }, opts);
  Report without = baseline.Run();
  EXPECT_EQ(without.histories_deduped, 0u);
  EXPECT_EQ(with_dedup.executions, without.executions);
  EXPECT_EQ(with_dedup.histories_checked, without.histories_checked);
  EXPECT_LT(with_dedup.spec_states_explored, without.spec_states_explored);
}

// ---------- Early stopping: the first max_violations still match ----------

TEST(ParallelEquivalence, DefaultMaxViolationsPrefixMatchesSerial) {
  ShadowHarnessOptions options;
  options.client_ops = {{PairSpec::MakeWrite(1, 2), PairSpec::MakeWrite(3, 4)},
                        {PairSpec::MakeWrite(5, 6)}};
  options.mutations.in_place_update = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.max_violations = 3;  // serial stops early; parallel must agree on the first 3
  Explorer<PairSpec> serial(PairSpec{}, [&] { return MakeShadowInstance(options); }, opts);
  Report s = serial.Run();
  ASSERT_EQ(s.violations.size(), 3u);
  for (int workers : {2, 4}) {
    ExplorerOptions popts = opts;
    popts.num_workers = workers;
    ParallelExplorer<PairSpec> parallel(PairSpec{},
                                        [&] { return MakeShadowInstance(options); }, popts);
    Report p = parallel.Run();
    ASSERT_EQ(p.violations.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(p.violations[i].trace, s.violations[i].trace) << "violation " << i;
      EXPECT_EQ(p.violations[i].detail, s.violations[i].detail) << "violation " << i;
    }
  }
}

// ---------- Parallel progress callback ----------

TEST(ParallelProgress, CallbackSeesMonotoneExecutions) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  opts.num_workers = 4;
  opts.progress_interval = 64;
  std::vector<uint64_t> seen;
  opts.progress_callback = [&](const ExplorerProgress& p) { seen.push_back(p.executions); };
  ParallelExplorer<ReplSpec> parallel(ReplSpec{1}, [&] { return MakeReplInstance(options); },
                                      opts);
  Report report = parallel.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  ASSERT_FALSE(seen.empty());
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GT(seen[i], seen[i - 1]);
  }
  EXPECT_LE(seen.back(), report.executions);
}

// ---------- Parallel random mode ----------

TEST(ParallelRandom, DeterministicPerSeedAndWorkerCount) {
  ReplHarnessOptions options;
  options.num_blocks = 1;
  options.client_ops = {{ReplSpec::MakeWrite(0, 5)}, {ReplSpec::MakeWrite(0, 7)}};
  ExplorerOptions opts;
  opts.mode = ExplorerOptions::Mode::kRandom;
  opts.random_runs = 400;
  opts.seed = 7;
  opts.num_workers = 4;
  auto run = [&] {
    ParallelExplorer<ReplSpec> parallel(ReplSpec{1}, [&] { return MakeReplInstance(options); },
                                        opts);
    return parallel.Run();
  };
  Report a = run();
  Report b = run();
  EXPECT_EQ(a.executions, 400u);
  EXPECT_TRUE(a.ok()) << a.Summary();
  EXPECT_EQ(a.Summary(), b.Summary());
  EXPECT_EQ(a.total_steps, b.total_steps);
}

}  // namespace
}  // namespace perennial::systems
