// Tests for the SMTP and POP3 protocol sessions over Mailboat (modeled fs).
#include <gtest/gtest.h>

#include "src/goose/world.h"
#include "src/goosefs/goosefs.h"
#include "src/mailboat/mailboat.h"
#include "src/smtp/pop3.h"
#include "src/smtp/smtp.h"
#include "tests/sim_util.h"

namespace perennial::smtp {
namespace {

using mailboat::Mailboat;
using mailboat::Message;
using perennial::testing::SimRun;
using proc::Task;

TEST(ParseAddress, AcceptsUserAddresses) {
  EXPECT_EQ(ParseUserAddress("user3@example.com", 10), 3u);
  EXPECT_EQ(ParseUserAddress("<user0@x>", 10), 0u);
  EXPECT_EQ(ParseUserAddress("  user9@a.b  ", 10), 9u);
}

TEST(ParseAddress, RejectsBadAddresses) {
  EXPECT_EQ(ParseUserAddress("user10@example.com", 10), std::nullopt);  // out of range
  EXPECT_EQ(ParseUserAddress("bob@example.com", 10), std::nullopt);
  EXPECT_EQ(ParseUserAddress("user3", 10), std::nullopt);  // no domain
  EXPECT_EQ(ParseUserAddress("userX@x", 10), std::nullopt);
  EXPECT_EQ(ParseUserAddress("", 10), std::nullopt);
}

class SmtpTest : public ::testing::Test {
 protected:
  SmtpTest()
      : fs_(&world_, Mailboat::DirLayout(3)), mail_(&world_, &fs_, Mailboat::Options{3, 64, 64, 1}) {}

  std::string Send(SmtpSession& session, const std::string& line) {
    auto body = [&]() -> Task<std::string> { co_return co_await session.HandleLine(line); };
    return SimRun(body());
  }

  std::vector<Message> PickupAll(uint64_t user) {
    auto body = [&]() -> Task<std::vector<Message>> {
      std::vector<Message> m = (co_await mail_.Pickup(user)).value();
      co_await mail_.Unlock(user);
      co_return m;
    };
    return SimRun(body());
  }

  goose::World world_;
  goosefs::GooseFs fs_;
  Mailboat mail_;
};

TEST_F(SmtpTest, FullDeliverySession) {
  SmtpSession session(&mail_);
  EXPECT_EQ(Send(session, "HELO client"), "250 perennial-cc at your service");
  EXPECT_EQ(Send(session, "MAIL FROM:<alice@remote>"), "250 OK");
  EXPECT_EQ(Send(session, "RCPT TO:<user1@example.com>"), "250 OK");
  EXPECT_EQ(Send(session, "DATA"), "354 End data with <CRLF>.<CRLF>");
  EXPECT_EQ(Send(session, "Subject: hi"), "");
  EXPECT_EQ(Send(session, ""), "");
  EXPECT_EQ(Send(session, "hello body"), "");
  EXPECT_EQ(Send(session, "."), "250 OK: delivered to 1 mailbox(es)");
  EXPECT_EQ(Send(session, "QUIT"), "221 Bye");
  EXPECT_TRUE(session.quit());

  std::vector<Message> messages = PickupAll(1);
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].contents, "Subject: hi\r\n\r\nhello body\r\n");
}

TEST_F(SmtpTest, MultipleRecipientsEachGetACopy) {
  SmtpSession session(&mail_);
  Send(session, "EHLO c");
  Send(session, "MAIL FROM:<a@b>");
  Send(session, "RCPT TO:<user0@x>");
  Send(session, "RCPT TO:<user2@x>");
  Send(session, "DATA");
  Send(session, "m");
  EXPECT_EQ(Send(session, "."), "250 OK: delivered to 2 mailbox(es)");
  EXPECT_EQ(PickupAll(0).size(), 1u);
  EXPECT_EQ(PickupAll(2).size(), 1u);
  EXPECT_EQ(PickupAll(1).size(), 0u);
}

TEST_F(SmtpTest, RejectsUnknownRecipient) {
  SmtpSession session(&mail_);
  Send(session, "HELO c");
  Send(session, "MAIL FROM:<a@b>");
  EXPECT_EQ(Send(session, "RCPT TO:<nobody@x>"), "550 No such user");
  EXPECT_EQ(Send(session, "DATA"), "503 Need RCPT TO first");
}

TEST_F(SmtpTest, RequiresHeloAndOrdering) {
  SmtpSession session(&mail_);
  EXPECT_EQ(Send(session, "MAIL FROM:<a@b>"), "503 Say HELO first");
  Send(session, "HELO c");
  EXPECT_EQ(Send(session, "RCPT TO:<user0@x>"), "503 Need MAIL FROM first");
  EXPECT_EQ(Send(session, "BOGUS"), "500 Unrecognized command");
}

TEST_F(SmtpTest, DotStuffingUnescapes) {
  SmtpSession session(&mail_);
  Send(session, "HELO c");
  Send(session, "MAIL FROM:<a@b>");
  Send(session, "RCPT TO:<user0@x>");
  Send(session, "DATA");
  Send(session, "..leading dot");
  Send(session, ".");
  std::vector<Message> messages = PickupAll(0);
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].contents, ".leading dot\r\n");
}

TEST_F(SmtpTest, RsetClearsEnvelope) {
  SmtpSession session(&mail_);
  Send(session, "HELO c");
  Send(session, "MAIL FROM:<a@b>");
  Send(session, "RCPT TO:<user0@x>");
  EXPECT_EQ(Send(session, "RSET"), "250 OK");
  EXPECT_EQ(Send(session, "DATA"), "503 Need RCPT TO first");
}

class Pop3Test : public SmtpTest {
 protected:
  std::string SendPop(Pop3Session& session, const std::string& line) {
    auto body = [&]() -> Task<std::string> { co_return co_await session.HandleLine(line); };
    return SimRun(body());
  }

  void DeliverText(uint64_t user, const std::string& text) {
    auto body = [&]() -> Task<std::string> {
      std::string id = (co_await mail_.Deliver(user, goosefs::BytesOfString(text))).value();
      co_return id;
    };
    (void)SimRun(body());
  }
};

TEST_F(Pop3Test, LoginStatRetr) {
  DeliverText(1, "hello pop3");
  Pop3Session session(&mail_);
  EXPECT_EQ(SendPop(session, "USER user1"), "+OK");
  EXPECT_EQ(SendPop(session, "PASS whatever"), "+OK 1 messages");
  EXPECT_EQ(SendPop(session, "STAT"), "+OK 1 10");
  EXPECT_EQ(SendPop(session, "RETR 1"), "+OK\r\nhello pop3\r\n.");
  EXPECT_EQ(SendPop(session, "QUIT"), "+OK Bye");
}

TEST_F(Pop3Test, DeleCommitsOnQuit) {
  DeliverText(0, "doomed");
  {
    Pop3Session session(&mail_);
    SendPop(session, "USER user0");
    SendPop(session, "PASS x");
    EXPECT_EQ(SendPop(session, "DELE 1"), "+OK");
    EXPECT_EQ(SendPop(session, "QUIT"), "+OK Bye");
  }
  EXPECT_EQ(PickupAll(0).size(), 0u);
}

TEST_F(Pop3Test, RsetUndeletes) {
  DeliverText(0, "saved");
  Pop3Session session(&mail_);
  SendPop(session, "USER user0");
  SendPop(session, "PASS x");
  SendPop(session, "DELE 1");
  EXPECT_EQ(SendPop(session, "RSET"), "+OK");
  SendPop(session, "QUIT");
  EXPECT_EQ(PickupAll(0).size(), 1u);
}

TEST_F(Pop3Test, AbortReleasesLockWithoutDeleting) {
  DeliverText(0, "kept");
  {
    Pop3Session session(&mail_);
    SendPop(session, "USER user0");
    SendPop(session, "PASS x");
    SendPop(session, "DELE 1");
    auto abort = [&]() -> Task<int> {
      co_await session.Abort();  // connection dropped: no commit
      co_return 0;
    };
    (void)SimRun(abort());
  }
  EXPECT_EQ(PickupAll(0).size(), 1u);  // lock was released, mail intact
}

TEST_F(Pop3Test, ListShowsUndeletedOnly) {
  DeliverText(0, "aa");
  DeliverText(0, "bbbb");
  Pop3Session session(&mail_);
  SendPop(session, "USER user0");
  SendPop(session, "PASS x");
  SendPop(session, "DELE 1");
  std::string listing = SendPop(session, "LIST");
  EXPECT_EQ(listing.find("1 "), std::string::npos);  // message 1 hidden
  EXPECT_NE(listing.find("2 "), std::string::npos);
  SendPop(session, "QUIT");
}

TEST_F(Pop3Test, RejectsBadSequences) {
  Pop3Session session(&mail_);
  EXPECT_EQ(SendPop(session, "STAT"), "-ERR Expected USER");
  EXPECT_EQ(SendPop(session, "USER nobody"), "-ERR No such user");
  SendPop(session, "USER user0");
  EXPECT_EQ(SendPop(session, "USER user1"), "-ERR Expected PASS");
}

TEST_F(Pop3Test, RetrOutOfRangeFails) {
  Pop3Session session(&mail_);
  SendPop(session, "USER user0");
  SendPop(session, "PASS x");
  EXPECT_EQ(SendPop(session, "RETR 1"), "-ERR No such message");
  EXPECT_EQ(SendPop(session, "DELE 0"), "-ERR No such message");
  SendPop(session, "QUIT");
}

}  // namespace
}  // namespace perennial::smtp
