// Tests for Mailboat: unit behavior over the modeled file system,
// refinement checking with crashes, and the §9.5 bug suite.
#include <gtest/gtest.h>

#include "src/goose/heap.h"
#include "src/goosefs/goosefs.h"
#include "src/mailboat/mail_harness.h"
#include "src/mailboat/mail_spec.h"
#include "src/mailboat/mailboat.h"
#include "src/refine/explorer.h"
#include "tests/sim_util.h"

namespace perennial::mailboat {
namespace {

using perennial::testing::SimRun;
using perennial::testing::SimRunVoid;
using proc::Task;
using refine::Explorer;
using refine::ExplorerOptions;
using refine::Report;

class MailboatTest : public ::testing::Test {
 protected:
  MailboatTest()
      : fs_(&world_, Mailboat::DirLayout(2)),
        mail_(&world_, &fs_, Mailboat::Options{2, 4, 4, 99}) {}

  goose::World world_;
  goosefs::GooseFs fs_;
  Mailboat mail_;
};

TEST_F(MailboatTest, DeliverThenPickupSeesMessage) {
  auto body = [&]() -> Task<std::vector<Message>> {
    std::string id = (co_await mail_.Deliver(0, goosefs::BytesOfString("hello"))).value();
    EXPECT_FALSE(id.empty());
    std::vector<Message> messages = (co_await mail_.Pickup(0)).value();
    co_await mail_.Unlock(0);
    co_return messages;
  };
  std::vector<Message> messages = SimRun(body());
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].contents, "hello");
}

TEST_F(MailboatTest, MessageLargerThanReadSizeRoundTrips) {
  // read_size is 4; a 11-byte message takes three reads (the §9.5 bug
  // regression: the fixed loop must advance the offset).
  auto body = [&]() -> Task<std::string> {
    (void)co_await mail_.Deliver(0, goosefs::BytesOfString("hello world"));
    std::vector<Message> messages = (co_await mail_.Pickup(0)).value();
    co_await mail_.Unlock(0);
    co_return messages.at(0).contents;
  };
  EXPECT_EQ(SimRun(body()), "hello world");
}

TEST_F(MailboatTest, MessageExactlyReadSizeRoundTrips) {
  auto body = [&]() -> Task<std::string> {
    (void)co_await mail_.Deliver(0, goosefs::BytesOfString("abcd"));  // == read_size
    std::vector<Message> messages = (co_await mail_.Pickup(0)).value();
    co_await mail_.Unlock(0);
    co_return messages.at(0).contents;
  };
  EXPECT_EQ(SimRun(body()), "abcd");
}

TEST_F(MailboatTest, EmptyMessageRoundTrips) {
  auto body = [&]() -> Task<uint64_t> {
    (void)co_await mail_.Deliver(0, goosefs::Bytes{});
    std::vector<Message> messages = (co_await mail_.Pickup(0)).value();
    co_await mail_.Unlock(0);
    EXPECT_TRUE(messages.at(0).contents.empty());
    co_return messages.size();
  };
  EXPECT_EQ(SimRun(body()), 1u);
}

TEST_F(MailboatTest, DeleteRemovesMessage) {
  auto body = [&]() -> Task<uint64_t> {
    (void)co_await mail_.Deliver(0, goosefs::BytesOfString("bye"));
    std::vector<Message> messages = (co_await mail_.Pickup(0)).value();
    (void)co_await mail_.Delete(0, messages.at(0).id);
    co_await mail_.Unlock(0);
    std::vector<Message> after = (co_await mail_.Pickup(0)).value();
    co_await mail_.Unlock(0);
    co_return after.size();
  };
  EXPECT_EQ(SimRun(body()), 0u);
}

TEST_F(MailboatTest, MailboxesAreIndependent) {
  auto body = [&]() -> Task<uint64_t> {
    (void)co_await mail_.Deliver(0, goosefs::BytesOfString("for user 0"));
    std::vector<Message> messages = (co_await mail_.Pickup(1)).value();
    co_await mail_.Unlock(1);
    co_return messages.size();
  };
  EXPECT_EQ(SimRun(body()), 0u);
}

TEST_F(MailboatTest, DeliverLeavesNoSpoolResidue) {
  auto body = [&]() -> Task<void> {
    (void)co_await mail_.Deliver(0, goosefs::BytesOfString("x"));
  };
  SimRunVoid(body());
  EXPECT_TRUE(fs_.PeekNames("spool").empty());
}

TEST_F(MailboatTest, RecoverCleansSpoolAndKeepsMail) {
  auto deliver = [&]() -> Task<void> {
    (void)co_await mail_.Deliver(0, goosefs::BytesOfString("keep me"));
  };
  SimRunVoid(deliver());
  // Simulate a crashed delivery: a stranded spool file.
  auto strand = [&]() -> Task<void> {
    goosefs::Fd fd = (co_await fs_.Create("spool", "tmp-junk")).value();
    (void)co_await fs_.Append(fd, goosefs::BytesOfString("partial"));
    // fd deliberately left open: the crash drops it.
  };
  SimRunVoid(strand());
  world_.Crash();
  auto recover = [&]() -> Task<void> { co_await mail_.Recover(); };
  SimRunVoid(recover());
  EXPECT_TRUE(fs_.PeekNames("spool").empty());
  auto pickup = [&]() -> Task<uint64_t> {
    std::vector<Message> messages = (co_await mail_.Pickup(0)).value();
    co_await mail_.Unlock(0);
    co_return messages.size();
  };
  EXPECT_EQ(SimRun(pickup()), 1u);
}

TEST_F(MailboatTest, DeleteOfUnknownIdIsUb) {
  auto body = [&]() -> Task<void> {
    (void)co_await mail_.Pickup(0);
    (void)co_await mail_.Delete(0, "msg-nonexistent");
  };
  EXPECT_THROW(SimRunVoid(body()), UbViolation);
}

TEST_F(MailboatTest, DeleteWithoutPickupIsUb) {
  // The lower-bound lease discipline (§8.3): deleting without the lease
  // taken by Pickup is a capability violation.
  auto body = [&]() -> Task<void> {
    std::string id = (co_await mail_.Deliver(0, goosefs::BytesOfString("x"))).value();
    (void)co_await mail_.Delete(0, id);  // no Pickup first
  };
  EXPECT_THROW(SimRunVoid(body()), UbViolation);
}

TEST_F(MailboatTest, DeleteOfMessageDeliveredAfterPickupIsUb) {
  // A message delivered after the listing is not in the lower bound, so the
  // lock holder may not delete it even though the file exists.
  auto body = [&]() -> Task<void> {
    (void)co_await mail_.Pickup(0);
    std::string id = (co_await mail_.Deliver(0, goosefs::BytesOfString("late"))).value();
    (void)co_await mail_.Delete(0, id);
  };
  EXPECT_THROW(SimRunVoid(body()), UbViolation);
}

TEST(MailboatIds, CollidingIdsRetryAndBothDeliver) {
  // Seeded RNG with a tiny id space is impractical; instead deliver many
  // messages and check they all arrive with distinct ids.
  goose::World world;
  goosefs::GooseFs fs(&world, Mailboat::DirLayout(1));
  Mailboat mail(&world, &fs, Mailboat::Options{1, 4, 4, 7});
  auto body = [&]() -> Task<uint64_t> {
    for (int i = 0; i < 8; ++i) {
      (void)co_await mail.Deliver(0, goosefs::BytesOfString("m" + std::to_string(i)));
    }
    std::vector<Message> messages = (co_await mail.Pickup(0)).value();
    co_await mail.Unlock(0);
    co_return messages.size();
  };
  EXPECT_EQ(SimRun(body()), 8u);
}

// ---------- Refinement checks ----------

TEST(MailCheck, ConcurrentDeliverAndPickupRefines) {
  MailHarnessOptions options;
  options.num_users = 1;
  options.client_scripts = {
      {{MailAction::Kind::kDeliver, 0, "a"}},
      {{MailAction::Kind::kPickupUnlock, 0, ""}},
  };
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<MailSpec> ex(MailSpec{1}, [&] { return MakeMailInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_FALSE(report.truncated);
}

TEST(MailCheck, TwoDeliverersRefine) {
  MailHarnessOptions options;
  options.num_users = 1;
  options.client_scripts = {
      {{MailAction::Kind::kDeliver, 0, "a"}},
      {{MailAction::Kind::kDeliver, 0, "b"}},
  };
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<MailSpec> ex(MailSpec{1}, [&] { return MakeMailInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(MailCheck, DeliverVsPickupDeleteRefines) {
  MailHarnessOptions options;
  options.num_users = 1;
  options.client_scripts = {
      {{MailAction::Kind::kDeliver, 0, "a"}},
      {{MailAction::Kind::kPickupDeleteAllUnlock, 0, ""}},
  };
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<MailSpec> ex(MailSpec{1}, [&] { return MakeMailInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(MailCheck, CrashDuringRecoveryRefines) {
  MailHarnessOptions options;
  options.num_users = 1;
  options.client_scripts = {{{MailAction::Kind::kDeliver, 0, "a"}}};
  ExplorerOptions opts;
  opts.max_crashes = 2;
  Explorer<MailSpec> ex(MailSpec{1}, [&] { return MakeMailInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(MailCheck, TwoUsersRandomised) {
  MailHarnessOptions options;
  options.num_users = 2;
  options.client_scripts = {
      {{MailAction::Kind::kDeliver, 0, "a"}, {MailAction::Kind::kDeliver, 1, "b"}},
      {{MailAction::Kind::kPickupDeleteAllUnlock, 0, ""}},
      {{MailAction::Kind::kPickupUnlock, 1, ""}},
  };
  ExplorerOptions opts;
  opts.mode = ExplorerOptions::Mode::kRandom;
  opts.random_runs = 150;
  opts.seed = 3;
  opts.max_crashes = 1;
  Explorer<MailSpec> ex(MailSpec{2}, [&] { return MakeMailInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(MailDeferred, SyncedDeliveryRefinesUnderDeferredDurability) {
  // The deferred-durability extension: with fsync-before-link, delivery
  // stays crash-safe even when file data is buffered.
  MailHarnessOptions options;
  options.num_users = 1;
  options.deferred_durability = true;
  options.sync_on_deliver = true;
  options.client_scripts = {{{MailAction::Kind::kDeliver, 0, "ab"}}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<MailSpec> ex(MailSpec{1}, [&] { return MakeMailInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(MailDeferred, MissingSyncLosesLinkedMailContents) {
  // The classic zero-length-mail bug: link the file, crash before the data
  // is written back — the mailbox has the name but not the message.
  MailHarnessOptions options;
  options.num_users = 1;
  options.deferred_durability = true;
  options.sync_on_deliver = false;  // the bug
  options.client_scripts = {{{MailAction::Kind::kDeliver, 0, "ab"}}};
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<MailSpec> ex(MailSpec{1}, [&] { return MakeMailInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "non-linearizable");
}

// ---------- The §9.5 bug suite ----------

TEST(MailMutation, Pickup512LoopIsCaughtAsNontermination) {
  MailHarnessOptions options;
  options.num_users = 1;
  options.read_size = 2;
  // Contents of exactly read_size bytes trigger the infinite re-read.
  options.client_scripts = {
      {{MailAction::Kind::kDeliver, 0, "xy"}, {MailAction::Kind::kPickupUnlock, 0, ""}}};
  options.mutations.pickup_512_loop = true;
  options.observe_mailboxes = false;
  ExplorerOptions opts;
  opts.max_crashes = 0;
  opts.max_steps_per_run = 300;
  Explorer<MailSpec> ex(MailSpec{1}, [&] { return MakeMailInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "step-bound");
}

TEST(MailMutation, ShortMessagesHideThe512Bug) {
  // The paper found the bug only for messages over 512 bytes; below the
  // read size the buggy loop still terminates — and the checker agrees.
  MailHarnessOptions options;
  options.num_users = 1;
  options.read_size = 4;
  options.client_scripts = {
      {{MailAction::Kind::kDeliver, 0, "xy"}, {MailAction::Kind::kPickupUnlock, 0, ""}}};
  options.mutations.pickup_512_loop = true;
  options.observe_mailboxes = false;
  ExplorerOptions opts;
  opts.max_crashes = 0;
  Explorer<MailSpec> ex(MailSpec{1}, [&] { return MakeMailInstance(options); }, opts);
  Report report = ex.Run();
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(MailMutation, InPlaceDeliveryExposesPartialMessage) {
  MailHarnessOptions options;
  options.num_users = 1;
  options.chunk_size = 1;  // several appends per message
  options.client_scripts = {
      {{MailAction::Kind::kDeliver, 0, "abc"}},
      {{MailAction::Kind::kPickupUnlock, 0, ""}},
  };
  options.mutations.deliver_in_place = true;
  ExplorerOptions opts;
  opts.max_crashes = 0;
  Explorer<MailSpec> ex(MailSpec{1}, [&] { return MakeMailInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "non-linearizable");
}

TEST(MailMutation, RecoveryDeletingMailIsCaught) {
  MailHarnessOptions options;
  options.num_users = 1;
  options.client_scripts = {{{MailAction::Kind::kDeliver, 0, "precious"}}};
  options.mutations.recovery_deletes_mail = true;
  ExplorerOptions opts;
  opts.max_crashes = 1;
  Explorer<MailSpec> ex(MailSpec{1}, [&] { return MakeMailInstance(options); }, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "non-linearizable");
}

TEST(MailMutation, CallerMutatingSliceDuringDeliverIsUb) {
  // §8.3: Deliver's atomicity relies on the caller not mutating the
  // message buffer; the Goose heap detects the race under some schedule.
  auto factory = [] {
    struct Bundle {
      goose::World world;
      std::unique_ptr<goose::Heap> heap;
      std::unique_ptr<goosefs::GooseFs> fs;
      std::unique_ptr<Mailboat> mail;
      goose::Slice<uint8_t> buffer;
    };
    auto bundle = std::make_shared<Bundle>();
    bundle->heap = std::make_unique<goose::Heap>(&bundle->world);
    bundle->fs = std::make_unique<goosefs::GooseFs>(&bundle->world, Mailboat::DirLayout(1));
    bundle->mail = std::make_unique<Mailboat>(&bundle->world, bundle->fs.get(),
                                              Mailboat::Options{1, 2, 2, 5});
    bundle->buffer = bundle->heap->SliceFromVector<uint8_t>({'a', 'b', 'c', 'd'});

    refine::Instance<MailSpec> inst;
    inst.keep_alive = bundle;
    inst.world = &bundle->world;
    Bundle* b = bundle.get();
    inst.run_op = [b](int, uint64_t, MailSpec::Op op) -> proc::Task<MailSpec::Ret> {
      MailSpec::Ret ret;
      if (op.kind == MailSpec::Kind::kDeliver) {
        // Deliver reading through the shared slice.
        Result<std::string> id = co_await b->mail->DeliverChunked(
            0, b->buffer.size(), [b](uint64_t off, uint64_t n) -> proc::Task<goosefs::Bytes> {
              co_return co_await b->heap->SliceCopyOut(b->buffer, off, off + n);
            });
        ret.id = id.value();
      } else if (op.kind == MailSpec::Kind::kUnlock) {
        // Abuse kUnlock as "the caller scribbles on the buffer".
        co_await b->heap->SliceSet<uint8_t>(b->buffer, 1, 'Z');
      }
      co_return ret;
    };
    inst.client_ops = {{MailSpec::MakeDeliver(0, "abcd")}, {MailSpec::MakeUnlock(0)}};
    return inst;
  };
  ExplorerOptions opts;
  opts.max_crashes = 0;
  opts.max_violations = 1;
  Explorer<MailSpec> ex(MailSpec{1}, factory, opts);
  Report report = ex.Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "undefined-behavior");
}

}  // namespace
}  // namespace perennial::mailboat
