// Unit tests for the zero-copy receive-path line carver (tier 1).
//
// LineBuffer's contract has sharp edges the loopback protocol tests only
// exercise probabilistically: terminators split across reads, pipelined
// batches spanning a buffer growth, compaction correctness while a line is
// checked out, and the overlong-line flag. This drives them directly.
#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/netserv/line_buffer.h"

namespace perennial::netserv {
namespace {

constexpr size_t kMax = 64 * 1024;

// Feeds `data` into the buffer as one loop-thread write (PrepareWrite /
// memcpy / CommitWrite / CarveLines), returning the carve count.
size_t Feed(LineBuffer* lb, const std::string& data, bool* overlong,
            size_t max_line = kMax, size_t max_bytes = kMax + 8 * 1024) {
  size_t fed = 0;
  size_t carved = 0;
  *overlong = false;
  while (fed < data.size()) {
    size_t room = lb->PrepareWrite(4096, max_bytes);
    if (room == 0) {
      ADD_FAILURE() << "buffer full with " << (data.size() - fed) << " bytes left";
      break;
    }
    size_t n = std::min(room, data.size() - fed);
    std::memcpy(lb->write_ptr(), data.data() + fed, n);
    lb->CommitWrite(n);
    bool over = false;
    carved += lb->CarveLines(max_line, &over);
    *overlong = *overlong || over;
    fed += n;
  }
  return carved;
}

std::vector<std::string> DrainLines(LineBuffer* lb) {
  std::vector<std::string> out;
  std::string_view line;
  while (lb->NextLine(&line)) {
    out.emplace_back(line);
  }
  return out;
}

TEST(LineBufferTest, CarvesCrlfAndBareLf) {
  LineBuffer lb;
  bool overlong = false;
  EXPECT_EQ(Feed(&lb, "HELO a\r\nNOOP\nRSET\r\n", &overlong), 3u);
  EXPECT_FALSE(overlong);
  EXPECT_EQ(DrainLines(&lb), (std::vector<std::string>{"HELO a", "NOOP", "RSET"}));
}

TEST(LineBufferTest, CrlfSplitAcrossReads) {
  LineBuffer lb;
  bool overlong = false;
  // The '\r' arrives in one read, the '\n' in the next: the line must come
  // out once, without the '\r'.
  EXPECT_EQ(Feed(&lb, "HELO test\r", &overlong), 0u);
  EXPECT_EQ(lb.pending_partial(), 10u);
  EXPECT_EQ(Feed(&lb, "\n", &overlong), 1u);
  EXPECT_EQ(DrainLines(&lb), (std::vector<std::string>{"HELO test"}));

  // Byte-at-a-time delivery of a whole command.
  for (char c : std::string("NOOP\r\n")) {
    Feed(&lb, std::string(1, c), &overlong);
  }
  EXPECT_EQ(DrainLines(&lb), (std::vector<std::string>{"NOOP"}));
}

TEST(LineBufferTest, EmptyLines) {
  LineBuffer lb;
  bool overlong = false;
  EXPECT_EQ(Feed(&lb, "\r\n\n\r\n", &overlong), 3u);
  EXPECT_EQ(DrainLines(&lb), (std::vector<std::string>{"", "", ""}));
  // A lone '\r' is content until its '\n' arrives.
  EXPECT_EQ(Feed(&lb, "\r", &overlong), 0u);
  EXPECT_EQ(Feed(&lb, "\r\n", &overlong), 1u);
  std::string_view line;
  ASSERT_TRUE(lb.NextLine(&line));
  EXPECT_EQ(line, "\r");  // only ONE trailing \r is a terminator
}

TEST(LineBufferTest, PipelinedBatchSpansBufferGrowth) {
  LineBuffer lb;
  bool overlong = false;
  // Far past the 4 KiB initial allocation in one burst: growth happens
  // mid-batch while earlier lines are still queued (growth is deferred to
  // idle moments, so drain interleaves with feeding).
  std::vector<std::string> want;
  std::string batch;
  for (int i = 0; i < 800; ++i) {
    want.push_back("APPEND line number " + std::to_string(i));
    batch += want.back() + "\r\n";
  }
  size_t carved = 0;
  size_t fed = 0;
  std::vector<std::string> got;
  while (fed < batch.size()) {
    size_t room = lb.PrepareWrite(4096, kMax + 8 * 1024);
    if (room == 0) {
      // Executor's turn: drain, then the loop may compact.
      for (auto& line : DrainLines(&lb)) {
        got.push_back(std::move(line));
      }
      continue;
    }
    size_t n = std::min(room, batch.size() - fed);
    std::memcpy(lb.write_ptr(), batch.data() + fed, n);
    lb.CommitWrite(n);
    bool over = false;
    carved += lb.CarveLines(kMax, &over);
    EXPECT_FALSE(over);
    fed += n;
  }
  for (auto& line : DrainLines(&lb)) {
    got.push_back(std::move(line));
  }
  EXPECT_EQ(carved, want.size());
  EXPECT_EQ(got, want);
}

TEST(LineBufferTest, CheckedOutViewSurvivesTailAppends) {
  LineBuffer lb;
  bool overlong = false;
  Feed(&lb, "FIRST command\r\n", &overlong);
  std::string_view line;
  ASSERT_TRUE(lb.NextLine(&line));
  EXPECT_EQ(line, "FIRST command");
  // While the executor holds the view, the loop keeps appending (growth
  // and compaction are forbidden — PrepareWrite must not move memory).
  const char* before = line.data();
  Feed(&lb, "SECOND\r\n", &overlong);
  EXPECT_EQ(line.data(), before);
  EXPECT_EQ(line, "FIRST command");
  ASSERT_TRUE(lb.NextLine(&line));
  EXPECT_EQ(line, "SECOND");
  lb.FinishLine();
}

TEST(LineBufferTest, CompactionPreservesPartialTail) {
  LineBuffer lb;
  bool overlong = false;
  // Fill most of a small buffer with consumed lines plus a partial tail,
  // then force a compaction and finish the partial line.
  Feed(&lb, "AAAA\r\nBBBB\r\nPART", &overlong);
  EXPECT_EQ(DrainLines(&lb), (std::vector<std::string>{"AAAA", "BBBB"}));
  EXPECT_EQ(lb.pending_partial(), 4u);
  // idle() now: the next PrepareWrite may slide "PART" to the front.
  (void)lb.PrepareWrite(4096, kMax);
  EXPECT_EQ(lb.pending_partial(), 4u);
  Feed(&lb, "IAL\r\n", &overlong);
  EXPECT_EQ(DrainLines(&lb), (std::vector<std::string>{"PARTIAL"}));
}

TEST(LineBufferTest, BackpressureAtCapAndResume) {
  LineBuffer lb;
  bool overlong = false;
  constexpr size_t kCap = 8 * 1024;
  // Fill with unconsumed lines: growth is only legal while idle (no
  // queued or checked-out line), so PrepareWrite must stop at 0 — at the
  // current allocation, never past the cap — rather than move memory
  // under the queued ranges.
  std::string batch;
  while (batch.size() < kCap) {
    batch += "0123456789ABCDEF\r\n";
  }
  size_t fed = 0;
  while (fed < batch.size()) {
    size_t room = lb.PrepareWrite(1024, kCap);
    if (room == 0) {
      break;
    }
    size_t n = std::min(room, batch.size() - fed);
    std::memcpy(lb.write_ptr(), batch.data() + fed, n);
    lb.CommitWrite(n);
    bool over = false;
    lb.CarveLines(/*max_line=*/kCap - 1024, &over);
    EXPECT_FALSE(over);
    fed += n;
  }
  EXPECT_LE(lb.capacity(), kCap);
  EXPECT_EQ(lb.PrepareWrite(1024, kCap), 0u) << "full with queued lines";
  // Drain (the executor), then the loop resumes: compaction/growth frees
  // room again, and the rest of the batch still fits under the cap.
  size_t drained = DrainLines(&lb).size();
  EXPECT_GT(drained, 100u);
  EXPECT_GT(lb.PrepareWrite(1024, kCap), 0u);
  size_t carved = Feed(&lb, batch.substr(fed), &overlong, /*max_line=*/kCap - 1024,
                       /*max_bytes=*/kCap);
  EXPECT_FALSE(overlong);
  EXPECT_EQ(DrainLines(&lb).size(), carved);
  EXPECT_EQ(drained + carved, batch.size() / 18) << "every line came out exactly once";
  EXPECT_LE(lb.capacity(), kCap);
}

TEST(LineBufferTest, OverlongDetection) {
  LineBuffer lb;
  bool overlong = false;
  // An unterminated run past max_line trips the flag...
  Feed(&lb, std::string(2048, 'x'), &overlong, /*max_line=*/1024, /*max_bytes=*/4096);
  EXPECT_TRUE(overlong);
  // ...while the same bytes with terminators do not.
  lb.Clear();
  std::string lines;
  for (int i = 0; i < 8; ++i) {
    lines += std::string(256, 'y') + "\r\n";
  }
  EXPECT_EQ(Feed(&lb, lines, &overlong, /*max_line=*/1024, /*max_bytes=*/4096), 8u);
  EXPECT_FALSE(overlong);
}

TEST(LineBufferTest, AdoptAndReleaseStorageRoundTrip) {
  LineBuffer a;
  bool overlong = false;
  Feed(&a, "SOME line\r\ntrailing partial", &overlong);
  EXPECT_EQ(DrainLines(&a), (std::vector<std::string>{"SOME line"}));
  std::vector<char> storage = a.ReleaseStorage();
  EXPECT_GT(storage.size(), 0u);

  // A new connection adopting the storage must see none of the old bytes.
  LineBuffer b;
  b.AdoptStorage(std::move(storage));
  EXPECT_EQ(b.pending_partial(), 0u);
  EXPECT_FALSE(b.has_line());
  Feed(&b, "FRESH\r\n", &overlong);
  EXPECT_EQ(DrainLines(&b), (std::vector<std::string>{"FRESH"}));
}

}  // namespace
}  // namespace perennial::netserv
