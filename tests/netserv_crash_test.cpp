// Crash bridge for the real-socket mail server: the child process runs
// MailNetServer + GroupCommitter(syncfs) + Mailboat over a JournalFs'd
// PosixFilesys; the parent drives a deliver-only load over TCP, SIGKILLs
// the child mid-flight once enough deliveries are acked, applies the
// power-fail projection to the surviving tree, recovers a fresh Mailboat,
// and checks acked => durable: every delivery the client saw a "250" for
// is present, full contents intact, after the simulated power cut.
//
// tier2-crashreal: runs WITHOUT TSan (the TSan runtime does not survive
// fork+SIGKILL children); self-skips like crashreal_test.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/crashreal/journal_fs.h"
#include "src/crashreal/projection.h"
#include "src/goose/world.h"
#include "src/goosefs/posix_fs.h"
#include "src/mailboat/mailboat.h"
#include "src/netserv/group_commit.h"
#include "src/netserv/loadgen.h"
#include "src/netserv/server.h"
#include "src/proc/task.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PCC_TSAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define PCC_TSAN 1
#endif

namespace perennial::netserv {
namespace {

constexpr uint64_t kUsers = 8;
constexpr uint64_t kMinAcked = 150;

mailboat::Mailboat::Options MailOptions() {
  return mailboat::Mailboat::Options{kUsers, 4096, 512, 42};
}

// Child: full production stack with the journal recording durability
// effects for the parent's projection. Never returns; the parent SIGKILLs
// it. Uses _exit on setup failure (no gtest machinery in the child).
[[noreturn]] void ServerChild(const std::string& mail_root, const std::string& journal_path,
                              int port_pipe_wfd) {
  crashreal::JournalFs journal(journal_path);
  int root_fd = ::open(mail_root.c_str(), O_DIRECTORY | O_RDONLY);
  if (root_fd < 0) {
    ::_exit(10);
  }
  GroupCommitter committer(GroupCommitter::Options{
      .max_wait_us = 500,
      .max_batch = 64,
      .barrier = GroupCommitter::Barrier::kSyncfs,
      .syncfs_fd = root_fd,
  });
  committer.Start();
  goosefs::PosixFilesys::Options fopts;
  fopts.cache_dir_fds = true;
  fopts.fsync_dirs = true;
  fopts.fsyncer = &committer;
  fopts.hook = [&journal](const char* point, const std::string& dir) {
    journal.OnPosixHook(point, dir);
  };
  goosefs::PosixFilesys fs(mail_root, std::move(fopts));
  if (!fs.EnsureDirs(mailboat::Mailboat::DirLayout(kUsers), /*clear_contents=*/false).ok()) {
    ::_exit(11);
  }
  journal.SetInner(&fs);
  goose::World world;
  mailboat::Mailboat mail(&world, &journal, MailOptions());
  proc::RunSyncVoid(mail.Recover());
  MailNetServer::Options sopts;
  sopts.num_loops = 2;
  sopts.num_executors = 40;
  MailNetServer server(&mail, sopts);
  if (!server.Start()) {
    ::_exit(12);
  }
  std::string ports =
      std::to_string(server.smtp_port()) + " " + std::to_string(server.pop3_port()) + "\n";
  if (::write(port_pipe_wfd, ports.data(), ports.size()) != static_cast<ssize_t>(ports.size())) {
    ::_exit(13);
  }
  ::close(port_pipe_wfd);
  for (;;) {
    ::pause();  // SIGKILL ends us mid-load
  }
}

TEST(NetservCrashTest, AckedDeliveriesSurvivePowerFailProjection) {
#ifdef PCC_TSAN
  GTEST_SKIP() << "crash bridge SIGKILLs a forked child; run without TSan";
#else
  std::string root = ::testing::TempDir() + "/pcc_netserv_crash";
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  std::string mail_root = root + "/mail";
  std::string journal_path = root + "/journal.txt";
  std::filesystem::create_directories(mail_root);

  std::vector<std::string> dirs = mailboat::Mailboat::DirLayout(kUsers);
  {
    goosefs::PosixFilesys fs(mail_root, goosefs::PosixFilesys::Options{});
    ASSERT_TRUE(fs.EnsureDirs(dirs, /*clear_contents=*/true).ok());
  }
  Result<crashreal::DirListing> base = crashreal::ListDirs(mail_root, dirs);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  int port_pipe[2];
  ASSERT_EQ(::pipe(port_pipe), 0);
  pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(port_pipe[0]);
    ServerChild(mail_root, journal_path, port_pipe[1]);
  }
  ::close(port_pipe[1]);
  std::string ports_line;
  char ch;
  while (::read(port_pipe[0], &ch, 1) == 1 && ch != '\n') {
    ports_line += ch;
  }
  ::close(port_pipe[0]);
  unsigned smtp_port = 0;
  unsigned pop3_port = 0;
  ASSERT_EQ(std::sscanf(ports_line.c_str(), "%u %u", &smtp_port, &pop3_port), 2)
      << "child port report: '" << ports_line << "'";

  // Deliver-only load with an effectively-unbounded budget; the watcher
  // SIGKILLs the child as soon as kMinAcked deliveries are acknowledged,
  // so the run always ends by crash, with more in flight.
  std::atomic<uint64_t> acked{0};
  std::thread watcher([&] {
    for (int waited_ms = 0; waited_ms < 120000; ++waited_ms) {
      if (acked.load(std::memory_order_relaxed) >= kMinAcked) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ::kill(child, SIGKILL);
  });

  LoadgenOptions load;
  load.smtp_port = static_cast<uint16_t>(smtp_port);
  load.pop3_port = static_cast<uint16_t>(pop3_port);
  load.clients = 32;
  load.requests = 1000000;
  load.num_users = kUsers;
  load.pickup_fraction = 0.0;
  load.body_bytes = 200;
  load.stall_timeout_ms = 30000;
  load.acked_counter = &acked;
  LoadgenResult result = RunLoadgen(load);
  watcher.join();
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);

  ASSERT_GE(result.acked_bodies.size(), kMinAcked) << "load never reached the kill threshold";
  EXPECT_TRUE(result.aborted);  // the run ended by crash, not by drained budget

  // Power-fail projection: prune to the weakest state a real power cut at
  // the kill instant could have left, per the child's journal.
  Result<crashreal::DirListing> projected =
      crashreal::ApplyPowerFailProjection(mail_root, journal_path, dirs, base.value());
  ASSERT_TRUE(projected.ok()) << projected.status().ToString();

  // Recover on the projected tree and collect every surviving message.
  goosefs::PosixFilesys::Options fopts;
  fopts.fsync_dirs = true;
  goosefs::PosixFilesys fs(mail_root, std::move(fopts));
  ASSERT_TRUE(fs.EnsureDirs(dirs, /*clear_contents=*/false).ok());
  goose::World world;
  mailboat::Mailboat mail(&world, &fs, MailOptions());
  world.Crash();  // recovery runs in the post-crash generation
  proc::RunSyncVoid(mail.Recover());
  std::multiset<std::string> survivors;
  for (uint64_t user = 0; user < kUsers; ++user) {
    Result<std::vector<mailboat::Message>> picked = proc::RunSync(mail.Pickup(user));
    ASSERT_TRUE(picked.ok()) << picked.status().ToString();
    for (const mailboat::Message& m : picked.value()) {
      survivors.insert(m.contents);
    }
    proc::RunSyncVoid(mail.Unlock(user));
  }

  // acked => durable: every "250 OK" the clients saw survives the cut with
  // its full contents. (Unacked in-flight deliveries may or may not — both
  // are legal — so the check is one-directional.)
  uint64_t missing = 0;
  for (const std::string& body : result.acked_bodies) {
    auto it = survivors.find(body);
    if (it == survivors.end()) {
      ++missing;
      ADD_FAILURE() << "acked delivery lost by power-fail projection: "
                    << body.substr(0, body.find('x'));
    } else {
      survivors.erase(it);
    }
  }
  EXPECT_EQ(missing, 0u) << missing << " of " << result.acked_bodies.size()
                         << " acked deliveries missing";
  std::filesystem::remove_all(root);
#endif
}

}  // namespace
}  // namespace perennial::netserv
