// tier2-net fault soaks: the loadgen fleet versus a hostile disk.
//
// A seeded SyscallFaultPlan is interposed on every data-path syscall of the
// in-process production stack (PosixFilesys + GroupCommitter + Mailboat +
// MailNetServer) while the loadgen drives real SMTP/POP3 traffic with
// RFC-style tempfail retries. After each soak the store is recovered with a
// CLEAN filesystem and audited against the client's view:
//
//   * acked => durable: every body the server answered 250 for is in the
//     recovered store (zero acked-but-lost);
//   * lost => tempfailed: every body found in the store that was never
//     acked is one the generator explicitly gave up on (a compensation
//     unlink that itself failed) — no message appears out of thin air;
//   * honest failure mode: zero protocol-level errors; the only failures
//     are tempfails, which is what an honest server degrades to.
//
// Meant for -DPCC_SANITIZE=thread (`ctest -L tier2-net`) as well as plain
// builds: the fault path adds lock-ordering edges (committer poison sets,
// filesys error paths) that only TSan can audit.
#include <sys/stat.h>
#include <unistd.h>

#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/fault/syscall_fault.h"
#include "src/goose/world.h"
#include "src/goosefs/posix_fs.h"
#include "src/mailboat/mailboat.h"
#include "src/netserv/harness.h"
#include "src/netserv/loadgen.h"
#include "src/proc/task.h"

namespace perennial::netserv {
namespace {

constexpr uint64_t kUsers = 6;

std::string TestRoot(const char* name) {
  std::string root = "/tmp/pcc-netserv-fault-" + std::string(name) + "-" +
                     std::to_string(::getpid());
  std::string cmd = "rm -rf " + root;
  [[maybe_unused]] int rc = std::system(cmd.c_str());
  return root;
}

LoadgenOptions SoakLoad(const InprocMailServer& server, uint64_t requests,
                        double pickup_fraction) {
  LoadgenOptions load;
  load.smtp_port = server.smtp_port();
  load.pop3_port = server.pop3_port();
  load.clients = 24;
  load.requests = requests;
  load.num_users = kUsers;
  load.pickup_fraction = pickup_fraction;
  load.body_bytes = 96;
  load.stall_timeout_ms = 60000;  // fault storms slow progress; not a hang
  return load;
}

// Recovers the store with a clean (fault-free) filesystem and returns every
// message body it contains, exactly as a post-crash restart would see it.
std::vector<std::string> RecoverSurvivors(const std::string& root) {
  goosefs::PosixFilesys::Options fopts;
  fopts.fsync_dirs = true;
  fopts.recovery_reconciled_dirs = {"spool"};
  goosefs::PosixFilesys fs(root, std::move(fopts));
  Status es = fs.EnsureDirs(mailboat::Mailboat::DirLayout(kUsers), /*clear_contents=*/false);
  EXPECT_TRUE(es.ok()) << es.ToString();
  goose::World world;
  mailboat::Mailboat mail(&world, &fs, mailboat::Mailboat::Options{kUsers, 4096, 512, 42});
  proc::RunSyncVoid(mail.Recover());
  std::vector<std::string> survivors;
  for (uint64_t user = 0; user < kUsers; ++user) {
    Result<std::vector<mailboat::Message>> picked = proc::RunSync(mail.Pickup(user));
    EXPECT_TRUE(picked.ok()) << picked.status().ToString();
    if (picked.ok()) {
      for (const mailboat::Message& m : picked.value()) {
        survivors.push_back(m.contents);
      }
    }
    proc::RunSyncVoid(mail.Unlock(user));
  }
  return survivors;
}

// The acked/lost audit shared by the storm scenarios (deliver-only runs,
// so the store contains exactly what the soak delivered).
void AuditAckedVsDurable(const LoadgenResult& result, const std::vector<std::string>& survivors) {
  std::set<std::string> survivor_set(survivors.begin(), survivors.end());
  uint64_t acked_lost = 0;
  for (const std::string& body : result.acked_bodies) {
    if (survivor_set.count(body) == 0) {
      ++acked_lost;
    }
  }
  EXPECT_EQ(acked_lost, 0u) << "acked deliveries missing after recovery";

  std::set<std::string> accounted(result.acked_bodies.begin(), result.acked_bodies.end());
  accounted.insert(result.tempfailed_bodies.begin(), result.tempfailed_bodies.end());
  uint64_t phantom = 0;
  for (const std::string& body : survivor_set) {
    if (accounted.count(body) == 0) {
      ++phantom;
    }
  }
  EXPECT_EQ(phantom, 0u) << "durable bodies the generator never sent or gave up on";
}

TEST(NetservFaultTest, EnospcStormKeepsAcksHonest) {
  std::string root = TestRoot("enospc");
  InprocMailServer::Config config;
  config.root = root;
  config.users = kUsers;
  config.loops = 2;
  config.executors = 32;
  Result<fault::SyscallFaultPlan> plan = fault::SyscallFaultPlan::Parse(
      "no-space=0.05,transient-write=0.02,short-write=0.02,seed=11");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  config.fault_plan = plan.value();
  InprocMailServer server(config);
  ASSERT_TRUE(server.Start());

  LoadgenResult result = RunLoadgen(SoakLoad(server, 400, /*pickup_fraction=*/0.0));
  ASSERT_NE(server.faults(), nullptr);
  EXPECT_GT(server.faults()->total_injected(), 0u) << server.faults()->InjectedSummary();
  server.Stop();

  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.errors, 0u) << "faults must surface as tempfails, not protocol errors";
  EXPECT_EQ(result.ok_requests + result.tempfails, 400u);
  EXPECT_GT(result.ok_requests, 0u) << "a 5% storm must not starve the server completely";

  AuditAckedVsDurable(result, RecoverSurvivors(root));
}

TEST(NetservFaultTest, FailedFsyncBarriersTempfailEveryRiderNotFalseAck) {
  std::string root = TestRoot("fsync");
  InprocMailServer::Config config;
  config.root = root;
  config.users = kUsers;
  config.loops = 2;
  config.executors = 32;
  config.group_commit = true;
  // High enough that batches fail even through the per-fd fallback.
  Result<fault::SyscallFaultPlan> plan =
      fault::SyscallFaultPlan::Parse("failed-sync=0.4,seed=7");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  config.fault_plan = plan.value();
  InprocMailServer server(config);
  ASSERT_TRUE(server.Start());

  LoadgenResult result = RunLoadgen(SoakLoad(server, 400, /*pickup_fraction=*/0.0));
  ASSERT_NE(server.faults(), nullptr);
  EXPECT_GT(server.faults()->injected(fault::SyscallFaultKind::kFailedSync), 0u);
  // At these rates some barriers failed outright; each failure tempfailed
  // its whole batch (sticky poisoning means no later false success).
  EXPECT_GT(server.committer()->stats().failed_batches.load(), 0u);
  server.Stop();

  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.ok_requests + result.tempfails, 400u);
  EXPECT_GT(result.ok_requests, 0u);

  AuditAckedVsDurable(result, RecoverSurvivors(root));
}

TEST(NetservFaultTest, EintrFlurryIsInvisibleToClients) {
  std::string root = TestRoot("eintr");
  InprocMailServer::Config config;
  config.root = root;
  config.users = kUsers;
  config.loops = 2;
  config.executors = 32;
  Result<fault::SyscallFaultPlan> plan = fault::SyscallFaultPlan::Parse("eintr=0.3,seed=5");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  config.fault_plan = plan.value();
  InprocMailServer server(config);
  ASSERT_TRUE(server.Start());

  // Mixed traffic: EINTR hits reads, writes, links, and barriers alike.
  LoadgenResult result = RunLoadgen(SoakLoad(server, 400, /*pickup_fraction=*/0.3));
  ASSERT_NE(server.faults(), nullptr);
  EXPECT_GT(server.faults()->injected(fault::SyscallFaultKind::kEintr), 0u);
  server.Stop();

  // Every EINTR must be absorbed by a retry loop below the protocol layer:
  // clients see a completely clean run.
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.tempfails, 0u);
  EXPECT_EQ(result.ok_requests, 400u);

  // Conservation: deliveries minus committed deletes remain in the store.
  std::vector<std::string> survivors = RecoverSurvivors(root);
  EXPECT_EQ(survivors.size(), result.delivers - result.deletes);
}

}  // namespace
}  // namespace perennial::netserv
