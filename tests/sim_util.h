// Test helpers for driving modeled coroutines under a simulated scheduler.
#ifndef PERENNIAL_TESTS_SIM_UTIL_H_
#define PERENNIAL_TESTS_SIM_UTIL_H_

#include <optional>
#include <utility>

#include "src/base/panic.h"
#include "src/proc/scheduler.h"
#include "src/proc/task.h"

namespace perennial::testing {

// Runs all threads to completion, always stepping the lowest runnable tid.
inline void DrainLowestFirst(proc::Scheduler& sched) {
  while (!sched.AllDone()) {
    auto runnable = sched.RunnableThreads();
    PCC_ENSURE(!runnable.empty(), "DrainLowestFirst: deadlock");
    sched.Step(runnable[0]);
  }
}

// Runs all threads to completion round-robin (cycling through runnable tids).
inline void DrainRoundRobin(proc::Scheduler& sched) {
  size_t turn = 0;
  while (!sched.AllDone()) {
    auto runnable = sched.RunnableThreads();
    PCC_ENSURE(!runnable.empty(), "DrainRoundRobin: deadlock");
    sched.Step(runnable[turn % runnable.size()]);
    ++turn;
  }
}

template <typename T>
proc::Task<void> CaptureInto(proc::Task<T> inner, std::optional<T>* slot) {
  *slot = co_await std::move(inner);
}

// Runs a single task under a fresh scheduler and returns its result.
// A SchedulerScope must NOT already be installed by the caller.
template <typename T>
T SimRun(proc::Task<T> task) {
  proc::Scheduler sched;
  proc::SchedulerScope scope(&sched);
  std::optional<T> out;
  sched.Spawn(CaptureInto(std::move(task), &out));
  DrainLowestFirst(sched);
  PCC_ENSURE(out.has_value(), "SimRun: task produced no value");
  return std::move(*out);
}

inline void SimRunVoid(proc::Task<void> task) {
  proc::Scheduler sched;
  proc::SchedulerScope scope(&sched);
  sched.Spawn(std::move(task));
  DrainLowestFirst(sched);
}

}  // namespace perennial::testing

#endif  // PERENNIAL_TESTS_SIM_UTIL_H_
