// Tests for the coroutine Task type and the deterministic scheduler.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/panic.h"
#include "src/proc/scheduler.h"
#include "src/proc/task.h"

namespace perennial::proc {
namespace {

Task<int> ReturnFortyTwo() { co_return 42; }

Task<int> AddOne(int x) {
  int base = co_await ReturnFortyTwo();
  co_return base + x;
}

TEST(Task, RunSyncReturnsValue) { EXPECT_EQ(RunSync(ReturnFortyTwo()), 42); }

TEST(Task, NestedAwaitComposes) { EXPECT_EQ(RunSync(AddOne(8)), 50); }

Task<void> AppendValues(std::vector<int>* out) {
  out->push_back(1);
  out->push_back(2);
  co_return;
}

TEST(Task, RunSyncVoidRuns) {
  std::vector<int> values;
  RunSyncVoid(AppendValues(&values));
  EXPECT_EQ(values, (std::vector<int>{1, 2}));
}

Task<int> Thrower() {
  RaiseUb("modeled undefined behavior");
  co_return 0;
}

TEST(Task, ExceptionPropagatesThroughAwait) {
  EXPECT_THROW(RunSync(Thrower()), UbViolation);
}

Task<int> AwaitsThrower() {
  int v = co_await Thrower();
  co_return v + 1;
}

TEST(Task, ExceptionPropagatesThroughNestedAwait) {
  EXPECT_THROW(RunSync(AwaitsThrower()), UbViolation);
}

TEST(Task, YieldIsNoOpWithoutScheduler) {
  auto body = []() -> Task<int> {
    co_await Yield();
    co_await Yield();
    co_return 7;
  };
  EXPECT_EQ(RunSync(body()), 7);
}

// --- Scheduler tests ---

Task<void> CountingThread(std::vector<int>* log, int id, int iters) {
  for (int i = 0; i < iters; ++i) {
    co_await Yield();
    log->push_back(id);
  }
}

TEST(Scheduler, RoundRobinInterleavesDeterministically) {
  Scheduler sched;
  SchedulerScope scope(&sched);
  std::vector<int> log;
  sched.Spawn(CountingThread(&log, 0, 2));
  sched.Spawn(CountingThread(&log, 1, 2));
  while (!sched.AllDone()) {
    auto runnable = sched.RunnableThreads();
    ASSERT_FALSE(runnable.empty());
    sched.Step(runnable[0]);  // always run lowest tid first
  }
  // Lowest-tid-first: thread 0 runs fully, then thread 1.
  EXPECT_EQ(log, (std::vector<int>{0, 0, 1, 1}));
}

TEST(Scheduler, AlternatingScheduleInterleaves) {
  Scheduler sched;
  SchedulerScope scope(&sched);
  std::vector<int> log;
  sched.Spawn(CountingThread(&log, 0, 2));
  sched.Spawn(CountingThread(&log, 1, 2));
  int turn = 0;
  while (!sched.AllDone()) {
    auto runnable = sched.RunnableThreads();
    ASSERT_FALSE(runnable.empty());
    Scheduler::Tid pick = runnable[static_cast<size_t>(turn) % runnable.size()];
    sched.Step(pick);
    ++turn;
  }
  EXPECT_EQ(log.size(), 4u);
}

TEST(Scheduler, StepReturnsTrueOnCompletion) {
  Scheduler sched;
  SchedulerScope scope(&sched);
  std::vector<int> log;
  Scheduler::Tid tid = sched.Spawn(CountingThread(&log, 0, 1));
  EXPECT_FALSE(sched.Step(tid));  // runs to the Yield
  EXPECT_TRUE(sched.Step(tid));   // completes
  EXPECT_TRUE(sched.IsDone(tid));
  EXPECT_TRUE(sched.AllDone());
}

Task<void> SpawnsChild(std::vector<int>* log) {
  log->push_back(0);
  CurrentScheduler()->Spawn(CountingThread(log, 99, 1), "child");
  co_await Yield();
  log->push_back(1);
}

TEST(Scheduler, SpawnFromRunningThread) {
  Scheduler sched;
  SchedulerScope scope(&sched);
  std::vector<int> log;
  sched.Spawn(SpawnsChild(&log));
  while (!sched.AllDone()) {
    auto runnable = sched.RunnableThreads();
    ASSERT_FALSE(runnable.empty());
    sched.Step(runnable[0]);
  }
  EXPECT_EQ(sched.thread_count(), 2u);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], 0);
}

Task<void> BlocksForever() {
  co_await BlockCurrentThread();
}

TEST(Scheduler, BlockedThreadIsNotRunnableAndDeadlocks) {
  Scheduler sched;
  SchedulerScope scope(&sched);
  sched.Spawn(BlocksForever());
  auto runnable = sched.RunnableThreads();
  ASSERT_EQ(runnable.size(), 1u);
  sched.Step(runnable[0]);
  EXPECT_TRUE(sched.RunnableThreads().empty());
  EXPECT_FALSE(sched.AllDone());
  EXPECT_TRUE(sched.Deadlocked());
}

TEST(Scheduler, UnblockMakesThreadRunnableAgain) {
  Scheduler sched;
  SchedulerScope scope(&sched);
  Scheduler::Tid tid = sched.Spawn(BlocksForever());
  sched.Step(tid);
  EXPECT_TRUE(sched.Deadlocked());
  sched.Unblock(tid);
  ASSERT_EQ(sched.RunnableThreads().size(), 1u);
  EXPECT_TRUE(sched.Step(tid));
  EXPECT_TRUE(sched.AllDone());
}

Task<void> ThrowsAfterYield() {
  co_await Yield();
  RaiseUb("boom");
}

TEST(Scheduler, ThreadExceptionPropagatesFromStep) {
  Scheduler sched;
  SchedulerScope scope(&sched);
  Scheduler::Tid tid = sched.Spawn(ThrowsAfterYield());
  EXPECT_FALSE(sched.Step(tid));
  EXPECT_THROW(sched.Step(tid), UbViolation);
}

TEST(Scheduler, KillAllThreadsDestroysFrames) {
  Scheduler sched;
  SchedulerScope scope(&sched);
  auto holder = std::make_shared<int>(5);
  std::weak_ptr<int> weak = holder;
  auto body = [](std::shared_ptr<int> kept) -> Task<void> {
    co_await Yield();
    (void)kept;
    co_await Yield();
  };
  sched.Spawn(body(std::move(holder)));
  auto runnable = sched.RunnableThreads();
  sched.Step(runnable[0]);  // suspend at first yield; frame holds the shared_ptr
  EXPECT_FALSE(weak.expired());
  sched.KillAllThreads();
  EXPECT_TRUE(weak.expired());  // frame destroyed, memory released
  EXPECT_EQ(sched.thread_count(), 0u);
}

TEST(Scheduler, StepsCounterAdvances) {
  Scheduler sched;
  SchedulerScope scope(&sched);
  std::vector<int> log;
  sched.Spawn(CountingThread(&log, 0, 3));
  uint64_t before = sched.steps();
  while (!sched.AllDone()) {
    sched.Step(sched.RunnableThreads()[0]);
  }
  EXPECT_EQ(sched.steps() - before, 4u);  // 3 yields + final completion step
}

TEST(Scheduler, CurrentSchedulerScopesNest) {
  EXPECT_EQ(CurrentScheduler(), nullptr);
  Scheduler outer;
  {
    SchedulerScope a(&outer);
    EXPECT_EQ(CurrentScheduler(), &outer);
    Scheduler inner;
    {
      SchedulerScope b(&inner);
      EXPECT_EQ(CurrentScheduler(), &inner);
    }
    EXPECT_EQ(CurrentScheduler(), &outer);
  }
  EXPECT_EQ(CurrentScheduler(), nullptr);
}

}  // namespace
}  // namespace perennial::proc
