file(REMOVE_RECURSE
  "CMakeFiles/pcc_mailboat.dir/gomail.cc.o"
  "CMakeFiles/pcc_mailboat.dir/gomail.cc.o.d"
  "CMakeFiles/pcc_mailboat.dir/mailboat.cc.o"
  "CMakeFiles/pcc_mailboat.dir/mailboat.cc.o.d"
  "CMakeFiles/pcc_mailboat.dir/workload.cc.o"
  "CMakeFiles/pcc_mailboat.dir/workload.cc.o.d"
  "libpcc_mailboat.a"
  "libpcc_mailboat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_mailboat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
