file(REMOVE_RECURSE
  "libpcc_mailboat.a"
)
