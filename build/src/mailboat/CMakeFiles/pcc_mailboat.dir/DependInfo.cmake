
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mailboat/gomail.cc" "src/mailboat/CMakeFiles/pcc_mailboat.dir/gomail.cc.o" "gcc" "src/mailboat/CMakeFiles/pcc_mailboat.dir/gomail.cc.o.d"
  "/root/repo/src/mailboat/mailboat.cc" "src/mailboat/CMakeFiles/pcc_mailboat.dir/mailboat.cc.o" "gcc" "src/mailboat/CMakeFiles/pcc_mailboat.dir/mailboat.cc.o.d"
  "/root/repo/src/mailboat/workload.cc" "src/mailboat/CMakeFiles/pcc_mailboat.dir/workload.cc.o" "gcc" "src/mailboat/CMakeFiles/pcc_mailboat.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/pcc_base.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/pcc_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/goosefs/CMakeFiles/pcc_goosefs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
