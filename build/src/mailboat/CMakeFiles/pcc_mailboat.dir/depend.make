# Empty dependencies file for pcc_mailboat.
# This may be replaced when dependencies are built.
