file(REMOVE_RECURSE
  "CMakeFiles/pcc_goosefs.dir/goosefs.cc.o"
  "CMakeFiles/pcc_goosefs.dir/goosefs.cc.o.d"
  "CMakeFiles/pcc_goosefs.dir/posix_fs.cc.o"
  "CMakeFiles/pcc_goosefs.dir/posix_fs.cc.o.d"
  "libpcc_goosefs.a"
  "libpcc_goosefs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_goosefs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
