# Empty compiler generated dependencies file for pcc_goosefs.
# This may be replaced when dependencies are built.
