file(REMOVE_RECURSE
  "libpcc_goosefs.a"
)
