# Empty dependencies file for pcc_smtp.
# This may be replaced when dependencies are built.
