file(REMOVE_RECURSE
  "CMakeFiles/pcc_smtp.dir/mail_serverd.cc.o"
  "CMakeFiles/pcc_smtp.dir/mail_serverd.cc.o.d"
  "CMakeFiles/pcc_smtp.dir/pop3.cc.o"
  "CMakeFiles/pcc_smtp.dir/pop3.cc.o.d"
  "CMakeFiles/pcc_smtp.dir/smtp.cc.o"
  "CMakeFiles/pcc_smtp.dir/smtp.cc.o.d"
  "libpcc_smtp.a"
  "libpcc_smtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_smtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
