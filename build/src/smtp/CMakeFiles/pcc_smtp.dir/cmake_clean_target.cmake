file(REMOVE_RECURSE
  "libpcc_smtp.a"
)
