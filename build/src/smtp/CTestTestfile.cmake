# CMake generated Testfile for 
# Source directory: /root/repo/src/smtp
# Build directory: /root/repo/build/src/smtp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
