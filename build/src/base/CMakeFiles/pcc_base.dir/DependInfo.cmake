
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/loc.cc" "src/base/CMakeFiles/pcc_base.dir/loc.cc.o" "gcc" "src/base/CMakeFiles/pcc_base.dir/loc.cc.o.d"
  "/root/repo/src/base/panic.cc" "src/base/CMakeFiles/pcc_base.dir/panic.cc.o" "gcc" "src/base/CMakeFiles/pcc_base.dir/panic.cc.o.d"
  "/root/repo/src/base/rand.cc" "src/base/CMakeFiles/pcc_base.dir/rand.cc.o" "gcc" "src/base/CMakeFiles/pcc_base.dir/rand.cc.o.d"
  "/root/repo/src/base/status.cc" "src/base/CMakeFiles/pcc_base.dir/status.cc.o" "gcc" "src/base/CMakeFiles/pcc_base.dir/status.cc.o.d"
  "/root/repo/src/base/strutil.cc" "src/base/CMakeFiles/pcc_base.dir/strutil.cc.o" "gcc" "src/base/CMakeFiles/pcc_base.dir/strutil.cc.o.d"
  "/root/repo/src/base/table.cc" "src/base/CMakeFiles/pcc_base.dir/table.cc.o" "gcc" "src/base/CMakeFiles/pcc_base.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
