# Empty dependencies file for pcc_base.
# This may be replaced when dependencies are built.
