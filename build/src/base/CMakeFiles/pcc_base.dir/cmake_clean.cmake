file(REMOVE_RECURSE
  "CMakeFiles/pcc_base.dir/loc.cc.o"
  "CMakeFiles/pcc_base.dir/loc.cc.o.d"
  "CMakeFiles/pcc_base.dir/panic.cc.o"
  "CMakeFiles/pcc_base.dir/panic.cc.o.d"
  "CMakeFiles/pcc_base.dir/rand.cc.o"
  "CMakeFiles/pcc_base.dir/rand.cc.o.d"
  "CMakeFiles/pcc_base.dir/status.cc.o"
  "CMakeFiles/pcc_base.dir/status.cc.o.d"
  "CMakeFiles/pcc_base.dir/strutil.cc.o"
  "CMakeFiles/pcc_base.dir/strutil.cc.o.d"
  "CMakeFiles/pcc_base.dir/table.cc.o"
  "CMakeFiles/pcc_base.dir/table.cc.o.d"
  "libpcc_base.a"
  "libpcc_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
