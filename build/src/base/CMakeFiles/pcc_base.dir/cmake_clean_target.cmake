file(REMOVE_RECURSE
  "libpcc_base.a"
)
