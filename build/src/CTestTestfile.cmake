# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("tsys")
subdirs("proc")
subdirs("goose")
subdirs("disk")
subdirs("goosefs")
subdirs("cap")
subdirs("refine")
subdirs("systems")
subdirs("mailboat")
subdirs("smtp")
