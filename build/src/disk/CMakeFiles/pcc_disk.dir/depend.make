# Empty dependencies file for pcc_disk.
# This may be replaced when dependencies are built.
