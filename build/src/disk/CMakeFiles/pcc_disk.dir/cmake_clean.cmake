file(REMOVE_RECURSE
  "CMakeFiles/pcc_disk.dir/disk.cc.o"
  "CMakeFiles/pcc_disk.dir/disk.cc.o.d"
  "libpcc_disk.a"
  "libpcc_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
