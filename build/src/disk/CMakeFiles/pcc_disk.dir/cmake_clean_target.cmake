file(REMOVE_RECURSE
  "libpcc_disk.a"
)
