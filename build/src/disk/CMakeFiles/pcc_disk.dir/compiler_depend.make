# Empty compiler generated dependencies file for pcc_disk.
# This may be replaced when dependencies are built.
