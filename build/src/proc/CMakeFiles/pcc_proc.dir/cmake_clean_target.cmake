file(REMOVE_RECURSE
  "libpcc_proc.a"
)
