file(REMOVE_RECURSE
  "CMakeFiles/pcc_proc.dir/scheduler.cc.o"
  "CMakeFiles/pcc_proc.dir/scheduler.cc.o.d"
  "CMakeFiles/pcc_proc.dir/task.cc.o"
  "CMakeFiles/pcc_proc.dir/task.cc.o.d"
  "libpcc_proc.a"
  "libpcc_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
