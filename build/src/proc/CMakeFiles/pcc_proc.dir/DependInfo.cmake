
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proc/scheduler.cc" "src/proc/CMakeFiles/pcc_proc.dir/scheduler.cc.o" "gcc" "src/proc/CMakeFiles/pcc_proc.dir/scheduler.cc.o.d"
  "/root/repo/src/proc/task.cc" "src/proc/CMakeFiles/pcc_proc.dir/task.cc.o" "gcc" "src/proc/CMakeFiles/pcc_proc.dir/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/pcc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
