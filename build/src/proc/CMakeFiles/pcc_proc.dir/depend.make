# Empty dependencies file for pcc_proc.
# This may be replaced when dependencies are built.
