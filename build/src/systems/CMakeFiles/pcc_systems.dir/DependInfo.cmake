
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systems/ftl/ftl.cc" "src/systems/CMakeFiles/pcc_systems.dir/ftl/ftl.cc.o" "gcc" "src/systems/CMakeFiles/pcc_systems.dir/ftl/ftl.cc.o.d"
  "/root/repo/src/systems/gc/group_commit.cc" "src/systems/CMakeFiles/pcc_systems.dir/gc/group_commit.cc.o" "gcc" "src/systems/CMakeFiles/pcc_systems.dir/gc/group_commit.cc.o.d"
  "/root/repo/src/systems/kvs/kv_store.cc" "src/systems/CMakeFiles/pcc_systems.dir/kvs/kv_store.cc.o" "gcc" "src/systems/CMakeFiles/pcc_systems.dir/kvs/kv_store.cc.o.d"
  "/root/repo/src/systems/repl/replicated_disk.cc" "src/systems/CMakeFiles/pcc_systems.dir/repl/replicated_disk.cc.o" "gcc" "src/systems/CMakeFiles/pcc_systems.dir/repl/replicated_disk.cc.o.d"
  "/root/repo/src/systems/shadow/shadow_pair.cc" "src/systems/CMakeFiles/pcc_systems.dir/shadow/shadow_pair.cc.o" "gcc" "src/systems/CMakeFiles/pcc_systems.dir/shadow/shadow_pair.cc.o.d"
  "/root/repo/src/systems/txnlog/txn_log.cc" "src/systems/CMakeFiles/pcc_systems.dir/txnlog/txn_log.cc.o" "gcc" "src/systems/CMakeFiles/pcc_systems.dir/txnlog/txn_log.cc.o.d"
  "/root/repo/src/systems/wal/wal_pair.cc" "src/systems/CMakeFiles/pcc_systems.dir/wal/wal_pair.cc.o" "gcc" "src/systems/CMakeFiles/pcc_systems.dir/wal/wal_pair.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/pcc_base.dir/DependInfo.cmake"
  "/root/repo/build/src/proc/CMakeFiles/pcc_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/pcc_disk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
