file(REMOVE_RECURSE
  "libpcc_systems.a"
)
