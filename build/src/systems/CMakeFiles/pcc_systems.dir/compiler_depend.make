# Empty compiler generated dependencies file for pcc_systems.
# This may be replaced when dependencies are built.
