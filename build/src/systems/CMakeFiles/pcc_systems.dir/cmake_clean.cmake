file(REMOVE_RECURSE
  "CMakeFiles/pcc_systems.dir/ftl/ftl.cc.o"
  "CMakeFiles/pcc_systems.dir/ftl/ftl.cc.o.d"
  "CMakeFiles/pcc_systems.dir/gc/group_commit.cc.o"
  "CMakeFiles/pcc_systems.dir/gc/group_commit.cc.o.d"
  "CMakeFiles/pcc_systems.dir/kvs/kv_store.cc.o"
  "CMakeFiles/pcc_systems.dir/kvs/kv_store.cc.o.d"
  "CMakeFiles/pcc_systems.dir/repl/replicated_disk.cc.o"
  "CMakeFiles/pcc_systems.dir/repl/replicated_disk.cc.o.d"
  "CMakeFiles/pcc_systems.dir/shadow/shadow_pair.cc.o"
  "CMakeFiles/pcc_systems.dir/shadow/shadow_pair.cc.o.d"
  "CMakeFiles/pcc_systems.dir/txnlog/txn_log.cc.o"
  "CMakeFiles/pcc_systems.dir/txnlog/txn_log.cc.o.d"
  "CMakeFiles/pcc_systems.dir/wal/wal_pair.cc.o"
  "CMakeFiles/pcc_systems.dir/wal/wal_pair.cc.o.d"
  "libpcc_systems.a"
  "libpcc_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcc_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
