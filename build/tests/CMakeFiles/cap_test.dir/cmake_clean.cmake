file(REMOVE_RECURSE
  "CMakeFiles/cap_test.dir/cap_test.cpp.o"
  "CMakeFiles/cap_test.dir/cap_test.cpp.o.d"
  "cap_test"
  "cap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
