# Empty dependencies file for cap_test.
# This may be replaced when dependencies are built.
