file(REMOVE_RECURSE
  "CMakeFiles/repl_test.dir/repl_test.cpp.o"
  "CMakeFiles/repl_test.dir/repl_test.cpp.o.d"
  "repl_test"
  "repl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
