# Empty compiler generated dependencies file for patterns_test.
# This may be replaced when dependencies are built.
