file(REMOVE_RECURSE
  "CMakeFiles/atomic_test.dir/atomic_test.cpp.o"
  "CMakeFiles/atomic_test.dir/atomic_test.cpp.o.d"
  "atomic_test"
  "atomic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
