file(REMOVE_RECURSE
  "CMakeFiles/mailboat_test.dir/mailboat_test.cpp.o"
  "CMakeFiles/mailboat_test.dir/mailboat_test.cpp.o.d"
  "mailboat_test"
  "mailboat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mailboat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
