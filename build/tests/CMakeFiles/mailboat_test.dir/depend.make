# Empty dependencies file for mailboat_test.
# This may be replaced when dependencies are built.
