# Empty dependencies file for smtp_test.
# This may be replaced when dependencies are built.
