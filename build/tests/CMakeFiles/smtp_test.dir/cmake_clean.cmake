file(REMOVE_RECURSE
  "CMakeFiles/smtp_test.dir/smtp_test.cpp.o"
  "CMakeFiles/smtp_test.dir/smtp_test.cpp.o.d"
  "smtp_test"
  "smtp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smtp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
