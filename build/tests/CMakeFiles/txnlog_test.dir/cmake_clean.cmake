file(REMOVE_RECURSE
  "CMakeFiles/txnlog_test.dir/txnlog_test.cpp.o"
  "CMakeFiles/txnlog_test.dir/txnlog_test.cpp.o.d"
  "txnlog_test"
  "txnlog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txnlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
