# Empty dependencies file for txnlog_test.
# This may be replaced when dependencies are built.
