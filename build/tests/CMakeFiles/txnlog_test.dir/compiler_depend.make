# Empty compiler generated dependencies file for txnlog_test.
# This may be replaced when dependencies are built.
