# Empty compiler generated dependencies file for goose_test.
# This may be replaced when dependencies are built.
