file(REMOVE_RECURSE
  "CMakeFiles/goose_test.dir/goose_test.cpp.o"
  "CMakeFiles/goose_test.dir/goose_test.cpp.o.d"
  "goose_test"
  "goose_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
