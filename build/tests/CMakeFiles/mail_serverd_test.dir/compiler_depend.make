# Empty compiler generated dependencies file for mail_serverd_test.
# This may be replaced when dependencies are built.
