file(REMOVE_RECURSE
  "CMakeFiles/mail_serverd_test.dir/mail_serverd_test.cpp.o"
  "CMakeFiles/mail_serverd_test.dir/mail_serverd_test.cpp.o.d"
  "mail_serverd_test"
  "mail_serverd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mail_serverd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
