# Empty compiler generated dependencies file for kvs_test.
# This may be replaced when dependencies are built.
