file(REMOVE_RECURSE
  "CMakeFiles/kvs_test.dir/kvs_test.cpp.o"
  "CMakeFiles/kvs_test.dir/kvs_test.cpp.o.d"
  "kvs_test"
  "kvs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
