file(REMOVE_RECURSE
  "CMakeFiles/sync_extra_test.dir/sync_extra_test.cpp.o"
  "CMakeFiles/sync_extra_test.dir/sync_extra_test.cpp.o.d"
  "sync_extra_test"
  "sync_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
