# Empty compiler generated dependencies file for sync_extra_test.
# This may be replaced when dependencies are built.
