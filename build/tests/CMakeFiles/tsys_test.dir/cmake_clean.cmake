file(REMOVE_RECURSE
  "CMakeFiles/tsys_test.dir/tsys_test.cpp.o"
  "CMakeFiles/tsys_test.dir/tsys_test.cpp.o.d"
  "tsys_test"
  "tsys_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsys_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
