# Empty compiler generated dependencies file for tsys_test.
# This may be replaced when dependencies are built.
