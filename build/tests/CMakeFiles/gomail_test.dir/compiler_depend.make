# Empty compiler generated dependencies file for gomail_test.
# This may be replaced when dependencies are built.
