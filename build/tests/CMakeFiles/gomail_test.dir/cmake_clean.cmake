file(REMOVE_RECURSE
  "CMakeFiles/gomail_test.dir/gomail_test.cpp.o"
  "CMakeFiles/gomail_test.dir/gomail_test.cpp.o.d"
  "gomail_test"
  "gomail_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gomail_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
