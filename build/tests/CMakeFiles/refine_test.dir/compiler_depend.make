# Empty compiler generated dependencies file for refine_test.
# This may be replaced when dependencies are built.
