file(REMOVE_RECURSE
  "CMakeFiles/goosefs_test.dir/goosefs_test.cpp.o"
  "CMakeFiles/goosefs_test.dir/goosefs_test.cpp.o.d"
  "goosefs_test"
  "goosefs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goosefs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
