# Empty dependencies file for goosefs_test.
# This may be replaced when dependencies are built.
