# Empty compiler generated dependencies file for proc_test.
# This may be replaced when dependencies are built.
