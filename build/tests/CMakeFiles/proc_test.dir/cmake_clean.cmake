file(REMOVE_RECURSE
  "CMakeFiles/proc_test.dir/proc_test.cpp.o"
  "CMakeFiles/proc_test.dir/proc_test.cpp.o.d"
  "proc_test"
  "proc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
