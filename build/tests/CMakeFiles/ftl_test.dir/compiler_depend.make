# Empty compiler generated dependencies file for ftl_test.
# This may be replaced when dependencies are built.
