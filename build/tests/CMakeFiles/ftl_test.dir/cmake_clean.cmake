file(REMOVE_RECURSE
  "CMakeFiles/ftl_test.dir/ftl_test.cpp.o"
  "CMakeFiles/ftl_test.dir/ftl_test.cpp.o.d"
  "ftl_test"
  "ftl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
