file(REMOVE_RECURSE
  "CMakeFiles/spec_test.dir/spec_test.cpp.o"
  "CMakeFiles/spec_test.dir/spec_test.cpp.o.d"
  "spec_test"
  "spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
