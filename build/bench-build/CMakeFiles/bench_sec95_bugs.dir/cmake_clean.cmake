file(REMOVE_RECURSE
  "../bench/bench_sec95_bugs"
  "../bench/bench_sec95_bugs.pdb"
  "CMakeFiles/bench_sec95_bugs.dir/bench_sec95_bugs.cpp.o"
  "CMakeFiles/bench_sec95_bugs.dir/bench_sec95_bugs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec95_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
