file(REMOVE_RECURSE
  "../bench/bench_table4_effort"
  "../bench/bench_table4_effort.pdb"
  "CMakeFiles/bench_table4_effort.dir/bench_table4_effort.cpp.o"
  "CMakeFiles/bench_table4_effort.dir/bench_table4_effort.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
