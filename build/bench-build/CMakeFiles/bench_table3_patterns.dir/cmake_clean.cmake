file(REMOVE_RECURSE
  "../bench/bench_table3_patterns"
  "../bench/bench_table3_patterns.pdb"
  "CMakeFiles/bench_table3_patterns.dir/bench_table3_patterns.cpp.o"
  "CMakeFiles/bench_table3_patterns.dir/bench_table3_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
