# Empty dependencies file for bench_table3_patterns.
# This may be replaced when dependencies are built.
