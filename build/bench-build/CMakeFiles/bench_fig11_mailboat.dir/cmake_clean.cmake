file(REMOVE_RECURSE
  "../bench/bench_fig11_mailboat"
  "../bench/bench_fig11_mailboat.pdb"
  "CMakeFiles/bench_fig11_mailboat.dir/bench_fig11_mailboat.cpp.o"
  "CMakeFiles/bench_fig11_mailboat.dir/bench_fig11_mailboat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mailboat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
