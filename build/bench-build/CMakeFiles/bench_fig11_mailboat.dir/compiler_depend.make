# Empty compiler generated dependencies file for bench_fig11_mailboat.
# This may be replaced when dependencies are built.
