file(REMOVE_RECURSE
  "../bench/bench_sec91_patterns"
  "../bench/bench_sec91_patterns.pdb"
  "CMakeFiles/bench_sec91_patterns.dir/bench_sec91_patterns.cpp.o"
  "CMakeFiles/bench_sec91_patterns.dir/bench_sec91_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec91_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
