# Empty compiler generated dependencies file for bench_sec91_patterns.
# This may be replaced when dependencies are built.
