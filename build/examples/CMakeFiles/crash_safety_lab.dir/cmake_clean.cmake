file(REMOVE_RECURSE
  "CMakeFiles/crash_safety_lab.dir/crash_safety_lab.cpp.o"
  "CMakeFiles/crash_safety_lab.dir/crash_safety_lab.cpp.o.d"
  "crash_safety_lab"
  "crash_safety_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_safety_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
