# Empty dependencies file for crash_safety_lab.
# This may be replaced when dependencies are built.
