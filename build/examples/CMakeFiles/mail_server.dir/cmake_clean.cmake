file(REMOVE_RECURSE
  "CMakeFiles/mail_server.dir/mail_server.cpp.o"
  "CMakeFiles/mail_server.dir/mail_server.cpp.o.d"
  "mail_server"
  "mail_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mail_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
