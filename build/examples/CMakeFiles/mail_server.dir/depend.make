# Empty dependencies file for mail_server.
# This may be replaced when dependencies are built.
