# Empty dependencies file for durable_kv.
# This may be replaced when dependencies are built.
