file(REMOVE_RECURSE
  "CMakeFiles/durable_kv.dir/durable_kv.cpp.o"
  "CMakeFiles/durable_kv.dir/durable_kv.cpp.o.d"
  "durable_kv"
  "durable_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durable_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
