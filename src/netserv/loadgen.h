// Load generator for MailNetServer: an epoll-driven fleet of client state
// machines (persistent SMTP delivery connections plus POP3 pickup cyclers)
// sharing a global request budget. Scales to thousands of concurrent
// connections per driver thread because clients are coroutine-free FSMs —
// a few hundred bytes each, advanced purely by socket readiness.
//
// Every acknowledged delivery carries a unique body tag which is recorded
// in the result, so a crash harness can SIGKILL the server mid-run and
// check acked ⇒ durable against the survivor set.
#ifndef PERENNIAL_SRC_NETSERV_LOADGEN_H_
#define PERENNIAL_SRC_NETSERV_LOADGEN_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace perennial::netserv {

struct LoadgenOptions {
  uint16_t smtp_port = 0;
  uint16_t pop3_port = 0;
  uint64_t clients = 64;
  // Total requests, split into fixed per-client quotas (remainder to the
  // lowest client ids). Fixed quotas keep the work mix identical across
  // runs — a shared pool would let cheap requests displace slow ones.
  uint64_t requests = 2000;
  uint64_t num_users = 8;       // addresses drawn uniformly from user0..N-1
  double pickup_fraction = 0.3;  // fraction of clients doing POP3 pickups
  uint64_t body_bytes = 256;    // SMTP message body size (incl. unique tag)
  // Recipients per message (mailing-list fan-out). Each recipient is a full
  // durable delivery, so this scales the durability work per SMTP
  // transaction without scaling the protocol work.
  uint64_t rcpts_per_msg = 1;
  // RFC 2920-style SMTP pipelining: send MAIL/RCPT/DATA as one batch and
  // read the three replies together (the body still waits for 354). Halves
  // the round trips per delivery, which is how real MTAs drive busy servers.
  bool pipeline = true;
  uint64_t threads = 1;         // driver threads (each owns an epoll set)
  uint64_t rng_seed = 1;
  // Abort the run if no request completes for this long (server hung or
  // killed). The crash harness relies on this to return after SIGKILL.
  uint64_t stall_timeout_ms = 10000;
  // Tempfail handling (RFC client semantics): a 421/451/452 SMTP reply, a
  // "-ERR" POP3 login reply, or a connection lost mid-request is retried
  // with the SAME body tag after bounded exponential backoff
  // (start * 2^attempt, capped), up to max_retries attempts. Only after the
  // budget is exhausted does the request count as a tempfail — so under a
  // hostile disk the generator behaves like a real MTA peer, and every tag
  // it gave up on is recorded for the acked-vs-durable audit.
  uint64_t max_retries = 6;
  uint64_t retry_backoff_start_ms = 2;
  uint64_t retry_backoff_cap_ms = 64;
  // Optional: incremented on every acknowledged delivery, so an external
  // watcher (the crash harness) can time its SIGKILL. Not owned.
  std::atomic<uint64_t>* acked_counter = nullptr;
};

struct LoadgenResult {
  uint64_t ok_requests = 0;
  uint64_t errors = 0;      // unexpected (non-tempfail) response mid-request
  uint64_t delivers = 0;
  uint64_t pickups = 0;
  uint64_t deletes = 0;  // pickups that committed a DELE at QUIT
  // Requests abandoned after exhausting the retry budget, plus pickups
  // whose deletes the server reported failed at QUIT.
  uint64_t tempfails = 0;
  uint64_t retries = 0;        // individual retry attempts (421/451/452/conn lost)
  uint64_t shed_connects = 0;  // greeting-stage busy/shutting-down rejections
  std::vector<uint64_t> latencies_us;       // one entry per completed request
  std::vector<std::string> acked_bodies;    // full body text of each acked deliver
  // Bodies the generator sent at least once but finally gave up on: the
  // only tags allowed to be durable-but-unacked after a fault soak.
  std::vector<std::string> tempfailed_bodies;
  double wall_ms = 0;
  bool aborted = false;  // stalled / all connections died before budget drained
};

LoadgenResult RunLoadgen(const LoadgenOptions& options);

// Percentile over an unsorted sample set (p in [0,100]); 0 if empty.
uint64_t PercentileUs(std::vector<uint64_t> samples, double p);

}  // namespace perennial::netserv

#endif  // PERENNIAL_SRC_NETSERV_LOADGEN_H_
