// The production mail server: a multi-threaded epoll event loop serving
// the SMTP/POP3 line protocols over real TCP sockets, backed by any
// mailboat::MailApi (in practice Mailboat over PosixFilesys, with a
// GroupCommitter installed on the filesystem's fsync seam).
//
// Thread architecture (DESIGN.md §14):
//   * 1 acceptor thread: blocking poll on the two listening sockets,
//     accept4(SOCK_NONBLOCK), round-robins connections across event loops.
//   * N event-loop threads: each owns an epoll set (edge-triggered) and the
//     read/write buffers of its connections. Loops never block on the mail
//     store — they only move bytes and carve out complete lines.
//   * M executor threads: run the per-connection session state machines
//     (SmtpSession / Pop3Session over MailApi) one line at a time via
//     proc::RunSync. Executors are the only threads that touch the store,
//     so they are the only threads that block (on locks and on the group
//     commit barrier).
//
// Sizing rule: a POP3 session holds its user's pickup lock from PASS to
// QUIT, and a blocked Lock() pins an executor. Configure at least as many
// executors as concurrently-locked POP3 sessions you expect (the harnesses
// use executors = clients + headroom) or lock convoys can starve the pool.
//
// The protocol layer is unverified, exactly as in the paper (§8.2): every
// crash-safety guarantee lives in Mailboat and the filesystem below it.
#ifndef PERENNIAL_SRC_NETSERV_SERVER_H_
#define PERENNIAL_SRC_NETSERV_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/mailboat/mail_api.h"
#include "src/netserv/line_buffer.h"
#include "src/netserv/trace_event.h"
#include "src/smtp/pop3.h"
#include "src/smtp/smtp.h"

namespace perennial::netserv {

class EventLoop;

class MailNetServer {
 public:
  struct Options {
    uint16_t smtp_port = 0;  // 0 = ephemeral; see smtp_port() after Start
    uint16_t pop3_port = 0;
    uint64_t num_loops = 2;
    uint64_t num_executors = 16;
    // A line longer than this (no terminator in sight) is a protocol abuse:
    // the connection is told off and closed.
    uint64_t max_line_bytes = 64 * 1024;
    // Hard cap on the per-connection receive buffer (must exceed
    // max_line_bytes so an oversized line is detectable). A peer that
    // pipelines beyond the cap is flow-controlled (reads pause until the
    // executor drains), not disconnected — and memory stays bounded where
    // the old std::string inbuf grew without limit.
    uint64_t input_buffer_bytes = 64 * 1024 + 8 * 1024;
    // Reap connections with no peer activity for this long (0 = never).
    // Checked on the event loop's ~200ms epoll tick: a reaped connection
    // gets a "421"/"-ERR idle timeout" farewell and is closed through the
    // executor EOF path, so a POP3 session holding its user's pickup lock
    // releases it (Abort) instead of pinning the mailbox forever.
    uint64_t idle_timeout_ms = 0;
    // Accept at most this many live connections (0 = unlimited). Beyond
    // the cap the acceptor answers "421 too busy" / "-ERR busy" and closes
    // immediately — bounded memory and executor queue under connection
    // floods, and an honest signal clients can back off on.
    uint64_t max_conns = 0;
    TraceLog* trace = nullptr;  // optional profiling; not owned
  };

  MailNetServer(mailboat::MailApi* mail, Options options);
  ~MailNetServer();

  MailNetServer(const MailNetServer&) = delete;
  MailNetServer& operator=(const MailNetServer&) = delete;

  // Binds, listens, and spawns the thread fleet. False (with a message on
  // stderr) if the ports can't be bound.
  bool Start();
  // Stops accepting, drains executors, closes every connection, joins all
  // threads. Safe to call twice.
  void Stop();

  // Graceful shutdown, phase one (SIGTERM semantics): stop admitting new
  // connections (they are shed with "421 server shutting down"), let
  // in-flight commands finish and their acks flush, reap idle connections,
  // and wait up to `timeout_ms` for the connection count to reach zero.
  // Returns true if fully drained. Call Stop() afterwards either way.
  bool Drain(uint64_t timeout_ms);

  uint16_t smtp_port() const { return smtp_port_; }
  uint16_t pop3_port() const { return pop3_port_; }

  uint64_t accepted() const { return accepted_.load(std::memory_order_relaxed); }
  uint64_t lines_served() const { return lines_served_.load(std::memory_order_relaxed); }
  // Connections refused at the door (max_conns cap or drain).
  uint64_t shed_connects() const { return shed_connects_.load(std::memory_order_relaxed); }
  // Connections reaped by the idle deadline.
  uint64_t idle_reaped() const { return idle_reaped_.load(std::memory_order_relaxed); }
  uint64_t live_conns() const {
    int64_t n = live_conns_.load(std::memory_order_relaxed);
    return n > 0 ? static_cast<uint64_t>(n) : 0;
  }

 private:
  friend class EventLoop;

  struct Conn {
    ~Conn();  // closes fd if no retire path got to it (shutdown stragglers)

    int fd = -1;
    bool is_smtp = true;
    EventLoop* loop = nullptr;

    std::mutex mu;  // guards everything below
    // Zero-copy receive path: recv lands in `input` and complete lines are
    // carved as offset ranges; the executor reads each line as a view.
    // Memory-moving calls are loop-thread-only (see line_buffer.h).
    LineBuffer input;
    // The loop stopped reading because `input` was full; the executor
    // nudges the loop to resume once it has drained the queued lines.
    bool read_paused = false;
    std::string outbuf;
    size_t outoff = 0;
    bool executing = false;  // an executor owns this conn's lines right now
    bool peer_eof = false;
    bool closing = false;  // flush outbuf, then retire
    bool retired = false;  // fd closed, conn off the epoll set
    // Last time bytes arrived from the peer (steady-clock ms); the idle
    // sweep compares it against Options::idle_timeout_ms.
    uint64_t last_active_ms = 0;

    std::unique_ptr<smtp::SmtpSession> smtp;
    std::unique_ptr<smtp::Pop3Session> pop3;
  };

  void AcceptorMain();
  void ExecutorMain(uint64_t executor_id);
  // Runs session lines until the conn's queue drains; called by executors.
  void ServeConn(const std::shared_ptr<Conn>& conn, uint64_t executor_id);
  void EnqueueWork(std::shared_ptr<Conn> conn);  // executing flag already set

  // Receive-buffer pool: retired connections donate their buffer storage,
  // new connections adopt one — steady-state accepts allocate nothing.
  std::vector<char> AcquireInputStorage();
  void ReleaseInputStorage(std::vector<char> storage);

  // Appends `resp` + CRLF to conn->outbuf and flushes what it can.
  // mu must be held by the caller.
  void QueueResponseLocked(const std::shared_ptr<Conn>& conn, const std::string& resp);
  // Drains outbuf to the socket (partial writes resume on the EPOLLOUT
  // edge); separated from QueueResponseLocked so executors can cork
  // replies to a pipelined command batch and write them as one segment.
  void FlushLocked(const std::shared_ptr<Conn>& conn);

  mailboat::MailApi* mail_;
  Options options_;

  int smtp_listen_fd_ = -1;
  int pop3_listen_fd_ = -1;
  uint16_t smtp_port_ = 0;
  uint16_t pop3_port_ = 0;

  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::thread acceptor_;
  std::vector<std::thread> executors_;

  std::mutex work_mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Conn>> work_;

  std::mutex pool_mu_;
  std::vector<std::vector<char>> input_pool_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> lines_served_{0};
  std::atomic<uint64_t> next_loop_{0};
  std::atomic<uint64_t> shed_connects_{0};
  std::atomic<uint64_t> idle_reaped_{0};
  // Signed so a transient retire-before-accept race can't wrap to 2^64.
  std::atomic<int64_t> live_conns_{0};
  std::atomic<bool> draining_{false};
};

}  // namespace perennial::netserv

#endif  // PERENNIAL_SRC_NETSERV_SERVER_H_
