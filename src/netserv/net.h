// EINTR-safe nonblocking-socket helpers shared by the real mail server,
// the load generator, and the loopback tests.
//
// Everything here is plain POSIX plumbing — no modeled semantics. The raw
// recv/send/accept4 syscalls are routed through an injectable table so the
// EINTR-handling satellite can be tested deterministically (a fake that
// fails with EINTR N times before delegating to the real call).
#ifndef PERENNIAL_SRC_NETSERV_NET_H_
#define PERENNIAL_SRC_NETSERV_NET_H_

#include <sys/socket.h>
#include <sys/types.h>

#include <cstdint>
#include <string>

namespace perennial::netserv {

// Raw syscall table. Tests may swap entries before starting a server /
// client and must restore them afterwards; entries are not synchronized
// for mid-run replacement.
struct RawSys {
  ssize_t (*recv)(int fd, void* buf, size_t n, int flags);
  ssize_t (*send)(int fd, const void* buf, size_t n, int flags);
  int (*accept4)(int fd, struct sockaddr* addr, socklen_t* len, int flags);
};
RawSys& Sys();

// EINTR-retrying wrappers over Sys(). EAGAIN/EWOULDBLOCK passes through to
// the caller (that is the event loop's cue to wait for the next edge);
// sends always use MSG_NOSIGNAL so a dead peer yields EPIPE, not SIGPIPE.
ssize_t RecvSome(int fd, void* buf, size_t n);
ssize_t SendSome(int fd, const void* buf, size_t n);
int Accept4(int fd, struct sockaddr* addr, socklen_t* len, int flags);

// Listening TCP socket on 127.0.0.1:`port` (0 picks an ephemeral port,
// reported via `bound_port`). Returns the fd, or -1 with errno set.
int ListenTcp(uint16_t port, uint16_t* bound_port, int backlog = 512);

// Blocking connect to 127.0.0.1:`port`. Returns a connected fd (blocking
// mode, TCP_NODELAY) or -1 with errno set.
int ConnectTcp(uint16_t port);

bool SetNonblocking(int fd);
void SetTcpNoDelay(int fd);

// Blocking buffered line client, for tests and the crash-harness parent:
// write full commands, read CRLF (or LF) terminated response lines.
class BlockingLineConn {
 public:
  explicit BlockingLineConn(int fd) : fd_(fd) {}
  ~BlockingLineConn() { Close(); }
  BlockingLineConn(const BlockingLineConn&) = delete;
  BlockingLineConn& operator=(const BlockingLineConn&) = delete;

  // Sends `line` + CRLF. Returns false on a send error (peer gone).
  bool WriteLine(const std::string& line);
  // Reads one line (terminator stripped). False on EOF / error.
  bool ReadLine(std::string* line);
  void Close();
  int fd() const { return fd_; }

 private:
  int fd_;
  std::string buf_;
};

}  // namespace perennial::netserv

#endif  // PERENNIAL_SRC_NETSERV_NET_H_
