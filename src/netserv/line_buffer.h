// Zero-copy line carving for the netserv receive path.
//
// The old path copied every byte three times before the session saw it:
// recv into a stack buffer, append into conn->inbuf, then one std::string
// per line carved out of inbuf (with an O(n^2) rescan-from-zero on
// fragmented input). LineBuffer replaces all of that with a single flat
// per-connection buffer: recv writes directly into its tail, complete
// lines are recorded as offset ranges (no allocation, no copy), and the
// executor reads each line as a std::string_view into the buffer.
//
// Concurrency contract (enforced by MailNetServer, all calls under
// conn->mu unless noted):
//  * The loop thread is the only writer of bytes and the only party that
//    may move memory (grow/compact). It only appends at the tail, so the
//    bytes under already-carved ranges never move or change while any
//    range is outstanding — growth and compaction happen only when idle()
//    (no queued lines, no checked-out line).
//  * The executor checks out one line at a time (NextLine / FinishLine)
//    and may dereference the returned view *outside* conn->mu: the view's
//    bytes are stable until the line is consumed, per the rule above.
//  * recv itself also happens outside conn->mu (into write_ptr()): safe
//    because only the loop thread writes bytes and only it moves memory.
//
// Backpressure: when the buffer is full and may not move (lines are
// outstanding), PrepareWrite returns 0 and the loop pauses reading the
// socket; the executor notices at drain time (see Conn::read_paused) and
// nudges the loop to compact and resume. This also caps per-connection
// memory: the buffer never grows past its configured maximum, so a peer
// spraying an endless unterminated line is rejected, not buffered.
#ifndef PERENNIAL_SRC_NETSERV_LINE_BUFFER_H_
#define PERENNIAL_SRC_NETSERV_LINE_BUFFER_H_

#include <cstring>
#include <deque>
#include <string_view>
#include <vector>

namespace perennial::netserv {

class LineBuffer {
 public:
  // Take over a recycled storage block (connection setup; see the server's
  // buffer pool) — avoids re-growing a fresh buffer for every connection.
  void AdoptStorage(std::vector<char> storage) {
    buf_ = std::move(storage);
    Clear();
  }
  // Hand the storage back for reuse (connection retirement).
  std::vector<char> ReleaseStorage() {
    Clear();
    return std::move(buf_);
  }

  // Loop thread: make room for a read. Compacts/grows when permitted,
  // returns the number of writable tail bytes (0 = full: pause reading).
  // `max_bytes` caps the buffer; it must exceed the protocol's
  // max-line-bytes so an oversized line is detectable before the cap.
  size_t PrepareWrite(size_t want, size_t max_bytes) {
    if (buf_.empty()) {
      buf_.resize(kInitialBytes < max_bytes ? kInitialBytes : max_bytes);
    }
    if (idle()) {
      // Everything before scan start is consumed; slide the partial tail
      // (if any) to the front. Views cannot be dangling here.
      if (line_start_ > 0) {
        size_t live = tail_ - line_start_;
        if (live > 0) {
          std::memmove(buf_.data(), buf_.data() + line_start_, live);
        }
        search_ -= line_start_;
        tail_ = live;
        line_start_ = 0;
      }
      if (buf_.size() - tail_ < want && buf_.size() < max_bytes) {
        size_t target = buf_.size() * 2;
        if (target < tail_ + want) {
          target = tail_ + want;
        }
        if (target > max_bytes) {
          target = max_bytes;
        }
        buf_.resize(target);
      }
    }
    return buf_.size() - tail_;
  }

  char* write_ptr() { return buf_.data() + tail_; }

  // Loop thread: `n` bytes were received into write_ptr().
  void CommitWrite(size_t n) { tail_ += n; }

  // Loop thread: carve every complete line in [search_, tail_) into the
  // queue (CRLF or bare LF terminators; the terminator is excluded).
  // Returns the number of lines carved. Sets *overlong when the
  // unterminated remainder exceeds max_line (protocol abuse).
  size_t CarveLines(size_t max_line, bool* overlong) {
    size_t carved = 0;
    for (;;) {
      const char* nl = static_cast<const char*>(
          std::memchr(buf_.data() + search_, '\n', tail_ - search_));
      if (nl == nullptr) {
        search_ = tail_;
        break;
      }
      size_t nl_off = static_cast<size_t>(nl - buf_.data());
      size_t len = nl_off - line_start_;
      if (len > 0 && buf_[line_start_ + len - 1] == '\r') {
        --len;
      }
      lines_.push_back(Range{line_start_, len});
      ++carved;
      line_start_ = search_ = nl_off + 1;
    }
    *overlong = tail_ - line_start_ > max_line;
    return carved;
  }

  // Executor: consume the previously checked-out line (if any) and check
  // out the next. The returned view stays valid until the next
  // NextLine/FinishLine call, including outside conn->mu.
  bool NextLine(std::string_view* out) {
    checked_out_ = false;
    if (lines_.empty()) {
      return false;
    }
    Range r = lines_.front();
    lines_.pop_front();
    checked_out_ = true;
    *out = std::string_view(buf_.data() + r.off, r.len);
    return true;
  }

  // Executor: consume the checked-out line without taking another.
  void FinishLine() { checked_out_ = false; }

  // Drop all queued/checked-out lines and pending bytes (close paths).
  void Clear() {
    lines_.clear();
    checked_out_ = false;
    line_start_ = search_ = tail_ = 0;
  }

  bool idle() const { return lines_.empty() && !checked_out_; }
  bool has_line() const { return !lines_.empty(); }
  size_t queued_lines() const { return lines_.size(); }
  // Bytes of the unterminated trailing partial line.
  size_t pending_partial() const { return tail_ - line_start_; }
  size_t capacity() const { return buf_.size(); }

 private:
  static constexpr size_t kInitialBytes = 4096;

  struct Range {
    size_t off;
    size_t len;
  };

  std::vector<char> buf_;
  std::deque<Range> lines_;
  size_t line_start_ = 0;  // start of the oldest un-carved byte
  size_t search_ = 0;      // resume point for the '\n' scan (>= line_start_)
  size_t tail_ = 0;        // end of received bytes
  bool checked_out_ = false;
};

}  // namespace perennial::netserv

#endif  // PERENNIAL_SRC_NETSERV_LINE_BUFFER_H_
