#include "src/netserv/server.h"

#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "src/base/panic.h"
#include "src/netserv/net.h"
#include "src/proc/task.h"

namespace perennial::netserv {

// One event-loop thread: owns an epoll set, the byte buffers of its
// connections, and the only right to close their fds. Cross-thread inputs
// (new connections from the acceptor, retire requests from executors) are
// queued under pending_mu_ and the loop is nudged via an eventfd.
class EventLoop {
 public:
  using Conn = MailNetServer::Conn;

  EventLoop(MailNetServer* server, uint64_t id) : server_(server), id_(id) {}

  ~EventLoop() {
    if (epfd_ >= 0) {
      ::close(epfd_);
    }
    if (evfd_ >= 0) {
      ::close(evfd_);
    }
  }

  bool Init() {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    evfd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (epfd_ < 0 || evfd_ < 0) {
      return false;
    }
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = evfd_;
    return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, evfd_, &ev) == 0;
  }

  void StartThread() {
    thread_ = std::thread([this] { Run(); });
  }

  void Join() {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  void AddConn(std::shared_ptr<Conn> conn) {
    {
      std::scoped_lock lock(pending_mu_);
      pending_add_.push_back(std::move(conn));
    }
    Nudge();
  }

  // Executors call this when a connection should be closed (quit handled,
  // peer gone, output drained after `closing`). Idempotent.
  void RequestRetire(std::shared_ptr<Conn> conn) {
    {
      std::scoped_lock lock(pending_mu_);
      pending_retire_.push_back(std::move(conn));
    }
    Nudge();
  }

  void RequestStop() {
    stop_.store(true, std::memory_order_relaxed);
    Nudge();
  }

 private:
  void Nudge() {
    uint64_t one = 1;
    ssize_t n;
    do {
      n = ::write(evfd_, &one, sizeof(one));
    } while (n < 0 && errno == EINTR);
  }

  void Run() {
    constexpr int kMaxEvents = 64;
    struct epoll_event events[kMaxEvents];
    while (!stop_.load(std::memory_order_relaxed)) {
      int n;
      do {
        n = ::epoll_wait(epfd_, events, kMaxEvents, /*timeout_ms=*/200);
      } while (n < 0 && errno == EINTR);
      ProcessPending();
      for (int i = 0; i < n; ++i) {
        int fd = events[i].data.fd;
        if (fd == evfd_) {
          uint64_t drain;
          while (::read(evfd_, &drain, sizeof(drain)) > 0) {
          }
          continue;
        }
        auto it = conns_.find(fd);
        if (it == conns_.end()) {
          continue;  // retired earlier in this batch
        }
        std::shared_ptr<Conn> conn = it->second;
        if (events[i].events & EPOLLOUT) {
          std::scoped_lock lock(conn->mu);
          if (!conn->retired) {
            server_->QueueResponseLocked(conn, "");  // flush-only
          }
        }
        if (events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
          HandleReadable(conn);
        }
      }
      ProcessPending();
    }
    // Shutdown: close every remaining connection. Sessions die with their
    // fds (stranded POP3 locks are torn down with the Mailboat instance).
    for (auto& [fd, conn] : conns_) {
      std::scoped_lock lock(conn->mu);
      if (!conn->retired) {
        conn->retired = true;
        ::close(conn->fd);
        conn->fd = -1;
      }
    }
    conns_.clear();
  }

  void ProcessPending() {
    std::vector<std::shared_ptr<Conn>> adds;
    std::vector<std::shared_ptr<Conn>> retires;
    {
      std::scoped_lock lock(pending_mu_);
      adds.swap(pending_add_);
      retires.swap(pending_retire_);
    }
    for (auto& conn : adds) {
      RegisterConn(conn);
    }
    for (auto& conn : retires) {
      RetireConn(conn);
    }
  }

  void RegisterConn(const std::shared_ptr<Conn>& conn) {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.fd = conn->fd;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, conn->fd, &ev) != 0) {
      ::close(conn->fd);
      return;
    }
    conns_[conn->fd] = conn;
    {
      std::scoped_lock lock(conn->mu);
      server_->QueueResponseLocked(
          conn, conn->is_smtp ? smtp::SmtpSession::Greeting() : smtp::Pop3Session::Greeting());
    }
    // Edge-triggered: bytes that arrived before the ADD only produce an
    // edge on some kernels; read eagerly to be safe.
    HandleReadable(conn);
  }

  void RetireConn(const std::shared_ptr<Conn>& conn) {
    std::scoped_lock lock(conn->mu);
    if (conn->retired) {
      return;
    }
    conn->retired = true;
    conns_.erase(conn->fd);
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    conn->fd = -1;
  }

  void HandleReadable(const std::shared_ptr<Conn>& conn) {
    bool oversized = false;
    for (;;) {
      {
        std::scoped_lock lock(conn->mu);
        if (conn->retired || conn->closing) {
          return;
        }
      }
      char buf[16384];
      ssize_t n = RecvSome(conn->fd, buf, sizeof(buf));
      if (n > 0) {
        conn->inbuf.append(buf, static_cast<size_t>(n));
        if (static_cast<uint64_t>(n) < sizeof(buf) &&
            conn->inbuf.size() <= server_->options_.max_line_bytes) {
          break;  // drained the socket for this edge
        }
        if (conn->inbuf.find('\n') == std::string::npos &&
            conn->inbuf.size() > server_->options_.max_line_bytes) {
          oversized = true;
          break;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      // 0 = orderly EOF; other errors (ECONNRESET...) are the same thing
      // from the session's point of view: the peer is gone.
      std::scoped_lock lock(conn->mu);
      conn->peer_eof = true;
      break;
    }
    DispatchLines(conn, oversized);
  }

  // Carves complete lines out of inbuf and hands the connection to an
  // executor if it isn't already being served.
  void DispatchLines(const std::shared_ptr<Conn>& conn, bool oversized) {
    std::vector<std::string> lines;
    size_t nl;
    while ((nl = conn->inbuf.find('\n')) != std::string::npos) {
      std::string line = conn->inbuf.substr(0, nl);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      conn->inbuf.erase(0, nl + 1);
      lines.push_back(std::move(line));
    }
    std::scoped_lock lock(conn->mu);
    if (conn->retired) {
      return;
    }
    for (auto& line : lines) {
      conn->lines.push_back(std::move(line));
    }
    if (oversized) {
      // Protocol abuse: answer once and hang up without feeding the line
      // to the session (it never materializes as a line at all).
      conn->inbuf.clear();
      server_->QueueResponseLocked(conn,
                                   conn->is_smtp ? "500 line too long" : "-ERR line too long");
      conn->closing = true;
      if (conn->outbuf.size() == conn->outoff) {
        RetireLockedFromLoop(conn);
      }
      return;
    }
    if (!conn->executing && (!conn->lines.empty() || conn->peer_eof)) {
      conn->executing = true;
      server_->EnqueueWork(conn);
    }
  }

  // Loop-thread retire with conn->mu already held.
  void RetireLockedFromLoop(const std::shared_ptr<Conn>& conn) {
    if (conn->retired) {
      return;
    }
    conn->retired = true;
    conns_.erase(conn->fd);
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    conn->fd = -1;
  }

  MailNetServer* server_;
  uint64_t id_;
  int epfd_ = -1;
  int evfd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};

  std::mutex pending_mu_;
  std::vector<std::shared_ptr<Conn>> pending_add_;
  std::vector<std::shared_ptr<Conn>> pending_retire_;

  // Loop-thread-only.
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
};

MailNetServer::Conn::~Conn() {
  if (fd >= 0) {
    ::close(fd);
  }
}

MailNetServer::MailNetServer(mailboat::MailApi* mail, Options options)
    : mail_(mail), options_(options) {
  PCC_ENSURE(options_.num_loops >= 1, "MailNetServer: need at least one event loop");
  PCC_ENSURE(options_.num_executors >= 1, "MailNetServer: need at least one executor");
}

MailNetServer::~MailNetServer() { Stop(); }

bool MailNetServer::Start() {
  PCC_ENSURE(!started_, "MailNetServer: started twice");
  smtp_listen_fd_ = ListenTcp(options_.smtp_port, &smtp_port_);
  pop3_listen_fd_ = ListenTcp(options_.pop3_port, &pop3_port_);
  if (smtp_listen_fd_ < 0 || pop3_listen_fd_ < 0) {
    std::fprintf(stderr, "MailNetServer: bind/listen failed: %s\n", std::strerror(errno));
    if (smtp_listen_fd_ >= 0) {
      ::close(smtp_listen_fd_);
    }
    if (pop3_listen_fd_ >= 0) {
      ::close(pop3_listen_fd_);
    }
    smtp_listen_fd_ = pop3_listen_fd_ = -1;
    return false;
  }
  SetNonblocking(smtp_listen_fd_);
  SetNonblocking(pop3_listen_fd_);
  for (uint64_t i = 0; i < options_.num_loops; ++i) {
    auto loop = std::make_unique<EventLoop>(this, i);
    if (!loop->Init()) {
      std::fprintf(stderr, "MailNetServer: epoll init failed: %s\n", std::strerror(errno));
      return false;
    }
    loops_.push_back(std::move(loop));
  }
  for (auto& loop : loops_) {
    loop->StartThread();
  }
  for (uint64_t i = 0; i < options_.num_executors; ++i) {
    executors_.emplace_back([this, i] { ExecutorMain(i); });
  }
  acceptor_ = std::thread([this] { AcceptorMain(); });
  started_ = true;
  return true;
}

void MailNetServer::Stop() {
  if (!started_) {
    return;
  }
  stop_.store(true, std::memory_order_relaxed);
  acceptor_.join();
  work_cv_.notify_all();
  for (auto& t : executors_) {
    t.join();
  }
  executors_.clear();
  for (auto& loop : loops_) {
    loop->RequestStop();
  }
  for (auto& loop : loops_) {
    loop->Join();
  }
  loops_.clear();
  ::close(smtp_listen_fd_);
  ::close(pop3_listen_fd_);
  smtp_listen_fd_ = pop3_listen_fd_ = -1;
  started_ = false;
}

void MailNetServer::AcceptorMain() {
  struct pollfd fds[2];
  fds[0].fd = smtp_listen_fd_;
  fds[1].fd = pop3_listen_fd_;
  fds[0].events = fds[1].events = POLLIN;
  while (!stop_.load(std::memory_order_relaxed)) {
    int n = ::poll(fds, 2, /*timeout_ms=*/100);
    if (n < 0 && errno != EINTR) {
      break;
    }
    if (n <= 0) {
      continue;
    }
    for (int which = 0; which < 2; ++which) {
      if (!(fds[which].revents & POLLIN)) {
        continue;
      }
      for (;;) {
        int cfd = Accept4(fds[which].fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (cfd < 0) {
          break;  // EAGAIN (or a transient accept error): back to poll
        }
        SetTcpNoDelay(cfd);
        auto conn = std::make_shared<Conn>();
        conn->fd = cfd;
        conn->is_smtp = which == 0;
        if (conn->is_smtp) {
          conn->smtp = std::make_unique<smtp::SmtpSession>(mail_);
        } else {
          conn->pop3 = std::make_unique<smtp::Pop3Session>(mail_);
        }
        uint64_t loop_idx = next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
        conn->loop = loops_[loop_idx].get();
        accepted_.fetch_add(1, std::memory_order_relaxed);
        conn->loop->AddConn(std::move(conn));
      }
    }
  }
}

void MailNetServer::EnqueueWork(std::shared_ptr<Conn> conn) {
  {
    std::scoped_lock lock(work_mu_);
    work_.push_back(std::move(conn));
  }
  work_cv_.notify_one();
}

void MailNetServer::ExecutorMain(uint64_t executor_id) {
  for (;;) {
    std::shared_ptr<Conn> conn;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [&] { return stop_.load(std::memory_order_relaxed) || !work_.empty(); });
      if (stop_.load(std::memory_order_relaxed)) {
        return;  // queued connections die with the server
      }
      conn = std::move(work_.front());
      work_.pop_front();
    }
    ServeConn(conn, executor_id);
  }
}

void MailNetServer::ServeConn(const std::shared_ptr<Conn>& conn, uint64_t executor_id) {
  for (;;) {
    std::string line;
    bool eof = false;
    {
      std::scoped_lock lock(conn->mu);
      if (conn->retired || conn->closing) {
        return;  // executing stays set; the conn is on its way out
      }
      if (!conn->lines.empty()) {
        line = std::move(conn->lines.front());
        conn->lines.pop_front();
      } else if (conn->peer_eof) {
        eof = true;
      } else {
        // Done for now. Corked replies (batched while more input was
        // pending) go out before we yield the connection. The executing
        // flag is cleared in the same critical section as the emptiness
        // check, so a line arriving concurrently either lands before (we
        // saw it) or after (the loop re-dispatches).
        FlushLocked(conn);
        conn->executing = false;
        return;
      }
    }
    if (eof) {
      // Mid-session disconnect: a POP3 session may hold its user's pickup
      // lock — release it (deleting nothing), per the Abort contract.
      if (conn->pop3 != nullptr && !conn->pop3->quit()) {
        proc::RunSyncVoid(conn->pop3->Abort());
      }
      {
        std::scoped_lock lock(conn->mu);
        conn->closing = true;
      }
      conn->loop->RequestRetire(conn);
      return;
    }
    std::string resp;
    {
      TraceScope trace(options_.trace, conn->is_smtp ? "smtp_line" : "pop3_line", "serve",
                       executor_id);
      resp = conn->is_smtp ? proc::RunSync(conn->smtp->HandleLine(line))
                           : proc::RunSync(conn->pop3->HandleLine(line));
    }
    lines_served_.fetch_add(1, std::memory_order_relaxed);
    bool quit = conn->is_smtp ? conn->smtp->quit() : conn->pop3->quit();
    bool retire_now = false;
    {
      std::scoped_lock lock(conn->mu);
      if (conn->retired) {
        return;
      }
      if (!resp.empty()) {
        conn->outbuf += resp;
        conn->outbuf += "\r\n";
      }
      // Cork: while more pipelined commands are already buffered, keep
      // accumulating replies and write them as one segment at the drain
      // point (or once the cork grows past a page) — one send() per
      // batch instead of one per line.
      if (quit || conn->lines.empty() || conn->outbuf.size() - conn->outoff >= 4096) {
        FlushLocked(conn);
      }
      if (quit) {
        conn->closing = true;
        retire_now = conn->outbuf.size() == conn->outoff;
      }
    }
    if (quit) {
      if (retire_now) {
        conn->loop->RequestRetire(conn);
      }
      // else: the loop retires it once EPOLLOUT drains the farewell.
      return;
    }
  }
}

void MailNetServer::QueueResponseLocked(const std::shared_ptr<Conn>& conn,
                                        const std::string& resp) {
  if (!resp.empty()) {
    conn->outbuf += resp;
    conn->outbuf += "\r\n";
  }
  FlushLocked(conn);
}

void MailNetServer::FlushLocked(const std::shared_ptr<Conn>& conn) {
  if (conn->retired || conn->fd < 0) {
    return;
  }
  while (conn->outoff < conn->outbuf.size()) {
    ssize_t n =
        SendSome(conn->fd, conn->outbuf.data() + conn->outoff, conn->outbuf.size() - conn->outoff);
    if (n > 0) {
      conn->outoff += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;  // the EPOLLOUT edge resumes the flush
    }
    // Peer gone mid-write (EPIPE/ECONNRESET): nothing left to say.
    conn->peer_eof = true;
    conn->closing = true;
    break;
  }
  if (conn->outoff == conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->outoff = 0;
    if (conn->closing) {
      conn->loop->RequestRetire(conn);
    }
  }
}

}  // namespace perennial::netserv
