#include "src/netserv/server.h"

#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "src/base/panic.h"
#include "src/base/stage_timer.h"
#include "src/netserv/net.h"
#include "src/proc/task.h"

namespace perennial::netserv {

namespace {

uint64_t NowMs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

// One event-loop thread: owns an epoll set, the byte buffers of its
// connections, and the only right to close their fds. Cross-thread inputs
// (new connections from the acceptor, retire requests from executors) are
// queued under pending_mu_ and the loop is nudged via an eventfd.
class EventLoop {
 public:
  using Conn = MailNetServer::Conn;

  EventLoop(MailNetServer* server, uint64_t id) : server_(server), id_(id) {}

  ~EventLoop() {
    if (epfd_ >= 0) {
      ::close(epfd_);
    }
    if (evfd_ >= 0) {
      ::close(evfd_);
    }
  }

  bool Init() {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    evfd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (epfd_ < 0 || evfd_ < 0) {
      return false;
    }
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = evfd_;
    return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, evfd_, &ev) == 0;
  }

  void StartThread() {
    thread_ = std::thread([this] { Run(); });
  }

  void Join() {
    if (thread_.joinable()) {
      thread_.join();
    }
  }

  void AddConn(std::shared_ptr<Conn> conn) {
    {
      std::scoped_lock lock(pending_mu_);
      pending_add_.push_back(std::move(conn));
    }
    Nudge();
  }

  // Executors call this when a connection should be closed (quit handled,
  // peer gone, output drained after `closing`). Idempotent.
  void RequestRetire(std::shared_ptr<Conn> conn) {
    {
      std::scoped_lock lock(pending_mu_);
      pending_retire_.push_back(std::move(conn));
    }
    Nudge();
  }

  // Executors call this after draining a connection whose reads were
  // paused on a full input buffer: the loop compacts and resumes reading.
  void RequestResume(std::shared_ptr<Conn> conn) {
    {
      std::scoped_lock lock(pending_mu_);
      pending_resume_.push_back(std::move(conn));
    }
    Nudge();
  }

  void RequestStop() {
    stop_.store(true, std::memory_order_relaxed);
    Nudge();
  }

  // Drain mode: every connection with no queued work is reaped on the next
  // sweep, regardless of the idle deadline.
  void RequestDrain() {
    draining_.store(true, std::memory_order_relaxed);
    Nudge();
  }

 private:
  // Deduplicated wakeup: only the first nudge since the loop last started
  // a ProcessPending pass pays the eventfd write. Safe against lost
  // wakeups because Run() clears the flag *before* swapping the pending
  // queues — any producer whose exchange() read true is ordered after a
  // producer whose eventfd write is still due to wake the loop, and the
  // pass that wakeup triggers re-reads the queues after its own clear.
  void Nudge() {
    if (nudge_pending_.exchange(true)) {
      return;  // a wakeup is already in flight
    }
    uint64_t one = 1;
    ssize_t n;
    do {
      n = ::write(evfd_, &one, sizeof(one));
    } while (n < 0 && errno == EINTR);
  }

  void Run() {
    constexpr int kMaxEvents = 64;
    struct epoll_event events[kMaxEvents];
    while (!stop_.load(std::memory_order_relaxed)) {
      int n;
      do {
        n = ::epoll_wait(epfd_, events, kMaxEvents, /*timeout_ms=*/200);
      } while (n < 0 && errno == EINTR);
      nudge_pending_.store(false);  // before the queue swap — see Nudge()
      ProcessPending();
      for (int i = 0; i < n; ++i) {
        int fd = events[i].data.fd;
        if (fd == evfd_) {
          uint64_t drain;
          while (::read(evfd_, &drain, sizeof(drain)) > 0) {
          }
          continue;
        }
        auto it = conns_.find(fd);
        if (it == conns_.end()) {
          continue;  // retired earlier in this batch
        }
        std::shared_ptr<Conn> conn = it->second;
        if (events[i].events & EPOLLOUT) {
          std::scoped_lock lock(conn->mu);
          if (!conn->retired) {
            server_->QueueResponseLocked(conn, "");  // flush-only
          }
        }
        if (events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
          HandleReadable(conn);
        }
      }
      nudge_pending_.store(false);
      ProcessPending();
      uint64_t now = NowMs();
      if (now - last_sweep_ms_ >= 100) {
        last_sweep_ms_ = now;
        SweepIdle(now);
      }
    }
    // Shutdown: close every remaining connection. Sessions die with their
    // fds (stranded POP3 locks are torn down with the Mailboat instance).
    for (auto& [fd, conn] : conns_) {
      std::scoped_lock lock(conn->mu);
      if (!conn->retired) {
        conn->retired = true;
        ::close(conn->fd);
        conn->fd = -1;
        server_->live_conns_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    conns_.clear();
  }

  // Rides the ~200ms epoll tick: reap connections whose peers have gone
  // quiet past the idle deadline (or, in drain mode, every connection with
  // nothing in flight). Reaped connections get a farewell, then take the
  // executor EOF path so POP3 pickup locks are released via Abort — the
  // loop thread itself never touches the mail store.
  void SweepIdle(uint64_t now) {
    bool drain = draining_.load(std::memory_order_relaxed);
    uint64_t timeout = server_->options_.idle_timeout_ms;
    if (!drain && timeout == 0) {
      return;
    }
    for (auto& [fd, conn] : conns_) {
      std::scoped_lock lock(conn->mu);
      if (conn->retired || conn->closing || conn->executing || conn->peer_eof ||
          conn->input.has_line()) {
        continue;  // work in flight — it finishes and its acks flush first
      }
      if (!drain && now - conn->last_active_ms < timeout) {
        continue;
      }
      if (!drain) {
        server_->idle_reaped_.fetch_add(1, std::memory_order_relaxed);
      }
      const char* farewell =
          drain ? (conn->is_smtp ? "421 server shutting down" : "-ERR server shutting down")
                : (conn->is_smtp ? "421 idle timeout" : "-ERR idle timeout");
      server_->QueueResponseLocked(conn, farewell);
      // Hand the connection to an executor as if the peer hung up: the
      // executor aborts the session (releasing any held lock) and retires.
      conn->peer_eof = true;
      conn->executing = true;
      server_->EnqueueWork(conn);
    }
  }

  void ProcessPending() {
    std::vector<std::shared_ptr<Conn>> adds;
    std::vector<std::shared_ptr<Conn>> retires;
    std::vector<std::shared_ptr<Conn>> resumes;
    {
      std::scoped_lock lock(pending_mu_);
      adds.swap(pending_add_);
      retires.swap(pending_retire_);
      resumes.swap(pending_resume_);
    }
    for (auto& conn : adds) {
      RegisterConn(conn);
    }
    for (auto& conn : retires) {
      RetireConn(conn);
    }
    for (auto& conn : resumes) {
      // The buffer is drained now, so PrepareWrite can compact and the
      // paused read picks up where it left off.
      HandleReadable(conn);
    }
  }

  void RegisterConn(const std::shared_ptr<Conn>& conn) {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.fd = conn->fd;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, conn->fd, &ev) != 0) {
      ::close(conn->fd);
      server_->live_conns_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    conns_[conn->fd] = conn;
    {
      std::scoped_lock lock(conn->mu);
      conn->last_active_ms = NowMs();
      server_->QueueResponseLocked(
          conn, conn->is_smtp ? smtp::SmtpSession::Greeting() : smtp::Pop3Session::Greeting());
    }
    // Edge-triggered: bytes that arrived before the ADD only produce an
    // edge on some kernels; read eagerly to be safe.
    HandleReadable(conn);
  }

  void RetireConn(const std::shared_ptr<Conn>& conn) {
    std::scoped_lock lock(conn->mu);
    RetireLockedFromLoop(conn);
  }

  // Zero-copy read path: recv lands directly in the connection's
  // LineBuffer tail and complete lines are carved as offset ranges — no
  // per-read stack-buffer copy, no per-line std::string.
  void HandleReadable(const std::shared_ptr<Conn>& conn) {
    stage::StageScope read_stage(stage::kRead);
    bool oversized = false;
    for (;;) {
      char* ptr = nullptr;
      size_t room = 0;
      {
        std::scoped_lock lock(conn->mu);
        if (conn->retired || conn->closing) {
          return;
        }
        room = conn->input.PrepareWrite(4096, server_->options_.input_buffer_bytes);
        if (room == 0) {
          // Full and immovable (lines outstanding): pause reading; the
          // executor nudges a resume once it drains the queue.
          conn->read_paused = true;
          break;
        }
        ptr = conn->input.write_ptr();
      }
      // recv outside mu: only this loop thread writes bytes or moves the
      // buffer's memory, so `ptr` stays valid (see line_buffer.h).
      ssize_t n = RecvSome(conn->fd, ptr, room);
      if (n > 0) {
        std::scoped_lock lock(conn->mu);
        conn->last_active_ms = NowMs();
        conn->input.CommitWrite(static_cast<size_t>(n));
        {
          stage::StageScope parse_stage(stage::kParse);
          conn->input.CarveLines(server_->options_.max_line_bytes, &oversized);
        }
        if (oversized || static_cast<size_t>(n) < room) {
          break;  // abuse, or the socket is drained for this edge
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      // 0 = orderly EOF; other errors (ECONNRESET...) are the same thing
      // from the session's point of view: the peer is gone.
      std::scoped_lock lock(conn->mu);
      conn->peer_eof = true;
      break;
    }
    DispatchLines(conn, oversized);
  }

  // Hands the connection to an executor if it has work and isn't already
  // being served; oversized lines are answered and hung up on here.
  void DispatchLines(const std::shared_ptr<Conn>& conn, bool oversized) {
    std::scoped_lock lock(conn->mu);
    if (conn->retired) {
      return;
    }
    if (oversized) {
      // Protocol abuse: answer once and hang up without feeding the line
      // to the session (it never materializes as a line at all). Clear()
      // drops offsets only — a view an executor still holds stays backed
      // (closing stops all further reads into the buffer).
      conn->input.Clear();
      server_->QueueResponseLocked(conn,
                                   conn->is_smtp ? "500 line too long" : "-ERR line too long");
      conn->closing = true;
      if (conn->outbuf.size() == conn->outoff) {
        RetireLockedFromLoop(conn);
      }
      return;
    }
    if (!conn->executing && (conn->input.has_line() || conn->peer_eof)) {
      conn->executing = true;
      server_->EnqueueWork(conn);
    }
  }

  // Loop-thread retire with conn->mu already held.
  void RetireLockedFromLoop(const std::shared_ptr<Conn>& conn) {
    if (conn->retired) {
      return;
    }
    conn->retired = true;
    conns_.erase(conn->fd);
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    conn->fd = -1;
    server_->live_conns_.fetch_sub(1, std::memory_order_relaxed);
    if (!conn->executing) {
      // No executor can still hold a view into the buffer: recycle it.
      // (With `executing` set the storage just dies with the Conn.)
      server_->ReleaseInputStorage(conn->input.ReleaseStorage());
    }
  }

  MailNetServer* server_;
  uint64_t id_;
  int epfd_ = -1;
  int evfd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  uint64_t last_sweep_ms_ = 0;  // loop-thread-only

  std::mutex pending_mu_;
  std::vector<std::shared_ptr<Conn>> pending_add_;
  std::vector<std::shared_ptr<Conn>> pending_retire_;
  std::vector<std::shared_ptr<Conn>> pending_resume_;
  std::atomic<bool> nudge_pending_{false};

  // Loop-thread-only.
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
};

MailNetServer::Conn::~Conn() {
  if (fd >= 0) {
    ::close(fd);
  }
}

MailNetServer::MailNetServer(mailboat::MailApi* mail, Options options)
    : mail_(mail), options_(options) {
  PCC_ENSURE(options_.num_loops >= 1, "MailNetServer: need at least one event loop");
  PCC_ENSURE(options_.num_executors >= 1, "MailNetServer: need at least one executor");
  PCC_ENSURE(options_.input_buffer_bytes > options_.max_line_bytes,
             "MailNetServer: input buffer must exceed max_line_bytes");
}

MailNetServer::~MailNetServer() { Stop(); }

bool MailNetServer::Start() {
  PCC_ENSURE(!started_, "MailNetServer: started twice");
  smtp_listen_fd_ = ListenTcp(options_.smtp_port, &smtp_port_);
  pop3_listen_fd_ = ListenTcp(options_.pop3_port, &pop3_port_);
  if (smtp_listen_fd_ < 0 || pop3_listen_fd_ < 0) {
    std::fprintf(stderr, "MailNetServer: bind/listen failed: %s\n", std::strerror(errno));
    if (smtp_listen_fd_ >= 0) {
      ::close(smtp_listen_fd_);
    }
    if (pop3_listen_fd_ >= 0) {
      ::close(pop3_listen_fd_);
    }
    smtp_listen_fd_ = pop3_listen_fd_ = -1;
    return false;
  }
  SetNonblocking(smtp_listen_fd_);
  SetNonblocking(pop3_listen_fd_);
  for (uint64_t i = 0; i < options_.num_loops; ++i) {
    auto loop = std::make_unique<EventLoop>(this, i);
    if (!loop->Init()) {
      std::fprintf(stderr, "MailNetServer: epoll init failed: %s\n", std::strerror(errno));
      return false;
    }
    loops_.push_back(std::move(loop));
  }
  for (auto& loop : loops_) {
    loop->StartThread();
  }
  for (uint64_t i = 0; i < options_.num_executors; ++i) {
    executors_.emplace_back([this, i] { ExecutorMain(i); });
  }
  acceptor_ = std::thread([this] { AcceptorMain(); });
  started_ = true;
  return true;
}

void MailNetServer::Stop() {
  if (!started_) {
    return;
  }
  stop_.store(true, std::memory_order_relaxed);
  acceptor_.join();
  work_cv_.notify_all();
  for (auto& t : executors_) {
    t.join();
  }
  executors_.clear();
  for (auto& loop : loops_) {
    loop->RequestStop();
  }
  for (auto& loop : loops_) {
    loop->Join();
  }
  loops_.clear();
  ::close(smtp_listen_fd_);
  ::close(pop3_listen_fd_);
  smtp_listen_fd_ = pop3_listen_fd_ = -1;
  started_ = false;
}

bool MailNetServer::Drain(uint64_t timeout_ms) {
  if (!started_) {
    return true;
  }
  draining_.store(true, std::memory_order_relaxed);
  for (auto& loop : loops_) {
    loop->RequestDrain();
  }
  uint64_t deadline = NowMs() + timeout_ms;
  while (live_conns_.load(std::memory_order_relaxed) > 0 && NowMs() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return live_conns_.load(std::memory_order_relaxed) <= 0;
}

void MailNetServer::AcceptorMain() {
  struct pollfd fds[2];
  fds[0].fd = smtp_listen_fd_;
  fds[1].fd = pop3_listen_fd_;
  fds[0].events = fds[1].events = POLLIN;
  while (!stop_.load(std::memory_order_relaxed)) {
    int n = ::poll(fds, 2, /*timeout_ms=*/100);
    if (n < 0 && errno != EINTR) {
      break;
    }
    if (n <= 0) {
      continue;
    }
    for (int which = 0; which < 2; ++which) {
      if (!(fds[which].revents & POLLIN)) {
        continue;
      }
      for (;;) {
        int cfd = Accept4(fds[which].fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (cfd < 0) {
          break;  // EAGAIN (or a transient accept error): back to poll
        }
        // Overload shedding / drain: refuse at the door with an honest 421
        // (a retriable code, unlike a silent RST) instead of queueing work
        // the executors can't keep up with.
        bool drain = draining_.load(std::memory_order_relaxed);
        if (drain || (options_.max_conns > 0 &&
                      live_conns_.load(std::memory_order_relaxed) >=
                          static_cast<int64_t>(options_.max_conns))) {
          const char* msg =
              which == 0
                  ? (drain ? "421 server shutting down\r\n" : "421 too busy, try again later\r\n")
                  : (drain ? "-ERR server shutting down\r\n" : "-ERR busy, try again later\r\n");
          (void)SendSome(cfd, msg, std::strlen(msg));
          ::close(cfd);
          shed_connects_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        live_conns_.fetch_add(1, std::memory_order_relaxed);
        SetTcpNoDelay(cfd);
        auto conn = std::make_shared<Conn>();
        conn->fd = cfd;
        conn->input.AdoptStorage(AcquireInputStorage());
        conn->is_smtp = which == 0;
        if (conn->is_smtp) {
          conn->smtp = std::make_unique<smtp::SmtpSession>(mail_);
        } else {
          conn->pop3 = std::make_unique<smtp::Pop3Session>(mail_);
        }
        uint64_t loop_idx = next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
        conn->loop = loops_[loop_idx].get();
        accepted_.fetch_add(1, std::memory_order_relaxed);
        conn->loop->AddConn(std::move(conn));
      }
    }
  }
}

std::vector<char> MailNetServer::AcquireInputStorage() {
  std::scoped_lock lock(pool_mu_);
  if (input_pool_.empty()) {
    return {};
  }
  std::vector<char> storage = std::move(input_pool_.back());
  input_pool_.pop_back();
  return storage;
}

void MailNetServer::ReleaseInputStorage(std::vector<char> storage) {
  if (storage.empty()) {
    return;
  }
  std::scoped_lock lock(pool_mu_);
  if (input_pool_.size() < 256) {
    input_pool_.push_back(std::move(storage));
  }
}

void MailNetServer::EnqueueWork(std::shared_ptr<Conn> conn) {
  {
    std::scoped_lock lock(work_mu_);
    work_.push_back(std::move(conn));
  }
  work_cv_.notify_one();
}

void MailNetServer::ExecutorMain(uint64_t executor_id) {
  for (;;) {
    std::shared_ptr<Conn> conn;
    {
      std::unique_lock<std::mutex> lock(work_mu_);
      work_cv_.wait(lock, [&] { return stop_.load(std::memory_order_relaxed) || !work_.empty(); });
      if (stop_.load(std::memory_order_relaxed)) {
        return;  // queued connections die with the server
      }
      conn = std::move(work_.front());
      work_.pop_front();
    }
    ServeConn(conn, executor_id);
  }
}

void MailNetServer::ServeConn(const std::shared_ptr<Conn>& conn, uint64_t executor_id) {
  for (;;) {
    std::string_view line;
    bool have_line = false;
    bool eof = false;
    bool resume = false;
    {
      std::scoped_lock lock(conn->mu);
      if (conn->retired || conn->closing) {
        return;  // executing stays set; the conn is on its way out
      }
      // NextLine consumes the previous checked-out line and hands back a
      // view into the receive buffer — stable outside mu because the loop
      // only appends at the tail while a line is outstanding.
      have_line = conn->input.NextLine(&line);
      if (!have_line) {
        if (conn->peer_eof) {
          eof = true;
        } else {
          // Done for now. Corked replies (batched while more input was
          // pending) go out before we yield the connection. The executing
          // flag is cleared in the same critical section as the emptiness
          // check, so a line arriving concurrently either lands before (we
          // saw it) or after (the loop re-dispatches).
          {
            stage::StageScope write_stage(stage::kWrite);
            FlushLocked(conn);
          }
          conn->executing = false;
          if (conn->read_paused) {
            conn->read_paused = false;
            resume = true;
          }
        }
      }
    }
    if (!have_line && !eof) {
      if (resume) {
        conn->loop->RequestResume(conn);
      }
      return;
    }
    if (eof) {
      // Mid-session disconnect: a POP3 session may hold its user's pickup
      // lock — release it (deleting nothing), per the Abort contract.
      if (conn->pop3 != nullptr && !conn->pop3->quit()) {
        proc::RunSyncVoid(conn->pop3->Abort());
      }
      {
        std::scoped_lock lock(conn->mu);
        conn->closing = true;
        conn->executing = false;  // we will never touch this conn again
      }
      conn->loop->RequestRetire(conn);
      return;
    }
    std::string resp;
    {
      TraceScope trace(options_.trace, conn->is_smtp ? "smtp_line" : "pop3_line", "serve",
                       executor_id);
      stage::StageScope exec_stage(stage::kExecute);
      resp = conn->is_smtp ? proc::RunSync(conn->smtp->HandleLine(line))
                           : proc::RunSync(conn->pop3->HandleLine(line));
    }
    lines_served_.fetch_add(1, std::memory_order_relaxed);
    bool quit = conn->is_smtp ? conn->smtp->quit() : conn->pop3->quit();
    bool retire_now = false;
    {
      std::scoped_lock lock(conn->mu);
      conn->input.FinishLine();  // the view is dead; the loop may compact
      if (conn->retired) {
        return;
      }
      if (!resp.empty()) {
        conn->outbuf += resp;
        conn->outbuf += "\r\n";
      }
      // Cork: while more pipelined commands are already buffered, keep
      // accumulating replies and write them as one segment at the drain
      // point (or once the cork grows past a page) — one send() per
      // batch instead of one per line.
      if (quit || !conn->input.has_line() || conn->outbuf.size() - conn->outoff >= 4096) {
        stage::StageScope write_stage(stage::kWrite);
        FlushLocked(conn);
      }
      if (quit) {
        conn->closing = true;
        conn->executing = false;  // we will never touch this conn again
        retire_now = conn->outbuf.size() == conn->outoff;
      }
    }
    if (quit) {
      if (retire_now) {
        conn->loop->RequestRetire(conn);
      }
      // else: the loop retires it once EPOLLOUT drains the farewell.
      return;
    }
  }
}

void MailNetServer::QueueResponseLocked(const std::shared_ptr<Conn>& conn,
                                        const std::string& resp) {
  if (!resp.empty()) {
    conn->outbuf += resp;
    conn->outbuf += "\r\n";
  }
  FlushLocked(conn);
}

void MailNetServer::FlushLocked(const std::shared_ptr<Conn>& conn) {
  if (conn->retired || conn->fd < 0) {
    return;
  }
  while (conn->outoff < conn->outbuf.size()) {
    ssize_t n =
        SendSome(conn->fd, conn->outbuf.data() + conn->outoff, conn->outbuf.size() - conn->outoff);
    if (n > 0) {
      conn->outoff += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;  // the EPOLLOUT edge resumes the flush
    }
    // Peer gone mid-write (EPIPE/ECONNRESET): nothing left to say.
    conn->peer_eof = true;
    conn->closing = true;
    break;
  }
  if (conn->outoff == conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->outoff = 0;
    if (conn->closing) {
      conn->loop->RequestRetire(conn);
    }
  }
}

}  // namespace perennial::netserv
