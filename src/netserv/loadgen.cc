#include "src/netserv/loadgen.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "src/base/rand.h"
#include "src/netserv/net.h"

namespace perennial::netserv {

namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// One client connection state machine, advanced by complete response lines.
struct Client {
  uint64_t id = 0;
  bool is_pop3 = false;
  int fd = -1;
  bool dead = false;      // gave up (connect refused / repeated errors)
  bool finished = false;  // budget drained, session closed politely
  int64_t quota = 0;      // this client's share of the request budget
  std::string inbuf;
  std::string outbuf;
  size_t outoff = 0;

  int state = 0;
  uint64_t conn_gen = 0;  // bumped on every (re)connect; outlives fd reuse
  bool in_request = false;
  uint64_t t0_us = 0;
  uint64_t seq = 0;
  int pipe_acks = 0;   // replies consumed in the current pipelined batch
  int rcpts_sent = 0;  // RCPT commands issued for the current message
  uint64_t user = 0;
  std::string cur_line;               // current message body line (no CRLF)
  std::string cur_body;               // contents the server will store
  std::vector<std::string> multiline;  // accumulating multi-line response
  bool in_multiline = false;
  uint64_t retr_target = 0;  // messages listed by the current pickup
  bool did_delete = false;   // this pickup DELEd a message (commits at QUIT)
  // Tempfail retry state: attempts burned on the current request (or on
  // getting past a busy greeting), the parked-until deadline, and whether
  // the wake should re-issue the in-flight delivery with its original tag.
  uint64_t attempt = 0;
  uint64_t retry_at_us = 0;  // 0 = not parked
  bool retry_deliver = false;
};

// SMTP states.
constexpr int kSmtpGreeting = 0;
constexpr int kSmtpHelo = 1;
constexpr int kSmtpIdle = 2;
constexpr int kSmtpMail = 3;
constexpr int kSmtpRcpt = 4;
constexpr int kSmtpData = 5;
constexpr int kSmtpBody = 6;
constexpr int kSmtpQuit = 7;
constexpr int kSmtpPipeline = 8;  // MAIL+RCPT+DATA sent, collecting 250/250/354
constexpr int kSmtpParked = 9;    // tempfailed; waiting out the retry backoff
// POP3 states (one connection per pickup).
constexpr int kPopIdle = 10;
constexpr int kPopGreeting = 11;
constexpr int kPopUser = 12;
constexpr int kPopPass = 13;
constexpr int kPopList = 14;
constexpr int kPopRetr = 15;
constexpr int kPopDele = 16;
constexpr int kPopQuit = 17;
constexpr int kPopParked = 18;  // tempfailed; waiting out the retry backoff

class Driver {
 public:
  Driver(const LoadgenOptions& options, std::atomic<int64_t>* spill, uint64_t first_client,
         uint64_t n_clients, uint64_t n_pop3)
      : options_(options), spill_(spill), rng_(options.rng_seed * 1000003 + first_client) {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    for (uint64_t i = 0; i < n_clients; ++i) {
      auto c = std::make_unique<Client>();
      c->id = first_client + i;
      c->is_pop3 = i < n_pop3;
      c->state = c->is_pop3 ? kPopIdle : kSmtpGreeting;
      c->user = c->id % options_.num_users;
      // Fixed per-client quota (remainder to the lowest ids). A shared
      // budget would let fast clients absorb slow clients' share, so two
      // runs of the same options could do very different work mixes —
      // e.g. under per-op fsync, cheap POP3 pickups would displace slow
      // durable delivers, inflating req/s. Fixed quotas make every run
      // perform the identical request mix.
      c->quota = static_cast<int64_t>(options_.requests / options_.clients) +
                 (c->id < options_.requests % options_.clients ? 1 : 0);
      clients_.push_back(std::move(c));
    }
  }

  ~Driver() {
    for (auto& c : clients_) {
      if (c->fd >= 0) {
        ::close(c->fd);
      }
    }
    if (epfd_ >= 0) {
      ::close(epfd_);
    }
  }

  LoadgenResult Run() {
    for (auto& c : clients_) {
      if (c->is_pop3) {
        StartPickupOrFinish(c.get());
      } else {
        Connect(c.get());  // greeting arrives asynchronously
      }
    }
    uint64_t last_progress_us = NowUs();
    uint64_t progress_marker = 0;
    constexpr int kMaxEvents = 128;
    struct epoll_event events[kMaxEvents];
    for (;;) {
      if (AllSettled()) {
        break;
      }
      // Parked (backing-off) clients need a finer poll than the 100ms
      // housekeeping tick, or a 2ms backoff would stretch to 100ms.
      int timeout_ms = parked_ > 0 ? 2 : 100;
      int n;
      do {
        n = ::epoll_wait(epfd_, events, kMaxEvents, timeout_ms);
      } while (n < 0 && errno == EINTR);
      for (int i = 0; i < n; ++i) {
        auto it = by_fd_.find(events[i].data.fd);
        if (it == by_fd_.end()) {
          continue;
        }
        Client* c = it->second;
        if (events[i].events & EPOLLOUT) {
          Flush(c);
        }
        if (events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
          ReadAndAdvance(c);
        }
      }
      if (parked_ > 0) {
        WakeParked();
      }
      // Retries count as progress: a long tempfail storm is the server
      // honestly degrading, not a hang.
      uint64_t done_now =
          result_.ok_requests + result_.errors + result_.tempfails + result_.retries;
      if (done_now != progress_marker) {
        progress_marker = done_now;
        last_progress_us = NowUs();
      } else if (NowUs() - last_progress_us > options_.stall_timeout_ms * 1000) {
        result_.aborted = true;
        break;
      }
    }
    if (!AllFinished()) {
      result_.aborted = true;
    }
    return std::move(result_);
  }

 private:
  bool AllSettled() const {
    for (const auto& c : clients_) {
      if (!c->dead && !c->finished) {
        return false;
      }
    }
    return true;
  }

  bool AllFinished() const {
    for (const auto& c : clients_) {
      if (!c->finished) {
        return false;
      }
    }
    return true;
  }

  // Claim from the client's own quota first, then from the spill pool that
  // dead clients abandoned their remainder into (keeps the total drained
  // exactly at options.requests even when connections die mid-run).
  bool ClaimBudget(Client* c) {
    if (c->quota > 0) {
      --c->quota;
      return true;
    }
    return spill_->fetch_sub(1, std::memory_order_relaxed) > 0;
  }

  void Die(Client* c) {
    c->dead = true;
    if (c->retry_at_us != 0) {
      c->retry_at_us = 0;
      parked_ -= 1;
    }
    if (c->quota > 0) {
      spill_->fetch_add(c->quota, std::memory_order_relaxed);
      c->quota = 0;
    }
  }

  // --- tempfail retry machinery ---

  static bool IsSmtpTemp(const std::string& line) {
    return Ok(line, "421") || Ok(line, "451") || Ok(line, "452");
  }

  // Park the client for an exponential-backoff slice and retry the current
  // request (same body tag, no fresh budget claim); after max_retries the
  // request is abandoned as a tempfail. `reconnect` drops the connection
  // first (421 farewells and mid-transaction failures leave the session in
  // an unknown state; a post-DATA 451/452 leaves it cleanly reset).
  void RetryOrGiveUp(Client* c, bool reconnect) {
    c->attempt += 1;
    if (c->attempt > options_.max_retries) {
      GiveUp(c);
      return;
    }
    result_.retries += 1;
    uint64_t backoff_ms = options_.retry_backoff_start_ms << (c->attempt - 1);
    backoff_ms = std::min(std::max<uint64_t>(backoff_ms, 1), options_.retry_backoff_cap_ms);
    c->retry_at_us = NowUs() + backoff_ms * 1000;
    parked_ += 1;
    if (reconnect) {
      CloseConn(c);
    }
    c->state = c->is_pop3 ? kPopParked : kSmtpParked;
  }

  // The retry budget is spent: record the in-flight request as a tempfail
  // (its tag goes in tempfailed_bodies so the durability audit knows the
  // generator gave up on it) and move on to the next request.
  void GiveUp(Client* c) {
    if (c->in_request) {
      result_.tempfails += 1;
      if (!c->is_pop3) {
        result_.tempfailed_bodies.push_back(c->cur_body);
      }
      c->in_request = false;
    }
    c->attempt = 0;
    c->retry_deliver = false;
    if (c->is_pop3) {
      CloseConn(c);
      c->state = kPopIdle;
      StartPickupOrFinish(c);
      return;
    }
    if (c->fd < 0) {
      Connect(c);  // greeting -> HELO -> next request (or Die if refused)
      return;
    }
    StartDeliverOrQuit(c);
  }

  void WakeParked() {
    uint64_t now = NowUs();
    for (auto& cp : clients_) {
      Client* c = cp.get();
      if (c->retry_at_us == 0 || c->dead || c->finished || now < c->retry_at_us) {
        continue;
      }
      c->retry_at_us = 0;
      parked_ -= 1;
      if (c->fd < 0) {
        Connect(c);  // the FSM resumes from the fresh greeting
        if (c->dead) {
          GiveUp(c);  // records the in-flight request, if any
        }
        continue;
      }
      if (c->is_pop3) {
        c->state = kPopPass;  // server is still waiting in its PASS state
        Send(c, "PASS x");
        continue;
      }
      if (c->retry_deliver) {
        c->retry_deliver = false;
        IssueDeliver(c);  // same tag, same recipients
        continue;
      }
      StartDeliverOrQuit(c);
    }
  }

  void Connect(Client* c) {
    uint16_t port = c->is_pop3 ? options_.pop3_port : options_.smtp_port;
    int fd = ConnectTcp(port);
    if (fd < 0) {
      Die(c);
      return;
    }
    SetNonblocking(fd);
    c->fd = fd;
    c->inbuf.clear();
    c->outbuf.clear();
    c->outoff = 0;
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      c->fd = -1;
      Die(c);
      return;
    }
    by_fd_[fd] = c;
    c->conn_gen += 1;
    c->state = c->is_pop3 ? kPopGreeting : kSmtpGreeting;
  }

  void CloseConn(Client* c) {
    if (c->fd >= 0) {
      by_fd_.erase(c->fd);
      ::epoll_ctl(epfd_, EPOLL_CTL_DEL, c->fd, nullptr);
      ::close(c->fd);
      c->fd = -1;
    }
  }

  void Send(Client* c, const std::string& line) {
    Queue(c, line);
    Flush(c);
  }

  // Append without flushing, so a pipelined batch goes out as one send().
  void Queue(Client* c, const std::string& line) {
    c->outbuf += line;
    c->outbuf += "\r\n";
  }

  void Flush(Client* c) {
    while (c->fd >= 0 && c->outoff < c->outbuf.size()) {
      ssize_t n = SendSome(c->fd, c->outbuf.data() + c->outoff, c->outbuf.size() - c->outoff);
      if (n > 0) {
        c->outoff += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return;
      }
      OnConnLost(c);
      return;
    }
    if (c->outoff == c->outbuf.size()) {
      c->outbuf.clear();
      c->outoff = 0;
    }
  }

  void ReadAndAdvance(Client* c) {
    for (;;) {
      if (c->fd < 0) {
        return;
      }
      char buf[8192];
      ssize_t n = RecvSome(c->fd, buf, sizeof(buf));
      if (n > 0) {
        c->inbuf.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        break;
      }
      // EOF or error. Feed any complete lines first — they may finish the
      // request and move the client to a fresh connection (possibly reusing
      // this very fd number), in which case the loss of the old connection
      // is not news. The generation counter survives fd reuse.
      uint64_t dying_gen = c->conn_gen;
      DrainLines(c);
      if (c->conn_gen == dying_gen) {
        OnConnLost(c);
      }
      return;
    }
    DrainLines(c);
  }

  void DrainLines(Client* c) {
    size_t nl;
    while (c->fd >= 0 && (nl = c->inbuf.find('\n')) != std::string::npos) {
      std::string line = c->inbuf.substr(0, nl);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      c->inbuf.erase(0, nl + 1);
      OnLine(c, line);
    }
  }

  void OnConnLost(Client* c) {
    if (c->finished) {
      return;
    }
    if (c->retry_at_us != 0) {
      CloseConn(c);  // already parked; the wake will reconnect
      return;
    }
    CloseConn(c);
    if (c->in_request) {
      // A connection lost mid-request is a tempfail, not an error: the
      // server may have shed us (drain, restart), and at-least-once retry
      // with the same tag is exactly what a real MTA peer does.
      if (!c->is_pop3) {
        c->retry_deliver = true;
      }
      RetryOrGiveUp(c, /*reconnect=*/true);
      return;
    }
    // Idle between requests: carry on with a fresh connection (the server
    // may just have dropped this one); if the server itself is gone,
    // Connect fails and the client dies, which ends a crash-harness run.
    if (c->is_pop3) {
      c->state = kPopIdle;
      StartPickupOrFinish(c);
    } else {
      Connect(c);
    }
  }

  void FinishClient(Client* c) {
    CloseConn(c);
    c->finished = true;
  }

  // --- request starters ---

  void StartDeliverOrQuit(Client* c) {
    if (!ClaimBudget(c)) {
      c->state = kSmtpQuit;
      Send(c, "QUIT");
      return;
    }
    c->in_request = true;
    c->attempt = 0;
    c->t0_us = NowUs();
    c->user = rng_.Next() % options_.num_users;
    // The body (with its unique tag) is fixed at request start so retries
    // resend the identical message: at-least-once, never two tags.
    std::string tag = "c" + std::to_string(c->id) + "-r" + std::to_string(c->seq++);
    c->cur_line = tag;
    if (c->cur_line.size() < options_.body_bytes) {
      c->cur_line.append(options_.body_bytes - c->cur_line.size(), 'x');
    }
    c->cur_body = c->cur_line + "\r\n";
    IssueDeliver(c);
  }

  // (Re)issue the current message's envelope; SendBody follows the 354.
  void IssueDeliver(Client* c) {
    if (options_.pipeline) {
      c->state = kSmtpPipeline;
      c->pipe_acks = 0;
      Queue(c, "MAIL FROM:<user0@loadgen>");
      for (uint64_t k = 0; k < Rcpts(); ++k) {
        Queue(c, "RCPT TO:<user" + std::to_string(RcptUser(c, k)) + "@loadgen>");
      }
      Queue(c, "DATA");
      Flush(c);
    } else {
      c->state = kSmtpMail;
      c->rcpts_sent = 0;
      Send(c, "MAIL FROM:<user0@loadgen>");
    }
  }

  // Recipients per message, clamped so fan-out never repeats a mailbox.
  uint64_t Rcpts() const {
    uint64_t r = options_.rcpts_per_msg > 0 ? options_.rcpts_per_msg : 1;
    return std::min<uint64_t>(r, options_.num_users);
  }

  uint64_t RcptUser(const Client* c, uint64_t k) const {
    return (c->user + k) % options_.num_users;
  }

  void SendBody(Client* c) {
    // The tagged body line was fixed when the request started (see
    // StartDeliverOrQuit); the server stores it with a CRLF appended.
    c->state = kSmtpBody;
    Queue(c, c->cur_line);
    Queue(c, ".");
    Flush(c);
  }

  void StartPickupOrFinish(Client* c) {
    if (c->dead) {
      return;
    }
    if (!ClaimBudget(c)) {
      FinishClient(c);
      return;
    }
    c->in_request = true;
    c->did_delete = false;
    c->attempt = 0;
    c->t0_us = NowUs();
    Connect(c);
    if (c->dead && c->in_request) {
      result_.errors += 1;
      c->in_request = false;
    }
  }

  void CompleteRequest(Client* c, bool pickup) {
    result_.latencies_us.push_back(NowUs() - c->t0_us);
    result_.ok_requests += 1;
    if (pickup) {
      result_.pickups += 1;
      if (c->did_delete) {
        result_.deletes += 1;
        c->did_delete = false;
      }
    } else {
      // One acked transaction = Rcpts() durable mailbox deliveries, each of
      // which the crash harness expects to find a surviving copy of.
      for (uint64_t k = 0; k < Rcpts(); ++k) {
        result_.delivers += 1;
        result_.acked_bodies.push_back(c->cur_body);
      }
      if (options_.acked_counter != nullptr) {
        options_.acked_counter->fetch_add(1, std::memory_order_relaxed);
      }
    }
    c->in_request = false;
    c->attempt = 0;
    c->retry_deliver = false;
  }

  // --- response handling ---

  static bool Ok(const std::string& line, const char* prefix) {
    return line.compare(0, std::strlen(prefix), prefix) == 0;
  }

  void Unexpected(Client* c) {
    if (c->in_request) {
      result_.errors += 1;
      c->in_request = false;
    }
    CloseConn(c);
    if (c->is_pop3) {
      c->state = kPopIdle;
      StartPickupOrFinish(c);
    } else {
      Connect(c);  // fresh session; next greeting restarts the FSM
    }
  }

  void OnLine(Client* c, const std::string& line) {
    if (c->in_multiline) {
      if (line == ".") {
        c->in_multiline = false;
        OnMultilineDone(c);
      } else {
        c->multiline.push_back(line);
      }
      return;
    }
    switch (c->state) {
      case kSmtpGreeting:
        if (Ok(line, "421")) {
          // Shed at the door (max-conns cap or drain): back off, reconnect.
          result_.shed_connects += 1;
          if (c->in_request) {
            c->retry_deliver = true;
          }
          RetryOrGiveUp(c, /*reconnect=*/true);
          return;
        }
        if (!Ok(line, "220")) {
          Unexpected(c);
          return;
        }
        c->state = kSmtpHelo;
        Send(c, "HELO loadgen");
        return;
      case kSmtpHelo:
        if (!Ok(line, "250")) {
          if (IsSmtpTemp(line)) {
            RetryOrGiveUp(c, /*reconnect=*/true);
            return;
          }
          Unexpected(c);
          return;
        }
        if (c->retry_deliver) {
          c->retry_deliver = false;
          IssueDeliver(c);  // resume the in-flight message on the new conn
          return;
        }
        StartDeliverOrQuit(c);
        return;
      case kSmtpMail:
        if (!Ok(line, "250")) {
          if (IsSmtpTemp(line)) {
            c->retry_deliver = true;
            RetryOrGiveUp(c, /*reconnect=*/true);
            return;
          }
          Unexpected(c);
          return;
        }
        c->state = kSmtpRcpt;
        Send(c, "RCPT TO:<user" + std::to_string(RcptUser(c, c->rcpts_sent++)) + "@loadgen>");
        return;
      case kSmtpRcpt:
        if (!Ok(line, "250")) {
          if (IsSmtpTemp(line)) {
            c->retry_deliver = true;
            RetryOrGiveUp(c, /*reconnect=*/true);
            return;
          }
          Unexpected(c);
          return;
        }
        if (static_cast<uint64_t>(c->rcpts_sent) < Rcpts()) {
          Send(c, "RCPT TO:<user" + std::to_string(RcptUser(c, c->rcpts_sent++)) + "@loadgen>");
          return;
        }
        c->state = kSmtpData;
        Send(c, "DATA");
        return;
      case kSmtpData: {
        if (!Ok(line, "354")) {
          if (IsSmtpTemp(line)) {
            c->retry_deliver = true;
            RetryOrGiveUp(c, /*reconnect=*/true);
            return;
          }
          Unexpected(c);
          return;
        }
        SendBody(c);
        return;
      }
      case kSmtpPipeline: {
        // Replies to the MAIL/RCPT.../DATA batch arrive in order.
        int total = static_cast<int>(Rcpts()) + 2;
        if (!Ok(line, c->pipe_acks < total - 1 ? "250" : "354")) {
          if (IsSmtpTemp(line)) {
            c->retry_deliver = true;
            RetryOrGiveUp(c, /*reconnect=*/true);
            return;
          }
          Unexpected(c);
          return;
        }
        if (++c->pipe_acks < total) {
          return;
        }
        SendBody(c);
        return;
      }
      case kSmtpBody:
        if (!Ok(line, "250")) {
          if (IsSmtpTemp(line)) {
            // Honest tempfail (451/452): the server reset the transaction
            // and kept the connection; retry the same tag in place. A 421
            // farewell means the connection is going away — reconnect.
            c->retry_deliver = true;
            RetryOrGiveUp(c, /*reconnect=*/Ok(line, "421"));
            return;
          }
          Unexpected(c);
          return;
        }
        CompleteRequest(c, /*pickup=*/false);
        StartDeliverOrQuit(c);
        return;
      case kSmtpQuit:
        FinishClient(c);
        return;
      case kSmtpParked:
        if (Ok(line, "421")) {
          CloseConn(c);  // idle-reaped while parked; the wake reconnects
        }
        return;

      case kPopGreeting:
        if (!Ok(line, "+OK")) {
          // "-ERR busy" / "-ERR server shutting down": shed at the door.
          result_.shed_connects += 1;
          RetryOrGiveUp(c, /*reconnect=*/true);
          return;
        }
        c->state = kPopUser;
        Send(c, "USER user" + std::to_string(c->user));
        return;
      case kPopUser:
        if (!Ok(line, "+OK")) {
          Unexpected(c);
          return;
        }
        c->state = kPopPass;
        Send(c, "PASS x");
        return;
      case kPopPass:
        if (!Ok(line, "+OK")) {
          // "-ERR mailbox temporarily unavailable": the session stays at
          // PASS, so the retry re-sends PASS on this same connection.
          RetryOrGiveUp(c, /*reconnect=*/false);
          return;
        }
        c->state = kPopList;
        c->multiline.clear();
        c->in_multiline = true;
        Send(c, "LIST");
        return;
      case kPopDele:
        if (!Ok(line, "+OK")) {
          Unexpected(c);
          return;
        }
        c->did_delete = true;
        c->state = kPopQuit;
        Send(c, "QUIT");
        return;
      case kPopQuit:
        if (!Ok(line, "+OK")) {
          // "-ERR some deleted messages not removed": the pickup itself
          // succeeded (messages read); only the deletes tempfailed. The
          // message will be picked up again — at-least-once, not lost.
          result_.tempfails += 1;
          c->did_delete = false;
        }
        CompleteRequest(c, /*pickup=*/true);
        CloseConn(c);
        c->state = kPopIdle;
        StartPickupOrFinish(c);
        return;
      case kPopParked:
        if (!Ok(line, "+OK")) {
          CloseConn(c);  // reaped while parked; the wake reconnects
        }
        return;
      default:
        Unexpected(c);
        return;
    }
  }

  void OnMultilineDone(Client* c) {
    if (c->state == kPopList) {
      if (c->multiline.empty() || !Ok(c->multiline[0], "+OK")) {
        Unexpected(c);
        return;
      }
      c->retr_target = c->multiline.size() - 1;  // lines after "+OK"
      if (c->retr_target == 0) {
        c->state = kPopQuit;
        Send(c, "QUIT");
        return;
      }
      c->state = kPopRetr;
      c->multiline.clear();
      c->in_multiline = true;
      Send(c, "RETR 1");
      return;
    }
    if (c->state == kPopRetr) {
      if (c->multiline.empty() || !Ok(c->multiline[0], "+OK")) {
        Unexpected(c);
        return;
      }
      c->state = kPopDele;
      Send(c, "DELE 1");
      return;
    }
    Unexpected(c);
  }

  const LoadgenOptions& options_;
  std::atomic<int64_t>* spill_;
  Rng rng_;
  int epfd_ = -1;
  std::vector<std::unique_ptr<Client>> clients_;
  std::unordered_map<int, Client*> by_fd_;
  uint64_t parked_ = 0;  // clients waiting out a retry backoff
  LoadgenResult result_;
};

}  // namespace

LoadgenResult RunLoadgen(const LoadgenOptions& options) {
  auto start = std::chrono::steady_clock::now();
  // Requests are claimed from fixed per-client quotas; this pool only holds
  // what dead clients abandon, so surviving clients can still drain the
  // full budget.
  std::atomic<int64_t> spill{0};
  uint64_t n_pop3_total = std::min(
      options.clients, static_cast<uint64_t>(static_cast<double>(options.clients) *
                                                 options.pickup_fraction +
                                             0.5));
  uint64_t threads = std::max<uint64_t>(1, std::min(options.threads, options.clients));

  std::vector<LoadgenResult> parts(threads);
  std::vector<std::thread> fleet;
  uint64_t base = 0;
  uint64_t pop3_assigned = 0;
  for (uint64_t t = 0; t < threads; ++t) {
    uint64_t n = options.clients / threads + (t < options.clients % threads ? 1 : 0);
    uint64_t pop3_here = std::min(n, n_pop3_total - pop3_assigned);
    pop3_assigned += pop3_here;
    uint64_t first = base;
    base += n;
    fleet.emplace_back([&, t, first, n, pop3_here] {
      Driver driver(options, &spill, first, n, pop3_here);
      parts[t] = driver.Run();
    });
  }
  for (auto& th : fleet) {
    th.join();
  }

  LoadgenResult merged;
  for (auto& part : parts) {
    merged.ok_requests += part.ok_requests;
    merged.errors += part.errors;
    merged.delivers += part.delivers;
    merged.pickups += part.pickups;
    merged.deletes += part.deletes;
    merged.tempfails += part.tempfails;
    merged.retries += part.retries;
    merged.shed_connects += part.shed_connects;
    merged.aborted = merged.aborted || part.aborted;
    merged.latencies_us.insert(merged.latencies_us.end(), part.latencies_us.begin(),
                               part.latencies_us.end());
    for (auto& body : part.acked_bodies) {
      merged.acked_bodies.push_back(std::move(body));
    }
    for (auto& body : part.tempfailed_bodies) {
      merged.tempfailed_bodies.push_back(std::move(body));
    }
  }
  merged.wall_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                             start)
                       .count();
  return merged;
}

uint64_t PercentileUs(std::vector<uint64_t> samples, double p) {
  if (samples.empty()) {
    return 0;
  }
  std::sort(samples.begin(), samples.end());
  double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  size_t idx = static_cast<size_t>(rank + 0.5);
  if (idx >= samples.size()) {
    idx = samples.size() - 1;
  }
  return samples[idx];
}

}  // namespace perennial::netserv
