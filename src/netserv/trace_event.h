// Minimal Chrome trace-event JSON writer (catapult "trace event format",
// JSON-array flavor) for profiling the server hot path. Load the output in
// chrome://tracing or Perfetto.
//
// Threads record complete events ("ph":"X") with microsecond timestamps
// relative to the trace's start; recording is a short critical section on
// one mutex — cheap enough for request-granularity events, not intended
// for per-syscall instrumentation.
#ifndef PERENNIAL_SRC_NETSERV_TRACE_EVENT_H_
#define PERENNIAL_SRC_NETSERV_TRACE_EVENT_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace perennial::netserv {

class TraceLog {
 public:
  TraceLog() : start_(std::chrono::steady_clock::now()) {}

  uint64_t NowUs() const {
    return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                     std::chrono::steady_clock::now() - start_)
                                     .count());
  }

  // One complete event: [start_us, start_us + dur_us) on track `tid`.
  void Complete(const char* name, const char* category, uint64_t tid, uint64_t start_us,
                uint64_t dur_us) {
    std::scoped_lock lock(mu_);
    events_.push_back(Event{name, category, tid, start_us, dur_us});
  }

  // Writes the JSON-array format. Returns false if the file can't be opened.
  bool WriteJson(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return false;
    }
    std::scoped_lock lock(mu_);
    std::fputs("[\n", f);
    for (size_t i = 0; i < events_.size(); ++i) {
      const Event& e = events_[i];
      std::fprintf(f,
                   "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%llu,"
                   "\"ts\":%llu,\"dur\":%llu}%s\n",
                   e.name, e.category, static_cast<unsigned long long>(e.tid),
                   static_cast<unsigned long long>(e.start_us),
                   static_cast<unsigned long long>(e.dur_us),
                   i + 1 < events_.size() ? "," : "");
    }
    std::fputs("]\n", f);
    std::fclose(f);
    return true;
  }

  size_t size() const {
    std::scoped_lock lock(mu_);
    return events_.size();
  }

 private:
  struct Event {
    const char* name;      // static strings only
    const char* category;  // static strings only
    uint64_t tid;
    uint64_t start_us;
    uint64_t dur_us;
  };

  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

// RAII scope: records a complete event from construction to destruction.
class TraceScope {
 public:
  TraceScope(TraceLog* log, const char* name, const char* category, uint64_t tid)
      : log_(log), name_(name), category_(category), tid_(tid),
        start_us_(log != nullptr ? log->NowUs() : 0) {}
  ~TraceScope() {
    if (log_ != nullptr) {
      log_->Complete(name_, category_, tid_, start_us_, log_->NowUs() - start_us_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceLog* log_;
  const char* name_;
  const char* category_;
  uint64_t tid_;
  uint64_t start_us_;
};

}  // namespace perennial::netserv

#endif  // PERENNIAL_SRC_NETSERV_TRACE_EVENT_H_
