#include "src/netserv/net.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace perennial::netserv {

namespace {

ssize_t RealRecv(int fd, void* buf, size_t n, int flags) { return ::recv(fd, buf, n, flags); }
ssize_t RealSend(int fd, const void* buf, size_t n, int flags) { return ::send(fd, buf, n, flags); }
int RealAccept4(int fd, struct sockaddr* addr, socklen_t* len, int flags) {
  return ::accept4(fd, addr, len, flags);
}

}  // namespace

RawSys& Sys() {
  static RawSys sys{RealRecv, RealSend, RealAccept4};
  return sys;
}

ssize_t RecvSome(int fd, void* buf, size_t n) {
  ssize_t rc;
  do {
    rc = Sys().recv(fd, buf, n, 0);
  } while (rc < 0 && errno == EINTR);
  return rc;
}

ssize_t SendSome(int fd, const void* buf, size_t n) {
  ssize_t rc;
  do {
    rc = Sys().send(fd, buf, n, MSG_NOSIGNAL);
  } while (rc < 0 && errno == EINTR);
  return rc;
}

int Accept4(int fd, struct sockaddr* addr, socklen_t* len, int flags) {
  int rc;
  do {
    rc = Sys().accept4(fd, addr, len, flags);
  } while (rc < 0 && errno == EINTR);
  return rc;
}

int ListenTcp(uint16_t port, uint16_t* bound_port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    int err = errno;
    ::close(fd);
    errno = err;
    return -1;
  }
  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
      int err = errno;
      ::close(fd);
      errno = err;
      return -1;
    }
    *bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

int ConnectTcp(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return -1;
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    int err = errno;
    ::close(fd);
    errno = err;
    return -1;
  }
  SetTcpNoDelay(fd);
  return fd;
}

bool SetNonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void SetTcpNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool BlockingLineConn::WriteLine(const std::string& line) {
  std::string wire = line + "\r\n";
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n = SendSome(fd_, wire.data() + sent, wire.size() - sent);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool BlockingLineConn::ReadLine(std::string* line) {
  for (;;) {
    size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      *line = buf_.substr(0, nl);
      if (!line->empty() && line->back() == '\r') {
        line->pop_back();
      }
      buf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    ssize_t n = RecvSome(fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      return false;
    }
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

void BlockingLineConn::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace perennial::netserv
