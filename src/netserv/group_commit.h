// Group commit: coalesce the fsyncs of many concurrent sessions into one
// batch barrier.
//
// Mailboat's Deliver costs ~4 durability points (spool-file data, spool-dir
// entry, mailbox-dir entry, spool-dir removal). Served naively, each session
// pays each one at full device latency. GroupCommitter implements the
// goosefs::Fsyncer seam: callers enqueue their fd and block; a committer
// thread closes the batch after a bounded latency window (or a batch-size
// cap, whichever first) and issues ONE barrier for everyone — then wakes the
// whole batch. Per-message fsync cost drops to O(1/batch) while every
// acknowledgment still happens strictly after its durability point, so the
// acked ⇒ durable contract the crash harness checks is unchanged.
//
// Two barrier flavors:
//  * kSyncfs (default): one syncfs() on the store's filesystem persists all
//    dirty state — files and directory entries — in a single device barrier.
//    Strictly stronger than the per-fd fsyncs it replaces.
//  * kFsyncPerFd: fsync each *unique* fd in the batch (duplicates deduped,
//    counted in stats().deduped). Deterministic per-fd accounting for tests,
//    and the honest comparison point on filesystems without syncfs.
//
// The committer never reorders acks before barriers: Fsync() returns only
// after the barrier covering the call has completed (or failed, in which
// case the error is reported to every waiter in the batch).
//
// Failed barriers are STICKY. On Linux, a failed fsync drops the dirty
// pages it could not write — a later fsync of the same fd can return
// success without the data ever reaching media. So when a barrier fails:
//  * every waiter in the closed batch gets the error (as before);
//  * every waiter in the still-open batch gets the error too — under
//    kSyncfs their dirty pages were part of the same failed writeback, so
//    a fresh barrier "succeeding" for them would prove nothing;
//  * every file fd that was dirty at the time (tracked via OnDirty from
//    PosixFilesys::Append) is poisoned: subsequent Fsync() calls on it
//    fail immediately until the fd is closed (OnClose). The only honest
//    path back to durable is reopen-and-rewrite — which Mailboat's
//    tempfail + client retry does naturally with a fresh spool file.
// Directory fds are not poisoned: a tempfailing session compensates with
// unlinks, which re-dirty the directory, so its next fsync is genuine.
#ifndef PERENNIAL_SRC_NETSERV_GROUP_COMMIT_H_
#define PERENNIAL_SRC_NETSERV_GROUP_COMMIT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "src/base/status.h"
#include "src/fault/syscall_fault.h"
#include "src/goosefs/posix_fs.h"

namespace perennial::netserv {

class GroupCommitter : public goosefs::Fsyncer {
 public:
  enum class Barrier {
    kSyncfs,
    kFsyncPerFd,
  };

  struct Options {
    // Latency window: how long the committer holds a batch open after its
    // first request, hoping for company. Bounded so a lone request is never
    // stuck behind an idle server.
    uint64_t max_wait_us = 500;
    // Adaptive early close (jbd2-style): if no new request joins the batch
    // for this long, everyone who was going to arrive has arrived — commit
    // now instead of sleeping out the rest of the window. Set equal to
    // max_wait_us to disable and always hold the full window.
    uint64_t quiet_us = 50;
    // Close the batch early once this many requests have queued.
    uint64_t max_batch = 64;
    Barrier barrier = Barrier::kSyncfs;
    // Any fd on the store's filesystem (e.g. a directory fd of the mail
    // root); required for kSyncfs, ignored for kFsyncPerFd. Not owned.
    int syncfs_fd = -1;
    // Syscall table for the barrier syscalls (fsync/syncfs); defaults to
    // the raw syscalls. Tests pass a fault::FaultInjectingSyscalls to make
    // barriers fail. Not owned.
    fault::FsSyscalls* sys = nullptr;
  };

  struct Stats {
    std::atomic<uint64_t> requests{0};       // Fsync() calls served by batches
    std::atomic<uint64_t> batches{0};        // barriers issued
    std::atomic<uint64_t> fsyncs_issued{0};  // actual syncfs/fsync syscalls
    std::atomic<uint64_t> deduped{0};        // requests absorbed by fd dedup
    std::atomic<uint64_t> failed_batches{0};  // barriers that returned an error
    std::atomic<uint64_t> poisoned_fails{0};  // Fsync() rejections on poisoned fds
  };

  explicit GroupCommitter(Options options);
  ~GroupCommitter() override;

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  void Start();
  // Drains the open batch, then joins the committer. After Stop, Fsync()
  // falls back to a direct fsync (teardown paths still get durability).
  void Stop();

  // Blocks until a barrier covering this request has completed. Thread-safe.
  // Fails immediately (no barrier) if `fd` was poisoned by an earlier
  // failed barrier; the caller must close and reopen to try again.
  Status Fsync(int fd) override;
  // PosixFilesys lifecycle hints: OnDirty marks `fd` as carrying unsynced
  // file data (poisoning candidate); OnClose clears both the dirty mark
  // and any poison (a fresh open of the same file starts clean).
  void OnDirty(int fd) override;
  void OnClose(int fd) override;

  const Stats& stats() const { return stats_; }

 private:
  struct Batch {
    std::vector<int> fds;
    bool committed = false;
    Status status;
    std::condition_variable done_cv;
  };

  void CommitterMain();
  Status IssueBarrier(std::vector<int> fds);
  Status FsyncDirect(int fd);
  fault::FsSyscalls& Sys() const {
    return options_.sys != nullptr ? *options_.sys : *fault::RealFsSyscalls();
  }

  Options options_;
  Stats stats_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // committer: "a batch opened / stop"
  std::shared_ptr<Batch> open_;      // batch accepting requests, or null
  bool running_ = false;
  bool stop_ = false;
  // Sticky-failure tracking (see the header comment): file fds with
  // unsynced appends, and fds whose dirty pages a failed barrier dropped.
  std::unordered_set<int> dirty_;
  std::unordered_set<int> poisoned_;
  std::thread committer_;
};

}  // namespace perennial::netserv

#endif  // PERENNIAL_SRC_NETSERV_GROUP_COMMIT_H_
