// The production mail daemon: Mailboat over PosixFilesys behind a
// multi-threaded epoll SMTP/POP3 front end, with group-commit fsync
// batching (DESIGN.md §14).
//
// Quickstart:
//   mail_serverd --root /tmp/mail --smtp-port 2525 --pop3-port 1110
//   bench_loadgen --smtp-port 2525 --pop3-port 1110 --clients 64
//
// Prints one line "ports <smtp> <pop3>" to stdout once listening (so a
// parent process driving ephemeral ports can read them back), then serves
// until SIGINT/SIGTERM.
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "src/goose/world.h"
#include "src/goosefs/posix_fs.h"
#include "src/mailboat/mailboat.h"
#include "src/netserv/group_commit.h"
#include "src/netserv/server.h"
#include "src/proc/task.h"

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

uint64_t FlagU64(int argc, char** argv, const char* name, uint64_t def) {
  std::string want = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.compare(0, want.size(), want) == 0) {
      return std::strtoull(arg.c_str() + want.size(), nullptr, 10);
    }
  }
  return def;
}

std::string FlagStr(int argc, char** argv, const char* name, const std::string& def) {
  std::string want = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.compare(0, want.size(), want) == 0) {
      return arg.substr(want.size());
    }
  }
  return def;
}

bool FlagSet(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == name) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace perennial;

  if (FlagSet(argc, argv, "--help")) {
    std::printf(
        "usage: mail_serverd [--root=DIR] [--smtp-port=N] [--pop3-port=N]\n"
        "                    [--users=N] [--loops=N] [--executors=N]\n"
        "                    [--gc-window-us=N] [--gc-batch=N] [--no-group-commit]\n"
        "                    [--no-relaxed-spool]\n");
    return 0;
  }

  std::string root = FlagStr(argc, argv, "--root", "/tmp/perennial-mail");
  uint64_t users = FlagU64(argc, argv, "--users", 100);
  bool group_commit = !FlagSet(argc, argv, "--no-group-commit");

  ::mkdir(root.c_str(), 0755);  // best effort; EnsureDirs handles the rest

  // A directory fd on the store's filesystem anchors the syncfs barrier.
  int root_fd = ::open(root.c_str(), O_DIRECTORY | O_RDONLY);
  if (root_fd < 0) {
    std::fprintf(stderr, "mail_serverd: cannot open root %s: %s\n", root.c_str(),
                 std::strerror(errno));
    return 1;
  }

  netserv::GroupCommitter committer(netserv::GroupCommitter::Options{
      .max_wait_us = FlagU64(argc, argv, "--gc-window-us", 500),
      .max_batch = FlagU64(argc, argv, "--gc-batch", 64),
      .barrier = netserv::GroupCommitter::Barrier::kSyncfs,
      .syncfs_fd = root_fd,
  });
  if (group_commit) {
    committer.Start();
  }

  goosefs::PosixFilesys::Options fs_options;
  fs_options.cache_dir_fds = true;
  fs_options.fsync_dirs = true;
  fs_options.fsyncer = group_commit ? &committer : nullptr;
  if (!FlagSet(argc, argv, "--no-relaxed-spool")) {
    // Recover() reconciles the spool after a crash, so spool-entry
    // dirsyncs buy nothing: skip them (2 barriers per delivery, not 4).
    fs_options.recovery_reconciled_dirs = {"spool"};
  }
  goosefs::PosixFilesys fs(root, fs_options);
  Status s = fs.EnsureDirs(mailboat::Mailboat::DirLayout(users), /*clear_contents=*/false);
  if (!s.ok()) {
    std::fprintf(stderr, "mail_serverd: EnsureDirs: %s\n", s.ToString().c_str());
    return 1;
  }

  goose::World world;
  mailboat::Mailboat mail(&world, &fs, mailboat::Mailboat::Options{users, 4096, 512, 42});
  proc::RunSyncVoid(mail.Recover());

  netserv::MailNetServer::Options server_options;
  server_options.smtp_port = static_cast<uint16_t>(FlagU64(argc, argv, "--smtp-port", 0));
  server_options.pop3_port = static_cast<uint16_t>(FlagU64(argc, argv, "--pop3-port", 0));
  server_options.num_loops = FlagU64(argc, argv, "--loops", 2);
  server_options.num_executors = FlagU64(argc, argv, "--executors", 64);
  netserv::MailNetServer server(&mail, server_options);
  if (!server.Start()) {
    return 1;
  }

  std::printf("ports %u %u\n", server.smtp_port(), server.pop3_port());
  std::fflush(stdout);
  std::fprintf(stderr,
               "mail_serverd: root=%s users=%llu loops=%llu executors=%llu group_commit=%s\n",
               root.c_str(), static_cast<unsigned long long>(users),
               static_cast<unsigned long long>(server_options.num_loops),
               static_cast<unsigned long long>(server_options.num_executors),
               group_commit ? "on" : "off");

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  server.Stop();
  committer.Stop();
  ::close(root_fd);
  std::fprintf(stderr, "mail_serverd: served %llu lines over %llu connections\n",
               static_cast<unsigned long long>(server.lines_served()),
               static_cast<unsigned long long>(server.accepted()));
  return 0;
}
