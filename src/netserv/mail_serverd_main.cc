// The production mail daemon: Mailboat over PosixFilesys behind a
// multi-threaded epoll SMTP/POP3 front end, with group-commit fsync
// batching (DESIGN.md §14) and a hostile-disk fault envelope (§15).
//
// Quickstart:
//   mail_serverd --root /tmp/mail --smtp-port 2525 --pop3-port 1110
//   bench_loadgen --smtp-port 2525 --pop3-port 1110 --clients 64
//
// Prints one line "ports <smtp> <pop3>" to stdout once listening (so a
// parent process driving ephemeral ports can read them back), then serves
// until SIGINT (fast stop) or SIGTERM (graceful drain: stop accepting,
// flush in-flight acks, then exit).
//
// --supervise runs a tiny restart supervisor: the server runs in a child
// process; if the child dies (crash, OOM kill), the supervisor re-forks it
// with bounded exponential backoff, and the fresh child re-runs Mailboat's
// Recover against the surviving store — the same crash-restart contract the
// crashreal harness checks, now available in production form. Signals sent
// to the supervisor are forwarded to the child.
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "src/fault/syscall_fault.h"
#include "src/goose/world.h"
#include "src/goosefs/posix_fs.h"
#include "src/mailboat/mailboat.h"
#include "src/netserv/group_commit.h"
#include "src/netserv/server.h"
#include "src/proc/task.h"

namespace {

std::atomic<bool> g_stop{false};
std::atomic<bool> g_drain{false};  // SIGTERM: drain before stopping

void OnSignal(int signum) {
  if (signum == SIGTERM) {
    g_drain.store(true);
  }
  g_stop.store(true);
}

// Supervisor state: the handler forwards the signal straight to the child
// (kill(2) is async-signal-safe) so a drain request reaches the server.
volatile pid_t g_child = -1;

void OnSupervisorSignal(int signum) {
  g_stop.store(true);
  pid_t child = g_child;
  if (child > 0) {
    ::kill(child, signum);
  }
}

uint64_t FlagU64(int argc, char** argv, const char* name, uint64_t def) {
  std::string want = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.compare(0, want.size(), want) == 0) {
      return std::strtoull(arg.c_str() + want.size(), nullptr, 10);
    }
  }
  return def;
}

std::string FlagStr(int argc, char** argv, const char* name, const std::string& def) {
  std::string want = std::string(name) + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.compare(0, want.size(), want) == 0) {
      return arg.substr(want.size());
    }
  }
  return def;
}

bool FlagSet(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == name) {
      return true;
    }
  }
  return false;
}

int RunServer(int argc, char** argv) {
  using namespace perennial;

  std::string root = FlagStr(argc, argv, "--root", "/tmp/perennial-mail");
  uint64_t users = FlagU64(argc, argv, "--users", 100);
  bool group_commit = !FlagSet(argc, argv, "--no-group-commit");

  ::mkdir(root.c_str(), 0755);  // best effort; EnsureDirs handles the rest

  // A directory fd on the store's filesystem anchors the syncfs barrier.
  int root_fd = ::open(root.c_str(), O_DIRECTORY | O_RDONLY);
  if (root_fd < 0) {
    std::fprintf(stderr, "mail_serverd: cannot open root %s: %s\n", root.c_str(),
                 std::strerror(errno));
    return 1;
  }

  // Hostile-disk mode (soaks and demos): inject syscall faults at the
  // configured rates into the data path and the commit barriers.
  std::unique_ptr<fault::FaultInjectingSyscalls> faults;
  std::string fault_spec = FlagStr(argc, argv, "--fault-plan", "");
  if (!fault_spec.empty()) {
    Result<fault::SyscallFaultPlan> plan = fault::SyscallFaultPlan::Parse(fault_spec);
    if (!plan.ok()) {
      std::fprintf(stderr, "mail_serverd: %s\n", plan.status().ToString().c_str());
      return 1;
    }
    if (plan.value().Any()) {
      faults = std::make_unique<fault::FaultInjectingSyscalls>(plan.value());
    }
  }

  netserv::GroupCommitter committer(netserv::GroupCommitter::Options{
      .max_wait_us = FlagU64(argc, argv, "--gc-window-us", 500),
      .max_batch = FlagU64(argc, argv, "--gc-batch", 64),
      .barrier = netserv::GroupCommitter::Barrier::kSyncfs,
      .syncfs_fd = root_fd,
      .sys = faults.get(),
  });
  if (group_commit) {
    committer.Start();
  }

  goosefs::PosixFilesys::Options fs_options;
  fs_options.cache_dir_fds = true;
  fs_options.fsync_dirs = true;
  fs_options.fsyncer = group_commit ? &committer : nullptr;
  if (!FlagSet(argc, argv, "--no-relaxed-spool")) {
    // Recover() reconciles the spool after a crash, so spool-entry
    // dirsyncs buy nothing: skip them (2 barriers per delivery, not 4).
    fs_options.recovery_reconciled_dirs = {"spool"};
  }
  fs_options.sys = faults.get();
  goosefs::PosixFilesys fs(root, fs_options);
  Status s = fs.EnsureDirs(mailboat::Mailboat::DirLayout(users), /*clear_contents=*/false);
  if (!s.ok()) {
    std::fprintf(stderr, "mail_serverd: EnsureDirs: %s\n", s.ToString().c_str());
    return 1;
  }

  goose::World world;
  mailboat::Mailboat mail(&world, &fs, mailboat::Mailboat::Options{users, 4096, 512, 42});
  proc::RunSyncVoid(mail.Recover());

  netserv::MailNetServer::Options server_options;
  server_options.smtp_port = static_cast<uint16_t>(FlagU64(argc, argv, "--smtp-port", 0));
  server_options.pop3_port = static_cast<uint16_t>(FlagU64(argc, argv, "--pop3-port", 0));
  server_options.num_loops = FlagU64(argc, argv, "--loops", 2);
  server_options.num_executors = FlagU64(argc, argv, "--executors", 64);
  server_options.idle_timeout_ms = FlagU64(argc, argv, "--idle-timeout-ms", 0);
  server_options.max_conns = FlagU64(argc, argv, "--max-conns", 0);
  netserv::MailNetServer server(&mail, server_options);
  if (!server.Start()) {
    return 1;
  }

  std::printf("ports %u %u\n", server.smtp_port(), server.pop3_port());
  std::fflush(stdout);
  std::fprintf(stderr,
               "mail_serverd: root=%s users=%llu loops=%llu executors=%llu group_commit=%s%s\n",
               root.c_str(), static_cast<unsigned long long>(users),
               static_cast<unsigned long long>(server_options.num_loops),
               static_cast<unsigned long long>(server_options.num_executors),
               group_commit ? "on" : "off", faults != nullptr ? " fault-plan=on" : "");

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  if (g_drain.load()) {
    // SIGTERM: graceful. Stop admitting, let in-flight commands finish and
    // their acks reach the wire, then tear down.
    bool drained = server.Drain(FlagU64(argc, argv, "--drain-ms", 5000));
    std::fprintf(stderr, "mail_serverd: drain %s (%llu conns shed)\n",
                 drained ? "complete" : "timed out",
                 static_cast<unsigned long long>(server.shed_connects()));
  }
  server.Stop();
  committer.Stop();
  ::close(root_fd);
  std::fprintf(stderr, "mail_serverd: served %llu lines over %llu connections\n",
               static_cast<unsigned long long>(server.lines_served()),
               static_cast<unsigned long long>(server.accepted()));
  if (faults != nullptr) {
    std::fprintf(stderr, "mail_serverd: injected %s\n", faults->InjectedSummary().c_str());
  }
  return 0;
}

// Crash-restart supervisor: fork the server, wait, re-fork on abnormal
// death with bounded exponential backoff (100ms doubling to 5s, reset
// after a child survives 10s). The restarted child re-runs Recover against
// the store the dead one left behind — acked mail survives, spool orphans
// are reaped. A child that exits cleanly (or a forwarded signal) ends the
// supervisor too.
int RunSupervisor(int argc, char** argv) {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnSupervisorSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  uint64_t backoff_ms = 100;
  constexpr uint64_t kBackoffCapMs = 5000;
  uint64_t restarts = 0;
  uint64_t max_restarts = FlagU64(argc, argv, "--max-restarts", 0);  // 0 = unlimited

  while (!g_stop.load()) {
    auto born = std::chrono::steady_clock::now();
    pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "mail_serverd: fork: %s\n", std::strerror(errno));
      return 1;
    }
    if (pid == 0) {
      // Child: a fresh server generation. Reset inherited handler state.
      ::signal(SIGINT, SIG_DFL);
      ::signal(SIGTERM, SIG_DFL);
      ::_exit(RunServer(argc, argv));
    }
    g_child = pid;
    int wstatus = 0;
    pid_t waited;
    do {
      waited = ::waitpid(pid, &wstatus, 0);
    } while (waited < 0 && errno == EINTR && !g_stop.load());
    g_child = -1;
    if (waited < 0) {
      // Interrupted by our own shutdown signal: the handler already
      // forwarded it; reap the child and exit.
      ::waitpid(pid, &wstatus, 0);
    }
    if (g_stop.load()) {
      return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 0;
    }
    if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) {
      return 0;  // clean exit: nothing to supervise
    }
    auto lived = std::chrono::steady_clock::now() - born;
    if (lived >= std::chrono::seconds(10)) {
      backoff_ms = 100;  // the last incarnation was healthy; forgive
    }
    ++restarts;
    if (max_restarts != 0 && restarts > max_restarts) {
      std::fprintf(stderr, "mail_serverd: giving up after %llu restarts\n",
                   static_cast<unsigned long long>(max_restarts));
      return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 1;
    }
    if (WIFSIGNALED(wstatus)) {
      std::fprintf(stderr, "mail_serverd: child killed by signal %d; restart #%llu in %llums\n",
                   WTERMSIG(wstatus), static_cast<unsigned long long>(restarts),
                   static_cast<unsigned long long>(backoff_ms));
    } else {
      std::fprintf(stderr, "mail_serverd: child exited %d; restart #%llu in %llums\n",
                   WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1,
                   static_cast<unsigned long long>(restarts),
                   static_cast<unsigned long long>(backoff_ms));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, kBackoffCapMs);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (FlagSet(argc, argv, "--help")) {
    std::printf(
        "usage: mail_serverd [--root=DIR] [--smtp-port=N] [--pop3-port=N]\n"
        "                    [--users=N] [--loops=N] [--executors=N]\n"
        "                    [--gc-window-us=N] [--gc-batch=N] [--no-group-commit]\n"
        "                    [--no-relaxed-spool] [--fault-plan=key=rate,...]\n"
        "                    [--idle-timeout-ms=N] [--max-conns=N] [--drain-ms=N]\n"
        "                    [--supervise] [--max-restarts=N]\n");
    return 0;
  }
  if (FlagSet(argc, argv, "--supervise")) {
    return RunSupervisor(argc, argv);
  }
  return RunServer(argc, argv);
}
