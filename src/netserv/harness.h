// In-process server bundle: PosixFilesys + GroupCommitter + Mailboat +
// MailNetServer wired together in the production configuration, for
// benchmarks and tests that want a real server on ephemeral loopback ports
// without forking a daemon.
//
// Member order is the teardown order in reverse: the server stops first
// (executors finish their in-flight barriers), then the committer, then
// the filesystem and its root fd.
#ifndef PERENNIAL_SRC_NETSERV_HARNESS_H_
#define PERENNIAL_SRC_NETSERV_HARNESS_H_

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>

#include "src/base/panic.h"
#include "src/fault/syscall_fault.h"
#include "src/goose/world.h"
#include "src/goosefs/posix_fs.h"
#include "src/mailboat/mailboat.h"
#include "src/netserv/group_commit.h"
#include "src/netserv/server.h"
#include "src/proc/task.h"

namespace perennial::netserv {

class InprocMailServer {
 public:
  struct Config {
    std::string root;
    uint64_t users = 8;
    bool group_commit = true;
    uint64_t gc_window_us = 500;
    uint64_t gc_batch = 64;
    GroupCommitter::Barrier barrier = GroupCommitter::Barrier::kSyncfs;
    uint64_t loops = 2;
    uint64_t executors = 64;
    bool clear_store = true;
    // Skip spool-entry dirsyncs; Mailboat's Recover reconciles the spool,
    // so this halves Deliver's durability barriers without weakening the
    // acked => durable guarantee (see PosixFilesys::Options).
    bool relaxed_spool = true;
    // Hostile-disk mode: when the plan has any nonzero rate, a seeded
    // FaultInjectingSyscalls is interposed on every data-path syscall of
    // both the filesystem and the group committer's barriers. Recovery and
    // setup paths (EnsureDirs, Recover's List) stay raw — see
    // PosixFilesys::Options::sys.
    fault::SyscallFaultPlan fault_plan;
    // Passed through to MailNetServer (0 = off/unlimited).
    uint64_t idle_timeout_ms = 0;
    uint64_t max_conns = 0;
    TraceLog* trace = nullptr;
  };

  explicit InprocMailServer(Config config) : config_(std::move(config)) {}

  ~InprocMailServer() { Stop(); }

  bool Start() {
    ::mkdir(config_.root.c_str(), 0755);
    root_fd_ = ::open(config_.root.c_str(), O_DIRECTORY | O_RDONLY);
    if (root_fd_ < 0) {
      return false;
    }
    if (config_.fault_plan.Any()) {
      faults_ = std::make_unique<fault::FaultInjectingSyscalls>(config_.fault_plan);
    }
    committer_ = std::make_unique<GroupCommitter>(GroupCommitter::Options{
        .max_wait_us = config_.gc_window_us,
        .max_batch = config_.gc_batch,
        .barrier = config_.barrier,
        .syncfs_fd = root_fd_,
        .sys = faults_.get(),
    });
    if (config_.group_commit) {
      committer_->Start();
    }
    goosefs::PosixFilesys::Options fs_options;
    fs_options.cache_dir_fds = true;
    fs_options.fsync_dirs = true;
    fs_options.fsyncer = config_.group_commit ? committer_.get() : nullptr;
    if (config_.relaxed_spool) {
      fs_options.recovery_reconciled_dirs = {"spool"};
    }
    fs_options.sys = faults_.get();
    fs_ = std::make_unique<goosefs::PosixFilesys>(config_.root, fs_options);
    if (!fs_->EnsureDirs(mailboat::Mailboat::DirLayout(config_.users), config_.clear_store).ok()) {
      return false;
    }
    world_ = std::make_unique<goose::World>();
    mail_ = std::make_unique<mailboat::Mailboat>(
        world_.get(), fs_.get(), mailboat::Mailboat::Options{config_.users, 4096, 512, 42});
    proc::RunSyncVoid(mail_->Recover());
    MailNetServer::Options server_options;
    server_options.num_loops = config_.loops;
    server_options.num_executors = config_.executors;
    server_options.idle_timeout_ms = config_.idle_timeout_ms;
    server_options.max_conns = config_.max_conns;
    server_options.trace = config_.trace;
    server_ = std::make_unique<MailNetServer>(mail_.get(), server_options);
    return server_->Start();
  }

  void Stop() {
    if (server_ != nullptr) {
      server_->Stop();
    }
    if (committer_ != nullptr) {
      committer_->Stop();
    }
    if (root_fd_ >= 0) {
      ::close(root_fd_);
      root_fd_ = -1;
    }
  }

  uint16_t smtp_port() const { return server_->smtp_port(); }
  uint16_t pop3_port() const { return server_->pop3_port(); }
  MailNetServer* server() { return server_.get(); }
  GroupCommitter* committer() { return committer_.get(); }
  mailboat::Mailboat* mail() { return mail_.get(); }
  goosefs::PosixFilesys* fs() { return fs_.get(); }
  // Null unless the config's fault plan has a nonzero rate.
  fault::FaultInjectingSyscalls* faults() { return faults_.get(); }

 private:
  Config config_;
  int root_fd_ = -1;
  std::unique_ptr<fault::FaultInjectingSyscalls> faults_;
  std::unique_ptr<GroupCommitter> committer_;
  std::unique_ptr<goosefs::PosixFilesys> fs_;
  std::unique_ptr<goose::World> world_;
  std::unique_ptr<mailboat::Mailboat> mail_;
  std::unique_ptr<MailNetServer> server_;
};

}  // namespace perennial::netserv

#endif  // PERENNIAL_SRC_NETSERV_HARNESS_H_
