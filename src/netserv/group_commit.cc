#include "src/netserv/group_commit.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "src/base/panic.h"

namespace perennial::netserv {

namespace {

template <typename Fn>
int RetryEintr(Fn&& fn) {
  int rc;
  do {
    rc = fn();
  } while (rc < 0 && errno == EINTR);
  return rc;
}

}  // namespace

Status GroupCommitter::FsyncDirect(int fd) {
  if (RetryEintr([&] { return Sys().Fsync(fd); }) != 0) {
    return Status::Failed(std::string("fsync: ") + std::strerror(errno));
  }
  return Status::Ok();
}

GroupCommitter::GroupCommitter(Options options) : options_(options) {
  if (options_.barrier == Barrier::kSyncfs) {
    PCC_ENSURE(options_.syncfs_fd >= 0, "GroupCommitter: kSyncfs needs syncfs_fd");
  }
}

GroupCommitter::~GroupCommitter() { Stop(); }

void GroupCommitter::Start() {
  std::scoped_lock lock(mu_);
  PCC_ENSURE(!running_, "GroupCommitter: started twice");
  running_ = true;
  stop_ = false;
  committer_ = std::thread([this] { CommitterMain(); });
}

void GroupCommitter::Stop() {
  {
    std::scoped_lock lock(mu_);
    if (!running_) {
      return;
    }
    stop_ = true;
  }
  work_cv_.notify_all();
  committer_.join();
  std::scoped_lock lock(mu_);
  running_ = false;
}

void GroupCommitter::OnDirty(int fd) {
  std::scoped_lock lock(mu_);
  dirty_.insert(fd);
}

void GroupCommitter::OnClose(int fd) {
  std::scoped_lock lock(mu_);
  dirty_.erase(fd);
  poisoned_.erase(fd);
}

Status GroupCommitter::Fsync(int fd) {
  std::unique_lock<std::mutex> lock(mu_);
  if (poisoned_.count(fd) != 0) {
    // A failed barrier dropped this fd's dirty pages; a new barrier
    // "succeeding" now would ack data that never reached media. Fail until
    // the fd is closed and the file rewritten through a fresh one.
    stats_.poisoned_fails.fetch_add(1, std::memory_order_relaxed);
    return Status::Failed("fsync: fd poisoned by an earlier failed barrier");
  }
  if (!running_ || stop_) {
    lock.unlock();
    return FsyncDirect(fd);
  }
  if (open_ == nullptr) {
    open_ = std::make_shared<Batch>();
    work_cv_.notify_one();
  }
  std::shared_ptr<Batch> batch = open_;
  batch->fds.push_back(fd);
  if (batch->fds.size() >= options_.max_batch) {
    work_cv_.notify_one();
  }
  batch->done_cv.wait(lock, [&] { return batch->committed; });
  return batch->status;
}

void GroupCommitter::CommitterMain() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || open_ != nullptr; });
    if (open_ == nullptr) {
      // stop with no pending work
      return;
    }
    // Hold the batch open for the latency window (or until it fills), but
    // close early once arrivals go quiet: sessions blocked on THIS barrier
    // cannot submit again until it commits, so a quiet period means the
    // stragglers we are waiting for do not exist and the rest of the window
    // would be pure idle time.
    auto deadline = std::chrono::steady_clock::now() + std::chrono::microseconds(options_.max_wait_us);
    uint64_t quiet = std::min(options_.quiet_us, options_.max_wait_us);
    for (;;) {
      size_t before = open_->fds.size();
      if (before >= options_.max_batch || stop_) {
        break;
      }
      auto slice = std::chrono::steady_clock::now() + std::chrono::microseconds(quiet);
      bool closed = work_cv_.wait_until(lock, std::min(slice, deadline), [&] {
        return stop_ || open_->fds.size() >= options_.max_batch;
      });
      if (closed || std::chrono::steady_clock::now() >= deadline) {
        break;
      }
      if (open_->fds.size() == before) {
        break;  // a full quiet slice with no arrivals: commit now
      }
    }
    std::shared_ptr<Batch> batch = std::move(open_);
    open_ = nullptr;
    std::vector<int> fds = batch->fds;  // fds stay open: every owner is blocked in Fsync()
    lock.unlock();

    Status s = IssueBarrier(std::move(fds));

    lock.lock();
    stats_.requests.fetch_add(batch->fds.size(), std::memory_order_relaxed);
    stats_.batches.fetch_add(1, std::memory_order_relaxed);
    if (s.ok()) {
      // The barrier covered everything dirty at close time. Under kSyncfs
      // it covered every dirty fd on the filesystem; under kFsyncPerFd,
      // exactly the batch's fds.
      if (options_.barrier == Barrier::kSyncfs) {
        dirty_.clear();
      } else {
        for (int fd : batch->fds) {
          dirty_.erase(fd);
        }
      }
    } else {
      stats_.failed_batches.fetch_add(1, std::memory_order_relaxed);
      // Sticky failure: the kernel dropped the dirty pages it could not
      // write. Poison every fd that had unsynced file data — including
      // fds whose owners are still buffering in the open batch — and fail
      // the open batch's waiters outright rather than issuing them a
      // trivially-"successful" barrier over already-dropped pages.
      for (int fd : dirty_) {
        poisoned_.insert(fd);
      }
      dirty_.clear();
      if (open_ != nullptr) {
        std::shared_ptr<Batch> doomed = std::move(open_);
        open_ = nullptr;
        stats_.requests.fetch_add(doomed->fds.size(), std::memory_order_relaxed);
        doomed->status = Status::Failed("group commit: preceding barrier failed (" +
                                        s.ToString() + ")");
        doomed->committed = true;
        doomed->done_cv.notify_all();
      }
    }
    batch->status = s;
    batch->committed = true;
    batch->done_cv.notify_all();
    if (stop_ && open_ == nullptr) {
      return;
    }
  }
}

Status GroupCommitter::IssueBarrier(std::vector<int> fds) {
  uint64_t total = fds.size();
  std::sort(fds.begin(), fds.end());
  fds.erase(std::unique(fds.begin(), fds.end()), fds.end());
  stats_.deduped.fetch_add(total - fds.size(), std::memory_order_relaxed);

  if (options_.barrier == Barrier::kSyncfs) {
    stats_.fsyncs_issued.fetch_add(1, std::memory_order_relaxed);
    if (RetryEintr([&] { return Sys().Syncfs(options_.syncfs_fd); }) == 0) {
      return Status::Ok();
    }
    // syncfs failed (exotic, but possible): fall back to per-fd fsync so
    // waiters still get a truthful answer. A failure here is still sticky
    // for everything that was dirty — CommitterMain poisons on error.
  }
  Status result = Status::Ok();
  for (int fd : fds) {
    stats_.fsyncs_issued.fetch_add(1, std::memory_order_relaxed);
    Status s = FsyncDirect(fd);
    if (!s.ok() && result.ok()) {
      result = s;
    }
  }
  return result;
}

}  // namespace perennial::netserv
