#include "src/mailboat/mailboat.h"

#include <algorithm>

#include "src/base/panic.h"
#include "src/base/strutil.h"
#include "src/proc/footprint.h"

namespace perennial::mailboat {

Mailboat::Mailboat(goose::World* world, goosefs::Filesys* fs, Options options, Mutations mutations)
    : world_(world),
      fs_(fs),
      options_(options),
      mutations_(mutations),
      dir_leases_(world),
      rng_(options.rng_seed),
      rng_res_(proc::MixResource(proc::kResRng, world->NextResourceId())),
      lease_res_seed_(world->NextResourceId()) {
  user_dirs_.reserve(options_.num_users);
  for (uint64_t u = 0; u < options_.num_users; ++u) {
    user_dirs_.push_back(UserDir(u));
  }
  InitVolatile();
}

std::vector<std::string> Mailboat::DirLayout(uint64_t num_users) {
  std::vector<std::string> dirs;
  dirs.reserve(num_users + 1);
  dirs.push_back("spool");
  for (uint64_t u = 0; u < num_users; ++u) {
    dirs.push_back(UserDir(u));
  }
  return dirs;
}

void Mailboat::InitVolatile() {
  pickup_leases_.clear();
  user_locks_.clear();
  user_locks_.reserve(options_.num_users);
  for (uint64_t u = 0; u < options_.num_users; ++u) {
    user_locks_.push_back(std::make_unique<goose::Mutex>(world_));
  }
}

uint64_t Mailboat::NextRandomId() {
  // The draw order is shared state: it decides which ids concurrent
  // deliveries end up with, so two drawing steps never commute.
  proc::RecordAccess(rng_res_, /*write=*/true);
  std::scoped_lock lock(rng_mu_);
  return rng_.Next();
}

proc::Task<Result<std::vector<Message>>> Mailboat::Pickup(uint64_t user) {
  PCC_ENSURE(user < options_.num_users, "Pickup: no such user");
  co_await user_locks_[user]->Lock();  // released by Unlock() (or below on error)
  Result<std::vector<std::string>> names = co_await fs_->List(UserDirRef(user));
  if (!names.ok()) {
    co_await user_locks_[user]->Unlock();
    co_return names.status();
  }
  std::vector<Message> messages;
  messages.reserve(names.value().size());
  for (const std::string& name : names.value()) {
    Result<goosefs::Fd> fd = co_await fs_->Open(UserDirRef(user), name);
    // The pickup/delete lock guarantees listed names persist and delivery
    // never removes mailbox entries, so a failure here is an I/O error
    // (EIO on a degrading disk), not a vanished message: release the lock
    // and tempfail the session.
    if (!fd.ok()) {
      co_await user_locks_[user]->Unlock();
      co_return fd.status();
    }
    std::string contents;
    uint64_t off = 0;
    Status read_failed = Status::Ok();
    while (true) {
      Result<goosefs::Bytes> chunk = co_await fs_->ReadAt(fd.value(), off, options_.read_size);
      if (!chunk.ok()) {
        read_failed = chunk.status();
        break;
      }
      contents.append(chunk.value().begin(), chunk.value().end());
      if (!mutations_.pickup_512_loop) {
        off += chunk.value().size();
      }
      // §9.5 bug mode: `off` never advances, so a message of read_size
      // bytes or more re-reads the same full chunk forever.
      if (chunk.value().size() < options_.read_size) {
        break;
      }
    }
    (void)co_await fs_->Close(fd.value());
    if (!read_failed.ok()) {
      co_await user_locks_[user]->Unlock();
      co_return read_failed;
    }
    messages.push_back(Message{name, std::move(contents)});
  }
  // Take the lower-bound lease (§8.3): the mailbox contains at least the
  // names just listed; the holder may delete exactly those, and concurrent
  // deliveries remain free to add more.
  {
    proc::RecordAccess(proc::MixResource(proc::kResRegistry, lease_res_seed_, user),
                       /*write=*/true);
    std::scoped_lock host_lock(pickup_leases_mu_);
    pickup_leases_[user] = dir_leases_.Acquire(UserDirRef(user), names.value());
  }
  co_return messages;
}

proc::Task<Result<std::string>> Mailboat::Deliver(uint64_t user, const goosefs::Bytes& msg) {
  // Plain-buffer delivery: the chunk reader copies out of a stable vector.
  // (Bound to named locals and a split co_return: GCC 12 double-destroys
  // owning temporaries inside `co_return co_await f(...)` expressions.)
  goosefs::Bytes copy = msg;
  uint64_t len = copy.size();
  ChunkReader reader = [copy = std::move(copy)](uint64_t off,
                                                uint64_t n) -> proc::Task<goosefs::Bytes> {
    uint64_t end = std::min<uint64_t>(off + n, copy.size());
    co_return goosefs::Bytes(copy.begin() + static_cast<long>(off),
                             copy.begin() + static_cast<long>(end));
  };
  Result<std::string> id = co_await DeliverChunked(user, len, std::move(reader));
  co_return id;
}

proc::Task<Result<std::string>> Mailboat::DeliverChunked(uint64_t user, uint64_t len,
                                                         ChunkReader read_chunk) {
  PCC_ENSURE(user < options_.num_users, "Deliver: no such user");

  if (mutations_.deliver_in_place) {
    // Bug: write directly into the mailbox. The file is visible (and
    // partially empty) from its creation until the last append.
    std::string name = "msg-" + HexId(NextRandomId());
    Result<goosefs::Fd> fd = co_await fs_->Create(UserDirRef(user), name);
    while (!fd.ok()) {
      name = "msg-" + HexId(NextRandomId());
      fd = co_await fs_->Create(UserDirRef(user), name);
    }
    for (uint64_t off = 0; off < len; off += options_.chunk_size) {
      goosefs::Bytes chunk = co_await read_chunk(off, std::min(options_.chunk_size, len - off));
      (void)co_await fs_->Append(fd.value(), chunk);
    }
    (void)co_await fs_->Close(fd.value());
    co_return name;
  }

  // 1. Spool the message under a fresh random name (exclusive create;
  //    retry on collision only — an I/O error (ENOSPC, EIO) propagates so
  //    the session tempfails instead of hammering new names forever).
  //    Names build in place ("tmp-" + 16 hex digits, one allocation,
  //    reused across collision retries).
  std::string tmp_name = "tmp-";
  AppendHexId(tmp_name, NextRandomId());
  Result<goosefs::Fd> fd = co_await fs_->Create("spool", tmp_name);
  while (!fd.ok()) {
    if (fd.status().code() != StatusCode::kAlreadyExists) {
      co_return fd.status();
    }
    tmp_name.resize(4);
    AppendHexId(tmp_name, NextRandomId());
    fd = co_await fs_->Create("spool", tmp_name);
  }
  // 2. Write the body chunk_size bytes at a time (the caller must not
  //    mutate the buffer concurrently — §8.3). Any failure before the
  //    mailbox link leaves only a spool orphan: unlink it best-effort
  //    (Recover's spool sweep reaps it if even that fails) and tempfail —
  //    nothing was acked, so nothing needs to be durable.
  Status spooled = Status::Ok();
  for (uint64_t off = 0; off < len && spooled.ok(); off += options_.chunk_size) {
    goosefs::Bytes chunk = co_await read_chunk(off, std::min(options_.chunk_size, len - off));
    spooled = co_await fs_->Append(fd.value(), chunk);
  }
  if (spooled.ok() && options_.sync_on_deliver) {
    spooled = co_await fs_->Sync(fd.value());
  }
  Status closed = co_await fs_->Close(fd.value());
  if (spooled.ok()) {
    spooled = closed;
  }
  if (!spooled.ok()) {
    (void)co_await fs_->Delete("spool", tmp_name);
    co_return spooled;
  }
  // 3. Atomically link the complete file into the mailbox (retry the name
  //    on collision), then drop the spool entry. A link I/O error —
  //    including a failed destination-dir sync, after which the entry may
  //    exist but isn't known durable — compensates by unlinking both names
  //    best-effort: the message was never acked, and a surviving mailbox
  //    entry whose unlink also failed is indistinguishable from a crash
  //    during delivery (clients must tolerate duplicates on retry).
  std::string msg_name = "msg-";
  AppendHexId(msg_name, NextRandomId());
  while (true) {
    Result<bool> linked = co_await fs_->Link("spool", tmp_name, UserDirRef(user), msg_name);
    if (!linked.ok()) {
      (void)co_await fs_->Delete(UserDirRef(user), msg_name);
      (void)co_await fs_->Delete("spool", tmp_name);
      co_return linked.status();
    }
    if (linked.value()) {
      break;
    }
    msg_name.resize(4);
    AppendHexId(msg_name, NextRandomId());
  }
  (void)co_await fs_->Delete("spool", tmp_name);
  co_return msg_name;
}

proc::Task<Status> Mailboat::Delete(uint64_t user, const std::string& id) {
  PCC_ENSURE(user < options_.num_users, "Delete: no such user");
  {
    // CheckDelete shrinks the lease's bound: a write, not just a lookup.
    proc::RecordAccess(proc::MixResource(proc::kResRegistry, lease_res_seed_, user),
                       /*write=*/true);
    std::scoped_lock host_lock(pickup_leases_mu_);
    auto lease_it = pickup_leases_.find(user);
    if (lease_it == pickup_leases_.end()) {
      RaiseUb("Delete without a pickup lease (no Pickup, or after a crash)");
    }
    dir_leases_.CheckDelete(lease_it->second, id);
  }
  Status s = co_await fs_->Delete(UserDirRef(user), id);
  if (!s.ok()) {
    if (s.code() == StatusCode::kNotFound) {
      // The caller broke the contract (§8.1: only delete ids Pickup
      // listed, while holding the lock).
      RaiseUb("Delete: message '" + id + "' does not exist");
    }
    // An I/O failure (EIO unlinking, failed dir sync): the message may
    // remain; the session tempfails the DELE and the lock stays held.
    co_return s;
  }
  co_return Status::Ok();
}

proc::Task<void> Mailboat::Unlock(uint64_t user) {
  PCC_ENSURE(user < options_.num_users, "Unlock: no such user");
  {
    proc::RecordAccess(proc::MixResource(proc::kResRegistry, lease_res_seed_, user),
                       /*write=*/true);
    std::scoped_lock host_lock(pickup_leases_mu_);
    auto lease_it = pickup_leases_.find(user);
    if (lease_it != pickup_leases_.end()) {
      dir_leases_.Release(lease_it->second);
      pickup_leases_.erase(lease_it);
    }
  }
  co_await user_locks_[user]->Unlock();
}

proc::Task<void> Mailboat::Recover() {
  InitVolatile();  // fresh locks for the new generation
  Result<std::vector<std::string>> spooled = co_await fs_->List("spool");
  PCC_ENSURE(spooled.ok(), "Recover: spool directory missing");
  for (const std::string& name : spooled.value()) {
    (void)co_await fs_->Delete("spool", name);
  }
  if (mutations_.recovery_deletes_mail) {
    for (uint64_t u = 0; u < options_.num_users; ++u) {
      Result<std::vector<std::string>> names = co_await fs_->List(UserDirRef(u));
      for (const std::string& name : names.value()) {
        (void)co_await fs_->Delete(UserDirRef(u), name);
      }
    }
  }
}

}  // namespace perennial::mailboat
