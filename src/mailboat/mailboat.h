// Mailboat: a concurrent, crash-safe mail server library (paper §8).
//
// Abstract state: one mailbox per user, mapping message ids to contents.
// The implementation stores each mailbox as a directory with one file per
// message, and spools deliveries in a separate directory before atomically
// hard-linking them into the mailbox (the shadow-copy pattern on files):
//
//   Pickup/Delete — serialized by a per-user lock, so a message listed by
//     Pickup cannot vanish before it is read.
//   Pickup/Deliver — deliveries never modify existing files; a message
//     becomes visible in one atomic Link, so readers never observe a
//     partially written message.
//   Deliver/Deliver — threads pick random ids and retry on collision, both
//     for the spool file (exclusive Create) and the mailbox entry (Link
//     fails if the destination exists).
//   Recover — unlinks leftover spool files (freeing space; the abstract
//     state does not mandate it) and rebuilds the volatile locks.
//
// The library runs against any goosefs::Filesys: the modeled GooseFs under
// the refinement checker, or the POSIX backend for real execution (the
// Figure 11 benchmark and the example servers).
#ifndef PERENNIAL_SRC_MAILBOAT_MAILBOAT_H_
#define PERENNIAL_SRC_MAILBOAT_MAILBOAT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/rand.h"
#include "src/cap/bounded_lease.h"
#include "src/goose/mutex.h"
#include "src/goose/world.h"
#include "src/goosefs/filesys.h"
#include "src/mailboat/mail_api.h"
#include "src/proc/task.h"

namespace perennial::mailboat {

struct Message {
  std::string id;
  std::string contents;

  friend bool operator==(const Message&, const Message&) = default;
};

// ChunkReader (the streaming Deliver input — §8.3: concurrent modification
// of the slice during delivery is undefined behavior, detected by the Goose
// heap) lives in mail_api.h so every MailApi backend can stream.

class Mailboat : public MailApi {
 public:
  struct Options {
    uint64_t num_users = 100;
    uint64_t chunk_size = 4096;  // deliver append granularity (paper: 4 KB)
    uint64_t read_size = 512;    // pickup read granularity (paper: 512 B)
    uint64_t rng_seed = 1;       // id randomness (deterministic per seed)
    // fsync the spooled message before linking it into the mailbox. With a
    // deferred-durability file system this is load-bearing: without it, a
    // crash can leave a *linked* message whose contents were never written
    // back (the classic zero-length-mail bug).
    bool sync_on_deliver = true;
  };
  struct Mutations {
    // §9.5's first bug: the read loop never advances its offset, so any
    // message of at least read_size bytes loops forever.
    bool pickup_512_loop = false;
    // Deliver writes straight into the mailbox (no spool + atomic link):
    // concurrent pickups can observe a partially written message.
    bool deliver_in_place = false;
    // Recovery "cleans up" the mailboxes too, destroying delivered mail.
    bool recovery_deletes_mail = false;
  };

  Mailboat(goose::World* world, goosefs::Filesys* fs, Options options, Mutations mutations);
  Mailboat(goose::World* world, goosefs::Filesys* fs, Options options)
      : Mailboat(world, fs, options, Mutations{}) {}

  // The fixed directory layout: spool/ plus one directory per user. Pass to
  // GooseFs's constructor or PosixFilesys::EnsureDirs before use.
  static std::vector<std::string> DirLayout(uint64_t num_users);

  // Lists the user's mail and *acquires the user's pickup/delete lock*;
  // the caller must eventually Unlock (the SMTP/POP3 frontends call Pickup
  // on connect and Unlock on disconnect). On error the lock has been
  // released and no lease is held.
  proc::Task<Result<std::vector<Message>>> Pickup(uint64_t user) override;

  // Durably delivers a message, returning its id. Safe to call from any
  // thread at any time, without locks. On error the delivery left no acked
  // state: partial spool/mailbox files are unlinked best-effort, and
  // anything that survives (an unlink that itself failed) is reaped by
  // Recover or is an unlisted mailbox entry that was never acked.
  proc::Task<Result<std::string>> Deliver(uint64_t user, const goosefs::Bytes& msg) override;
  // As Deliver, reading the body through `read_chunk` (`len` bytes total);
  // streams straight into the spool file, no intermediate body copy.
  proc::Task<Result<std::string>> DeliverChunked(uint64_t user, uint64_t len,
                                                 ChunkReader read_chunk) override;

  // Deletes one message; the caller must hold the user's lock and pass an
  // id previously returned by Pickup (anything else is undefined). A non-ok
  // status is an I/O failure; the message may remain.
  proc::Task<Status> Delete(uint64_t user, const std::string& id) override;

  proc::Task<void> Unlock(uint64_t user) override;

  // Post-crash: removes leftover spool files and rebuilds volatile state.
  proc::Task<void> Recover() override;

  uint64_t num_users() const override { return options_.num_users; }

 private:
  static std::string UserDir(uint64_t user) { return "user" + std::to_string(user); }
  // Hot paths use the pre-built name (a Deliver used to assemble
  // "user<N>" twice per message; Pickup once per message read).
  const std::string& UserDirRef(uint64_t user) const { return user_dirs_[user]; }
  uint64_t NextRandomId();
  void InitVolatile();

  goose::World* world_;
  goosefs::Filesys* fs_;
  Options options_;
  Mutations mutations_;
  std::vector<std::unique_ptr<goose::Mutex>> user_locks_;
  std::vector<std::string> user_dirs_;  // immutable after construction
  // §8.3's leasing strategy, enforced at runtime: the lock holder keeps a
  // lower-bound lease on the mailbox directory between Pickup and Unlock,
  // so deletes of un-listed names are capability violations.
  cap::BoundedLeaseRegistry dir_leases_;
  std::mutex pickup_leases_mu_;  // host-level guard (native benchmark threads)
  std::map<uint64_t, cap::BoundedLease> pickup_leases_;  // volatile, per user
  std::mutex rng_mu_;  // host-level: id generation is not a modeled effect
  Rng rng_;
  // DPOR footprints for the shared state above (DESIGN.md §10): the rng
  // draw order determines the ids every Deliver picks, and the pickup-lease
  // table is read/written across Pickup/Delete/Unlock, so steps touching
  // them must never look independent to the sleep-set reduction.
  uint64_t rng_res_ = 0;
  uint64_t lease_res_seed_ = 0;
};

}  // namespace perennial::mailboat

#endif  // PERENNIAL_SRC_MAILBOAT_MAILBOAT_H_
