#include "src/mailboat/gomail.h"

#include <chrono>
#include <thread>

#include "src/base/panic.h"
#include "src/base/strutil.h"

namespace perennial::mailboat {

GoMail::GoMail(goosefs::Filesys* fs, Options options)
    : fs_(fs), options_(options), rng_(options.rng_seed) {}

std::vector<std::string> GoMail::DirLayout(uint64_t num_users) {
  std::vector<std::string> dirs = Mailboat::DirLayout(num_users);
  dirs.push_back("locks");
  return dirs;
}

uint64_t GoMail::NextRandomId() {
  std::scoped_lock lock(rng_mu_);
  return rng_.Next();
}

void GoMail::PayOverhead() const {
  if (options_.overhead_ns_per_op == 0) {
    return;
  }
  // Busy-wait (not sleep): models executing more instructions per request,
  // which consumes CPU and therefore contends for cores like real work.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::nanoseconds(options_.overhead_ns_per_op);
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

proc::Task<void> GoMail::AcquireFileLock(uint64_t user) {
  // Several file-system calls per acquisition: exclusive create + close
  // (and unlink on release) — the cost the paper attributes to CMAIL's
  // locking (§9.3).
  while (true) {
    Result<goosefs::Fd> fd = co_await fs_->Create("locks", LockName(user));
    if (fd.ok()) {
      (void)co_await fs_->Close(fd.value());
      co_return;
    }
    PCC_ENSURE(fd.status().code() == StatusCode::kAlreadyExists, "file lock: create failed");
    std::this_thread::yield();  // native-mode politeness while spinning
  }
}

proc::Task<void> GoMail::ReleaseFileLock(uint64_t user) {
  Status s = co_await fs_->Delete("locks", LockName(user));
  PCC_ENSURE(s.ok(), "file lock: unlock of unheld lock");
}

proc::Task<Result<std::vector<Message>>> GoMail::Pickup(uint64_t user) {
  PayOverhead();
  co_await AcquireFileLock(user);
  Result<std::vector<std::string>> names = co_await fs_->List(UserDir(user));
  PCC_ENSURE(names.ok(), "GoMail pickup: user directory missing");
  std::vector<Message> messages;
  for (const std::string& name : names.value()) {
    Result<goosefs::Fd> fd = co_await fs_->Open(UserDir(user), name);
    PCC_ENSURE(fd.ok(), "GoMail pickup: listed message disappeared");
    std::string contents;
    uint64_t off = 0;
    while (true) {
      Result<goosefs::Bytes> chunk = co_await fs_->ReadAt(fd.value(), off, options_.read_size);
      PCC_ENSURE(chunk.ok(), "GoMail pickup: read failed");
      contents.append(chunk.value().begin(), chunk.value().end());
      off += chunk.value().size();
      if (chunk.value().size() < options_.read_size) {
        break;
      }
    }
    (void)co_await fs_->Close(fd.value());
    messages.push_back(Message{name, std::move(contents)});
  }
  co_return messages;
}

proc::Task<Result<std::string>> GoMail::Deliver(uint64_t user, const goosefs::Bytes& msg) {
  PayOverhead();
  // Conservative design: hold the mailbox file lock across delivery (see
  // the header comment — this is the cost of not having Mailboat's
  // atomic-visibility argument).
  co_await AcquireFileLock(user);
  std::string tmp_name = "tmp-" + HexId(NextRandomId());
  Result<goosefs::Fd> fd = co_await fs_->Create("spool", tmp_name);
  while (!fd.ok()) {
    PCC_ENSURE(fd.status().code() == StatusCode::kAlreadyExists, "GoMail: spool create failed");
    tmp_name = "tmp-" + HexId(NextRandomId());
    fd = co_await fs_->Create("spool", tmp_name);
  }
  for (uint64_t off = 0; off < msg.size(); off += options_.chunk_size) {
    uint64_t end = std::min<uint64_t>(off + options_.chunk_size, msg.size());
    goosefs::Bytes chunk(msg.begin() + static_cast<long>(off), msg.begin() + static_cast<long>(end));
    (void)co_await fs_->Append(fd.value(), chunk);
  }
  (void)co_await fs_->Close(fd.value());
  std::string msg_name = "msg-" + HexId(NextRandomId());
  while (true) {
    Result<bool> linked = co_await fs_->Link("spool", tmp_name, UserDir(user), msg_name);
    PCC_ENSURE(linked.ok(), "GoMail: link failed");
    if (linked.value()) {
      break;
    }
    msg_name = "msg-" + HexId(NextRandomId());
  }
  (void)co_await fs_->Delete("spool", tmp_name);
  co_await ReleaseFileLock(user);
  co_return msg_name;
}

proc::Task<Status> GoMail::Delete(uint64_t user, const std::string& id) {
  Status s = co_await fs_->Delete(UserDir(user), id);
  PCC_ENSURE(s.ok(), "GoMail delete: no such message");
  co_return Status::Ok();
}

proc::Task<void> GoMail::Unlock(uint64_t user) {
  co_await ReleaseFileLock(user);
}

proc::Task<void> GoMail::Recover() {
  Result<std::vector<std::string>> spooled = co_await fs_->List("spool");
  PCC_ENSURE(spooled.ok(), "GoMail recover: spool missing");
  for (const std::string& name : spooled.value()) {
    (void)co_await fs_->Delete("spool", name);
  }
  // Stale lock files from the crashed process must be cleared too — with
  // file locks, crash recovery has *more* to clean up than Mailboat.
  Result<std::vector<std::string>> locks = co_await fs_->List("locks");
  PCC_ENSURE(locks.ok(), "GoMail recover: locks dir missing");
  for (const std::string& name : locks.value()) {
    (void)co_await fs_->Delete("locks", name);
  }
}

}  // namespace perennial::mailboat
