// Checker harness for Mailboat: binds the library over the modeled GooseFs
// to MailSpec, with script-driven clients (a Delete must reference the ids
// its own Pickup returned, so clients are dynamic programs).
#ifndef PERENNIAL_SRC_MAILBOAT_MAIL_HARNESS_H_
#define PERENNIAL_SRC_MAILBOAT_MAIL_HARNESS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/goosefs/goosefs.h"
#include "src/refine/explorer.h"
#include "src/mailboat/mail_spec.h"
#include "src/mailboat/mailboat.h"

namespace perennial::mailboat {

struct MailAction {
  enum class Kind {
    kDeliver,               // deliver `contents` to `user`
    kPickupUnlock,          // read the mailbox, then release the lock
    kPickupDeleteAllUnlock  // read, delete everything listed, release
  };
  Kind kind = Kind::kDeliver;
  uint64_t user = 0;
  std::string contents;
};

struct MailHarnessOptions {
  uint64_t num_users = 1;
  uint64_t chunk_size = 2;  // small: keeps checker state spaces tight
  uint64_t read_size = 2;
  std::vector<std::vector<MailAction>> client_scripts;
  Mailboat::Mutations mutations;
  bool observe_mailboxes = true;
  // Deferred-durability extension: buffer file data until Sync.
  bool deferred_durability = false;
  bool sync_on_deliver = true;
  // Soundness control for footprint-equivalence tests: run the GooseFs with
  // blanket-opaque footprints (no DPOR pruning around fs steps).
  bool opaque_fs_footprints = false;
};

namespace detail {

inline proc::Task<void> RunScript(std::vector<MailAction> script,
                                  refine::OpRunner<MailSpec>* runner) {
  for (const MailAction& action : script) {
    switch (action.kind) {
      case MailAction::Kind::kDeliver: {
        (void)co_await runner->Run(MailSpec::MakeDeliver(action.user, action.contents));
        break;
      }
      case MailAction::Kind::kPickupUnlock: {
        (void)co_await runner->Run(MailSpec::MakePickup(action.user));
        (void)co_await runner->Run(MailSpec::MakeUnlock(action.user));
        break;
      }
      case MailAction::Kind::kPickupDeleteAllUnlock: {
        MailSpec::Ret listing = co_await runner->Run(MailSpec::MakePickup(action.user));
        for (const auto& [id, contents] : listing.msgs) {
          (void)co_await runner->Run(MailSpec::MakeDelete(action.user, id));
        }
        (void)co_await runner->Run(MailSpec::MakeUnlock(action.user));
        break;
      }
    }
  }
}

}  // namespace detail

inline refine::Instance<MailSpec> MakeMailInstance(const MailHarnessOptions& options) {
  struct Bundle {
    goose::World world;
    std::unique_ptr<goosefs::GooseFs> fs;
    std::unique_ptr<Mailboat> mail;
  };
  auto bundle = std::make_shared<Bundle>();
  bundle->fs = std::make_unique<goosefs::GooseFs>(
      &bundle->world, Mailboat::DirLayout(options.num_users),
      goosefs::GooseFs::Options{.deferred_durability = options.deferred_durability,
                                .opaque_footprints = options.opaque_fs_footprints});
  Mailboat::Options mail_options;
  mail_options.num_users = options.num_users;
  mail_options.chunk_size = options.chunk_size;
  mail_options.read_size = options.read_size;
  mail_options.rng_seed = 12345;
  mail_options.sync_on_deliver = options.sync_on_deliver;
  bundle->mail = std::make_unique<Mailboat>(&bundle->world, bundle->fs.get(), mail_options,
                                            options.mutations);
  Mailboat* mail = bundle->mail.get();

  refine::Instance<MailSpec> inst;
  inst.keep_alive = bundle;
  inst.world = &bundle->world;
  inst.run_op = [mail](int, uint64_t, MailSpec::Op op) -> proc::Task<MailSpec::Ret> {
    MailSpec::Ret ret;
    switch (op.kind) {
      case MailSpec::Kind::kPickup: {
        // The modeled GooseFs never returns I/O errors on these paths, so
        // a failure here is a harness bug, not a disk fault.
        Result<std::vector<Message>> messages = co_await mail->Pickup(op.user);
        PCC_ENSURE(messages.ok(), "harness: pickup failed");
        for (Message& m : messages.value()) {
          ret.msgs.emplace_back(std::move(m.id), std::move(m.contents));
        }
        break;
      }
      case MailSpec::Kind::kDeliver: {
        Result<std::string> id = co_await mail->Deliver(op.user, goosefs::BytesOfString(op.arg));
        PCC_ENSURE(id.ok(), "harness: deliver failed");
        ret.id = std::move(id.value());
        break;
      }
      case MailSpec::Kind::kDelete: {
        Status s = co_await mail->Delete(op.user, op.arg);
        PCC_ENSURE(s.ok(), "harness: delete failed");
        break;
      }
      case MailSpec::Kind::kUnlock: {
        co_await mail->Unlock(op.user);
        break;
      }
    }
    co_return ret;
  };
  inst.recover = [mail](refine::History<MailSpec>*) -> proc::Task<void> {
    co_await mail->Recover();
  };
  for (const std::vector<MailAction>& script : options.client_scripts) {
    inst.client_programs.push_back([script](refine::OpRunner<MailSpec>* runner) {
      return detail::RunScript(script, runner);
    });
  }
  if (options.observe_mailboxes) {
    uint64_t num_users = options.num_users;
    inst.observer_program = [num_users](refine::OpRunner<MailSpec>* runner) -> proc::Task<void> {
      for (uint64_t u = 0; u < num_users; ++u) {
        (void)co_await runner->Run(MailSpec::MakePickup(u));
        (void)co_await runner->Run(MailSpec::MakeUnlock(u));
      }
    };
  }
  return inst;
}

}  // namespace perennial::mailboat

#endif  // PERENNIAL_SRC_MAILBOAT_MAIL_HARNESS_H_
