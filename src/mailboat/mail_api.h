// The common mail-server interface (Figure 10's API shape), implemented by
// the verified Mailboat and by the GoMail/CMAIL-style baselines so the
// Figure 11 benchmark can drive all three identically.
#ifndef PERENNIAL_SRC_MAILBOAT_MAIL_API_H_
#define PERENNIAL_SRC_MAILBOAT_MAIL_API_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/panic.h"
#include "src/goosefs/filesys.h"
#include "src/proc/task.h"

namespace perennial::mailboat {

struct Message;  // defined in mailboat.h

// Supplies a message body to Deliver in chunks, so callers can stream a
// body they already hold without materializing another copy (and so the
// checker can model the caller's mutable slice — §8.3).
using ChunkReader = std::function<proc::Task<goosefs::Bytes>(uint64_t off, uint64_t len)>;

class MailApi {
 public:
  virtual ~MailApi() = default;

  // Lists the user's mail and acquires the user's pickup/delete lock. On
  // error the lock is NOT held (implementations release before returning)
  // and the session should tempfail the authentication.
  virtual proc::Task<Result<std::vector<Message>>> Pickup(uint64_t user) = 0;
  // Durably delivers a message, returning its id. On error nothing was
  // acked-durable: the implementation has unlinked (or will reap at
  // Recover) any partial spool/mailbox state, and the caller must answer
  // with a tempfail (kNoSpace → "mailbox full", anything else → "local
  // error") rather than accept the message.
  virtual proc::Task<Result<std::string>> Deliver(uint64_t user, const goosefs::Bytes& msg) = 0;
  // As Deliver, reading `len` body bytes through `read_chunk`.
  // Implementations that can stream (Mailboat) avoid materializing the
  // body; the default materializes and forwards to Deliver.
  virtual proc::Task<Result<std::string>> DeliverChunked(uint64_t user, uint64_t len,
                                                         ChunkReader read_chunk) {
    goosefs::Bytes body;
    body.reserve(len);
    uint64_t off = 0;
    while (off < len) {
      goosefs::Bytes chunk = co_await read_chunk(off, len - off);
      PCC_ENSURE(!chunk.empty(), "DeliverChunked: short chunk reader");
      body.insert(body.end(), chunk.begin(), chunk.end());
      off += chunk.size();
    }
    Result<std::string> id = co_await Deliver(user, body);
    co_return id;
  }
  // Deletes a message id previously returned by Pickup (lock held). A
  // non-ok status means the message may still exist; the lock stays held.
  virtual proc::Task<Status> Delete(uint64_t user, const std::string& id) = 0;
  virtual proc::Task<void> Unlock(uint64_t user) = 0;
  // Post-crash cleanup / re-initialization.
  virtual proc::Task<void> Recover() = 0;

  virtual uint64_t num_users() const = 0;
};

}  // namespace perennial::mailboat

#endif  // PERENNIAL_SRC_MAILBOAT_MAIL_API_H_
