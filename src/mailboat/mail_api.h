// The common mail-server interface (Figure 10's API shape), implemented by
// the verified Mailboat and by the GoMail/CMAIL-style baselines so the
// Figure 11 benchmark can drive all three identically.
#ifndef PERENNIAL_SRC_MAILBOAT_MAIL_API_H_
#define PERENNIAL_SRC_MAILBOAT_MAIL_API_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/goosefs/filesys.h"
#include "src/proc/task.h"

namespace perennial::mailboat {

struct Message;  // defined in mailboat.h

class MailApi {
 public:
  virtual ~MailApi() = default;

  // Lists the user's mail and acquires the user's pickup/delete lock.
  virtual proc::Task<std::vector<Message>> Pickup(uint64_t user) = 0;
  // Durably delivers a message, returning its id.
  virtual proc::Task<std::string> Deliver(uint64_t user, const goosefs::Bytes& msg) = 0;
  // Deletes a message id previously returned by Pickup (lock held).
  virtual proc::Task<void> Delete(uint64_t user, const std::string& id) = 0;
  virtual proc::Task<void> Unlock(uint64_t user) = 0;
  // Post-crash cleanup / re-initialization.
  virtual proc::Task<void> Recover() = 0;

  virtual uint64_t num_users() const = 0;
};

}  // namespace perennial::mailboat

#endif  // PERENNIAL_SRC_MAILBOAT_MAIL_API_H_
