#include "src/mailboat/workload.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/base/panic.h"
#include "src/base/rand.h"
#include "src/mailboat/mailboat.h"
#include "src/proc/task.h"

namespace perennial::mailboat {

namespace {

struct ThreadStats {
  uint64_t delivers = 0;
  uint64_t pickups = 0;
  uint64_t messages_read = 0;
};

proc::Task<void> OneRequest(MailApi* mail, Rng* rng, const WorkloadOptions& options,
                            ThreadStats* stats, const goosefs::Bytes* body) {
  uint64_t user = rng->Below(options.num_users);
  if (rng->Chance(0.5)) {
    (void)co_await mail->Deliver(user, *body);
    ++stats->delivers;
  } else {
    Result<std::vector<Message>> messages = co_await mail->Pickup(user);
    PCC_ENSURE(messages.ok(), "workload: pickup failed");
    for (const Message& m : messages.value()) {
      (void)co_await mail->Delete(user, m.id);
    }
    stats->messages_read += messages.value().size();
    co_await mail->Unlock(user);
    ++stats->pickups;
  }
}

void WorkerLoop(MailApi* mail, const WorkloadOptions& options, uint64_t seed,
                std::atomic<uint64_t>* remaining, ThreadStats* stats,
                const goosefs::Bytes* body) {
  Rng rng(seed);
  while (true) {
    // Closed loop over a shared request budget: each worker grabs the next
    // request as soon as its previous one finishes.
    uint64_t prev = remaining->fetch_sub(1, std::memory_order_relaxed);
    if (prev == 0) {
      // The budget was already exhausted: undo this thread's decrement
      // (every over-decrementing thread undoes its own) and stop.
      remaining->fetch_add(1, std::memory_order_relaxed);
      return;
    }
    proc::RunSyncVoid(OneRequest(mail, &rng, options, stats, body));
  }
}

}  // namespace

WorkloadResult RunMixedWorkload(MailApi* mail, int threads, const WorkloadOptions& options) {
  PCC_ENSURE(threads > 0, "workload: need at least one thread");
  PCC_ENSURE(options.num_users > 0, "workload: need at least one user");

  goosefs::Bytes body(options.msg_len);
  for (size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<uint8_t>('a' + (i % 26));
  }

  std::atomic<uint64_t> remaining(options.total_requests);
  std::vector<ThreadStats> stats(static_cast<size_t>(threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));

  auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back(WorkerLoop, mail, std::cref(options),
                         options.seed * 1000003 + static_cast<uint64_t>(t), &remaining,
                         &stats[static_cast<size_t>(t)], &body);
  }
  for (std::thread& w : workers) {
    w.join();
  }
  auto end = std::chrono::steady_clock::now();

  WorkloadResult result;
  result.requests = options.total_requests;
  result.seconds = std::chrono::duration<double>(end - start).count();
  for (const ThreadStats& s : stats) {
    result.delivers += s.delivers;
    result.pickups += s.pickups;
    result.messages_read += s.messages_read;
  }
  return result;
}

}  // namespace perennial::mailboat
