// The §9.3 benchmark workload: a 50/50 mix of SMTP deliveries and POP3
// pickups (pickup + delete every message + unlock), each request choosing
// one of the users uniformly at random; every core runs a closed loop
// (a new request as soon as the previous finishes) and the total request
// count is fixed as the number of cores varies — exactly the CMAIL
// experiment Mailboat replicates for Figure 11.
#ifndef PERENNIAL_SRC_MAILBOAT_WORKLOAD_H_
#define PERENNIAL_SRC_MAILBOAT_WORKLOAD_H_

#include <cstdint>

#include "src/mailboat/mail_api.h"

namespace perennial::mailboat {

struct WorkloadOptions {
  uint64_t num_users = 100;
  uint64_t total_requests = 20000;  // fixed total, split across threads
  uint64_t msg_len = 1024;          // delivery body size in bytes
  uint64_t seed = 1;
};

struct WorkloadResult {
  uint64_t requests = 0;
  uint64_t delivers = 0;
  uint64_t pickups = 0;
  uint64_t messages_read = 0;
  double seconds = 0;

  double requests_per_sec() const { return seconds > 0 ? requests / seconds : 0; }
};

// Runs the mixed workload on `threads` OS threads (native mode; `mail`
// must be backed by a real file system). Blocks until every request
// completes.
WorkloadResult RunMixedWorkload(MailApi* mail, int threads, const WorkloadOptions& options);

}  // namespace perennial::mailboat

#endif  // PERENNIAL_SRC_MAILBOAT_WORKLOAD_H_
