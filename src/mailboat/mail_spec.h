// Specification of the Mailboat library (§8.1).
//
// Abstract state: one mailbox per user mapping message ids to contents,
// plus the per-user pickup/delete lock (needed to specify when Pickup can
// linearize and when Delete is defined). The crash transition keeps every
// mailbox and releases every lock — delivered mail is never lost, and
// spooled temporaries are invisible at this level.
//
// Deliver's fresh message id is data-dependent nondeterminism (the
// implementation picks random names). Prepare() bounds the branch set to
// the ids observed anywhere in the history plus one synthetic id per
// delivery — ids that are never observed are interchangeable, so this
// loses no generality.
#ifndef PERENNIAL_SRC_MAILBOAT_MAIL_SPEC_H_
#define PERENNIAL_SRC_MAILBOAT_MAIL_SPEC_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/refine/history.h"
#include "src/tsys/transition.h"

namespace perennial::mailboat {

struct MailSpec {
  struct State {
    std::map<uint64_t, std::map<std::string, std::string>> boxes;
    std::set<uint64_t> locked;
    friend bool operator==(const State&, const State&) = default;
  };

  enum class Kind { kPickup, kDeliver, kDelete, kUnlock };
  struct Op {
    Kind kind = Kind::kPickup;
    uint64_t user = 0;
    std::string arg;  // deliver: contents; delete: message id
  };

  struct Ret {
    std::string id;                                          // deliver
    std::vector<std::pair<std::string, std::string>> msgs;   // pickup
    friend bool operator==(const Ret&, const Ret&) = default;
  };

  uint64_t num_users = 1;
  std::vector<std::string> id_pool;  // filled by Prepare

  State Initial() const {
    State s;
    for (uint64_t u = 0; u < num_users; ++u) {
      s.boxes[u];  // empty mailbox per user
    }
    return s;
  }

  // Bounds Deliver's id nondeterminism using the history itself.
  void Prepare(const std::vector<typename refine::History<MailSpec>::Event>& events) {
    std::set<std::string> ids;
    size_t delivers = 0;
    for (const auto& e : events) {
      using EvKind = typename refine::History<MailSpec>::Kind;
      if (e.kind == EvKind::kInvoke) {
        if (e.op.kind == Kind::kDeliver) {
          ++delivers;
        } else if (e.op.kind == Kind::kDelete) {
          ids.insert(e.op.arg);
        }
      } else if (e.kind == EvKind::kReturn) {
        if (!e.ret.id.empty()) {
          ids.insert(e.ret.id);
        }
        for (const auto& [id, contents] : e.ret.msgs) {
          ids.insert(id);
        }
      }
    }
    for (size_t i = 0; i < delivers; ++i) {
      ids.insert("#unobserved-" + std::to_string(i));
    }
    id_pool.assign(ids.begin(), ids.end());
  }

  tsys::Outcome<State, Ret> Step(const State& s, const Op& op) const {
    if (op.user >= num_users) {
      return tsys::Outcome<State, Ret>::Undef();
    }
    switch (op.kind) {
      case Kind::kPickup: {
        if (s.locked.count(op.user) > 0) {
          return tsys::Outcome<State, Ret>::None();  // blocked until Unlock
        }
        State next = s;
        next.locked.insert(op.user);
        Ret ret;
        for (const auto& [id, contents] : s.boxes.at(op.user)) {
          ret.msgs.emplace_back(id, contents);
        }
        return tsys::Outcome<State, Ret>::One(std::move(next), std::move(ret));
      }
      case Kind::kDeliver: {
        tsys::Outcome<State, Ret> out;
        for (const std::string& id : id_pool) {
          if (s.boxes.at(op.user).count(id) > 0) {
            continue;
          }
          State next = s;
          next.boxes[op.user][id] = op.arg;
          Ret ret;
          ret.id = id;
          out.branches.emplace_back(std::move(next), std::move(ret));
        }
        return out;
      }
      case Kind::kDelete: {
        if (s.locked.count(op.user) == 0 || s.boxes.at(op.user).count(op.arg) == 0) {
          // §8.1: deleting without the lock, or an id Pickup never listed,
          // is outside the contract.
          return tsys::Outcome<State, Ret>::Undef();
        }
        State next = s;
        next.boxes[op.user].erase(op.arg);
        return tsys::Outcome<State, Ret>::One(std::move(next), Ret{});
      }
      case Kind::kUnlock: {
        if (s.locked.count(op.user) == 0) {
          return tsys::Outcome<State, Ret>::Undef();
        }
        State next = s;
        next.locked.erase(op.user);
        return tsys::Outcome<State, Ret>::One(std::move(next), Ret{});
      }
    }
    return tsys::Outcome<State, Ret>::None();
  }

  // Crash: mail is durable; locks are volatile.
  std::vector<State> CrashSteps(const State& s) const {
    State next = s;
    next.locked.clear();
    return {std::move(next)};
  }

  static std::string StateKey(const State& s) {
    std::string key;
    for (const auto& [user, box] : s.boxes) {
      key += std::to_string(user) + "{";
      for (const auto& [id, contents] : box) {
        key += id + "=" + contents + ";";
      }
      key += "}";
    }
    key += "L:";
    for (uint64_t u : s.locked) {
      key += std::to_string(u) + ",";
    }
    return key;
  }
  static std::string RetKey(const Ret& r) {
    std::string key = r.id + "|";
    for (const auto& [id, contents] : r.msgs) {
      key += id + "=" + contents + ";";
    }
    return key;
  }
  static std::string OpName(const Op& op) {
    switch (op.kind) {
      case Kind::kPickup:
        return "Pickup(" + std::to_string(op.user) + ")";
      case Kind::kDeliver:
        return "Deliver(" + std::to_string(op.user) + ", \"" + op.arg + "\")";
      case Kind::kDelete:
        return "Delete(" + std::to_string(op.user) + ", " + op.arg + ")";
      case Kind::kUnlock:
        return "Unlock(" + std::to_string(op.user) + ")";
    }
    return "?";
  }

  static Op MakePickup(uint64_t user) { return Op{Kind::kPickup, user, ""}; }
  static Op MakeDeliver(uint64_t user, std::string contents) {
    return Op{Kind::kDeliver, user, std::move(contents)};
  }
  static Op MakeDelete(uint64_t user, std::string id) {
    return Op{Kind::kDelete, user, std::move(id)};
  }
  static Op MakeUnlock(uint64_t user) { return Op{Kind::kUnlock, user, ""}; }
};

}  // namespace perennial::mailboat

#endif  // PERENNIAL_SRC_MAILBOAT_MAIL_SPEC_H_
