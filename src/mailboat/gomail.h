// GoMail: the unverified baseline mail server from the CMAIL paper (§9.3),
// re-implemented for the Figure 11 comparison.
//
// GoMail stores mail the same way Mailboat does (spool + atomic link), but
// differs in exactly the two mechanisms the paper credits for Mailboat's
// single-core win:
//  * File locks instead of in-memory locks: the per-user mailbox lock is an
//    exclusively created lock *file*, so acquiring and releasing a lock
//    costs several file-system calls (create, close, unlink). Without the
//    verified argument that hard-linking makes messages visible atomically,
//    the conservative CMAIL-style design also takes the mailbox lock during
//    delivery — Mailboat's proof is exactly what lets it skip that.
//  * No cached directory fds: pair it with an uncached PosixFilesys (every
//    operation walks the full path) to reproduce the lookup overhead.
//
// A configurable per-operation busy-work knob models CMAIL's extracted-
// Haskell execution overhead (paper: GoMail ≈ 34% faster than CMAIL on one
// core); the bench calibrates it against measured GoMail latency.
#ifndef PERENNIAL_SRC_MAILBOAT_GOMAIL_H_
#define PERENNIAL_SRC_MAILBOAT_GOMAIL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/rand.h"
#include "src/goosefs/filesys.h"
#include "src/mailboat/mail_api.h"
#include "src/mailboat/mailboat.h"
#include "src/proc/task.h"

namespace perennial::mailboat {

class GoMail : public MailApi {
 public:
  struct Options {
    uint64_t num_users = 100;
    uint64_t chunk_size = 4096;
    uint64_t read_size = 512;
    uint64_t rng_seed = 2;
    // Busy-work per request entry point (Pickup/Deliver), modeling a slower
    // language runtime
    // (0 = GoMail itself; >0 = CMAIL-style extraction overhead).
    uint64_t overhead_ns_per_op = 0;
  };

  GoMail(goosefs::Filesys* fs, Options options);

  // spool/ + locks/ + one directory per user.
  static std::vector<std::string> DirLayout(uint64_t num_users);

  proc::Task<Result<std::vector<Message>>> Pickup(uint64_t user) override;
  proc::Task<Result<std::string>> Deliver(uint64_t user, const goosefs::Bytes& msg) override;
  proc::Task<Status> Delete(uint64_t user, const std::string& id) override;
  proc::Task<void> Unlock(uint64_t user) override;
  proc::Task<void> Recover() override;

  uint64_t num_users() const override { return options_.num_users; }

 private:
  static std::string UserDir(uint64_t user) { return "user" + std::to_string(user); }
  static std::string LockName(uint64_t user) { return "user" + std::to_string(user) + ".lock"; }
  uint64_t NextRandomId();
  void PayOverhead() const;

  // File lock: spin on exclusive creation of locks/<user>.lock.
  proc::Task<void> AcquireFileLock(uint64_t user);
  proc::Task<void> ReleaseFileLock(uint64_t user);

  goosefs::Filesys* fs_;
  Options options_;
  std::mutex rng_mu_;
  Rng rng_;
};

}  // namespace perennial::mailboat

#endif  // PERENNIAL_SRC_MAILBOAT_GOMAIL_H_
