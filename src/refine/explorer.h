// The schedule-and-crash-point explorer: the executable stand-in for the
// universal quantification in Perennial's theorems.
//
// Where the paper's Coq proof covers all interleavings and all crash points
// by deduction, the explorer covers them by enumeration: it drives the
// modeled system (coroutine threads over the deterministic scheduler)
// through either every schedule up to configured bounds (exhaustive DFS) or
// a randomized sample, injecting machine crashes between any two atomic
// steps — including during recovery — and environment events such as disk
// failures. Every execution yields a history that is checked for
// concurrent recovery refinement (linearize.h), and registered crash
// invariants (src/cap) are evaluated at every step.
//
// Detected violation classes:
//   * non-linearizable  — no spec interleaving explains the history
//   * crash-invariant   — a registered invariant failed at some step
//   * undefined-behavior— the modeled program raised UbViolation
//   * deadlock          — live threads, none runnable
//   * step-bound        — execution exceeded max_steps_per_run (possible
//                         nontermination, e.g. the §9.5 Pickup loop bug)
//
// Partial-order reduction (use_por): the exhaustive DFS prunes schedules
// with SLEEP SETS over dynamic access footprints (src/proc/footprint.h).
// When sibling scheduling choices at a decision node are pairwise
// independent — disjoint footprints, neither a crash nor an environment
// alternative — exploring one sibling's subtree covers the other orders,
// so later siblings' subtrees put the explored thread "to sleep": its
// alternative is filtered from every descendant decision until some step
// conflicts with the footprint it had at the branch. A node whose every
// alternative is asleep is redundant in full (counted in
// Report::por_pruned, no history emitted). Soundness invariants:
//   * only THREAD alternatives are ever slept — crash points and
//     environment events are the quantification the checker exists to
//     cover, and they are pruned by nothing;
//   * a step with no footprint annotation conflicts with everything
//     (opaque-by-default, so unannotated code costs pruning, not bugs);
//   * invariant-visible effects (disk writes, help-registry updates) share
//     a dedicated resource, so steps crash invariants can observe are
//     never reordered past one another;
//   * history appends share a resource, so the set of DISTINCT histories —
//     and therefore every linearizability verdict — is POR-invariant, and
//     the DFS-leftmost member of each commutation class is never pruned
//     (the first violation found is bit-identical with POR on or off).
// POR engages only in the fully exhaustive regime: preemption bounding
// already prunes unsoundly (it is a bug-finding heuristic), and sleep sets
// assume the sibling subtree was explored in full, so max_preemptions >= 0
// disables POR rather than compound two incomparable reductions.
//
// Parallelism: this header is the single-threaded reference engine. The
// decision tree it walks is prefix-partitionable — every execution is fully
// determined by its decision path, and factories are required to be
// deterministic — so ParallelExplorer (parallel_explorer.h) enumerates
// decision-path prefixes via EnumerateSubtreePrefixes() and hands each
// disjoint subtree to a worker that re-runs this engine via
// RunDfsSubtree(). Work items carry the POR bookkeeping for their prefix
// (the footprints of already-explored sibling alternatives), so workers
// reconstruct exactly the serial engine's sleep sets. Two further knobs
// support that use:
//   * dedup_histories — fingerprint completed histories (src/base/hash.h)
//     and skip the linearizability search for repeats. Sound because the
//     spec check depends only on the history, every execution still runs in
//     full (crash invariants, UB, deadlock, and step bounds are evaluated
//     during execution), and a cached violating verdict is re-reported for
//     every duplicate, so the violation set is unchanged. The cache is a
//     ShardedMemo (memo.h) that ParallelExplorer shares across workers.
//   * progress_callback — periodic cumulative counts for long runs and
//     benches, observed after each execution completes (so dedup counts
//     are post-dedup).
#ifndef PERENNIAL_SRC_REFINE_EXPLORER_H_
#define PERENNIAL_SRC_REFINE_EXPLORER_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/base/hash.h"
#include "src/base/panic.h"
#include "src/base/rand.h"
#include "src/cap/crash_invariant.h"
#include "src/goose/world.h"
#include "src/proc/footprint.h"
#include "src/proc/scheduler.h"
#include "src/proc/task.h"
#include "src/refine/checkpoint.h"
#include "src/refine/history.h"
#include "src/refine/linearize.h"
#include "src/refine/memo.h"
#include "src/refine/run_state.h"

#ifndef PCC_POR_DEFAULT
#define PCC_POR_DEFAULT 1
#endif

namespace perennial::refine {

// An environment event the explorer may fire between steps (e.g. "fail
// disk 1"). `budget` bounds how many times it fires per execution.
struct EnvEvent {
  std::string name;
  int budget = 1;
  std::function<void()> fire;
};

template <typename Spec>
struct Instance;

// Handed to dynamic client programs: runs one spec-level operation against
// the implementation while recording its invocation and response in the
// history. Programs can branch on returned values (e.g. delete the ids a
// pickup returned).
template <typename Spec>
class OpRunner {
 public:
  OpRunner(Instance<Spec>* inst, History<Spec>* history, int client)
      : inst_(inst), history_(history), client_(client) {}

  proc::Task<typename Spec::Ret> Run(typename Spec::Op op) {
    uint64_t id = history_->Invoke(client_, op);
    typename Spec::Ret ret = co_await inst_->run_op(client_, id, op);
    history_->Return(id, ret);
    co_return ret;
  }

  int client() const { return client_; }

 private:
  Instance<Spec>* inst_;
  History<Spec>* history_;
  int client_;
};

// One freshly constructed system under test. Factories must be
// deterministic: the DFS explorer replays prefixes by reconstruction.
template <typename Spec>
struct Instance {
  using Op = typename Spec::Op;
  using Ret = typename Spec::Ret;

  // Owns the world/system objects the raw pointers below refer to.
  std::shared_ptr<void> keep_alive;
  goose::World* world = nullptr;
  // Optional: invariants checked at every step (nullptr to skip).
  const cap::CrashInvariants* crash_invariants = nullptr;
  // Per-client operation sequences; client i runs its ops in order.
  std::vector<std::vector<Op>> client_ops;
  // Dynamic client programs (run as additional clients after client_ops
  // threads): each receives an OpRunner and may branch on results.
  std::vector<std::function<proc::Task<void>(OpRunner<Spec>*)>> client_programs;
  // Dynamic observer program run at the end (in addition to observer_ops).
  std::function<proc::Task<void>(OpRunner<Spec>*)> observer_program;
  // Runs one operation. `op_id` identifies the op instance for helping.
  std::function<proc::Task<Ret>(int client, uint64_t op_id, Op op)> run_op;
  // Recovery procedure; run after each crash (null: crashes not explored).
  std::function<proc::Task<void>(History<Spec>*)> recover;
  // Ops probed sequentially at the end of the execution (after recovery if
  // a crash happened); they pin down the surviving durable state.
  std::vector<Op> observer_ops;
  std::vector<EnvEvent> env_events;
};

// Cumulative counts handed to ExplorerOptions::progress_callback. All
// fields are post-execution values: histories_checked/deduped reflect the
// dedup decision already taken for the execution just finished.
struct ExplorerProgress {
  uint64_t executions = 0;
  uint64_t total_steps = 0;
  uint64_t violations = 0;
  uint64_t histories_checked = 0;
  uint64_t histories_deduped = 0;
  uint64_t por_pruned = 0;
};

struct ExplorerOptions {
  enum class Mode { kExhaustive, kRandom, kPct };
  Mode mode = Mode::kExhaustive;

  int max_crashes = 1;                  // crashes injected per execution
  // CHESS-style preemption bounding: a "preemption" is scheduling away
  // from a thread that could have kept running. -1 = unbounded (full
  // exhaustiveness within the other bounds); small values (0-2) shrink the
  // schedule space drastically while still catching most concurrency bugs.
  int max_preemptions = -1;
  uint64_t max_steps_per_run = 5000;    // nontermination bound
  uint64_t max_executions = 2'000'000;  // DFS safety cap
  int max_violations = 3;               // stop collecting after this many

  // Random and PCT modes:
  uint64_t random_runs = 1000;      // executions sampled (per swarm batch in PCT mode)
  uint64_t seed = 1;
  double crash_probability = 0.05;  // per-step chance of injecting a crash
  double env_probability = 0.05;    // per-step chance of firing an env event

  // ---- PCT mode (mode == kPct; DESIGN.md §12) ----
  // Priority-based randomized exploration with the PCT bug-finding bound
  // (Burckhardt et al.): every thread gets a random priority, the highest-
  // priority runnable thread always runs, and d-1 priority-change points
  // drawn uniformly over the step budget demote the running thread below
  // every initial priority. A bug of depth d (one needing d specific
  // ordering constraints) is found per run with probability >=
  // 1/(n * k^(d-1)) for n threads and k steps — a guarantee exhaustive DFS
  // under an execution budget cannot make, because DFS covers the decision
  // tree suffix-first and a bug needing an EARLY deviation sits at the far
  // end of its enumeration order. Crash and environment alternatives stay
  // in scope via the same per-step probability draws random mode uses, so
  // crash placement and fault injection are sampled on top of the PCT
  // thread schedule. Every run's seed is derived from (seed, batch, run
  // index) alone, so reports are bit-identical across serial/parallel
  // engines, worker counts, and checkpoint/resume splits (dedup counters
  // excepted — see dedup_histories note below).
  int pct_depth = 3;                 // d: targeted bug depth (d-1 change points)
  uint64_t pct_change_budget = 256;  // k: steps the change points are drawn over

  // Swarm mode: > 0 runs that many independent seed batches of random_runs
  // PCT executions each (batch b reseeds from (seed, b)), merged into one
  // report in batch order. With swarm_vary_depth the batches cycle
  // pct_depth over {d-1, d, d+1} (floored at 2) so one sweep covers
  // several bug depths. Batches ride the checkpoint/resume machinery:
  // work items are (batch, run-range) slices, so an interrupted swarm
  // resumes to the uninterrupted report.
  uint64_t swarm_seeds = 0;
  bool swarm_vary_depth = false;

  // Skip the linearizability search for completed histories whose 128-bit
  // fingerprint was already checked this run (see the header comment for
  // the soundness argument). Counted in Report::histories_deduped. In PCT
  // mode dedup stays sound (verdicts are pure functions of the history)
  // but the deduped COUNTER is excluded from the bit-identity contract:
  // which run pays for a fingerprint depends on cache sharing across
  // workers and on resume splits.
  bool dedup_histories = false;

  // Sleep-set dynamic partial-order reduction (header comment). Effective
  // only for exhaustive mode with unbounded preemptions; the compile-time
  // default comes from the PCC_POR CMake option.
  bool use_por = PCC_POR_DEFAULT != 0;

  // Memoize spec-search frontiers per history PREFIX (linearize.h), shared
  // across executions (and, under ParallelExplorer, workers). Off by
  // default: it changes Report::spec_states_explored (work skipped via the
  // cache is not re-counted), which several equivalence tests compare.
  bool memoize_spec_prefixes = false;

  // Observability: invoked every progress_interval executions with
  // cumulative counts. Under ParallelExplorer the callback fires on worker
  // threads, one caller at a time (serialized by an internal mutex).
  std::function<void(const ExplorerProgress&)> progress_callback;
  uint64_t progress_interval = 1024;

  // ParallelExplorer only (ignored by the serial Explorer):
  int num_workers = 4;  // OS threads exploring disjoint subtrees
  // Decision-path depth at which the coordinator splits the tree into work
  // items. Deeper splits yield more, smaller items (better load balance,
  // more probe overhead); #items grows roughly with branching^depth.
  int split_depth = 4;

  // ---- Durable runs (checkpoint.h; DESIGN.md §11) ----
  // All default off: a run with none of these set pays nothing for them.
  // A triggered stop never aborts the process — the engine rolls back the
  // execution in flight, flushes a checkpoint (when checkpoint_path is
  // set), and returns a partial Report tagged with the outcome.

  // Wall-clock budget for the whole run, measured from Run() (or the first
  // RunDfsSubtree a ParallelExplorer worker executes). 0 = none.
  uint64_t wall_deadline_ms = 0;
  // Budget for ACCOUNTED memory: the linearizer's retained arena plus the
  // memo caches (which also get per-cache byte caps with whole-shard
  // eviction, at max_memory_bytes / 4 each). Deliberately accounting-based
  // rather than RSS so the oom outcome is deterministic and testable; the
  // bench harness reports true peak RSS separately. 0 = none.
  uint64_t max_memory_bytes = 0;
  // Cooperative cancellation (e.g. a SIGINT handler); polled at every
  // decision point. Not owned; may be shared across engines.
  CancelToken* cancel_token = nullptr;
  // Deterministic cancellation once N decisions have been made across the
  // run — the testing hook behind the interrupt/resume bit-identity suite
  // (a SIGINT at a reproducible point). It only fires after the run has
  // COMPLETED at least one execution: a resumed leg replays the decisions
  // of the execution it interrupted, so a threshold inside the first
  // execution would re-trigger at the identical point every leg and never
  // make progress. 0 = off.
  uint64_t cancel_after_decisions = 0;
  // Write a checkpoint here on any durability stop, on completion, and at
  // the checkpoint_every_* cadence. Empty = never write.
  std::string checkpoint_path;
  // Load-and-continue from this checkpoint at Run() start. A missing,
  // torn, corrupt, version-bumped, or configuration-mismatched file is
  // rejected (stderr warning) and the run starts from scratch.
  std::string resume_path;
  // Periodic checkpoint cadence while the run is healthy: every N
  // executions and/or every N seconds (whichever fires first). 0 = only on
  // stop/completion. Exhaustive and PCT modes (plain random mode is not
  // resumable).
  uint64_t checkpoint_every_execs = 0;
  uint64_t checkpoint_every_secs = 0;
  // Distinguishes otherwise identically-configured runs of different
  // systems: mixed into the checkpoint config fingerprint so e.g. a
  // wal-recovery checkpoint cannot resume a repl-2writers sweep.
  std::string run_id;
  // ParallelExplorer: a worker whose heartbeat counter has not moved for
  // this long while it owns a work item is considered stuck — the
  // coordinator's watchdog writes a recovery checkpoint of everything else
  // and requests cancellation. 0 = no watchdog.
  uint64_t stuck_worker_timeout_ms = 0;
};

// Violation, Report, RunOutcome, CancelToken, and the detail:: POR
// bookkeeping types moved to run_state.h (shared with the durable-run
// layer); SubtreeWork and SubtreeCursor live there too.

namespace detail {

// Supplies one choice index per decision point.
class Driver {
 public:
  virtual ~Driver() = default;
  virtual size_t Choose(const std::vector<Alt>& alts) = 0;
};

// Replays a recorded prefix, then picks alternative 0 and extends the path;
// records the alternative count at every decision for the DFS odometer.
class DfsDriver : public Driver {
 public:
  explicit DfsDriver(std::vector<size_t>* path) : path_(path) {}

  size_t Choose(const std::vector<Alt>& alts) override {
    counts_.push_back(alts.size());
    if (pos_ < path_->size()) {
      return (*path_)[pos_++];
    }
    path_->push_back(0);
    ++pos_;
    return 0;
  }

  const std::vector<size_t>& counts() const { return counts_; }

 private:
  std::vector<size_t>* path_;
  size_t pos_ = 0;
  std::vector<size_t> counts_;
};

class RandomDriver : public Driver {
 public:
  RandomDriver(uint64_t seed, double crash_p, double env_p)
      : rng_(seed), crash_p_(crash_p), env_p_(env_p) {}

  size_t Choose(const std::vector<Alt>& alts) override {
    std::vector<size_t> threads;
    std::vector<size_t> crashes;
    std::vector<size_t> envs;
    for (size_t i = 0; i < alts.size(); ++i) {
      switch (alts[i].kind) {
        case AltKind::kThread:
          threads.push_back(i);
          break;
        case AltKind::kCrash:
          crashes.push_back(i);
          break;
        case AltKind::kEnv:
          envs.push_back(i);
          break;
        case AltKind::kProceed:
          break;  // chosen only when nothing else is picked
      }
    }
    if (!crashes.empty() && rng_.Chance(crash_p_)) {
      // Uniform among crash alternatives (a single draw when there is only
      // one, so the stream stays comparable with older seeds).
      return crashes.size() == 1 ? crashes[0] : crashes[rng_.Below(crashes.size())];
    }
    if (!envs.empty() && rng_.Chance(env_p_)) {
      // Uniform among env alternatives, with the same single-candidate
      // guard as crashes: one candidate costs one draw, so the stream (and
      // therefore seed reproducibility) is unchanged by merely *offering*
      // an env event that is the only one of its kind.
      return envs.size() == 1 ? envs[0] : envs[rng_.Below(envs.size())];
    }
    if (!threads.empty()) {
      return threads[rng_.Below(threads.size())];
    }
    // No thread alternatives — the quiescent point offering
    // [proceed, CRASH, env...]. The declined draws above already said "no
    // crash, no env" for this step, so take the proceed alternative. (The
    // old fallback drew uniformly over the remainder, which made the
    // quiescent crash a coin flip even with crash_probability = 0 — a
    // crash-choice bias that skewed every random-mode sample toward
    // crashing exactly at the quiescent point.)
    for (size_t i = 0; i < alts.size(); ++i) {
      if (alts[i].kind == AltKind::kProceed) {
        return i;
      }
    }
    return alts.size() == 1 ? 0 : rng_.Below(alts.size());
  }

 private:
  Rng rng_;
  double crash_p_;
  double env_p_;
};

// The seed of PCT run `run` of batch `batch`: a pure function of the
// top-level seed and the two indices, so ANY partition of the run space —
// serial loop, parallel slices, resume legs — reproduces the identical
// per-run executions.
inline uint64_t PctRunSeed(uint64_t seed, uint64_t batch, uint64_t run) {
  uint64_t state = seed;
  (void)SplitMix64(state);
  state += (batch + 1) * 0x9E3779B97F4A7C15ull;
  (void)SplitMix64(state);
  state += (run + 1) * 0xBF58476D1CE4E5B9ull;
  return SplitMix64(state);
}

// PCT (Burckhardt et al., ASPLOS 2010): every thread gets a random initial
// priority >= d, the highest-priority runnable thread always runs, and d-1
// priority-change points drawn uniformly over the step budget k demote the
// running thread to d-1-j (below every initial priority). A depth-d bug is
// hit with probability >= 1/(n * k^(d-1)). Crash and environment
// alternatives are sampled with the same per-step probability draws (and
// the same single-candidate guards) as RandomDriver, layered on top of the
// PCT thread schedule. Fully deterministic in the seed: priorities are
// assigned in alternative order and ties break toward the first maximum.
class PctDriver : public Driver {
 public:
  PctDriver(uint64_t seed, int depth, uint64_t change_budget, double crash_p, double env_p)
      : rng_(seed), crash_p_(crash_p), env_p_(env_p) {
    depth_ = depth < 1 ? 1 : depth;
    if (change_budget < 1) {
      change_budget = 1;
    }
    // d-1 change points in [1, k], sorted so the back is the next one due.
    for (int j = 0; j < depth_ - 1; ++j) {
      change_points_.push_back(1 + rng_.Below(change_budget));
    }
    std::sort(change_points_.begin(), change_points_.end(), std::greater<uint64_t>());
  }

  size_t Choose(const std::vector<Alt>& alts) override {
    std::vector<size_t> threads;
    std::vector<size_t> crashes;
    std::vector<size_t> envs;
    for (size_t i = 0; i < alts.size(); ++i) {
      switch (alts[i].kind) {
        case AltKind::kThread:
          threads.push_back(i);
          break;
        case AltKind::kCrash:
          crashes.push_back(i);
          break;
        case AltKind::kEnv:
          envs.push_back(i);
          break;
        case AltKind::kProceed:
          break;
      }
    }
    if (!crashes.empty() && rng_.Chance(crash_p_)) {
      return crashes.size() == 1 ? crashes[0] : crashes[rng_.Below(crashes.size())];
    }
    if (!envs.empty() && rng_.Chance(env_p_)) {
      return envs.size() == 1 ? envs[0] : envs[rng_.Below(envs.size())];
    }
    if (threads.empty()) {
      for (size_t i = 0; i < alts.size(); ++i) {
        if (alts[i].kind == AltKind::kProceed) {
          return i;
        }
      }
      return alts.size() == 1 ? 0 : rng_.Below(alts.size());
    }
    ++steps_;
    // Unseen threads draw their initial priority now, in alternative order
    // (deterministic). Collisions are possible and harmless: ties break
    // toward the first maximum, uniformly shifting probability mass rather
    // than invalidating the bound.
    for (size_t i : threads) {
      const int tid = alts[i].thread;
      if (priority_.find(tid) == priority_.end()) {
        priority_[tid] = static_cast<int64_t>(depth_) + static_cast<int64_t>(rng_.Below(1u << 20));
      }
    }
    auto argmax = [&]() -> size_t {
      size_t best = threads[0];
      int64_t best_p = priority_[alts[best].thread];
      for (size_t k = 1; k < threads.size(); ++k) {
        const int64_t p = priority_[alts[threads[k]].thread];
        if (p > best_p) {
          best_p = p;
          best = threads[k];
        }
      }
      return best;
    };
    size_t pick = argmax();
    // Change points due at this step demote the would-run thread to
    // d-1-j (the j-th firing), then re-resolve; several points landing on
    // one step demote successive maxima.
    while (!change_points_.empty() && steps_ >= change_points_.back()) {
      change_points_.pop_back();
      priority_[alts[pick].thread] = static_cast<int64_t>(depth_ - 1) - fired_;
      ++fired_;
      pick = argmax();
    }
    return pick;
  }

 private:
  Rng rng_;
  double crash_p_;
  double env_p_;
  int depth_ = 1;
  uint64_t steps_ = 0;                   // thread decisions seen so far
  int64_t fired_ = 0;                    // change points already fired
  std::vector<uint64_t> change_points_;  // descending; back() fires next
  std::map<int, int64_t> priority_;      // tid -> current priority
};

// Replays a recorded ScheduleDecision sequence as a list of INTENTS rather
// than indices: at each decision point the remaining intents are scanned in
// order, intents with no matching alternative are dropped, and the first
// match is taken. Index-free matching is what lets the minimizer delete
// decisions from the middle of a schedule and still replay the remainder
// meaningfully. When the intents run out the replay finishes
// deterministically: first thread alternative, else proceed, else
// alternative 0. `consumed()` is the subsequence actually taken;
// replaying consumed(X) reproduces the replay of X decision-for-decision
// (defaults depend only on the execution state, which matching preserves).
class ScheduleReplayDriver : public Driver {
 public:
  explicit ScheduleReplayDriver(std::vector<ScheduleDecision> schedule)
      : schedule_(std::move(schedule)) {}

  size_t Choose(const std::vector<Alt>& alts) override {
    while (pos_ < schedule_.size()) {
      const ScheduleDecision& d = schedule_[pos_];
      for (size_t i = 0; i < alts.size(); ++i) {
        if (Matches(d, alts[i])) {
          ++pos_;
          consumed_.push_back(d);
          return i;
        }
      }
      ++pos_;  // intent impossible here: drop it, try the next
    }
    return DefaultPick(alts);
  }

  const std::vector<ScheduleDecision>& consumed() const { return consumed_; }

 private:
  static bool Matches(const ScheduleDecision& d, const Alt& a) {
    if (d.kind != a.kind) {
      return false;
    }
    if (d.kind == AltKind::kThread) {
      return d.thread == a.thread;
    }
    if (d.kind == AltKind::kEnv) {
      return static_cast<size_t>(d.env) == a.env;
    }
    return true;  // crash / proceed carry no payload
  }

  static size_t DefaultPick(const std::vector<Alt>& alts) {
    for (size_t i = 0; i < alts.size(); ++i) {
      if (alts[i].kind == AltKind::kThread) {
        return i;
      }
    }
    for (size_t i = 0; i < alts.size(); ++i) {
      if (alts[i].kind == AltKind::kProceed) {
        return i;
      }
    }
    return 0;
  }

  std::vector<ScheduleDecision> schedule_;
  size_t pos_ = 0;
  std::vector<ScheduleDecision> consumed_;
};

}  // namespace detail

// Fingerprint of every option that shapes the decision tree a run
// explores. Stamped into checkpoints so a resume can only continue a run
// over the same space. Durability knobs (deadline, memory budget,
// checkpoint cadence) and parallelism knobs (num_workers, split_depth) are
// deliberately EXCLUDED: interrupting a run because of a deadline and
// resuming it without one — possibly on a different worker count — is the
// whole point, and resumed work items come from the checkpoint, not from
// re-enumeration.
inline uint64_t ExplorationConfigFp(const ExplorerOptions& options) {
  auto double_bits = [](double d) {
    uint64_t u = 0;
    std::memcpy(&u, &d, sizeof(u));
    return u;
  };
  Fnv128 f;
  f.MixString("pcc-exploration-config-v2");
  f.MixString(options.run_id);
  f.MixU64(static_cast<uint64_t>(options.mode));
  f.MixU64(static_cast<uint64_t>(static_cast<int64_t>(options.max_crashes)));
  f.MixU64(static_cast<uint64_t>(static_cast<int64_t>(options.max_preemptions)));
  f.MixU64(options.max_steps_per_run);
  f.MixU64(options.max_executions);
  f.MixU64(static_cast<uint64_t>(static_cast<int64_t>(options.max_violations)));
  f.MixU64(options.random_runs);
  f.MixU64(options.seed);
  f.MixU64(double_bits(options.crash_probability));
  f.MixU64(double_bits(options.env_probability));
  f.MixU64(static_cast<uint64_t>(static_cast<int64_t>(options.pct_depth)));
  f.MixU64(options.pct_change_budget);
  f.MixU64(options.swarm_seeds);
  f.MixU64(options.swarm_vary_depth ? 1 : 0);
  f.MixU64(options.dedup_histories ? 1 : 0);
  f.MixU64(options.use_por ? 1 : 0);
  f.MixU64(options.memoize_spec_prefixes ? 1 : 0);
  return f.digest().lo;
}

template <typename Spec>
class Explorer {
 public:
  using Op = typename Spec::Op;
  using Ret = typename Spec::Ret;
  using Factory = std::function<Instance<Spec>()>;
  using FrontierCache = typename LinearizabilityChecker<Spec>::FrontierCache;

  Explorer(Spec spec, Factory factory, ExplorerOptions options)
      : spec_(std::move(spec)), factory_(std::move(factory)), options_(options) {}

  // Cache injection for ParallelExplorer (must outlive the Explorer; may be
  // shared across threads). By default each Explorer owns private caches.
  void set_verdict_cache(VerdictCache* cache) { verdict_cache_ = cache; }
  void set_frontier_cache(FrontierCache* cache) { frontier_cache_ = cache; }

  Report Run() {
    EnsureDurabilityInit();
    Report report;
    switch (options_.mode) {
      case ExplorerOptions::Mode::kRandom:
        report = RunRandomMode();
        break;
      case ExplorerOptions::Mode::kPct:
        report = RunPctMode();
        break;
      case ExplorerOptions::Mode::kExhaustive:
        report = RunExhaustiveMode();
        break;
    }
    report.outcome = stop_cause_;
    return report;
  }

  // Re-executes one run driving decisions from a recorded schedule
  // (intent-based, skip-unmatched — see detail::ScheduleReplayDriver).
  // Returns the single-execution Report; a recorded violation witness
  // replayed here reproduces its violation. `consumed`, if non-null,
  // receives the intents actually taken: ReplaySchedule(consumed(X))
  // reproduces ReplaySchedule(X) exactly, the canonicalization the
  // minimizer's termination argument rests on.
  Report ReplaySchedule(const std::vector<ScheduleDecision>& schedule,
                        std::vector<ScheduleDecision>* consumed = nullptr) {
    EnsureDurabilityInit();
    Report report;
    detail::ScheduleReplayDriver driver(schedule);
    RunOnce(driver, &report, nullptr, /*common_decisions=*/0);
    if (consumed != nullptr) {
      *consumed = driver.consumed();
    }
    report.outcome = stop_cause_;
    return report;
  }

  // Slice granularity of the PCT work list (runs per work item): the load-
  // balance unit for the parallel engine and the resume granularity cap.
  static constexpr uint64_t kPctChunkRuns = 64;

  // The PCT/swarm work list: (batch, run-range) slices encoded in
  // CheckpointSubtree::prefix as {batch, lo, hi}, sliced in chunks of
  // kPctChunkRuns for parallel load balance. Serial and parallel engines
  // build the IDENTICAL list, so their checkpoints interconvert and the
  // merged report is independent of who ran which slice.
  std::vector<CheckpointSubtree> BuildPctItems() const {
    std::vector<CheckpointSubtree> items;
    const uint64_t batches = options_.swarm_seeds == 0 ? 1 : options_.swarm_seeds;
    for (uint64_t b = 0; b < batches; ++b) {
      for (uint64_t lo = 0; lo < options_.random_runs; lo += kPctChunkRuns) {
        const uint64_t hi = std::min(options_.random_runs, lo + kPctChunkRuns);
        CheckpointSubtree item;
        item.prefix = {static_cast<size_t>(b), static_cast<size_t>(lo),
                       static_cast<size_t>(hi)};
        items.push_back(std::move(item));
      }
    }
    return items;
  }

  // Runs PCT executions [start, hi) of batch `batch` into `report` — the
  // PCT analogue of RunDfsSubtree, shared by the serial mode loop and
  // ParallelExplorer workers. Each run is seeded by PctRunSeed(seed, batch,
  // run) alone. Returns true when the slice completed (max_violations ends
  // it the same way an uninterrupted slice would); false on a durability
  // stop or keep_going veto, with *next_run naming the first run not
  // completed — the resume cursor.
  bool RunPctSlice(uint64_t batch, uint64_t start, uint64_t hi, Report* report,
                   const std::function<bool(const Report&)>& keep_going = nullptr,
                   uint64_t* next_run = nullptr) {
    EnsureDurabilityInit();
    const int depth = PctBatchDepth(batch);
    for (uint64_t r = start; r < hi; ++r) {
      if (StopAtBoundary()) {
        report->truncated = true;
        if (next_run != nullptr) {
          *next_run = r;
        }
        return false;
      }
      detail::PctDriver driver(detail::PctRunSeed(options_.seed, batch, r), depth,
                               options_.pct_change_budget, options_.crash_probability,
                               options_.env_probability);
      if (!RunOnce(driver, report, nullptr, /*common_decisions=*/0)) {
        report->truncated = true;
        if (next_run != nullptr) {
          *next_run = r;
        }
        return false;
      }
      ++execs_completed_;
      NotifyProgress(*report);
      if (report->violations.size() >= static_cast<size_t>(options_.max_violations)) {
        if (next_run != nullptr) {
          *next_run = r + 1;
        }
        return true;
      }
      if (keep_going != nullptr && !keep_going(*report)) {
        report->truncated = true;
        if (next_run != nullptr) {
          *next_run = r + 1;
        }
        return false;
      }
      MaybePeriodicCheckpoint({static_cast<size_t>(r + 1)}, {}, *report);
    }
    if (next_run != nullptr) {
      *next_run = hi;
    }
    return true;
  }

  // The durability stop cause so far (kComplete while none). Sticky: once a
  // stop triggers, every later RunDfsSubtree call on this engine drains
  // immediately — which is exactly what ParallelExplorer's cancel drain
  // relies on.
  RunOutcome stop_cause() const { return stop_cause_; }

  // Accounted retained memory: the linearizer arena plus the (possibly
  // shared) memo caches. The max_memory_bytes comparison base.
  size_t approx_memory_bytes() const {
    return checker_.approx_retained_bytes() + verdict_cache_->bytes() + frontier_cache_->bytes();
  }

  // Exhaustive DFS over decision sequences, replaying from scratch,
  // restricted to paths that extend `work.prefix` (empty prefix = whole
  // tree). The per-worker engine of ParallelExplorer: work items come from
  // EnumerateSubtreePrefixes, so distinct items explore disjoint subtrees.
  // `keep_going`, if set, is polled after every execution; returning false
  // abandons the subtree and marks the report truncated.
  //
  // `cursor`, if set, receives where the walk stopped: finished (the
  // subtree is fully explored, or max_violations ended the run the same
  // way an uninterrupted one would) or the exact decision path + POR
  // bookkeeping of the next execution. Resuming with that cursor as a new
  // work item (prefix = next_path, por_seed = por_levels, floor = floor)
  // continues the walk as if it had never stopped.
  void RunDfsSubtree(SubtreeWork work, Report* report,
                     const std::function<bool(const Report&)>& keep_going = nullptr,
                     SubtreeCursor* cursor = nullptr) {
    EnsureDurabilityInit();
    const size_t floor = work.floor == SubtreeWork::kNoFloor ? work.prefix.size() : work.floor;
    std::vector<size_t> path = std::move(work.prefix);
    detail::PorContext por;
    por.levels = std::move(work.por_seed);
    detail::PorContext* por_ptr = PorActive() ? &por : nullptr;
    auto capture = [&](bool finished) {
      if (cursor == nullptr) {
        return;
      }
      cursor->finished = finished;
      cursor->floor = floor;
      if (!finished) {
        cursor->next_path = path;
        cursor->por_levels = por.levels;
      }
    };
    // Decisions this run provably shares with the previous run of THIS
    // explorer: after the odometer bumps the decision at level a, levels
    // 0..a-1 replay identically, so the histories agree on every event the
    // previous run recorded before decision a (frontier-spine reuse). The
    // first run shares nothing — even its work prefix replays decisions
    // some OTHER explorer took.
    size_t common_decisions = 0;
    while (true) {
      // Boundary poll: a stop already requested (or a deadline/memory
      // trigger the amortized decision-point poll has not reached yet)
      // ends the walk BETWEEN executions, with `path` untouched — the
      // cursor names the execution that never started.
      if (StopAtBoundary()) {
        report->truncated = true;
        capture(false);
        return;
      }
      detail::DfsDriver driver(&path);
      if (!RunOnce(driver, report, por_ptr, common_decisions)) {
        // Durability stop mid-execution: RunOnce rolled its counters back,
        // and `path` still holds the aborted execution's decisions (the
        // prefix it replayed plus what it chose before the stop) — replay
        // is deterministic, so resuming from this exact path re-runs the
        // execution as if it had never been attempted.
        report->truncated = true;
        capture(false);
        return;
      }
      ++execs_completed_;
      NotifyProgress(*report);
      // max_violations ends the run exactly like an uninterrupted one
      // (finished, nothing to resume). Checked before keep_going fires, as
      // the legacy loop did — the parallel global-execution counter never
      // observes a subtree's stopping execution.
      if (report->violations.size() >= static_cast<size_t>(options_.max_violations)) {
        capture(true);
        return;
      }
      const bool hit_max_executions = report->executions >= options_.max_executions;
      // The global-budget callback observes every other completed execution
      // (ParallelExplorer aggregates progress through it); it runs before
      // the odometer advances, but its verdict applies after, so the
      // cursor a stop captures names the NEXT execution.
      const bool keep =
          hit_max_executions || keep_going == nullptr || keep_going(*report);
      // Odometer: advance the deepest decision that still has untried
      // alternatives; drop everything below it. A run that aborted early
      // (violation, POR prune) consumed fewer decisions than the stale path
      // holds, so first trim the path to what was actually replayed.
      // Positions inside the assigned prefix are never advanced — they
      // belong to other subtrees.
      const std::vector<size_t>& counts = driver.counts();
      PCC_ENSURE(path.size() >= counts.size(), "DFS: path shorter than counts");
      path.resize(counts.size());
      bool advanced = false;
      while (path.size() > floor) {
        if (path.back() + 1 < counts[path.size() - 1]) {
          ++path.back();
          advanced = true;
          break;
        }
        path.pop_back();
      }
      // POR bookkeeping below the advanced position is stale (it described
      // subtrees of the previous sibling); the level being advanced keeps
      // its explored-sibling list, which is exactly what the new sibling's
      // sleep sets need.
      if (por_ptr != nullptr && por.levels.size() > path.size()) {
        por.levels.resize(path.size());
      }
      // Budget stops (legacy priority order): resumable whenever the
      // subtree still has work (`advanced`).
      if (hit_max_executions) {
        report->truncated = true;
        capture(!advanced);
        return;
      }
      if (!keep) {
        report->truncated = true;
        capture(!advanced);
        return;
      }
      if (!advanced) {
        capture(true);
        return;  // full bounded subtree explored
      }
      common_decisions = path.size() - 1;  // everything before the bumped level
      MaybePeriodicCheckpoint(path, por.levels, *report);
    }
  }

  // Coordinator side of the parallel split: enumerates every reachable
  // decision-path prefix of length min(split_depth, run length) in DFS
  // order, together with the POR bookkeeping a worker needs to reconstruct
  // the serial sleep sets (see SubtreeWork). The returned prefixes
  // partition the execution space — each decision path extends exactly one
  // of them — so per-item RunDfsSubtree reports can be merged into the
  // serial result. Each probe run is structure discovery only (its stats
  // are discarded; the worker that owns the subtree re-runs it for real).
  // Sets *truncated if max_executions probes did not suffice to finish the
  // enumeration.
  std::vector<SubtreeWork> EnumerateSubtreePrefixes(int split_depth, bool* truncated) {
    PCC_ENSURE(split_depth >= 0, "split_depth must be non-negative");
    std::vector<SubtreeWork> items;
    Report scratch;
    std::vector<size_t> path;
    detail::PorContext por;
    detail::PorContext* por_ptr = PorActive() ? &por : nullptr;
    EnsureDurabilityInit();
    while (true) {
      detail::DfsDriver driver(&path);
      // Probe runs never claim a shared prefix: structure discovery only.
      // A durability stop during enumeration abandons it; the caller
      // checks stop_cause() and falls back to a single whole-tree item.
      if (StopAtBoundary() || !RunOnce(driver, &scratch, por_ptr, /*common_decisions=*/0)) {
        break;
      }
      const std::vector<size_t>& counts = driver.counts();
      PCC_ENSURE(path.size() >= counts.size(), "DFS: path shorter than counts");
      path.resize(counts.size());
      const size_t plen = std::min(static_cast<size_t>(split_depth), path.size());
      SubtreeWork item;
      item.prefix.assign(path.begin(), path.begin() + plen);
      if (por_ptr != nullptr) {
        // Ship, per prefix level, the alternatives explored before the one
        // the prefix takes — the sleep-set candidates a worker cannot
        // recompute (they belong to sibling subtrees).
        item.por_seed.resize(plen);
        for (size_t l = 0; l < plen; ++l) {
          const std::vector<detail::TriedAlt>& tried = por.levels[l].tried;
          const size_t keep = std::min(item.prefix[l], tried.size());
          item.por_seed[l].tried.assign(tried.begin(), tried.begin() + keep);
        }
      }
      items.push_back(std::move(item));
      if (scratch.executions >= options_.max_executions) {
        *truncated = true;
        break;
      }
      // Advance the odometer over the first split_depth levels only: one
      // work item per distinct reachable prefix.
      path.resize(plen);
      bool advanced = false;
      while (!path.empty()) {
        if (path.back() + 1 < counts[path.size() - 1]) {
          ++path.back();
          advanced = true;
          break;
        }
        path.pop_back();
      }
      if (!advanced) {
        break;
      }
      if (por_ptr != nullptr && por.levels.size() > path.size()) {
        por.levels.resize(path.size());
      }
    }
    return items;
  }

 private:
  using Clock = std::chrono::steady_clock;

  // The PCT depth batch `batch` runs at: pct_depth, or — under
  // swarm_vary_depth — cycling {d-1, d, d+1} (floored at 2) so one swarm
  // sweep covers several bug depths.
  int PctBatchDepth(uint64_t batch) const {
    int d = options_.pct_depth < 1 ? 1 : options_.pct_depth;
    if (!options_.swarm_vary_depth) {
      return d;
    }
    d += static_cast<int>(batch % 3) - 1;
    return d < 2 ? 2 : d;
  }

  // POR is sound only when sibling subtrees are explored in full: random
  // mode replays nothing, and preemption bounding (itself an unsound
  // reduction) can exclude exactly the sibling order a sleep set relies
  // on. Both therefore run unreduced.
  bool PorActive() const {
    return options_.use_por && options_.mode == ExplorerOptions::Mode::kExhaustive &&
           options_.max_preemptions < 0;
  }

  // ---- Durable-run machinery ----

  // Lazily arms the durability checks: Run() is not the only entry point
  // (ParallelExplorer workers call RunDfsSubtree directly), and the
  // deadline is measured from whichever entry came first. When nothing
  // durability-related is configured, durability_active_ stays false and
  // the per-decision poll is a single branch on a plain bool.
  void EnsureDurabilityInit() {
    if (durability_init_) {
      return;
    }
    durability_init_ = true;
    durability_active_ = options_.wall_deadline_ms > 0 || options_.max_memory_bytes > 0 ||
                         options_.cancel_token != nullptr || options_.cancel_after_decisions > 0;
    if (options_.wall_deadline_ms > 0) {
      deadline_ = Clock::now() + std::chrono::milliseconds(options_.wall_deadline_ms);
    }
    if (options_.max_memory_bytes > 0) {
      // Each memo cache gets a quarter of the budget with whole-shard
      // eviction (memo.h); the linearizer arena takes what remains. The
      // caps keep steady-state usage under the budget; the oom stop is the
      // backstop when the arena alone exceeds it.
      verdict_cache_->set_max_bytes(options_.max_memory_bytes / 4);
      frontier_cache_->set_max_bytes(options_.max_memory_bytes / 4);
    }
  }

  // The per-decision poll. Token and decision-count checks are O(1) every
  // call; the clock and memory walks are amortized (every 256 decisions) —
  // StopAtBoundary() forces them between executions, so coarse-grained
  // stops are never missed, only decision-granular ones delayed.
  bool StopRequested() {
    if (stop_cause_ != RunOutcome::kComplete) {
      return true;
    }
    if (options_.cancel_token != nullptr && options_.cancel_token->canceled()) {
      stop_cause_ = RunOutcome::kCanceled;
      return true;
    }
    if (options_.cancel_after_decisions > 0 &&
        decisions_total_ >= options_.cancel_after_decisions && execs_completed_ > 0) {
      stop_cause_ = RunOutcome::kCanceled;
      return true;
    }
    if ((++poll_gate_ & 0xFF) == 0) {
      return CheckDeadlineAndMemory();
    }
    return false;
  }

  bool CheckDeadlineAndMemory() {
    if (options_.wall_deadline_ms > 0 && Clock::now() >= deadline_) {
      stop_cause_ = RunOutcome::kDeadline;
      return true;
    }
    if (options_.max_memory_bytes > 0 && approx_memory_bytes() > options_.max_memory_bytes) {
      stop_cause_ = RunOutcome::kOom;
      return true;
    }
    return false;
  }

  // Execution-boundary poll: unamortized, so deadline and memory budget
  // are enforced at least once per execution even when the decision-point
  // gate never fires.
  bool StopAtBoundary() {
    if (!durability_active_) {
      return false;
    }
    if (stop_cause_ != RunOutcome::kComplete) {
      return true;
    }
    if (options_.cancel_token != nullptr && options_.cancel_token->canceled()) {
      stop_cause_ = RunOutcome::kCanceled;
      return true;
    }
    return CheckDeadlineAndMemory();
  }

  Report RunRandomMode() {
    Report report;
    detail::RandomDriver driver(options_.seed, options_.crash_probability,
                                options_.env_probability);
    for (uint64_t i = 0; i < options_.random_runs; ++i) {
      if (StopAtBoundary() || !RunOnce(driver, &report, nullptr, /*common_decisions=*/0)) {
        // Random runs are not resumable (the RNG stream has no durable
        // cursor); a durability stop just ends the sampling early with the
        // outcome tagged.
        report.truncated = true;
        break;
      }
      ++execs_completed_;
      NotifyProgress(report);
      if (report.violations.size() >= static_cast<size_t>(options_.max_violations)) {
        break;
      }
    }
    return report;
  }

  // Serial PCT/swarm driver: the same item loop as RunExhaustiveMode but
  // over BuildPctItems slices, with run-granular resume (next_path holds
  // the single cursor value: the next run index of the in-progress slice).
  // A slice that hit max_violations counts as finished — like the
  // exhaustive engine, later slices still run and the aggregate is trimmed,
  // which keeps the report a pure function of the item list.
  Report RunPctMode() {
    std::vector<CheckpointSubtree> items;
    bool resumed = TryResume(&items);
    if (!resumed) {
      items = BuildPctItems();
    }
    for (size_t i = 0; i < items.size(); ++i) {
      CheckpointSubtree& item = items[i];
      if (item.state == CheckpointSubtree::State::kDone) {
        continue;
      }
      PCC_ENSURE(item.prefix.size() == 3, "PCT checkpoint item: malformed slice");
      const uint64_t batch = item.prefix[0];
      const uint64_t hi = item.prefix[2];
      uint64_t start = item.prefix[1];
      if (item.state == CheckpointSubtree::State::kInProgress && !item.next_path.empty()) {
        start = item.next_path[0];
      }
      last_checkpoint_execs_ = 0;  // cadence is per-slice (partial resets)
      periodic_hook_ = [this, &items, i](const std::vector<size_t>& next_path,
                                         const std::vector<detail::PorLevel>&) {
        CheckpointSubtree& cur = items[i];
        cur.state = CheckpointSubtree::State::kInProgress;
        cur.next_path = next_path;
        WriteCheckpoint(items, /*parallel=*/false);
      };
      uint64_t next_run = start;
      const bool finished = RunPctSlice(batch, start, hi, &item.partial,
                                        /*keep_going=*/nullptr, &next_run);
      periodic_hook_ = nullptr;
      if (finished) {
        item.state = CheckpointSubtree::State::kDone;
        item.next_path.clear();
      } else {
        item.state = CheckpointSubtree::State::kInProgress;
        item.next_path = {static_cast<size_t>(next_run)};
      }
      if (stop_cause_ != RunOutcome::kComplete) {
        break;  // drain: later slices stay pending in the checkpoint
      }
    }
    if (!options_.checkpoint_path.empty()) {
      WriteCheckpoint(items, /*parallel=*/false);
    }
    Report aggregate;
    aggregate.resumed = resumed;
    for (const CheckpointSubtree& item : items) {
      MergeReport(&aggregate, item.partial);
    }
    TrimReportViolations(&aggregate, options_.max_violations);
    return aggregate;
  }

  Report RunExhaustiveMode() {
    std::vector<CheckpointSubtree> items;
    bool resumed = TryResume(&items);
    if (!resumed) {
      items.emplace_back();  // one pending whole-tree item, floor 0
    }
    for (size_t i = 0; i < items.size(); ++i) {
      CheckpointSubtree& item = items[i];
      if (item.state == CheckpointSubtree::State::kDone) {
        continue;
      }
      SubtreeWork work;
      if (item.state == CheckpointSubtree::State::kInProgress) {
        work.prefix = item.next_path;
        work.por_seed = item.por_levels;
        work.floor = item.floor;
      } else {
        work.prefix = item.prefix;
        work.por_seed = item.por_levels;
        work.floor = item.floor;
      }
      // Arm the periodic-checkpoint hook with this item's context: a
      // snapshot marks items before i done, i in-progress at the hook's
      // cursor, and the rest pending.
      periodic_hook_ = [this, &items, i](const std::vector<size_t>& next_path,
                                         const std::vector<detail::PorLevel>& por_levels) {
        CheckpointSubtree& cur = items[i];
        cur.state = CheckpointSubtree::State::kInProgress;
        cur.next_path = next_path;
        cur.por_levels = por_levels;
        WriteCheckpoint(items, /*parallel=*/false);
      };
      SubtreeCursor cursor;
      RunDfsSubtree(std::move(work), &item.partial, /*keep_going=*/nullptr, &cursor);
      periodic_hook_ = nullptr;
      if (cursor.finished) {
        item.state = CheckpointSubtree::State::kDone;
        item.next_path.clear();
        item.por_levels.clear();
      } else {
        item.state = CheckpointSubtree::State::kInProgress;
        item.next_path = std::move(cursor.next_path);
        item.por_levels = std::move(cursor.por_levels);
        item.floor = cursor.floor;
      }
      if (stop_cause_ != RunOutcome::kComplete) {
        break;  // drain: later items stay pending in the checkpoint
      }
    }
    if (!options_.checkpoint_path.empty()) {
      // Written on completion too: resuming a finished checkpoint returns
      // the full report without re-running anything.
      WriteCheckpoint(items, /*parallel=*/false);
    }
    Report aggregate;
    aggregate.resumed = resumed;
    for (const CheckpointSubtree& item : items) {
      MergeReport(&aggregate, item.partial);
    }
    TrimReportViolations(&aggregate, options_.max_violations);
    return aggregate;
  }

  // Loads options_.resume_path if set and valid; restores the work items
  // and the verdict cache. Any rejection (torn, corrupt, version bump,
  // config mismatch) warns on stderr and returns false — the caller
  // starts from scratch, which is always sound.
  bool TryResume(std::vector<CheckpointSubtree>* items) {
    if (options_.resume_path.empty()) {
      return false;
    }
    CheckpointData data;
    Status st = LoadCheckpoint(options_.resume_path, ExplorationConfigFp(options_), &data);
    if (!st.ok()) {
      std::fprintf(stderr, "[explorer] resume rejected, starting fresh: %s\n",
                   st.ToString().c_str());
      return false;
    }
    *items = std::move(data.subtrees);
    for (CheckpointSubtree& item : *items) {
      // The interruption is healed by resuming: the final report's
      // truncated/outcome reflect THIS run, not the interrupted one.
      item.partial.truncated = false;
      item.partial.outcome = RunOutcome::kComplete;
    }
    for (const auto& [fp, verdict] : data.verdicts) {
      verdict_cache_->Insert(fp, verdict, VerdictEntryBytes(verdict));
    }
    return true;
  }

  void WriteCheckpoint(const std::vector<CheckpointSubtree>& items, bool parallel) {
    if (options_.checkpoint_path.empty()) {
      return;
    }
    CheckpointData data;
    data.config_fp = ExplorationConfigFp(options_);
    data.parallel = parallel;
    data.outcome = stop_cause_;
    data.subtrees = items;
    if (options_.dedup_histories) {
      verdict_cache_->ForEach([&](const Hash128& fp, const std::optional<std::string>& verdict) {
        data.verdicts.emplace_back(fp, verdict);
      });
    }
    Status st = SaveCheckpoint(options_.checkpoint_path, data);
    if (!st.ok()) {
      std::fprintf(stderr, "[explorer] checkpoint write failed: %s\n", st.ToString().c_str());
      return;
    }
    last_checkpoint_time_ = Clock::now();
  }

  // Periodic-cadence gate, called once per completed execution from the
  // DFS loop (serial runs only; parallel periodic checkpoints are the
  // coordinator's job).
  void MaybePeriodicCheckpoint(const std::vector<size_t>& next_path,
                               const std::vector<detail::PorLevel>& por_levels,
                               const Report& report) {
    if (periodic_hook_ == nullptr || options_.checkpoint_path.empty()) {
      return;
    }
    bool due = false;
    if (options_.checkpoint_every_execs > 0 &&
        report.executions >= last_checkpoint_execs_ + options_.checkpoint_every_execs) {
      due = true;
    }
    if (!due && options_.checkpoint_every_secs > 0 &&
        Clock::now() >= last_checkpoint_time_ +
                            std::chrono::seconds(options_.checkpoint_every_secs)) {
      due = true;
    }
    if (!due) {
      return;
    }
    last_checkpoint_execs_ = report.executions;
    periodic_hook_(next_path, por_levels);
  }

  void NotifyProgress(const Report& report) {
    if (options_.progress_callback != nullptr && options_.progress_interval > 0 &&
        report.executions % options_.progress_interval == 0) {
      options_.progress_callback(ExplorerProgress{
          report.executions, report.total_steps, static_cast<uint64_t>(report.violations.size()),
          report.histories_checked, report.histories_deduped, report.por_pruned});
    }
  }
  proc::Task<void> ClientThread(int client, const std::vector<Op>* ops, Instance<Spec>* inst,
                                History<Spec>* history) {
    for (const Op& op : *ops) {
      uint64_t id = history->Invoke(client, op);
      Ret ret = co_await inst->run_op(client, id, op);
      history->Return(id, ret);
    }
  }

  proc::Task<void> RecoveryThread(Instance<Spec>* inst, History<Spec>* history) {
    co_await inst->recover(history);
  }

  proc::Task<void> ProgramThread(std::function<proc::Task<void>(OpRunner<Spec>*)> program,
                                 Instance<Spec>* inst, History<Spec>* history, int client) {
    OpRunner<Spec> runner(inst, history, client);
    co_await program(&runner);
  }

  // The final observation phase: fixed ops first, then the dynamic
  // observer program, all sequentially on one thread.
  proc::Task<void> ObserverThread(Instance<Spec>* inst, History<Spec>* history, int client) {
    OpRunner<Spec> runner(inst, history, client);
    for (const Op& op : inst->observer_ops) {
      (void)co_await runner.Run(op);
    }
    if (inst->observer_program != nullptr) {
      co_await inst->observer_program(&runner);
    }
  }

  // Sleep-set transition for one taken alternative: entries whose pending
  // step conflicts with what just ran wake up (their step may now differ);
  // fully explored earlier siblings that commute with the taken step go to
  // sleep in its subtree. Only thread alternatives ever sleep.
  static void AdvanceSleepSet(std::vector<detail::SleepEntry>* sleep,
                              const detail::PorLevel& level, size_t pick,
                              const detail::Alt& alt, const proc::Footprint& taken_fp) {
    if (alt.kind == detail::AltKind::kCrash || alt.kind == detail::AltKind::kProceed) {
      // A crash kills every thread (tids are even reused by recovery), and
      // the quiescent proceed point has no runnable threads: no sleeping
      // entry can remain meaningful.
      sleep->clear();
      return;
    }
    std::vector<detail::SleepEntry> next;
    next.reserve(sleep->size() + pick);
    for (const detail::SleepEntry& e : *sleep) {
      if (!proc::FootprintsConflict(e.footprint, taken_fp)) {
        next.push_back(e);
      }
    }
    for (size_t j = 0; j < pick && j < level.tried.size(); ++j) {
      const detail::TriedAlt& t = level.tried[j];
      if (t.kind != detail::AltKind::kThread) {
        continue;
      }
      if (!proc::FootprintsConflict(t.footprint, taken_fp)) {
        next.push_back(detail::SleepEntry{t.thread, t.footprint});
      }
    }
    *sleep = std::move(next);
  }

  // `por` non-null activates sleep-set pruning for this run (exhaustive
  // replays only; RandomDriver passes nullptr). `common_decisions` is the
  // caller's guarantee that this run's first decisions replay the previous
  // run's — the basis for resuming the linearizability search mid-history
  // (frontier-spine reuse) and for skipping footprint re-collection on
  // pure-replay steps.
  //
  // Returns false when a durability stop (cancel/deadline/oom) abandoned
  // the execution mid-run. Every Report counter it had touched is rolled
  // back to its entry value, so an aborted execution is indistinguishable
  // from one that never started — the caller re-runs the same decision
  // path on resume and deterministic replay reproduces it exactly.
  bool RunOnce(detail::Driver& driver, Report* report, detail::PorContext* por,
               size_t common_decisions) {
    const uint64_t entry_executions = report->executions;
    const uint64_t entry_crashes = report->crashes_injected;
    const uint64_t entry_env = report->env_events_fired;
    const size_t entry_violations = report->violations.size();
    ++report->executions;
    // Events shared with the previous run: everything recorded before the
    // first differing decision. Chained through spine_valid_events_ so the
    // guarantee holds against the checker's retained spine even across
    // intermediate runs that never reached the checker (POR prunes, early
    // violations, dedup hits).
    size_t common_events = 0;
    if (common_decisions > 0) {
      PCC_ENSURE(common_decisions < prev_events_at_decision_.size(),
                 "spine reuse: shared decisions exceed the previous run");
      common_events = prev_events_at_decision_[common_decisions];
    }
    const size_t spine_reuse = std::min(spine_valid_events_, common_events);
    spine_valid_events_ = spine_reuse;  // pessimistic default; Check resets it
    prev_events_at_decision_.clear();

    Instance<Spec> inst = factory_();
    History<Spec> history;
    proc::Scheduler sched;
    proc::SchedulerScope scope(&sched);
    if (por != nullptr) {
      sched.EnableFootprintCollection(true);
    }

    for (size_t c = 0; c < inst.client_ops.size(); ++c) {
      sched.Spawn(ClientThread(static_cast<int>(c), &inst.client_ops[c], &inst, &history),
                  "client" + std::to_string(c));
    }
    for (size_t p = 0; p < inst.client_programs.size(); ++p) {
      int client = static_cast<int>(inst.client_ops.size() + p);
      sched.Spawn(ProgramThread(inst.client_programs[p], &inst, &history, client),
                  "client" + std::to_string(client));
    }
    const int observer_client =
        static_cast<int>(inst.client_ops.size() + inst.client_programs.size());
    const bool has_observers = !inst.observer_ops.empty() || inst.observer_program != nullptr;

    int crashes_used = 0;
    int preemptions_used = 0;
    proc::Scheduler::Tid last_thread = proc::Scheduler::kInvalidTid;
    std::vector<int> env_budget;
    env_budget.reserve(inst.env_events.size());
    for (const EnvEvent& e : inst.env_events) {
      env_budget.push_back(e.budget);
    }
    bool observers_started = false;
    uint64_t steps = 0;
    size_t decision_level = 0;
    std::vector<detail::SleepEntry> sleep;
    std::string trace;
    schedule_log_.clear();
    auto add_violation = [&](std::string kind, std::string detail_msg) {
      if (report->violations.size() < static_cast<size_t>(options_.max_violations)) {
        Violation v{std::move(kind), std::move(detail_msg), trace.empty() ? "(empty)" : trace};
        v.schedule = schedule_log_;
        report->violations.push_back(std::move(v));
      }
    };

    // Presents `alts` (already sleep-filtered by the caller) to the driver,
    // executes nothing itself: returns the chosen index after recording the
    // trace label and step count. The history-event watermark per decision
    // feeds the next run's frontier-spine reuse.
    auto choose = [&](const std::vector<detail::Alt>& alts) -> size_t {
      prev_events_at_decision_.push_back(history.events.size());
      ++decisions_total_;
      size_t pick = driver.Choose(alts);
      PCC_ENSURE(pick < alts.size(), "driver picked an invalid alternative");
      if (!trace.empty()) {
        trace += ' ';
      }
      trace += alts[pick].label;
      schedule_log_.push_back(ScheduleDecision{alts[pick].kind, alts[pick].thread,
                                               static_cast<uint32_t>(alts[pick].env)});
      ++steps;
      return pick;
    };
    // Replay shortcut: when this decision re-takes an alternative whose
    // footprint the POR bookkeeping already holds (tried[pick] exists),
    // deterministic replay makes re-collecting it redundant — return the
    // cached footprint and disable collection for the step. A fresh
    // alternative (pick == tried.size(), including the odometer's bumped
    // level and the truncated seeds of parallel work items) collects
    // normally.
    auto replay_footprint = [&](const std::vector<detail::Alt>& alts,
                                size_t pick) -> const proc::Footprint* {
      if (por == nullptr) {
        return nullptr;
      }
      const detail::PorLevel& level = por->levels[decision_level];
      if (pick >= level.tried.size()) {
        sched.EnableFootprintCollection(true);
        return nullptr;
      }
      const detail::TriedAlt& t = level.tried[pick];
      PCC_ENSURE(t.kind == alts[pick].kind && t.thread == alts[pick].thread,
                 "POR replay divergence: cached alternative does not match");
      sched.EnableFootprintCollection(false);
      return &t.footprint;
    };
    // POR bookkeeping after the chosen alternative ran, with the footprint
    // its step produced; advances the sleep set and persists the footprint
    // for later siblings at this level.
    auto after_step = [&](const std::vector<detail::Alt>& alts, size_t pick,
                          const proc::Footprint& fp) {
      if (por == nullptr) {
        ++decision_level;
        return;
      }
      detail::PorLevel& level = por->levels[decision_level];
      if (pick == level.tried.size()) {
        level.tried.push_back(detail::TriedAlt{alts[pick].kind, alts[pick].thread, fp});
      }
      AdvanceSleepSet(&sleep, level, pick, alts[pick], fp);
      ++decision_level;
    };
    // Ensures a PorLevel exists for the current decision.
    auto ensure_level = [&] {
      if (por != nullptr && decision_level == por->levels.size()) {
        por->levels.emplace_back();
      }
    };

    while (true) {
      // Durability poll, once per decision point (amortized clock/memory
      // reads inside StopRequested). An abandoned execution is rolled back
      // wholesale — see the function comment.
      if (durability_active_ && StopRequested()) {
        report->executions = entry_executions;
        report->crashes_injected = entry_crashes;
        report->env_events_fired = entry_env;
        if (report->violations.size() > entry_violations) {
          report->violations.resize(entry_violations);
        }
        return false;
      }

      // Crash invariants must hold at every step (§5.1).
      if (inst.crash_invariants != nullptr) {
        if (auto broken = inst.crash_invariants->FirstViolation()) {
          add_violation("crash-invariant", "invariant '" + *broken + "' does not hold");
          report->total_steps += steps;
          return true;
        }
      }

      if (sched.AllDone()) {
        if (observers_started) {
          break;  // execution complete
        }
        // Quiescent point: every thread has finished. The durability of
        // completed operations matters precisely here, so offer one more
        // decision — proceed to observation, or inject a crash first.
        bool crash_possible = inst.recover != nullptr && crashes_used < options_.max_crashes;
        bool env_possible = false;
        for (size_t i = 0; i < inst.env_events.size(); ++i) {
          env_possible = env_possible || env_budget[i] > 0;
        }
        if (crash_possible || env_possible) {
          std::vector<detail::Alt> alts;
          alts.push_back(detail::Alt{detail::AltKind::kProceed, -1, 0, "observe"});
          if (crash_possible) {
            alts.push_back(detail::Alt{detail::AltKind::kCrash, -1, 0, "CRASH"});
          }
          for (size_t i = 0; i < inst.env_events.size(); ++i) {
            if (env_budget[i] > 0) {
              alts.push_back(detail::Alt{detail::AltKind::kEnv, -1, i, inst.env_events[i].name});
            }
          }
          ensure_level();
          size_t pick = choose(alts);
          const detail::Alt& alt = alts[pick];
          if (alt.kind == detail::AltKind::kCrash) {
            ++crashes_used;
            ++report->crashes_injected;
            history.Crash();
            sched.KillAllThreads();
            inst.world->Crash();
            sched.Spawn(RecoveryThread(&inst, &history), "recovery");
            after_step(alts, pick, proc::Footprint{});
            continue;
          }
          if (alt.kind == detail::AltKind::kEnv) {
            --env_budget[alt.env];
            ++report->env_events_fired;
            const proc::Footprint* cached = replay_footprint(alts, pick);
            sched.BeginExternalFootprint();
            inst.env_events[alt.env].fire();
            after_step(alts, pick, cached != nullptr ? *cached : sched.last_footprint());
            continue;
          }
          // fall through: proceed to observation
          after_step(alts, pick, proc::Footprint{});
        }
        observers_started = true;
        if (!has_observers) {
          break;
        }
        sched.Spawn(ObserverThread(&inst, &history, observer_client), "observer");
        continue;
      }
      if (sched.Deadlocked()) {
        add_violation("deadlock", "live threads but none runnable\n" + history.ToString());
        report->total_steps += steps;
        return true;
      }
      if (steps >= options_.max_steps_per_run) {
        add_violation("step-bound",
                      "execution exceeded " + std::to_string(options_.max_steps_per_run) +
                          " steps (possible nontermination)");
        report->total_steps += steps;
        return true;
      }

      // Build the alternatives for this decision point.
      std::vector<detail::Alt> alts;
      std::vector<proc::Scheduler::Tid> runnable = sched.RunnableThreads();
      bool last_still_runnable = false;
      for (proc::Scheduler::Tid tid : runnable) {
        last_still_runnable = last_still_runnable || tid == last_thread;
      }
      const bool preemption_exhausted =
          options_.max_preemptions >= 0 && preemptions_used >= options_.max_preemptions;
      for (proc::Scheduler::Tid tid : runnable) {
        if (preemption_exhausted && last_still_runnable && tid != last_thread) {
          continue;  // switching away now would be one preemption too many
        }
        if (por != nullptr) {
          bool asleep = false;
          for (const detail::SleepEntry& e : sleep) {
            asleep = asleep || e.thread == tid;
          }
          if (asleep) {
            continue;  // its subtree here commutes with an explored one
          }
        }
        alts.push_back(detail::Alt{detail::AltKind::kThread, tid, 0, "t" + std::to_string(tid)});
      }
      if (!observers_started && inst.recover != nullptr && crashes_used < options_.max_crashes) {
        alts.push_back(detail::Alt{detail::AltKind::kCrash, -1, 0, "CRASH"});
      }
      // Environment events (disk failures, ...) can strike at any time —
      // including while the observers probe the final state, which is how
      // §3.1's failover inconsistency ("read v, disk 1 fails, read old
      // value") becomes observable.
      for (size_t i = 0; i < inst.env_events.size(); ++i) {
        if (env_budget[i] > 0) {
          alts.push_back(detail::Alt{detail::AltKind::kEnv, -1, i, inst.env_events[i].name});
        }
      }
      if (alts.empty()) {
        // Every runnable thread is asleep and no crash/env alternative
        // remains: every continuation from here commutes with a schedule
        // the DFS already explored. Abandon the execution without a
        // history; the odometer backtracks past this node.
        PCC_ENSURE(por != nullptr, "empty alternative set without POR");
        ++report->por_pruned;
        report->total_steps += steps;
        return true;
      }

      ensure_level();
      size_t pick = choose(alts);
      const detail::Alt& alt = alts[pick];

      switch (alt.kind) {
        case detail::AltKind::kThread: {
          if (last_still_runnable && alt.thread != last_thread) {
            ++preemptions_used;
          }
          last_thread = alt.thread;
          const proc::Footprint* cached = replay_footprint(alts, pick);
          try {
            sched.Step(alt.thread);
          } catch (const UbViolation& ub) {
            add_violation("undefined-behavior", ub.what() + ("\n" + history.ToString()));
            report->total_steps += steps;
            return true;
          }
          after_step(alts, pick, cached != nullptr ? *cached : sched.last_footprint());
          break;
        }
        case detail::AltKind::kCrash: {
          ++crashes_used;
          ++report->crashes_injected;
          history.Crash();
          sched.KillAllThreads();
          inst.world->Crash();
          sched.Spawn(RecoveryThread(&inst, &history), "recovery");
          last_thread = proc::Scheduler::kInvalidTid;  // no thread survived
          after_step(alts, pick, proc::Footprint{});
          break;
        }
        case detail::AltKind::kEnv: {
          --env_budget[alt.env];
          ++report->env_events_fired;
          const proc::Footprint* cached = replay_footprint(alts, pick);
          sched.BeginExternalFootprint();
          inst.env_events[alt.env].fire();
          after_step(alts, pick, cached != nullptr ? *cached : sched.last_footprint());
          break;
        }
        case detail::AltKind::kProceed:
          PCC_ENSURE(false, "proceed alternative outside the quiescent point");
          break;
      }
    }

    report->total_steps += steps;
    ++report->histories_checked;
    checker_.set_frontier_cache(options_.memoize_spec_prefixes ? frontier_cache_ : nullptr);
    // Runs the persistent checker, resuming its retained frontier spine at
    // the deepest event this history provably shares with the spine's
    // source. After a Check the spine covers THIS history in full, so the
    // next run's guarantee is bounded only by its own shared prefix.
    auto check_history = [&]() -> std::optional<std::string> {
      std::optional<std::string> why = checker_.Check(history, spine_reuse);
      spine_valid_events_ = static_cast<size_t>(-1);
      return why;
    };
    if (options_.dedup_histories) {
      // Fingerprint pruning: identical histories get identical verdicts, so
      // replay the cached verdict instead of re-running the search. Only
      // the spec check is skipped — the execution itself (crash invariants,
      // UB, deadlock, step bound) already ran in full above.
      Hash128 fp = FingerprintHistory(history);
      std::optional<std::string> cached;
      if (verdict_cache_->Lookup(fp, &cached)) {
        ++report->histories_deduped;
        if (cached.has_value()) {
          add_violation("non-linearizable", *cached);
        }
        return true;
      }
      std::optional<std::string> why = check_history();
      verdict_cache_->Insert(fp, why, VerdictEntryBytes(why));
      if (why.has_value()) {
        add_violation("non-linearizable", *why);
      }
      report->spec_states_explored += checker_.states_explored();
      return true;
    }
    if (auto why = check_history()) {
      add_violation("non-linearizable", *why);
    }
    report->spec_states_explored += checker_.states_explored();
    return true;
  }

  Spec spec_;
  Factory factory_;
  ExplorerOptions options_;
  // The persistent linearizability checker: its frontier spine (and dedup
  // arena) carries over between executions, which is what RunOnce's
  // spine_reuse resumes into.
  LinearizabilityChecker<Spec> checker_{&spec_};
  // Events of the checker spine's source history known to coincide with the
  // NEXT run's history (chained across runs that skip the checker).
  size_t spine_valid_events_ = 0;
  // Per-decision history-event watermarks of the previous RunOnce.
  std::vector<size_t> prev_events_at_decision_;
  // Every decision of the execution currently inside RunOnce, in order —
  // copied into each Violation as its machine-replayable witness.
  std::vector<ScheduleDecision> schedule_log_;
  // Private default caches; ParallelExplorer injects shared ones.
  VerdictCache own_verdicts_;
  FrontierCache own_frontiers_;
  VerdictCache* verdict_cache_ = &own_verdicts_;
  FrontierCache* frontier_cache_ = &own_frontiers_;

  // ---- Durable-run state ----
  bool durability_init_ = false;
  bool durability_active_ = false;  // false => the per-decision poll is one branch
  RunOutcome stop_cause_ = RunOutcome::kComplete;
  // Executions completed by THIS engine (replays included) — gates the
  // cancel_after_decisions hook so every resume leg makes progress.
  uint64_t execs_completed_ = 0;
  Clock::time_point deadline_{};
  uint64_t decisions_total_ = 0;  // across every execution of this engine
  uint64_t poll_gate_ = 0;        // amortizes clock/memory reads in StopRequested
  uint64_t last_checkpoint_execs_ = 0;
  Clock::time_point last_checkpoint_time_ = Clock::now();
  // Set by RunExhaustiveMode around each item; invoked by the DFS loop at
  // the periodic cadence with the would-be-next cursor position.
  std::function<void(const std::vector<size_t>&, const std::vector<detail::PorLevel>&)>
      periodic_hook_;
};

}  // namespace perennial::refine

#endif  // PERENNIAL_SRC_REFINE_EXPLORER_H_
