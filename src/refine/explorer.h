// The schedule-and-crash-point explorer: the executable stand-in for the
// universal quantification in Perennial's theorems.
//
// Where the paper's Coq proof covers all interleavings and all crash points
// by deduction, the explorer covers them by enumeration: it drives the
// modeled system (coroutine threads over the deterministic scheduler)
// through either every schedule up to configured bounds (exhaustive DFS) or
// a randomized sample, injecting machine crashes between any two atomic
// steps — including during recovery — and environment events such as disk
// failures. Every execution yields a history that is checked for
// concurrent recovery refinement (linearize.h), and registered crash
// invariants (src/cap) are evaluated at every step.
//
// Detected violation classes:
//   * non-linearizable  — no spec interleaving explains the history
//   * crash-invariant   — a registered invariant failed at some step
//   * undefined-behavior— the modeled program raised UbViolation
//   * deadlock          — live threads, none runnable
//   * step-bound        — execution exceeded max_steps_per_run (possible
//                         nontermination, e.g. the §9.5 Pickup loop bug)
//
// Partial-order reduction (use_por): the exhaustive DFS prunes schedules
// with SLEEP SETS over dynamic access footprints (src/proc/footprint.h).
// When sibling scheduling choices at a decision node are pairwise
// independent — disjoint footprints, neither a crash nor an environment
// alternative — exploring one sibling's subtree covers the other orders,
// so later siblings' subtrees put the explored thread "to sleep": its
// alternative is filtered from every descendant decision until some step
// conflicts with the footprint it had at the branch. A node whose every
// alternative is asleep is redundant in full (counted in
// Report::por_pruned, no history emitted). Soundness invariants:
//   * only THREAD alternatives are ever slept — crash points and
//     environment events are the quantification the checker exists to
//     cover, and they are pruned by nothing;
//   * a step with no footprint annotation conflicts with everything
//     (opaque-by-default, so unannotated code costs pruning, not bugs);
//   * invariant-visible effects (disk writes, help-registry updates) share
//     a dedicated resource, so steps crash invariants can observe are
//     never reordered past one another;
//   * history appends share a resource, so the set of DISTINCT histories —
//     and therefore every linearizability verdict — is POR-invariant, and
//     the DFS-leftmost member of each commutation class is never pruned
//     (the first violation found is bit-identical with POR on or off).
// POR engages only in the fully exhaustive regime: preemption bounding
// already prunes unsoundly (it is a bug-finding heuristic), and sleep sets
// assume the sibling subtree was explored in full, so max_preemptions >= 0
// disables POR rather than compound two incomparable reductions.
//
// Parallelism: this header is the single-threaded reference engine. The
// decision tree it walks is prefix-partitionable — every execution is fully
// determined by its decision path, and factories are required to be
// deterministic — so ParallelExplorer (parallel_explorer.h) enumerates
// decision-path prefixes via EnumerateSubtreePrefixes() and hands each
// disjoint subtree to a worker that re-runs this engine via
// RunDfsSubtree(). Work items carry the POR bookkeeping for their prefix
// (the footprints of already-explored sibling alternatives), so workers
// reconstruct exactly the serial engine's sleep sets. Two further knobs
// support that use:
//   * dedup_histories — fingerprint completed histories (src/base/hash.h)
//     and skip the linearizability search for repeats. Sound because the
//     spec check depends only on the history, every execution still runs in
//     full (crash invariants, UB, deadlock, and step bounds are evaluated
//     during execution), and a cached violating verdict is re-reported for
//     every duplicate, so the violation set is unchanged. The cache is a
//     ShardedMemo (memo.h) that ParallelExplorer shares across workers.
//   * progress_callback — periodic cumulative counts for long runs and
//     benches, observed after each execution completes (so dedup counts
//     are post-dedup).
#ifndef PERENNIAL_SRC_REFINE_EXPLORER_H_
#define PERENNIAL_SRC_REFINE_EXPLORER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/base/hash.h"
#include "src/base/panic.h"
#include "src/base/rand.h"
#include "src/cap/crash_invariant.h"
#include "src/goose/world.h"
#include "src/proc/footprint.h"
#include "src/proc/scheduler.h"
#include "src/proc/task.h"
#include "src/refine/history.h"
#include "src/refine/linearize.h"
#include "src/refine/memo.h"

#ifndef PCC_POR_DEFAULT
#define PCC_POR_DEFAULT 1
#endif

namespace perennial::refine {

// An environment event the explorer may fire between steps (e.g. "fail
// disk 1"). `budget` bounds how many times it fires per execution.
struct EnvEvent {
  std::string name;
  int budget = 1;
  std::function<void()> fire;
};

template <typename Spec>
struct Instance;

// Handed to dynamic client programs: runs one spec-level operation against
// the implementation while recording its invocation and response in the
// history. Programs can branch on returned values (e.g. delete the ids a
// pickup returned).
template <typename Spec>
class OpRunner {
 public:
  OpRunner(Instance<Spec>* inst, History<Spec>* history, int client)
      : inst_(inst), history_(history), client_(client) {}

  proc::Task<typename Spec::Ret> Run(typename Spec::Op op) {
    uint64_t id = history_->Invoke(client_, op);
    typename Spec::Ret ret = co_await inst_->run_op(client_, id, op);
    history_->Return(id, ret);
    co_return ret;
  }

  int client() const { return client_; }

 private:
  Instance<Spec>* inst_;
  History<Spec>* history_;
  int client_;
};

// One freshly constructed system under test. Factories must be
// deterministic: the DFS explorer replays prefixes by reconstruction.
template <typename Spec>
struct Instance {
  using Op = typename Spec::Op;
  using Ret = typename Spec::Ret;

  // Owns the world/system objects the raw pointers below refer to.
  std::shared_ptr<void> keep_alive;
  goose::World* world = nullptr;
  // Optional: invariants checked at every step (nullptr to skip).
  const cap::CrashInvariants* crash_invariants = nullptr;
  // Per-client operation sequences; client i runs its ops in order.
  std::vector<std::vector<Op>> client_ops;
  // Dynamic client programs (run as additional clients after client_ops
  // threads): each receives an OpRunner and may branch on results.
  std::vector<std::function<proc::Task<void>(OpRunner<Spec>*)>> client_programs;
  // Dynamic observer program run at the end (in addition to observer_ops).
  std::function<proc::Task<void>(OpRunner<Spec>*)> observer_program;
  // Runs one operation. `op_id` identifies the op instance for helping.
  std::function<proc::Task<Ret>(int client, uint64_t op_id, Op op)> run_op;
  // Recovery procedure; run after each crash (null: crashes not explored).
  std::function<proc::Task<void>(History<Spec>*)> recover;
  // Ops probed sequentially at the end of the execution (after recovery if
  // a crash happened); they pin down the surviving durable state.
  std::vector<Op> observer_ops;
  std::vector<EnvEvent> env_events;
};

// Cumulative counts handed to ExplorerOptions::progress_callback. All
// fields are post-execution values: histories_checked/deduped reflect the
// dedup decision already taken for the execution just finished.
struct ExplorerProgress {
  uint64_t executions = 0;
  uint64_t total_steps = 0;
  uint64_t violations = 0;
  uint64_t histories_checked = 0;
  uint64_t histories_deduped = 0;
  uint64_t por_pruned = 0;
};

struct ExplorerOptions {
  enum class Mode { kExhaustive, kRandom };
  Mode mode = Mode::kExhaustive;

  int max_crashes = 1;                  // crashes injected per execution
  // CHESS-style preemption bounding: a "preemption" is scheduling away
  // from a thread that could have kept running. -1 = unbounded (full
  // exhaustiveness within the other bounds); small values (0-2) shrink the
  // schedule space drastically while still catching most concurrency bugs.
  int max_preemptions = -1;
  uint64_t max_steps_per_run = 5000;    // nontermination bound
  uint64_t max_executions = 2'000'000;  // DFS safety cap
  int max_violations = 3;               // stop collecting after this many

  // Random mode:
  uint64_t random_runs = 1000;
  uint64_t seed = 1;
  double crash_probability = 0.05;  // per-step chance of injecting a crash
  double env_probability = 0.05;    // per-step chance of firing an env event

  // Skip the linearizability search for completed histories whose 128-bit
  // fingerprint was already checked this run (see the header comment for
  // the soundness argument). Counted in Report::histories_deduped.
  bool dedup_histories = false;

  // Sleep-set dynamic partial-order reduction (header comment). Effective
  // only for exhaustive mode with unbounded preemptions; the compile-time
  // default comes from the PCC_POR CMake option.
  bool use_por = PCC_POR_DEFAULT != 0;

  // Memoize spec-search frontiers per history PREFIX (linearize.h), shared
  // across executions (and, under ParallelExplorer, workers). Off by
  // default: it changes Report::spec_states_explored (work skipped via the
  // cache is not re-counted), which several equivalence tests compare.
  bool memoize_spec_prefixes = false;

  // Observability: invoked every progress_interval executions with
  // cumulative counts. Under ParallelExplorer the callback fires on worker
  // threads, one caller at a time (serialized by an internal mutex).
  std::function<void(const ExplorerProgress&)> progress_callback;
  uint64_t progress_interval = 1024;

  // ParallelExplorer only (ignored by the serial Explorer):
  int num_workers = 4;  // OS threads exploring disjoint subtrees
  // Decision-path depth at which the coordinator splits the tree into work
  // items. Deeper splits yield more, smaller items (better load balance,
  // more probe overhead); #items grows roughly with branching^depth.
  int split_depth = 4;
};

struct Violation {
  std::string kind;
  std::string detail;
  std::string trace;

  std::string ToString() const { return kind + ": " + detail + "\n  schedule: " + trace; }
};

struct Report {
  uint64_t executions = 0;
  uint64_t total_steps = 0;
  uint64_t crashes_injected = 0;
  // Environment alternatives fired (disk failures, armed faults, ...).
  uint64_t env_events_fired = 0;
  uint64_t histories_checked = 0;
  // Of histories_checked, how many were fingerprint-duplicates whose spec
  // check was skipped (dedup_histories).
  uint64_t histories_deduped = 0;
  // Executions abandoned by sleep-set POR as commutation-equivalent to an
  // already-explored schedule (counted in executions, no history emitted).
  uint64_t por_pruned = 0;
  uint64_t spec_states_explored = 0;
  bool truncated = false;  // hit max_executions before DFS finished
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }

  std::string Summary() const {
    std::string out = "executions=" + std::to_string(executions) +
                      " steps=" + std::to_string(total_steps) +
                      " crashes=" + std::to_string(crashes_injected) +
                      " env=" + std::to_string(env_events_fired) +
                      " histories=" + std::to_string(histories_checked) +
                      " deduped=" + std::to_string(histories_deduped) +
                      " por_pruned=" + std::to_string(por_pruned) +
                      " spec_states=" + std::to_string(spec_states_explored) +
                      (truncated ? " (TRUNCATED)" : "") +
                      " violations=" + std::to_string(violations.size());
    for (const Violation& v : violations) {
      out += "\n  " + v.ToString();
    }
    return out;
  }
};

namespace detail {

enum class AltKind { kThread, kCrash, kEnv, kProceed };

struct Alt {
  AltKind kind;
  int thread = -1;  // kThread
  size_t env = 0;   // kEnv
  std::string label;
};

// One alternative already explored at a DFS decision level: its identity
// and the footprint its step had when taken. Persisted across odometer
// iterations (and shipped to ParallelExplorer workers inside their work
// item) so later siblings can put explored threads to sleep.
struct TriedAlt {
  AltKind kind = AltKind::kThread;
  int thread = -1;
  proc::Footprint footprint;
};

// Per-decision-level POR bookkeeping: tried[j] describes selectable
// alternative j (indices match the decision-path values at this level).
struct PorLevel {
  std::vector<TriedAlt> tried;
};

// A thread put to sleep at some ancestor decision: exploring it here would
// only commute with the path taken since. `footprint` is the footprint its
// next step had at the branch point; because nothing executed since
// conflicts with it (or it would have been woken), that step — and its
// footprint — are unchanged.
struct SleepEntry {
  int thread = -1;
  proc::Footprint footprint;
};

// Sleep-set state threaded through one DFS subtree walk.
struct PorContext {
  std::vector<PorLevel> levels;
};

// Supplies one choice index per decision point.
class Driver {
 public:
  virtual ~Driver() = default;
  virtual size_t Choose(const std::vector<Alt>& alts) = 0;
};

// Replays a recorded prefix, then picks alternative 0 and extends the path;
// records the alternative count at every decision for the DFS odometer.
class DfsDriver : public Driver {
 public:
  explicit DfsDriver(std::vector<size_t>* path) : path_(path) {}

  size_t Choose(const std::vector<Alt>& alts) override {
    counts_.push_back(alts.size());
    if (pos_ < path_->size()) {
      return (*path_)[pos_++];
    }
    path_->push_back(0);
    ++pos_;
    return 0;
  }

  const std::vector<size_t>& counts() const { return counts_; }

 private:
  std::vector<size_t>* path_;
  size_t pos_ = 0;
  std::vector<size_t> counts_;
};

class RandomDriver : public Driver {
 public:
  RandomDriver(uint64_t seed, double crash_p, double env_p)
      : rng_(seed), crash_p_(crash_p), env_p_(env_p) {}

  size_t Choose(const std::vector<Alt>& alts) override {
    std::vector<size_t> threads;
    std::vector<size_t> crashes;
    std::vector<size_t> envs;
    for (size_t i = 0; i < alts.size(); ++i) {
      switch (alts[i].kind) {
        case AltKind::kThread:
          threads.push_back(i);
          break;
        case AltKind::kCrash:
          crashes.push_back(i);
          break;
        case AltKind::kEnv:
          envs.push_back(i);
          break;
        case AltKind::kProceed:
          break;  // chosen only when nothing else is picked
      }
    }
    if (!crashes.empty() && rng_.Chance(crash_p_)) {
      // Uniform among crash alternatives (a single draw when there is only
      // one, so the stream stays comparable with older seeds).
      return crashes.size() == 1 ? crashes[0] : crashes[rng_.Below(crashes.size())];
    }
    if (!envs.empty() && rng_.Chance(env_p_)) {
      // Uniform among env alternatives, with the same single-candidate
      // guard as crashes: one candidate costs one draw, so the stream (and
      // therefore seed reproducibility) is unchanged by merely *offering*
      // an env event that is the only one of its kind.
      return envs.size() == 1 ? envs[0] : envs[rng_.Below(envs.size())];
    }
    if (!threads.empty()) {
      return threads[rng_.Below(threads.size())];
    }
    return rng_.Below(alts.size());
  }

 private:
  Rng rng_;
  double crash_p_;
  double env_p_;
};

}  // namespace detail

// One ParallelExplorer work item: a decision-path prefix naming a disjoint
// subtree, plus the POR bookkeeping accumulated along that prefix (the
// footprints of sibling alternatives the coordinator's enumeration already
// explored), so the worker rebuilds the exact sleep sets the serial engine
// would have at that subtree.
struct SubtreeWork {
  std::vector<size_t> prefix;
  std::vector<detail::PorLevel> por_seed;
};

template <typename Spec>
class Explorer {
 public:
  using Op = typename Spec::Op;
  using Ret = typename Spec::Ret;
  using Factory = std::function<Instance<Spec>()>;
  using FrontierCache = typename LinearizabilityChecker<Spec>::FrontierCache;

  Explorer(Spec spec, Factory factory, ExplorerOptions options)
      : spec_(std::move(spec)), factory_(std::move(factory)), options_(options) {}

  // Cache injection for ParallelExplorer (must outlive the Explorer; may be
  // shared across threads). By default each Explorer owns private caches.
  void set_verdict_cache(VerdictCache* cache) { verdict_cache_ = cache; }
  void set_frontier_cache(FrontierCache* cache) { frontier_cache_ = cache; }

  Report Run() {
    Report report;
    if (options_.mode == ExplorerOptions::Mode::kRandom) {
      detail::RandomDriver driver(options_.seed, options_.crash_probability,
                                  options_.env_probability);
      for (uint64_t i = 0; i < options_.random_runs; ++i) {
        RunOnce(driver, &report, nullptr, /*common_decisions=*/0);
        NotifyProgress(report);
        if (report.violations.size() >= static_cast<size_t>(options_.max_violations)) {
          break;
        }
      }
      return report;
    }
    RunDfsSubtree(SubtreeWork{}, &report);
    return report;
  }

  // Exhaustive DFS over decision sequences, replaying from scratch,
  // restricted to paths that extend `work.prefix` (empty prefix = whole
  // tree). The per-worker engine of ParallelExplorer: work items come from
  // EnumerateSubtreePrefixes, so distinct items explore disjoint subtrees.
  // `keep_going`, if set, is polled after every execution; returning false
  // abandons the subtree and marks the report truncated.
  void RunDfsSubtree(SubtreeWork work, Report* report,
                     const std::function<bool(const Report&)>& keep_going = nullptr) {
    const size_t floor = work.prefix.size();
    std::vector<size_t> path = std::move(work.prefix);
    detail::PorContext por;
    por.levels = std::move(work.por_seed);
    detail::PorContext* por_ptr = PorActive() ? &por : nullptr;
    // Decisions this run provably shares with the previous run of THIS
    // explorer: after the odometer bumps the decision at level a, levels
    // 0..a-1 replay identically, so the histories agree on every event the
    // previous run recorded before decision a (frontier-spine reuse). The
    // first run shares nothing — even its work prefix replays decisions
    // some OTHER explorer took.
    size_t common_decisions = 0;
    while (true) {
      detail::DfsDriver driver(&path);
      RunOnce(driver, report, por_ptr, common_decisions);
      NotifyProgress(*report);
      if (report->violations.size() >= static_cast<size_t>(options_.max_violations)) {
        break;
      }
      if (report->executions >= options_.max_executions) {
        report->truncated = true;
        break;
      }
      if (keep_going != nullptr && !keep_going(*report)) {
        report->truncated = true;
        break;
      }
      // Odometer: advance the deepest decision that still has untried
      // alternatives; drop everything below it. A run that aborted early
      // (violation, POR prune) consumed fewer decisions than the stale path
      // holds, so first trim the path to what was actually replayed.
      // Positions inside the assigned prefix are never advanced — they
      // belong to other subtrees.
      const std::vector<size_t>& counts = driver.counts();
      PCC_ENSURE(path.size() >= counts.size(), "DFS: path shorter than counts");
      path.resize(counts.size());
      bool advanced = false;
      while (path.size() > floor) {
        if (path.back() + 1 < counts[path.size() - 1]) {
          ++path.back();
          advanced = true;
          break;
        }
        path.pop_back();
      }
      if (!advanced) {
        break;  // full bounded subtree explored
      }
      common_decisions = path.size() - 1;  // everything before the bumped level
      // POR bookkeeping below the advanced position is stale (it described
      // subtrees of the previous sibling); the level being advanced keeps
      // its explored-sibling list, which is exactly what the new sibling's
      // sleep sets need.
      if (por_ptr != nullptr && por.levels.size() > path.size()) {
        por.levels.resize(path.size());
      }
    }
  }

  // Coordinator side of the parallel split: enumerates every reachable
  // decision-path prefix of length min(split_depth, run length) in DFS
  // order, together with the POR bookkeeping a worker needs to reconstruct
  // the serial sleep sets (see SubtreeWork). The returned prefixes
  // partition the execution space — each decision path extends exactly one
  // of them — so per-item RunDfsSubtree reports can be merged into the
  // serial result. Each probe run is structure discovery only (its stats
  // are discarded; the worker that owns the subtree re-runs it for real).
  // Sets *truncated if max_executions probes did not suffice to finish the
  // enumeration.
  std::vector<SubtreeWork> EnumerateSubtreePrefixes(int split_depth, bool* truncated) {
    PCC_ENSURE(split_depth >= 0, "split_depth must be non-negative");
    std::vector<SubtreeWork> items;
    Report scratch;
    std::vector<size_t> path;
    detail::PorContext por;
    detail::PorContext* por_ptr = PorActive() ? &por : nullptr;
    while (true) {
      detail::DfsDriver driver(&path);
      // Probe runs never claim a shared prefix: structure discovery only.
      RunOnce(driver, &scratch, por_ptr, /*common_decisions=*/0);
      const std::vector<size_t>& counts = driver.counts();
      PCC_ENSURE(path.size() >= counts.size(), "DFS: path shorter than counts");
      path.resize(counts.size());
      const size_t plen = std::min(static_cast<size_t>(split_depth), path.size());
      SubtreeWork item;
      item.prefix.assign(path.begin(), path.begin() + plen);
      if (por_ptr != nullptr) {
        // Ship, per prefix level, the alternatives explored before the one
        // the prefix takes — the sleep-set candidates a worker cannot
        // recompute (they belong to sibling subtrees).
        item.por_seed.resize(plen);
        for (size_t l = 0; l < plen; ++l) {
          const std::vector<detail::TriedAlt>& tried = por.levels[l].tried;
          const size_t keep = std::min(item.prefix[l], tried.size());
          item.por_seed[l].tried.assign(tried.begin(), tried.begin() + keep);
        }
      }
      items.push_back(std::move(item));
      if (scratch.executions >= options_.max_executions) {
        *truncated = true;
        break;
      }
      // Advance the odometer over the first split_depth levels only: one
      // work item per distinct reachable prefix.
      path.resize(plen);
      bool advanced = false;
      while (!path.empty()) {
        if (path.back() + 1 < counts[path.size() - 1]) {
          ++path.back();
          advanced = true;
          break;
        }
        path.pop_back();
      }
      if (!advanced) {
        break;
      }
      if (por_ptr != nullptr && por.levels.size() > path.size()) {
        por.levels.resize(path.size());
      }
    }
    return items;
  }

 private:
  // POR is sound only when sibling subtrees are explored in full: random
  // mode replays nothing, and preemption bounding (itself an unsound
  // reduction) can exclude exactly the sibling order a sleep set relies
  // on. Both therefore run unreduced.
  bool PorActive() const {
    return options_.use_por && options_.mode == ExplorerOptions::Mode::kExhaustive &&
           options_.max_preemptions < 0;
  }

  void NotifyProgress(const Report& report) {
    if (options_.progress_callback != nullptr && options_.progress_interval > 0 &&
        report.executions % options_.progress_interval == 0) {
      options_.progress_callback(ExplorerProgress{
          report.executions, report.total_steps, static_cast<uint64_t>(report.violations.size()),
          report.histories_checked, report.histories_deduped, report.por_pruned});
    }
  }
  proc::Task<void> ClientThread(int client, const std::vector<Op>* ops, Instance<Spec>* inst,
                                History<Spec>* history) {
    for (const Op& op : *ops) {
      uint64_t id = history->Invoke(client, op);
      Ret ret = co_await inst->run_op(client, id, op);
      history->Return(id, ret);
    }
  }

  proc::Task<void> RecoveryThread(Instance<Spec>* inst, History<Spec>* history) {
    co_await inst->recover(history);
  }

  proc::Task<void> ProgramThread(std::function<proc::Task<void>(OpRunner<Spec>*)> program,
                                 Instance<Spec>* inst, History<Spec>* history, int client) {
    OpRunner<Spec> runner(inst, history, client);
    co_await program(&runner);
  }

  // The final observation phase: fixed ops first, then the dynamic
  // observer program, all sequentially on one thread.
  proc::Task<void> ObserverThread(Instance<Spec>* inst, History<Spec>* history, int client) {
    OpRunner<Spec> runner(inst, history, client);
    for (const Op& op : inst->observer_ops) {
      (void)co_await runner.Run(op);
    }
    if (inst->observer_program != nullptr) {
      co_await inst->observer_program(&runner);
    }
  }

  // Sleep-set transition for one taken alternative: entries whose pending
  // step conflicts with what just ran wake up (their step may now differ);
  // fully explored earlier siblings that commute with the taken step go to
  // sleep in its subtree. Only thread alternatives ever sleep.
  static void AdvanceSleepSet(std::vector<detail::SleepEntry>* sleep,
                              const detail::PorLevel& level, size_t pick,
                              const detail::Alt& alt, const proc::Footprint& taken_fp) {
    if (alt.kind == detail::AltKind::kCrash || alt.kind == detail::AltKind::kProceed) {
      // A crash kills every thread (tids are even reused by recovery), and
      // the quiescent proceed point has no runnable threads: no sleeping
      // entry can remain meaningful.
      sleep->clear();
      return;
    }
    std::vector<detail::SleepEntry> next;
    next.reserve(sleep->size() + pick);
    for (const detail::SleepEntry& e : *sleep) {
      if (!proc::FootprintsConflict(e.footprint, taken_fp)) {
        next.push_back(e);
      }
    }
    for (size_t j = 0; j < pick && j < level.tried.size(); ++j) {
      const detail::TriedAlt& t = level.tried[j];
      if (t.kind != detail::AltKind::kThread) {
        continue;
      }
      if (!proc::FootprintsConflict(t.footprint, taken_fp)) {
        next.push_back(detail::SleepEntry{t.thread, t.footprint});
      }
    }
    *sleep = std::move(next);
  }

  // `por` non-null activates sleep-set pruning for this run (exhaustive
  // replays only; RandomDriver passes nullptr). `common_decisions` is the
  // caller's guarantee that this run's first decisions replay the previous
  // run's — the basis for resuming the linearizability search mid-history
  // (frontier-spine reuse) and for skipping footprint re-collection on
  // pure-replay steps.
  void RunOnce(detail::Driver& driver, Report* report, detail::PorContext* por,
               size_t common_decisions) {
    ++report->executions;
    // Events shared with the previous run: everything recorded before the
    // first differing decision. Chained through spine_valid_events_ so the
    // guarantee holds against the checker's retained spine even across
    // intermediate runs that never reached the checker (POR prunes, early
    // violations, dedup hits).
    size_t common_events = 0;
    if (common_decisions > 0) {
      PCC_ENSURE(common_decisions < prev_events_at_decision_.size(),
                 "spine reuse: shared decisions exceed the previous run");
      common_events = prev_events_at_decision_[common_decisions];
    }
    const size_t spine_reuse = std::min(spine_valid_events_, common_events);
    spine_valid_events_ = spine_reuse;  // pessimistic default; Check resets it
    prev_events_at_decision_.clear();

    Instance<Spec> inst = factory_();
    History<Spec> history;
    proc::Scheduler sched;
    proc::SchedulerScope scope(&sched);
    if (por != nullptr) {
      sched.EnableFootprintCollection(true);
    }

    for (size_t c = 0; c < inst.client_ops.size(); ++c) {
      sched.Spawn(ClientThread(static_cast<int>(c), &inst.client_ops[c], &inst, &history),
                  "client" + std::to_string(c));
    }
    for (size_t p = 0; p < inst.client_programs.size(); ++p) {
      int client = static_cast<int>(inst.client_ops.size() + p);
      sched.Spawn(ProgramThread(inst.client_programs[p], &inst, &history, client),
                  "client" + std::to_string(client));
    }
    const int observer_client =
        static_cast<int>(inst.client_ops.size() + inst.client_programs.size());
    const bool has_observers = !inst.observer_ops.empty() || inst.observer_program != nullptr;

    int crashes_used = 0;
    int preemptions_used = 0;
    proc::Scheduler::Tid last_thread = proc::Scheduler::kInvalidTid;
    std::vector<int> env_budget;
    env_budget.reserve(inst.env_events.size());
    for (const EnvEvent& e : inst.env_events) {
      env_budget.push_back(e.budget);
    }
    bool observers_started = false;
    uint64_t steps = 0;
    size_t decision_level = 0;
    std::vector<detail::SleepEntry> sleep;
    std::string trace;
    auto add_violation = [&](std::string kind, std::string detail_msg) {
      if (report->violations.size() < static_cast<size_t>(options_.max_violations)) {
        report->violations.push_back(
            Violation{std::move(kind), std::move(detail_msg), trace.empty() ? "(empty)" : trace});
      }
    };

    // Presents `alts` (already sleep-filtered by the caller) to the driver,
    // executes nothing itself: returns the chosen index after recording the
    // trace label and step count. The history-event watermark per decision
    // feeds the next run's frontier-spine reuse.
    auto choose = [&](const std::vector<detail::Alt>& alts) -> size_t {
      prev_events_at_decision_.push_back(history.events.size());
      size_t pick = driver.Choose(alts);
      PCC_ENSURE(pick < alts.size(), "driver picked an invalid alternative");
      if (!trace.empty()) {
        trace += ' ';
      }
      trace += alts[pick].label;
      ++steps;
      return pick;
    };
    // Replay shortcut: when this decision re-takes an alternative whose
    // footprint the POR bookkeeping already holds (tried[pick] exists),
    // deterministic replay makes re-collecting it redundant — return the
    // cached footprint and disable collection for the step. A fresh
    // alternative (pick == tried.size(), including the odometer's bumped
    // level and the truncated seeds of parallel work items) collects
    // normally.
    auto replay_footprint = [&](const std::vector<detail::Alt>& alts,
                                size_t pick) -> const proc::Footprint* {
      if (por == nullptr) {
        return nullptr;
      }
      const detail::PorLevel& level = por->levels[decision_level];
      if (pick >= level.tried.size()) {
        sched.EnableFootprintCollection(true);
        return nullptr;
      }
      const detail::TriedAlt& t = level.tried[pick];
      PCC_ENSURE(t.kind == alts[pick].kind && t.thread == alts[pick].thread,
                 "POR replay divergence: cached alternative does not match");
      sched.EnableFootprintCollection(false);
      return &t.footprint;
    };
    // POR bookkeeping after the chosen alternative ran, with the footprint
    // its step produced; advances the sleep set and persists the footprint
    // for later siblings at this level.
    auto after_step = [&](const std::vector<detail::Alt>& alts, size_t pick,
                          const proc::Footprint& fp) {
      if (por == nullptr) {
        ++decision_level;
        return;
      }
      detail::PorLevel& level = por->levels[decision_level];
      if (pick == level.tried.size()) {
        level.tried.push_back(detail::TriedAlt{alts[pick].kind, alts[pick].thread, fp});
      }
      AdvanceSleepSet(&sleep, level, pick, alts[pick], fp);
      ++decision_level;
    };
    // Ensures a PorLevel exists for the current decision.
    auto ensure_level = [&] {
      if (por != nullptr && decision_level == por->levels.size()) {
        por->levels.emplace_back();
      }
    };

    while (true) {
      // Crash invariants must hold at every step (§5.1).
      if (inst.crash_invariants != nullptr) {
        if (auto broken = inst.crash_invariants->FirstViolation()) {
          add_violation("crash-invariant", "invariant '" + *broken + "' does not hold");
          report->total_steps += steps;
          return;
        }
      }

      if (sched.AllDone()) {
        if (observers_started) {
          break;  // execution complete
        }
        // Quiescent point: every thread has finished. The durability of
        // completed operations matters precisely here, so offer one more
        // decision — proceed to observation, or inject a crash first.
        bool crash_possible = inst.recover != nullptr && crashes_used < options_.max_crashes;
        bool env_possible = false;
        for (size_t i = 0; i < inst.env_events.size(); ++i) {
          env_possible = env_possible || env_budget[i] > 0;
        }
        if (crash_possible || env_possible) {
          std::vector<detail::Alt> alts;
          alts.push_back(detail::Alt{detail::AltKind::kProceed, -1, 0, "observe"});
          if (crash_possible) {
            alts.push_back(detail::Alt{detail::AltKind::kCrash, -1, 0, "CRASH"});
          }
          for (size_t i = 0; i < inst.env_events.size(); ++i) {
            if (env_budget[i] > 0) {
              alts.push_back(detail::Alt{detail::AltKind::kEnv, -1, i, inst.env_events[i].name});
            }
          }
          ensure_level();
          size_t pick = choose(alts);
          const detail::Alt& alt = alts[pick];
          if (alt.kind == detail::AltKind::kCrash) {
            ++crashes_used;
            ++report->crashes_injected;
            history.Crash();
            sched.KillAllThreads();
            inst.world->Crash();
            sched.Spawn(RecoveryThread(&inst, &history), "recovery");
            after_step(alts, pick, proc::Footprint{});
            continue;
          }
          if (alt.kind == detail::AltKind::kEnv) {
            --env_budget[alt.env];
            ++report->env_events_fired;
            const proc::Footprint* cached = replay_footprint(alts, pick);
            sched.BeginExternalFootprint();
            inst.env_events[alt.env].fire();
            after_step(alts, pick, cached != nullptr ? *cached : sched.last_footprint());
            continue;
          }
          // fall through: proceed to observation
          after_step(alts, pick, proc::Footprint{});
        }
        observers_started = true;
        if (!has_observers) {
          break;
        }
        sched.Spawn(ObserverThread(&inst, &history, observer_client), "observer");
        continue;
      }
      if (sched.Deadlocked()) {
        add_violation("deadlock", "live threads but none runnable\n" + history.ToString());
        report->total_steps += steps;
        return;
      }
      if (steps >= options_.max_steps_per_run) {
        add_violation("step-bound",
                      "execution exceeded " + std::to_string(options_.max_steps_per_run) +
                          " steps (possible nontermination)");
        report->total_steps += steps;
        return;
      }

      // Build the alternatives for this decision point.
      std::vector<detail::Alt> alts;
      std::vector<proc::Scheduler::Tid> runnable = sched.RunnableThreads();
      bool last_still_runnable = false;
      for (proc::Scheduler::Tid tid : runnable) {
        last_still_runnable = last_still_runnable || tid == last_thread;
      }
      const bool preemption_exhausted =
          options_.max_preemptions >= 0 && preemptions_used >= options_.max_preemptions;
      for (proc::Scheduler::Tid tid : runnable) {
        if (preemption_exhausted && last_still_runnable && tid != last_thread) {
          continue;  // switching away now would be one preemption too many
        }
        if (por != nullptr) {
          bool asleep = false;
          for (const detail::SleepEntry& e : sleep) {
            asleep = asleep || e.thread == tid;
          }
          if (asleep) {
            continue;  // its subtree here commutes with an explored one
          }
        }
        alts.push_back(detail::Alt{detail::AltKind::kThread, tid, 0, "t" + std::to_string(tid)});
      }
      if (!observers_started && inst.recover != nullptr && crashes_used < options_.max_crashes) {
        alts.push_back(detail::Alt{detail::AltKind::kCrash, -1, 0, "CRASH"});
      }
      // Environment events (disk failures, ...) can strike at any time —
      // including while the observers probe the final state, which is how
      // §3.1's failover inconsistency ("read v, disk 1 fails, read old
      // value") becomes observable.
      for (size_t i = 0; i < inst.env_events.size(); ++i) {
        if (env_budget[i] > 0) {
          alts.push_back(detail::Alt{detail::AltKind::kEnv, -1, i, inst.env_events[i].name});
        }
      }
      if (alts.empty()) {
        // Every runnable thread is asleep and no crash/env alternative
        // remains: every continuation from here commutes with a schedule
        // the DFS already explored. Abandon the execution without a
        // history; the odometer backtracks past this node.
        PCC_ENSURE(por != nullptr, "empty alternative set without POR");
        ++report->por_pruned;
        report->total_steps += steps;
        return;
      }

      ensure_level();
      size_t pick = choose(alts);
      const detail::Alt& alt = alts[pick];

      switch (alt.kind) {
        case detail::AltKind::kThread: {
          if (last_still_runnable && alt.thread != last_thread) {
            ++preemptions_used;
          }
          last_thread = alt.thread;
          const proc::Footprint* cached = replay_footprint(alts, pick);
          try {
            sched.Step(alt.thread);
          } catch (const UbViolation& ub) {
            add_violation("undefined-behavior", ub.what() + ("\n" + history.ToString()));
            report->total_steps += steps;
            return;
          }
          after_step(alts, pick, cached != nullptr ? *cached : sched.last_footprint());
          break;
        }
        case detail::AltKind::kCrash: {
          ++crashes_used;
          ++report->crashes_injected;
          history.Crash();
          sched.KillAllThreads();
          inst.world->Crash();
          sched.Spawn(RecoveryThread(&inst, &history), "recovery");
          last_thread = proc::Scheduler::kInvalidTid;  // no thread survived
          after_step(alts, pick, proc::Footprint{});
          break;
        }
        case detail::AltKind::kEnv: {
          --env_budget[alt.env];
          ++report->env_events_fired;
          const proc::Footprint* cached = replay_footprint(alts, pick);
          sched.BeginExternalFootprint();
          inst.env_events[alt.env].fire();
          after_step(alts, pick, cached != nullptr ? *cached : sched.last_footprint());
          break;
        }
        case detail::AltKind::kProceed:
          PCC_ENSURE(false, "proceed alternative outside the quiescent point");
          break;
      }
    }

    report->total_steps += steps;
    ++report->histories_checked;
    checker_.set_frontier_cache(options_.memoize_spec_prefixes ? frontier_cache_ : nullptr);
    // Runs the persistent checker, resuming its retained frontier spine at
    // the deepest event this history provably shares with the spine's
    // source. After a Check the spine covers THIS history in full, so the
    // next run's guarantee is bounded only by its own shared prefix.
    auto check_history = [&]() -> std::optional<std::string> {
      std::optional<std::string> why = checker_.Check(history, spine_reuse);
      spine_valid_events_ = static_cast<size_t>(-1);
      return why;
    };
    if (options_.dedup_histories) {
      // Fingerprint pruning: identical histories get identical verdicts, so
      // replay the cached verdict instead of re-running the search. Only
      // the spec check is skipped — the execution itself (crash invariants,
      // UB, deadlock, step bound) already ran in full above.
      Hash128 fp = FingerprintHistory(history);
      std::optional<std::string> cached;
      if (verdict_cache_->Lookup(fp, &cached)) {
        ++report->histories_deduped;
        if (cached.has_value()) {
          add_violation("non-linearizable", *cached);
        }
        return;
      }
      std::optional<std::string> why = check_history();
      verdict_cache_->Insert(fp, why);
      if (why.has_value()) {
        add_violation("non-linearizable", *why);
      }
      report->spec_states_explored += checker_.states_explored();
      return;
    }
    if (auto why = check_history()) {
      add_violation("non-linearizable", *why);
    }
    report->spec_states_explored += checker_.states_explored();
  }

  Spec spec_;
  Factory factory_;
  ExplorerOptions options_;
  // The persistent linearizability checker: its frontier spine (and dedup
  // arena) carries over between executions, which is what RunOnce's
  // spine_reuse resumes into.
  LinearizabilityChecker<Spec> checker_{&spec_};
  // Events of the checker spine's source history known to coincide with the
  // NEXT run's history (chained across runs that skip the checker).
  size_t spine_valid_events_ = 0;
  // Per-decision history-event watermarks of the previous RunOnce.
  std::vector<size_t> prev_events_at_decision_;
  // Private default caches; ParallelExplorer injects shared ones.
  VerdictCache own_verdicts_;
  FrontierCache own_frontiers_;
  VerdictCache* verdict_cache_ = &own_verdicts_;
  FrontierCache* frontier_cache_ = &own_frontiers_;
};

}  // namespace perennial::refine

#endif  // PERENNIAL_SRC_REFINE_EXPLORER_H_
