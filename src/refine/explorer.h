// The schedule-and-crash-point explorer: the executable stand-in for the
// universal quantification in Perennial's theorems.
//
// Where the paper's Coq proof covers all interleavings and all crash points
// by deduction, the explorer covers them by enumeration: it drives the
// modeled system (coroutine threads over the deterministic scheduler)
// through either every schedule up to configured bounds (exhaustive DFS) or
// a randomized sample, injecting machine crashes between any two atomic
// steps — including during recovery — and environment events such as disk
// failures. Every execution yields a history that is checked for
// concurrent recovery refinement (linearize.h), and registered crash
// invariants (src/cap) are evaluated at every step.
//
// Detected violation classes:
//   * non-linearizable  — no spec interleaving explains the history
//   * crash-invariant   — a registered invariant failed at some step
//   * undefined-behavior— the modeled program raised UbViolation
//   * deadlock          — live threads, none runnable
//   * step-bound        — execution exceeded max_steps_per_run (possible
//                         nontermination, e.g. the §9.5 Pickup loop bug)
//
// Parallelism: this header is the single-threaded reference engine. The
// decision tree it walks is prefix-partitionable — every execution is fully
// determined by its decision path, and factories are required to be
// deterministic — so ParallelExplorer (parallel_explorer.h) enumerates
// decision-path prefixes via EnumerateSubtreePrefixes() and hands each
// disjoint subtree to a worker that re-runs this engine via
// RunDfsSubtree(). Two further knobs support that use:
//   * dedup_histories — fingerprint completed histories (src/base/hash.h)
//     and skip the linearizability search for repeats. Sound because the
//     spec check depends only on the history, every execution still runs in
//     full (crash invariants, UB, deadlock, and step bounds are evaluated
//     during execution), and a cached violating verdict is re-reported for
//     every duplicate, so the violation set is unchanged.
//   * progress_callback — periodic executions/steps/violations counts for
//     long runs and benches.
#ifndef PERENNIAL_SRC_REFINE_EXPLORER_H_
#define PERENNIAL_SRC_REFINE_EXPLORER_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/base/hash.h"
#include "src/base/panic.h"
#include "src/base/rand.h"
#include "src/cap/crash_invariant.h"
#include "src/goose/world.h"
#include "src/proc/scheduler.h"
#include "src/proc/task.h"
#include "src/refine/history.h"
#include "src/refine/linearize.h"

namespace perennial::refine {

// An environment event the explorer may fire between steps (e.g. "fail
// disk 1"). `budget` bounds how many times it fires per execution.
struct EnvEvent {
  std::string name;
  int budget = 1;
  std::function<void()> fire;
};

template <typename Spec>
struct Instance;

// Handed to dynamic client programs: runs one spec-level operation against
// the implementation while recording its invocation and response in the
// history. Programs can branch on returned values (e.g. delete the ids a
// pickup returned).
template <typename Spec>
class OpRunner {
 public:
  OpRunner(Instance<Spec>* inst, History<Spec>* history, int client)
      : inst_(inst), history_(history), client_(client) {}

  proc::Task<typename Spec::Ret> Run(typename Spec::Op op) {
    uint64_t id = history_->Invoke(client_, op);
    typename Spec::Ret ret = co_await inst_->run_op(client_, id, op);
    history_->Return(id, ret);
    co_return ret;
  }

  int client() const { return client_; }

 private:
  Instance<Spec>* inst_;
  History<Spec>* history_;
  int client_;
};

// One freshly constructed system under test. Factories must be
// deterministic: the DFS explorer replays prefixes by reconstruction.
template <typename Spec>
struct Instance {
  using Op = typename Spec::Op;
  using Ret = typename Spec::Ret;

  // Owns the world/system objects the raw pointers below refer to.
  std::shared_ptr<void> keep_alive;
  goose::World* world = nullptr;
  // Optional: invariants checked at every step (nullptr to skip).
  const cap::CrashInvariants* crash_invariants = nullptr;
  // Per-client operation sequences; client i runs its ops in order.
  std::vector<std::vector<Op>> client_ops;
  // Dynamic client programs (run as additional clients after client_ops
  // threads): each receives an OpRunner and may branch on results.
  std::vector<std::function<proc::Task<void>(OpRunner<Spec>*)>> client_programs;
  // Dynamic observer program run at the end (in addition to observer_ops).
  std::function<proc::Task<void>(OpRunner<Spec>*)> observer_program;
  // Runs one operation. `op_id` identifies the op instance for helping.
  std::function<proc::Task<Ret>(int client, uint64_t op_id, Op op)> run_op;
  // Recovery procedure; run after each crash (null: crashes not explored).
  std::function<proc::Task<void>(History<Spec>*)> recover;
  // Ops probed sequentially at the end of the execution (after recovery if
  // a crash happened); they pin down the surviving durable state.
  std::vector<Op> observer_ops;
  std::vector<EnvEvent> env_events;
};

// Cumulative counts handed to ExplorerOptions::progress_callback.
struct ExplorerProgress {
  uint64_t executions = 0;
  uint64_t total_steps = 0;
  uint64_t violations = 0;
};

struct ExplorerOptions {
  enum class Mode { kExhaustive, kRandom };
  Mode mode = Mode::kExhaustive;

  int max_crashes = 1;                  // crashes injected per execution
  // CHESS-style preemption bounding: a "preemption" is scheduling away
  // from a thread that could have kept running. -1 = unbounded (full
  // exhaustiveness within the other bounds); small values (0-2) shrink the
  // schedule space drastically while still catching most concurrency bugs.
  int max_preemptions = -1;
  uint64_t max_steps_per_run = 5000;    // nontermination bound
  uint64_t max_executions = 2'000'000;  // DFS safety cap
  int max_violations = 3;               // stop collecting after this many

  // Random mode:
  uint64_t random_runs = 1000;
  uint64_t seed = 1;
  double crash_probability = 0.05;  // per-step chance of injecting a crash
  double env_probability = 0.05;    // per-step chance of firing an env event

  // Skip the linearizability search for completed histories whose 128-bit
  // fingerprint was already checked this run (see the header comment for
  // the soundness argument). Counted in Report::histories_deduped.
  bool dedup_histories = false;

  // Observability: invoked every progress_interval executions with
  // cumulative counts. Under ParallelExplorer the callback fires on worker
  // threads, one caller at a time (serialized by an internal mutex).
  std::function<void(const ExplorerProgress&)> progress_callback;
  uint64_t progress_interval = 1024;

  // ParallelExplorer only (ignored by the serial Explorer):
  int num_workers = 4;  // OS threads exploring disjoint subtrees
  // Decision-path depth at which the coordinator splits the tree into work
  // items. Deeper splits yield more, smaller items (better load balance,
  // more probe overhead); #items grows roughly with branching^depth.
  int split_depth = 4;
};

struct Violation {
  std::string kind;
  std::string detail;
  std::string trace;

  std::string ToString() const { return kind + ": " + detail + "\n  schedule: " + trace; }
};

struct Report {
  uint64_t executions = 0;
  uint64_t total_steps = 0;
  uint64_t crashes_injected = 0;
  // Environment alternatives fired (disk failures, armed faults, ...).
  uint64_t env_events_fired = 0;
  uint64_t histories_checked = 0;
  // Of histories_checked, how many were fingerprint-duplicates whose spec
  // check was skipped (dedup_histories).
  uint64_t histories_deduped = 0;
  uint64_t spec_states_explored = 0;
  bool truncated = false;  // hit max_executions before DFS finished
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }

  std::string Summary() const {
    std::string out = "executions=" + std::to_string(executions) +
                      " steps=" + std::to_string(total_steps) +
                      " crashes=" + std::to_string(crashes_injected) +
                      " env=" + std::to_string(env_events_fired) +
                      " histories=" + std::to_string(histories_checked) +
                      " deduped=" + std::to_string(histories_deduped) +
                      " spec_states=" + std::to_string(spec_states_explored) +
                      (truncated ? " (TRUNCATED)" : "") +
                      " violations=" + std::to_string(violations.size());
    for (const Violation& v : violations) {
      out += "\n  " + v.ToString();
    }
    return out;
  }
};

namespace detail {

enum class AltKind { kThread, kCrash, kEnv, kProceed };

struct Alt {
  AltKind kind;
  int thread = -1;  // kThread
  size_t env = 0;   // kEnv
  std::string label;
};

// Supplies one choice index per decision point.
class Driver {
 public:
  virtual ~Driver() = default;
  virtual size_t Choose(const std::vector<Alt>& alts) = 0;
};

// Replays a recorded prefix, then picks alternative 0 and extends the path;
// records the alternative count at every decision for the DFS odometer.
class DfsDriver : public Driver {
 public:
  explicit DfsDriver(std::vector<size_t>* path) : path_(path) {}

  size_t Choose(const std::vector<Alt>& alts) override {
    counts_.push_back(alts.size());
    if (pos_ < path_->size()) {
      return (*path_)[pos_++];
    }
    path_->push_back(0);
    ++pos_;
    return 0;
  }

  const std::vector<size_t>& counts() const { return counts_; }

 private:
  std::vector<size_t>* path_;
  size_t pos_ = 0;
  std::vector<size_t> counts_;
};

class RandomDriver : public Driver {
 public:
  RandomDriver(uint64_t seed, double crash_p, double env_p)
      : rng_(seed), crash_p_(crash_p), env_p_(env_p) {}

  size_t Choose(const std::vector<Alt>& alts) override {
    std::vector<size_t> threads;
    std::vector<size_t> crashes;
    std::vector<size_t> envs;
    for (size_t i = 0; i < alts.size(); ++i) {
      switch (alts[i].kind) {
        case AltKind::kThread:
          threads.push_back(i);
          break;
        case AltKind::kCrash:
          crashes.push_back(i);
          break;
        case AltKind::kEnv:
          envs.push_back(i);
          break;
        case AltKind::kProceed:
          break;  // chosen only when nothing else is picked
      }
    }
    if (!crashes.empty() && rng_.Chance(crash_p_)) {
      // Uniform among crash alternatives (a single draw when there is only
      // one, so the stream stays comparable with older seeds).
      return crashes.size() == 1 ? crashes[0] : crashes[rng_.Below(crashes.size())];
    }
    if (!envs.empty() && rng_.Chance(env_p_)) {
      // Uniform among env alternatives, with the same single-candidate
      // guard as crashes: one candidate costs one draw, so the stream (and
      // therefore seed reproducibility) is unchanged by merely *offering*
      // an env event that is the only one of its kind.
      return envs.size() == 1 ? envs[0] : envs[rng_.Below(envs.size())];
    }
    if (!threads.empty()) {
      return threads[rng_.Below(threads.size())];
    }
    return rng_.Below(alts.size());
  }

 private:
  Rng rng_;
  double crash_p_;
  double env_p_;
};

}  // namespace detail

// 128-bit fingerprint of a history's observable events. Two histories with
// equal fingerprints receive the same verdict from the linearizability
// checker (the check is a pure function of the events), which is what makes
// fingerprint pruning sound. Requires Spec::OpName and Spec::RetKey to be
// injective renderings (true of every spec in this repo).
template <typename Spec>
Hash128 FingerprintHistory(const History<Spec>& history) {
  Fnv128 f;
  for (const auto& e : history.events) {
    f.MixU64(static_cast<uint64_t>(e.kind));
    f.MixU64(e.op_id);
    switch (e.kind) {
      case History<Spec>::Kind::kInvoke:
        f.MixU64(static_cast<uint64_t>(e.client));
        f.MixString(Spec::OpName(e.op));
        break;
      case History<Spec>::Kind::kReturn:
        f.MixString(Spec::RetKey(e.ret));
        break;
      case History<Spec>::Kind::kCrash:
      case History<Spec>::Kind::kHelped:
        break;
    }
  }
  return f.digest();
}

template <typename Spec>
class Explorer {
 public:
  using Op = typename Spec::Op;
  using Ret = typename Spec::Ret;
  using Factory = std::function<Instance<Spec>()>;

  Explorer(Spec spec, Factory factory, ExplorerOptions options)
      : spec_(std::move(spec)), factory_(std::move(factory)), options_(options) {}

  Report Run() {
    Report report;
    if (options_.mode == ExplorerOptions::Mode::kRandom) {
      detail::RandomDriver driver(options_.seed, options_.crash_probability,
                                  options_.env_probability);
      for (uint64_t i = 0; i < options_.random_runs; ++i) {
        RunOnce(driver, &report);
        NotifyProgress(report);
        if (report.violations.size() >= static_cast<size_t>(options_.max_violations)) {
          break;
        }
      }
      return report;
    }
    RunDfsSubtree({}, &report);
    return report;
  }

  // Exhaustive DFS over decision sequences, replaying from scratch,
  // restricted to paths that extend `prefix` (empty prefix = whole tree).
  // The per-worker engine of ParallelExplorer: prefixes come from
  // EnumerateSubtreePrefixes, so distinct prefixes explore disjoint
  // subtrees. `keep_going`, if set, is polled after every execution;
  // returning false abandons the subtree and marks the report truncated.
  void RunDfsSubtree(std::vector<size_t> prefix, Report* report,
                     const std::function<bool(const Report&)>& keep_going = nullptr) {
    const size_t floor = prefix.size();
    std::vector<size_t> path = std::move(prefix);
    while (true) {
      detail::DfsDriver driver(&path);
      RunOnce(driver, report);
      NotifyProgress(*report);
      if (report->violations.size() >= static_cast<size_t>(options_.max_violations)) {
        break;
      }
      if (report->executions >= options_.max_executions) {
        report->truncated = true;
        break;
      }
      if (keep_going != nullptr && !keep_going(*report)) {
        report->truncated = true;
        break;
      }
      // Odometer: advance the deepest decision that still has untried
      // alternatives; drop everything below it. A run that aborted early
      // (violation) consumed fewer decisions than the stale path holds, so
      // first trim the path to what was actually replayed. Positions inside
      // the assigned prefix are never advanced — they belong to other
      // subtrees.
      const std::vector<size_t>& counts = driver.counts();
      PCC_ENSURE(path.size() >= counts.size(), "DFS: path shorter than counts");
      path.resize(counts.size());
      bool advanced = false;
      while (path.size() > floor) {
        if (path.back() + 1 < counts[path.size() - 1]) {
          ++path.back();
          advanced = true;
          break;
        }
        path.pop_back();
      }
      if (!advanced) {
        break;  // full bounded subtree explored
      }
    }
  }

  // Coordinator side of the parallel split: enumerates every reachable
  // decision-path prefix of length min(split_depth, run length) in DFS
  // order. The returned prefixes partition the execution space — each
  // decision path extends exactly one of them — so per-prefix
  // RunDfsSubtree reports can be merged into the serial result. Each probe
  // run is structure discovery only (its stats are discarded; the worker
  // that owns the subtree re-runs it for real). Sets *truncated if
  // max_executions probes did not suffice to finish the enumeration.
  std::vector<std::vector<size_t>> EnumerateSubtreePrefixes(int split_depth, bool* truncated) {
    PCC_ENSURE(split_depth >= 0, "split_depth must be non-negative");
    std::vector<std::vector<size_t>> prefixes;
    Report scratch;
    std::vector<size_t> path;
    while (true) {
      detail::DfsDriver driver(&path);
      RunOnce(driver, &scratch);
      const std::vector<size_t>& counts = driver.counts();
      PCC_ENSURE(path.size() >= counts.size(), "DFS: path shorter than counts");
      path.resize(counts.size());
      const size_t plen = std::min(static_cast<size_t>(split_depth), path.size());
      prefixes.emplace_back(path.begin(), path.begin() + plen);
      if (scratch.executions >= options_.max_executions) {
        *truncated = true;
        break;
      }
      // Advance the odometer over the first split_depth levels only: one
      // work item per distinct reachable prefix.
      path.resize(plen);
      bool advanced = false;
      while (!path.empty()) {
        if (path.back() + 1 < counts[path.size() - 1]) {
          ++path.back();
          advanced = true;
          break;
        }
        path.pop_back();
      }
      if (!advanced) {
        break;
      }
    }
    return prefixes;
  }

 private:
  void NotifyProgress(const Report& report) {
    if (options_.progress_callback != nullptr && options_.progress_interval > 0 &&
        report.executions % options_.progress_interval == 0) {
      options_.progress_callback(ExplorerProgress{report.executions, report.total_steps,
                                                  static_cast<uint64_t>(report.violations.size())});
    }
  }
  proc::Task<void> ClientThread(int client, const std::vector<Op>* ops, Instance<Spec>* inst,
                                History<Spec>* history) {
    for (const Op& op : *ops) {
      uint64_t id = history->Invoke(client, op);
      Ret ret = co_await inst->run_op(client, id, op);
      history->Return(id, ret);
    }
  }

  proc::Task<void> RecoveryThread(Instance<Spec>* inst, History<Spec>* history) {
    co_await inst->recover(history);
  }

  proc::Task<void> ProgramThread(std::function<proc::Task<void>(OpRunner<Spec>*)> program,
                                 Instance<Spec>* inst, History<Spec>* history, int client) {
    OpRunner<Spec> runner(inst, history, client);
    co_await program(&runner);
  }

  // The final observation phase: fixed ops first, then the dynamic
  // observer program, all sequentially on one thread.
  proc::Task<void> ObserverThread(Instance<Spec>* inst, History<Spec>* history, int client) {
    OpRunner<Spec> runner(inst, history, client);
    for (const Op& op : inst->observer_ops) {
      (void)co_await runner.Run(op);
    }
    if (inst->observer_program != nullptr) {
      co_await inst->observer_program(&runner);
    }
  }

  void RunOnce(detail::Driver& driver, Report* report) {
    ++report->executions;
    Instance<Spec> inst = factory_();
    History<Spec> history;
    proc::Scheduler sched;
    proc::SchedulerScope scope(&sched);

    for (size_t c = 0; c < inst.client_ops.size(); ++c) {
      sched.Spawn(ClientThread(static_cast<int>(c), &inst.client_ops[c], &inst, &history),
                  "client" + std::to_string(c));
    }
    for (size_t p = 0; p < inst.client_programs.size(); ++p) {
      int client = static_cast<int>(inst.client_ops.size() + p);
      sched.Spawn(ProgramThread(inst.client_programs[p], &inst, &history, client),
                  "client" + std::to_string(client));
    }
    const int observer_client =
        static_cast<int>(inst.client_ops.size() + inst.client_programs.size());
    const bool has_observers = !inst.observer_ops.empty() || inst.observer_program != nullptr;

    int crashes_used = 0;
    int preemptions_used = 0;
    proc::Scheduler::Tid last_thread = proc::Scheduler::kInvalidTid;
    std::vector<int> env_budget;
    env_budget.reserve(inst.env_events.size());
    for (const EnvEvent& e : inst.env_events) {
      env_budget.push_back(e.budget);
    }
    bool observers_started = false;
    uint64_t steps = 0;
    std::string trace;
    auto add_violation = [&](std::string kind, std::string detail_msg) {
      if (report->violations.size() < static_cast<size_t>(options_.max_violations)) {
        report->violations.push_back(
            Violation{std::move(kind), std::move(detail_msg), trace.empty() ? "(empty)" : trace});
      }
    };

    while (true) {
      // Crash invariants must hold at every step (§5.1).
      if (inst.crash_invariants != nullptr) {
        if (auto broken = inst.crash_invariants->FirstViolation()) {
          add_violation("crash-invariant", "invariant '" + *broken + "' does not hold");
          report->total_steps += steps;
          return;
        }
      }

      if (sched.AllDone()) {
        if (observers_started) {
          break;  // execution complete
        }
        // Quiescent point: every thread has finished. The durability of
        // completed operations matters precisely here, so offer one more
        // decision — proceed to observation, or inject a crash first.
        bool crash_possible = inst.recover != nullptr && crashes_used < options_.max_crashes;
        bool env_possible = false;
        for (size_t i = 0; i < inst.env_events.size(); ++i) {
          env_possible = env_possible || env_budget[i] > 0;
        }
        if (crash_possible || env_possible) {
          std::vector<detail::Alt> alts;
          alts.push_back(detail::Alt{detail::AltKind::kProceed, -1, 0, "observe"});
          if (crash_possible) {
            alts.push_back(detail::Alt{detail::AltKind::kCrash, -1, 0, "CRASH"});
          }
          for (size_t i = 0; i < inst.env_events.size(); ++i) {
            if (env_budget[i] > 0) {
              alts.push_back(detail::Alt{detail::AltKind::kEnv, -1, i, inst.env_events[i].name});
            }
          }
          size_t pick = driver.Choose(alts);
          PCC_ENSURE(pick < alts.size(), "driver picked an invalid alternative");
          const detail::Alt& alt = alts[pick];
          if (!trace.empty()) {
            trace += ' ';
          }
          trace += alt.label;
          ++steps;
          if (alt.kind == detail::AltKind::kCrash) {
            ++crashes_used;
            ++report->crashes_injected;
            history.Crash();
            sched.KillAllThreads();
            inst.world->Crash();
            sched.Spawn(RecoveryThread(&inst, &history), "recovery");
            continue;
          }
          if (alt.kind == detail::AltKind::kEnv) {
            --env_budget[alt.env];
            ++report->env_events_fired;
            inst.env_events[alt.env].fire();
            continue;
          }
          // fall through: proceed to observation
        }
        observers_started = true;
        if (!has_observers) {
          break;
        }
        sched.Spawn(ObserverThread(&inst, &history, observer_client), "observer");
        continue;
      }
      if (sched.Deadlocked()) {
        add_violation("deadlock", "live threads but none runnable\n" + history.ToString());
        report->total_steps += steps;
        return;
      }
      if (steps >= options_.max_steps_per_run) {
        add_violation("step-bound",
                      "execution exceeded " + std::to_string(options_.max_steps_per_run) +
                          " steps (possible nontermination)");
        report->total_steps += steps;
        return;
      }

      // Build the alternatives for this decision point.
      std::vector<detail::Alt> alts;
      std::vector<proc::Scheduler::Tid> runnable = sched.RunnableThreads();
      bool last_still_runnable = false;
      for (proc::Scheduler::Tid tid : runnable) {
        last_still_runnable = last_still_runnable || tid == last_thread;
      }
      const bool preemption_exhausted =
          options_.max_preemptions >= 0 && preemptions_used >= options_.max_preemptions;
      for (proc::Scheduler::Tid tid : runnable) {
        if (preemption_exhausted && last_still_runnable && tid != last_thread) {
          continue;  // switching away now would be one preemption too many
        }
        alts.push_back(detail::Alt{detail::AltKind::kThread, tid, 0, "t" + std::to_string(tid)});
      }
      if (!observers_started && inst.recover != nullptr && crashes_used < options_.max_crashes) {
        alts.push_back(detail::Alt{detail::AltKind::kCrash, -1, 0, "CRASH"});
      }
      // Environment events (disk failures, ...) can strike at any time —
      // including while the observers probe the final state, which is how
      // §3.1's failover inconsistency ("read v, disk 1 fails, read old
      // value") becomes observable.
      for (size_t i = 0; i < inst.env_events.size(); ++i) {
        if (env_budget[i] > 0) {
          alts.push_back(detail::Alt{detail::AltKind::kEnv, -1, i, inst.env_events[i].name});
        }
      }

      size_t pick = driver.Choose(alts);
      PCC_ENSURE(pick < alts.size(), "driver picked an invalid alternative");
      const detail::Alt& alt = alts[pick];
      if (!trace.empty()) {
        trace += ' ';
      }
      trace += alt.label;
      ++steps;

      switch (alt.kind) {
        case detail::AltKind::kThread: {
          if (last_still_runnable && alt.thread != last_thread) {
            ++preemptions_used;
          }
          last_thread = alt.thread;
          try {
            sched.Step(alt.thread);
          } catch (const UbViolation& ub) {
            add_violation("undefined-behavior", ub.what() + ("\n" + history.ToString()));
            report->total_steps += steps;
            return;
          }
          break;
        }
        case detail::AltKind::kCrash: {
          ++crashes_used;
          ++report->crashes_injected;
          history.Crash();
          sched.KillAllThreads();
          inst.world->Crash();
          sched.Spawn(RecoveryThread(&inst, &history), "recovery");
          last_thread = proc::Scheduler::kInvalidTid;  // no thread survived
          break;
        }
        case detail::AltKind::kEnv: {
          --env_budget[alt.env];
          ++report->env_events_fired;
          inst.env_events[alt.env].fire();
          break;
        }
        case detail::AltKind::kProceed:
          PCC_ENSURE(false, "proceed alternative outside the quiescent point");
          break;
      }
    }

    report->total_steps += steps;
    ++report->histories_checked;
    if (options_.dedup_histories) {
      // Fingerprint pruning: identical histories get identical verdicts, so
      // replay the cached verdict instead of re-running the search. Only
      // the spec check is skipped — the execution itself (crash invariants,
      // UB, deadlock, step bound) already ran in full above.
      Hash128 fp = FingerprintHistory(history);
      auto it = checked_histories_.find(fp);
      if (it != checked_histories_.end()) {
        ++report->histories_deduped;
        if (it->second.has_value()) {
          add_violation("non-linearizable", *it->second);
        }
        return;
      }
      LinearizabilityChecker<Spec> checker(&spec_);
      std::optional<std::string> why = checker.Check(history);
      checked_histories_.emplace(fp, why);
      if (why.has_value()) {
        add_violation("non-linearizable", *why);
      }
      report->spec_states_explored += checker.states_explored();
      return;
    }
    LinearizabilityChecker<Spec> checker(&spec_);
    if (auto why = checker.Check(history)) {
      add_violation("non-linearizable", *why);
    }
    report->spec_states_explored += checker.states_explored();
  }

  Spec spec_;
  Factory factory_;
  ExplorerOptions options_;
  // Fingerprint -> cached linearizability verdict (dedup_histories).
  std::map<Hash128, std::optional<std::string>> checked_histories_;
};

}  // namespace perennial::refine

#endif  // PERENNIAL_SRC_REFINE_EXPLORER_H_
