// Memoization caches for the refinement checker.
//
// Two artifacts of a refinement run are pure functions of a history (or a
// history prefix) and can therefore be computed once and reused:
//
//   * The linearizability VERDICT of a complete history depends only on the
//     history's events (the check replays the spec against them). The
//     128-bit fingerprint (FingerprintHistory) keys a verdict cache shared
//     across every execution of a run — and, under ParallelExplorer, across
//     worker threads: whichever worker checks a history first publishes the
//     verdict, and duplicates replay it instead of re-running the search.
//
//   * The FRONTIER of spec configurations reachable after consuming a
//     history PREFIX depends only on that prefix (linearize.h maintains the
//     invariant that every per-config obligation is checked at the event
//     that imposes it, never by looking ahead). Prefix fingerprints key a
//     frontier cache, so sibling histories that share a prefix — the common
//     case under DFS exploration, where one decision flips near the leaves —
//     resume the spec search mid-way instead of from the initial state.
//
// Both caches are sharded maps under per-shard mutexes: lock hold times are
// a lookup or an insert, and 16 shards keep worker collisions negligible at
// the scale of this repo's benches. Memory is bounded two ways: a per-shard
// entry cap (inserts past it are dropped), and — when the durable-run
// layer's max_memory_bytes is in play — an approximate byte cap with
// whole-shard eviction. Evicting cached entries can never change a verdict
// (values are pure functions of their keys; a miss just re-runs the check),
// it only converts hits into misses.
#ifndef PERENNIAL_SRC_REFINE_MEMO_H_
#define PERENNIAL_SRC_REFINE_MEMO_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "src/base/hash.h"
#include "src/refine/history.h"

namespace perennial::refine {

// Mixes one history event into a streaming fingerprint. Factored out of
// FingerprintHistory so prefix fingerprints can be built incrementally: the
// fingerprint of events[0..i) is a pure fold of MixEvent over the prefix,
// and Fnv128 is copyable, so each prefix digest costs O(1) on top of the
// previous one.
template <typename Spec>
void MixEvent(Fnv128* f, const typename History<Spec>::Event& e) {
  f->MixU64(static_cast<uint64_t>(e.kind));
  f->MixU64(e.op_id);
  switch (e.kind) {
    case History<Spec>::Kind::kInvoke:
      f->MixU64(static_cast<uint64_t>(e.client));
      f->MixString(Spec::OpName(e.op));
      break;
    case History<Spec>::Kind::kReturn:
      f->MixString(Spec::RetKey(e.ret));
      break;
    case History<Spec>::Kind::kCrash:
    case History<Spec>::Kind::kHelped:
      break;
  }
}

// 128-bit fingerprint of a history's observable events. Two histories with
// equal fingerprints receive the same verdict from the linearizability
// checker (the check is a pure function of the events), which is what makes
// fingerprint pruning sound. Requires Spec::OpName and Spec::RetKey to be
// injective renderings (true of every spec in this repo).
template <typename Spec>
Hash128 FingerprintHistory(const History<Spec>& history) {
  Fnv128 f;
  for (const auto& e : history.events) {
    MixEvent<Spec>(&f, e);
  }
  return f.digest();
}

// Thread-safe fingerprint-keyed map. V must be copyable (lookups copy the
// value out under the shard lock; cached values are shared_ptrs or small
// optionals in practice).
template <typename V>
class ShardedMemo {
 public:
  static constexpr size_t kShards = 16;

  explicit ShardedMemo(size_t max_entries_per_shard = 1u << 20)
      : cap_(max_entries_per_shard) {}
  ShardedMemo(const ShardedMemo&) = delete;
  ShardedMemo& operator=(const ShardedMemo&) = delete;

  // Presence test without copying the value out. Used to skip building a
  // value that would lose the first-insert-wins race anyway (the frontier
  // cache only heap-allocates a shared frontier for genuinely new prefixes).
  bool Contains(const Hash128& fp) const {
    const Shard& s = shards_[ShardOf(fp)];
    std::scoped_lock lock(s.mu);
    return s.entries.find(fp) != s.entries.end();
  }

  bool Lookup(const Hash128& fp, V* out) const {
    const Shard& s = shards_[ShardOf(fp)];
    std::scoped_lock lock(s.mu);
    auto it = s.entries.find(fp);
    if (it == s.entries.end()) {
      return false;
    }
    *out = it->second;
    return true;
  }

  // First insert wins (the value is a pure function of the key, so any
  // racing value is identical); returns false when the entry was dropped —
  // the shard is at its entry cap, or the byte cap could not be met even
  // after evicting the target shard. When the insert would push the
  // accounted total past max_bytes, the TARGET shard is cleared whole
  // (coarse, but keeps the common path to one counter update and makes
  // serial eviction order deterministic); if other shards still hold too
  // much, the entry is dropped so the accounted total never exceeds the
  // cap. `approx_bytes` is the caller's estimate of the entry's footprint;
  // it must be a deterministic function of the value (save/restore replays
  // the same accounting).
  bool Insert(const Hash128& fp, V value, size_t approx_bytes = sizeof(Hash128) + sizeof(V) + 48) {
    Shard& s = shards_[ShardOf(fp)];
    std::scoped_lock lock(s.mu);
    if (s.entries.size() >= cap_ && s.entries.find(fp) == s.entries.end()) {
      return false;
    }
    const size_t max_bytes = max_bytes_.load(std::memory_order_relaxed);
    if (max_bytes > 0 &&
        total_bytes_.load(std::memory_order_relaxed) + approx_bytes > max_bytes &&
        s.entries.find(fp) == s.entries.end()) {
      if (s.bytes > 0) {
        total_bytes_.fetch_sub(s.bytes, std::memory_order_relaxed);
        evictions_.fetch_add(1, std::memory_order_relaxed);
        s.bytes = 0;
        s.entries.clear();
      }
      if (total_bytes_.load(std::memory_order_relaxed) + approx_bytes > max_bytes) {
        return false;  // other shards hold the budget; degrade to a miss
      }
    }
    auto [it, inserted] = s.entries.emplace(fp, std::move(value));
    (void)it;
    if (inserted) {
      s.bytes += approx_bytes;
      total_bytes_.fetch_add(approx_bytes, std::memory_order_relaxed);
    }
    return true;
  }

  size_t size() const {
    size_t n = 0;
    for (const Shard& s : shards_) {
      std::scoped_lock lock(s.mu);
      n += s.entries.size();
    }
    return n;
  }

  // Accounted bytes across all shards (approximate; see Insert).
  size_t bytes() const { return total_bytes_.load(std::memory_order_relaxed); }

  // Whole-shard evictions performed so far.
  uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }

  // Byte cap enforced by Insert (0 = unlimited). Safe to call repeatedly
  // with the same value (ParallelExplorer workers all set it).
  void set_max_bytes(size_t max_bytes) { max_bytes_.store(max_bytes, std::memory_order_relaxed); }

  // Visits every entry (shard by shard, key order within a shard — a
  // deterministic order for a deterministic insert history). Used to
  // serialize the verdict cache into checkpoints. Fn: (const Hash128&,
  // const V&).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Shard& s : shards_) {
      std::scoped_lock lock(s.mu);
      for (const auto& [fp, value] : s.entries) {
        fn(fp, value);
      }
    }
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::map<Hash128, V> entries;
    size_t bytes = 0;  // accounted bytes of this shard (guarded by mu)
  };

  static size_t ShardOf(const Hash128& fp) { return static_cast<size_t>(fp.lo) % kShards; }

  size_t cap_;
  std::atomic<size_t> max_bytes_{0};
  std::atomic<size_t> total_bytes_{0};
  std::atomic<uint64_t> evictions_{0};
  std::array<Shard, kShards> shards_;
};

// Fingerprint -> linearizability verdict (nullopt: history refines the
// spec; string: why it does not). Shared across ParallelExplorer workers.
using VerdictCache = ShardedMemo<std::optional<std::string>>;

// The byte estimate for a verdict entry. Centralized because it must be
// identical at the original insert and at checkpoint restore (string SIZE,
// never capacity), or a resumed run's eviction pattern would diverge from
// the uninterrupted one.
inline size_t VerdictEntryBytes(const std::optional<std::string>& verdict) {
  return sizeof(Hash128) + sizeof(std::optional<std::string>) + 48 +
         (verdict.has_value() ? verdict->size() : 0);
}

}  // namespace perennial::refine

#endif  // PERENNIAL_SRC_REFINE_MEMO_H_
