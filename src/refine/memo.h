// Memoization caches for the refinement checker.
//
// Two artifacts of a refinement run are pure functions of a history (or a
// history prefix) and can therefore be computed once and reused:
//
//   * The linearizability VERDICT of a complete history depends only on the
//     history's events (the check replays the spec against them). The
//     128-bit fingerprint (FingerprintHistory) keys a verdict cache shared
//     across every execution of a run — and, under ParallelExplorer, across
//     worker threads: whichever worker checks a history first publishes the
//     verdict, and duplicates replay it instead of re-running the search.
//
//   * The FRONTIER of spec configurations reachable after consuming a
//     history PREFIX depends only on that prefix (linearize.h maintains the
//     invariant that every per-config obligation is checked at the event
//     that imposes it, never by looking ahead). Prefix fingerprints key a
//     frontier cache, so sibling histories that share a prefix — the common
//     case under DFS exploration, where one decision flips near the leaves —
//     resume the spec search mid-way instead of from the initial state.
//
// Both caches are sharded maps under per-shard mutexes: lock hold times are
// a lookup or an insert, and 16 shards keep worker collisions negligible at
// the scale of this repo's benches. Entries are never evicted, but inserts
// stop at a per-shard cap so a pathological run degrades to cache misses
// rather than unbounded memory.
#ifndef PERENNIAL_SRC_REFINE_MEMO_H_
#define PERENNIAL_SRC_REFINE_MEMO_H_

#include <array>
#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "src/base/hash.h"
#include "src/refine/history.h"

namespace perennial::refine {

// Mixes one history event into a streaming fingerprint. Factored out of
// FingerprintHistory so prefix fingerprints can be built incrementally: the
// fingerprint of events[0..i) is a pure fold of MixEvent over the prefix,
// and Fnv128 is copyable, so each prefix digest costs O(1) on top of the
// previous one.
template <typename Spec>
void MixEvent(Fnv128* f, const typename History<Spec>::Event& e) {
  f->MixU64(static_cast<uint64_t>(e.kind));
  f->MixU64(e.op_id);
  switch (e.kind) {
    case History<Spec>::Kind::kInvoke:
      f->MixU64(static_cast<uint64_t>(e.client));
      f->MixString(Spec::OpName(e.op));
      break;
    case History<Spec>::Kind::kReturn:
      f->MixString(Spec::RetKey(e.ret));
      break;
    case History<Spec>::Kind::kCrash:
    case History<Spec>::Kind::kHelped:
      break;
  }
}

// 128-bit fingerprint of a history's observable events. Two histories with
// equal fingerprints receive the same verdict from the linearizability
// checker (the check is a pure function of the events), which is what makes
// fingerprint pruning sound. Requires Spec::OpName and Spec::RetKey to be
// injective renderings (true of every spec in this repo).
template <typename Spec>
Hash128 FingerprintHistory(const History<Spec>& history) {
  Fnv128 f;
  for (const auto& e : history.events) {
    MixEvent<Spec>(&f, e);
  }
  return f.digest();
}

// Thread-safe fingerprint-keyed map. V must be copyable (lookups copy the
// value out under the shard lock; cached values are shared_ptrs or small
// optionals in practice).
template <typename V>
class ShardedMemo {
 public:
  static constexpr size_t kShards = 16;

  explicit ShardedMemo(size_t max_entries_per_shard = 1u << 20)
      : cap_(max_entries_per_shard) {}
  ShardedMemo(const ShardedMemo&) = delete;
  ShardedMemo& operator=(const ShardedMemo&) = delete;

  // Presence test without copying the value out. Used to skip building a
  // value that would lose the first-insert-wins race anyway (the frontier
  // cache only heap-allocates a shared frontier for genuinely new prefixes).
  bool Contains(const Hash128& fp) const {
    const Shard& s = shards_[ShardOf(fp)];
    std::scoped_lock lock(s.mu);
    return s.entries.find(fp) != s.entries.end();
  }

  bool Lookup(const Hash128& fp, V* out) const {
    const Shard& s = shards_[ShardOf(fp)];
    std::scoped_lock lock(s.mu);
    auto it = s.entries.find(fp);
    if (it == s.entries.end()) {
      return false;
    }
    *out = it->second;
    return true;
  }

  // First insert wins (the value is a pure function of the key, so any
  // racing value is identical); returns false when the shard is at cap and
  // the entry was dropped.
  bool Insert(const Hash128& fp, V value) {
    Shard& s = shards_[ShardOf(fp)];
    std::scoped_lock lock(s.mu);
    if (s.entries.size() >= cap_ && s.entries.find(fp) == s.entries.end()) {
      return false;
    }
    s.entries.emplace(fp, std::move(value));
    return true;
  }

  size_t size() const {
    size_t n = 0;
    for (const Shard& s : shards_) {
      std::scoped_lock lock(s.mu);
      n += s.entries.size();
    }
    return n;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::map<Hash128, V> entries;
  };

  static size_t ShardOf(const Hash128& fp) { return static_cast<size_t>(fp.lo) % kShards; }

  size_t cap_;
  std::array<Shard, kShards> shards_;
};

// Fingerprint -> linearizability verdict (nullopt: history refines the
// spec; string: why it does not). Shared across ParallelExplorer workers.
using VerdictCache = ShardedMemo<std::optional<std::string>>;

}  // namespace perennial::refine

#endif  // PERENNIAL_SRC_REFINE_MEMO_H_
