// Concurrent histories with crashes — the observable behavior the checker
// verifies against a specification.
//
// A history is the sequence of externally visible events of one execution:
// operation invocations and responses (per spec-level thread), crash
// markers, and "helped" markers emitted by recovery when it consumes a
// helping token (§5.4) — a claim that the crashed operation's effect was
// committed before the crash.
//
// Concurrent recovery refinement (§3.1) holds for a history iff there is an
// interleaving of spec transitions with the same invocations and responses,
// where each crash (followed by recovery) corresponds to one atomic
// spec-level crash transition, and operations pending at a crash either
// take effect before that crash transition or never.
#ifndef PERENNIAL_SRC_REFINE_HISTORY_H_
#define PERENNIAL_SRC_REFINE_HISTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/proc/footprint.h"

namespace perennial::refine {

template <typename Spec>
struct History {
  using Op = typename Spec::Op;
  using Ret = typename Spec::Ret;

  enum class Kind { kInvoke, kReturn, kCrash, kHelped };

  struct Event {
    Kind kind;
    uint64_t op_id = 0;  // kInvoke/kReturn/kHelped
    int client = -1;     // kInvoke
    Op op{};             // kInvoke
    Ret ret{};           // kReturn
  };

  std::vector<Event> events;
  uint64_t next_op_id = 1;

  // Every append is a write on the shared history resource: event order IS
  // the observable behavior, so two appending steps never commute and POR
  // can never merge histories that differ (history counts are POR-invariant).
  uint64_t Invoke(int client, Op op) {
    proc::RecordAccess(proc::MixResource(proc::kResHistory, 0), /*write=*/true);
    uint64_t id = next_op_id++;
    events.push_back(Event{Kind::kInvoke, id, client, std::move(op), Ret{}});
    return id;
  }
  void Return(uint64_t op_id, Ret ret) {
    proc::RecordAccess(proc::MixResource(proc::kResHistory, 0), /*write=*/true);
    events.push_back(Event{Kind::kReturn, op_id, -1, Op{}, std::move(ret)});
  }
  void Crash() { events.push_back(Event{Kind::kCrash}); }
  void Helped(uint64_t op_id) {
    proc::RecordAccess(proc::MixResource(proc::kResHistory, 0), /*write=*/true);
    events.push_back(Event{Kind::kHelped, op_id});
  }

  void Clear() {
    events.clear();
    next_op_id = 1;
  }

  // Human-readable rendering for violation reports.
  std::string ToString() const {
    std::string out;
    for (const Event& e : events) {
      switch (e.kind) {
        case Kind::kInvoke:
          out += "  invoke #" + std::to_string(e.op_id) + " client" + std::to_string(e.client) +
                 " " + Spec::OpName(e.op) + "\n";
          break;
        case Kind::kReturn:
          out += "  return #" + std::to_string(e.op_id) + " -> " + Spec::RetKey(e.ret) + "\n";
          break;
        case Kind::kCrash:
          out += "  CRASH\n";
          break;
        case Kind::kHelped:
          out += "  helped #" + std::to_string(e.op_id) + " (recovery committed it)\n";
          break;
      }
    }
    return out;
  }
};

}  // namespace perennial::refine

#endif  // PERENNIAL_SRC_REFINE_HISTORY_H_
