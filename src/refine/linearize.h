// The concurrent-recovery-refinement decision procedure.
//
// Given a complete history (history.h) and a specification transition
// system, this module decides whether the history is explainable by some
// interleaving of atomic spec transitions — i.e. whether this execution
// witnesses concurrent recovery refinement (§3.1, Theorem 2):
//
//  * Each completed operation linearizes between its invocation and its
//    response, with a return value the spec allows (Wing & Gong's
//    linearizability search, here over possibly-nondeterministic specs).
//  * At a crash, each still-pending operation either linearizes before the
//    spec-level crash transition (its effect is durable — possibly because
//    recovery helped it) or is discarded (it never happened).
//  * Operations recovery claims to have helped MUST linearize before the
//    crash they were pending at.
//  * The crash itself takes one atomic spec crash transition (which may be
//    nondeterministic, e.g. group commit losing buffered transactions).
//
// If any search branch drives the spec into *undefined* behavior, the
// history is accepted: the spec imposes no obligations past UB (§8.3) —
// the workloads used by the explorer are designed to stay within defined
// behavior, so this arises only when deliberately testing UB exploitation.
//
// The search runs as a LAYERED BREADTH-FIRST pass: it maintains, per
// history prefix, the frontier of reachable spec configurations (state,
// chosen-but-unreturned responses, commit records), closed under "some
// pending op linearizes now". A history is accepted iff the frontier after
// the last event is non-empty (or UB was reached). Two properties make the
// frontier a pure function of the PREFIX, which is what lets it be
// memoized across histories (memo.h) and shared across explorer workers:
//
//  * Every obligation is checked at the event that imposes it. In
//    particular the helped-op obligation is enforced at the kHelped event
//    (the op must appear in the commit snapshot taken at the most recent
//    crash), not at the crash — the crash event cannot know which ops a
//    later recovery will claim.
//  * Configurations carry only prefix-determined data: the commit set is
//    EVERY op id ever linearized (not just the ids some future recovery
//    will help), plus the snapshot of that set at the last crash.
//
// This is equivalent to the DFS formulation: an op helped after crash C
// must have linearized while still pending, and crashes clear the pending
// set, so "linearized before C" and "present in C's commit snapshot"
// coincide.
//
// Spec requirements (a "SpecModel"):
//   using State, Op, Ret;                     // Ret: equality-comparable
//   State Initial() const;
//   tsys::Outcome<State, Ret> Step(const State&, const Op&) const;
//   std::vector<State> CrashSteps(const State&) const;
//   static std::string StateKey(const State&); // canonical, injective
//   static std::string RetKey(const Ret&);     // canonical, injective
//   static std::string OpName(const Op&);      // for messages
//
// Specs with an optional `Prepare(events)` hook (data-dependent
// nondeterminism, e.g. Mailboat's message-id pool) read the WHOLE history
// before stepping; their frontiers are suffix-dependent, so the prefix
// cache — and the cross-history spine below — is bypassed for them.
//
// HOT PATH (PR 4): the checker owns a per-search ARENA that is reset, not
// freed, between histories. Frontiers live in a spine_ vector where
// spine_[i] is the closed frontier after events[0..i); deriving a frontier
// clears and refills the next slot in place, configs are deduplicated by
// 128-bit fingerprints (seen_, a retained hash set) instead of serialized
// string keys, and shared_ptr frontiers are materialized ONLY on the
// memo-cache insert path. Check(history, reuse_events) additionally lets
// the caller resume from a retained spine prefix: the explorer's DFS
// odometer knows how many leading events the new history shares with the
// previous one, so consecutive executions skip re-deriving the common
// prefix entirely (no memo cache required). spine_states_[i] retains the
// cumulative states_explored count a from-scratch run would have at slot i,
// so resuming reports bit-identical spec_states_explored — which is what
// keeps serial and parallel reports equal even though workers resume from
// different depths.
#ifndef PERENNIAL_SRC_REFINE_LINEARIZE_H_
#define PERENNIAL_SRC_REFINE_LINEARIZE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/base/hash.h"
#include "src/refine/history.h"
#include "src/refine/memo.h"
#include "src/tsys/transition.h"

namespace perennial::refine {

// The spec-side configurations reachable after one history prefix, closed
// under linearization moves. `undefined` is sticky: some reachable config
// stepped into spec UB, which accepts every history with this prefix.
template <typename Spec>
struct SpecFrontier {
  using State = typename Spec::State;
  using Op = typename Spec::Op;
  using Ret = typename Spec::Ret;

  struct Config {
    State state;
    // Invoked, not yet linearized (op_id -> op).
    std::map<uint64_t, Op> pending;
    // Linearized with a chosen return value, awaiting the response.
    std::map<uint64_t, Ret> linearized;
    // Every op id that ever linearized. Never reset (commit records model
    // durable facts); pending is derivable from (prefix, committed), so
    // this also determines the pending set.
    std::set<uint64_t> committed;
    // Snapshot of `committed` taken at the most recent crash event; the
    // kHelped obligation is checked against it.
    std::set<uint64_t> committed_at_crash;
  };

  bool undefined = false;
  std::vector<Config> configs;
};

template <typename Spec>
class LinearizabilityChecker {
 public:
  using State = typename Spec::State;
  using Op = typename Spec::Op;
  using Ret = typename Spec::Ret;
  using Hist = History<Spec>;
  using Frontier = SpecFrontier<Spec>;
  using FrontierPtr = std::shared_ptr<const Frontier>;
  using FrontierCache = ShardedMemo<FrontierPtr>;

  explicit LinearizabilityChecker(const Spec* spec) : spec_storage_(*spec), spec_(&spec_storage_) {}

  // Optional prefix-frontier memoization (ExplorerOptions::
  // memoize_spec_prefixes); the cache may be shared across checkers and
  // threads. Ignored for specs with a Prepare() hook — see header comment.
  void set_frontier_cache(FrontierCache* cache) { cache_ = cache; }

  // nullopt when the history refines the spec; otherwise a description of
  // why no spec interleaving explains it.
  //
  // `reuse_events`: the caller guarantees that the first `reuse_events`
  // events of `history` are identical to the first `reuse_events` events of
  // the history passed to the PREVIOUS Check call on this checker (0 = no
  // guarantee). The search then resumes from the deepest retained spine
  // frontier at or below that depth. The reported states_explored is
  // unaffected by where the search resumed (see the header comment), so
  // callers may pass any sound value without perturbing reports.
  std::optional<std::string> Check(const Hist& history, size_t reuse_events = 0) {
    const std::vector<typename Hist::Event>& events = history.events;
    states_explored_ = 0;
    bool cacheable = cache_ != nullptr;
    bool resumable = true;
    // Specs with data-dependent nondeterminism (e.g. Mailboat's random
    // message ids) pre-scan the history to bound their branch sets — their
    // frontiers depend on the suffix, so they never touch the cache and
    // never resume from a previous history's spine.
    if constexpr (requires(Spec& s) { s.Prepare(events); }) {
      spec_storage_.Prepare(events);
      cacheable = false;
      resumable = false;
    }
    // A helped event needs a crash to snapshot against; recovery only
    // emits kHelped after a crash, so this is a harness-integrity check.
    bool seen_crash = false;
    for (const auto& e : events) {
      if (e.kind == Hist::Kind::kCrash) {
        seen_crash = true;
      } else if (e.kind == Hist::Kind::kHelped && !seen_crash) {
        return "helped event with no preceding crash";
      }
    }

    // Prefix fingerprints: fp_[i] covers events[0..i).
    if (cacheable) {
      fp_.clear();
      fp_.reserve(events.size() + 1);
      Fnv128 f;
      fp_.push_back(f.digest());
      for (const auto& e : events) {
        MixEvent<Spec>(&f, e);
        fp_.push_back(f.digest());
      }
    }

    // Pick the resume point: the deepest spine frontier within the BOTH
    // shared AND contiguously-valid prefix (spine_ok_ — a memo-cache hit
    // can leave a hole of stale slots below it, see below), or slot 0
    // (built on first use; rebuilt every time for Prepare specs, whose
    // Initial may observe prepared data).
    size_t resume = 0;
    if (resumable && spine_ok_ > 0) {
      resume = std::min(std::min(reuse_events, spine_ok_ - 1), events.size());
    } else {
      EnsureSlot(0);
      BuildInitial(&spine_[0]);
      spine_states_[0] = 0;
      spine_ok_ = 1;
    }
    const size_t pre_hit_resume = resume;
    // A cached prefix deeper than the spine wins. The hit is used BY
    // POINTER (never copied into the spine — gc-sized frontiers make that
    // copy the dominant cost); the slot it logically occupies stays stale,
    // which the spine_ok_ update below accounts for. Cache-resumed work is
    // not re-counted (the documented memoize_spec_prefixes semantics), so
    // the cumulative counts restart at zero there.
    FrontierPtr hit;
    size_t hit_at = static_cast<size_t>(-1);
    if (cacheable) {
      for (size_t i = events.size() + 1; i-- > resume + 1;) {
        if (cache_->Lookup(fp_[i], &hit)) {
          hit_at = i;
          resume = i;
          break;
        }
      }
      if (!cache_->Contains(fp_[0])) {
        cache_->Insert(fp_[0], std::make_shared<Frontier>(spine_[0]),
                       FrontierEntryBytes(spine_[0]));
      }
    }

    states_explored_ = hit_at == static_cast<size_t>(-1) ? spine_states_[resume] : 0;
    size_t idx = resume;
    while (idx < events.size()) {
      // Resize BEFORE binding cur: EnsureSlot may reallocate the spine.
      EnsureSlot(idx + 1);
      const Frontier& cur = idx == hit_at ? *hit : spine_[idx];
      if (cur.undefined) {
        break;  // spec UB: no further obligations
      }
      if (cur.configs.empty()) {
        break;  // already inexplicable; later events cannot help
      }
      DeriveNext(cur, events[idx], &spine_[idx + 1]);
      spine_states_[idx + 1] = states_explored_;
      ++idx;
      if (cacheable && !cache_->Contains(fp_[idx])) {
        cache_->Insert(fp_[idx], std::make_shared<Frontier>(spine_[idx]),
                       FrontierEntryBytes(spine_[idx]));
      }
    }
    // The next Check may only resume from slots that hold THIS history's
    // frontiers contiguously from slot 0. A cache hit deeper than the
    // resume point leaves slots (pre_hit_resume, resume] stale (the hit
    // itself was never written into the spine), so contiguous validity
    // stops at the pre-hit resume point.
    spine_ok_ = hit_at == static_cast<size_t>(-1) ? idx + 1 : pre_hit_resume + 1;
    const Frontier& fin = idx == hit_at ? *hit : spine_[idx];
    if (fin.undefined || !fin.configs.empty()) {
      // Leftover pending ops simply never happened; every response (and
      // every helped-op obligation) was explained.
      return std::nullopt;
    }
    return "no spec interleaving explains this history:\n" + history.ToString();
  }

  uint64_t states_explored() const { return states_explored_; }

  // Arena introspection for the reset-between-histories regression test:
  // retained capacity must plateau across same-shaped histories.
  struct ArenaStats {
    size_t spine_slots = 0;       // frontier slots ever materialized
    size_t config_capacity = 0;   // sum of per-slot config vector capacities
    size_t seen_buckets = 0;      // dedup hash-set bucket count
  };
  ArenaStats arena_stats() const {
    ArenaStats s;
    s.spine_slots = spine_.size();
    for (const Frontier& f : spine_) {
      s.config_capacity += f.configs.capacity();
    }
    s.seen_buckets = seen_.bucket_count();
    return s;
  }

  // Approximate bytes retained by the arena between histories — the
  // explorer's memory-budget input (ExplorerOptions::max_memory_bytes).
  // Deliberately an ACCOUNTING estimate, not RSS: capacities times element
  // sizes, so the number is a deterministic function of the exploration
  // path and a resumed run observes the same budget pressure as an
  // uninterrupted one. Config's nested maps/sets are folded in as a flat
  // per-config constant; the explorer polls this at execution granularity,
  // so a per-element walk would dominate small specs.
  size_t approx_retained_bytes() const {
    size_t b = spine_.capacity() * sizeof(Frontier);
    for (const Frontier& f : spine_) {
      b += f.configs.capacity() * (sizeof(Config) + 64);
    }
    b += spine_states_.capacity() * sizeof(uint64_t);
    b += seen_.bucket_count() * (sizeof(Hash128) + sizeof(void*));
    b += fp_.capacity() * sizeof(Hash128);
    return b;
  }

 private:
  using Config = typename Frontier::Config;

  // Byte estimate for one cached frontier — deterministic in the frontier's
  // CONTENT (config count, never vector capacity) so insert-time accounting
  // replays identically across interrupted and uninterrupted runs.
  static size_t FrontierEntryBytes(const Frontier& f) {
    return sizeof(Hash128) + sizeof(FrontierPtr) + sizeof(Frontier) + 48 +
           f.configs.size() * (sizeof(Config) + 64);
  }

  struct Hash128Hasher {
    size_t operator()(const Hash128& h) const { return static_cast<size_t>(h.lo); }
  };

  void EnsureSlot(size_t i) {
    if (spine_.size() <= i) {
      spine_.resize(i + 1);
    }
    if (spine_states_.size() <= i) {
      spine_states_.resize(i + 1, 0);
    }
  }

  // 128-bit config fingerprint for frontier dedup (replaces the serialized
  // string key: no per-config heap allocation beyond the Key renderings).
  // pending is omitted: it equals (ops invoked since the last crash) minus
  // committed, both of which the fingerprint already determines. Collisions
  // would merge two distinct configs; at 128 bits that is as improbable as
  // the history-fingerprint collisions the dedup layer already accepts.
  static Hash128 ConfigFp(const Config& c) {
    Fnv128 f;
    if constexpr (requires(Fnv128* fp, const State& s) { Spec::MixState(fp, s); }) {
      Spec::MixState(&f, c.state);
    } else {
      f.MixString(Spec::StateKey(c.state));
    }
    f.MixU64(c.linearized.size());
    for (const auto& [id, ret] : c.linearized) {
      f.MixU64(id);
      f.MixString(Spec::RetKey(ret));
    }
    f.MixU64(c.committed.size());
    for (uint64_t id : c.committed) {
      f.MixU64(id);
    }
    f.MixU64(c.committed_at_crash.size());
    for (uint64_t id : c.committed_at_crash) {
      f.MixU64(id);
    }
    return f.digest();
  }

  // The initial frontier: the spec's initial state, trivially closed (no
  // pending ops exist before the first event, so closure is a no-op).
  void BuildInitial(Frontier* out) {
    out->undefined = false;
    out->configs.clear();
    Config init;
    init.state = spec_->Initial();
    out->configs.push_back(std::move(init));
  }

  // Consumes one event — maps each config of `in` to its successors
  // (possibly none: a config that cannot explain the event drops out) —
  // then closes the result under "one pending op linearizes now": any
  // pending op may take effect at any moment between its invocation and its
  // response/crash. Sets out->undefined (and stops) if a step leaves the
  // spec's defined domain. `out` is reused storage: cleared, not freed.
  // One seen_ set spans both phases, which matches the old two-set scheme
  // exactly (the closure seeded its set with every event-phase config).
  void DeriveNext(const Frontier& in, const typename Hist::Event& e, Frontier* out) {
    out->undefined = false;
    out->configs.clear();
    seen_.clear();
    auto emit = [&](Config&& c) {
      if (seen_.insert(ConfigFp(c)).second) {
        ++states_explored_;
        out->configs.push_back(std::move(c));
      }
    };
    for (const Config& c : in.configs) {
      switch (e.kind) {
        case Hist::Kind::kInvoke: {
          Config c2 = c;
          c2.pending.emplace(e.op_id, e.op);
          emit(std::move(c2));
          break;
        }
        case Hist::Kind::kReturn: {
          auto it = c.linearized.find(e.op_id);
          if (it != c.linearized.end() && it->second == e.ret) {
            Config c2 = c;
            c2.linearized.erase(e.op_id);
            emit(std::move(c2));
          }
          // Not linearized, or a mismatched chosen return: dead branch.
          break;
        }
        case Hist::Kind::kHelped: {
          // Recovery committed this op on a crashed thread's behalf, which
          // is only sound if the op's effect was durable at the crash —
          // i.e. it linearized before the snapshot taken there.
          if (c.committed_at_crash.count(e.op_id) > 0) {
            emit(Config(c));
          }
          break;
        }
        case Hist::Kind::kCrash: {
          // The crash discards every pending op and every unreturned
          // response; the spec takes one (possibly nondeterministic) crash
          // transition; commit records survive and are snapshotted.
          for (const State& next : spec_->CrashSteps(c.state)) {
            Config c2;
            c2.state = next;
            c2.committed = c.committed;
            c2.committed_at_crash = c.committed;
            emit(std::move(c2));
          }
          break;
        }
      }
    }
    // out->configs doubles as the BFS queue: new configs are appended and
    // scanned in turn (indices stay valid; the vector may reallocate).
    for (size_t i = 0; i < out->configs.size(); ++i) {
      // Copy: Step may append to configs, invalidating references.
      const Config c = out->configs[i];
      for (const auto& [id, op] : c.pending) {
        tsys::Outcome<State, Ret> res = spec_->Step(c.state, op);
        if (res.undefined) {
          out->undefined = true;
          return;
        }
        for (const auto& [next_state, ret] : res.branches) {
          Config c2 = c;
          c2.state = next_state;
          c2.pending.erase(id);
          c2.linearized.emplace(id, ret);
          c2.committed.insert(id);
          emit(std::move(c2));
        }
      }
    }
  }

  Spec spec_storage_;
  const Spec* spec_;
  FrontierCache* cache_ = nullptr;
  uint64_t states_explored_ = 0;
  // --- Per-search arena: reset between histories, never freed ---
  std::vector<Frontier> spine_;          // spine_[i]: frontier after events[0..i)
  std::vector<uint64_t> spine_states_;   // cumulative states count at spine_[i]
  // Slots [0, spine_ok_) hold the LAST-CHECKED history's frontiers with no
  // stale holes; only these are eligible resume points for the next Check.
  size_t spine_ok_ = 0;
  std::unordered_set<Hash128, Hash128Hasher> seen_;  // per-event config dedup
  std::vector<Hash128> fp_;              // prefix fingerprints (cacheable runs)
};

}  // namespace perennial::refine

#endif  // PERENNIAL_SRC_REFINE_LINEARIZE_H_
