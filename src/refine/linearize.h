// The concurrent-recovery-refinement decision procedure.
//
// Given a complete history (history.h) and a specification transition
// system, this module decides whether the history is explainable by some
// interleaving of atomic spec transitions — i.e. whether this execution
// witnesses concurrent recovery refinement (§3.1, Theorem 2):
//
//  * Each completed operation linearizes between its invocation and its
//    response, with a return value the spec allows (Wing & Gong's
//    linearizability search, here over possibly-nondeterministic specs).
//  * At a crash, each still-pending operation either linearizes before the
//    spec-level crash transition (its effect is durable — possibly because
//    recovery helped it) or is discarded (it never happened).
//  * Operations recovery claims to have helped MUST linearize before the
//    crash they were pending at.
//  * The crash itself takes one atomic spec crash transition (which may be
//    nondeterministic, e.g. group commit losing buffered transactions).
//
// If any search branch drives the spec into *undefined* behavior, the
// history is accepted: the spec imposes no obligations past UB (§8.3) —
// the workloads used by the explorer are designed to stay within defined
// behavior, so this arises only when deliberately testing UB exploitation.
//
// The search memoizes on (event index, spec state, linearized-pending set),
// which keeps it polynomial for the small histories the explorer generates.
//
// Spec requirements (a "SpecModel"):
//   using State, Op, Ret;                     // Ret: equality-comparable
//   State Initial() const;
//   tsys::Outcome<State, Ret> Step(const State&, const Op&) const;
//   std::vector<State> CrashSteps(const State&) const;
//   static std::string StateKey(const State&); // canonical, injective
//   static std::string RetKey(const Ret&);     // canonical, injective
//   static std::string OpName(const Op&);      // for messages
#ifndef PERENNIAL_SRC_REFINE_LINEARIZE_H_
#define PERENNIAL_SRC_REFINE_LINEARIZE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/refine/history.h"
#include "src/tsys/transition.h"

namespace perennial::refine {

template <typename Spec>
class LinearizabilityChecker {
 public:
  using State = typename Spec::State;
  using Op = typename Spec::Op;
  using Ret = typename Spec::Ret;
  using Hist = History<Spec>;

  explicit LinearizabilityChecker(const Spec* spec) : spec_storage_(*spec), spec_(&spec_storage_) {}

  // nullopt when the history refines the spec; otherwise a description of
  // why no spec interleaving explains it.
  std::optional<std::string> Check(const Hist& history) {
    events_ = &history.events;
    visited_.clear();
    states_explored_ = 0;
    // Specs with data-dependent nondeterminism (e.g. Mailboat's random
    // message ids) may pre-scan the history to bound their branch sets.
    if constexpr (requires(Spec& s) { s.Prepare(history.events); }) {
      spec_storage_.Prepare(history.events);
    }
    // Pre-compute, for each crash event index, the set of ops recovery
    // helped after it (before any subsequent crash): those must linearize
    // before that crash.
    helped_by_crash_.clear();
    helped_ids_.clear();
    long last_crash = -1;
    for (size_t i = 0; i < events_->size(); ++i) {
      const auto& e = (*events_)[i];
      if (e.kind == Hist::Kind::kCrash) {
        last_crash = static_cast<long>(i);
        helped_by_crash_[last_crash];  // ensure entry
      } else if (e.kind == Hist::Kind::kHelped) {
        if (last_crash < 0) {
          return "helped event with no preceding crash";
        }
        // Recovery after `last_crash` committed this op; it must have
        // linearized at some point before that crash. (With repeated
        // crashes, the token may be consumed by a later recovery than the
        // crash that stranded the op — the obligation is the same.)
        helped_by_crash_[last_crash].insert(e.op_id);
        helped_ids_.insert(e.op_id);
      }
    }
    if (Search(0, spec_->Initial(), {}, {}, {})) {
      return std::nullopt;
    }
    return "no spec interleaving explains this history:\n" + history.ToString();
  }

  uint64_t states_explored() const { return states_explored_; }

 private:
  // Pending ops: invoked, not yet linearized. Linearized ops: took effect,
  // awaiting their response (maps op_id -> chosen return value).
  using PendingMap = std::map<uint64_t, Op>;
  using LinearizedMap = std::map<uint64_t, Ret>;

  bool Search(size_t idx, const State& state, PendingMap pending, LinearizedMap linearized,
              std::set<uint64_t> committed) {
    ++states_explored_;
    {
      // Memoize: pending is determined by (idx, linearized), so the key
      // needs only idx, the state, the linearized set with chosen rets, and
      // the helped-op commit record (which crashes do not reset).
      std::string key = std::to_string(idx) + "|" + Spec::StateKey(state) + "|";
      for (const auto& [id, ret] : linearized) {
        key += std::to_string(id) + ":" + Spec::RetKey(ret) + ";";
      }
      key += "|";
      for (uint64_t id : committed) {
        key += std::to_string(id) + ";";
      }
      if (!visited_.insert(std::move(key)).second) {
        return false;  // already explored from here without success
      }
    }

    // Move 1: process the next event directly if possible.
    if (idx == events_->size()) {
      return true;  // all responses explained; leftover pending ops simply never happened
    }
    const auto& e = (*events_)[idx];
    switch (e.kind) {
      case Hist::Kind::kInvoke: {
        PendingMap p2 = pending;
        p2.emplace(e.op_id, e.op);
        if (Search(idx + 1, state, std::move(p2), linearized, committed)) {
          return true;
        }
        break;
      }
      case Hist::Kind::kReturn: {
        auto it = linearized.find(e.op_id);
        if (it != linearized.end()) {
          if (it->second == e.ret) {
            LinearizedMap l2 = linearized;
            l2.erase(e.op_id);
            if (Search(idx + 1, state, pending, std::move(l2), committed)) {
              return true;
            }
          }
          // Chosen return value mismatched the actual response: this branch
          // of linearization choices is wrong; other moves below may fix it
          // only if the op is still pending (it isn't), so fall through to
          // the generic linearize-moves which won't contain it. Dead end.
        }
        break;  // if not linearized yet, we must linearize it first (move 2)
      }
      case Hist::Kind::kHelped: {
        // Bookkeeping only; the obligation is enforced at the crash event.
        if (Search(idx + 1, state, pending, linearized, committed)) {
          return true;
        }
        break;
      }
      case Hist::Kind::kCrash: {
        // Every op recovery claims to have helped after this crash must
        // have committed (linearized) by now.
        const std::set<uint64_t>& required = helped_by_crash_[static_cast<long>(idx)];
        bool all_required_done = true;
        for (uint64_t id : required) {
          if (committed.find(id) == committed.end()) {
            all_required_done = false;
            break;
          }
        }
        if (all_required_done) {
          // The crash discards every pending op and every unreturned
          // response; the spec takes one crash transition.
          for (const State& next : spec_->CrashSteps(state)) {
            if (Search(idx + 1, next, {}, {}, committed)) {
              return true;
            }
          }
        }
        break;  // otherwise: linearize the helped ops first (move 2)
      }
    }

    // Move 2: linearize one pending operation now (before the current
    // event). Any pending op may take effect at any moment between its
    // invocation and its response/crash.
    for (const auto& [id, op] : pending) {
      tsys::Outcome<State, Ret> out = spec_->Step(state, op);
      if (out.undefined) {
        // The spec imposes no obligations beyond undefined behavior.
        return true;
      }
      for (const auto& [next_state, ret] : out.branches) {
        PendingMap p2 = pending;
        p2.erase(id);
        LinearizedMap l2 = linearized;
        l2.emplace(id, ret);
        std::set<uint64_t> c2 = committed;
        if (helped_ids_.count(id) > 0) {
          c2.insert(id);  // commit record survives crashes
        }
        if (Search(idx, next_state, std::move(p2), std::move(l2), std::move(c2))) {
          return true;
        }
      }
    }
    return false;
  }

  Spec spec_storage_;
  const Spec* spec_;
  const std::vector<typename Hist::Event>* events_ = nullptr;
  std::map<long, std::set<uint64_t>> helped_by_crash_;
  std::set<uint64_t> helped_ids_;
  std::unordered_set<std::string> visited_;
  uint64_t states_explored_ = 0;
};

}  // namespace perennial::refine

#endif  // PERENNIAL_SRC_REFINE_LINEARIZE_H_
