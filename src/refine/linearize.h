// The concurrent-recovery-refinement decision procedure.
//
// Given a complete history (history.h) and a specification transition
// system, this module decides whether the history is explainable by some
// interleaving of atomic spec transitions — i.e. whether this execution
// witnesses concurrent recovery refinement (§3.1, Theorem 2):
//
//  * Each completed operation linearizes between its invocation and its
//    response, with a return value the spec allows (Wing & Gong's
//    linearizability search, here over possibly-nondeterministic specs).
//  * At a crash, each still-pending operation either linearizes before the
//    spec-level crash transition (its effect is durable — possibly because
//    recovery helped it) or is discarded (it never happened).
//  * Operations recovery claims to have helped MUST linearize before the
//    crash they were pending at.
//  * The crash itself takes one atomic spec crash transition (which may be
//    nondeterministic, e.g. group commit losing buffered transactions).
//
// If any search branch drives the spec into *undefined* behavior, the
// history is accepted: the spec imposes no obligations past UB (§8.3) —
// the workloads used by the explorer are designed to stay within defined
// behavior, so this arises only when deliberately testing UB exploitation.
//
// The search runs as a LAYERED BREADTH-FIRST pass: it maintains, per
// history prefix, the frontier of reachable spec configurations (state,
// chosen-but-unreturned responses, commit records), closed under "some
// pending op linearizes now". A history is accepted iff the frontier after
// the last event is non-empty (or UB was reached). Two properties make the
// frontier a pure function of the PREFIX, which is what lets it be
// memoized across histories (memo.h) and shared across explorer workers:
//
//  * Every obligation is checked at the event that imposes it. In
//    particular the helped-op obligation is enforced at the kHelped event
//    (the op must appear in the commit snapshot taken at the most recent
//    crash), not at the crash — the crash event cannot know which ops a
//    later recovery will claim.
//  * Configurations carry only prefix-determined data: the commit set is
//    EVERY op id ever linearized (not just the ids some future recovery
//    will help), plus the snapshot of that set at the last crash.
//
// This is equivalent to the DFS formulation: an op helped after crash C
// must have linearized while still pending, and crashes clear the pending
// set, so "linearized before C" and "present in C's commit snapshot"
// coincide.
//
// Spec requirements (a "SpecModel"):
//   using State, Op, Ret;                     // Ret: equality-comparable
//   State Initial() const;
//   tsys::Outcome<State, Ret> Step(const State&, const Op&) const;
//   std::vector<State> CrashSteps(const State&) const;
//   static std::string StateKey(const State&); // canonical, injective
//   static std::string RetKey(const Ret&);     // canonical, injective
//   static std::string OpName(const Op&);      // for messages
//
// Specs with an optional `Prepare(events)` hook (data-dependent
// nondeterminism, e.g. Mailboat's message-id pool) read the WHOLE history
// before stepping; their frontiers are suffix-dependent, so the prefix
// cache is bypassed for them.
#ifndef PERENNIAL_SRC_REFINE_LINEARIZE_H_
#define PERENNIAL_SRC_REFINE_LINEARIZE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/base/hash.h"
#include "src/refine/history.h"
#include "src/refine/memo.h"
#include "src/tsys/transition.h"

namespace perennial::refine {

// The spec-side configurations reachable after one history prefix, closed
// under linearization moves. `undefined` is sticky: some reachable config
// stepped into spec UB, which accepts every history with this prefix.
template <typename Spec>
struct SpecFrontier {
  using State = typename Spec::State;
  using Op = typename Spec::Op;
  using Ret = typename Spec::Ret;

  struct Config {
    State state;
    // Invoked, not yet linearized (op_id -> op).
    std::map<uint64_t, Op> pending;
    // Linearized with a chosen return value, awaiting the response.
    std::map<uint64_t, Ret> linearized;
    // Every op id that ever linearized. Never reset (commit records model
    // durable facts); pending is derivable from (prefix, committed), so
    // this also determines the pending set.
    std::set<uint64_t> committed;
    // Snapshot of `committed` taken at the most recent crash event; the
    // kHelped obligation is checked against it.
    std::set<uint64_t> committed_at_crash;
  };

  bool undefined = false;
  std::vector<Config> configs;
};

template <typename Spec>
class LinearizabilityChecker {
 public:
  using State = typename Spec::State;
  using Op = typename Spec::Op;
  using Ret = typename Spec::Ret;
  using Hist = History<Spec>;
  using Frontier = SpecFrontier<Spec>;
  using FrontierPtr = std::shared_ptr<const Frontier>;
  using FrontierCache = ShardedMemo<FrontierPtr>;

  explicit LinearizabilityChecker(const Spec* spec) : spec_storage_(*spec), spec_(&spec_storage_) {}

  // Optional prefix-frontier memoization (ExplorerOptions::
  // memoize_spec_prefixes); the cache may be shared across checkers and
  // threads. Ignored for specs with a Prepare() hook — see header comment.
  void set_frontier_cache(FrontierCache* cache) { cache_ = cache; }

  // nullopt when the history refines the spec; otherwise a description of
  // why no spec interleaving explains it.
  std::optional<std::string> Check(const Hist& history) {
    const std::vector<typename Hist::Event>& events = history.events;
    states_explored_ = 0;
    bool cacheable = cache_ != nullptr;
    // Specs with data-dependent nondeterminism (e.g. Mailboat's random
    // message ids) pre-scan the history to bound their branch sets — their
    // frontiers depend on the suffix, so they never touch the cache.
    if constexpr (requires(Spec& s) { s.Prepare(events); }) {
      spec_storage_.Prepare(events);
      cacheable = false;
    }
    // A helped event needs a crash to snapshot against; recovery only
    // emits kHelped after a crash, so this is a harness-integrity check.
    bool seen_crash = false;
    for (const auto& e : events) {
      if (e.kind == Hist::Kind::kCrash) {
        seen_crash = true;
      } else if (e.kind == Hist::Kind::kHelped && !seen_crash) {
        return "helped event with no preceding crash";
      }
    }

    // Prefix fingerprints: fp[i] covers events[0..i).
    std::vector<Hash128> fp;
    if (cacheable) {
      fp.reserve(events.size() + 1);
      Fnv128 f;
      fp.push_back(f.digest());
      for (const auto& e : events) {
        MixEvent<Spec>(&f, e);
        fp.push_back(f.digest());
      }
    }

    // Resume from the longest cached prefix, if any.
    FrontierPtr frontier;
    size_t start = 0;
    if (cacheable) {
      for (size_t i = events.size() + 1; i-- > 0;) {
        FrontierPtr hit;
        if (cache_->Lookup(fp[i], &hit)) {
          frontier = std::move(hit);
          start = i;
          break;
        }
      }
    }
    if (frontier == nullptr) {
      auto base = std::make_shared<Frontier>();
      typename Frontier::Config init;
      init.state = spec_->Initial();
      base->configs.push_back(std::move(init));
      Close(base.get());
      frontier = std::move(base);
      if (cacheable) {
        cache_->Insert(fp[0], frontier);
      }
    }

    for (size_t i = start; i < events.size(); ++i) {
      if (frontier->undefined) {
        return std::nullopt;  // spec UB: no further obligations
      }
      if (frontier->configs.empty()) {
        break;  // already inexplicable; later events cannot help
      }
      auto next = std::make_shared<Frontier>(ApplyEvent(*frontier, events[i]));
      Close(next.get());
      frontier = std::move(next);
      if (cacheable) {
        cache_->Insert(fp[i + 1], frontier);
      }
    }
    if (frontier->undefined || !frontier->configs.empty()) {
      // Leftover pending ops simply never happened; every response (and
      // every helped-op obligation) was explained.
      return std::nullopt;
    }
    return "no spec interleaving explains this history:\n" + history.ToString();
  }

  uint64_t states_explored() const { return states_explored_; }

 private:
  using Config = typename Frontier::Config;

  static std::string ConfigKey(const Config& c) {
    // pending is omitted: it equals (ops invoked since the last crash)
    // minus committed, both of which the key already determines.
    std::string key = Spec::StateKey(c.state) + "|";
    for (const auto& [id, ret] : c.linearized) {
      key += std::to_string(id) + ":" + Spec::RetKey(ret) + ";";
    }
    key += "|";
    for (uint64_t id : c.committed) {
      key += std::to_string(id) + ";";
    }
    key += "|";
    for (uint64_t id : c.committed_at_crash) {
      key += std::to_string(id) + ";";
    }
    return key;
  }

  // Consumes one event: maps each config to its successors (possibly none —
  // a config that cannot explain the event drops out of the frontier).
  Frontier ApplyEvent(const Frontier& in, const typename Hist::Event& e) {
    Frontier out;
    std::unordered_set<std::string> seen;
    auto emit = [&](Config&& c) {
      if (seen.insert(ConfigKey(c)).second) {
        ++states_explored_;
        out.configs.push_back(std::move(c));
      }
    };
    for (const Config& c : in.configs) {
      switch (e.kind) {
        case Hist::Kind::kInvoke: {
          Config c2 = c;
          c2.pending.emplace(e.op_id, e.op);
          emit(std::move(c2));
          break;
        }
        case Hist::Kind::kReturn: {
          auto it = c.linearized.find(e.op_id);
          if (it != c.linearized.end() && it->second == e.ret) {
            Config c2 = c;
            c2.linearized.erase(e.op_id);
            emit(std::move(c2));
          }
          // Not linearized, or a mismatched chosen return: dead branch.
          break;
        }
        case Hist::Kind::kHelped: {
          // Recovery committed this op on a crashed thread's behalf, which
          // is only sound if the op's effect was durable at the crash —
          // i.e. it linearized before the snapshot taken there.
          if (c.committed_at_crash.count(e.op_id) > 0) {
            emit(Config(c));
          }
          break;
        }
        case Hist::Kind::kCrash: {
          // The crash discards every pending op and every unreturned
          // response; the spec takes one (possibly nondeterministic) crash
          // transition; commit records survive and are snapshotted.
          for (const State& next : spec_->CrashSteps(c.state)) {
            Config c2;
            c2.state = next;
            c2.committed = c.committed;
            c2.committed_at_crash = c.committed;
            emit(std::move(c2));
          }
          break;
        }
      }
    }
    return out;
  }

  // Closes a frontier under "one pending op linearizes now": any pending op
  // may take effect at any moment between its invocation and its
  // response/crash. Sets `undefined` (and stops) if a step leaves the
  // spec's defined domain.
  void Close(Frontier* frontier) {
    std::unordered_set<std::string> seen;
    for (const Config& c : frontier->configs) {
      seen.insert(ConfigKey(c));
    }
    // frontier->configs doubles as the BFS queue: new configs are appended
    // and scanned in turn (indices stay valid; vector may reallocate).
    for (size_t i = 0; i < frontier->configs.size(); ++i) {
      // Copy: Step may append to configs, invalidating references.
      const Config c = frontier->configs[i];
      for (const auto& [id, op] : c.pending) {
        tsys::Outcome<State, Ret> out = spec_->Step(c.state, op);
        if (out.undefined) {
          frontier->undefined = true;
          return;
        }
        for (const auto& [next_state, ret] : out.branches) {
          Config c2 = c;
          c2.state = next_state;
          c2.pending.erase(id);
          c2.linearized.emplace(id, ret);
          c2.committed.insert(id);
          if (seen.insert(ConfigKey(c2)).second) {
            ++states_explored_;
            frontier->configs.push_back(std::move(c2));
          }
        }
      }
    }
  }

  Spec spec_storage_;
  const Spec* spec_;
  FrontierCache* cache_ = nullptr;
  uint64_t states_explored_ = 0;
};

}  // namespace perennial::refine

#endif  // PERENNIAL_SRC_REFINE_LINEARIZE_H_
