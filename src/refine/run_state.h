// Spec-independent state of a refinement-checker run.
//
// Everything in this header is a pure value type shared by the exploration
// engines (explorer.h, parallel_explorer.h) and the durable-run layer
// (checkpoint.{h,cc}): the Report an engine returns, the POR bookkeeping a
// DFS subtree carries, the work-item descriptor the parallel coordinator
// hands out, and the cooperative cancellation token. None of it depends on
// a Spec type, which is what lets checkpoint.cc serialize a run's resumable
// state without knowing which system is being checked: the decision path
// plus the POR level bookkeeping determine every per-execution detail
// (env budgets, crash counts, thread schedules) by deterministic replay.
#ifndef PERENNIAL_SRC_REFINE_RUN_STATE_H_
#define PERENNIAL_SRC_REFINE_RUN_STATE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/proc/footprint.h"

namespace perennial::refine {

// Why a run returned. kComplete covers both a finished DFS and the legacy
// bounded stops (max_violations, max_executions — the latter still sets
// Report::truncated); the other three are durable-run stops: the engine
// flushed a checkpoint (when configured) and returned a partial Report
// instead of running on. Ordered by severity so concurrent causes in the
// parallel engine resolve deterministically toward the strongest.
enum class RunOutcome : uint32_t {
  kComplete = 0,
  kCanceled = 1,  // CancelToken fired (SIGINT, watchdog, cancel_after_decisions)
  kDeadline = 2,  // wall_deadline_ms expired
  kOom = 3,       // accounted memory exceeded max_memory_bytes
};

inline const char* OutcomeName(RunOutcome o) {
  switch (o) {
    case RunOutcome::kComplete: return "complete";
    case RunOutcome::kCanceled: return "canceled";
    case RunOutcome::kDeadline: return "deadline";
    case RunOutcome::kOom: return "oom";
  }
  return "unknown";
}

// Cooperative cancellation: RequestCancel is an atomic store, so it is
// async-signal-safe (bench binaries call it from a SIGINT handler) and may
// be shared across ParallelExplorer workers. Engines poll it at every
// decision point; an execution interrupted mid-run is rolled back and its
// decision path is checkpointed for an exact re-run on resume.
class CancelToken {
 public:
  void RequestCancel() { canceled_.store(true, std::memory_order_relaxed); }
  bool canceled() const { return canceled_.load(std::memory_order_relaxed); }
  void Reset() { canceled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> canceled_{false};
};

namespace detail {
enum class AltKind { kThread, kCrash, kEnv, kProceed };
}  // namespace detail

// One decision of a recorded schedule: which alternative KIND the driver
// took and its identity — the thread id for kThread, the env-event index
// for kEnv (crash and proceed carry no payload). A violating execution's
// full decision sequence, stored as ScheduleDecisions, is a replayable
// witness: deterministic factories plus intent-based replay
// (Explorer::ReplaySchedule) reconstruct the execution — and therefore the
// violation — from the sequence alone. The minimizer (minimize.h) shrinks
// these sequences and the trace-file format persists them.
struct ScheduleDecision {
  detail::AltKind kind = detail::AltKind::kThread;
  int thread = -1;   // kThread only
  uint32_t env = 0;  // kEnv only
  bool operator==(const ScheduleDecision&) const = default;
};

inline std::string ScheduleDecisionLabel(const ScheduleDecision& d) {
  switch (d.kind) {
    case detail::AltKind::kThread: return "t" + std::to_string(d.thread);
    case detail::AltKind::kCrash: return "CRASH";
    case detail::AltKind::kEnv: return "env" + std::to_string(d.env);
    case detail::AltKind::kProceed: return "observe";
  }
  return "?";
}

struct Violation {
  std::string kind;
  std::string detail;
  std::string trace;
  // The decision sequence of the execution that manifested the violation
  // (every decision, in order). Excluded from ToString — the trace string
  // above is the human-readable rendering; this is the machine-replayable
  // one.
  std::vector<ScheduleDecision> schedule;

  std::string ToString() const { return kind + ": " + detail + "\n  schedule: " + trace; }
};

struct Report {
  uint64_t executions = 0;
  uint64_t total_steps = 0;
  uint64_t crashes_injected = 0;
  // Environment alternatives fired (disk failures, armed faults, ...).
  uint64_t env_events_fired = 0;
  uint64_t histories_checked = 0;
  // Of histories_checked, how many were fingerprint-duplicates whose spec
  // check was skipped (dedup_histories).
  uint64_t histories_deduped = 0;
  // Executions abandoned by sleep-set POR as commutation-equivalent to an
  // already-explored schedule (counted in executions, no history emitted).
  uint64_t por_pruned = 0;
  uint64_t spec_states_explored = 0;
  bool truncated = false;  // DFS did not finish (max_executions or a stop)
  // Why the run returned. Anything but kComplete means a durable-run stop:
  // the Report is partial and (if checkpoint_path was set) resumable.
  RunOutcome outcome = RunOutcome::kComplete;
  // True when this run restored state from a checkpoint file.
  bool resumed = false;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }

  std::string Summary() const {
    std::string out = "executions=" + std::to_string(executions) +
                      " steps=" + std::to_string(total_steps) +
                      " crashes=" + std::to_string(crashes_injected) +
                      " env=" + std::to_string(env_events_fired) +
                      " histories=" + std::to_string(histories_checked) +
                      " deduped=" + std::to_string(histories_deduped) +
                      " por_pruned=" + std::to_string(por_pruned) +
                      " spec_states=" + std::to_string(spec_states_explored) +
                      (truncated ? " (TRUNCATED)" : "") +
                      (outcome != RunOutcome::kComplete
                           ? std::string(" outcome=") + OutcomeName(outcome)
                           : std::string()) +
                      " violations=" + std::to_string(violations.size());
    for (const Violation& v : violations) {
      out += "\n  " + v.ToString();
    }
    return out;
  }
};

// Accumulates one partial/subtree report into an aggregate. Reports are
// merged in DFS item order by both engines, which is what makes the
// parallel (and resumed) aggregates bit-identical to the serial run.
inline void MergeReport(Report* aggregate, const Report& r) {
  aggregate->executions += r.executions;
  aggregate->total_steps += r.total_steps;
  aggregate->crashes_injected += r.crashes_injected;
  aggregate->env_events_fired += r.env_events_fired;
  aggregate->histories_checked += r.histories_checked;
  aggregate->histories_deduped += r.histories_deduped;
  aggregate->por_pruned += r.por_pruned;
  aggregate->spec_states_explored += r.spec_states_explored;
  aggregate->truncated = aggregate->truncated || r.truncated;
  aggregate->resumed = aggregate->resumed || r.resumed;
  aggregate->violations.insert(aggregate->violations.end(), r.violations.begin(),
                               r.violations.end());
}

inline void TrimReportViolations(Report* aggregate, int max_violations) {
  if (aggregate->violations.size() > static_cast<size_t>(max_violations)) {
    aggregate->violations.resize(static_cast<size_t>(max_violations));
  }
}

namespace detail {

struct Alt {
  AltKind kind;
  int thread = -1;  // kThread
  size_t env = 0;   // kEnv
  std::string label;
};

// One alternative already explored at a DFS decision level: its identity
// and the footprint its step had when taken. Persisted across odometer
// iterations (and shipped to ParallelExplorer workers inside their work
// item) so later siblings can put explored threads to sleep.
struct TriedAlt {
  AltKind kind = AltKind::kThread;
  int thread = -1;
  proc::Footprint footprint;
};

// Per-decision-level POR bookkeeping: tried[j] describes selectable
// alternative j (indices match the decision-path values at this level).
struct PorLevel {
  std::vector<TriedAlt> tried;
};

// A thread put to sleep at some ancestor decision: exploring it here would
// only commute with the path taken since. `footprint` is the footprint its
// next step had at the branch point; because nothing executed since
// conflicts with it (or it would have been woken), that step — and its
// footprint — are unchanged.
struct SleepEntry {
  int thread = -1;
  proc::Footprint footprint;
};

// Sleep-set state threaded through one DFS subtree walk.
struct PorContext {
  std::vector<PorLevel> levels;
};

}  // namespace detail

// One ParallelExplorer work item: a decision-path prefix naming a disjoint
// subtree, plus the POR bookkeeping accumulated along that prefix (the
// footprints of sibling alternatives the coordinator's enumeration already
// explored), so the worker rebuilds the exact sleep sets the serial engine
// would have at that subtree. A resumed item reuses the same shape with
// `prefix` holding the mid-subtree decision path to continue from and
// `floor` pinning the original partition boundary the odometer may not
// retreat past.
struct SubtreeWork {
  static constexpr size_t kNoFloor = static_cast<size_t>(-1);

  std::vector<size_t> prefix;
  std::vector<detail::PorLevel> por_seed;
  // Odometer floor: decision levels below it belong to other subtrees and
  // are never advanced. kNoFloor means prefix.size() (the fresh-item case).
  size_t floor = kNoFloor;
};

// Where a DFS subtree walk stopped, captured by RunDfsSubtree so the
// durable-run layer can checkpoint and later resume it. When `finished` is
// false, `next_path` is the exact decision path the next execution would
// have run (an execution aborted mid-run reappears here unconsumed — its
// counters were rolled back), and `por_levels` is the sleep-set bookkeeping
// valid along that path.
struct SubtreeCursor {
  bool finished = true;
  std::vector<size_t> next_path;
  std::vector<detail::PorLevel> por_levels;
  size_t floor = 0;
};

}  // namespace perennial::refine

#endif  // PERENNIAL_SRC_REFINE_RUN_STATE_H_
